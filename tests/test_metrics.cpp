// Tests for the sliding-window IRR monitor.
#include <gtest/gtest.h>

#include "core/metrics.hpp"

namespace tagwatch::core {
namespace {

rf::TagReading reading(std::uint64_t serial, util::SimTime t) {
  rf::TagReading r;
  r.epc = util::Epc::from_serial(serial);
  r.timestamp = t;
  return r;
}

TEST(IrrMonitor, RejectsBadWindow) {
  EXPECT_THROW(IrrMonitor(util::SimDuration::zero()), std::invalid_argument);
}

TEST(IrrMonitor, CountsWithinWindow) {
  IrrMonitor m(util::sec(2));
  for (int i = 0; i < 10; ++i) m.record(reading(1, util::msec(i * 100)));
  // At t=1s, all 10 readings (0..900 ms) are inside the 2 s window.
  EXPECT_EQ(m.count_in_window(util::Epc::from_serial(1), util::sec(1)), 10u);
  EXPECT_DOUBLE_EQ(m.irr_hz(util::Epc::from_serial(1), util::sec(1)), 5.0);
  // At t=3s, only readings newer than 1 s remain: none.
  EXPECT_EQ(m.count_in_window(util::Epc::from_serial(1), util::sec(3)), 0u);
  EXPECT_DOUBLE_EQ(m.irr_hz(util::Epc::from_serial(1), util::sec(3)), 0.0);
}

TEST(IrrMonitor, UnknownTagIsZero) {
  IrrMonitor m;
  EXPECT_DOUBLE_EQ(m.irr_hz(util::Epc::from_serial(7), util::sec(1)), 0.0);
}

TEST(IrrMonitor, SnapshotSortedByRate) {
  IrrMonitor m(util::sec(10));
  for (int i = 0; i < 50; ++i) m.record(reading(1, util::msec(i * 100)));
  for (int i = 0; i < 10; ++i) m.record(reading(2, util::msec(i * 100)));
  const auto snap = m.snapshot(util::sec(5));
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, util::Epc::from_serial(1));
  EXPECT_GT(snap[0].second, snap[1].second);
}

TEST(IrrMonitor, ActiveTagsAndPrune) {
  IrrMonitor m(util::sec(1));
  m.record(reading(1, util::msec(100)));
  m.record(reading(2, util::sec(10)));
  EXPECT_EQ(m.active_tags(util::sec(10)), 1u);
  // Tag 1's history predates the window at t=10 s: prune drops it.
  EXPECT_EQ(m.prune(util::sec(10)), 1u);
  EXPECT_EQ(m.active_tags(util::sec(10)), 1u);
  EXPECT_EQ(m.prune(util::sec(10)), 0u);
}

TEST(IrrMonitor, WindowBoundaryInclusive) {
  IrrMonitor m(util::sec(1));
  m.record(reading(1, util::sec(5)));
  // Reading exactly at now - window is included.
  EXPECT_EQ(m.count_in_window(util::Epc::from_serial(1), util::sec(6)), 1u);
  // Just past the boundary it ages out.
  EXPECT_EQ(m.count_in_window(util::Epc::from_serial(1),
                              util::sec(6) + util::msec(1)),
            0u);
}

}  // namespace
}  // namespace tagwatch::core
