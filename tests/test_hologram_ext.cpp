// Tests for the tracker's motion-augmentation machinery: velocity
// compensation, continuity priors, and configuration knobs.
#include <gtest/gtest.h>

#include "track/hologram.hpp"
#include "util/circular.hpp"
#include "util/rng.hpp"

namespace tagwatch::track {
namespace {

std::vector<rf::Antenna> four_antennas() {
  return {{1, {-5, -5, 0}, 8.0},
          {2, {5, -5, 0}, 8.0},
          {3, {-5, 5, 0}, 8.0},
          {4, {5, 5, 0}, 8.0}};
}

/// Readings of a tag moving at constant velocity, one antenna per step.
std::vector<rf::TagReading> moving_readings(
    util::Vec3 start, util::Vec3 vel, const std::vector<rf::Antenna>& ants,
    const rf::ChannelPlan& plan, int count, int step_ms, double noise_sd,
    util::Rng& rng) {
  std::vector<rf::TagReading> out;
  for (int i = 0; i < count; ++i) {
    const util::SimTime t = util::msec(i * step_ms);
    const util::Vec3 pos = start + vel * util::to_seconds(t);
    const auto& a = ants[static_cast<std::size_t>(i) % ants.size()];
    rf::TagReading r;
    r.epc = util::Epc::from_serial(1);
    r.antenna = a.id;
    r.channel = 0;
    r.timestamp = t;
    r.phase_rad = util::wrap_to_2pi(
        -4.0 * std::numbers::pi * util::distance(a.position, pos) /
            plan.wavelength_m(0) +
        0.8 + rng.normal(0.0, noise_sd));
    out.push_back(r);
  }
  return out;
}

TEST(HologramVelocity, TrueVelocityHypothesisFitsCleanly) {
  const auto ants = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  TrackerConfig cfg;
  cfg.search_velocity = false;  // isolate the caller-supplied hypothesis
  HologramTracker tracker(cfg, ants, plan);
  util::Rng rng(301);

  const util::Vec3 start{0.1, -0.05, 0};
  const util::Vec3 vel{0.6, 0.3, 0};
  const auto readings =
      moving_readings(start, vel, ants, plan, 4, 25, 0.0, rng);
  std::vector<const rf::TagReading*> window;
  for (const auto& r : readings) window.push_back(&r);

  // Window reference time is its center (t = 37.5 ms): truth there.
  const util::Vec3 mid = start + vel * 0.0375;
  const auto with_vel = tracker.locate(window, mid, 0.1, vel);
  const auto without_vel = tracker.locate(window, mid, 0.1, util::Vec3{});
  ASSERT_TRUE(with_vel.has_value());
  ASSERT_TRUE(without_vel.has_value());
  // The correct velocity hypothesis explains the data to numerical noise;
  // the zero hypothesis is stuck with motion-induced residual.
  EXPECT_LT(with_vel->residual_rad, 0.1);
  EXPECT_GT(without_vel->residual_rad, with_vel->residual_rad + 0.1);
  EXPECT_LT(util::distance(with_vel->position, mid), 0.03);
}

TEST(HologramVelocity, HypothesisSweepRecoversUnknownMotion) {
  const auto ants = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  TrackerConfig cfg;  // search_velocity = true by default
  HologramTracker tracker(cfg, ants, plan);
  util::Rng rng(302);

  const util::Vec3 start{-0.1, 0.1, 0};
  const util::Vec3 vel{0.0, 0.7, 0};
  const auto readings =
      moving_readings(start, vel, ants, plan, 4, 25, 0.02, rng);
  std::vector<const rf::TagReading*> window;
  for (const auto& r : readings) window.push_back(&r);
  const util::Vec3 mid = start + vel * 0.0375;
  // No velocity supplied: the sweep must still find a low-residual fit
  // near the true mid-window position.
  const auto est = tracker.locate(window, mid, 0.12, util::Vec3{});
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(est->residual_rad, 0.25);
  EXPECT_LT(util::distance(est->position, mid), 0.06);
}

TEST(HologramConfig, MinPairsGatesEstimates) {
  const auto ants = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  TrackerConfig strict;
  strict.min_pairs = 6;
  HologramTracker tracker(strict, ants, plan);
  util::Rng rng(303);
  // 3 readings → at most 3 pairs < 6.
  const auto readings = moving_readings({0, 0, 0}, {0, 0, 0}, ants, plan, 3,
                                        25, 0.0, rng);
  std::vector<const rf::TagReading*> window;
  for (const auto& r : readings) window.push_back(&r);
  EXPECT_FALSE(tracker.locate(window).has_value());
}

TEST(HologramConfig, PairMaxDtFiltersStalePairs) {
  const auto ants = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  TrackerConfig cfg;
  cfg.pair_max_dt = util::msec(10);  // tighter than the 25 ms spacing
  cfg.min_pairs = 1;
  HologramTracker tracker(cfg, ants, plan);
  util::Rng rng(304);
  const auto readings = moving_readings({0, 0, 0}, {0, 0, 0}, ants, plan, 4,
                                        25, 0.0, rng);
  std::vector<const rf::TagReading*> window;
  for (const auto& r : readings) window.push_back(&r);
  // All cross-antenna pairs are ≥25 ms apart → no pairs → no estimate.
  EXPECT_FALSE(tracker.locate(window).has_value());
}

TEST(HologramConfig, RejectsBadGridStep) {
  TrackerConfig bad;
  bad.coarse_step_m = 0.0;
  EXPECT_THROW(HologramTracker(bad, four_antennas(),
                               rf::ChannelPlan::single(920e6)),
               std::invalid_argument);
}

TEST(HologramPrior, AnchoredSearchStaysInBox) {
  const auto ants = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  HologramTracker tracker({}, ants, plan);
  util::Rng rng(305);
  const auto readings = moving_readings({0.3, 0.3, 0}, {0, 0, 0}, ants, plan,
                                        4, 25, 0.0, rng);
  std::vector<const rf::TagReading*> window;
  for (const auto& r : readings) window.push_back(&r);
  // Anchor far from the truth with a tiny radius: the estimate must stay
  // inside the requested box even though the truth is outside it.
  const util::Vec3 anchor{-0.3, -0.3, 0};
  const auto est = tracker.locate(window, anchor, 0.05);
  ASSERT_TRUE(est.has_value());
  EXPECT_LE(std::abs(est->position.x - anchor.x), 0.06);
  EXPECT_LE(std::abs(est->position.y - anchor.y), 0.06);
}

}  // namespace
}  // namespace tagwatch::track
