#include "util/epc.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.hpp"

namespace tagwatch::util {
namespace {

TEST(Epc, DefaultIs96BitZero) {
  Epc e;
  EXPECT_EQ(e.size(), 96u);
  EXPECT_EQ(e.to_hex(), std::string(24, '0'));
}

TEST(Epc, FromSerialEncodesLowBits) {
  const Epc e = Epc::from_serial(0xAB);
  EXPECT_EQ(e.size(), 96u);
  EXPECT_EQ(e.to_hex().substr(22), "AB");
  // High bits are zero.
  EXPECT_EQ(e.to_hex().substr(0, 22), std::string(22, '0'));
}

TEST(Epc, FromSerialDistinct) {
  EXPECT_NE(Epc::from_serial(1), Epc::from_serial(2));
  EXPECT_EQ(Epc::from_serial(7), Epc::from_serial(7));
}

TEST(Epc, FromHex) {
  const Epc e = Epc::from_hex("300833B2DDD9014000000001");
  EXPECT_EQ(e.size(), 96u);
  EXPECT_EQ(e.to_hex(), "300833B2DDD9014000000001");
}

TEST(Epc, RandomIsLengthCorrectAndVaried) {
  Rng rng(1);
  std::unordered_set<Epc> seen;
  for (int i = 0; i < 100; ++i) {
    const Epc e = Epc::random(rng);
    EXPECT_EQ(e.size(), 96u);
    seen.insert(e);
  }
  // 100 draws from a 96-bit space collide with negligible probability.
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Epc, Random128) {
  Rng rng(2);
  EXPECT_EQ(Epc::random(rng, Epc::kBits128).size(), 128u);
}

TEST(Epc, MatchesDelegatesToBits) {
  const Epc e = Epc::from_serial(0b1011, 8);  // "00001011"
  EXPECT_TRUE(e.matches(4, BitString::from_binary("1011")));
  EXPECT_FALSE(e.matches(0, BitString::from_binary("1011")));
}

TEST(Epc, OrderingIsStableAndTotal) {
  Rng rng(3);
  std::vector<Epc> epcs;
  for (int i = 0; i < 50; ++i) epcs.push_back(Epc::random(rng));
  std::sort(epcs.begin(), epcs.end());
  for (std::size_t i = 1; i < epcs.size(); ++i) {
    EXPECT_LE(epcs[i - 1], epcs[i]);
  }
}

TEST(Epc, UsableAsUnorderedMapKey) {
  std::unordered_set<Epc> set;
  set.insert(Epc::from_serial(1));
  set.insert(Epc::from_serial(1));
  set.insert(Epc::from_serial(2));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(Epc::from_serial(2)));
}

}  // namespace
}  // namespace tagwatch::util
