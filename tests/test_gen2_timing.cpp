// Tests for Gen2 link timing and tag-side flag semantics.
#include <gtest/gtest.h>

#include "gen2/link_params.hpp"
#include "gen2/tag_runtime.hpp"

namespace tagwatch::gen2 {
namespace {

TEST(LinkParams, ValidatesRanges) {
  EXPECT_NO_THROW(LinkParams::max_throughput().validate());
  EXPECT_NO_THROW(LinkParams::dense_reader_m4().validate());
  EXPECT_NO_THROW(LinkParams::paper_testbed().validate());
  LinkParams bad = LinkParams::max_throughput();
  bad.tari_us = 3.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = LinkParams::max_throughput();
  bad.miller_m = 3;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = LinkParams::max_throughput();
  bad.blf_khz = 1000.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(LinkTiming, CommandDurationsOrdered) {
  const LinkTiming t{LinkParams::max_throughput()};
  // QueryRep (4 bits) < QueryAdjust (9) < ACK (18) < Query (22 + preamble).
  EXPECT_LT(t.query_rep(), t.query_adjust());
  EXPECT_LT(t.query_adjust(), t.ack());
  EXPECT_LT(t.ack(), t.query());
}

TEST(LinkTiming, SlotDurationsOrdered) {
  const LinkTiming t{LinkParams::paper_testbed()};
  EXPECT_LT(t.empty_slot(), t.collision_slot());
  EXPECT_LT(t.collision_slot(), t.success_slot(96));
  // A 128-bit EPC takes longer than a 96-bit one.
  EXPECT_LT(t.success_slot(96), t.success_slot(128));
}

TEST(LinkTiming, SelectGrowsWithMask) {
  const LinkTiming t{LinkParams::paper_testbed()};
  EXPECT_LT(t.select(2), t.select(96));
  // 45 fixed bits + mask at 1.5 Tari avg + frame-sync.
  EXPECT_GT(t.select(0).count(), 0);
}

TEST(LinkTiming, FasterProfileIsFaster) {
  const LinkTiming fast{LinkParams::max_throughput()};
  const LinkTiming slow{LinkParams::dense_reader_m4()};
  EXPECT_LT(fast.empty_slot(), slow.empty_slot());
  EXPECT_LT(fast.success_slot(96), slow.success_slot(96));
}

TEST(LinkTiming, PaperTestbedSlotScale) {
  // The emergent average slot (≈ e·ln(n)/e weighted mix) should be within
  // the same order as the paper's fitted τ̄ = 0.18 ms: empty slots around
  // 0.1–0.3 ms and success slots around 1–2 ms.
  const LinkTiming t{LinkParams::paper_testbed()};
  EXPECT_GT(util::to_millis(t.empty_slot()), 0.05);
  EXPECT_LT(util::to_millis(t.empty_slot()), 0.4);
  EXPECT_GT(util::to_millis(t.success_slot(96)), 0.8);
  EXPECT_LT(util::to_millis(t.success_slot(96)), 3.0);
}

TEST(LinkTiming, TrextLengthensTagPreamble) {
  LinkParams p = LinkParams::paper_testbed();
  const LinkTiming without{p};
  p.trext = true;
  const LinkTiming with{p};
  EXPECT_GT(with.rn16(), without.rn16());
  EXPECT_GT(with.epc_reply(96), without.epc_reply(96));
}

// ------------------------------------------------------------ TagFlags

TEST(SelectMatch, EpcBankPointerAndMask) {
  const util::Epc epc = util::Epc::from_serial(0b001110, 6);
  SelectCommand cmd;
  cmd.bank = MemBank::kEpc;
  cmd.pointer = 2;
  cmd.mask = util::BitString::from_binary("11");
  EXPECT_TRUE(select_matches(cmd, epc));
  cmd.pointer = 0;
  EXPECT_FALSE(select_matches(cmd, epc));
  cmd.bank = MemBank::kTid;  // only the EPC bank is modeled
  cmd.pointer = 2;
  EXPECT_FALSE(select_matches(cmd, epc));
}

TEST(SelectAction, Action0AssertsMatchedDeassertsElse) {
  SelectCommand cmd;
  cmd.target = SelectTarget::kSl;
  cmd.action = SelectAction::kAssertMatchedDeassertElse;
  TagFlags matched, unmatched;
  unmatched.sl = true;
  apply_select_action(cmd, true, matched);
  apply_select_action(cmd, false, unmatched);
  EXPECT_TRUE(matched.sl);
  EXPECT_FALSE(unmatched.sl);
}

TEST(SelectAction, SessionTargetSetsInventoriedFlag) {
  SelectCommand cmd;
  cmd.target = SelectTarget::kSessionS1;
  cmd.action = SelectAction::kAssertMatchedDeassertElse;
  TagFlags matched, unmatched;
  matched.session_flag(Session::kS1) = InvFlag::kB;
  apply_select_action(cmd, true, matched);
  apply_select_action(cmd, false, unmatched);
  EXPECT_EQ(matched.session_flag(Session::kS1), InvFlag::kA);
  EXPECT_EQ(unmatched.session_flag(Session::kS1), InvFlag::kB);
  // Other sessions untouched.
  EXPECT_EQ(matched.session_flag(Session::kS0), InvFlag::kA);
}

TEST(SelectAction, ToggleNegatesSl) {
  SelectCommand cmd;
  cmd.target = SelectTarget::kSl;
  cmd.action = SelectAction::kToggleMatched;
  TagFlags f;
  apply_select_action(cmd, true, f);
  EXPECT_TRUE(f.sl);
  apply_select_action(cmd, true, f);
  EXPECT_FALSE(f.sl);
  apply_select_action(cmd, false, f);  // non-matching: no change
  EXPECT_FALSE(f.sl);
}

TEST(SelectAction, DeassertUnmatchedOnlyIntersects) {
  // Chaining filters: second Select must not touch matching tags.
  SelectCommand cmd;
  cmd.target = SelectTarget::kSl;
  cmd.action = SelectAction::kDeassertUnmatchedOnly;
  TagFlags in, out;
  in.sl = out.sl = true;
  apply_select_action(cmd, true, in);
  apply_select_action(cmd, false, out);
  EXPECT_TRUE(in.sl);
  EXPECT_FALSE(out.sl);
}

TEST(FlagStore, DefaultsToPowerUpState) {
  FlagStore store;
  const TagFlags& f = store[util::Epc::from_serial(1)];
  EXPECT_FALSE(f.sl);
  EXPECT_EQ(f.session_flag(Session::kS0), InvFlag::kA);
  EXPECT_EQ(f.session_flag(Session::kS3), InvFlag::kA);
}

TEST(FlagStore, BroadcastSelectPartitionsPopulation) {
  FlagStore store;
  std::vector<util::Epc> epcs;
  for (std::uint64_t i = 0; i < 8; ++i) {
    epcs.push_back(util::Epc::from_serial(i, 8));  // "00000000".."00000111"
  }
  SelectCommand cmd;
  cmd.target = SelectTarget::kSl;
  cmd.action = SelectAction::kAssertMatchedDeassertElse;
  cmd.pointer = 5;
  cmd.mask = util::BitString::from_binary("1");  // serials with bit 5 set: 4..7
  store.broadcast_select(cmd, epcs);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(store[epcs[static_cast<std::size_t>(i)]].sl, i >= 4) << i;
  }
}

TEST(FlagStore, ForgetRemovesState) {
  FlagStore store;
  store[util::Epc::from_serial(1)].sl = true;
  EXPECT_EQ(store.size(), 1u);
  store.forget(util::Epc::from_serial(1));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store[util::Epc::from_serial(1)].sl);  // fresh power-up state
}

}  // namespace
}  // namespace tagwatch::gen2
