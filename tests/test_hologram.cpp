// Tests for the differential-hologram tracking substrate.
#include <gtest/gtest.h>

#include "rf/channel.hpp"
#include "track/hologram.hpp"
#include "util/circular.hpp"
#include "util/rng.hpp"

namespace tagwatch::track {
namespace {

std::vector<rf::Antenna> four_antennas() {
  // §7.3 deployment: four antennas at (±5 m, ±5 m).
  return {{1, {-5, -5, 0}, 8.0},
          {2, {5, -5, 0}, 8.0},
          {3, {-5, 5, 0}, 8.0},
          {4, {5, 5, 0}, 8.0}};
}

/// Generates clean readings of a tag at `pos` from every antenna.
std::vector<rf::TagReading> synthetic_readings(
    util::Vec3 pos, const std::vector<rf::Antenna>& antennas,
    const rf::ChannelPlan& plan, std::size_t channel, double tag_phase,
    util::SimTime t, double noise_sd, util::Rng& rng) {
  std::vector<rf::TagReading> out;
  for (const auto& a : antennas) {
    const double d = util::distance(a.position, pos);
    rf::TagReading r;
    r.epc = util::Epc::from_serial(1);
    r.antenna = a.id;
    r.channel = channel;
    r.phase_rad = util::wrap_to_2pi(
        -4.0 * std::numbers::pi * d / plan.wavelength_m(channel) + tag_phase +
        rng.normal(0.0, noise_sd));
    r.timestamp = t;
    out.push_back(r);
  }
  return out;
}

TEST(HologramTracker, RequiresTwoAntennas) {
  EXPECT_THROW(HologramTracker({}, {{1, {0, 0, 0}, 8.0}},
                               rf::ChannelPlan::single(920e6)),
               std::invalid_argument);
}

TEST(HologramTracker, LocatesStaticTagFromCleanPhases) {
  const auto antennas = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  TrackerConfig cfg;
  cfg.coarse_step_m = 0.04;
  HologramTracker tracker(cfg, antennas, plan);
  util::Rng rng(121);

  const util::Vec3 truth{0.21, -0.13, 0.0};
  const auto readings = synthetic_readings(truth, antennas, plan, 0, 0.8,
                                           util::msec(100), 0.0, rng);
  std::vector<const rf::TagReading*> window;
  for (const auto& r : readings) window.push_back(&r);
  // Narrowband grating lobes make the unanchored solution ambiguous; anchor
  // near (not at) the truth, as the paper anchors its initial position.
  const auto est = tracker.locate(window, util::Vec3{0.18, -0.11, 0.0});
  ASSERT_TRUE(est.has_value());
  EXPECT_EQ(est->pair_count, 6u);  // C(4,2) antenna pairs
  EXPECT_LT(util::distance(est->position, truth), 0.03);
  EXPECT_LT(est->residual_rad, 0.2);
}

TEST(HologramTracker, NoisyPhasesStillLocalizeCoarsely) {
  const auto antennas = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  TrackerConfig cfg;
  cfg.coarse_step_m = 0.04;
  HologramTracker tracker(cfg, antennas, plan);
  util::Rng rng(122);
  const util::Vec3 truth{-0.3, 0.25, 0.0};
  // Several inventory rounds' worth of readings: noise averages out across
  // pairs (a single 4-reading window at 0.1 rad noise is ambiguous).
  std::vector<rf::TagReading> readings;
  for (int round = 0; round < 3; ++round) {
    const auto batch = synthetic_readings(truth, antennas, plan, 0, 0.8,
                                          util::msec(100), 0.1, rng);
    readings.insert(readings.end(), batch.begin(), batch.end());
  }
  std::vector<const rf::TagReading*> window;
  for (const auto& r : readings) window.push_back(&r);
  const auto est = tracker.locate(window, util::Vec3{-0.25, 0.2, 0.0});
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(util::distance(est->position, truth), 0.12);
}

TEST(HologramTracker, RefusesUnderdeterminedWindow) {
  const auto antennas = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  HologramTracker tracker({}, antennas, plan);
  util::Rng rng(123);
  // One reading: zero pairs.
  auto readings = synthetic_readings({0, 0, 0}, antennas, plan, 0, 0.0,
                                     util::msec(0), 0.0, rng);
  std::vector<const rf::TagReading*> window{&readings[0]};
  EXPECT_FALSE(tracker.locate(window).has_value());
}

TEST(HologramTracker, CrossChannelReadingsAreNotPaired) {
  const auto antennas = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::china_920_926();
  HologramTracker tracker({}, antennas, plan);
  util::Rng rng(124);
  auto a = synthetic_readings({0, 0, 0}, antennas, plan, 0, 0.0, util::msec(0),
                              0.0, rng);
  // Mix channels so that no same-channel cross-antenna pair exists.
  a[1].channel = 1;
  a[2].channel = 2;
  a[3].channel = 3;
  std::vector<const rf::TagReading*> window;
  for (const auto& r : a) window.push_back(&r);
  EXPECT_FALSE(tracker.locate(window).has_value());
}

TEST(HologramTracker, TracksCircularTrajectory) {
  const auto antennas = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  TrackerConfig cfg;
  sim::CircularTrack train({0, 0, 0}, 0.2, 0.7);
  cfg.initial_hint = train.position(util::SimTime{0});  // §7.3: known start
  HologramTracker tracker(cfg, antennas, plan);
  util::Rng rng(125);
  std::vector<rf::TagReading> readings;
  // 40 Hz sampling for 3 seconds, antennas round-robin.
  for (int i = 0; i < 120; ++i) {
    const util::SimTime t = util::msec(i * 25);
    const util::Vec3 pos = train.position(t);
    const auto& antenna = antennas[static_cast<std::size_t>(i) % 4];
    rf::TagReading r;
    r.epc = util::Epc::from_serial(1);
    r.antenna = antenna.id;
    r.channel = 0;
    r.timestamp = t;
    r.phase_rad = util::wrap_to_2pi(
        -4.0 * std::numbers::pi * util::distance(antenna.position, pos) /
            plan.wavelength_m(0) +
        0.8 + rng.normal(0.0, 0.05));
    readings.push_back(r);
  }
  const auto estimates = tracker.track(readings);
  EXPECT_GT(estimates.size(), 10u);
  const TrackingAccuracy acc = tracking_accuracy(estimates, train);
  // High-rate tracking is accurate to a few cm (Fig. 1's no-competitor case).
  EXPECT_LT(acc.mean_error_m, 0.06);
}

TEST(HologramTracker, LowerRateDegradesAccuracy) {
  // The core Fig. 1 phenomenon, isolated from the protocol: fewer readings
  // per window → worse trajectory recovery.
  const auto antennas = four_antennas();
  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  TrackerConfig cfg;
  cfg.coarse_step_m = 0.04;
  sim::CircularTrack train({0, 0, 0}, 0.2, 0.7);
  cfg.initial_hint = train.position(util::SimTime{0});
  HologramTracker tracker(cfg, antennas, plan);
  util::Rng rng(126);

  auto run_at_rate = [&](int period_ms) {
    std::vector<rf::TagReading> readings;
    for (int t_ms = 0; t_ms < 4000; t_ms += period_ms) {
      const util::SimTime t = util::msec(t_ms);
      const util::Vec3 pos = train.position(t);
      const auto& antenna =
          antennas[static_cast<std::size_t>(t_ms / period_ms) % 4];
      rf::TagReading r;
      r.epc = util::Epc::from_serial(1);
      r.antenna = antenna.id;
      r.channel = 0;
      r.timestamp = t;
      r.phase_rad = util::wrap_to_2pi(
          -4.0 * std::numbers::pi * util::distance(antenna.position, pos) /
              plan.wavelength_m(0) +
          0.8 + rng.normal(0.0, 0.05));
      readings.push_back(r);
    }
    const auto estimates = tracker.track(readings);
    if (estimates.empty()) return 1.0;  // failed to track at all
    return tracking_accuracy(estimates, train).mean_error_m;
  };

  const double fast = run_at_rate(15);   // ~67 Hz
  const double slow = run_at_rate(120);  // ~8 Hz
  EXPECT_LT(fast, slow);
}

}  // namespace
}  // namespace tagwatch::track
