// Tests for Gen2 Select truncation (shortened EPC replies).
#include <gtest/gtest.h>

#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "gen2/reader.hpp"
#include "llrp/rospec_xml.hpp"
#include "util/circular.hpp"

namespace tagwatch {
namespace {

TEST(Truncation, SelectArmsAndDisarms) {
  gen2::TagFlags flags;
  gen2::SelectCommand cmd;
  cmd.pointer = 4;
  cmd.mask = util::BitString::from_binary("1010");
  cmd.truncate = true;
  gen2::apply_select_action(cmd, /*matched=*/true, flags);
  EXPECT_EQ(flags.truncate_from, 8u);  // pointer + mask length
  // A later non-truncating Select disarms it.
  cmd.truncate = false;
  gen2::apply_select_action(cmd, true, flags);
  EXPECT_EQ(flags.truncate_from, gen2::TagFlags::kNoTruncate);
  // A truncating Select that does NOT match also disarms.
  cmd.truncate = true;
  gen2::apply_select_action(cmd, /*matched=*/false, flags);
  EXPECT_EQ(flags.truncate_from, gen2::TagFlags::kNoTruncate);
}

TEST(Truncation, ShortensSelectiveRounds) {
  // 5 selected tags sharing a short prefix: with Truncate, each success
  // slot carries ~8 EPC bits instead of 96, so the round is faster.
  auto run = [](bool truncate) {
    sim::World world;
    util::Rng rng(401);
    for (std::size_t i = 0; i < 5; ++i) {
      sim::SimTag t;
      // EPCs 0x00...0i: a Select on the first 88 bits covers all five.
      t.epc = util::Epc::from_serial(i + 1);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      world.add_tag(std::move(t));
    }
    rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
    gen2::Gen2Reader reader(
        gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
        gen2::ReaderConfig{}, world, channel, {{1, {0, 0, 2}, 8.0}},
        util::Rng(402));
    gen2::SelectCommand sel;
    sel.target = gen2::SelectTarget::kSessionS1;
    sel.action = gen2::SelectAction::kAssertMatchedDeassertElse;
    sel.pointer = 0;
    sel.mask = util::BitString(88);  // all-zero 88-bit prefix
    sel.truncate = truncate;
    reader.transmit_select(sel);
    gen2::QueryCommand q;
    q.session = gen2::Session::kS1;
    q.target = gen2::InvFlag::kA;
    q.q = 3;
    std::size_t reads = 0;
    const auto stats = reader.run_inventory_round(
        q, [&reads](const rf::TagReading& r) {
          ++reads;
          EXPECT_EQ(r.epc.size(), 96u);  // reader reports the full EPC
        });
    EXPECT_EQ(reads, 5u);
    return stats.duration;
  };
  const auto full = run(false);
  const auto truncated = run(true);
  // Each success saves (96-8) bits × 6.25 µs ≈ 550 µs → ≥ 2 ms over 5 tags.
  EXPECT_LT(truncated + util::msec(2), full);
}

TEST(Truncation, TagwatchOptionSpeedsPhase2) {
  auto mover_irr = [](bool truncate) {
    sim::World world;
    util::Rng rng(403);
    std::vector<util::Epc> movers;
    for (std::size_t i = 0; i < 30; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::random(rng);
      if (i < 2) {
        t.motion = std::make_shared<sim::CircularTrack>(
            util::Vec3{0.5, 0.5, 0}, 0.2, 0.7, static_cast<double>(i));
        movers.push_back(t.epc);
      } else {
        t.motion = std::make_shared<sim::StaticMotion>(
            util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      }
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
    llrp::SimReaderClient client(
        gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
        gen2::ReaderConfig{}, world, channel,
        {{1, {-5, -5, 0}, 8.0}, {2, {5, 5, 0}, 8.0}}, 404);
    core::TagwatchConfig cfg;
    cfg.phase2_duration = util::sec(2);
    cfg.use_truncation = truncate;
    core::TagwatchController ctl(cfg, client);
    const auto reports = ctl.run_cycles(10);
    double reads = 0.0, secs = 0.0;
    for (std::size_t c = 5; c < reports.size(); ++c) {
      secs += util::to_seconds(reports[c].phase2_duration);
      for (const auto& [epc, count] : reports[c].phase2_counts) {
        for (const auto& m : movers) {
          if (m == epc) reads += static_cast<double>(count);
        }
      }
    }
    return reads / 2.0 / secs;
  };
  const double plain = mover_irr(false);
  const double truncated = mover_irr(true);
  // Shorter replies → more rounds per Phase II → higher IRR.  The margin
  // is modest because τ0 dominates short selective rounds.
  EXPECT_GT(truncated, plain * 1.02);
}

TEST(Truncation, XmlRoundTripsTruncateBit) {
  llrp::ROSpec spec;
  llrp::AISpec ai;
  llrp::C1G2Filter f{gen2::MemBank::kEpc, 3,
                     util::BitString::from_binary("110")};
  f.truncate = true;
  ai.filters.push_back(f);
  spec.ai_specs.push_back(ai);
  const llrp::ROSpec parsed = llrp::rospec_from_xml(llrp::to_xml(spec));
  ASSERT_EQ(parsed.ai_specs.size(), 1u);
  EXPECT_TRUE(parsed.ai_specs[0].filters[0].truncate);
}

}  // namespace
}  // namespace tagwatch
