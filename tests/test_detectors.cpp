// Tests for the four motion detectors and their per-(antenna,channel)
// state separation.
#include <gtest/gtest.h>

#include "core/detectors.hpp"
#include "util/circular.hpp"
#include "util/rng.hpp"

namespace tagwatch::core {
namespace {

rf::TagReading reading(double phase, double rssi = -55.0,
                       rf::AntennaId antenna = 1, std::size_t channel = 0) {
  rf::TagReading r;
  r.epc = util::Epc::from_serial(1);
  r.antenna = antenna;
  r.channel = channel;
  r.phase_rad = util::wrap_to_2pi(phase);
  r.rssi_dbm = rssi;
  return r;
}

DetectorConfig fast_config() {
  DetectorConfig c;
  c.phase_mog.trust_count = 5;
  c.rss_mog.trust_count = 5;
  return c;
}

TEST(MakeDetector, ProducesAllKinds) {
  for (const auto kind : {DetectorKind::kPhaseMog, DetectorKind::kPhaseDiff,
                          DetectorKind::kRssMog, DetectorKind::kRssDiff}) {
    EXPECT_NE(make_detector(kind), nullptr);
  }
}

TEST(PhaseMog, StationaryThenDisplaced) {
  auto d = make_detector(DetectorKind::kPhaseMog, fast_config());
  util::Rng rng(71);
  MotionVerdict last = MotionVerdict::kMoving;
  for (int i = 0; i < 50; ++i) last = d->update(reading(rng.normal(2.0, 0.05)));
  EXPECT_EQ(last, MotionVerdict::kStationary);
  EXPECT_EQ(d->classify(reading(2.9)), MotionVerdict::kMoving);
}

TEST(PhaseMog, StatePerAntennaChannel) {
  auto d = make_detector(DetectorKind::kPhaseMog, fast_config());
  util::Rng rng(72);
  for (int i = 0; i < 50; ++i) {
    d->update(reading(rng.normal(1.0, 0.05), -55.0, 1, 0));
  }
  // Same phase on an untrained (antenna, channel) pair: no immobility
  // evidence there yet.
  EXPECT_EQ(d->classify(reading(1.0, -55.0, 2, 0)), MotionVerdict::kMoving);
  EXPECT_EQ(d->classify(reading(1.0, -55.0, 1, 5)), MotionVerdict::kMoving);
  EXPECT_EQ(d->classify(reading(1.0, -55.0, 1, 0)), MotionVerdict::kStationary);
}

TEST(PhaseMog, ModelBankGrowsPerPair) {
  DetectorConfig cfg = fast_config();
  MogDetector d(true, cfg.phase_mog);
  d.update(reading(1.0, -55.0, 1, 0));
  d.update(reading(1.0, -55.0, 1, 1));
  d.update(reading(1.0, -55.0, 2, 0));
  EXPECT_EQ(d.model_count(), 3u);
  EXPECT_NE(d.model_for(1, 0), nullptr);
  EXPECT_EQ(d.model_for(3, 0), nullptr);
}

TEST(PhaseDiff, FlagsLargeJumpOnly) {
  auto d = make_detector(DetectorKind::kPhaseDiff, fast_config());
  EXPECT_EQ(d->update(reading(1.0)), MotionVerdict::kMoving);  // no baseline
  EXPECT_EQ(d->update(reading(1.05)), MotionVerdict::kStationary);
  EXPECT_EQ(d->update(reading(1.9)), MotionVerdict::kMoving);
  // Differencing resets its baseline each reading: back near 1.9 is "still".
  EXPECT_EQ(d->update(reading(1.95)), MotionVerdict::kStationary);
}

TEST(PhaseDiff, UsesCircularDistance) {
  auto d = make_detector(DetectorKind::kPhaseDiff, fast_config());
  d->update(reading(util::kTwoPi - 0.02));
  // 0.04 away across the wrap: stationary, not a 6.2 rad jump.
  EXPECT_EQ(d->update(reading(0.02)), MotionVerdict::kStationary);
}

TEST(RssDiff, ThresholdInDb) {
  auto d = make_detector(DetectorKind::kRssDiff, fast_config());
  d->update(reading(0.0, -55.0));
  EXPECT_EQ(d->update(reading(0.0, -56.0)), MotionVerdict::kStationary);
  EXPECT_EQ(d->update(reading(0.0, -60.0)), MotionVerdict::kMoving);
}

TEST(RssMog, LearnsRssLevels) {
  auto d = make_detector(DetectorKind::kRssMog, fast_config());
  util::Rng rng(73);
  MotionVerdict last = MotionVerdict::kMoving;
  for (int i = 0; i < 60; ++i) {
    last = d->update(reading(0.0, -55.0 + rng.normal(0.0, 0.4)));
  }
  EXPECT_EQ(last, MotionVerdict::kStationary);
  EXPECT_EQ(d->classify(reading(0.0, -75.0)), MotionVerdict::kMoving);
}

TEST(Detectors, PhaseIsMoreSensitiveThanRssToSmallMoves) {
  // The physical argument of §7.1: a 2 cm displacement swings phase by
  // ~0.8 rad (easily detected) but shifts RSS by well under a dB.
  auto phase_d = make_detector(DetectorKind::kPhaseMog, fast_config());
  auto rss_d = make_detector(DetectorKind::kRssMog, fast_config());
  util::Rng rng(74);
  for (int i = 0; i < 60; ++i) {
    const double phase = rng.normal(2.0, 0.05);
    const double rssi = -55.0 + rng.normal(0.0, 0.4);
    phase_d->update(reading(phase, rssi));
    rss_d->update(reading(phase, rssi));
  }
  // Displacement: phase jumps 0.8 rad, RSS drops 0.3 dB.
  const auto moved = reading(2.8, -55.3);
  EXPECT_EQ(phase_d->classify(moved), MotionVerdict::kMoving);
  EXPECT_EQ(rss_d->classify(moved), MotionVerdict::kStationary);
}

}  // namespace
}  // namespace tagwatch::core
