// Fleet fault tolerance: the FleetHealth availability state machine, zone
// takeover (grant, budget cap, restore-on-recovery), the bounded orphan
// re-cover queue, session-aware re-inventory after takeover, and the
// chaos record→replay digest contract.  These tests carry the ctest
// `chaos-smoke` label (run under TSan in CI).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "llrp/fault_injection.hpp"
#include "llrp/recording_reader_client.hpp"
#include "llrp/replay_reader_client.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/wall_clock.hpp"

namespace tagwatch::core {
namespace {

// ------------------------------------------------ FleetHealth state machine

FleetResilienceConfig tight_resilience() {
  FleetResilienceConfig cfg;
  cfg.suspect_after_failures = 2;
  cfg.down_after_failures = 3;
  cfg.error_window = 4;
  cfg.error_rate_threshold = 0.5;
  cfg.probe_period = 3;
  cfg.probation_cycles = 2;
  return cfg;
}

TEST(FleetHealth, ConsecutiveFailuresDriveSuspectThenDown) {
  FleetHealth h(1, tight_resilience());
  EXPECT_EQ(h.state(0), ReaderState::kHealthy);
  EXPECT_EQ(h.observe(0, true, true), FleetHealth::Transition::kNone);
  EXPECT_EQ(h.state(0), ReaderState::kHealthy);
  EXPECT_EQ(h.observe(0, true, true), FleetHealth::Transition::kWentSuspect);
  EXPECT_EQ(h.state(0), ReaderState::kSuspect);
  EXPECT_EQ(h.observe(0, true, true), FleetHealth::Transition::kWentDown);
  EXPECT_EQ(h.state(0), ReaderState::kDown);
  EXPECT_EQ(h.consecutive_failures(0), 3u);
  EXPECT_EQ(h.down_count(), 1u);
}

TEST(FleetHealth, CleanCycleResetsTheFailureStreak) {
  FleetHealth h(1, tight_resilience());
  h.observe(0, true, true);
  h.observe(0, false, false);  // One good cycle wipes the streak.
  EXPECT_EQ(h.consecutive_failures(0), 0u);
  h.observe(0, true, true);
  EXPECT_EQ(h.state(0), ReaderState::kHealthy);  // 1 < suspect_after again.
}

TEST(FleetHealth, DownReaderSkipsUntilTheProbeCycle) {
  FleetHealth h(1, tight_resilience());  // probe_period = 3
  for (int i = 0; i < 3; ++i) h.observe(0, true, true);
  ASSERT_EQ(h.state(0), ReaderState::kDown);

  // Two skips, then the third cycle is due for a probe.
  EXPECT_FALSE(h.should_run(0));
  h.observe_skip(0);
  EXPECT_FALSE(h.should_run(0));
  h.observe_skip(0);
  EXPECT_TRUE(h.should_run(0));

  // A failed probe stays Down and restarts the skip cadence.
  EXPECT_EQ(h.observe(0, true, true), FleetHealth::Transition::kNone);
  EXPECT_EQ(h.state(0), ReaderState::kDown);
  EXPECT_FALSE(h.should_run(0));
}

TEST(FleetHealth, ProbationServedRestoresHealthy) {
  FleetHealth h(1, tight_resilience());  // probation_cycles = 2
  for (int i = 0; i < 3; ++i) h.observe(0, true, true);
  h.observe_skip(0);
  h.observe_skip(0);

  // Clean probe: Probation, not yet Healthy.
  EXPECT_EQ(h.observe(0, false, false), FleetHealth::Transition::kNone);
  EXPECT_EQ(h.state(0), ReaderState::kProbation);
  // Second clean cycle serves probation.
  EXPECT_EQ(h.observe(0, false, false), FleetHealth::Transition::kRecovered);
  EXPECT_EQ(h.state(0), ReaderState::kHealthy);
  EXPECT_EQ(h.consecutive_failures(0), 0u);
  // Skips and the down-time observes were all counted.
  EXPECT_EQ(h.down_cycles(0), 4u);
}

TEST(FleetHealth, ProbationRelapseGoesBackDown) {
  FleetHealth h(1, tight_resilience());
  for (int i = 0; i < 3; ++i) h.observe(0, true, true);
  h.observe_skip(0);
  h.observe_skip(0);
  h.observe(0, false, false);
  ASSERT_EQ(h.state(0), ReaderState::kProbation);
  EXPECT_EQ(h.observe(0, true, true), FleetHealth::Transition::kNone);
  EXPECT_EQ(h.state(0), ReaderState::kDown);
  EXPECT_EQ(h.down_count(), 1u);
}

TEST(FleetHealth, ErrorRateWindowMarksSuspectWithoutBlackouts) {
  // Errored-but-alive cycles (readings still flow, failed = false) never
  // hit the consecutive-failure path; the sliding window catches them.
  FleetHealth h(1, tight_resilience());  // window 4, threshold 0.5
  h.observe(0, false, true);
  h.observe(0, false, true);
  h.observe(0, false, true);
  EXPECT_EQ(h.state(0), ReaderState::kHealthy);  // Window not full yet.
  EXPECT_EQ(h.observe(0, false, false), FleetHealth::Transition::kWentSuspect);
  EXPECT_EQ(h.state(0), ReaderState::kSuspect);

  // Clean cycles evict the errors from the window: back to Healthy.
  h.observe(0, false, false);
  EXPECT_EQ(h.state(0), ReaderState::kSuspect);  // 2/4 still at threshold.
  h.observe(0, false, false);
  EXPECT_EQ(h.state(0), ReaderState::kHealthy);  // 1/4 below threshold.
}

// --------------------------------------------------------- chaos test bed

/// A reader strip like test_fleet's FleetBed, but every reader is wrapped
/// in a FaultInjectingReaderClient so tests can script outages.  Readers
/// sit at x = 0, 4, 8, ... with radius 3; `tags_per_zone[r]` statics are
/// planted around reader r's zone center.
struct ChaosBed {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::shared_ptr<gen2::TagFlagField> field;
  std::vector<std::unique_ptr<llrp::SimReaderClient>> sims;
  std::vector<std::unique_ptr<llrp::FaultInjectingReaderClient>> injectors;
  std::vector<FleetReaderSpec> specs;

  ChaosBed(std::vector<std::size_t> tags_per_zone,
           std::vector<llrp::FaultPlan> plans = {}, std::uint64_t seed = 33) {
    util::Rng rng(seed);
    field = std::make_shared<gen2::TagFlagField>(
        gen2::SessionTiming::spec_default());
    std::size_t serial = 1;
    for (std::size_t r = 0; r < tags_per_zone.size(); ++r) {
      const double cx = static_cast<double>(r) * 4.0;
      sim::Zone zone{"zone-" + std::to_string(r), {cx, 0, 0}, 3.0};
      for (std::size_t i = 0; i < tags_per_zone[r]; ++i) {
        sim::SimTag t;
        t.epc = util::Epc::from_serial(serial++);
        t.motion = std::make_shared<sim::StaticMotion>(
            util::Vec3{cx + rng.uniform(-0.5, 0.5),
                       rng.uniform(-0.5, 0.5), 0});
        t.tag_phase_rad = 0.1 * static_cast<double>(serial);
        world.add_tag(std::move(t));
      }
      gen2::ReaderConfig rc;
      rc.coverage = zone;
      sims.push_back(std::make_unique<llrp::SimReaderClient>(
          gen2::LinkTiming(gen2::LinkParams::max_throughput()), rc, world,
          channel, std::vector<rf::Antenna>{{1, {cx, 0, 2}, 8.0}},
          seed + 10 + r, field));
      injectors.push_back(std::make_unique<llrp::FaultInjectingReaderClient>(
          *sims.back(), r < plans.size() ? plans[r] : llrp::FaultPlan{}));
      specs.push_back({injectors.back().get(), zone});
    }
  }
};

FleetConfig chaos_config(TakeoverPolicy policy) {
  FleetConfig cfg;
  cfg.controller.phase2_duration = util::msec(200);
  // Real compute time on the sim clock would make every timestamp — and
  // the twin-bed outage anchoring below — depend on host speed and
  // assessor thread count.
  cfg.controller.charge_compute_time = false;
  cfg.takeover = policy;
  cfg.resilience.suspect_after_failures = 1;
  cfg.resilience.down_after_failures = 2;
  cfg.resilience.probe_period = 2;
  cfg.resilience.probation_cycles = 1;
  return cfg;
}

/// Sim time one millisecond before fleet cycle `cycles` starts, found by
/// running a fault-free twin bed (same seed ⇒ identical pre-death clock).
/// The -1 ms matters: reader 0 runs first in the TDM rotation and the
/// injector evaluates outages at execute *start*, so an outage anchored
/// exactly at the boundary would let reader 0's first Phase I through.
util::SimTime death_before_cycle(const FleetConfig& cfg,
                                 std::vector<std::size_t> tags_per_zone,
                                 std::size_t cycles,
                                 std::uint64_t seed = 33) {
  ChaosBed probe(std::move(tags_per_zone), {}, seed);
  FleetController fleet(cfg, probe.specs, &probe.world);
  fleet.run_cycles(cycles);
  return probe.injectors[0]->now() - util::msec(1);
}

llrp::FaultPlan outage_plan(util::SimTime from,
                            std::optional<util::SimTime> until = {}) {
  llrp::FaultPlan plan;
  plan.outages.push_back({from, until});
  return plan;
}

// ------------------------------------------------- takeover and recovery

TEST(FleetFailover, DeathTriggersTakeoverAndRecoveryRestoresZones) {
  const FleetConfig cfg = chaos_config(TakeoverPolicy::kAdaptive);
  const std::vector<std::size_t> tags{3, 3, 3, 3};
  const util::SimTime death = death_before_cycle(cfg, tags, 2);
  ChaosBed bed(tags, {outage_plan(death, death + util::sec(2))});
  FleetController fleet(cfg, bed.specs, &bed.world);

  bool saw_down = false, saw_skip = false, saw_probe = false;
  bool saw_recovery = false;
  for (std::size_t c = 0; c < 24 && !saw_recovery; ++c) {
    const FleetCycleReport r = fleet.run_cycle();
    if (!r.downs.empty()) {
      saw_down = true;
      ASSERT_EQ(r.downs.size(), 1u);
      EXPECT_EQ(r.downs[0].reader, 0u);
      EXPECT_EQ(r.downs[0].zone, "zone-0");
      EXPECT_EQ(r.downs[0].consecutive_failures, 2u);
      EXPECT_EQ(r.readers[0].state, ReaderState::kDown);

      // Nearest two survivors expanded to the default budget (2× their
      // own 3 m radius), and the expansion is visible immediately.
      ASSERT_EQ(r.takeovers.size(), 2u);
      EXPECT_EQ(r.takeovers[0].from_reader, 0u);
      EXPECT_EQ(r.takeovers[0].to_reader, 1u);
      EXPECT_EQ(r.takeovers[0].radius_mm, 6000);
      EXPECT_EQ(r.takeovers[1].to_reader, 2u);
      EXPECT_EQ(r.takeovers[1].radius_mm, 6000);
      EXPECT_DOUBLE_EQ(fleet.reader_zone(1).radius_m, 6.0);
      EXPECT_DOUBLE_EQ(fleet.reader_zone(2).radius_m, 6.0);
      EXPECT_DOUBLE_EQ(fleet.reader_zone(3).radius_m, 3.0);

      // The dead reader's whole population was orphaned into the queue.
      EXPECT_EQ(r.recover.enqueued, 3u);
      EXPECT_EQ(r.recover.dropped, 0u);
    }
    if (saw_down && !saw_recovery) {
      saw_skip = saw_skip || r.readers[0].skipped;
      saw_probe = saw_probe || r.readers[0].probe;
    }
    if (!r.recoveries.empty()) {
      saw_recovery = true;
      ASSERT_EQ(r.recoveries.size(), 1u);
      EXPECT_EQ(r.recoveries[0].reader, 0u);
      EXPECT_GT(r.recoveries[0].down_for_cycles, 0u);
      EXPECT_EQ(r.readers[0].state, ReaderState::kHealthy);
    }
  }
  ASSERT_TRUE(saw_down);
  EXPECT_TRUE(saw_skip);   // probe_period 2: every other cycle skipped.
  EXPECT_TRUE(saw_probe);  // ...and the alternate cycles probed.
  ASSERT_TRUE(saw_recovery);

  // Grants dissolve on recovery: every zone back to its original radius.
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(fleet.reader_zone(k).radius_m, 3.0);
  }
  // The expanded survivors re-read the orphans: queue fully drained.
  const RecoverStats rs = fleet.recover_stats();
  EXPECT_EQ(rs.enqueued, 3u);
  EXPECT_EQ(rs.recovered, 3u);
  EXPECT_EQ(rs.pending, 0u);
}

TEST(FleetFailover, TakeoverRadiusBudgetCapsTheGrant) {
  FleetConfig cfg = chaos_config(TakeoverPolicy::kAdaptive);
  cfg.resilience.takeover_radius_budget_m = 3.5;
  const std::vector<std::size_t> tags{3, 3};
  const util::SimTime death = death_before_cycle(cfg, tags, 1);
  ChaosBed bed(tags, {outage_plan(death)});
  FleetController fleet(cfg, bed.specs, &bed.world);

  llrp::FleetTakeoverRecord grant;
  for (std::size_t c = 0; c < 6 && grant.radius_mm == 0; ++c) {
    const FleetCycleReport r = fleet.run_cycle();
    if (!r.takeovers.empty()) grant = r.takeovers[0];
  }
  // Adaptive wants dist + radius = 4 + 3 = 7 m; the budget wins.
  ASSERT_EQ(grant.radius_mm, 3500);
  EXPECT_DOUBLE_EQ(fleet.reader_zone(1).radius_m, 3.5);
}

TEST(FleetFailover, StaticNeighborPolicyExpandsByTheFixedStep) {
  FleetConfig cfg = chaos_config(TakeoverPolicy::kStaticNeighbor);
  cfg.resilience.static_expand_m = 0.75;
  const std::vector<std::size_t> tags{3, 3};
  const util::SimTime death = death_before_cycle(cfg, tags, 1);
  ChaosBed bed(tags, {outage_plan(death)});
  FleetController fleet(cfg, bed.specs, &bed.world);

  llrp::FleetTakeoverRecord grant;
  for (std::size_t c = 0; c < 6 && grant.radius_mm == 0; ++c) {
    const FleetCycleReport r = fleet.run_cycle();
    if (!r.takeovers.empty()) grant = r.takeovers[0];
  }
  ASSERT_EQ(grant.radius_mm, 3750);
  EXPECT_DOUBLE_EQ(fleet.reader_zone(1).radius_m, 3.75);
}

TEST(FleetFailover, NoTakeoverPolicyStillAccountsOrphans) {
  const FleetConfig cfg = chaos_config(TakeoverPolicy::kNone);
  const std::vector<std::size_t> tags{3, 3};
  const util::SimTime death = death_before_cycle(cfg, tags, 1);
  ChaosBed bed(tags, {outage_plan(death)});
  FleetController fleet(cfg, bed.specs, &bed.world);

  bool saw_down = false;
  for (const FleetCycleReport& r : fleet.run_cycles(8)) {
    saw_down = saw_down || !r.downs.empty();
    EXPECT_TRUE(r.takeovers.empty());
  }
  ASSERT_TRUE(saw_down);
  EXPECT_DOUBLE_EQ(fleet.reader_zone(1).radius_m, 3.0);
  // Orphans were enqueued but nobody expanded to re-cover them.
  const RecoverStats rs = fleet.recover_stats();
  EXPECT_EQ(rs.enqueued, 3u);
  EXPECT_EQ(rs.recovered, 0u);
  EXPECT_EQ(rs.pending, 3u);
}

TEST(FleetFailover, RecoverQueueIsBoundedWithDropAccounting) {
  FleetConfig cfg = chaos_config(TakeoverPolicy::kNone);
  cfg.resilience.recover_queue_capacity = 2;
  const std::vector<std::size_t> tags{5, 3};
  const util::SimTime death = death_before_cycle(cfg, tags, 1);
  ChaosBed bed(tags, {outage_plan(death)});
  FleetController fleet(cfg, bed.specs, &bed.world);

  fleet.run_cycles(8);
  const RecoverStats rs = fleet.recover_stats();
  EXPECT_EQ(rs.enqueued, 2u);
  EXPECT_EQ(rs.dropped, 3u);
  EXPECT_EQ(rs.pending, 2u);
}

TEST(FleetFailover, RecoveredDeliveriesAreCountedInSinkStats) {
  const FleetConfig cfg = chaos_config(TakeoverPolicy::kAdaptive);
  const std::vector<std::size_t> tags{3, 3, 3, 3};
  const util::SimTime death = death_before_cycle(cfg, tags, 2);
  ChaosBed bed(tags, {outage_plan(death)});
  FleetController fleet(cfg, bed.specs, &bed.world);
  fleet.pipeline().add_sink(
      std::make_shared<CallbackSink>("app", [](const rf::TagReading&) {}));

  fleet.run_cycles(8);
  const RecoverStats rs = fleet.recover_stats();
  ASSERT_EQ(rs.recovered, 3u);

  // Every re-covered orphan delivery was flagged through ReadingContext
  // and tallied per sink.
  std::uint64_t recovered = 0;
  for (const SinkStats& s : fleet.pipeline().stats()) {
    recovered += s.recovered;
  }
  EXPECT_EQ(recovered, rs.recovered);
}

// ----------------------------------------- session-aware re-inventory

TEST(FleetFailover, TakeoverRearmsSharedSessionExactlyOnce) {
  // Shared S2, all tags in zone 0: reader 0 ACKs them to B, dies, and the
  // survivor can only see them again because the takeover arms a one-shot
  // session re-arm (S2 holds B indefinitely while energized).
  FleetConfig cfg = chaos_config(TakeoverPolicy::kAdaptive);
  cfg.policy = SessionPolicy::kShared;
  cfg.shared_session = gen2::Session::kS2;
  const std::vector<std::size_t> tags{6, 0};
  const util::SimTime death = death_before_cycle(cfg, tags, 1);
  ChaosBed bed(tags, {outage_plan(death)});
  FleetController fleet(cfg, bed.specs, &bed.world);

  const FleetCycleReport first = fleet.run_cycle();
  EXPECT_EQ(first.readers[0].report.phase1_readings, 6u);
  EXPECT_EQ(first.readers[1].report.phase1_readings, 0u);
  EXPECT_EQ(bed.field->count_b(bed.world, gen2::Session::kS2,
                               bed.injectors[0]->now()),
            6u);

  // Run until the takeover cycle: reader 0 fails twice, goes Down, and
  // reader 1 — later in the same TDM rotation — re-arms and re-reads the
  // whole orphaned population despite every flag sitting on B.
  FleetCycleReport down_cycle;
  for (std::size_t c = 0; c < 6 && down_cycle.takeovers.empty(); ++c) {
    down_cycle = fleet.run_cycle();
  }
  ASSERT_FALSE(down_cycle.takeovers.empty());
  EXPECT_EQ(down_cycle.readers[1].report.phase1_readings, 6u);
  EXPECT_EQ(fleet.recover_stats().recovered, 6u);

  // The re-arm was one-shot: the next cycle is back to shared-session
  // discipline and finds everything on B again.
  const FleetCycleReport after = fleet.run_cycle();
  EXPECT_EQ(after.readers[1].report.phase1_readings, 0u);
}

// --------------------------------------------------- journal D/T/R records

TEST(FleetJournal, FaultRecordsRoundTripThroughCsv) {
  llrp::FleetJournal journal;
  journal.setup.readers = 4;
  journal.setup.policy = "independent";
  journal.setup.session = gen2::Session::kS1;
  journal.setup.dedup_window = util::msec(500);
  journal.push_cycle({3, 0, "zone-0", 0, 0, 0, 0});
  journal.push_down({3, 0, "zone-0", 2});
  journal.push_takeover({3, 0, 1, 6000});
  journal.push_takeover({3, 0, 2, 3500});
  journal.push_recover({9, 0, 6});

  const std::string csv = journal.to_csv();
  const llrp::FleetJournal parsed = llrp::FleetJournal::from_csv(csv);
  EXPECT_EQ(parsed.to_csv(), csv);
  EXPECT_EQ(fleet_journal_digest(parsed), fleet_journal_digest(journal));
  ASSERT_EQ(parsed.size(), 5u);
  EXPECT_EQ(parsed.entries()[1].kind, llrp::FleetJournalEntry::Kind::kDown);
  EXPECT_EQ(parsed.entries()[1].down.zone, "zone-0");
  EXPECT_EQ(parsed.entries()[1].down.consecutive_failures, 2u);
  EXPECT_EQ(parsed.entries()[2].takeover.radius_mm, 6000);
  EXPECT_EQ(parsed.entries()[3].takeover.to_reader, 2u);
  EXPECT_EQ(parsed.entries()[4].recover.down_for_cycles, 6u);
}

TEST(FleetJournal, RejectsMalformedFaultRecords) {
  const std::string header =
      "# tagwatch-fleet-journal v1\nS,2,independent,S1,0\n";
  EXPECT_THROW(llrp::FleetJournal::from_csv(header + "D,1,0\n"),
               std::invalid_argument);
  EXPECT_THROW(llrp::FleetJournal::from_csv(header + "T,1,0,1\n"),
               std::invalid_argument);
  EXPECT_THROW(llrp::FleetJournal::from_csv(header + "R,1\n"),
               std::invalid_argument);
}

// --------------------------------------------------- record → replay

TEST(FleetFailover, ChaosRecordReplayPreservesFleetJournalDigest) {
  // Reader 0 dies permanently mid-run; readers 1-3 are flaky (random
  // execute failures).  Record everything, then replay from the reader
  // journals alone (no world, no injectors) and demand the identical
  // fleet story — downs, takeovers, and all.
  const FleetConfig base = chaos_config(TakeoverPolicy::kAdaptive);
  const std::vector<std::size_t> tags{3, 3, 3, 3};
  const util::SimTime death = death_before_cycle(base, tags, 2, /*seed=*/55);

  std::vector<llrp::FaultPlan> plans(4);
  plans[0] = outage_plan(death);
  for (std::size_t r = 1; r < 4; ++r) {
    plans[r].seed = 0xfa171 + r;
    plans[r].execute_failure_probability = 0.15;
    plans[r].weight_disconnect = 0.3;
    plans[r].weight_partial_report = 0.3;
  }
  ChaosBed bed(tags, plans, /*seed=*/55);

  std::vector<std::unique_ptr<llrp::RecordingReaderClient>> recorders;
  std::vector<FleetReaderSpec> recording_specs = bed.specs;
  for (std::size_t k = 0; k < bed.specs.size(); ++k) {
    recorders.push_back(
        std::make_unique<llrp::RecordingReaderClient>(*bed.specs[k].client));
    recording_specs[k].client = recorders[k].get();
  }

  FleetConfig cfg = base;
  util::FakeWallClock record_clock(/*auto_step=*/0.001);
  cfg.controller.wall_clock = &record_clock;
  FleetController recorded(cfg, recording_specs, &bed.world);
  const auto recorded_reports = recorded.run_cycles(8);

  // The chaos actually happened: a D record, takeovers, and errored
  // executes journaled as X records on the dead reader's journal.
  std::size_t downs = 0, takeovers = 0;
  for (const auto& r : recorded_reports) {
    downs += r.downs.size();
    takeovers += r.takeovers.size();
  }
  ASSERT_GE(downs, 1u);
  ASSERT_GE(takeovers, 1u);
  EXPECT_NE(recorders[0]->journal().to_csv().find("\nX,"), std::string::npos);

  std::vector<std::unique_ptr<llrp::ReplayReaderClient>> replays;
  std::vector<FleetReaderSpec> replay_specs = bed.specs;
  for (std::size_t k = 0; k < recorders.size(); ++k) {
    replays.push_back(std::make_unique<llrp::ReplayReaderClient>(
        llrp::ReaderJournal::from_csv(recorders[k]->journal().to_csv())));
    replay_specs[k].client = replays[k].get();
  }
  util::FakeWallClock replay_clock(/*auto_step=*/0.001);
  cfg.controller.wall_clock = &replay_clock;
  FleetController replayed(cfg, replay_specs, /*world=*/nullptr);
  const auto replayed_reports = replayed.run_cycles(8);

  EXPECT_EQ(fleet_journal_digest(replayed.journal()),
            fleet_journal_digest(recorded.journal()));
  EXPECT_EQ(replayed.journal().to_csv(), recorded.journal().to_csv());
  ASSERT_EQ(replayed_reports.size(), recorded_reports.size());
  for (std::size_t c = 0; c < recorded_reports.size(); ++c) {
    SCOPED_TRACE("cycle " + std::to_string(c));
    EXPECT_EQ(replayed_reports[c].downs.size(),
              recorded_reports[c].downs.size());
    EXPECT_EQ(replayed_reports[c].takeovers.size(),
              recorded_reports[c].takeovers.size());
    EXPECT_EQ(replayed_reports[c].recoveries.size(),
              recorded_reports[c].recoveries.size());
    EXPECT_EQ(replayed_reports[c].delivered_total,
              recorded_reports[c].delivered_total);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(replayed_reports[c].readers[k].state,
                recorded_reports[c].readers[k].state);
      EXPECT_EQ(replayed_reports[c].readers[k].skipped,
                recorded_reports[c].readers[k].skipped);
    }
    EXPECT_EQ(replayed_reports[c].recover.recovered,
              recorded_reports[c].recover.recovered);
  }
}

// ----------------------------------------------- determinism across threads

/// Serializes everything a fleet run reported, so runs can be compared
/// byte-for-byte.
std::string describe(const std::vector<FleetCycleReport>& reports) {
  std::ostringstream out;
  for (const FleetCycleReport& r : reports) {
    out << "cycle " << r.cycle_index << ": " << r.readings_total << '/'
        << r.delivered_total << '/' << r.duplicates_total << '\n';
    for (const FleetReaderCycle& k : r.readers) {
      out << "  reader " << k.reader << ' ' << to_string(k.state)
          << (k.skipped ? " skipped" : "") << (k.probe ? " probe" : "")
          << (k.over_budget ? " over-budget" : "") << " p1="
          << k.report.phase1_readings << " p2=" << k.report.phase2_readings
          << " delivered=" << k.delivered << " faults="
          << k.health.faults_total() << '\n';
    }
    for (const auto& d : r.downs) {
      out << "  D " << d.reader << ' ' << d.zone << '\n';
    }
    for (const auto& t : r.takeovers) {
      out << "  T " << t.from_reader << "->" << t.to_reader << ' '
          << t.radius_mm << "mm\n";
    }
    for (const auto& rec : r.recoveries) {
      out << "  R " << rec.reader << " after " << rec.down_for_cycles << '\n';
    }
    out << "  queue " << r.recover.enqueued << '/' << r.recover.dropped
        << '/' << r.recover.recovered << '/' << r.recover.pending << '\n';
  }
  return out.str();
}

TEST(FleetFailover, AssessorThreadCountNeverChangesTheFaultStory) {
  const FleetConfig base = chaos_config(TakeoverPolicy::kAdaptive);
  const std::vector<std::size_t> tags{3, 3, 3, 3};
  const util::SimTime death = death_before_cycle(base, tags, 2);

  std::string journal_csv, report_text;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("assessor_threads " + std::to_string(threads));
    ChaosBed bed(tags, {outage_plan(death, death + util::sec(2))});
    FleetConfig cfg = base;
    cfg.controller.assessor_threads = threads;
    FleetController fleet(cfg, bed.specs, &bed.world);
    const std::string text = describe(fleet.run_cycles(12));
    const std::string csv = fleet.journal().to_csv();
    if (journal_csv.empty()) {
      journal_csv = csv;
      report_text = text;
      // The scenario is interesting: it contains a down and a takeover.
      EXPECT_NE(csv.find("\nD,"), std::string::npos);
      EXPECT_NE(csv.find("\nT,"), std::string::npos);
    } else {
      EXPECT_EQ(csv, journal_csv);
      EXPECT_EQ(text, report_text);
    }
  }
}

// ------------------------------------------------------------- watchdog

TEST(FleetFailover, WatchdogBudgetMarksSlowCyclesAsFailures) {
  FleetConfig cfg = chaos_config(TakeoverPolicy::kNone);
  // Far below any real cycle (Phase II alone is 200 ms): every cycle
  // overruns, so every reader fails its first cycle and goes Suspect.
  cfg.resilience.reader_cycle_budget = util::msec(1);
  ChaosBed bed({2, 2});
  FleetController fleet(cfg, bed.specs, &bed.world);

  const FleetCycleReport r = fleet.run_cycle();
  for (const FleetReaderCycle& k : r.readers) {
    EXPECT_TRUE(k.over_budget);
    EXPECT_EQ(k.state, ReaderState::kSuspect);
  }
}

}  // namespace
}  // namespace tagwatch::core
