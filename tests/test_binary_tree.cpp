// Tests for the binary tree-splitting anti-collision policy.
#include <gtest/gtest.h>

#include <set>

#include "gen2/reader.hpp"
#include "util/circular.hpp"

namespace tagwatch::gen2 {
namespace {

struct TreeFixture {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::optional<Gen2Reader> reader;

  explicit TreeFixture(std::size_t n_tags, double error_rate = 0.0,
                       std::uint64_t seed = 77) {
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(i + 1);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      world.add_tag(std::move(t));
    }
    ReaderConfig cfg;
    cfg.policy = AntiCollisionPolicy::kBinaryTree;
    cfg.slot_error_rate = error_rate;
    reader.emplace(LinkTiming(LinkParams::max_throughput()), cfg, world,
                   channel, std::vector<rf::Antenna>{{1, {0, 0, 2}, 8.0}},
                   util::Rng(seed + 1));
  }
};

TEST(BinaryTree, ReadsEveryTagExactlyOnce) {
  for (const std::size_t n : {1u, 2u, 7u, 40u, 100u}) {
    TreeFixture fx(n);
    std::set<std::string> seen;
    std::size_t reads = 0;
    fx.reader->run_inventory_round(QueryCommand{},
                                   [&](const rf::TagReading& r) {
                                     seen.insert(r.epc.to_hex());
                                     ++reads;
                                   });
    EXPECT_EQ(reads, n) << "n=" << n;
    EXPECT_EQ(seen.size(), n) << "n=" << n;
  }
}

TEST(BinaryTree, EmptyPopulationCostsOneProbe) {
  TreeFixture fx(0);
  const RoundStats stats =
      fx.reader->run_inventory_round(QueryCommand{}, nullptr);
  EXPECT_EQ(stats.success_slots, 0u);
  EXPECT_EQ(stats.slots, 1u);  // the single all-tags probe slot
}

TEST(BinaryTree, SlotAccountingConsistent) {
  TreeFixture fx(25);
  const RoundStats stats =
      fx.reader->run_inventory_round(QueryCommand{}, nullptr);
  EXPECT_EQ(stats.success_slots, 25u);
  EXPECT_EQ(stats.slots, stats.empty_slots + stats.collision_slots +
                             stats.success_slots + stats.lost_slots);
  // Tree resolution of n tags takes ~2.88·n slots on average; allow slack.
  EXPECT_LT(stats.slots, 25u * 6);
  EXPECT_GE(stats.slots, 25u);
}

TEST(BinaryTree, CompetitiveWithQAdaptive) {
  // Tree splitting is a valid COTS-era alternative: same order of
  // magnitude, though Q-adaptive usually wins (§2.3's point that the COTS
  // algorithm is near-optimal).
  auto run = [](AntiCollisionPolicy policy) {
    sim::World world;
    util::Rng rng(88);
    for (std::size_t i = 0; i < 30; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(i + 1);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      world.add_tag(std::move(t));
    }
    rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
    ReaderConfig cfg;
    cfg.policy = policy;
    Gen2Reader reader(LinkTiming(LinkParams::max_throughput()), cfg, world,
                      channel, {{1, {0, 0, 2}, 8.0}}, util::Rng(89));
    const RoundStats stats =
      reader.run_inventory_round(QueryCommand{}, nullptr);
    EXPECT_EQ(stats.success_slots, 30u);
    return util::to_seconds(stats.duration);
  };
  const double tree = run(AntiCollisionPolicy::kBinaryTree);
  const double qadaptive = run(AntiCollisionPolicy::kQAdaptive);
  EXPECT_LT(tree, qadaptive * 3.0);
  EXPECT_LT(qadaptive, tree * 3.0);
}

TEST(BinaryTree, SurvivesDecodeErrors) {
  TreeFixture fx(15, /*error_rate=*/0.3);
  std::size_t reads = 0;
  fx.reader->run_inventory_round(QueryCommand{},
                                 [&reads](const rf::TagReading&) { ++reads; });
  EXPECT_EQ(reads, 15u);  // retried until every tag is read
}

TEST(BinaryTree, FlipsSessionFlagLikeAloha) {
  TreeFixture fx(8);
  QueryCommand q;
  q.target = InvFlag::kA;
  std::size_t first = 0, second = 0;
  fx.reader->run_inventory_round(
      q, [&first](const rf::TagReading&) { ++first; });
  fx.reader->run_inventory_round(
      q, [&second](const rf::TagReading&) { ++second; });
  EXPECT_EQ(first, 8u);
  EXPECT_EQ(second, 0u);  // all flags flipped to B
  q.target = InvFlag::kB;
  std::size_t third = 0;
  fx.reader->run_inventory_round(
      q, [&third](const rf::TagReading&) { ++third; });
  EXPECT_EQ(third, 8u);
}

}  // namespace
}  // namespace tagwatch::gen2
