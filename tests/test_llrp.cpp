// Tests for ROSpec structures, XML round-trip, and the SimReaderClient.
#include <gtest/gtest.h>

#include <set>

#include "llrp/rospec.hpp"
#include "llrp/rospec_xml.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

namespace tagwatch::llrp {
namespace {

ROSpec sample_rospec() {
  ROSpec spec;
  spec.id = 7;
  spec.priority = 2;
  spec.loops = 3;
  AISpec ai;
  ai.antenna_indexes = {0, 2};
  ai.session = gen2::Session::kS2;
  ai.initial_q = 5;
  ai.stop = AiSpecStopTrigger::after_duration(util::msec(5000));
  ai.filters.push_back(
      {gen2::MemBank::kEpc, 3, util::BitString::from_binary("1101")});
  ai.filters.push_back(
      {gen2::MemBank::kEpc, 10, util::BitString::from_binary("01")});
  spec.ai_specs.push_back(ai);
  AISpec plain;
  plain.stop = AiSpecStopTrigger::after_rounds(4);
  spec.ai_specs.push_back(plain);
  return spec;
}

TEST(RospecXml, RoundTripPreservesEverything) {
  const ROSpec original = sample_rospec();
  const std::string xml = to_xml(original);
  const ROSpec parsed = rospec_from_xml(xml);

  EXPECT_EQ(parsed.id, original.id);
  EXPECT_EQ(parsed.priority, original.priority);
  EXPECT_EQ(parsed.loops, original.loops);
  ASSERT_EQ(parsed.ai_specs.size(), 2u);
  const AISpec& ai = parsed.ai_specs[0];
  EXPECT_EQ(ai.antenna_indexes, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(ai.session, gen2::Session::kS2);
  EXPECT_EQ(ai.initial_q, 5);
  EXPECT_EQ(ai.stop.kind, AiSpecStopTrigger::Kind::kDuration);
  EXPECT_EQ(ai.stop.duration, util::msec(5000));
  ASSERT_EQ(ai.filters.size(), 2u);
  EXPECT_EQ(ai.filters[0].pointer, 3u);
  EXPECT_EQ(ai.filters[0].mask.to_binary_string(), "1101");
  EXPECT_EQ(ai.filters[1].pointer, 10u);
  const AISpec& plain = parsed.ai_specs[1];
  EXPECT_EQ(plain.stop.kind, AiSpecStopTrigger::Kind::kRounds);
  EXPECT_EQ(plain.stop.rounds, 4u);
  EXPECT_TRUE(plain.filters.empty());

  // Serialization is stable.
  EXPECT_EQ(to_xml(parsed), xml);
}

TEST(RospecXml, ParsesHandWrittenDocument) {
  const ROSpec spec = rospec_from_xml(R"(
    <ROSpec id="1">
      <AISpec session="1" initialQ="4">
        <Antennas>0</Antennas>
        <C1G2Filter bank="1" pointer="5"><Mask>101</Mask></C1G2Filter>
        <StopTrigger kind="rounds" rounds="2"/>
      </AISpec>
    </ROSpec>)");
  ASSERT_EQ(spec.ai_specs.size(), 1u);
  EXPECT_EQ(spec.ai_specs[0].filters[0].mask.to_binary_string(), "101");
  EXPECT_EQ(spec.ai_specs[0].stop.rounds, 2u);
}

TEST(RospecXml, RejectsMalformedInput) {
  EXPECT_THROW(rospec_from_xml("<NotROSpec/>"), std::invalid_argument);
  EXPECT_THROW(rospec_from_xml("<ROSpec id=\"1\">"), std::invalid_argument);
  EXPECT_THROW(
      rospec_from_xml("<ROSpec><AISpec><C1G2Filter/></AISpec></ROSpec>"),
      std::invalid_argument);
  EXPECT_THROW(rospec_from_xml("<ROSpec></Other>"), std::invalid_argument);
}

// ----------------------------------------------------- SimReaderClient

struct ClientFixture {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::china_920_926()};
  std::vector<rf::Antenna> antennas{{1, {0, 0, 2}, 8.0}, {2, {2, 0, 2}, 8.0}};
  std::optional<SimReaderClient> client;

  explicit ClientFixture(std::size_t n_tags) {
    util::Rng rng(111);
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(i + 1);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    client.emplace(gen2::LinkTiming(gen2::LinkParams::max_throughput()),
                   gen2::ReaderConfig{}, world, channel, antennas, 7);
  }
};

TEST(SimReaderClient, UnfilteredRoundsReadAllRepeatedly) {
  ClientFixture fx(12);
  ROSpec spec;
  AISpec ai;
  ai.stop = AiSpecStopTrigger::after_rounds(4);
  spec.ai_specs.push_back(ai);
  const ExecutionReport report = fx.client->execute(spec).report;
  EXPECT_EQ(report.rounds, 4u);
  // Dual-target alternation: every round reads all 12 tags.
  EXPECT_EQ(report.readings.size(), 48u);
  EXPECT_EQ(report.slot_totals.success_slots, 48u);
}

TEST(SimReaderClient, AntennaCyclingAcrossRounds) {
  ClientFixture fx(4);
  ROSpec spec;
  AISpec ai;
  ai.stop = AiSpecStopTrigger::after_rounds(4);  // both antennas, twice
  spec.ai_specs.push_back(ai);
  const auto report = fx.client->execute(spec).report;
  std::set<rf::AntennaId> used;
  for (const auto& r : report.readings) used.insert(r.antenna);
  EXPECT_EQ(used.size(), 2u);
}

TEST(SimReaderClient, FilterRestrictsAndRepeats) {
  ClientFixture fx(16);
  ROSpec spec;
  AISpec ai;
  ai.filters.push_back({gen2::MemBank::kEpc, 95,
                        util::BitString::from_binary("1")});  // odd serials
  ai.stop = AiSpecStopTrigger::after_rounds(6);
  spec.ai_specs.push_back(ai);
  const auto report = fx.client->execute(spec).report;
  // 8 odd tags × 6 rounds: Select re-arms the session flag each round.
  EXPECT_EQ(report.readings.size(), 48u);
  for (const auto& r : report.readings) {
    EXPECT_TRUE(r.epc.bits().bit(95)) << r.epc.to_hex();
  }
}

TEST(SimReaderClient, ConjunctiveFiltersIntersect) {
  ClientFixture fx(16);
  ROSpec spec;
  AISpec ai;
  // serial bit95 == 1 AND bit94 == 1 → serials ≡ 3 (mod 4): 3,7,11,15.
  ai.filters.push_back(
      {gen2::MemBank::kEpc, 95, util::BitString::from_binary("1")});
  ai.filters.push_back(
      {gen2::MemBank::kEpc, 94, util::BitString::from_binary("1")});
  ai.stop = AiSpecStopTrigger::after_rounds(1);
  spec.ai_specs.push_back(ai);
  const auto report = fx.client->execute(spec).report;
  EXPECT_EQ(report.readings.size(), 4u);
}

TEST(SimReaderClient, DurationStopTriggerBoundsTime) {
  ClientFixture fx(10);
  ROSpec spec;
  AISpec ai;
  ai.stop = AiSpecStopTrigger::after_duration(util::msec(500));
  spec.ai_specs.push_back(ai);
  const auto t0 = fx.client->now();
  const auto report = fx.client->execute(spec).report;
  const auto elapsed = fx.client->now() - t0;
  EXPECT_GE(elapsed, util::msec(500));
  // Overshoot bounded by one round (tens of ms at this scale).
  EXPECT_LT(elapsed, util::msec(700));
  EXPECT_GT(report.rounds, 5u);
}

TEST(SimReaderClient, LoopsRepeatAiSpecList) {
  ClientFixture fx(5);
  ROSpec spec;
  spec.loops = 3;
  AISpec ai;
  ai.stop = AiSpecStopTrigger::after_rounds(2);
  spec.ai_specs.push_back(ai);
  const auto report = fx.client->execute(spec).report;
  EXPECT_EQ(report.rounds, 6u);
}

TEST(SimReaderClient, ListenerStreamsEveryReading) {
  ClientFixture fx(6);
  std::size_t streamed = 0;
  fx.client->set_read_listener(
      [&streamed](const rf::TagReading&) { ++streamed; });
  ROSpec spec;
  AISpec ai;
  ai.stop = AiSpecStopTrigger::after_rounds(2);
  spec.ai_specs.push_back(ai);
  const auto report = fx.client->execute(spec).report;
  EXPECT_EQ(streamed, report.readings.size());
}

TEST(SimReaderClient, ExplicitAntennaSelection) {
  ClientFixture fx(4);
  ROSpec spec;
  AISpec ai;
  ai.antenna_indexes = {1};
  ai.stop = AiSpecStopTrigger::after_rounds(3);
  spec.ai_specs.push_back(ai);
  const auto report = fx.client->execute(spec).report;
  for (const auto& r : report.readings) EXPECT_EQ(r.antenna, 2);
}

}  // namespace
}  // namespace tagwatch::llrp
