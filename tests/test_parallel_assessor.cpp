// core::ParallelAssessor differential suite: the engine's one promise is
// bit-identical output to the serial MotionAssessor for EVERY thread
// count, so every test here replays one reading stream through both and
// demands field-for-field equality — randomized scenes up to 4,096 tags,
// corrupt (fault-injected) readings, duplicate reads, out-of-window
// training traffic, and forget_after eviction included.
#include "core/parallel_assessor.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/assessor.hpp"
#include "rf/measurement.hpp"
#include "util/epc.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::core {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

std::vector<util::Epc> make_epcs(std::size_t n) {
  std::vector<util::Epc> epcs;
  epcs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    epcs.push_back(util::Epc::from_serial(i + 1));
  }
  return epcs;
}

/// One synthetic reading.  `corrupt_rate` injects the kind of garbage a
/// faulty transport produces (wild phases, absurd RSSI) — the assessors
/// must agree on garbage exactly as they do on clean data.
rf::TagReading random_reading(util::Rng& rng, const util::Epc& epc,
                              util::SimTime t, double corrupt_rate) {
  rf::TagReading r;
  r.epc = epc;
  r.antenna = static_cast<rf::AntennaId>(rng.uniform_u64(1, 4));
  r.channel = static_cast<std::size_t>(rng.uniform_u64(0, 15));
  r.phase_rad = rng.uniform(0.0, 6.283185307179586);
  r.rssi_dbm = rng.uniform(-70.0, -40.0);
  r.timestamp = t;
  if (corrupt_rate > 0 && rng.chance(corrupt_rate)) {
    r.phase_rad = rng.chance(0.5) ? rng.uniform(-1e6, 1e6) : 0.0;
    r.rssi_dbm = rng.chance(0.5) ? -200.0 : 30.0;
  }
  return r;
}

/// A pre-generated stream: windows of in-window readings plus optional
/// between-window (training-only) traffic, identical for every assessor.
struct Stream {
  struct Window {
    std::vector<rf::TagReading> in_window;
    std::vector<rf::TagReading> after_assess;  ///< Train-only traffic.
    util::SimTime assess_at{0};
  };
  std::vector<Window> windows;
};

Stream make_stream(std::uint64_t seed, std::size_t n_tags,
                   std::size_t n_windows, std::size_t readings_per_window,
                   double corrupt_rate = 0.0, double tag_skip_rate = 0.0) {
  util::Rng rng(seed);
  const std::vector<util::Epc> epcs = make_epcs(n_tags);
  Stream stream;
  util::SimTime t = util::msec(1);
  for (std::size_t w = 0; w < n_windows; ++w) {
    Stream::Window window;
    for (std::size_t i = 0; i < readings_per_window; ++i) {
      const util::Epc& epc =
          epcs[static_cast<std::size_t>(rng.uniform_u64(0, n_tags - 1))];
      if (tag_skip_rate > 0 && rng.chance(tag_skip_rate)) continue;
      t += util::usec(static_cast<std::int64_t>(rng.uniform_u64(50, 500)));
      window.in_window.push_back(random_reading(rng, epc, t, corrupt_rate));
      if (rng.chance(0.05)) {  // Duplicate read, same slot time.
        window.in_window.push_back(window.in_window.back());
      }
    }
    t += util::msec(5);
    window.assess_at = t;
    // Phase-II-style traffic between windows: learns, never votes.
    const std::size_t extra = readings_per_window / 4;
    for (std::size_t i = 0; i < extra; ++i) {
      const util::Epc& epc =
          epcs[static_cast<std::size_t>(rng.uniform_u64(0, n_tags - 1))];
      t += util::usec(static_cast<std::int64_t>(rng.uniform_u64(50, 500)));
      window.after_assess.push_back(
          random_reading(rng, epc, t, corrupt_rate));
    }
    stream.windows.push_back(std::move(window));
  }
  return stream;
}

void expect_identical(const std::vector<TagAssessment>& serial,
                      const std::vector<TagAssessment>& parallel) {
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].epc, serial[i].epc) << "entry " << i;
    EXPECT_EQ(parallel[i].window_readings, serial[i].window_readings)
        << serial[i].epc.to_hex();
    EXPECT_EQ(parallel[i].moving_votes, serial[i].moving_votes)
        << serial[i].epc.to_hex();
    EXPECT_EQ(parallel[i].mobile, serial[i].mobile)
        << serial[i].epc.to_hex();
  }
}

/// Replays `stream` through the serial oracle and through the engine at
/// every thread count, asserting equality at every observable boundary.
void run_differential(const AssessorConfig& config, const Stream& stream) {
  for (const std::size_t threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MotionAssessor serial(config);
    ParallelAssessor engine(config, threads);
    EXPECT_EQ(engine.thread_count(), threads);
    for (const Stream::Window& w : stream.windows) {
      serial.begin_window();
      engine.begin_window();
      for (const rf::TagReading& r : w.in_window) {
        serial.ingest(r);
        engine.ingest(r);
      }
      expect_identical(serial.assess(w.assess_at),
                       engine.assess(w.assess_at));
      EXPECT_EQ(engine.tracked_count(), serial.tracked_count());
      // Repeat calls replay the cached window verbatim.
      expect_identical(serial.assess(w.assess_at + util::sec(999)),
                       engine.assess(w.assess_at + util::sec(999)));
      for (const rf::TagReading& r : w.after_assess) {
        serial.ingest(r);
        engine.ingest(r);
      }
      EXPECT_EQ(engine.mobile_tags(w.assess_at),
                serial.mobile_tags(w.assess_at));
    }
  }
}

TEST(ParallelAssessor, MatchesSerialOnSmallScene) {
  run_differential(AssessorConfig{},
                   make_stream(/*seed=*/11, /*n_tags=*/16, /*n_windows=*/6,
                               /*readings_per_window=*/160));
}

TEST(ParallelAssessor, MatchesSerialForEveryDetectorKind) {
  for (const DetectorKind kind :
       {DetectorKind::kPhaseMog, DetectorKind::kPhaseDiff,
        DetectorKind::kRssMog, DetectorKind::kRssDiff,
        DetectorKind::kHybridAnd, DetectorKind::kHybridOr}) {
    SCOPED_TRACE(static_cast<int>(kind));
    AssessorConfig config;
    config.detector_kind = kind;
    run_differential(config,
                     make_stream(/*seed=*/23, /*n_tags=*/32, /*n_windows=*/4,
                                 /*readings_per_window=*/200));
  }
}

TEST(ParallelAssessor, MatchesSerialWithCorruptReadings) {
  run_differential(AssessorConfig{},
                   make_stream(/*seed=*/37, /*n_tags=*/64, /*n_windows=*/5,
                               /*readings_per_window=*/400,
                               /*corrupt_rate=*/0.15));
}

TEST(ParallelAssessor, MatchesSerialOnLargeRandomizedScene) {
  // The acceptance-scale scene: 4,096 tags, two windows, corrupt readings
  // mixed in.  Every thread count must reproduce the serial output.
  run_differential(AssessorConfig{},
                   make_stream(/*seed=*/41, /*n_tags=*/4096, /*n_windows=*/2,
                               /*readings_per_window=*/12000,
                               /*corrupt_rate=*/0.05,
                               /*tag_skip_rate=*/0.10));
}

TEST(ParallelAssessor, MatchesSerialThroughForgetAfterEviction) {
  AssessorConfig config;
  config.forget_after = util::sec(2);
  const std::vector<util::Epc> epcs = make_epcs(40);
  for (const std::size_t threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MotionAssessor serial(config);
    ParallelAssessor engine(config, threads);
    util::Rng rng(7);

    // Window 1: every tag read.
    serial.begin_window();
    engine.begin_window();
    for (std::size_t i = 0; i < epcs.size(); ++i) {
      const auto r = random_reading(rng, epcs[i],
                                    util::msec(10 + static_cast<int>(i)), 0);
      serial.ingest(r);
      engine.ingest(r);
    }
    expect_identical(serial.assess(util::msec(100)),
                     engine.assess(util::msec(100)));
    EXPECT_EQ(engine.tracked_count(), 40u);

    // Window 2, three seconds later: only the first half is read, so the
    // other half ages past forget_after and must be evicted identically.
    serial.begin_window();
    engine.begin_window();
    for (std::size_t i = 0; i < epcs.size() / 2; ++i) {
      const auto r = random_reading(rng, epcs[i], util::sec(3), 0);
      serial.ingest(r);
      engine.ingest(r);
    }
    expect_identical(serial.assess(util::sec(4)), engine.assess(util::sec(4)));
    EXPECT_EQ(serial.tracked_count(), 20u);
    EXPECT_EQ(engine.tracked_count(), 20u);

    // Window 3: an evicted tag returns — treated as brand new (and mobile
    // on its first reading) by both.
    serial.begin_window();
    engine.begin_window();
    const auto back = random_reading(rng, epcs[30], util::sec(5), 0);
    serial.ingest(back);
    engine.ingest(back);
    const auto& s = serial.assess(util::sec(5));
    expect_identical(s, engine.assess(util::sec(5)));
    ASSERT_EQ(s.size(), 1u);
    EXPECT_TRUE(s[0].mobile);
  }
}

TEST(ParallelAssessor, BuffersTrainingTrafficUntilNextBoundary) {
  // Readings ingested with no window open may be buffered by the engine;
  // they must still be applied before the next window's verdicts.
  AssessorConfig config;
  ParallelAssessor engine(config, 4);
  MotionAssessor serial(config);
  const Stream stream = make_stream(/*seed=*/53, /*n_tags=*/8,
                                    /*n_windows=*/3,
                                    /*readings_per_window=*/120);
  // Feed window 0's readings entirely OUTSIDE any window.
  for (const rf::TagReading& r : stream.windows[0].in_window) {
    serial.ingest(r);
    engine.ingest(r);
  }
  EXPECT_EQ(engine.tracked_count(), serial.tracked_count());
  serial.begin_window();
  engine.begin_window();
  for (const rf::TagReading& r : stream.windows[1].in_window) {
    serial.ingest(r);
    engine.ingest(r);
  }
  const util::SimTime t = stream.windows[1].assess_at;
  expect_identical(serial.assess(t), engine.assess(t));
}

TEST(ParallelAssessor, AssessBeforeAnyWindowIsEmpty) {
  ParallelAssessor engine(AssessorConfig{}, 4);
  EXPECT_TRUE(engine.assess(util::sec(1)).empty());
  EXPECT_TRUE(engine.mobile_tags(util::sec(1)).empty());
  EXPECT_EQ(engine.tracked_count(), 0u);
}

TEST(ParallelAssessor, InvalidDetectorConfigThrowsEagerly) {
  // The serial path validates lazily at first detector construction; the
  // engine fails fast in the constructor instead.
  AssessorConfig config;
  config.detector.phase_mog.learning_rate = 1.5;
  EXPECT_THROW(ParallelAssessor(config, 2), std::invalid_argument);
}

}  // namespace
}  // namespace tagwatch::core
