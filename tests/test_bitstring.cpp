#include "util/bitstring.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tagwatch::util {
namespace {

TEST(BitString, DefaultIsEmpty) {
  BitString b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
}

TEST(BitString, ZeroInitialized) {
  BitString b(130);  // spans three words
  EXPECT_EQ(b.size(), 130u);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_FALSE(b.bit(i)) << "bit " << i;
  }
}

TEST(BitString, FromValueMsbFirst) {
  const BitString b(0b101, 3);
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
  EXPECT_EQ(b.to_binary_string(), "101");
}

TEST(BitString, FromValueRejectsOver64) {
  EXPECT_THROW(BitString(1u, 65), std::invalid_argument);
}

TEST(BitString, SetAndGetAcrossWordBoundary) {
  BitString b(128);
  b.set_bit(63, true);
  b.set_bit(64, true);
  b.set_bit(127, true);
  EXPECT_TRUE(b.bit(63));
  EXPECT_TRUE(b.bit(64));
  EXPECT_TRUE(b.bit(127));
  EXPECT_FALSE(b.bit(62));
  EXPECT_FALSE(b.bit(65));
  b.set_bit(64, false);
  EXPECT_FALSE(b.bit(64));
}

TEST(BitString, BoundsChecked) {
  BitString b(8);
  EXPECT_THROW(b.bit(8), std::out_of_range);
  EXPECT_THROW(b.set_bit(8, true), std::out_of_range);
}

TEST(BitString, FromBinaryRoundTrip) {
  const std::string pattern = "0011101011110000101";
  const BitString b = BitString::from_binary(pattern);
  EXPECT_EQ(b.size(), pattern.size());
  EXPECT_EQ(b.to_binary_string(), pattern);
}

TEST(BitString, FromBinaryRejectsGarbage) {
  EXPECT_THROW(BitString::from_binary("01x0"), std::invalid_argument);
}

TEST(BitString, FromHexRoundTrip) {
  const BitString b = BitString::from_hex("3000AB");
  EXPECT_EQ(b.size(), 24u);
  EXPECT_EQ(b.to_hex_string(), "3000AB");
  EXPECT_EQ(b.to_binary_string(), "001100000000000010101011");
}

TEST(BitString, FromHexLowercase) {
  EXPECT_EQ(BitString::from_hex("ab").to_hex_string(), "AB");
}

TEST(BitString, FromHexRejectsGarbage) {
  EXPECT_THROW(BitString::from_hex("0G"), std::invalid_argument);
}

TEST(BitString, ToHexRequiresNibbleAlignment) {
  EXPECT_THROW(BitString(5).to_hex_string(), std::logic_error);
}

TEST(BitString, SubstringExtractsGen2Style) {
  // Paper Fig. 9: EPC 001110, mask "10" at pointer 4 should be extracted.
  const BitString epc = BitString::from_binary("001110");
  EXPECT_EQ(epc.substring(3, 2).to_binary_string(), "11");
  EXPECT_EQ(epc.substring(0, 6).to_binary_string(), "001110");
  EXPECT_THROW(epc.substring(5, 2), std::out_of_range);
}

TEST(BitString, MatchesImplementsSelectRule) {
  const BitString epc = BitString::from_binary("001110");
  EXPECT_TRUE(epc.matches(2, BitString::from_binary("11")));
  EXPECT_FALSE(epc.matches(0, BitString::from_binary("11")));
  // Out-of-range mask never matches.
  EXPECT_FALSE(epc.matches(5, BitString::from_binary("10")));
  // Empty mask matches everywhere in range.
  EXPECT_TRUE(epc.matches(0, BitString()));
}

TEST(BitString, ToUint64) {
  EXPECT_EQ(BitString::from_binary("101100").to_uint64(), 0b101100u);
  EXPECT_EQ(BitString(64).to_uint64(), 0u);
  EXPECT_THROW(BitString(65).to_uint64(), std::logic_error);
}

TEST(BitString, EqualityAndOrdering) {
  const BitString a = BitString::from_binary("0011");
  const BitString b = BitString::from_binary("0011");
  const BitString c = BitString::from_binary("0100");
  const BitString prefix = BitString::from_binary("001");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_LT(prefix, a);  // prefix orders before its extension
}

TEST(BitString, HashDistinguishesSizeAndContent) {
  EXPECT_NE(BitString(3).hash(), BitString(4).hash());
  EXPECT_NE(BitString::from_binary("01").hash(),
            BitString::from_binary("10").hash());
  EXPECT_EQ(BitString::from_binary("0110").hash(),
            BitString::from_binary("0110").hash());
}

}  // namespace
}  // namespace tagwatch::util
