// Scale and long-run behaviour: the paper's largest population (400 tags),
// frequency hopping, and dynamic populations over many cycles.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

namespace tagwatch::core {
namespace {

TEST(Stress, FourHundredTagRoundCompletes) {
  // One inventory round over the paper's maximum population.
  sim::World world;
  util::Rng rng(211);
  for (std::size_t i = 0; i < 400; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::random(rng);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-5, 5), rng.uniform(-5, 5), 0});
    world.add_tag(std::move(t));
  }
  rf::RfChannel channel(rf::ChannelPlan::china_920_926());
  gen2::Gen2Reader reader(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                          gen2::ReaderConfig{}, world, channel,
                          {{1, {0, 0, 2}, 8.0}}, util::Rng(212));
  std::size_t reads = 0;
  const auto stats = reader.run_inventory_round(
      gen2::QueryCommand{}, [&reads](const rf::TagReading&) { ++reads; });
  EXPECT_EQ(reads, 400u);
  // C(400) under the paper model is ~0.6 s; the simulated round should be
  // the same order (0.2–2 s).
  EXPECT_GT(util::to_seconds(stats.duration), 0.2);
  EXPECT_LT(util::to_seconds(stats.duration), 2.0);
}

TEST(Stress, TagwatchAt400TagsSelectsMinority) {
  sim::World world;
  util::Rng rng(213);
  std::vector<util::Epc> movers;
  for (std::size_t i = 0; i < 400; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::random(rng);
    if (i < 8) {
      t.motion = std::make_shared<sim::CircularTrack>(
          util::Vec3{0.5, 0.5, 0}, 0.2, 0.7, rng.uniform(0.0, util::kTwoPi));
      movers.push_back(t.epc);
    } else {
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-5, 5), rng.uniform(-5, 5), 0});
    }
    t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(t));
  }
  rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
  llrp::SimReaderClient client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel,
      {{1, {-5, -5, 0}, 8.0}, {2, {5, 5, 0}, 8.0}}, 214);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::sec(2);
  // Two antennas: compounding false votes converge faster at threshold 2.
  cfg.assessor.mobile_vote_threshold = 2;
  TagwatchController ctl(cfg, client);
  const auto reports = ctl.run_cycles(16);
  // Converged: the late cycles are selective with a small target set.
  std::unordered_set<util::Epc> targeted_union;
  for (std::size_t c = reports.size() - 4; c < reports.size(); ++c) {
    EXPECT_FALSE(reports[c].read_all_fallback) << "cycle " << c;
    EXPECT_LE(reports[c].targets.size(), 24u) << "cycle " << c;
    targeted_union.insert(reports[c].targets.begin(),
                          reports[c].targets.end());
  }
  // Across a few cycles, (nearly) every mover is scheduled; a single cycle
  // can miss one whose two Phase I phases both matched a learned component.
  std::size_t movers_targeted = 0;
  for (const auto& m : movers) {
    if (targeted_union.contains(m)) ++movers_targeted;
  }
  EXPECT_GE(movers_targeted, 7u);
}

TEST(Stress, DynamicPopulationChurn) {
  // Tags continuously arrive and depart; the controller must keep cycling
  // and its history must track the churn without leaks or stalls.
  sim::World world;
  util::Rng rng(215);
  for (std::size_t i = 0; i < 60; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::random(rng);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-3, 3), rng.uniform(-3, 3), 0});
    // Staggered presence: each tag present for a 20 s window.
    t.arrives = util::sec(static_cast<std::int64_t>(i));
    t.departs = util::sec(static_cast<std::int64_t>(i) + 20);
    t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(t));
  }
  rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
  llrp::SimReaderClient client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel, {{1, {0, 0, 2}, 8.0}}, 216);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::sec(1);
  cfg.assessor.forget_after = util::sec(10);
  TagwatchController ctl(cfg, client);
  std::size_t max_tracked = 0;
  while (ctl.now() < util::sec(80)) {
    ctl.run_cycle();
    max_tracked = std::max(max_tracked, ctl.assessor().tracked_count());
  }
  // Roughly 20 tags present at once; tracking must follow the churn and
  // forget departures rather than accumulating all 60.
  EXPECT_GT(max_tracked, 10u);
  EXPECT_LT(ctl.assessor().tracked_count(), 40u);
  EXPECT_EQ(ctl.history().tag_count(), 60u);  // history keeps everything
}

TEST(Stress, HoppingReaderKeepsChannelMetadataConsistent) {
  sim::World world;
  util::Rng rng(217);
  for (std::size_t i = 0; i < 10; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::from_serial(i + 1);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
    world.add_tag(std::move(t));
  }
  rf::RfChannel channel(rf::ChannelPlan::china_920_926());
  gen2::ReaderConfig rcfg;
  rcfg.channel_dwell = util::msec(40);
  gen2::Gen2Reader reader(gen2::LinkTiming(gen2::LinkParams::max_throughput()),
                          rcfg, world, channel, {{1, {0, 0, 2}, 8.0}},
                          util::Rng(218));
  gen2::InvFlag target = gen2::InvFlag::kA;
  for (int round = 0; round < 60; ++round) {
    gen2::QueryCommand q;
    q.target = target;
    target = target == gen2::InvFlag::kA ? gen2::InvFlag::kB
                                         : gen2::InvFlag::kA;
    reader.run_inventory_round(q, [&reader](const rf::TagReading& r) {
      EXPECT_LT(r.channel, 16u);
      EXPECT_EQ(r.channel, reader.current_channel());
    });
  }
}

}  // namespace
}  // namespace tagwatch::core
