// Differential property tests for the incremental cross-cycle planner:
// under randomized per-cycle churn (arrivals, departures, target flips)
// IncrementalPlanner::plan_cycle must stay plan-equivalent — bit-identical
// selections, costs, fallback flag and covered union — to the from-scratch
// oracle (GreedyCoverScheduler over a fresh BitmaskIndex), every cycle,
// including across the churn-threshold fallback boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <stdexcept>
#include <vector>

#include "core/incremental_planner.hpp"
#include "core/setcover.hpp"
#include "util/rng.hpp"

namespace tagwatch::core {
namespace {

/// Scene under churn: EPC → is_target, kept sorted by the map ordering so
/// the extracted vectors match CycleReport's sorted/deduplicated contract.
class ChurnScene {
 public:
  ChurnScene(std::size_t n, std::size_t n_targets, util::Rng& rng) {
    while (tags_.size() < n) tags_.emplace(util::Epc::random(rng), false);
    set_random_targets(n_targets, rng);
  }

  void churn(std::size_t departures, std::size_t arrivals,
             std::size_t flips, util::Rng& rng) {
    for (std::size_t i = 0; i < departures && tags_.size() > 1; ++i) {
      tags_.erase(random_it(rng));
    }
    for (std::size_t i = 0; i < arrivals; ++i) {
      tags_.emplace(util::Epc::random(rng), false);
    }
    for (std::size_t i = 0; i < flips; ++i) {
      auto it = random_it(rng);
      it->second = !it->second;
    }
    ensure_target(rng);
  }

  void set_random_targets(std::size_t n_targets, util::Rng& rng) {
    for (auto& [epc, is_target] : tags_) is_target = false;
    for (std::size_t i = 0; i < n_targets; ++i) random_it(rng)->second = true;
    ensure_target(rng);
  }

  std::vector<util::Epc> scene() const {
    std::vector<util::Epc> out;
    out.reserve(tags_.size());
    for (const auto& [epc, is_target] : tags_) out.push_back(epc);
    return out;
  }

  std::vector<util::Epc> targets() const {
    std::vector<util::Epc> out;
    for (const auto& [epc, is_target] : tags_) {
      if (is_target) out.push_back(epc);
    }
    return out;
  }

 private:
  std::map<util::Epc, bool>::iterator random_it(util::Rng& rng) {
    auto it = tags_.begin();
    std::advance(it, rng.below(static_cast<std::uint32_t>(tags_.size())));
    return it;
  }

  void ensure_target(util::Rng& rng) {
    for (const auto& [epc, is_target] : tags_) {
      if (is_target) return;
    }
    random_it(rng)->second = true;
  }

  std::map<util::Epc, bool> tags_;
};

Schedule oracle_plan(const std::vector<util::Epc>& scene,
                     const std::vector<util::Epc>& targets) {
  const BitmaskIndex index(scene);
  const GreedyCoverScheduler scheduler(InventoryCostModel::paper_fit());
  return scheduler.plan(index, index.bitmap_of(targets));
}

void expect_schedules_identical(const Schedule& fast,
                                const Schedule& reference) {
  ASSERT_EQ(fast.selections.size(), reference.selections.size());
  for (std::size_t i = 0; i < fast.selections.size(); ++i) {
    EXPECT_EQ(fast.selections[i].bitmask, reference.selections[i].bitmask)
        << "selection " << i;
    EXPECT_EQ(fast.selections[i].covered_total,
              reference.selections[i].covered_total)
        << "selection " << i;
    EXPECT_EQ(fast.selections[i].covered_targets,
              reference.selections[i].covered_targets)
        << "selection " << i;
  }
  // Costs accumulate in the same selection order: bit-identical doubles.
  EXPECT_EQ(fast.estimated_cost_s, reference.estimated_cost_s);
  EXPECT_EQ(fast.used_naive_fallback, reference.used_naive_fallback);
  EXPECT_EQ(fast.covered_union, reference.covered_union);
}

void expect_cycle_matches_oracle(IncrementalPlanner& planner,
                                 const ChurnScene& world) {
  const auto scene = world.scene();
  const auto targets = world.targets();
  const Schedule fast = planner.plan_cycle(scene, targets);
  expect_schedules_identical(fast, oracle_plan(scene, targets));
}

TEST(IncrementalPlanner, FirstCycleMatchesOracleAcrossScales) {
  util::Rng rng(2017);
  for (const std::size_t n : {1u, 2u, 64u, 256u, 1024u}) {
    ChurnScene world(n, 1 + n / 64, rng);
    IncrementalPlanner planner(InventoryCostModel::paper_fit());
    expect_cycle_matches_oracle(planner, world);
    EXPECT_EQ(planner.stats().full_rebuilds, 1u) << "scene " << n;
  }
}

TEST(IncrementalPlanner, RandomChurnStaysEquivalentEveryCycle) {
  util::Rng rng(90210);
  ChurnScene world(1024, 24, rng);
  IncrementalPlanner planner(InventoryCostModel::paper_fit(), 0.25);
  expect_cycle_matches_oracle(planner, world);
  for (int cycle = 0; cycle < 30; ++cycle) {
    world.churn(rng.below(12), rng.below(12), rng.below(16), rng);
    SCOPED_TRACE(cycle);
    expect_cycle_matches_oracle(planner, world);
  }
  EXPECT_GE(planner.stats().incremental_cycles, 25u);
  EXPECT_EQ(planner.stats().cycles, 31u);
}

TEST(IncrementalPlanner, HeavyTargetChurnStaysEquivalent) {
  util::Rng rng(551);
  ChurnScene world(512, 8, rng);
  IncrementalPlanner planner(InventoryCostModel::paper_fit(), 0.5);
  expect_cycle_matches_oracle(planner, world);
  for (int cycle = 0; cycle < 12; ++cycle) {
    // Stationary population; only the mover (target) set flips.
    world.set_random_targets(4 + rng.below(24), rng);
    SCOPED_TRACE(cycle);
    expect_cycle_matches_oracle(planner, world);
  }
}

TEST(IncrementalPlanner, ClusteredEpcsStayEquivalent) {
  util::Rng rng(77);
  // Sequential serials share long prefixes: deep tries, dense branch use.
  std::map<std::uint64_t, bool> serials;
  while (serials.size() < 256) serials.emplace(rng.below(512), false);
  std::vector<util::Epc> scene;
  for (const auto& [serial, unused] : serials) {
    scene.push_back(util::Epc::from_serial(serial));
  }
  IncrementalPlanner planner(InventoryCostModel::paper_fit(), 0.5);
  for (int cycle = 0; cycle < 8; ++cycle) {
    std::vector<util::Epc> targets;
    for (const util::Epc& epc : scene) {
      if (rng.below(16) == 0) targets.push_back(epc);
    }
    if (targets.empty()) targets.push_back(scene[rng.below(256)]);
    SCOPED_TRACE(cycle);
    expect_schedules_identical(planner.plan_cycle(scene, targets),
                               oracle_plan(scene, targets));
  }
}

TEST(IncrementalPlanner, SixteenThousandTagLightChurn) {
  util::Rng rng(16384);
  ChurnScene world(16384, 96, rng);
  IncrementalPlanner planner(InventoryCostModel::paper_fit(), 0.2);
  expect_cycle_matches_oracle(planner, world);
  for (int cycle = 0; cycle < 3; ++cycle) {
    world.churn(40, 40, 30, rng);
    SCOPED_TRACE(cycle);
    expect_cycle_matches_oracle(planner, world);
  }
  EXPECT_EQ(planner.stats().full_rebuilds, 1u);
  EXPECT_EQ(planner.stats().incremental_cycles, 3u);
}

TEST(IncrementalPlanner, FallbackBoundaryCrossingsStayEquivalent) {
  util::Rng rng(313);
  ChurnScene world(512, 12, rng);
  IncrementalPlanner planner(InventoryCostModel::paper_fit(), 0.05);
  expect_cycle_matches_oracle(planner, world);
  EXPECT_TRUE(planner.stats().last_was_rebuild);
  for (int wave = 0; wave < 4; ++wave) {
    // Below threshold: 512 tags · 0.05 = 25 events allowed; stay under.
    world.churn(4, 4, 4, rng);
    SCOPED_TRACE(wave);
    expect_cycle_matches_oracle(planner, world);
    EXPECT_FALSE(planner.stats().last_was_rebuild);
    EXPECT_LE(planner.stats().last_churn, 0.05);
    // Above threshold: force a rebuild, then verify equivalence held.
    world.churn(40, 40, 20, rng);
    expect_cycle_matches_oracle(planner, world);
    EXPECT_TRUE(planner.stats().last_was_rebuild);
    EXPECT_GT(planner.stats().last_churn, 0.05);
  }
  EXPECT_EQ(planner.stats().full_rebuilds, 5u);
  EXPECT_EQ(planner.stats().incremental_cycles, 4u);
}

TEST(IncrementalPlanner, ZeroThresholdRebuildsOnAnyDelta) {
  util::Rng rng(99);
  ChurnScene world(128, 4, rng);
  IncrementalPlanner planner(InventoryCostModel::paper_fit(), 0.0);
  expect_cycle_matches_oracle(planner, world);
  world.churn(1, 1, 0, rng);
  expect_cycle_matches_oracle(planner, world);
  EXPECT_TRUE(planner.stats().last_was_rebuild);
  // No delta at all: churn 0.0 is not > 0.0, so the index is reused.
  expect_cycle_matches_oracle(planner, world);
  EXPECT_FALSE(planner.stats().last_was_rebuild);
}

TEST(IncrementalPlanner, EpcLengthChangeForcesRebuild) {
  util::Rng rng(128);
  IncrementalPlanner planner(InventoryCostModel::paper_fit());
  std::vector<util::Epc> scene96;
  for (std::uint64_t s = 0; s < 64; ++s) {
    scene96.push_back(util::Epc::from_serial(s));
  }
  planner.plan_cycle(scene96, {scene96[7]});
  std::map<util::Epc, bool> tags;
  while (tags.size() < 64) {
    tags.emplace(util::Epc::random(rng, util::Epc::kBits128), false);
  }
  std::vector<util::Epc> scene128;
  for (const auto& [epc, unused] : tags) scene128.push_back(epc);
  expect_schedules_identical(
      planner.plan_cycle(scene128, {scene128[9]}),
      oracle_plan(scene128, {scene128[9]}));
  EXPECT_EQ(planner.stats().full_rebuilds, 2u);
}

TEST(IncrementalPlanner, InputValidationMatchesOracleContracts) {
  util::Rng rng(5);
  IncrementalPlanner planner(InventoryCostModel::paper_fit());
  const util::Epc a = util::Epc::from_serial(1);
  const util::Epc b = util::Epc::from_serial(2);
  EXPECT_THROW(planner.plan_cycle({}, {a}), std::invalid_argument);
  EXPECT_THROW(planner.plan_cycle({b, a}, {a}), std::invalid_argument);
  EXPECT_THROW(planner.plan_cycle({a, a}, {a}), std::invalid_argument);
  // Unknown targets are ignored (bitmap_of semantics); none left → throw.
  EXPECT_THROW(planner.plan_cycle({a}, {b}), std::invalid_argument);
  // Mixed EPC lengths in one scene are rejected like BitmaskIndex.
  const util::Epc wide = util::Epc::random(rng, util::Epc::kBits128);
  EXPECT_THROW(planner.plan_cycle({a, wide}, {a}), std::invalid_argument);
  EXPECT_THROW(IncrementalPlanner(InventoryCostModel::paper_fit(), -0.1),
               std::invalid_argument);
}

TEST(IncrementalPlanner, UnknownTargetsIgnoredLikeBitmapOf) {
  std::vector<util::Epc> scene;
  for (std::uint64_t s = 0; s < 32; ++s) {
    scene.push_back(util::Epc::from_serial(2 * s));
  }
  std::vector<util::Epc> targets = {scene[3], util::Epc::from_serial(7),
                                    scene[20]};
  std::sort(targets.begin(), targets.end(),
            [](const util::Epc& x, const util::Epc& y) { return x < y; });
  IncrementalPlanner planner(InventoryCostModel::paper_fit());
  expect_schedules_identical(planner.plan_cycle(scene, targets),
                             oracle_plan(scene, targets));
}

}  // namespace
}  // namespace tagwatch::core
