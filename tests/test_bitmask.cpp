// Tests for bitmask coverage and the candidate index table (§5.2–5.3).
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/bitmask.hpp"
#include "util/rng.hpp"

namespace tagwatch::core {
namespace {

util::Epc epc6(std::string_view bits) {
  return util::Epc(util::BitString::from_binary(bits));
}

TEST(Bitmask, CoversMatchesSubstring) {
  // Paper Fig. 9(a): S1(10₂, 4, 2) covers 001110 and 010010 but also 110110.
  Bitmask s1{4, util::BitString::from_binary("10")};
  EXPECT_TRUE(s1.covers(epc6("001110")));
  EXPECT_TRUE(s1.covers(epc6("010010")));
  EXPECT_TRUE(s1.covers(epc6("110110")));
  EXPECT_FALSE(s1.covers(epc6("101100")));
}

TEST(Bitmask, ToStringIsPaperNotation) {
  Bitmask s{3, util::BitString::from_binary("11")};
  EXPECT_EQ(s.to_string(), "S(11, 3, 2)");
}

TEST(BitmaskIndex, SceneIsSortedAndDeduplicated) {
  BitmaskIndex index({epc6("110110"), epc6("001110"), epc6("001110")});
  ASSERT_EQ(index.scene_size(), 2u);
  EXPECT_EQ(index.scene()[0], epc6("001110"));
  EXPECT_EQ(index.scene()[1], epc6("110110"));
}

TEST(BitmaskIndex, RejectsEmptyOrMixedLengths) {
  EXPECT_THROW(BitmaskIndex({}), std::invalid_argument);
  EXPECT_THROW(BitmaskIndex({epc6("0011"), epc6("00111")}),
               std::invalid_argument);
}

TEST(BitmaskIndex, BitmapOfMapsSubset) {
  BitmaskIndex index({epc6("000001"), epc6("000010"), epc6("000100")});
  const auto bitmap = index.bitmap_of({epc6("000010"), epc6("111111")});
  EXPECT_EQ(bitmap.count(), 1u);  // unknown EPC ignored
  EXPECT_TRUE(bitmap.test(1));
  // epcs_of inverts bitmap_of.
  const auto epcs = index.epcs_of(bitmap);
  ASSERT_EQ(epcs.size(), 1u);
  EXPECT_EQ(epcs[0], epc6("000010"));
}

TEST(BitmaskIndex, EpcsOfRejectsSizeMismatch) {
  // Regression: epcs_of used to silently truncate on a size mismatch while
  // candidates_for threw — both must validate consistently.
  BitmaskIndex index({epc6("000001"), epc6("000010"), epc6("000100")});
  EXPECT_THROW(index.epcs_of(util::IndicatorBitmap(2)), std::invalid_argument);
  EXPECT_THROW(index.epcs_of(util::IndicatorBitmap(4)), std::invalid_argument);
  // The matching size still round-trips.
  const auto bitmap = index.bitmap_of({epc6("000010")});
  EXPECT_EQ(index.epcs_of(bitmap).size(), 1u);
}

TEST(BitmaskIndex, CandidatesForRejectsSizeMismatch) {
  BitmaskIndex index({epc6("000001"), epc6("000010")});
  EXPECT_THROW(index.candidates_for(util::IndicatorBitmap(3)),
               std::invalid_argument);
  EXPECT_THROW(index.candidates_for_reference(util::IndicatorBitmap(3)),
               std::invalid_argument);
}

TEST(BitmaskIndex, FastPathMatchesReferenceEnumeration) {
  // The incremental fast path must reproduce the reference enumeration
  // exactly — same rows, same order, same first-seen bitmask per coverage.
  util::Rng rng(95);
  std::vector<util::Epc> scene;
  for (int i = 0; i < 70; ++i) scene.push_back(util::Epc::random(rng));
  BitmaskIndex index(scene);
  const auto targets = index.bitmap_of({scene[1], scene[33], scene[64]});
  const auto fast = index.candidates_for(targets);
  const auto reference = index.candidates_for_reference(targets);
  ASSERT_EQ(fast.size(), reference.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].bitmask, reference[i].bitmask) << "row " << i;
    EXPECT_EQ(fast[i].coverage, reference[i].coverage) << "row " << i;
  }
}

TEST(BitmaskIndex, CandidatesAllCoverAtLeastOneTarget) {
  util::Rng rng(91);
  std::vector<util::Epc> scene;
  for (int i = 0; i < 40; ++i) scene.push_back(util::Epc::random(rng));
  BitmaskIndex index(scene);
  auto targets = index.bitmap_of({scene[3], scene[17]});
  const auto candidates = index.candidates_for(targets);
  EXPECT_FALSE(candidates.empty());
  for (const auto& c : candidates) {
    EXPECT_GT(c.coverage.and_count(targets), 0u)
        << c.bitmask.to_string() << " covers no target";
  }
}

TEST(BitmaskIndex, CandidateCoverageBitmapsAreCorrect) {
  util::Rng rng(92);
  std::vector<util::Epc> scene;
  for (int i = 0; i < 25; ++i) scene.push_back(util::Epc::random(rng));
  BitmaskIndex index(scene);
  auto targets = index.bitmap_of({scene[0]});
  for (const auto& c : index.candidates_for(targets)) {
    // Verify the incremental-AND construction against direct matching.
    for (std::size_t i = 0; i < index.scene_size(); ++i) {
      EXPECT_EQ(c.coverage.test(i), c.bitmask.covers(index.scene()[i]))
          << c.bitmask.to_string() << " tag " << i;
    }
  }
}

TEST(BitmaskIndex, CoverageBitmapsAreDeduplicated) {
  util::Rng rng(93);
  std::vector<util::Epc> scene;
  for (int i = 0; i < 10; ++i) scene.push_back(util::Epc::random(rng));
  BitmaskIndex index(scene);
  auto targets = index.bitmap_of({scene[2], scene[7]});
  std::unordered_set<util::IndicatorBitmap> seen;
  for (const auto& c : index.candidates_for(targets)) {
    EXPECT_TRUE(seen.insert(c.coverage).second)
        << "duplicate coverage for " << c.bitmask.to_string();
  }
}

TEST(BitmaskIndex, FullEpcMaskAlwaysPresent) {
  // The naive per-target bitmask (the whole EPC) must be representable: a
  // candidate whose coverage is exactly the singleton target.
  util::Rng rng(94);
  std::vector<util::Epc> scene;
  for (int i = 0; i < 30; ++i) scene.push_back(util::Epc::random(rng));
  BitmaskIndex index(scene);
  const auto targets = index.bitmap_of({scene[11]});
  bool found_singleton = false;
  for (const auto& c : index.candidates_for(targets)) {
    if (c.coverage == targets) found_singleton = true;
  }
  EXPECT_TRUE(found_singleton);
}

TEST(BitmaskIndex, PaperFig9Example) {
  // Scene: three targets 001110, 010010, 101100 and non-target 110110.
  const auto t1 = epc6("001110");
  const auto t2 = epc6("010010");
  const auto t3 = epc6("101100");
  const auto nt = epc6("110110");
  BitmaskIndex index({t1, t2, t3, nt});
  const auto targets = index.bitmap_of({t1, t2, t3});
  const auto candidates = index.candidates_for(targets);

  // Fig. 9(b)'s optimal pair must be among the candidates' coverages:
  // S(11, 2, 2) covers 001110 and 101100 but not the non-target;
  const Bitmask s_11_2{2, util::BitString::from_binary("11")};
  // S(01, 0, 2) covers 010010 only (of this scene).
  const Bitmask s_01_0{0, util::BitString::from_binary("01")};
  bool found_a = false, found_b = false;
  for (const auto& c : candidates) {
    util::IndicatorBitmap expected_a(4), expected_b(4);
    for (std::size_t i = 0; i < 4; ++i) {
      if (s_11_2.covers(index.scene()[i])) expected_a.set(i);
      if (s_01_0.covers(index.scene()[i])) expected_b.set(i);
    }
    if (c.coverage == expected_a) found_a = true;
    if (c.coverage == expected_b) found_b = true;
  }
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_b);
}

}  // namespace
}  // namespace tagwatch::core
