// Record → replay round trip: a RecordingReaderClient journals a live run
// and a ReplayReaderClient reproduces it bit-for-bit without the simulator.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "core/tagwatch.hpp"
#include "llrp/recording_reader_client.hpp"
#include "llrp/replay_reader_client.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"
#include "util/wall_clock.hpp"

namespace tagwatch::llrp {
namespace {

struct RecordBed {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, 5, 0}, 8.0}};
  std::optional<SimReaderClient> sim;
  std::optional<RecordingReaderClient> recorder;

  RecordBed(std::size_t n_tags, std::size_t n_movers,
            std::uint64_t seed = 33) {
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::random(rng);
      if (i < n_movers) {
        t.motion = std::make_shared<sim::CircularTrack>(
            util::Vec3{0.5, 0.5, 0}, 0.2, 0.7, static_cast<double>(i));
      } else {
        t.motion = std::make_shared<sim::StaticMotion>(
            util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      }
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    sim.emplace(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                gen2::ReaderConfig{}, world, channel, antennas, seed + 1);
    recorder.emplace(*sim);
  }
};

core::TagwatchConfig short_config() {
  core::TagwatchConfig cfg;
  cfg.phase2_duration = util::sec(1);
  return cfg;
}

std::vector<core::CycleReport> record_run(RecordBed& bed, std::size_t cycles) {
  core::TagwatchController ctl(short_config(), *bed.recorder);
  return ctl.run_cycles(cycles);
}

TEST(ReplayReaderClient, ReproducesRecordedRunBitForBit) {
  RecordBed bed(20, 2);
  const auto recorded = record_run(bed, 5);

  // Round-trip the journal through its CSV form, then replay.
  const ReaderJournal journal =
      ReaderJournal::from_csv(bed.recorder->journal().to_csv());
  ReplayReaderClient replay(journal);
  core::TagwatchController ctl(short_config(), replay);
  const auto replayed = ctl.run_cycles(5);

  ASSERT_EQ(replayed.size(), recorded.size());
  for (std::size_t c = 0; c < recorded.size(); ++c) {
    SCOPED_TRACE("cycle " + std::to_string(c));
    EXPECT_EQ(replayed[c].scene, recorded[c].scene);
    EXPECT_EQ(replayed[c].mobile, recorded[c].mobile);
    EXPECT_EQ(replayed[c].targets, recorded[c].targets);
    EXPECT_EQ(replayed[c].read_all_fallback, recorded[c].read_all_fallback);
    EXPECT_EQ(replayed[c].phase1_readings, recorded[c].phase1_readings);
    EXPECT_EQ(replayed[c].phase2_readings, recorded[c].phase2_readings);
    EXPECT_EQ(replayed[c].phase2_counts, recorded[c].phase2_counts);
    EXPECT_EQ(replayed[c].phase1_duration, recorded[c].phase1_duration);
    EXPECT_EQ(replayed[c].phase2_duration, recorded[c].phase2_duration);
    EXPECT_EQ(replayed[c].interphase_gap, recorded[c].interphase_gap);
    EXPECT_EQ(replayed[c].schedule.selections.size(),
              recorded[c].schedule.selections.size());
    EXPECT_EQ(replayed[c].slot_totals.slots, recorded[c].slot_totals.slots);
  }
  EXPECT_EQ(replay.remaining(), 0u);
}

TEST(ReplayReaderClient, JournalCsvRoundTripIsExact) {
  RecordBed bed(10, 1);
  record_run(bed, 3);
  const std::string csv = bed.recorder->journal().to_csv();
  const ReaderJournal parsed = ReaderJournal::from_csv(csv);
  EXPECT_EQ(parsed.size(), bed.recorder->journal().size());
  EXPECT_EQ(parsed.to_csv(), csv);
  EXPECT_EQ(parsed.capabilities.antenna_count, 2u);
  EXPECT_EQ(journal_digest(parsed), journal_digest(bed.recorder->journal()));
}

TEST(ReplayReaderClient, IdenticalSeedsProduceIdenticalJournalDigests) {
  // The whole-journal digest is the one-number determinism witness: two
  // runs from the same seed must collide, a different seed must not.
  // charge_compute_time puts *host* time on the reader clock, so the runs
  // share a FakeWallClock step to keep the charge itself deterministic.
  RecordBed a(10, 1, /*seed=*/41);
  RecordBed b(10, 1, /*seed=*/41);
  RecordBed c(10, 1, /*seed=*/42);
  for (RecordBed* bed : {&a, &b, &c}) {
    util::FakeWallClock clock(/*auto_step=*/0.001);
    core::TagwatchConfig cfg = short_config();
    cfg.wall_clock = &clock;
    core::TagwatchController ctl(cfg, *bed->recorder);
    ctl.run_cycles(3);
  }
  EXPECT_EQ(journal_digest(a.recorder->journal()),
            journal_digest(b.recorder->journal()));
  EXPECT_NE(journal_digest(a.recorder->journal()),
            journal_digest(c.recorder->journal()));
}

TEST(ReplayReaderClient, ReplayDrivenReRecordingPreservesTheDigest) {
  // Record a run, replay it into a *second* recorder: the re-recorded
  // journal must digest identically — replay is bit-exact end to end.
  // Both controllers step an identical fake clock so the journaled
  // compute-time charges match to the microsecond.
  RecordBed bed(12, 2, /*seed=*/55);
  util::FakeWallClock record_clock(/*auto_step=*/0.001);
  core::TagwatchConfig cfg = short_config();
  cfg.wall_clock = &record_clock;
  {
    core::TagwatchController ctl(cfg, *bed.recorder);
    ctl.run_cycles(3);
  }
  const std::uint64_t original = journal_digest(bed.recorder->journal());

  ReplayReaderClient replay(bed.recorder->journal());
  RecordingReaderClient rerecorder(replay);
  util::FakeWallClock replay_clock(/*auto_step=*/0.001);
  cfg.wall_clock = &replay_clock;
  core::TagwatchController ctl(cfg, rerecorder);
  ctl.run_cycles(3);

  // The capabilities line names the backend ("replay(sim-gen2)" vs
  // "sim-gen2"); the *operation stream* is what must be bit-identical.
  ReaderJournal rerecorded = rerecorder.journal();
  rerecorded.capabilities = bed.recorder->journal().capabilities;
  EXPECT_EQ(journal_digest(rerecorded), original);
}

TEST(ReplayReaderClient, StrictModeRejectsDivergingController) {
  RecordBed bed(12, 1);
  record_run(bed, 2);

  // A controller with a different Phase I Q issues different ROSpecs.
  ReplayReaderClient replay(bed.recorder->journal());
  core::TagwatchConfig diverged = short_config();
  diverged.phase1_initial_q = 7;
  core::TagwatchController ctl(diverged, replay);
  EXPECT_THROW(ctl.run_cycle(), std::runtime_error);
}

TEST(ReplayReaderClient, RunningPastTheRecordingThrows) {
  RecordBed bed(8, 0);
  record_run(bed, 2);
  ReplayReaderClient replay(bed.recorder->journal());
  core::TagwatchController ctl(short_config(), replay);
  ctl.run_cycles(2);
  EXPECT_THROW(ctl.run_cycle(), std::runtime_error);
}

TEST(ReplayReaderClient, CapabilitiesComeFromTheJournal) {
  RecordBed bed(5, 0);
  record_run(bed, 1);
  ReplayReaderClient replay(bed.recorder->journal());
  const ReaderCapabilities caps = replay.capabilities();
  EXPECT_EQ(caps.antenna_count, 2u);
  EXPECT_FALSE(caps.live);
  EXPECT_EQ(caps.model, "replay(sim-gen2)");
}

TEST(RecordingReaderClient, StreamsReadingsToListenerLive) {
  RecordBed bed(6, 0);
  std::size_t streamed = 0;
  bed.recorder->set_read_listener(
      [&streamed](const rf::TagReading&) { ++streamed; });
  ROSpec spec;
  AISpec ai;
  ai.stop = AiSpecStopTrigger::after_rounds(2);
  spec.ai_specs.push_back(ai);
  const ExecutionReport report = bed.recorder->execute(spec).report;
  EXPECT_EQ(streamed, report.readings.size());
  EXPECT_GT(streamed, 0u);
  ASSERT_EQ(bed.recorder->journal().size(), 1u);
  EXPECT_EQ(bed.recorder->journal().entries()[0].digest, rospec_digest(spec));
}

TEST(RecordingReaderClient, JournalsAdvanceCharges) {
  RecordBed bed(4, 0);
  const util::SimTime before = bed.recorder->now();
  bed.recorder->advance(util::msec(25));
  EXPECT_EQ(bed.recorder->now() - before, util::msec(25));
  ASSERT_EQ(bed.recorder->journal().size(), 1u);
  const JournalEntry& entry = bed.recorder->journal().entries()[0];
  EXPECT_EQ(entry.kind, JournalEntry::Kind::kAdvance);
  EXPECT_EQ(entry.advance, util::msec(25));
}

TEST(ReaderJournal, RejectsMalformedCsv) {
  EXPECT_THROW(ReaderJournal::from_csv("not a journal"),
               std::invalid_argument);
  EXPECT_THROW(ReaderJournal::from_csv("# tagwatch-reader-journal v1\nX,1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      ReaderJournal::from_csv("# tagwatch-reader-journal v1\nE,zz\n"),
      std::invalid_argument);
  // Truncated mid-entry: the execute promises a reading that never comes.
  EXPECT_THROW(
      ReaderJournal::from_csv(
          "# tagwatch-reader-journal v1\nE,0123456789abcdef,0,10,1,1,0,0,1,"
          "0,10,1\n"),
      std::invalid_argument);
}

TEST(ReaderJournal, SaveLoadRoundTrip) {
  RecordBed bed(6, 1);
  record_run(bed, 2);
  const std::string path = ::testing::TempDir() + "tagwatch_journal.csv";
  bed.recorder->journal().save(path);
  const ReaderJournal loaded = ReaderJournal::load(path);
  EXPECT_EQ(loaded.to_csv(), bed.recorder->journal().to_csv());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tagwatch::llrp
