// Differential fuzz of the AVX2 kernel table against its scalar twin
// (the bit-identity contract of util/simd.hpp), plus dispatch-state
// tests.  Every kernel is exercised at adversarial widths — zero words,
// one word, non-multiple-of-4 tails, all-ones, all-zeros, random — and
// the in-place kernels additionally with dst aliasing src exactly.  When
// the build or CPU has no AVX2 table the differential cases skip.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace tagwatch::util::simd {
namespace {

// CI's forced-scalar pass sets TAGWATCH_TEST_FORCE_SCALAR=1 so the whole
// suite runs against the portable kernels even on AVX2 hardware —
// proving no code path silently depends on the vector implementations.
// A static initializer (not a gtest Environment) so the pin is in place
// before any test file's own statics read the active table.
const bool g_forced_scalar = [] {
  const char* v = std::getenv("TAGWATCH_TEST_FORCE_SCALAR");
  if (v == nullptr || v[0] == '\0' || v[0] == '0') return false;
  set_active_isa(Isa::kScalar);
  return true;
}();

// Widths spanning empty, sub-block, exact-block, and ragged-tail shapes
// (the AVX2 loops process 4 words per iteration).
constexpr std::size_t kWidths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9,
                                   15, 16, 17, 31, 32, 33, 100, 257};

enum class Fill { kZeros, kOnes, kRandom };
constexpr Fill kFills[] = {Fill::kZeros, Fill::kOnes, Fill::kRandom};

std::vector<std::uint64_t> make_words(std::size_t n, Fill fill, Rng& rng) {
  std::vector<std::uint64_t> w(n);
  for (auto& v : w) {
    switch (fill) {
      case Fill::kZeros: v = 0; break;
      case Fill::kOnes: v = ~std::uint64_t{0}; break;
      case Fill::kRandom:
        // Mix sparse and dense words so the early-zero cuts get exercised.
        v = rng.uniform_u64(0, 3) == 0
                ? 0
                : rng.uniform_u64(0, std::numeric_limits<std::uint64_t>::max());
        break;
    }
  }
  return w;
}

class SimdDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    if (avx2_kernels() == nullptr) {
      GTEST_SKIP() << "no AVX2 table on this build/CPU";
    }
  }
  const KernelTable& scalar_ = scalar_kernels();
  const KernelTable& avx2_ = *avx2_kernels();
  Rng rng_{0x51d0f1d0};
};

TEST_F(SimdDifferential, PopcountWords) {
  for (const std::size_t n : kWidths) {
    for (const Fill fill : kFills) {
      const auto w = make_words(n, fill, rng_);
      EXPECT_EQ(scalar_.popcount_words(w.data(), n),
                avx2_.popcount_words(w.data(), n))
          << "n=" << n;
    }
  }
}

TEST_F(SimdDifferential, AndPopcount) {
  for (const std::size_t n : kWidths) {
    for (const Fill fill : kFills) {
      const auto a = make_words(n, fill, rng_);
      const auto b = make_words(n, Fill::kRandom, rng_);
      EXPECT_EQ(scalar_.and_popcount(a.data(), b.data(), n),
                avx2_.and_popcount(a.data(), b.data(), n))
          << "n=" << n;
    }
  }
}

// Shared driver for the three in-place word kernels: runs both tables on
// separate copies and compares the returned count AND the mutated words,
// then repeats with dst aliasing src exactly.
template <typename Kernel>
void check_inplace(const KernelTable& scalar, const KernelTable& avx2,
                   Kernel member, Rng& rng) {
  for (const std::size_t n : kWidths) {
    for (const Fill fill : kFills) {
      const auto dst0 = make_words(n, Fill::kRandom, rng);
      const auto src = make_words(n, fill, rng);
      auto dst_s = dst0;
      auto dst_v = dst0;
      const std::size_t r_s = (scalar.*member)(dst_s.data(), src.data(), n);
      const std::size_t r_v = (avx2.*member)(dst_v.data(), src.data(), n);
      EXPECT_EQ(r_s, r_v) << "n=" << n;
      EXPECT_EQ(dst_s, dst_v) << "n=" << n;

      // Exact aliasing: dst == src is allowed by the contract.
      auto alias_s = dst0;
      auto alias_v = dst0;
      const std::size_t a_s =
          (scalar.*member)(alias_s.data(), alias_s.data(), n);
      const std::size_t a_v = (avx2.*member)(alias_v.data(), alias_v.data(), n);
      EXPECT_EQ(a_s, a_v) << "aliased n=" << n;
      EXPECT_EQ(alias_s, alias_v) << "aliased n=" << n;
    }
  }
}

TEST_F(SimdDifferential, AndInplacePopcount) {
  check_inplace(scalar_, avx2_, &KernelTable::and_inplace_popcount, rng_);
}

TEST_F(SimdDifferential, AndnotInplaceRemoved) {
  check_inplace(scalar_, avx2_, &KernelTable::andnot_inplace_removed, rng_);
}

TEST_F(SimdDifferential, OrInplaceAdded) {
  check_inplace(scalar_, avx2_, &KernelTable::or_inplace_added, rng_);
}

TEST_F(SimdDifferential, FusedAndColumns) {
  for (const std::size_t n : kWidths) {
    for (std::size_t n_cols = 0; n_cols <= 5; ++n_cols) {
      const auto head = make_words(n, Fill::kRandom, rng_);
      std::vector<std::vector<std::uint64_t>> cols;
      std::vector<const std::uint64_t*> col_ptrs;
      for (std::size_t c = 0; c < n_cols; ++c) {
        // Include an all-zero column sometimes to hit the early-zero cut.
        cols.push_back(make_words(
            n, c == 2 ? Fill::kZeros : Fill::kRandom, rng_));
        col_ptrs.push_back(cols.back().data());
      }
      std::vector<std::uint64_t> dst_s(n), dst_v(n);
      const std::size_t r_s = scalar_.fused_and_columns(
          dst_s.data(), head.data(), col_ptrs.data(), n_cols, n);
      const std::size_t r_v = avx2_.fused_and_columns(
          dst_v.data(), head.data(), col_ptrs.data(), n_cols, n);
      EXPECT_EQ(r_s, r_v) << "n=" << n << " cols=" << n_cols;
      EXPECT_EQ(dst_s, dst_v) << "n=" << n << " cols=" << n_cols;

      // dst aliasing head is allowed.
      auto alias_s = head;
      auto alias_v = head;
      const std::size_t a_s = scalar_.fused_and_columns(
          alias_s.data(), alias_s.data(), col_ptrs.data(), n_cols, n);
      const std::size_t a_v = avx2_.fused_and_columns(
          alias_v.data(), alias_v.data(), col_ptrs.data(), n_cols, n);
      EXPECT_EQ(a_s, a_v) << "aliased n=" << n << " cols=" << n_cols;
      EXPECT_EQ(alias_s, alias_v) << "aliased n=" << n << " cols=" << n_cols;
    }
  }
}

TEST_F(SimdDifferential, GatherAndPopcount) {
  for (const std::size_t n : kWidths) {
    if (n == 0) continue;
    const auto a = make_words(n, Fill::kRandom, rng_);
    const auto b = make_words(n, Fill::kRandom, rng_);
    // Index lists of every length 0..n over distinct ascending indices.
    for (std::size_t n_idx = 0; n_idx <= n; n_idx += (n_idx < 5 ? 1 : 7)) {
      std::vector<std::size_t> idx;
      for (std::size_t k = 0; k < n_idx; ++k) {
        idx.push_back(k * n / (n_idx == 0 ? 1 : n_idx));
      }
      EXPECT_EQ(scalar_.gather_and_popcount(a.data(), b.data(), idx.data(),
                                            idx.size()),
                avx2_.gather_and_popcount(a.data(), b.data(), idx.data(),
                                          idx.size()))
          << "n=" << n << " n_idx=" << idx.size();
    }
  }
}

TEST_F(SimdDifferential, NonzeroIndices) {
  for (const std::size_t n : kWidths) {
    for (const Fill fill : kFills) {
      const auto w = make_words(n, fill, rng_);
      std::vector<std::size_t> out_s(n + 1, ~std::size_t{0});
      std::vector<std::size_t> out_v(n + 1, ~std::size_t{0});
      const std::size_t r_s = scalar_.nonzero_indices(w.data(), n,
                                                      out_s.data());
      const std::size_t r_v = avx2_.nonzero_indices(w.data(), n, out_v.data());
      EXPECT_EQ(r_s, r_v) << "n=" << n;
      EXPECT_EQ(out_s, out_v) << "n=" << n;

      std::vector<std::uint32_t> o32_s(n + 1, ~std::uint32_t{0});
      std::vector<std::uint32_t> o32_v(n + 1, ~std::uint32_t{0});
      const std::size_t u_s = scalar_.nonzero_indices_u32(w.data(), n,
                                                          o32_s.data());
      const std::size_t u_v = avx2_.nonzero_indices_u32(w.data(), n,
                                                        o32_v.data());
      EXPECT_EQ(u_s, u_v) << "n=" << n;
      EXPECT_EQ(o32_s, o32_v) << "n=" << n;
      EXPECT_EQ(u_s, r_s) << "n=" << n;
    }
  }
}

TEST_F(SimdDifferential, ScatterWords) {
  for (const std::size_t n : kWidths) {
    const auto src = make_words(n, Fill::kRandom, rng_);
    for (std::size_t n_idx = 0; n_idx <= n; n_idx += (n_idx < 5 ? 1 : 11)) {
      std::vector<std::size_t> idx;
      for (std::size_t k = 0; k < n_idx; ++k) {
        idx.push_back(k * n / n_idx);
      }
      idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
      std::vector<std::uint64_t> dst_s(n, ~std::uint64_t{0});
      std::vector<std::uint64_t> dst_v(n, ~std::uint64_t{0});
      scalar_.scatter_words(dst_s.data(), src.data(), idx.data(), idx.size(),
                            n);
      avx2_.scatter_words(dst_v.data(), src.data(), idx.data(), idx.size(), n);
      EXPECT_EQ(dst_s, dst_v) << "n=" << n << " n_idx=" << idx.size();
    }
  }
}

TEST_F(SimdDifferential, StridedWeightDecay) {
  constexpr std::size_t kStrides[] = {1, 2, 3, 4, 6};
  for (const std::size_t stride : kStrides) {
    for (std::size_t n = 0; n <= 9; ++n) {
      for (std::size_t skip = 0; skip <= n + 1; ++skip) {
        std::vector<double> bank_s(n * stride + 1);
        for (std::size_t i = 0; i < bank_s.size(); ++i) {
          bank_s[i] = rng_.uniform(-2.0, 2.0);
        }
        auto bank_v = bank_s;
        scalar_.strided_weight_decay(bank_s.data(), stride, n, 0.999, skip);
        avx2_.strided_weight_decay(bank_v.data(), stride, n, 0.999, skip);
        // Bit-exact comparison, including the untouched stride gaps.
        ASSERT_EQ(0, std::memcmp(bank_s.data(), bank_v.data(),
                                 bank_s.size() * sizeof(double)))
            << "stride=" << stride << " n=" << n << " skip=" << skip;
      }
    }
  }
}

// The decay kernel must leave non-weight lanes bit-identical even when
// they hold non-double payloads (GaussianComponent::count is a size_t
// living in lane 3 of the stride-4 bank) — a multiply-by-1.0 of a NaN
// bit pattern would not round-trip.
TEST_F(SimdDifferential, StridedWeightDecayPreservesForeignBitPatterns) {
  constexpr std::size_t kStride = 4;
  constexpr std::size_t kN = 7;
  std::vector<double> bank_s(kStride * kN);
  for (std::size_t i = 0; i < kN; ++i) {
    bank_s[i * kStride] = 0.5;
    // Lanes 1..3: signaling-NaN-ish and integer bit patterns.
    const std::uint64_t patterns[] = {0x7ff0000000000001ull,
                                      0xfff8000000001234ull,
                                      i};  // a raw count
    for (std::size_t lane = 1; lane < kStride; ++lane) {
      std::memcpy(&bank_s[i * kStride + lane], &patterns[lane - 1],
                  sizeof(double));
    }
  }
  auto bank_v = bank_s;
  scalar_.strided_weight_decay(bank_s.data(), kStride, kN, 0.999, 2);
  avx2_.strided_weight_decay(bank_v.data(), kStride, kN, 0.999, 2);
  ASSERT_EQ(0, std::memcmp(bank_s.data(), bank_v.data(),
                           bank_s.size() * sizeof(double)));
  // And the foreign lanes are untouched relative to construction.
  for (std::size_t i = 0; i < kN; ++i) {
    std::uint64_t lane3;
    std::memcpy(&lane3, &bank_s[i * kStride + 3], sizeof(double));
    EXPECT_EQ(lane3, i);
  }
}

TEST_F(SimdDifferential, StridedMatchFirst) {
  constexpr std::size_t kStrides[] = {1, 2, 4, 6};
  for (const std::size_t stride : kStrides) {
    for (std::size_t n = 0; n <= 9; ++n) {
      std::vector<double> means(n * stride + 1);
      std::vector<double> stddevs(n * stride + 1);
      for (std::size_t i = 0; i < n; ++i) {
        means[i * stride] = rng_.uniform(-5.0, 5.0);
        stddevs[i * stride] = rng_.uniform(0.0, 1.0);
      }
      for (int probe = 0; probe < 32; ++probe) {
        const double value = rng_.uniform(-6.0, 6.0);
        EXPECT_EQ(scalar_.strided_match_first(means.data(), stddevs.data(),
                                              stride, n, value, 3.0, 0.03),
                  avx2_.strided_match_first(means.data(), stddevs.data(),
                                            stride, n, value, 3.0, 0.03))
            << "stride=" << stride << " n=" << n << " value=" << value;
      }
      // Degenerate thresholds: every component matches / none matches.
      if (n > 0) {
        EXPECT_EQ(scalar_.strided_match_first(means.data(), stddevs.data(),
                                              stride, n, 0.0, 1e9, 0.03),
                  avx2_.strided_match_first(means.data(), stddevs.data(),
                                            stride, n, 0.0, 1e9, 0.03));
        EXPECT_EQ(scalar_.strided_match_first(means.data(), stddevs.data(),
                                              stride, n, 1e12, 3.0, 0.03),
                  avx2_.strided_match_first(means.data(), stddevs.data(),
                                            stride, n, 1e12, 3.0, 0.03));
      }
    }
  }
}

// ------------------------------------------------------- dispatch state

TEST(SimdDispatch, DetectedIsValidAndTablesAgreeWithProbe) {
  const Isa detected = detected_isa();
  if (detected == Isa::kAvx2) {
    ASSERT_NE(avx2_kernels(), nullptr);
    EXPECT_EQ(avx2_kernels()->isa, Isa::kAvx2);
  } else {
    EXPECT_EQ(avx2_kernels(), nullptr);
  }
  EXPECT_EQ(scalar_kernels().isa, Isa::kScalar);
}

TEST(SimdDispatch, SetActiveClampsToDetected) {
  const Isa original = active_isa();
  EXPECT_EQ(set_active_isa(Isa::kScalar), Isa::kScalar);
  EXPECT_EQ(active_isa(), Isa::kScalar);
  const Isa raised = set_active_isa(Isa::kAvx2);
  EXPECT_EQ(raised, detected_isa());  // clamped on non-AVX2 machines
  EXPECT_EQ(active_isa(), raised);
  set_active_isa(original);
}

TEST(SimdDispatch, KernelsForClampsAndNames) {
  EXPECT_EQ(&kernels_for(Isa::kScalar), &scalar_kernels());
  const KernelTable& t = kernels_for(Isa::kAvx2);
  if (avx2_kernels() != nullptr) {
    EXPECT_EQ(&t, avx2_kernels());
  } else {
    EXPECT_EQ(&t, &scalar_kernels());
  }
  EXPECT_STREQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::kAvx2), "avx2");
}

// The free functions honor the active table: force scalar, compute, then
// restore — results must be identical either way (bit-identity), which
// also smoke-tests dispatch through the atomic table pointer.
TEST(SimdDispatch, FreeFunctionsFollowActiveTable) {
  Rng rng(0xd15ba7c4);
  std::vector<std::uint64_t> a(33), b(33);
  for (auto& v : a) v = rng.uniform_u64(0, ~std::uint64_t{0});
  for (auto& v : b) v = rng.uniform_u64(0, ~std::uint64_t{0});
  const Isa original = active_isa();
  set_active_isa(Isa::kScalar);
  const std::size_t scalar_result = and_popcount(a.data(), b.data(), a.size());
  set_active_isa(detected_isa());
  const std::size_t native_result = and_popcount(a.data(), b.data(), a.size());
  set_active_isa(original);
  EXPECT_EQ(scalar_result, native_result);
}

}  // namespace
}  // namespace tagwatch::util::simd
