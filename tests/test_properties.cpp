// Property-style parameterized sweeps over protocol and scheduler invariants.
#include <gtest/gtest.h>

#include "core/rate_model.hpp"
#include "core/setcover.hpp"
#include "gen2/reader.hpp"
#include "util/circular.hpp"

namespace tagwatch {
namespace {

// ---------------------------------------------------------------------
// Inventory completeness: for any population size and any policy, a round
// reads every present tag exactly once.
struct InventoryParams {
  std::size_t n_tags;
  gen2::AntiCollisionPolicy policy;
  std::uint8_t initial_q;
};

class InventoryCompleteness
    : public ::testing::TestWithParam<InventoryParams> {};

TEST_P(InventoryCompleteness, EveryTagReadExactlyOnce) {
  const InventoryParams p = GetParam();
  sim::World world;
  util::Rng rng(7 + p.n_tags);
  for (std::size_t i = 0; i < p.n_tags; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::from_serial(i + 1);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
    world.add_tag(std::move(t));
  }
  rf::RfChannel channel(rf::ChannelPlan::china_920_926());
  gen2::ReaderConfig cfg;
  cfg.policy = p.policy;
  gen2::Gen2Reader reader(gen2::LinkTiming(gen2::LinkParams::max_throughput()),
                          cfg, world, channel, {{1, {0, 0, 2}, 8.0}},
                          util::Rng(99));
  std::map<std::string, int> read_counts;
  gen2::QueryCommand q;
  q.q = p.initial_q;
  const gen2::RoundStats stats = reader.run_inventory_round(
      q, [&read_counts](const rf::TagReading& r) {
        ++read_counts[r.epc.to_hex()];
      });
  EXPECT_EQ(read_counts.size(), p.n_tags);
  for (const auto& [epc, count] : read_counts) {
    EXPECT_EQ(count, 1) << epc;
  }
  EXPECT_EQ(stats.success_slots, p.n_tags);
}

INSTANTIATE_TEST_SUITE_P(
    PopulationSweep, InventoryCompleteness,
    ::testing::Values(
        InventoryParams{1, gen2::AntiCollisionPolicy::kQAdaptive, 4},
        InventoryParams{2, gen2::AntiCollisionPolicy::kQAdaptive, 0},
        InventoryParams{7, gen2::AntiCollisionPolicy::kQAdaptive, 6},
        InventoryParams{33, gen2::AntiCollisionPolicy::kQAdaptive, 4},
        InventoryParams{100, gen2::AntiCollisionPolicy::kQAdaptive, 4},
        InventoryParams{5, gen2::AntiCollisionPolicy::kFixedQ, 4},
        InventoryParams{40, gen2::AntiCollisionPolicy::kFixedQ, 6},
        InventoryParams{3, gen2::AntiCollisionPolicy::kIdealDfsa, 4},
        InventoryParams{64, gen2::AntiCollisionPolicy::kIdealDfsa, 4}));

// ---------------------------------------------------------------------
// Set-cover invariants across population sizes and target fractions.
struct CoverParams {
  std::size_t scene_size;
  std::size_t targets;
  std::uint64_t seed;
};

class SetCoverInvariants : public ::testing::TestWithParam<CoverParams> {};

TEST_P(SetCoverInvariants, FeasibleAndNoWorseThanNaive) {
  const CoverParams p = GetParam();
  util::Rng rng(p.seed);
  std::vector<util::Epc> scene;
  for (std::size_t i = 0; i < p.scene_size; ++i) {
    scene.push_back(util::Epc::random(rng));
  }
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> target_epcs;
  for (std::size_t i = 0; i < p.targets; ++i) {
    target_epcs.push_back(index.scene()[rng.below(
        static_cast<std::uint32_t>(index.scene_size()))]);
  }
  const auto targets = index.bitmap_of(target_epcs);
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit());
  const core::Schedule plan = sched.plan(index, targets);
  const core::Schedule naive = sched.naive_plan(index, targets);

  // 1. Feasibility: union of selections covers all targets.
  util::IndicatorBitmap remaining = targets;
  remaining.subtract(plan.covered_union);
  EXPECT_TRUE(remaining.none());
  // 2. Optimality guard: never costlier than naive.
  EXPECT_LE(plan.estimated_cost_s, naive.estimated_cost_s + 1e-12);
  // 3. Selections do not exceed the number of distinct targets.
  EXPECT_LE(plan.selections.size(), targets.count());
  // 4. Every selection contributed at least one new target.
  for (const auto& sel : plan.selections) {
    EXPECT_GE(sel.covered_targets, 1u);
    EXPECT_GE(sel.covered_total, sel.covered_targets);
  }
  // 5. Estimated cost equals the sum of per-selection costs.
  double sum = 0.0;
  for (const auto& sel : plan.selections) {
    sum += sched.cost_model().cost_seconds(sel.covered_total);
  }
  if (!plan.used_naive_fallback) {
    EXPECT_NEAR(plan.estimated_cost_s, sum, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SceneSweep, SetCoverInvariants,
    ::testing::Values(CoverParams{10, 1, 1}, CoverParams{10, 3, 2},
                      CoverParams{40, 2, 3}, CoverParams{40, 8, 4},
                      CoverParams{100, 5, 5}, CoverParams{100, 20, 6},
                      CoverParams{200, 10, 7}, CoverParams{400, 20, 8},
                      CoverParams{50, 50, 9}));

// ---------------------------------------------------------------------
// Cost-model sanity across a parameter sweep.
class CostModelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CostModelSweep, MergingIsCheaperInTheOperatingRange) {
  // For small populations, C(a + b) ≤ C(a) + C(b): one merged round beats
  // two rounds because the second τ0 is saved — the economic basis of
  // bitmask merging.  The inequality only holds while the slot term
  // n·e·τ̄·ln n stays below τ0's savings, i.e. in Tagwatch's operating
  // range of tens of tags per round.
  const std::size_t a = GetParam();
  const auto m = core::InventoryCostModel::paper_fit();
  for (std::size_t b = 1; b <= 32; b *= 2) {
    if (a + b > 40) continue;
    EXPECT_LE(m.cost_seconds(a + b), m.cost_seconds(a) + m.cost_seconds(b))
        << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CostModelSweep,
                         ::testing::Values(1, 2, 5, 10, 20, 32));

TEST(CostModel, MergingStopsPayingAtScale) {
  // The flip side — and the economics behind the paper's 20% threshold:
  // once the merged population is large, the extra slot time outgrows the
  // saved start-up cost and merging loses.
  const auto m = core::InventoryCostModel::paper_fit();
  EXPECT_GT(m.cost_seconds(400), m.cost_seconds(200) + m.cost_seconds(200));
}

// ---------------------------------------------------------------------
// Circular-distance properties under a dense value sweep.
class CircularSweep : public ::testing::TestWithParam<double> {};

TEST_P(CircularSweep, DistanceInvariants) {
  const double a = GetParam();
  util::Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    const double b = rng.uniform(0.0, util::kTwoPi);
    const double d = util::circular_distance(a, b);
    // Identity, symmetry, shift invariance, wrap invariance.
    EXPECT_NEAR(util::circular_distance(a, a), 0.0, 1e-12);
    EXPECT_NEAR(d, util::circular_distance(b, a), 1e-12);
    EXPECT_NEAR(d, util::circular_distance(a + 1.3, b + 1.3), 1e-9);
    EXPECT_NEAR(d, util::circular_distance(a + util::kTwoPi, b), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, CircularSweep,
                         ::testing::Values(0.0, 0.01, 1.0, 3.14159, 4.7,
                                           6.27, 6.283));

// ---------------------------------------------------------------------
// Reader determinism: identical seeds → identical rounds.
TEST(Determinism, SameSeedSameRound) {
  auto run_once = [](std::uint64_t seed) {
    sim::World world;
    util::Rng rng(seed);
    for (std::size_t i = 0; i < 20; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(i + 1);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      world.add_tag(std::move(t));
    }
    rf::RfChannel channel(rf::ChannelPlan::china_920_926());
    gen2::Gen2Reader reader(
        gen2::LinkTiming(gen2::LinkParams::max_throughput()),
        gen2::ReaderConfig{}, world, channel, {{1, {0, 0, 2}, 8.0}},
        util::Rng(seed));
    std::vector<std::pair<std::string, std::int64_t>> reads;
    reader.run_inventory_round(gen2::QueryCommand{},
                               [&reads](const rf::TagReading& r) {
                                 reads.emplace_back(r.epc.to_hex(),
                                                    r.timestamp.count());
                               });
    return reads;
  };
  EXPECT_EQ(run_once(12345), run_once(12345));
  EXPECT_NE(run_once(12345), run_once(54321));
}

}  // namespace
}  // namespace tagwatch
