// The lint rule engine: every rule must trigger on its negative fixture
// and stay quiet on the conforming one, the allow() hatch must suppress
// (and be budgeted), and the real tree must lint clean — which is what
// turns replay determinism from a convention into a machine-checked
// invariant.
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace tagwatch::lint {
namespace {

LintReport run_one(const std::string& path, const std::string& content) {
  const RuleEngine engine;
  return engine.run({{path, content}});
}

std::vector<std::string> rules_of(const LintReport& report) {
  std::vector<std::string> rules;
  for (const Finding& f : report.findings) rules.push_back(f.rule);
  return rules;
}

bool has_rule(const LintReport& report, const std::string& rule) {
  const auto rules = rules_of(report);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// ------------------------------------------------------- determinism (D)

TEST(LintDeterminism, FlagsWallClockInJournaledPath) {
  const LintReport r = run_one(
      "src/core/bad.cpp",
      "#include <chrono>\n"
      "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "determinism");
  EXPECT_EQ(r.findings[0].line, 2u);
}

TEST(LintDeterminism, FlagsEveryForbiddenClockAndEntropySource) {
  for (const char* bad :
       {"std::chrono::system_clock::now()", "std::random_device rd",
        "std::chrono::high_resolution_clock::now()", "time(nullptr)",
        "std::rand()", "srand(7)", "getenv(\"HOME\")", "clock()"}) {
    SCOPED_TRACE(bad);
    const LintReport r =
        run_one("src/gen2/bad.cpp", std::string("auto v = ") + bad + ";\n");
    EXPECT_TRUE(has_rule(r, "determinism"));
  }
}

TEST(LintDeterminism, FlagsUnseededMersenneTwister) {
  EXPECT_TRUE(has_rule(run_one("src/sim/bad.cpp", "std::mt19937 gen;\n"),
                       "determinism"));
  EXPECT_TRUE(has_rule(run_one("src/sim/bad.cpp", "std::mt19937_64 gen{};\n"),
                       "determinism"));
  EXPECT_TRUE(has_rule(run_one("src/sim/bad.cpp", "std::mt19937 gen();\n"),
                       "determinism"));
}

TEST(LintDeterminism, SeededEngineAndReferencesPass) {
  EXPECT_TRUE(run_one("src/sim/ok.cpp", "std::mt19937 gen(seed);\n")
                  .findings.empty());
  EXPECT_TRUE(run_one("src/sim/ok.cpp", "std::mt19937_64 gen{0x5eed};\n")
                  .findings.empty());
  EXPECT_TRUE(run_one("src/sim/ok.cpp", "void f(std::mt19937& gen);\n")
                  .findings.empty());
}

TEST(LintDeterminism, OnlyJournaledDirectoriesAreInScope) {
  const std::string wall = "auto t = std::chrono::steady_clock::now();\n";
  // util implements the WallClock seam; tools/tests/bench run off-line.
  for (const char* path : {"src/util/wall_clock.cpp", "tools/cli.cpp",
                           "tests/test_x.cpp", "bench/bench_x.cpp"}) {
    SCOPED_TRACE(path);
    EXPECT_TRUE(run_one(path, wall).findings.empty());
  }
  for (const char* path :
       {"src/core/a.cpp", "src/sim/a.cpp", "src/llrp/a.cpp", "src/gen2/a.cpp",
        "src/rf/a.cpp"}) {
    SCOPED_TRACE(path);
    EXPECT_TRUE(has_rule(run_one(path, wall), "determinism"));
  }
}

TEST(LintDeterminism, WordBoundariesAndCommentsDoNotTrigger) {
  // advance_time( and clock_-> are not the forbidden identifiers, and
  // prose in comments/strings never counts.
  const LintReport r = run_one(
      "src/core/ok.cpp",
      "// steady_clock would be wrong here\n"
      "const char* s = \"system_clock\";\n"
      "void advance_time(int);\n"
      "auto v = clock_->now_seconds();\n");
  EXPECT_TRUE(r.findings.empty());
}

// ----------------------------------------------------- header hygiene (H)

TEST(LintHeaderHygiene, MissingPragmaOnceIsFlagged) {
  const LintReport r =
      run_one("src/util/bad.hpp", "#include <vector>\nint x;\n");
  EXPECT_TRUE(has_rule(r, "header-pragma-once"));
}

TEST(LintHeaderHygiene, CommentBeforePragmaOnceIsFine) {
  const LintReport r = run_one("src/util/ok.hpp",
                               "// License header prose.\n"
                               "#pragma once\n"
                               "#include <vector>\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintHeaderHygiene, SourcesNeedNoPragmaOnce) {
  EXPECT_TRUE(run_one("src/util/ok.cpp", "int x;\n").findings.empty());
}

TEST(LintHeaderHygiene, UsingNamespaceInHeaderIsFlagged) {
  const LintReport r = run_one("src/util/bad.hpp",
                               "#pragma once\nusing namespace std;\n");
  EXPECT_TRUE(has_rule(r, "header-using-namespace"));
}

TEST(LintHeaderHygiene, UsingDeclarationAndCppFilesPass) {
  EXPECT_TRUE(run_one("src/util/ok.hpp",
                      "#pragma once\nusing std::vector;\n")
                  .findings.empty());
  EXPECT_TRUE(
      run_one("tools/ok.cpp", "using namespace tagwatch;\n").findings.empty());
}

TEST(LintIncludeOrder, SystemAfterProjectIsFlagged) {
  const LintReport r = run_one("src/core/bad.cpp",
                               "#include \"core/other.hpp\"\n"
                               "#include <vector>\n");
  ASSERT_TRUE(has_rule(r, "include-order"));
  EXPECT_EQ(r.findings[0].line, 2u);
}

TEST(LintIncludeOrder, OwnHeaderThenSystemThenProjectPasses) {
  const LintReport r = run_one("src/core/foo.cpp",
                               "#include \"core/foo.hpp\"\n"
                               "#include <vector>\n"
                               "#include \"util/stats.hpp\"\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintIncludeOrder, HeaderUnderTestLeadsInTestFiles) {
  const LintReport r = run_one("tests/test_foo.cpp",
                               "#include \"util/foo.hpp\"\n"
                               "#include <gtest/gtest.h>\n"
                               "#include \"util/other.hpp\"\n");
  EXPECT_TRUE(r.findings.empty());
}

// --------------------------------------------------- pipeline safety (P)

TEST(LintPipelineReentrancy, ExecuteInsideSinkHookIsFlagged) {
  const LintReport r = run_one(
      "src/core/bad_sink.cpp",
      "bool BadSink::on_reading(const rf::TagReading& r,\n"
      "                         const ReadingContext&) {\n"
      "  client_->execute(spec);\n"
      "  return true;\n"
      "}\n");
  ASSERT_TRUE(has_rule(r, "pipeline-reentrancy"));
  EXPECT_EQ(r.findings[0].line, 3u);
}

TEST(LintPipelineReentrancy, CycleEndHookIsCoveredToo) {
  const LintReport r = run_one(
      "tests/bad_sink.cpp",
      "void BadSink::on_cycle_end(const CycleReport&) {\n"
      "  reader.execute(respec);\n"
      "}\n");
  EXPECT_TRUE(has_rule(r, "pipeline-reentrancy"));
}

TEST(LintPipelineReentrancy, ExecuteOutsideHooksAndDeclarationsPass) {
  const LintReport r = run_one(
      "src/core/ok.cpp",
      "bool on_reading(const rf::TagReading&, const ReadingContext&) "
      "override;\n"
      "void run() { client_->execute(spec); }\n"
      "bool OkSink::on_reading(const rf::TagReading&,\n"
      "                        const ReadingContext&) {\n"
      "  return executor_.enqueue(r);\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty());
}

// -------------------------------------------------- journal discipline (J)

/// A minimal, mutually-consistent journal table set.
std::vector<SourceFile> journal_fixture() {
  return {
      {"src/llrp/reader_client.hpp",
       "#pragma once\n"
       "enum class ReaderErrorKind {\n"
       "  kTimeout,\n"
       "  kDisconnected,\n"
       "};\n"},
      {"src/llrp/reader_client.cpp",
       "#include \"llrp/reader_client.hpp\"\n"
       "const char* to_string(ReaderErrorKind kind) {\n"
       "  switch (kind) {\n"
       "    case ReaderErrorKind::kTimeout: return \"timeout\";\n"
       "    case ReaderErrorKind::kDisconnected: return \"disconnected\";\n"
       "  }\n"
       "  return \"unknown\";\n"
       "}\n"
       "ReaderErrorKind reader_error_kind_from_string(std::string_view n) {\n"
       "  if (n == \"timeout\") return ReaderErrorKind::kTimeout;\n"
       "  return ReaderErrorKind::kDisconnected;\n"
       "}\n"},
      {"src/core/resilience.hpp",
       "#pragma once\n"
       "void count_fault(llrp::ReaderErrorKind kind) {\n"
       "  switch (kind) {\n"
       "    case llrp::ReaderErrorKind::kTimeout: break;\n"
       "    case llrp::ReaderErrorKind::kDisconnected: break;\n"
       "  }\n"
       "}\n"},
      {"src/llrp/reader_journal.cpp",
       "#include \"llrp/reader_journal.hpp\"\n"
       "void serialize() { out << \"E,\" << x; out << \"R,\" << y; }\n"
       "void parse() { if (f[0] == \"E\") {} else if (f[0] == \"R\") {} }\n"},
      {"src/llrp/fault_injection.cpp",
       "#include \"llrp/fault_injection.hpp\"\n"
       "void inject(ReaderErrorKind kind) {\n"
       "  use(ReaderErrorKind::kTimeout);\n"
       "  use(ReaderErrorKind::kDisconnected);\n"
       "}\n"},
  };
}

TEST(LintJournalDiscipline, ConsistentTablesPass) {
  const RuleEngine engine;
  EXPECT_TRUE(engine.run(journal_fixture()).findings.empty());
}

TEST(LintJournalDiscipline, NewEnumeratorMustReachEveryTable) {
  auto files = journal_fixture();
  // Add a kind to the enum only — serializer, parser, the health digest,
  // and the fault injector all go stale at once.
  files[0].content =
      "#pragma once\n"
      "enum class ReaderErrorKind {\n"
      "  kTimeout,\n"
      "  kDisconnected,\n"
      "  kBrownout,\n"
      "};\n";
  const RuleEngine engine;
  const LintReport r = engine.run(files);
  ASSERT_EQ(r.findings.size(), 4u);
  for (const Finding& f : r.findings) {
    EXPECT_EQ(f.rule, "journal-discipline");
    EXPECT_NE(f.message.find("kBrownout"), std::string::npos);
  }
}

TEST(LintJournalDiscipline, InjectorMustCoverEveryKind) {
  auto files = journal_fixture();
  // The injector loses a kind: the chaos harness can no longer produce it,
  // and the lint pins the gap to the enum header.
  files[4].content =
      "#include \"llrp/fault_injection.hpp\"\n"
      "void inject(ReaderErrorKind kind) {\n"
      "  use(ReaderErrorKind::kTimeout);\n"
      "}\n";
  const RuleEngine engine;
  const LintReport r = engine.run(files);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "journal-discipline");
  EXPECT_NE(r.findings[0].message.find("kDisconnected"), std::string::npos);
  EXPECT_NE(r.findings[0].message.find("never injected"), std::string::npos);
}

TEST(LintJournalDiscipline, SerializedTagMustBeParsed) {
  auto files = journal_fixture();
  files[3].content =
      "#include \"llrp/reader_journal.hpp\"\n"
      "void serialize() { out << \"E,\" << x; out << \"Z,\" << y; }\n"
      "void parse() { if (f[0] == \"E\") {} }\n";
  const RuleEngine engine;
  const LintReport r = engine.run(files);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "journal-discipline");
  EXPECT_NE(r.findings[0].message.find("'Z'"), std::string::npos);
}

TEST(LintJournalDiscipline, ParsedTagMustBeSerialized) {
  auto files = journal_fixture();
  files[3].content =
      "#include \"llrp/reader_journal.hpp\"\n"
      "void serialize() { out << \"E,\" << x; }\n"
      "void parse() { if (f[0] == \"E\") {} else if (f[0] == \"Q\") {} }\n";
  const RuleEngine engine;
  const LintReport r = engine.run(files);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_NE(r.findings[0].message.find("'Q'"), std::string::npos);
}

// ------------------------------------------------------- allow() hatch

TEST(LintAllow, SameLineAnnotationSuppresses) {
  const LintReport r = run_one(
      "src/core/waiver.cpp",
      "auto t = std::chrono::steady_clock::now();"
      "  // tagwatch-lint: allow(determinism)\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressions_used, 1u);
  EXPECT_EQ(r.allow_annotations, 1u);
}

// --------------------------------------------- threading-discipline (T)

TEST(LintThreading, FlagsRawStdThreadPrimitives) {
  EXPECT_TRUE(has_rule(run_one("src/core/bad.cpp",
                               "std::thread t([] { work(); });\n"),
                       "threading-discipline"));
  EXPECT_TRUE(has_rule(run_one("src/core/bad.cpp",
                               "std::jthread t([] { work(); });\n"),
                       "threading-discipline"));
  EXPECT_TRUE(has_rule(
      run_one("src/core/bad.cpp",
              "auto f = std::async(std::launch::async, work);\n"),
      "threading-discipline"));
}

TEST(LintThreading, UnqualifiedNamesAreNotFlagged) {
  // `thread` / `async` are ordinary identifiers without the std:: prefix.
  EXPECT_TRUE(run_one("src/core/ok.cpp",
                      "int thread = 0;\nbool async = launch(thread);\n")
                  .findings.empty());
}

TEST(LintThreading, FlagsDetachAndExplicitLockCalls) {
  EXPECT_TRUE(has_rule(run_one("src/core/bad.cpp", "worker.detach();\n"),
                       "threading-discipline"));
  EXPECT_TRUE(has_rule(run_one("src/core/bad.cpp", "mutex_.lock();\n"),
                       "threading-discipline"));
  EXPECT_TRUE(has_rule(run_one("src/core/bad.cpp", "guard->unlock ();\n"),
                       "threading-discipline"));
}

TEST(LintThreading, RaiiGuardsAndNonCallUsesAreNotFlagged) {
  // RAII guards name the lock types, never call lock()/unlock() members.
  EXPECT_TRUE(run_one("src/core/ok.cpp",
                      "std::lock_guard<std::mutex> guard(mutex_);\n"
                      "std::scoped_lock all(a_, b_);\n")
                  .findings.empty());
  // Member *named* lock but not called; free function detach(x).
  EXPECT_TRUE(run_one("src/core/ok.cpp",
                      "auto fn = obj.lock;\ndetach(worker);\n")
                  .findings.empty());
}

TEST(LintThreading, TaskPoolFilesAreExempt) {
  const char* body = "std::thread t([] {});\nmutex_.lock();\n";
  EXPECT_TRUE(run_one("src/util/task_pool.cpp", body).findings.empty());
  // (has_rule, not findings.empty(): the header rules still apply to a
  // fixture .hpp with no #pragma once — only the T rule is exempt.)
  EXPECT_FALSE(has_rule(run_one("src/util/task_pool.hpp", body),
                        "threading-discipline"));
  EXPECT_TRUE(has_rule(run_one("src/util/other.cpp", body),
                       "threading-discipline"));
}

// -------------------------------------------------- simd-discipline (V)

TEST(LintSimd, FlagsRawIntrinsicsOutsideSimdModule) {
  EXPECT_TRUE(has_rule(run_one("src/core/bad.cpp",
                               "__m256i v = _mm256_and_si256(a, b);\n"),
                       "simd-discipline"));
  EXPECT_TRUE(has_rule(run_one("tests/test_bad.cpp",
                               "auto v = __builtin_ia32_pand256(a, b);\n"),
                       "simd-discipline"));
  EXPECT_TRUE(has_rule(run_one("src/util/other.cpp",
                               "#include <immintrin.h>\nint x;\n"),
                       "simd-discipline"));
}

TEST(LintSimd, SimdModuleFilesAreExempt) {
  const char* body = "#include <immintrin.h>\n__m256i v = _mm256_setzero_si256();\n";
  EXPECT_TRUE(run_one("src/util/simd_avx2.cpp", body).findings.empty());
  EXPECT_TRUE(has_rule(run_one("src/core/kernels.cpp", body),
                       "simd-discipline"));
}

TEST(LintSimd, PlainIdentifiersAndOtherHeadersAreNotFlagged) {
  // `comm_mm` only contains the prefix mid-identifier; <cstring> is not an
  // intrinsics header; simd-namespace calls are the sanctioned API.
  EXPECT_TRUE(run_one("src/core/ok.cpp",
                      "#include <cstring>\nint comm_mm = 0;\n"
                      "auto n = util::simd::popcount_words(w, k);\n")
                  .findings.empty());
}

TEST(LintSimd, SetActiveIsaOnlyThroughConfigSeamInSrc) {
  const char* body = "util::simd::set_active_isa(util::simd::Isa::kScalar);\n";
  EXPECT_TRUE(has_rule(run_one("src/core/other.cpp", body),
                       "simd-discipline"));
  EXPECT_FALSE(has_rule(run_one("src/core/tagwatch.cpp", body),
                        "simd-discipline"));
  // Tests, tools and benches flip the ISA freely for A/B runs.
  EXPECT_TRUE(run_one("tests/test_ok.cpp", body).findings.empty());
  EXPECT_TRUE(run_one("bench/bench_ok.cpp", body).findings.empty());
}

TEST(LintAllow, AnnotationOnLineAboveSuppresses) {
  const LintReport r = run_one(
      "src/core/waiver.cpp",
      "// Justification prose.  tagwatch-lint: allow(determinism)\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressions_used, 1u);
}

TEST(LintAllow, WrongRuleNameDoesNotSuppress) {
  const LintReport r = run_one(
      "src/core/waiver.cpp",
      "auto t = std::chrono::steady_clock::now();"
      "  // tagwatch-lint: allow(include-order)\n");
  EXPECT_TRUE(has_rule(r, "determinism"));
  EXPECT_EQ(r.suppressions_used, 0u);
}

TEST(LintAllow, UnknownRuleNamesAreNotAnnotations) {
  // Documentation mentioning the syntax must not eat the budget.
  const LintReport r = run_one(
      "docs_like.cpp", "// write tagwatch-lint: allow(<rule>) to waive\n");
  EXPECT_EQ(r.allow_annotations, 0u);
}

// ------------------------------------------------------------- engine

TEST(LintEngine, RuleNamesAreStable) {
  const auto& names = RuleEngine::rule_names();
  const std::vector<std::string> expected = {
      "determinism",          "header-pragma-once",  "header-using-namespace",
      "include-order",        "pipeline-reentrancy", "journal-discipline",
      "threading-discipline", "simd-discipline",     "determinism-taint",
      "lock-order"};
  EXPECT_EQ(names, expected);
}

TEST(LintEngine, RuleCatalogMatchesNamesAndHasSummaries) {
  const auto& catalog = RuleEngine::rules();
  const auto& names = RuleEngine::rule_names();
  ASSERT_EQ(catalog.size(), names.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].name, names[i]);
    EXPECT_FALSE(catalog[i].summary.empty());
  }
}

TEST(LintEngine, FindingsAreSortedByFileLineRule) {
  const RuleEngine engine;
  const LintReport r = engine.run({
      {"src/core/z.cpp", "#include \"a.hpp\"\n#include <b>\n"},
      {"src/core/a.cpp",
       "auto t = std::chrono::steady_clock::now();\n"
       "auto u = std::chrono::steady_clock::now();\n"},
  });
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].file, "src/core/a.cpp");
  EXPECT_EQ(r.findings[0].line, 1u);
  EXPECT_EQ(r.findings[1].line, 2u);
  EXPECT_EQ(r.findings[2].file, "src/core/z.cpp");
}

// ------------------------------------------------------ tree self-check

#ifdef TAGWATCH_SOURCE_DIR

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The linter's own view of the tree, mirroring tools/tagwatch_lint.cpp.
std::vector<SourceFile> load_tree() {
  namespace fs = std::filesystem;
  const fs::path root = TAGWATCH_SOURCE_DIR;
  std::vector<fs::path> paths;
  for (const char* dir : {"src", "tests", "tools", "examples", "bench"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      const std::string ext = entry.path().extension().string();
      if (entry.is_regular_file() && (ext == ".cpp" || ext == ".hpp")) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    files.push_back({fs::relative(p, root).generic_string(), slurp(p)});
  }
  return files;
}

TEST(LintSelfCheck, RealTreeLintsCleanWithinSuppressionBudget) {
  const std::vector<SourceFile> files = load_tree();
  ASSERT_GT(files.size(), 100u) << "tree walk found suspiciously few files";
  const RuleEngine engine;
  const LintReport r = engine.run(files);
  for (const Finding& f : r.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
  // The per-rule allow() budget: every annotation in the tree (fixture
  // string literals included — they are the current entries) must be
  // accounted for here, and a new rule starts at zero.  Growing a budget
  // means editing this table in the same PR that adds the waiver, which
  // is exactly the review speed bump the hatch is supposed to have.
  const std::map<std::string, std::size_t> budget = {
      {"determinism", 2u},        // LintAllow fixture literals above.
      {"determinism-taint", 1u},  // LintTaint allow fixture literal.
      {"include-order", 1u},      // LintAllow wrong-rule fixture literal.
  };
  EXPECT_EQ(r.allow_annotations_by_rule, budget);
  std::size_t total = 0;
  for (const auto& [rule, count] : budget) total += count;
  EXPECT_EQ(r.allow_annotations, total);
}

TEST(LintSelfCheck, JournalTablesArePresentInRealTree) {
  // Guards the self-check itself: if these files moved, the J rule would
  // silently stop checking anything.
  const std::vector<SourceFile> files = load_tree();
  auto present = [&files](const char* suffix) {
    for (const SourceFile& f : files) {
      if (f.path.size() >= std::string(suffix).size() &&
          f.path.rfind(suffix) == f.path.size() - std::string(suffix).size()) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(present("llrp/reader_client.hpp"));
  EXPECT_TRUE(present("llrp/reader_client.cpp"));
  EXPECT_TRUE(present("core/resilience.hpp"));
  EXPECT_TRUE(present("llrp/reader_journal.cpp"));
}

#endif  // TAGWATCH_SOURCE_DIR

}  // namespace
}  // namespace tagwatch::lint
