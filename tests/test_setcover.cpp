// Tests for the greedy set-cover scheduler (§5.3).
#include <gtest/gtest.h>

#include "core/setcover.hpp"
#include "util/rng.hpp"

namespace tagwatch::core {
namespace {

util::Epc epc6(std::string_view bits) {
  return util::Epc(util::BitString::from_binary(bits));
}

GreedyCoverScheduler scheduler() {
  return GreedyCoverScheduler(InventoryCostModel::paper_fit());
}

/// Every target must be covered by the union of selected bitmasks.
void expect_full_coverage(const Schedule& plan, const BitmaskIndex& index,
                          const util::IndicatorBitmap& targets) {
  util::IndicatorBitmap remaining = targets;
  for (const auto& sel : plan.selections) {
    util::IndicatorBitmap cov(index.scene_size());
    for (std::size_t i = 0; i < index.scene_size(); ++i) {
      if (sel.bitmask.covers(index.scene()[i])) cov.set(i);
    }
    remaining.subtract(cov);
  }
  EXPECT_TRUE(remaining.none()) << "uncovered targets remain";
}

TEST(GreedyCover, PaperFig9CostRegimes) {
  // Scene from Fig. 9: three targets + one non-target sharing bit 5 = 0
  // with all of them.  The economically optimal plan depends on τ0:
  //
  //  * with the hardware's τ0 = 19 ms, one collateral round covering all
  //    four tags (C(4)) beats any multi-round clean cover — exactly the
  //    paper's point that "cost-effective selection may collaterally
  //    involve non-target tags";
  //  * with a negligible τ0, extra covered tags are pure cost, and the
  //    greedy recovers Fig. 9(b)'s clean two-mask cover.
  const auto t1 = epc6("001110");
  const auto t2 = epc6("010010");
  const auto t3 = epc6("101100");
  const auto nt = epc6("110110");
  BitmaskIndex index({t1, t2, t3, nt});
  const auto targets = index.bitmap_of({t1, t2, t3});

  // Regime 1: paper-fit cost model → single merged round.
  {
    const Schedule plan = scheduler().plan(index, targets);
    expect_full_coverage(plan, index, targets);
    ASSERT_EQ(plan.selections.size(), 1u);
    EXPECT_EQ(plan.selections[0].covered_total, 4u);
    EXPECT_NEAR(plan.estimated_cost_s,
                InventoryCostModel::paper_fit().cost_seconds(4), 1e-12);
  }

  // Regime 2: τ0 ≈ 0 → merging has no economy at all; the worst-case guard
  // settles on per-target rounds, and no non-target is ever touched.
  {
    GreedyCoverScheduler cheap_start(InventoryCostModel(1e-7, 0.00018));
    const Schedule plan = cheap_start.plan(index, targets);
    expect_full_coverage(plan, index, targets);
    for (const auto& sel : plan.selections) {
      EXPECT_FALSE(sel.bitmask.covers(nt))
          << sel.bitmask.to_string() << " collaterally covers the non-target";
    }
    EXPECT_LE(plan.selections.size(), 3u);
  }
}

TEST(GreedyCover, SingleTargetUsesOneMask) {
  util::Rng rng(101);
  std::vector<util::Epc> scene;
  for (int i = 0; i < 40; ++i) scene.push_back(util::Epc::random(rng));
  BitmaskIndex index(scene);
  const auto targets = index.bitmap_of({scene[5]});
  const Schedule plan = scheduler().plan(index, targets);
  ASSERT_EQ(plan.selections.size(), 1u);
  expect_full_coverage(plan, index, targets);
  // Random 96-bit EPCs: a short prefix distinguishes any tag from 39
  // others, so the chosen mask should cover just the target.
  EXPECT_EQ(plan.selections[0].covered_total, 1u);
}

TEST(GreedyCover, CoversAllTargetsRandomized) {
  util::Rng rng(102);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<util::Epc> scene;
    const std::size_t n = 20 + rng.below(60);
    for (std::size_t i = 0; i < n; ++i) scene.push_back(util::Epc::random(rng));
    BitmaskIndex index(scene);
    std::vector<util::Epc> target_epcs;
    for (const auto& e : index.scene()) {
      if (rng.chance(0.15)) target_epcs.push_back(e);
    }
    if (target_epcs.empty()) target_epcs.push_back(index.scene()[0]);
    const auto targets = index.bitmap_of(target_epcs);
    const Schedule plan = scheduler().plan(index, targets);
    expect_full_coverage(plan, index, targets);
    EXPECT_GT(plan.estimated_cost_s, 0.0);
    EXPECT_LE(plan.selections.size(), target_epcs.size());
  }
}

TEST(GreedyCover, NeverWorseThanNaive) {
  // §5.2: "If the cost of 'optimal' selection is higher than C(n'), we
  // should adopt the worst option."  plan() must therefore never return a
  // schedule costlier than naive_plan().
  util::Rng rng(103);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<util::Epc> scene;
    for (int i = 0; i < 50; ++i) scene.push_back(util::Epc::random(rng));
    BitmaskIndex index(scene);
    std::vector<util::Epc> target_epcs;
    for (int i = 0; i < 5; ++i) {
      target_epcs.push_back(index.scene()[rng.below(50)]);
    }
    const auto targets = index.bitmap_of(target_epcs);
    const auto s = scheduler();
    const Schedule plan = s.plan(index, targets);
    const Schedule naive = s.naive_plan(index, targets);
    EXPECT_LE(plan.estimated_cost_s, naive.estimated_cost_s + 1e-12);
  }
}

TEST(GreedyCover, SharedPrefixTargetsMergeIntoOneMask) {
  // Targets that share a long prefix (and differ from all non-targets) can
  // be covered by a single prefix mask — cheaper than two separate rounds
  // because each round pays τ0.
  std::vector<util::Epc> scene;
  scene.push_back(epc6("110000"));
  scene.push_back(epc6("110001"));  // targets: prefix 1100
  scene.push_back(epc6("001010"));
  scene.push_back(epc6("011011"));
  BitmaskIndex index(scene);
  const auto targets = index.bitmap_of({epc6("110000"), epc6("110001")});
  const Schedule plan = scheduler().plan(index, targets);
  ASSERT_EQ(plan.selections.size(), 1u);
  EXPECT_EQ(plan.selections[0].covered_total, 2u);
  EXPECT_EQ(plan.selections[0].covered_targets, 2u);
}

TEST(GreedyCover, AcceptsCollateralWhenCheaper) {
  // If two targets can only be jointly covered by a mask that also covers
  // one non-target, the collateral cover (1 round, 3 tags) still beats two
  // τ0-dominated exact rounds: C(3) < 2·C(1) for the paper's parameters.
  std::vector<util::Epc> scene;
  scene.push_back(epc6("110000"));  // target
  scene.push_back(epc6("110111"));  // target
  scene.push_back(epc6("110101"));  // non-target sharing the prefix
  scene.push_back(epc6("000001"));
  BitmaskIndex index(scene);
  const auto targets = index.bitmap_of({epc6("110000"), epc6("110111")});
  const Schedule plan = scheduler().plan(index, targets);
  ASSERT_EQ(plan.selections.size(), 1u);
  EXPECT_EQ(plan.selections[0].covered_total, 3u);  // includes the collateral
  EXPECT_FALSE(plan.used_naive_fallback);
}

TEST(GreedyCover, NaivePlanShape) {
  util::Rng rng(104);
  std::vector<util::Epc> scene;
  for (int i = 0; i < 30; ++i) scene.push_back(util::Epc::random(rng));
  BitmaskIndex index(scene);
  const auto targets = index.bitmap_of({index.scene()[1], index.scene()[2]});
  const Schedule naive = scheduler().naive_plan(index, targets);
  ASSERT_EQ(naive.selections.size(), 2u);
  for (const auto& sel : naive.selections) {
    EXPECT_EQ(sel.bitmask.pointer, 0u);
    EXPECT_EQ(sel.bitmask.mask.size(), 96u);  // the full EPC
    EXPECT_EQ(sel.covered_total, 1u);
  }
  EXPECT_TRUE(naive.used_naive_fallback);
  EXPECT_NEAR(naive.estimated_cost_s,
              2.0 * InventoryCostModel::paper_fit().cost_seconds(1), 1e-12);
}

TEST(GreedyCover, EqualGainTieBreaksToLowestCandidateIndex) {
  // Two targets with no bit position in common: every candidate is a
  // singleton, so the first greedy round sees two equal gains 1/C(1).
  // The tie must break to the lowest candidate index — the run anchored
  // at scene()[0] with pointer 0 and length 1 — under both evaluation
  // strategies, keeping plans byte-identical across planner paths.
  BitmaskIndex index({epc6("000000"), epc6("111111")});
  const auto targets = index.bitmap_of({epc6("000000"), epc6("111111")});
  for (const auto evaluation :
       {GreedyEvaluation::kLazy, GreedyEvaluation::kDense}) {
    const Schedule plan =
        GreedyCoverScheduler(InventoryCostModel::paper_fit(), evaluation)
            .plan(index, targets);
    ASSERT_EQ(plan.selections.size(), 2u);
    EXPECT_EQ(plan.selections[0].bitmask.pointer, 0u);
    EXPECT_EQ(plan.selections[0].bitmask.to_string(), "S(0, 0, 1)");
    EXPECT_EQ(plan.selections[1].bitmask.to_string(), "S(1, 0, 1)");
  }
}

TEST(GreedyCover, LazyAndDensePlansAgree) {
  util::Rng rng(105);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<util::Epc> scene;
    const std::size_t n = 30 + rng.below(90);
    for (std::size_t i = 0; i < n; ++i) scene.push_back(util::Epc::random(rng));
    BitmaskIndex index(scene);
    std::vector<util::Epc> target_epcs;
    for (const auto& e : index.scene()) {
      if (rng.chance(0.1)) target_epcs.push_back(e);
    }
    if (target_epcs.empty()) target_epcs.push_back(index.scene()[0]);
    const auto targets = index.bitmap_of(target_epcs);
    const Schedule lazy =
        GreedyCoverScheduler(InventoryCostModel::paper_fit(),
                             GreedyEvaluation::kLazy)
            .plan(index, targets);
    const Schedule dense =
        GreedyCoverScheduler(InventoryCostModel::paper_fit(),
                             GreedyEvaluation::kDense)
            .plan(index, targets);
    ASSERT_EQ(lazy.selections.size(), dense.selections.size());
    for (std::size_t i = 0; i < lazy.selections.size(); ++i) {
      EXPECT_EQ(lazy.selections[i].bitmask, dense.selections[i].bitmask);
      EXPECT_EQ(lazy.selections[i].covered_total,
                dense.selections[i].covered_total);
      EXPECT_EQ(lazy.selections[i].covered_targets,
                dense.selections[i].covered_targets);
    }
    EXPECT_EQ(lazy.estimated_cost_s, dense.estimated_cost_s);
    EXPECT_EQ(lazy.used_naive_fallback, dense.used_naive_fallback);
    EXPECT_EQ(lazy.covered_union, dense.covered_union);
  }
}

TEST(GreedyCover, RejectsEmptyTargets) {
  BitmaskIndex index({epc6("000001")});
  util::IndicatorBitmap empty(1);
  EXPECT_THROW(scheduler().plan(index, empty), std::invalid_argument);
}

TEST(GreedyCover, CoveredUnionReported) {
  std::vector<util::Epc> scene{epc6("110000"), epc6("110111"), epc6("110101"),
                               epc6("000001")};
  BitmaskIndex index(scene);
  const auto targets = index.bitmap_of({epc6("110000"), epc6("110111")});
  const Schedule plan = scheduler().plan(index, targets);
  // covered_union ⊇ targets.
  util::IndicatorBitmap t = targets;
  t.subtract(plan.covered_union);
  EXPECT_TRUE(t.none());
}

}  // namespace
}  // namespace tagwatch::core
