#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/least_squares.hpp"
#include "util/rng.hpp"

namespace tagwatch::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsPooled) {
  Rng rng(9);
  RunningStats a, b, pooled;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(Percentile, OrderStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.9), 9.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(EmpiricalCdf, MonotoneAndComplete) {
  Rng rng(10);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.uniform(0.0, 1.0));
  const auto cdf = empirical_cdf(samples, 50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LE(cdf[i - 1].cumulative_fraction, cdf[i].cumulative_fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_fraction, 1.0);
}

TEST(EmpiricalCdf, SmallSampleKeepsAllPoints) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0}, 100);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(FitLine, ExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{3.0, 5.0, 7.0, 9.0};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineRecoversParameters) {
  Rng rng(11);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    xs.push_back(x);
    ys.push_back(0.019 + 0.00018 * x + rng.normal(0.0, 0.0005));
  }
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 0.019, 0.001);
  EXPECT_NEAR(fit.slope, 0.00018, 0.00002);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(FitLine, RejectsDegenerate) {
  EXPECT_THROW(fit_line(std::vector<double>{1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_line(std::vector<double>{2.0, 2.0, 2.0},
                        std::vector<double>{1.0, 2.0, 3.0}),
               std::invalid_argument);
}

TEST(FormatFixed, Rounds) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-0.456, 1), "-0.5");
}

}  // namespace
}  // namespace tagwatch::util
