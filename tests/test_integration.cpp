// Integration tests: the full two-phase Tagwatch loop over the simulated
// reader, RF channel, and world.
#include <gtest/gtest.h>

#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

namespace tagwatch::core {
namespace {

struct Testbed {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, -5, 0}, 8.0},
                                    {3, {-5, 5, 0}, 8.0},
                                    {4, {5, 5, 0}, 8.0}};
  std::vector<util::Epc> mover_epcs;
  std::optional<llrp::SimReaderClient> client;

  Testbed(std::size_t n_tags, std::size_t n_movers, std::uint64_t seed = 11) {
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::random(rng);
      if (i < n_movers) {
        t.motion = std::make_shared<sim::CircularTrack>(
            util::Vec3{0.5, 0.5, 0}, 0.2, 0.7, static_cast<double>(i));
        mover_epcs.push_back(t.epc);
      } else {
        t.motion = std::make_shared<sim::StaticMotion>(
            util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      }
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    client.emplace(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                   gen2::ReaderConfig{}, world, channel, antennas, seed + 1);
  }

  bool is_mover(const util::Epc& epc) const {
    for (const auto& m : mover_epcs) {
      if (m == epc) return true;
    }
    return false;
  }
};

TagwatchConfig test_config() {
  TagwatchConfig cfg;
  cfg.phase2_duration = util::sec(2);  // shorter cycles keep tests fast
  return cfg;
}

TEST(TagwatchIntegration, ColdStartFallsBackToReadAll) {
  Testbed bed(20, 1);
  TagwatchController ctl(test_config(), *bed.client);
  const CycleReport first = ctl.run_cycle();
  // Cycle 0: every tag is new, hence presumed mobile → fraction over the
  // threshold → read-all fallback (§3 "Scope").
  EXPECT_TRUE(first.read_all_fallback);
  EXPECT_GT(first.phase1_readings, 0u);
  EXPECT_GT(first.phase2_readings, 0u);
}

TEST(TagwatchIntegration, ConvergesToSelectiveReading) {
  Testbed bed(30, 2);
  TagwatchController ctl(test_config(), *bed.client);
  const auto reports = ctl.run_cycles(10);
  const CycleReport& late = reports.back();
  EXPECT_FALSE(late.read_all_fallback);
  // Assessment has converged onto exactly the movers.
  ASSERT_EQ(late.targets.size(), 2u);
  for (const auto& t : late.targets) EXPECT_TRUE(bed.is_mover(t));
  EXPECT_FALSE(late.schedule.selections.empty());
}

TEST(TagwatchIntegration, MoversGainOverReadAll) {
  // The headline mechanism: movers' Phase II IRR beats the read-all IRR.
  auto measure = [](ScheduleMode mode) {
    Testbed bed(40, 2, 77);
    TagwatchConfig cfg = test_config();
    cfg.mode = mode;
    TagwatchController ctl(cfg, *bed.client);
    const auto reports = ctl.run_cycles(10);
    double mover_reads = 0.0, secs = 0.0;
    for (std::size_t c = 5; c < reports.size(); ++c) {
      secs += util::to_seconds(reports[c].phase2_duration);
      for (const auto& [epc, count] : reports[c].phase2_counts) {
        if (bed.is_mover(epc)) mover_reads += static_cast<double>(count);
      }
    }
    return mover_reads / 2.0 / secs;
  };
  const double read_all = measure(ScheduleMode::kReadAll);
  const double tagwatch = measure(ScheduleMode::kGreedyCover);
  const double naive = measure(ScheduleMode::kNaiveEpcMasks);
  EXPECT_GT(tagwatch, read_all * 2.0);  // paper: ~3.6× for 2/40
  EXPECT_GT(naive, read_all);           // naive also helps at 2/40
  EXPECT_GT(tagwatch, naive);           // but set cover beats it
}

TEST(TagwatchIntegration, PinnedTargetsAlwaysScheduled) {
  Testbed bed(25, 0);  // nothing moves
  TagwatchConfig cfg = test_config();
  cfg.pinned_targets = {bed.world.tags()[3].epc, bed.world.tags()[7].epc};
  TagwatchController ctl(cfg, *bed.client);
  const auto reports = ctl.run_cycles(8);
  const CycleReport& late = reports.back();
  EXPECT_FALSE(late.read_all_fallback);
  ASSERT_EQ(late.targets.size(), 2u);
  // Pinned tags are read intensively even though stationary.
  std::size_t pinned_reads = 0;
  for (const auto& [epc, count] : late.phase2_counts) {
    if (epc == cfg.pinned_targets[0] || epc == cfg.pinned_targets[1]) {
      pinned_reads += count;
    }
  }
  EXPECT_GT(pinned_reads, 20u);
}

TEST(TagwatchIntegration, NoTargetsFallsBackToReadAll) {
  Testbed bed(15, 0);
  TagwatchController ctl(test_config(), *bed.client);
  const auto reports = ctl.run_cycles(8);
  const CycleReport& late = reports.back();
  // With nothing moving and nothing pinned, Phase II reads everything.
  EXPECT_TRUE(late.read_all_fallback);
  EXPECT_GT(late.phase2_counts.size(), 10u);
}

TEST(TagwatchIntegration, HighMobileFractionFallsBack) {
  Testbed bed(10, 5);  // 50% movers
  TagwatchController ctl(test_config(), *bed.client);
  const auto reports = ctl.run_cycles(6);
  EXPECT_TRUE(reports.back().read_all_fallback);
}

TEST(TagwatchIntegration, ReadingsFlowToApplication) {
  Testbed bed(10, 1);
  TagwatchController ctl(test_config(), *bed.client);
  std::size_t delivered = 0;
  ctl.set_read_listener([&delivered](const rf::TagReading&) { ++delivered; });
  const CycleReport report = ctl.run_cycle();
  EXPECT_EQ(delivered, report.phase1_readings + report.phase2_readings);
  EXPECT_EQ(ctl.history().total_readings(), delivered);
}

TEST(TagwatchIntegration, InterphaseGapIsSmall) {
  Testbed bed(30, 2);
  TagwatchController ctl(test_config(), *bed.client);
  const auto reports = ctl.run_cycles(8);
  const CycleReport& late = reports.back();
  ASSERT_TRUE(late.interphase_gap.has_value());
  // Fig. 17: the scheduling gap is tens of ms, minuscule next to the cycle.
  EXPECT_LT(*late.interphase_gap, util::msec(200));
  EXPECT_GT(late.interphase_gap->count(), 0);
  EXPECT_GE(late.schedule_compute_ms, 0.0);
}

TEST(TagwatchIntegration, StateTransitionIsReassessed) {
  // A tag that starts moving after a stationary period must be promoted to
  // target within a couple of cycles.
  Testbed bed(20, 0, 55);
  // Replace tag 4's motion: static until t=30 s, then a 5 cm step.
  const util::Epc stepper = bed.world.tags()[4].epc;
  bed.world.tags()[4].motion = std::make_shared<sim::StepDisplacement>(
      util::Vec3{1.0, 1.0, 0}, util::Vec3{0.05, 0, 0}, util::sec(30));
  TagwatchController ctl(test_config(), *bed.client);
  bool promoted_after_step = false;
  for (int i = 0; i < 20; ++i) {
    const CycleReport r = ctl.run_cycle();
    const bool stepped = ctl.now() > util::sec(30);
    const bool is_target =
        std::find(r.targets.begin(), r.targets.end(), stepper) !=
        r.targets.end();
    if (stepped && is_target) {
      promoted_after_step = true;
      break;
    }
  }
  EXPECT_TRUE(promoted_after_step);
}

TEST(TagwatchIntegration, TagEnteringMidRunIsAdopted) {
  Testbed bed(15, 1, 66);
  // A tag arrives at t = 20 s.
  sim::SimTag late_tag;
  util::Rng rng(5);
  late_tag.epc = util::Epc::random(rng);
  late_tag.motion =
      std::make_shared<sim::StaticMotion>(util::Vec3{0.5, -0.5, 0});
  late_tag.arrives = util::sec(20);
  late_tag.tag_phase_rad = 1.0;
  bed.world.add_tag(std::move(late_tag));
  const util::Epc late_epc = bed.world.tags().back().epc;

  TagwatchController ctl(test_config(), *bed.client);
  bool seen = false;
  for (int i = 0; i < 15 && !seen; ++i) {
    ctl.run_cycle();
    seen = ctl.history().find(late_epc) != nullptr;
  }
  EXPECT_TRUE(seen);
}

TEST(TagwatchIntegration, IncrementalPlannerMatchesFromScratchPipeline) {
  // Two identically-seeded testbeds, one controller planning from scratch
  // each cycle, one with the persistent cross-cycle planner: every cycle's
  // schedule must be bit-identical (cost doubles included).
  Testbed bed_ref(30, 2, 77);
  Testbed bed_inc(30, 2, 77);
  TagwatchConfig cfg_ref = test_config();
  TagwatchConfig cfg_inc = test_config();
  cfg_inc.planner.incremental = true;
  cfg_inc.planner.churn_threshold = 0.25;
  // Scheduling compute runs on the host clock, so charging it would skew
  // the two simulations apart; keep the reader clocks in lockstep.
  cfg_ref.charge_compute_time = false;
  cfg_inc.charge_compute_time = false;
  TagwatchController ref(cfg_ref, *bed_ref.client);
  TagwatchController inc(cfg_inc, *bed_inc.client);
  EXPECT_EQ(inc.incremental_planner(), nullptr);

  bool compared_selective = false;
  for (int i = 0; i < 10; ++i) {
    const CycleReport a = ref.run_cycle();
    const CycleReport b = inc.run_cycle();
    ASSERT_EQ(a.scene, b.scene) << "cycle " << i;
    ASSERT_EQ(a.targets, b.targets) << "cycle " << i;
    EXPECT_EQ(a.read_all_fallback, b.read_all_fallback) << "cycle " << i;
    EXPECT_FALSE(a.planner_incremental);
    if (b.read_all_fallback) continue;
    compared_selective = true;
    EXPECT_TRUE(b.planner_incremental) << "cycle " << i;
    ASSERT_EQ(a.schedule.selections.size(), b.schedule.selections.size())
        << "cycle " << i;
    for (std::size_t s = 0; s < a.schedule.selections.size(); ++s) {
      EXPECT_EQ(a.schedule.selections[s].bitmask,
                b.schedule.selections[s].bitmask)
          << "cycle " << i << " selection " << s;
    }
    EXPECT_EQ(a.schedule.estimated_cost_s, b.schedule.estimated_cost_s)
        << "cycle " << i;
    EXPECT_EQ(a.schedule.covered_union, b.schedule.covered_union)
        << "cycle " << i;
    EXPECT_EQ(a.schedule.used_naive_fallback,
              b.schedule.used_naive_fallback)
        << "cycle " << i;
  }
  EXPECT_TRUE(compared_selective);
  ASSERT_NE(inc.incremental_planner(), nullptr);
  const auto& stats = inc.incremental_planner()->stats();
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_EQ(stats.cycles, stats.incremental_cycles + stats.full_rebuilds);
}

TEST(TagwatchIntegration, BlockedTagToleratedWithoutDeadlock) {
  Testbed bed(12, 1, 88);
  bed.world.tags()[5].block_probability = 0.5;
  TagwatchController ctl(test_config(), *bed.client);
  const auto reports = ctl.run_cycles(5);
  // The system keeps cycling and the blocked tag is still read sometimes.
  EXPECT_EQ(reports.size(), 5u);
  EXPECT_NE(ctl.history().find(bed.world.tags()[5].epc), nullptr);
}

}  // namespace
}  // namespace tagwatch::core
