// Tests for the Gaussian-mixture immobility model (§4.1–4.3).
#include <gtest/gtest.h>

#include "core/immobility.hpp"
#include "util/circular.hpp"
#include "util/rng.hpp"

namespace tagwatch::core {
namespace {

ImmobilityConfig fast_config() {
  ImmobilityConfig c;
  c.trust_count = 5;
  return c;
}

TEST(ImmobilityModel, RejectsBadConfig) {
  ImmobilityConfig c;
  c.learning_rate = 0.0;
  EXPECT_THROW((ImmobilityModel{c}), std::invalid_argument);
  c = {};
  c.max_components = 0;
  EXPECT_THROW((ImmobilityModel{c}), std::invalid_argument);
  c = {};
  c.match_threshold = -1.0;
  EXPECT_THROW((ImmobilityModel{c}), std::invalid_argument);
}

TEST(ImmobilityModel, FirstObservationIsMoving) {
  // "Initially, we assume all the tags are in motion" (§4.1).
  ImmobilityModel m(fast_config());
  EXPECT_EQ(m.observe(1.0), MotionVerdict::kMoving);
  EXPECT_EQ(m.component_count(), 1u);
}

TEST(ImmobilityModel, LearnsImmobilityFromStablePhase) {
  ImmobilityModel m(fast_config());
  util::Rng rng(51);
  // Stable phase around 2.0 with thermal noise.
  MotionVerdict last = MotionVerdict::kMoving;
  for (int i = 0; i < 50; ++i) last = m.observe(rng.normal(2.0, 0.05));
  EXPECT_EQ(last, MotionVerdict::kStationary);
  EXPECT_TRUE(m.has_trusted_component());
  // The dominant component sits near the true mean with a tight σ.
  const GaussianComponent& top = m.components().front();
  EXPECT_NEAR(top.mean, 2.0, 0.05);
  EXPECT_LT(top.stddev, 0.15);
}

TEST(ImmobilityModel, DetectsDisplacementAfterLearning) {
  ImmobilityModel m(fast_config());
  util::Rng rng(52);
  for (int i = 0; i < 60; ++i) m.observe(rng.normal(2.0, 0.05));
  // A 2 cm displacement at λ≈32.6 cm shifts phase by 4π·0.02/0.326 ≈ 0.77 rad.
  EXPECT_EQ(m.classify(2.0 + 0.77), MotionVerdict::kMoving);
  EXPECT_EQ(m.classify(2.02), MotionVerdict::kStationary);
}

TEST(ImmobilityModel, PhaseWrapDoesNotFalseAlarm) {
  // §4.3 "phase jumps": values straddling 0/2π are the same position.
  ImmobilityModel m(fast_config());
  util::Rng rng(53);
  for (int i = 0; i < 60; ++i) {
    m.observe(util::wrap_to_2pi(rng.normal(0.0, 0.05)));
  }
  EXPECT_EQ(m.classify(util::kTwoPi - 0.02), MotionVerdict::kStationary);
  EXPECT_EQ(m.classify(0.03), MotionVerdict::kStationary);
}

TEST(ImmobilityModel, MultimodalPhasesBuildMultipleComponents) {
  // Fig. 8: a walking person toggles the superposed phase between states;
  // the mixture learns each state instead of flagging motion forever.
  ImmobilityModel m(fast_config());
  util::Rng rng(54);
  for (int i = 0; i < 300; ++i) {
    const double mode = (i % 3 == 0) ? 1.0 : ((i % 3 == 1) ? 2.5 : 4.5);
    m.observe(rng.normal(mode, 0.05));
  }
  EXPECT_GE(m.component_count(), 3u);
  EXPECT_EQ(m.classify(1.02), MotionVerdict::kStationary);
  EXPECT_EQ(m.classify(2.48), MotionVerdict::kStationary);
  EXPECT_EQ(m.classify(4.52), MotionVerdict::kStationary);
  EXPECT_EQ(m.classify(3.5), MotionVerdict::kMoving);
}

TEST(ImmobilityModel, StackBoundedByK) {
  ImmobilityConfig c = fast_config();
  c.max_components = 4;
  ImmobilityModel m(c);
  util::Rng rng(55);
  for (int i = 0; i < 500; ++i) m.observe(rng.uniform(0.0, util::kTwoPi));
  EXPECT_LE(m.component_count(), 4u);
}

TEST(ImmobilityModel, ComponentsSortedByPriority) {
  ImmobilityModel m(fast_config());
  util::Rng rng(56);
  for (int i = 0; i < 200; ++i) m.observe(rng.normal(1.5, 0.05));
  m.observe(5.0);  // fresh junk component
  const auto& comps = m.components();
  for (std::size_t i = 1; i < comps.size(); ++i) {
    EXPECT_GE(comps[i - 1].priority(), comps[i].priority());
  }
  EXPECT_NEAR(comps.front().mean, 1.5, 0.1);
}

TEST(ImmobilityModel, StateTransitionRelearnsWithinBudget) {
  // §4.3: after a tag moves to a new position, the new immobility state
  // should become trusted after a Phase-II-scale burst of readings, while
  // the outdated component decays.
  ImmobilityConfig c = fast_config();
  ImmobilityModel m(c);
  util::Rng rng(57);
  for (int i = 0; i < 100; ++i) m.observe(rng.normal(1.0, 0.05));
  ASSERT_EQ(m.classify(1.0), MotionVerdict::kStationary);
  // Move: phase now clusters at 4.0.  First readings are flagged moving.
  EXPECT_EQ(m.observe(rng.normal(4.0, 0.05)), MotionVerdict::kMoving);
  int to_stationary = 1;
  while (m.observe(rng.normal(4.0, 0.05)) == MotionVerdict::kMoving) {
    ++to_stationary;
    ASSERT_LT(to_stationary, 200);  // must converge
  }
  // One cycle of intensive reading (~200 reads at 40 Hz × 5 s) is plenty.
  EXPECT_LE(to_stationary, 100);
}

TEST(ImmobilityModel, ContinuousMotionStaysMoving) {
  // A tag on a moving train sweeps phase; most readings are unexplained.
  ImmobilityModel m(fast_config());
  util::Rng rng(58);
  std::size_t moving = 0;
  const int n = 400;
  double phase = 0.0;
  for (int i = 0; i < n; ++i) {
    phase = util::wrap_to_2pi(phase + 0.9 + rng.normal(0.0, 0.1));
    if (m.observe(phase) == MotionVerdict::kMoving) ++moving;
  }
  EXPECT_GT(static_cast<double>(moving) / n, 0.6);
}

TEST(ImmobilityModel, LinearMetricForRss) {
  ImmobilityConfig c = ImmobilityConfig::for_rss();
  c.trust_count = 5;
  ImmobilityModel m(c, Metric::kLinear);
  util::Rng rng(59);
  for (int i = 0; i < 60; ++i) m.observe(rng.normal(-55.0, 0.5));
  EXPECT_EQ(m.classify(-55.2), MotionVerdict::kStationary);
  EXPECT_EQ(m.classify(-70.0), MotionVerdict::kMoving);
}

TEST(ImmobilityModel, LearnDoesNotRequireVerdictUsage) {
  ImmobilityModel m(fast_config());
  util::Rng rng(60);
  for (int i = 0; i < 50; ++i) m.learn(rng.normal(3.0, 0.05));
  EXPECT_EQ(m.classify(3.0), MotionVerdict::kStationary);
}

TEST(ImmobilityModel, WeightsDecayForUnmatchedComponents) {
  ImmobilityModel m(fast_config());
  util::Rng rng(61);
  for (int i = 0; i < 50; ++i) m.observe(rng.normal(1.0, 0.05));
  // Capture the stale component's weight, then feed a different mode.
  double stale_weight = m.components().front().weight;
  for (int i = 0; i < 200; ++i) m.observe(rng.normal(4.0, 0.05));
  // Find the old component (mean ≈ 1.0) and check its weight decayed.
  bool found = false;
  for (const auto& comp : m.components()) {
    if (util::circular_distance(comp.mean, 1.0) < 0.3) {
      EXPECT_LT(comp.weight, stale_weight);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tagwatch::core
