// Differential property tests for the large-scene Phase-II planning fast
// path: the word-parallel incremental pipeline (candidates_for + lazy
// greedy) must be plan-equivalent to the bit-by-bit reference pipeline
// (candidates_for_reference + dense rescan) on randomized scenes up to
// 2,048 tags, and the IndicatorBitmap word-level operators must match a
// naive per-bit model.
#include <gtest/gtest.h>

#include <vector>

#include "core/setcover.hpp"
#include "util/rng.hpp"

namespace tagwatch::core {
namespace {

std::vector<util::Epc> random_scene(std::size_t n, util::Rng& rng) {
  std::vector<util::Epc> scene;
  scene.reserve(n);
  for (std::size_t i = 0; i < n; ++i) scene.push_back(util::Epc::random(rng));
  return scene;
}

util::IndicatorBitmap random_targets(const BitmaskIndex& index,
                                     std::size_t n_targets, util::Rng& rng) {
  std::vector<util::Epc> target_epcs;
  while (target_epcs.size() < n_targets) {
    target_epcs.push_back(
        index.scene()[rng.below(static_cast<std::uint32_t>(
            index.scene_size()))]);
  }
  return index.bitmap_of(target_epcs);
}

void expect_schedules_identical(const Schedule& fast,
                                const Schedule& reference) {
  ASSERT_EQ(fast.selections.size(), reference.selections.size());
  for (std::size_t i = 0; i < fast.selections.size(); ++i) {
    EXPECT_EQ(fast.selections[i].bitmask, reference.selections[i].bitmask)
        << "selection " << i;
    EXPECT_EQ(fast.selections[i].covered_total,
              reference.selections[i].covered_total)
        << "selection " << i;
    EXPECT_EQ(fast.selections[i].covered_targets,
              reference.selections[i].covered_targets)
        << "selection " << i;
  }
  // Costs accumulate in the same selection order: bit-identical doubles.
  EXPECT_EQ(fast.estimated_cost_s, reference.estimated_cost_s);
  EXPECT_EQ(fast.used_naive_fallback, reference.used_naive_fallback);
  EXPECT_EQ(fast.covered_union, reference.covered_union);
}

TEST(SchedulerDifferential, CandidateTablesIdenticalOnRandomScenes) {
  util::Rng rng(2017);
  for (const std::size_t n : {256u, 611u, 1024u}) {
    const BitmaskIndex index(random_scene(n, rng));
    const auto targets = random_targets(index, 2 + n / 128, rng);
    const auto fast = index.candidates_for(targets);
    const auto reference = index.candidates_for_reference(targets);
    ASSERT_EQ(fast.size(), reference.size()) << "scene " << n;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast[i].bitmask, reference[i].bitmask)
          << "scene " << n << " row " << i;
      ASSERT_EQ(fast[i].coverage, reference[i].coverage)
          << "scene " << n << " row " << i;
    }
  }
}

TEST(SchedulerDifferential, PlansIdenticalAcrossScales) {
  util::Rng rng(4242);
  const GreedyCoverScheduler lazy(InventoryCostModel::paper_fit(),
                                  GreedyEvaluation::kLazy);
  const GreedyCoverScheduler dense(InventoryCostModel::paper_fit(),
                                   GreedyEvaluation::kDense);
  for (const std::size_t n : {256u, 512u, 1024u, 2048u}) {
    const BitmaskIndex index(random_scene(n, rng));
    const auto targets = random_targets(index, 2 + n / 128, rng);
    expect_schedules_identical(lazy.plan(index, targets),
                               dense.plan(index, targets));
  }
}

TEST(SchedulerDifferential, PlansIdenticalUnderClusteredEpcs) {
  // Clustered EPCs (shared high bits) stress dedup and tie-breaking: many
  // candidate rows collapse to the same coverage and many gains tie.
  util::Rng rng(77);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<util::Epc> scene;
    const util::Epc base = util::Epc::random(rng);
    for (int i = 0; i < 300; ++i) {
      util::BitString bits = base.bits();
      // Perturb only the low bits so prefixes collide aggressively.
      for (std::size_t b = bits.size() - 12; b < bits.size(); ++b) {
        if (rng.chance(0.5)) bits.set_bit(b, !bits.bit(b));
      }
      scene.emplace_back(bits);
    }
    const BitmaskIndex index(scene);
    const auto targets = random_targets(index, 6, rng);
    const GreedyCoverScheduler lazy(InventoryCostModel::paper_fit(),
                                    GreedyEvaluation::kLazy);
    const GreedyCoverScheduler dense(InventoryCostModel::paper_fit(),
                                     GreedyEvaluation::kDense);
    expect_schedules_identical(lazy.plan(index, targets),
                               dense.plan(index, targets));
  }
}

/// Forces every dedupe probe into one collision chain for the enclosing
/// scope (see BitmaskIndex::set_test_degenerate_dedupe_hash).
class DegenerateHashGuard {
 public:
  DegenerateHashGuard() { BitmaskIndex::set_test_degenerate_dedupe_hash(true); }
  ~DegenerateHashGuard() {
    BitmaskIndex::set_test_degenerate_dedupe_hash(false);
  }
  DegenerateHashGuard(const DegenerateHashGuard&) = delete;
  DegenerateHashGuard& operator=(const DegenerateHashGuard&) = delete;
};

TEST(SchedulerDifferential, DedupeSurvivesAdversarialHashCollisions) {
  // With every row hashing to the same constant, dedupe correctness rests
  // entirely on the exact word compare behind each hash hit: a hash-only
  // table would merge distinct coverages here and the candidate tables
  // (and plans) would diverge from the bit-by-bit reference.
  const DegenerateHashGuard guard;
  ASSERT_TRUE(BitmaskIndex::test_degenerate_dedupe_hash());
  util::Rng rng(40417);
  for (const std::size_t n : {256u, 1024u}) {
    const BitmaskIndex index(random_scene(n, rng));
    const auto targets = random_targets(index, 2 + n / 128, rng);
    const auto fast = index.candidates_for(targets);
    const auto reference = index.candidates_for_reference(targets);
    ASSERT_EQ(fast.size(), reference.size()) << "scene " << n;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast[i].bitmask, reference[i].bitmask)
          << "scene " << n << " row " << i;
      ASSERT_EQ(fast[i].coverage, reference[i].coverage)
          << "scene " << n << " row " << i;
    }
    const GreedyCoverScheduler lazy(InventoryCostModel::paper_fit(),
                                    GreedyEvaluation::kLazy);
    expect_schedules_identical(lazy.plan(index, targets),
                               GreedyCoverScheduler(
                                   InventoryCostModel::paper_fit(),
                                   GreedyEvaluation::kDense)
                                   .plan(index, targets));
  }
}

TEST(SchedulerDifferential, DegenerateHashHookRestores) {
  {
    const DegenerateHashGuard guard;
    EXPECT_TRUE(BitmaskIndex::test_degenerate_dedupe_hash());
  }
  EXPECT_FALSE(BitmaskIndex::test_degenerate_dedupe_hash());
}

TEST(SchedulerDifferential, PlansIdenticalUnderCheapStartCostModel) {
  // A negligible τ0 flips the economics (no merging economy) and exercises
  // the naive worst-case guard on both paths.
  util::Rng rng(99);
  const InventoryCostModel cheap(1e-7, 0.00018);
  const GreedyCoverScheduler lazy(cheap, GreedyEvaluation::kLazy);
  const GreedyCoverScheduler dense(cheap, GreedyEvaluation::kDense);
  for (const std::size_t n : {256u, 1024u}) {
    const BitmaskIndex index(random_scene(n, rng));
    const auto targets = random_targets(index, 8, rng);
    expect_schedules_identical(lazy.plan(index, targets),
                               dense.plan(index, targets));
  }
}

TEST(SchedulerDifferential, WordOpsMatchPerBitReferenceModel) {
  // Randomized IndicatorBitmap algebra against a vector<bool> model, at a
  // size with a partial tail word.
  util::Rng rng(31);
  const std::size_t n = 709;
  util::IndicatorBitmap v(n);
  std::vector<bool> model(n, false);
  for (int step = 0; step < 120; ++step) {
    util::IndicatorBitmap other(n);
    std::vector<bool> other_model(n, false);
    for (int k = 0; k < 150; ++k) {
      const auto i = static_cast<std::size_t>(rng.below(n));
      other.set(i);
      other_model[i] = true;
    }
    // Check and_count against the model before mutating.
    std::size_t expected_and = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (model[i] && other_model[i]) ++expected_and;
    }
    ASSERT_EQ(v.and_count(other), expected_and) << "step " << step;

    switch (rng.below(4)) {
      case 0:
        v.merge(other);
        for (std::size_t i = 0; i < n; ++i) {
          model[i] = model[i] || other_model[i];
        }
        break;
      case 1:
        v.subtract(other);
        for (std::size_t i = 0; i < n; ++i) {
          model[i] = model[i] && !other_model[i];
        }
        break;
      case 2:
        v.and_with(other);
        for (std::size_t i = 0; i < n; ++i) {
          model[i] = model[i] && other_model[i];
        }
        break;
      default:
        v.fill();
        model.assign(n, true);
        break;
    }
    std::size_t expected_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (model[i]) ++expected_count;
    }
    ASSERT_EQ(v.count(), expected_count) << "step " << step;
    for (std::size_t i = 0; i < n; i += 53) {
      ASSERT_EQ(v.test(i), model[i]) << "step " << step << " bit " << i;
    }
  }
}

}  // namespace
}  // namespace tagwatch::core
