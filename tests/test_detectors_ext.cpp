// Tests for detector extensions: MoG model keying and hybrid fusion.
#include <gtest/gtest.h>

#include "core/detectors.hpp"
#include "util/circular.hpp"
#include "util/rng.hpp"

namespace tagwatch::core {
namespace {

rf::TagReading reading(double phase, double rssi = -55.0,
                       rf::AntennaId antenna = 1, std::size_t channel = 0) {
  rf::TagReading r;
  r.epc = util::Epc::from_serial(1);
  r.antenna = antenna;
  r.channel = channel;
  r.phase_rad = util::wrap_to_2pi(phase);
  r.rssi_dbm = rssi;
  return r;
}

ImmobilityConfig fast_phase() {
  ImmobilityConfig c;
  c.trust_count = 5;
  return c;
}

TEST(MogKeying, PooledChannelsShareOneModel) {
  MogKeying pooled;
  pooled.per_channel = false;
  MogDetector d(true, fast_phase(), pooled);
  util::Rng rng(141);
  // Train on channel 0 only.
  for (int i = 0; i < 50; ++i) {
    d.update(reading(rng.normal(2.0, 0.05), -55.0, 1, 0));
  }
  EXPECT_EQ(d.model_count(), 1u);
  // Pooled: the (untrained) channel 9 consults the same model — this is
  // exactly the physical mistake the per-channel default avoids, since
  // phase on another channel is actually incomparable.
  EXPECT_EQ(d.classify(reading(2.0, -55.0, 1, 9)), MotionVerdict::kStationary);
}

TEST(MogKeying, PerChannelDefaultSeparates) {
  MogDetector d(true, fast_phase());
  util::Rng rng(142);
  for (int i = 0; i < 50; ++i) {
    d.update(reading(rng.normal(2.0, 0.05), -55.0, 1, 0));
  }
  EXPECT_EQ(d.classify(reading(2.0, -55.0, 1, 9)), MotionVerdict::kMoving);
}

TEST(MogKeying, PooledAntennasShareOneModel) {
  MogKeying pooled;
  pooled.per_antenna = false;
  MogDetector d(true, fast_phase(), pooled);
  util::Rng rng(143);
  for (int i = 0; i < 50; ++i) {
    d.update(reading(rng.normal(2.0, 0.05), -55.0, 1, 0));
  }
  EXPECT_EQ(d.model_count(), 1u);
  EXPECT_EQ(d.classify(reading(2.0, -55.0, 4, 0)), MotionVerdict::kStationary);
}

class HybridFixture : public ::testing::Test {
 protected:
  DetectorConfig config_ = [] {
    DetectorConfig c;
    c.phase_mog.trust_count = 5;
    c.rss_mog.trust_count = 5;
    return c;
  }();

  /// Trains a detector on a stable (phase, RSS) pair.
  void train(MotionDetector& d) {
    util::Rng rng(144);
    for (int i = 0; i < 60; ++i) {
      d.update(reading(rng.normal(2.0, 0.05), -55.0 + rng.normal(0.0, 0.4)));
    }
  }
};

TEST_F(HybridFixture, AndRequiresBothIndicators) {
  const auto d = make_detector(DetectorKind::kHybridAnd, config_);
  train(*d);
  // Phase jump alone (multipath-like): AND suppresses it.
  EXPECT_EQ(d->classify(reading(3.0, -55.0)), MotionVerdict::kStationary);
  // RSS drop alone: also suppressed.
  EXPECT_EQ(d->classify(reading(2.0, -75.0)), MotionVerdict::kStationary);
  // Both change (a real displacement): flagged.
  EXPECT_EQ(d->classify(reading(3.0, -75.0)), MotionVerdict::kMoving);
}

TEST_F(HybridFixture, OrFiresOnEitherIndicator) {
  const auto d = make_detector(DetectorKind::kHybridOr, config_);
  train(*d);
  EXPECT_EQ(d->classify(reading(3.0, -55.0)), MotionVerdict::kMoving);
  EXPECT_EQ(d->classify(reading(2.0, -75.0)), MotionVerdict::kMoving);
  EXPECT_EQ(d->classify(reading(2.0, -55.2)), MotionVerdict::kStationary);
}

TEST_F(HybridFixture, UpdateTrainsBothBranches) {
  const auto d = make_detector(DetectorKind::kHybridAnd, config_);
  util::Rng rng(145);
  MotionVerdict last = MotionVerdict::kMoving;
  for (int i = 0; i < 60; ++i) {
    last = d->update(
        reading(rng.normal(1.0, 0.05), -60.0 + rng.normal(0.0, 0.4)));
  }
  EXPECT_EQ(last, MotionVerdict::kStationary);
}

TEST(MakeDetectorExt, ProducesHybrids) {
  EXPECT_NE(make_detector(DetectorKind::kHybridAnd), nullptr);
  EXPECT_NE(make_detector(DetectorKind::kHybridOr), nullptr);
}

}  // namespace
}  // namespace tagwatch::core
