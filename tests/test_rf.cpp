// Tests for the RF substrate: channel plan, propagation, Fresnel zones,
// and the end-to-end observation model.
#include <gtest/gtest.h>

#include <cmath>

#include "rf/channel.hpp"
#include "rf/channel_plan.hpp"
#include "rf/propagation.hpp"
#include "util/circular.hpp"
#include "util/stats.hpp"

namespace tagwatch::rf {
namespace {

TEST(ChannelPlan, China16Channels) {
  const ChannelPlan plan = ChannelPlan::china_920_926();
  ASSERT_EQ(plan.channel_count(), 16u);
  EXPECT_NEAR(plan.frequency_hz(0), 920.25e6, 1.0);
  EXPECT_NEAR(plan.frequency_hz(15), 925.875e6, 1.0);
  // Wavelengths near 32.5 cm at 920 MHz.
  EXPECT_NEAR(plan.wavelength_m(0), 0.3258, 1e-3);
  EXPECT_GT(plan.wavelength_m(0), plan.wavelength_m(15));
}

TEST(ChannelPlan, HopVisitsEveryChannel) {
  const ChannelPlan plan = ChannelPlan::china_920_926();
  std::set<std::size_t> visited;
  for (std::size_t i = 0; i < plan.channel_count(); ++i) {
    const std::size_t c = plan.hop_channel(i);
    EXPECT_LT(c, plan.channel_count());
    visited.insert(c);
  }
  EXPECT_EQ(visited.size(), plan.channel_count());
}

TEST(ChannelPlan, SinglePlanNeverHops) {
  const ChannelPlan plan = ChannelPlan::single(920e6);
  EXPECT_EQ(plan.channel_count(), 1u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(plan.hop_channel(i), 0u);
}

TEST(ChannelPlan, RejectsBadFrequencies) {
  EXPECT_THROW(ChannelPlan({}), std::invalid_argument);
  EXPECT_THROW(ChannelPlan({-1.0}), std::invalid_argument);
}

TEST(Propagation, PhaseFollows4PiDOverLambda) {
  // θ = 4πd/λ (mod 2π): moving the tag by λ/4 flips the phase by π.
  const double lambda = 0.3258;
  const util::Vec3 reader{0, 0, 0};
  const PathSet near = compute_paths(reader, {1.0, 0, 0}, {});
  const PathSet far = compute_paths(reader, {1.0 + lambda / 4.0, 0, 0}, {});
  const double phase_near = util::wrap_to_2pi(std::arg(
      backscatter_channel(near, lambda, 0.0)));
  const double phase_far = util::wrap_to_2pi(std::arg(
      backscatter_channel(far, lambda, 0.0)));
  EXPECT_NEAR(util::circular_distance(phase_near, phase_far),
              std::numbers::pi, 1e-6);
}

TEST(Propagation, FullWavelengthRoundTripIsInvariant) {
  const double lambda = 0.3258;
  const PathSet a = compute_paths({0, 0, 0}, {1.0, 0, 0}, {});
  const PathSet b = compute_paths({0, 0, 0}, {1.0 + lambda / 2.0, 0, 0}, {});
  // Half a wavelength of one-way distance = full wavelength round trip.
  const double pa = std::arg(backscatter_channel(a, lambda, 0.0));
  const double pb = std::arg(backscatter_channel(b, lambda, 0.0));
  EXPECT_NEAR(util::circular_distance(pa, pb), 0.0, 1e-6);
}

TEST(Propagation, TagPhaseOffsetAdds) {
  const PathSet p = compute_paths({0, 0, 0}, {1.3, 0.4, 0}, {});
  const double base = std::arg(backscatter_channel(p, 0.3258, 0.0));
  const double shifted = std::arg(backscatter_channel(p, 0.3258, 1.0));
  EXPECT_NEAR(util::circular_distance(util::wrap_to_2pi(shifted),
                                      util::wrap_to_2pi(base + 1.0)),
              0.0, 1e-9);
}

TEST(Propagation, ReflectorAddsPath) {
  const std::vector<Reflector> people{{{0.5, 1.0, 0}, 0.3}};
  const PathSet p = compute_paths({0, 0, 0}, {1.0, 0, 0}, people);
  ASSERT_EQ(p.reflected_m.size(), 1u);
  EXPECT_GT(p.reflected_m[0], p.los_m);  // detour is strictly longer
  EXPECT_DOUBLE_EQ(p.coefficients[0], 0.3);
}

TEST(Propagation, ReflectorShiftsObservedPhase) {
  const double lambda = 0.3258;
  const PathSet clear = compute_paths({0, 0, 0}, {2.0, 0, 0}, {});
  const PathSet busy = compute_paths({0, 0, 0}, {2.0, 0, 0},
                                     {{{1.0, 0.35, 0}, 0.4}});
  const double p_clear = std::arg(backscatter_channel(clear, lambda, 0.0));
  const double p_busy = std::arg(backscatter_channel(busy, lambda, 0.0));
  // A strong nearby reflector must perturb the superposed phase.
  EXPECT_GT(util::circular_distance(p_clear, p_busy), 0.01);
}

TEST(Propagation, FresnelZoneIndexing) {
  const double lambda = 0.3258;
  const util::Vec3 reader{0, 0, 0};
  const util::Vec3 tag{2.0, 0, 0};
  // A point on the LOS segment has zero detour → zone 1.
  EXPECT_EQ(fresnel_zone(reader, tag, {1.0, 0.0, 0}, lambda), 1);
  // Larger lateral offsets land in higher zones, monotonically.
  int prev = 0;
  for (const double y : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const int zone = fresnel_zone(reader, tag, {1.0, y, 0}, lambda);
    EXPECT_GE(zone, prev);
    prev = zone;
  }
  EXPECT_GT(prev, 3);
}

TEST(Propagation, RssiDecreasesWithDistance) {
  const double lambda = 0.3258;
  double prev = backscatter_rssi_dbm(0.5, lambda);
  for (const double d : {1.0, 2.0, 4.0, 8.0}) {
    const double rssi = backscatter_rssi_dbm(d, lambda);
    EXPECT_LT(rssi, prev);
    prev = rssi;
  }
  // Two-way free space: doubling distance costs ~12 dB.
  EXPECT_NEAR(backscatter_rssi_dbm(1.0, lambda) -
                  backscatter_rssi_dbm(2.0, lambda),
              12.04, 0.1);
}

class RfChannelTest : public ::testing::Test {
 protected:
  ChannelPlan plan_ = ChannelPlan::china_920_926();
  RfChannel channel_{plan_};
  Antenna antenna_{1, {0, 0, 0}, 8.0};
  util::Rng rng_{17};
};

TEST_F(RfChannelTest, StationaryTagPhaseIsTightlyClustered) {
  util::CircularStats stats;
  for (int i = 0; i < 500; ++i) {
    const RfObservation obs =
        channel_.observe(antenna_, {1.5, 0.5, 0}, 0.7, {}, 3, rng_);
    stats.add(obs.phase_rad);
  }
  // Spread should be on the order of the configured phase noise (0.1 rad).
  EXPECT_LT(stats.stddev(), 0.15);
  EXPECT_GT(stats.stddev(), 0.03);
}

TEST_F(RfChannelTest, PhaseDiffersAcrossChannels) {
  const RfObservation a =
      channel_.observe(antenna_, {1.5, 0.5, 0}, 0.0, {}, 0, rng_);
  const RfObservation b =
      channel_.observe(antenna_, {1.5, 0.5, 0}, 0.0, {}, 15, rng_);
  // ~5.6 MHz apart over a 2×1.58 m round trip ⇒ phase separation well above
  // the noise floor.
  EXPECT_GT(util::circular_distance(a.phase_rad, b.phase_rad), 0.2);
}

TEST_F(RfChannelTest, RssiQuantizedToHalfDb) {
  for (int i = 0; i < 50; ++i) {
    const RfObservation obs =
        channel_.observe(antenna_, {2.0, 0.0, 0}, 0.0, {}, 3, rng_);
    const double steps = obs.rssi_dbm / 0.5;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
  }
}

TEST_F(RfChannelTest, PhaseInValidRange) {
  for (int i = 0; i < 200; ++i) {
    const RfObservation obs = channel_.observe(
        antenna_, {rng_.uniform(0.5, 5.0), rng_.uniform(-3.0, 3.0), 0}, 0.0,
        {}, static_cast<std::size_t>(rng_.below(16)), rng_);
    EXPECT_GE(obs.phase_rad, 0.0);
    EXPECT_LT(obs.phase_rad, util::kTwoPi);
  }
}

TEST_F(RfChannelTest, MovingReflectorCausesPhaseJumps) {
  // Fig. 7: a person walking near the link shifts the superposed phase even
  // though the tag is static — the multipath effect the GMM must absorb.
  util::CircularStats clear_stats, busy_stats;
  for (int i = 0; i < 300; ++i) {
    clear_stats.add(
        channel_.observe(antenna_, {2.0, 0, 0}, 0.0, {}, 5, rng_).phase_rad);
    // The person alternates between two spots with clearly different
    // reader→person→tag detours (different Fresnel zones → distinct
    // superposition states).
    const util::Vec3 person =
        (i < 150) ? util::Vec3{0.9, 0.15, 0} : util::Vec3{1.3, -0.5, 0};
    busy_stats.add(channel_
                       .observe(antenna_, {2.0, 0, 0}, 0.0, {{person, 0.5}},
                                5, rng_)
                       .phase_rad);
  }
  EXPECT_GT(busy_stats.stddev(), clear_stats.stddev() * 1.5);
}

}  // namespace
}  // namespace tagwatch::rf
