// ReadingPipeline mechanics and the PipelineMetrics accounting contract.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "core/metrics.hpp"
#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

namespace tagwatch::core {
namespace {

rf::TagReading make_reading(std::uint64_t t_us = 0) {
  rf::TagReading r;
  r.epc = util::Epc::from_hex("3000AABBCCDD");
  r.antenna = 1;
  r.timestamp = util::usec(static_cast<std::int64_t>(t_us));
  return r;
}

/// Counts deliveries; optionally declines every reading.
class CountingSink final : public ReadingSink {
 public:
  CountingSink(std::string name, bool accept = true)
      : name_(std::move(name)), accept_(accept) {}

  std::string_view name() const override { return name_; }
  bool on_reading(const rf::TagReading&, const ReadingContext& ctx) override {
    ++seen_;
    last_phase_ = ctx.phase;
    last_cycle_ = ctx.cycle_index;
    return accept_;
  }
  void on_cycle_end(const CycleReport&) override { ++cycles_; }

  std::size_t seen_ = 0;
  std::size_t cycles_ = 0;
  ReadPhase last_phase_ = ReadPhase::kPhase1;
  std::size_t last_cycle_ = 0;

 private:
  std::string name_;
  bool accept_;
};

TEST(ReadingPipeline, DispatchesToEverySinkInOrder) {
  ReadingPipeline pipeline;
  auto first = std::make_shared<CountingSink>("first");
  auto second = std::make_shared<CountingSink>("second");
  pipeline.add_sink(first);
  pipeline.add_sink(second);
  ASSERT_EQ(pipeline.sink_count(), 2u);

  pipeline.dispatch(make_reading(), {/*cycle_index=*/3, ReadPhase::kPhase2});
  EXPECT_EQ(first->seen_, 1u);
  EXPECT_EQ(second->seen_, 1u);
  EXPECT_EQ(second->last_phase_, ReadPhase::kPhase2);
  EXPECT_EQ(second->last_cycle_, 3u);
  EXPECT_EQ(pipeline.dispatched_total(), 1u);

  const auto stats = pipeline.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "first");
  EXPECT_EQ(stats[1].name, "second");
}

TEST(ReadingPipeline, DecliningSinkCountsAsDroppedAndDeliveryContinues) {
  ReadingPipeline pipeline;
  auto refuser = std::make_shared<CountingSink>("refuser", /*accept=*/false);
  auto taker = std::make_shared<CountingSink>("taker");
  pipeline.add_sink(refuser);
  pipeline.add_sink(taker);

  for (int i = 0; i < 5; ++i) {
    pipeline.dispatch(make_reading(static_cast<std::uint64_t>(i)), {});
  }
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats[0].delivered, 0u);
  EXPECT_EQ(stats[0].dropped, 5u);
  EXPECT_EQ(stats[1].delivered, 5u);
  EXPECT_EQ(stats[1].dropped, 0u);
  EXPECT_EQ(taker->seen_, 5u);
  EXPECT_GE(stats[0].mean_dispatch_us(), 0.0);
}

TEST(ReadingPipeline, RecoveredDeliveriesAreCountedPerAcceptingSink) {
  // The fleet marks re-covered orphan deliveries via ReadingContext; the
  // pipeline tallies them per sink, but only when the sink accepted.
  ReadingPipeline pipeline;
  auto refuser = std::make_shared<CountingSink>("refuser", /*accept=*/false);
  auto taker = std::make_shared<CountingSink>("taker");
  pipeline.add_sink(refuser);
  pipeline.add_sink(taker);

  const ReadingContext recovered{0, ReadPhase::kPhase2, /*source_id=*/0,
                                 /*recovered=*/true};
  pipeline.dispatch(make_reading(1), recovered);
  pipeline.dispatch(make_reading(2), {});  // Ordinary delivery: not counted.
  pipeline.dispatch_batch({make_reading(3), make_reading(4)}, recovered);

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats[0].recovered, 0u);  // Declined: never counted.
  EXPECT_EQ(stats[1].delivered, 4u);
  EXPECT_EQ(stats[1].recovered, 3u);
}

/// Throws on every Nth reading (always, when every == 1).
class ThrowingSink final : public ReadingSink {
 public:
  explicit ThrowingSink(std::string name, std::size_t every = 1)
      : name_(std::move(name)), every_(every) {}

  std::string_view name() const override { return name_; }
  bool on_reading(const rf::TagReading&, const ReadingContext&) override {
    if (++seen_ % every_ == 0) throw std::runtime_error("sink exploded");
    return true;
  }
  void on_cycle_end(const CycleReport&) override {
    throw std::runtime_error("cycle-end exploded");
  }

  std::size_t seen_ = 0;

 private:
  std::string name_;
  std::size_t every_;
};

TEST(ReadingPipeline, ThrowingSinkLosesOnlyItsOwnReadings) {
  ReadingPipeline pipeline;
  auto before = std::make_shared<CountingSink>("before");
  auto bomb = std::make_shared<ThrowingSink>("bomb", /*every=*/2);
  auto after = std::make_shared<CountingSink>("after");
  pipeline.add_sink(before);
  pipeline.add_sink(bomb);
  pipeline.add_sink(after);

  for (int i = 0; i < 6; ++i) {
    pipeline.dispatch(make_reading(static_cast<std::uint64_t>(i)), {});
  }

  // Neighbours are untouched; the bomb's throws count as dropped, and the
  // exceptions counter singles them out from polite declines.
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats[0].delivered, 6u);
  EXPECT_EQ(stats[2].delivered, 6u);
  EXPECT_EQ(after->seen_, 6u);
  EXPECT_EQ(stats[1].delivered, 3u);
  EXPECT_EQ(stats[1].dropped, 3u);
  EXPECT_EQ(stats[1].exceptions, 3u);
  EXPECT_EQ(stats[0].exceptions, 0u);
}

TEST(ReadingPipeline, ThrowingCycleEndIsIsolatedToo) {
  ReadingPipeline pipeline;
  auto bomb = std::make_shared<ThrowingSink>("bomb");
  auto witness = std::make_shared<CountingSink>("witness");
  pipeline.add_sink(bomb);
  pipeline.add_sink(witness);

  CycleReport report;
  pipeline.end_cycle(report);  // Must not propagate the exception.
  EXPECT_EQ(witness->cycles_, 1u);
  EXPECT_EQ(pipeline.stats()[0].exceptions, 1u);
}

TEST(ReadingPipeline, AddRejectsNullAndDuplicateNames) {
  ReadingPipeline pipeline;
  pipeline.add_sink(std::make_shared<CountingSink>("a"));
  EXPECT_THROW(pipeline.add_sink(nullptr), std::invalid_argument);
  EXPECT_THROW(pipeline.add_sink(std::make_shared<CountingSink>("a")),
               std::invalid_argument);
}

TEST(ReadingPipeline, SetSinkReplacesByNamePreservingOrder) {
  ReadingPipeline pipeline;
  pipeline.add_sink(std::make_shared<CountingSink>("a"));
  pipeline.add_sink(std::make_shared<CountingSink>("b"));
  auto replacement = std::make_shared<CountingSink>("a");
  pipeline.set_sink(replacement);
  EXPECT_EQ(pipeline.sink_count(), 2u);
  EXPECT_EQ(pipeline.find("a"), replacement.get());
  EXPECT_EQ(pipeline.stats()[0].name, "a");  // still first

  pipeline.set_sink(std::make_shared<CountingSink>("c"));  // appends
  EXPECT_EQ(pipeline.sink_count(), 3u);
}

TEST(ReadingPipeline, RemoveSinkAndFind) {
  ReadingPipeline pipeline;
  pipeline.add_sink(std::make_shared<CountingSink>("a"));
  EXPECT_NE(pipeline.find("a"), nullptr);
  EXPECT_TRUE(pipeline.remove_sink("a"));
  EXPECT_FALSE(pipeline.remove_sink("a"));
  EXPECT_EQ(pipeline.find("a"), nullptr);
  EXPECT_EQ(pipeline.sink_count(), 0u);
}

TEST(ReadingPipeline, EndCycleReachesEverySink) {
  ReadingPipeline pipeline;
  auto sink = std::make_shared<CountingSink>("s");
  pipeline.add_sink(sink);
  CycleReport report;
  pipeline.end_cycle(report);
  pipeline.end_cycle(report);
  EXPECT_EQ(sink->cycles_, 2u);
}

TEST(ReadingPipeline, FakeClockMakesDispatchLatencyExact) {
  // Each dispatch brackets a sink call with two clock reads; an auto-step
  // fake therefore charges exactly one step per sink per reading.
  util::FakeWallClock clock(/*auto_step=*/0.25);
  ReadingPipeline pipeline;
  pipeline.set_wall_clock(clock);
  auto taker = std::make_shared<CountingSink>("taker");
  auto refuser = std::make_shared<CountingSink>("refuser", /*accept=*/false);
  pipeline.add_sink(taker);
  pipeline.add_sink(refuser);

  for (int i = 0; i < 4; ++i) {
    pipeline.dispatch(make_reading(static_cast<std::uint64_t>(i)), {});
  }

  const auto stats = pipeline.stats();
  EXPECT_DOUBLE_EQ(stats[0].dispatch_seconds, 4 * 0.25);
  EXPECT_DOUBLE_EQ(stats[1].dispatch_seconds, 4 * 0.25);
  // Declined readings still cost dispatch time: mean is over both.
  EXPECT_DOUBLE_EQ(stats[0].mean_dispatch_us(), 0.25 * 1e6);
  EXPECT_DOUBLE_EQ(stats[1].mean_dispatch_us(), 0.25 * 1e6);
}

TEST(ReadingPipeline, ThrowingSinkStillChargesDispatchTime) {
  util::FakeWallClock clock(/*auto_step=*/0.5);
  ReadingPipeline pipeline;
  pipeline.set_wall_clock(clock);
  pipeline.add_sink(std::make_shared<ThrowingSink>("bomb"));
  pipeline.dispatch(make_reading(), {});
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats[0].exceptions, 1u);
  EXPECT_DOUBLE_EQ(stats[0].dispatch_seconds, 0.5);
}

// ------------------------------------------------------- batch dispatch

std::vector<rf::TagReading> make_batch(std::size_t n) {
  std::vector<rf::TagReading> batch;
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(make_reading(i * 100));
  }
  return batch;
}

TEST(ReadingPipeline, BatchDispatchCountsMatchPerReadingDispatch) {
  // Accounting equivalence: delivered / dropped / exceptions / total are
  // exactly what N individual dispatch() calls would have produced; only
  // the wall-clock charging is amortized (one clock-pair per batch).
  const auto batch = make_batch(9);
  ReadingPipeline batched;
  ReadingPipeline serial;
  for (ReadingPipeline* p : {&batched, &serial}) {
    p->add_sink(std::make_shared<CountingSink>("taker"));
    p->add_sink(std::make_shared<CountingSink>("refuser", /*accept=*/false));
    p->add_sink(std::make_shared<ThrowingSink>("bomb", /*every=*/3));
  }
  batched.dispatch_batch(batch, {/*cycle_index=*/1, ReadPhase::kPhase1});
  for (const rf::TagReading& r : batch) {
    serial.dispatch(r, {/*cycle_index=*/1, ReadPhase::kPhase1});
  }
  const auto bs = batched.stats();
  const auto ss = serial.stats();
  ASSERT_EQ(bs.size(), ss.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    SCOPED_TRACE(bs[i].name);
    EXPECT_EQ(bs[i].delivered, ss[i].delivered);
    EXPECT_EQ(bs[i].dropped, ss[i].dropped);
    EXPECT_EQ(bs[i].exceptions, ss[i].exceptions);
  }
  EXPECT_EQ(batched.dispatched_total(), serial.dispatched_total());
  // The batch charges one timed call per sink; the loop charges nine.
  EXPECT_EQ(bs[0].batches, 1u);
  EXPECT_EQ(ss[0].batches, 9u);
}

TEST(ReadingPipeline, BatchDispatchThrowingSinkLosesOnlyItsOwnReadings) {
  ReadingPipeline pipeline;
  auto before = std::make_shared<CountingSink>("before");
  auto bomb = std::make_shared<ThrowingSink>("bomb", /*every=*/2);
  auto after = std::make_shared<CountingSink>("after");
  pipeline.add_sink(before);
  pipeline.add_sink(bomb);
  pipeline.add_sink(after);

  pipeline.dispatch_batch(make_batch(6), {});

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats[0].delivered, 6u);
  EXPECT_EQ(stats[2].delivered, 6u);
  EXPECT_EQ(after->seen_, 6u);
  EXPECT_EQ(stats[1].delivered, 3u);
  EXPECT_EQ(stats[1].dropped, 3u);
  EXPECT_EQ(stats[1].exceptions, 3u);
}

TEST(ReadingPipeline, BatchDispatchClockChargingIsExact) {
  // One clock-pair per sink per non-empty batch under a FakeWallClock:
  // dispatch_seconds is exactly one auto-step regardless of batch size.
  ReadingPipeline pipeline;
  util::FakeWallClock clock(/*auto_step=*/0.25);
  pipeline.set_wall_clock(clock);
  pipeline.add_sink(std::make_shared<CountingSink>("a"));
  pipeline.add_sink(std::make_shared<CountingSink>("b"));

  pipeline.dispatch_batch(make_batch(100), {});
  pipeline.dispatch_batch({}, {});  // Empty: no charge, no batch counted.
  pipeline.dispatch_batch(make_batch(1), {});

  for (const auto& stats : pipeline.stats()) {
    SCOPED_TRACE(stats.name);
    EXPECT_EQ(stats.batches, 2u);
    EXPECT_DOUBLE_EQ(stats.dispatch_seconds, 0.5);
    EXPECT_EQ(stats.delivered, 101u);
  }
  EXPECT_EQ(pipeline.dispatched_total(), 101u);
}

// ----------------------------------------------------- per-source stats

TEST(ReadingPipeline, StatsSplitPerSourceInFirstSeenOrder) {
  ReadingPipeline pipeline;
  auto sink = std::make_shared<CountingSink>("s");
  pipeline.add_sink(sink);

  // Source 2 dispatches before source 0 ever shows up explicitly; the
  // source-0 row still leads (it is created with the sink), then sources
  // appear in first-seen order.
  pipeline.dispatch(make_reading(), {0, ReadPhase::kPhase1, /*source_id=*/2});
  pipeline.dispatch(make_reading(), {0, ReadPhase::kPhase1, /*source_id=*/0});
  pipeline.dispatch(make_reading(), {0, ReadPhase::kPhase2, /*source_id=*/2});
  pipeline.dispatch(make_reading(), {0, ReadPhase::kPhase1, /*source_id=*/1});

  const auto stats = pipeline.stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].source_id, 0u);
  EXPECT_EQ(stats[1].source_id, 2u);
  EXPECT_EQ(stats[2].source_id, 1u);
  EXPECT_EQ(stats[0].delivered, 1u);
  EXPECT_EQ(stats[1].delivered, 2u);
  EXPECT_EQ(stats[2].delivered, 1u);
  for (const auto& s : stats) EXPECT_EQ(s.name, "s");
  EXPECT_EQ(sink->seen_, 4u);
  EXPECT_EQ(pipeline.dispatched_total(), 4u);
}

TEST(ReadingPipeline, SingleSourcePipelinesKeepTheLegacyStatsShape) {
  // Source attribution must be invisible until a second source exists:
  // one row per sink, source 0, exactly as before the fleet refactor.
  ReadingPipeline pipeline;
  pipeline.add_sink(std::make_shared<CountingSink>("a"));
  pipeline.add_sink(std::make_shared<CountingSink>("b"));
  pipeline.dispatch_batch(make_batch(7), {});
  const auto stats = pipeline.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");
  EXPECT_EQ(stats[1].name, "b");
  EXPECT_EQ(stats[0].source_id, 0u);
  EXPECT_EQ(stats[1].source_id, 0u);
  EXPECT_EQ(stats[0].delivered, 7u);
}

TEST(ReadingPipeline, PerSourceRowsAccountDropsAndExceptionsSeparately) {
  ReadingPipeline pipeline;
  pipeline.add_sink(std::make_shared<ThrowingSink>("bomb", /*every=*/1));
  pipeline.dispatch_batch(make_batch(3), {0, ReadPhase::kPhase1, 0});
  pipeline.dispatch_batch(make_batch(2), {0, ReadPhase::kPhase1, 1});
  const auto stats = pipeline.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].source_id, 0u);
  EXPECT_EQ(stats[0].dropped, 3u);
  EXPECT_EQ(stats[0].exceptions, 3u);
  EXPECT_EQ(stats[1].source_id, 1u);
  EXPECT_EQ(stats[1].dropped, 2u);
  EXPECT_EQ(stats[1].exceptions, 2u);

  // Cycle-end throws have no source: they accrue to the source-0 row.
  CycleReport report;
  pipeline.end_cycle(report);
  EXPECT_EQ(pipeline.stats()[0].exceptions, 4u);
  EXPECT_EQ(pipeline.stats()[1].exceptions, 2u);
}

// ------------------------------------------------- controller integration

struct PipelineBed {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, 5, 0}, 8.0}};
  std::optional<llrp::SimReaderClient> client;

  explicit PipelineBed(std::size_t n_tags, std::size_t n_movers = 1,
                       std::uint64_t seed = 77) {
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::random(rng);
      if (i < n_movers) {
        t.motion = std::make_shared<sim::CircularTrack>(
            util::Vec3{0.5, 0.5, 0}, 0.2, 0.7, static_cast<double>(i));
      } else {
        t.motion = std::make_shared<sim::StaticMotion>(
            util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      }
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    client.emplace(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                   gen2::ReaderConfig{}, world, channel, antennas, seed + 1);
  }
};

TEST(PipelineMetrics, PerSinkCountsSumToBothPhasesReadings) {
  PipelineBed bed(15);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::sec(1);
  TagwatchController ctl(cfg, *bed.client);
  std::size_t app_readings = 0;
  ctl.set_read_listener(
      [&app_readings](const rf::TagReading&) { ++app_readings; });
  const std::shared_ptr<PipelineMetrics> metrics = attach_metrics(ctl);

  std::uint64_t phase1 = 0, phase2 = 0;
  for (const auto& r : ctl.run_cycles(4)) {
    phase1 += r.phase1_readings;
    phase2 += r.phase2_readings;
  }

  const PipelineMetricsSnapshot snap = metrics->snapshot();
  EXPECT_EQ(snap.phase1_readings, phase1);
  EXPECT_EQ(snap.phase2_readings, phase2);
  EXPECT_EQ(snap.readings_total(), phase1 + phase2);
  EXPECT_EQ(snap.cycles, 4u);
  ASSERT_EQ(snap.per_cycle.size(), 4u);

  // The acceptance criterion: every sink saw every reading — per-sink
  // delivered + dropped sums to phase1_readings + phase2_readings.
  ASSERT_EQ(snap.sinks.size(), 4u);  // assessor, history, app, metrics
  for (const auto& sink : snap.sinks) {
    SCOPED_TRACE(sink.name);
    EXPECT_EQ(sink.delivered + sink.dropped, snap.readings_total());
    EXPECT_EQ(sink.dropped, 0u);
  }
  EXPECT_EQ(app_readings, snap.readings_total());
  EXPECT_EQ(ctl.pipeline().dispatched_total(), snap.readings_total());
}

TEST(PipelineMetrics, AggregatesSlotAndSceneStatistics) {
  PipelineBed bed(12, 1, 91);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(500);
  TagwatchController ctl(cfg, *bed.client);
  const auto metrics = attach_metrics(ctl);
  const auto reports = ctl.run_cycles(3);

  gen2::RoundStats expected;
  std::uint64_t fallbacks = 0;
  for (const auto& r : reports) {
    expected += r.slot_totals;
    if (r.read_all_fallback) ++fallbacks;
  }
  const PipelineMetricsSnapshot snap = metrics->snapshot();
  EXPECT_EQ(snap.slot_totals.slots, expected.slots);
  EXPECT_EQ(snap.slot_totals.success_slots, expected.success_slots);
  EXPECT_EQ(snap.read_all_cycles, fallbacks);
  EXPECT_GT(snap.mean_scene, 0.0);
  EXPECT_GT(snap.mean_targets, 0.0);
  EXPECT_GT(snap.mean_interphase_gap_ms, 0.0);
}

TEST(PipelineMetrics, SnapshotWithoutObserveHasNoSinkStats) {
  PipelineMetrics metrics;
  metrics.on_reading(make_reading(), {0, ReadPhase::kPhase1});
  const PipelineMetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.phase1_readings, 1u);
  EXPECT_TRUE(snap.sinks.empty());
  EXPECT_EQ(snap.cycles, 0u);  // no cycle boundary seen yet
}

TEST(TagwatchController, SetReadListenerInstallsAndRemovesAppSink) {
  PipelineBed bed(5, 0, 13);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(200);
  TagwatchController ctl(cfg, *bed.client);
  EXPECT_EQ(ctl.pipeline().sink_count(), 2u);  // assessor + history
  ctl.set_read_listener([](const rf::TagReading&) {});
  EXPECT_EQ(ctl.pipeline().sink_count(), 3u);
  EXPECT_NE(ctl.pipeline().find("app"), nullptr);
  ctl.set_read_listener(nullptr);
  EXPECT_EQ(ctl.pipeline().find("app"), nullptr);
  EXPECT_EQ(ctl.pipeline().sink_count(), 2u);
}

TEST(TagwatchController, CustomSinkReceivesCycleEndNotifications) {
  PipelineBed bed(6, 0, 17);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(200);
  TagwatchController ctl(cfg, *bed.client);
  auto probe = std::make_shared<CountingSink>("probe");
  ctl.pipeline().add_sink(probe);
  const auto reports = ctl.run_cycles(2);
  EXPECT_EQ(probe->cycles_, 2u);
  EXPECT_EQ(probe->seen_,
            reports[0].phase1_readings + reports[0].phase2_readings +
                reports[1].phase1_readings + reports[1].phase2_readings);
}

TEST(TagwatchController, FakeWallClockMakesComputeTimingExact) {
  PipelineBed bed(10, 1, 23);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(300);
  // 2 ms per clock read: the assessment+scheduling block reads the clock
  // exactly twice, so every cycle reports exactly 2 ms of compute.
  util::FakeWallClock clock(/*auto_step=*/0.002);
  cfg.wall_clock = &clock;
  cfg.charge_compute_time = false;
  TagwatchController ctl(cfg, *bed.client);

  for (const auto& r : ctl.run_cycles(3)) {
    EXPECT_DOUBLE_EQ(r.schedule_compute_ms, 2.0);
  }

  // The controller's clock also drives the pipeline: deliveries arrive in
  // batches, and each non-empty batch charges exactly one clock-pair (one
  // step) per sink regardless of how many readings it carries.
  // (NEAR, not DOUBLE_EQ: 0.002 is not exactly representable, so summing
  // clock deltas accumulates ulps.)
  for (const auto& stats : ctl.pipeline().stats()) {
    SCOPED_TRACE(stats.name);
    EXPECT_GT(stats.batches, 0u);
    EXPECT_NEAR(stats.dispatch_seconds,
                0.002 * static_cast<double>(stats.batches), 1e-9);
  }
}

TEST(TagwatchController, AssessorThreadCountIsObservationallyInvisible) {
  // The whole point of the parallel ingestion engine: any thread count
  // yields byte-identical cycles.  Same world seed, different
  // assessor_threads — every report field that feeds scheduling, metrics,
  // or the journal must match exactly.
  std::vector<std::vector<CycleReport>> runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    PipelineBed bed(24, 3, 91);
    TagwatchConfig cfg;
    cfg.phase2_duration = util::msec(250);
    cfg.assessor_threads = threads;
    // Real host-clock readings would charge run-to-run-varying compute
    // time onto the simulated timeline; a fake clock keeps both runs on
    // identical footing so any mismatch is the thread count's fault.
    util::FakeWallClock clock(/*auto_step=*/0.001);
    cfg.wall_clock = &clock;
    TagwatchController ctl(cfg, *bed.client);
    runs.push_back(ctl.run_cycles(3));
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t c = 0; c < runs[0].size(); ++c) {
    SCOPED_TRACE("cycle " + std::to_string(c));
    const CycleReport& a = runs[0][c];
    const CycleReport& b = runs[1][c];
    EXPECT_EQ(b.scene, a.scene);
    EXPECT_EQ(b.mobile, a.mobile);
    EXPECT_EQ(b.targets, a.targets);
    EXPECT_EQ(b.read_all_fallback, a.read_all_fallback);
    EXPECT_EQ(b.phase1_readings, a.phase1_readings);
    EXPECT_EQ(b.phase2_readings, a.phase2_readings);
    EXPECT_EQ(b.phase1_duration, a.phase1_duration);
    EXPECT_EQ(b.phase2_duration, a.phase2_duration);
    EXPECT_EQ(b.interphase_gap, a.interphase_gap);
    EXPECT_EQ(b.phase2_counts, a.phase2_counts);
    EXPECT_EQ(b.slot_totals.slots, a.slot_totals.slots);
    EXPECT_EQ(b.slot_totals.duration, a.slot_totals.duration);
  }
}

TEST(TagwatchController, ChargedComputeTimeReachesTheReaderClock) {
  PipelineBed bed(8, 1, 29);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(200);
  util::FakeWallClock clock(/*auto_step=*/0.004);
  cfg.wall_clock = &clock;
  cfg.charge_compute_time = true;
  TagwatchController ctl(cfg, *bed.client);
  const CycleReport r = ctl.run_cycle();
  EXPECT_DOUBLE_EQ(r.schedule_compute_ms, 4.0);
  // 4 ms of host compute was charged onto the simulated timeline between
  // the phases, so the inter-phase gap must be at least that long.
  ASSERT_TRUE(r.interphase_gap.has_value());
  EXPECT_GE(*r.interphase_gap, util::msec(4));
}

TEST(TagwatchController, CycleSurvivesAThrowingApplicationSink) {
  PipelineBed bed(8, 1, 19);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(300);
  TagwatchController ctl(cfg, *bed.client);
  ctl.pipeline().add_sink(std::make_shared<ThrowingSink>("bomb"));

  const CycleReport r = ctl.run_cycle();  // Must not throw.
  EXPECT_GT(r.phase1_readings + r.phase2_readings, 0u);

  // Built-in sinks kept every reading; the bomb dropped all of its own.
  for (const auto& stats : ctl.pipeline().stats()) {
    SCOPED_TRACE(stats.name);
    if (stats.name == "bomb") {
      EXPECT_EQ(stats.delivered, 0u);
      // Every reading threw, plus one on_cycle_end throw.
      EXPECT_EQ(stats.exceptions, stats.dropped + 1);
      EXPECT_GT(stats.dropped, 0u);
    } else {
      EXPECT_EQ(stats.dropped, 0u);
    }
  }
}

}  // namespace
}  // namespace tagwatch::core
