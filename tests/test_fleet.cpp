// FleetController: TDM cycles over N readers, cross-reader dedup, zone
// handoff detection, per-source attribution, and the fleet journal's
// record→replay digest contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "llrp/recording_reader_client.hpp"
#include "llrp/replay_reader_client.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"
#include "util/wall_clock.hpp"

namespace tagwatch::core {
namespace {

/// A warehouse strip covered by up to four readers whose zones overlap at
/// the seams.  Tags are planted per-zone plus on the seams; optional
/// movers orbit through several zones.
struct FleetBed {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::shared_ptr<gen2::TagFlagField> field;
  std::vector<std::unique_ptr<llrp::SimReaderClient>> clients;
  std::vector<FleetReaderSpec> specs;
  std::size_t seam_tags = 0;

  /// Readers sit at x = 0, 4, 8, ... with radius 3: adjacent zones overlap
  /// on a 2 m seam.  `tags_per_zone` statics are planted at each zone
  /// center, `seam` statics on each seam between adjacent zones.
  FleetBed(std::size_t n_readers, std::size_t tags_per_zone,
           std::size_t seam, std::size_t movers = 0,
           gen2::SessionTiming timing = gen2::SessionTiming::spec_default(),
           std::uint64_t seed = 33) {
    util::Rng rng(seed);
    field = std::make_shared<gen2::TagFlagField>(timing);
    std::size_t serial = 1;
    for (std::size_t r = 0; r < n_readers; ++r) {
      const double cx = static_cast<double>(r) * 4.0;
      sim::Zone zone{"zone-" + std::to_string(r), {cx, 0, 0}, 3.0};
      for (std::size_t i = 0; i < tags_per_zone; ++i) {
        add_static(serial++, {cx + rng.uniform(-0.5, 0.5),
                              rng.uniform(-0.5, 0.5), 0});
      }
      if (r + 1 < n_readers) {
        for (std::size_t i = 0; i < seam; ++i) {
          add_static(serial++, {cx + 2.0, rng.uniform(-0.3, 0.3), 0});
          ++seam_tags;
        }
      }
      gen2::ReaderConfig rc;
      rc.coverage = zone;
      clients.push_back(std::make_unique<llrp::SimReaderClient>(
          gen2::LinkTiming(gen2::LinkParams::max_throughput()), rc, world,
          channel, std::vector<rf::Antenna>{{1, {cx, 0, 2}, 8.0}},
          seed + 10 + r, field));
      specs.push_back({clients.back().get(), zone});
    }
    for (std::size_t i = 0; i < movers; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(serial++);
      t.motion = std::make_shared<sim::CircularTrack>(
          util::Vec3{2, 0, 0}, 2.5, 1.5, static_cast<double>(i));
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
  }

  void add_static(std::size_t serial, util::Vec3 pos) {
    sim::SimTag t;
    t.epc = util::Epc::from_serial(serial);
    t.motion = std::make_shared<sim::StaticMotion>(pos);
    t.tag_phase_rad = 0.1 * static_cast<double>(serial);
    world.add_tag(std::move(t));
  }
};

FleetConfig short_fleet_config() {
  FleetConfig cfg;
  cfg.controller.phase2_duration = util::msec(200);
  return cfg;
}

// ------------------------------------------------------------ construction

TEST(FleetController, RejectsEmptyAndNullReaders) {
  EXPECT_THROW(FleetController(short_fleet_config(), {}),
               std::invalid_argument);
  std::vector<FleetReaderSpec> specs(1);
  specs[0].client = nullptr;
  EXPECT_THROW(FleetController(short_fleet_config(), std::move(specs)),
               std::invalid_argument);
}

TEST(FleetController, SessionPolicyAssignsPerReaderSessions) {
  FleetBed bed(2, 2, 0);
  FleetConfig cfg = short_fleet_config();
  cfg.policy = SessionPolicy::kPerReader;
  FleetController fleet(cfg, bed.specs, &bed.world);
  EXPECT_EQ(fleet.reader_session(0), gen2::Session::kS0);
  EXPECT_EQ(fleet.reader_session(1), gen2::Session::kS1);

  cfg.policy = SessionPolicy::kShared;
  cfg.shared_session = gen2::Session::kS3;
  FleetBed bed2(2, 2, 0);
  FleetController shared(cfg, bed2.specs, &bed2.world);
  EXPECT_EQ(shared.reader_session(0), gen2::Session::kS3);
  EXPECT_EQ(shared.reader_session(1), gen2::Session::kS3);
  EXPECT_EQ(shared.journal().setup.policy, "shared");
}

TEST(FleetController, PlannerConfigPropagatesToEveryReader) {
  FleetBed bed(2, 10, 0, 2);
  FleetConfig cfg = short_fleet_config();
  cfg.controller.planner.incremental = true;
  cfg.controller.planner.churn_threshold = 0.5;
  FleetController fleet(cfg, bed.specs, &bed.world);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_TRUE(fleet.controller(r).config().planner.incremental);
    EXPECT_EQ(fleet.controller(r).config().planner.churn_threshold, 0.5);
  }
  fleet.run_cycles(8);
  // Each reader that got past cold start planned via its own persistent
  // planner; the stats invariant must hold wherever one was built.
  bool planned = false;
  for (std::size_t r = 0; r < 2; ++r) {
    const IncrementalPlanner* p = fleet.controller(r).incremental_planner();
    if (p == nullptr) continue;
    planned = true;
    EXPECT_GT(p->stats().cycles, 0u);
    EXPECT_EQ(p->stats().cycles,
              p->stats().incremental_cycles + p->stats().full_rebuilds);
  }
  EXPECT_TRUE(planned);
}

TEST(SessionPolicy, NamesRoundTrip) {
  for (const SessionPolicy p : {SessionPolicy::kIndependent,
                                SessionPolicy::kShared,
                                SessionPolicy::kPerReader}) {
    EXPECT_EQ(session_policy_from_string(to_string(p)), p);
  }
  EXPECT_THROW(session_policy_from_string("bogus"), std::invalid_argument);
}

// ------------------------------------------------------- dedup and handoff

TEST(FleetController, SingleReaderFleetNeverDeduplicates) {
  FleetBed bed(1, 6, 0);
  FleetController fleet(short_fleet_config(), bed.specs, &bed.world);
  const auto reports = fleet.run_cycles(2);
  for (const FleetCycleReport& r : reports) {
    EXPECT_GT(r.readings_total, 0u);
    EXPECT_EQ(r.duplicates_total, 0u);
    EXPECT_EQ(r.delivered_total, r.readings_total);
    EXPECT_DOUBLE_EQ(r.cross_reader_dup_ratio(), 0.0);
    EXPECT_TRUE(r.handoffs.empty());
  }
  // One F record per reader per cycle, no H records.
  EXPECT_EQ(fleet.journal().size(), 2u);
  EXPECT_EQ(fleet.journal().setup.readers, 1u);
}

TEST(FleetController, SeamReadingsAreDedupedAcrossReaders) {
  FleetBed bed(2, 4, 2);
  FleetConfig cfg = short_fleet_config();
  cfg.dedup_window = util::sec(30);  // everything in one window
  FleetController fleet(cfg, bed.specs, &bed.world);

  const FleetCycleReport r = fleet.run_cycle();
  // Reader 0 delivered the seam tags first; every later sighting of them
  // by reader 1 is a cross-reader duplicate.
  EXPECT_GE(r.duplicates_total, bed.seam_tags);
  EXPECT_EQ(r.delivered_total + r.duplicates_total, r.readings_total);
  EXPECT_GT(r.cross_reader_dup_ratio(), 0.0);
  EXPECT_LT(r.cross_reader_dup_ratio(), 1.0);
  EXPECT_EQ(r.readers[0].duplicates, 0u);  // first in TDM order: never dups
  EXPECT_GE(r.readers[1].duplicates, bed.seam_tags);
  // Suppressed sightings never refresh ownership: the seam tags keep one
  // owner, so no handoffs fire.
  EXPECT_TRUE(r.handoffs.empty());
}

TEST(FleetController, HandoffFiresWhenAnotherReaderDeliversTheTag) {
  FleetBed bed(2, 2, 1);
  FleetConfig cfg = short_fleet_config();
  cfg.dedup_window = util::SimDuration::zero();  // dedup off: seam flaps
  FleetController fleet(cfg, bed.specs, &bed.world);

  const FleetCycleReport first = fleet.run_cycle();
  // Reader 0 claimed the seam tag; reader 1's delivered sighting hands it
  // off exactly once (its own repeats are not handoffs).
  ASSERT_EQ(first.handoffs.size(), 1u);
  EXPECT_EQ(first.handoffs[0].from_reader, 0u);
  EXPECT_EQ(first.handoffs[0].to_reader, 1u);
  EXPECT_EQ(first.handoffs[0].epc, util::Epc::from_serial(3));  // the seam tag

  // Next cycle the seam tag flaps back to reader 0, then to reader 1 again.
  const FleetCycleReport second = fleet.run_cycle();
  ASSERT_EQ(second.handoffs.size(), 2u);
  EXPECT_EQ(second.handoffs[0].from_reader, 1u);
  EXPECT_EQ(second.handoffs[0].to_reader, 0u);
  EXPECT_EQ(second.handoffs[1].from_reader, 0u);
  EXPECT_EQ(second.handoffs[1].to_reader, 1u);

  // H records landed in the journal after the cycle's F records.
  std::size_t h_records = 0;
  for (const auto& e : fleet.journal().entries()) {
    if (e.kind == llrp::FleetJournalEntry::Kind::kHandoff) ++h_records;
  }
  EXPECT_EQ(h_records, 3u);
}

TEST(FleetController, SharedSessionReadsThePopulationOnce) {
  // Both readers fully overlap (one zone position) and inventory one S2
  // session without re-arming: reader 0's ACKs flip every tag to B, so
  // reader 1 — and every later cycle — finds nothing left on target A.
  FleetBed bed(1, 8, 0);
  FleetReaderSpec second = bed.specs[0];
  bed.clients.push_back(std::make_unique<llrp::SimReaderClient>(
      gen2::LinkTiming(gen2::LinkParams::max_throughput()),
      bed.clients[0]->reader().config(), bed.world, bed.channel,
      std::vector<rf::Antenna>{{1, {0, 0, 2}, 8.0}}, 99, bed.field));
  second.client = bed.clients.back().get();
  bed.specs.push_back(second);

  FleetConfig cfg = short_fleet_config();
  cfg.policy = SessionPolicy::kShared;
  cfg.shared_session = gen2::Session::kS2;
  FleetController fleet(cfg, bed.specs, &bed.world);

  const FleetCycleReport first = fleet.run_cycle();
  EXPECT_EQ(first.readers[0].report.phase1_readings, 8u);
  EXPECT_EQ(first.readers[1].report.phase1_readings, 0u);
  // S2 holds indefinitely while energized: the next cycle reads nothing.
  const FleetCycleReport second_cycle = fleet.run_cycle();
  EXPECT_EQ(second_cycle.readings_total, 0u);
}

TEST(FleetController, IndependentPolicyRereadsEveryCycle) {
  FleetBed bed(2, 3, 0);
  FleetController fleet(short_fleet_config(), bed.specs, &bed.world);
  for (const FleetCycleReport& r : fleet.run_cycles(2)) {
    EXPECT_EQ(r.readers[0].report.phase1_readings, 3u);
    EXPECT_EQ(r.readers[1].report.phase1_readings, 3u);
  }
}

// ----------------------------------------------------- source attribution

TEST(FleetController, FleetPipelineStatsAttributePerReader) {
  FleetBed bed(2, 3, 0);  // disjoint zones: both readers deliver
  FleetController fleet(short_fleet_config(), bed.specs, &bed.world);
  std::size_t delivered = 0;
  fleet.pipeline().add_sink(std::make_shared<CallbackSink>(
      "app", [&delivered](const rf::TagReading&) { ++delivered; }));
  const FleetCycleReport r = fleet.run_cycle();

  EXPECT_EQ(delivered, r.delivered_total);
  std::uint64_t by_source[2] = {0, 0};
  for (const SinkStats& s : fleet.pipeline().stats()) {
    ASSERT_LT(s.source_id, 2u);
    by_source[s.source_id] += s.delivered;
  }
  // Each reader's zone population was delivered under its own source_id.
  EXPECT_GT(by_source[0], 0u);
  EXPECT_GT(by_source[1], 0u);
  EXPECT_EQ(by_source[0] + by_source[1], r.delivered_total);
}

// ------------------------------------------------------------ journal CSV

TEST(FleetJournal, CsvRoundTripIsExact) {
  llrp::FleetJournal journal;
  journal.setup.readers = 3;
  journal.setup.policy = "per-reader";
  journal.setup.session = gen2::Session::kS2;
  journal.setup.dedup_window = util::msec(250);
  journal.push_cycle({0, 1, "zone-1", 12, 34, 40, 6});
  journal.push_handoff({util::Epc::from_serial(7), 0, 1,
                        util::SimTime{util::msec(1234).count()}});
  journal.push_cycle({1, 0, "zone-0", 9, 0, 9, 0});

  const std::string csv = journal.to_csv();
  const llrp::FleetJournal parsed = llrp::FleetJournal::from_csv(csv);
  EXPECT_EQ(parsed.to_csv(), csv);
  EXPECT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.setup.readers, 3u);
  EXPECT_EQ(parsed.setup.policy, "per-reader");
  EXPECT_EQ(parsed.setup.session, gen2::Session::kS2);
  EXPECT_EQ(parsed.setup.dedup_window, util::msec(250));
  EXPECT_EQ(parsed.entries()[1].handoff.epc, util::Epc::from_serial(7));
  EXPECT_EQ(parsed.entries()[1].handoff.to_reader, 1u);
  EXPECT_EQ(fleet_journal_digest(parsed), fleet_journal_digest(journal));

  const std::string path = ::testing::TempDir() + "tagwatch_fleet.csv";
  journal.save(path);
  EXPECT_EQ(llrp::FleetJournal::load(path).to_csv(), csv);
  std::remove(path.c_str());
}

TEST(FleetJournal, RejectsMalformedCsv) {
  EXPECT_THROW(llrp::FleetJournal::from_csv("nope"), std::invalid_argument);
  EXPECT_THROW(llrp::FleetJournal::from_csv(
                   "# tagwatch-fleet-journal v1\nX,1\n"),
               std::invalid_argument);
  // Records before any setup line.
  EXPECT_THROW(llrp::FleetJournal::from_csv(
                   "# tagwatch-fleet-journal v1\nF,0,0,z,1,2,3,0\n"),
               std::invalid_argument);
  // Duplicate setup.
  EXPECT_THROW(llrp::FleetJournal::from_csv(
                   "# tagwatch-fleet-journal v1\nS,1,independent,S1,0\n"
                   "S,1,independent,S1,0\n"),
               std::invalid_argument);
  // Wrong field count.
  EXPECT_THROW(llrp::FleetJournal::from_csv(
                   "# tagwatch-fleet-journal v1\nS,1,independent,S1,0\n"
                   "F,0,0,z,1\n"),
               std::invalid_argument);
}

// --------------------------------------------------------- record → replay

TEST(FleetController, FourReaderRecordReplayPreservesJournalDigests) {
  // The acceptance run: four readers over overlapping zones with movers
  // crossing seams.  Record every reader through a RecordingReaderClient,
  // then rebuild the fleet on ReplayReaderClients (no world) and demand
  // bit-identical fleet journals.
  FleetBed bed(4, 3, 2, /*movers=*/2, gen2::SessionTiming::spec_default(),
               /*seed=*/55);
  std::vector<std::unique_ptr<llrp::RecordingReaderClient>> recorders;
  std::vector<FleetReaderSpec> recording_specs = bed.specs;
  for (std::size_t k = 0; k < bed.specs.size(); ++k) {
    recorders.push_back(
        std::make_unique<llrp::RecordingReaderClient>(*bed.specs[k].client));
    recording_specs[k].client = recorders[k].get();
  }

  FleetConfig cfg = short_fleet_config();
  cfg.policy = SessionPolicy::kIndependent;
  util::FakeWallClock record_clock(/*auto_step=*/0.001);
  cfg.controller.wall_clock = &record_clock;
  FleetController recorded(cfg, recording_specs, &bed.world);
  const auto recorded_reports = recorded.run_cycles(3);
  const std::uint64_t fleet_digest = fleet_journal_digest(recorded.journal());

  // The overlap actually exercised dedup during the recording.
  std::size_t dups = 0;
  for (const auto& r : recorded_reports) dups += r.duplicates_total;
  EXPECT_GT(dups, 0u);

  // Replay: every reader journal round-trips through CSV first, and the
  // fleet is rebuilt without any world (the EPC-map ledger path).
  std::vector<std::unique_ptr<llrp::ReplayReaderClient>> replays;
  std::vector<FleetReaderSpec> replay_specs = bed.specs;
  for (std::size_t k = 0; k < recorders.size(); ++k) {
    replays.push_back(std::make_unique<llrp::ReplayReaderClient>(
        llrp::ReaderJournal::from_csv(recorders[k]->journal().to_csv())));
    replay_specs[k].client = replays[k].get();
  }
  util::FakeWallClock replay_clock(/*auto_step=*/0.001);
  cfg.controller.wall_clock = &replay_clock;
  FleetController replayed(cfg, replay_specs, /*world=*/nullptr);
  const auto replayed_reports = replayed.run_cycles(3);

  EXPECT_EQ(fleet_journal_digest(replayed.journal()), fleet_digest);
  EXPECT_EQ(replayed.journal().to_csv(), recorded.journal().to_csv());
  ASSERT_EQ(replayed_reports.size(), recorded_reports.size());
  for (std::size_t c = 0; c < recorded_reports.size(); ++c) {
    SCOPED_TRACE("cycle " + std::to_string(c));
    EXPECT_EQ(replayed_reports[c].readings_total,
              recorded_reports[c].readings_total);
    EXPECT_EQ(replayed_reports[c].delivered_total,
              recorded_reports[c].delivered_total);
    EXPECT_EQ(replayed_reports[c].duplicates_total,
              recorded_reports[c].duplicates_total);
    EXPECT_EQ(replayed_reports[c].handoffs.size(),
              recorded_reports[c].handoffs.size());
  }
}

}  // namespace
}  // namespace tagwatch::core
