// The whole-tree call-graph rules: determinism taint must chase a clock
// read through any chain of src/ helpers into a journaled function (and
// stay quiet when the same helper is only used off-line), and the lock
// analysis must flag acquisition-order cycles and locks held across
// transport/sink dispatch.  The known blind spots of the heuristic
// symbol index — function pointers, virtual dispatch by name — are
// pinned as tests too, so a future "fix" that changes them is loud.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "lint/call_graph.hpp"
#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "lint/symbol_index.hpp"

namespace tagwatch::lint {
namespace {

LintReport run_files(const std::vector<SourceFile>& files) {
  const RuleEngine engine;
  return engine.run(files);
}

std::vector<Finding> findings_of(const LintReport& report,
                                 const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : report.findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

// ------------------------------------------------------- symbol index

TEST(LintSymbolIndex, FindsDefinitionsAndCallSites) {
  const SymbolIndex index = build_symbol_index({
      {"src/util/widget.cpp",
       "namespace tagwatch::util {\n"
       "int helper(int v) { return v + 1; }\n"
       "int Widget::poke() { return helper(2); }\n"
       "}  // namespace tagwatch::util\n"},
  });
  ASSERT_EQ(index.functions.size(), 2u);
  EXPECT_EQ(index.functions[0].name, "helper");
  EXPECT_EQ(index.functions[0].qualified, "tagwatch::util::helper");
  EXPECT_EQ(index.functions[0].owner, "");
  EXPECT_EQ(index.functions[1].name, "poke");
  EXPECT_EQ(index.functions[1].qualified, "tagwatch::util::Widget::poke");
  EXPECT_EQ(index.functions[1].owner, "Widget");
  ASSERT_EQ(index.calls_by_function.size(), 2u);
  ASSERT_EQ(index.calls_by_function[1].size(), 1u);
  EXPECT_EQ(index.calls[index.calls_by_function[1][0]].callee_name, "helper");
}

TEST(LintCallGraph, ResolvesCallsAndBuildsReverseEdges) {
  const SymbolIndex index = build_symbol_index({
      {"src/util/widget.cpp",
       "namespace tagwatch::util {\n"
       "int helper(int v) { return v + 1; }\n"
       "int Widget::poke() { return helper(2); }\n"
       "}  // namespace tagwatch::util\n"},
  });
  const CallGraph graph = build_call_graph(index);
  ASSERT_EQ(graph.edges.size(), 2u);
  ASSERT_EQ(graph.edges[1].size(), 1u);
  EXPECT_EQ(graph.edges[1][0].callee, 0u);
  ASSERT_EQ(graph.reverse[0].size(), 1u);
  EXPECT_EQ(graph.reverse[0][0].callee, 1u);  // Reverse: field is caller.
}

// -------------------------------------------------- determinism-taint

/// The laundering fixture from the acceptance criteria: a journaled
/// scheduler calls a src/util wrapper around system_clock::now().
std::vector<SourceFile> laundering_fixture() {
  return {
      {"src/util/time_helpers.cpp",
       "namespace tagwatch::util {\n"
       "double now_ms() {\n"
       "  return std::chrono::duration<double, std::milli>(\n"
       "      std::chrono::system_clock::now().time_since_epoch()).count();\n"
       "}\n"
       "}  // namespace tagwatch::util\n"},
      {"src/core/rate_scheduler.cpp",
       "namespace tagwatch::core {\n"
       "void RateScheduler::tick() {\n"
       "  last_ms_ = util::now_ms();\n"
       "}\n"
       "}  // namespace tagwatch::core\n"},
  };
}

TEST(LintTaint, JournaledFunctionCallingUtilClockWrapperIsFlagged) {
  const LintReport r = run_files(laundering_fixture());
  const std::vector<Finding> taint = findings_of(r, "determinism-taint");
  ASSERT_EQ(taint.size(), 1u);
  EXPECT_EQ(taint[0].file, "src/core/rate_scheduler.cpp");
  EXPECT_EQ(taint[0].line, 3u);  // The call site, not the clock read.
  // The message names the journaled function, the laundering callee, the
  // full chain, and the concrete source with file:line.
  EXPECT_NE(taint[0].message.find("tagwatch::core::RateScheduler::tick"),
            std::string::npos);
  EXPECT_NE(taint[0].message.find(
                "tagwatch::core::RateScheduler::tick -> "
                "tagwatch::util::now_ms"),
            std::string::npos);
  EXPECT_NE(taint[0].message.find("system_clock"), std::string::npos);
  EXPECT_NE(taint[0].message.find("src/util/time_helpers.cpp:4"),
            std::string::npos);
  // The wrapper itself sits outside the journaled set, so the direct
  // rule stays quiet — the taint rule is what closes this hole.
  EXPECT_TRUE(findings_of(r, "determinism").empty());
}

TEST(LintTaint, SameWrapperUsedOnlyOfflineIsNotFlagged) {
  // tools/ (and tests/, bench/) run off the record→replay path; a clock
  // wrapper consumed only there is fine.
  const LintReport r = run_files({
      laundering_fixture()[0],
      {"tools/print_time.cpp",
       "int main() {\n"
       "  std::printf(\"%f\\n\", tagwatch::util::now_ms());\n"
       "}\n"},
  });
  EXPECT_TRUE(findings_of(r, "determinism-taint").empty());
}

TEST(LintTaint, MultiHopChainIsReportedEndToEnd) {
  const LintReport r = run_files({
      {"src/util/env_budget.cpp",
       "namespace tagwatch::util {\n"
       "double env_scale() {\n"
       "  const char* v = std::getenv(\"TAGWATCH_SCALE\");\n"
       "  return v != nullptr ? 2.0 : 1.0;\n"
       "}\n"
       "double scaled_budget() { return 100.0 * env_scale(); }\n"
       "}  // namespace tagwatch::util\n"},
      {"src/core/planner.cpp",
       "namespace tagwatch::core {\n"
       "double plan_budget() { return util::scaled_budget(); }\n"
       "}  // namespace tagwatch::core\n"},
  });
  const std::vector<Finding> taint = findings_of(r, "determinism-taint");
  ASSERT_EQ(taint.size(), 1u);
  EXPECT_EQ(taint[0].file, "src/core/planner.cpp");
  EXPECT_NE(taint[0].message.find(
                "tagwatch::core::plan_budget -> "
                "tagwatch::util::scaled_budget -> tagwatch::util::env_scale"),
            std::string::npos);
  EXPECT_NE(taint[0].message.find("getenv"), std::string::npos);
}

TEST(LintTaint, SanctionedWallClockSeamIsNeitherSourceNorPropagator) {
  const LintReport r = run_files({
      {"src/util/wall_clock.cpp",
       "namespace tagwatch::util {\n"
       "double SystemWallClock::now_seconds() {\n"
       "  return std::chrono::duration<double>(\n"
       "      std::chrono::system_clock::now().time_since_epoch()).count();\n"
       "}\n"
       "}  // namespace tagwatch::util\n"},
      {"src/core/cycle_timer.cpp",
       "namespace tagwatch::core {\n"
       "double CycleTimer::sample() { return clock_->now_seconds(); }\n"
       "}  // namespace tagwatch::core\n"},
  });
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintTaint, DirectReadInJournaledDirIsTheDirectRulesFinding) {
  // A function that reads the clock *itself* in a journaled dir is rule
  // `determinism`'s finding; the taint rule owns only laundering edges,
  // so the two rules never double-report one defect.
  const LintReport r = run_files({
      {"src/core/bad_direct.cpp",
       "namespace tagwatch::core {\n"
       "double read_clock() {\n"
       "  return std::chrono::duration<double>(\n"
       "      std::chrono::system_clock::now().time_since_epoch()).count();\n"
       "}\n"
       "}  // namespace tagwatch::core\n"},
  });
  EXPECT_FALSE(findings_of(r, "determinism").empty());
  EXPECT_TRUE(findings_of(r, "determinism-taint").empty());
}

TEST(LintTaint, QualifiedCallsPickTheRightOverloadSet) {
  const std::vector<SourceFile> shared = {
      {"src/util/stamp.cpp",
       "namespace tagwatch::diag {\n"
       "long stamp() { return time(nullptr); }\n"
       "}  // namespace tagwatch::diag\n"
       "namespace tagwatch::fmt {\n"
       "long stamp() { return 42; }\n"
       "}  // namespace tagwatch::fmt\n"},
  };
  // Qualified call to the clean namespace: no taint.
  {
    std::vector<SourceFile> files = shared;
    files.push_back({"src/core/uses_clean.cpp",
                     "namespace tagwatch::core {\n"
                     "long tag() { return fmt::stamp(); }\n"
                     "}  // namespace tagwatch::core\n"});
    EXPECT_TRUE(
        findings_of(run_files(files), "determinism-taint").empty());
  }
  // Qualified call to the tainted namespace: flagged.
  {
    std::vector<SourceFile> files = shared;
    files.push_back({"src/core/uses_dirty.cpp",
                     "namespace tagwatch::core {\n"
                     "long tag() { return diag::stamp(); }\n"
                     "}  // namespace tagwatch::core\n"});
    const std::vector<Finding> taint =
        findings_of(run_files(files), "determinism-taint");
    ASSERT_EQ(taint.size(), 1u);
    EXPECT_EQ(taint[0].file, "src/core/uses_dirty.cpp");
    EXPECT_NE(taint[0].message.find("tagwatch::diag::stamp"),
              std::string::npos);
  }
}

TEST(LintTaint, AllowAnnotationSuppressesALaunderingFinding) {
  std::vector<SourceFile> files = laundering_fixture();
  files[1].content =
      "namespace tagwatch::core {\n"
      "void RateScheduler::tick() {\n"
      "  last_ms_ = util::now_ms();"
      "  // tagwatch-lint: allow(determinism-taint)\n"
      "}\n"
      "}  // namespace tagwatch::core\n";
  const LintReport r = run_files(files);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressions_used, 1u);
  ASSERT_EQ(r.allow_annotations_by_rule.count("determinism-taint"), 1u);
  EXPECT_EQ(r.allow_annotations_by_rule.at("determinism-taint"), 1u);
}

// ------------------------------------------- documented blind spots

TEST(LintTaintLimitations, FunctionPointerIndirectionIsInvisible) {
  // Calls through function pointers / std::function never appear in the
  // call graph (documented under-approximation, docs/STATIC_ANALYSIS.md):
  // the indirection below reaches std::rand but produces no finding.
  // If the indexer ever learns to see through this, the docs and this
  // test must change together.
  const LintReport r = run_files({
      {"src/util/jitter.cpp",
       "namespace tagwatch::util {\n"
       "double jitter() { return static_cast<double>(std::rand()); }\n"
       "}  // namespace tagwatch::util\n"},
      {"src/core/indirect.cpp",
       "namespace tagwatch::core {\n"
       "void Poller::run() {\n"
       "  double (*f)() = &util::jitter;\n"
       "  value_ = f();\n"
       "}\n"
       "}  // namespace tagwatch::core\n"},
  });
  EXPECT_TRUE(findings_of(r, "determinism-taint").empty());
}

TEST(LintTaintLimitations, VirtualDispatchResolvesByNameToAllImpls) {
  // Method calls resolve by name to every same-named definition — an
  // over-approximation: the caller below is flagged because *one*
  // now_s() implementation is tainted, even though the runtime object
  // might be the fake.  Safe direction for a determinism gate; renaming
  // the fake's method or sanctioning the impl file is the way out.
  const LintReport r = run_files({
      {"src/util/clock_impls.cpp",
       "namespace tagwatch::util {\n"
       "double FakeClock::now_s() { return 42.0; }\n"
       "double RealClock::now_s() {\n"
       "  return std::chrono::duration<double>(\n"
       "      std::chrono::system_clock::now().time_since_epoch()).count();\n"
       "}\n"
       "}  // namespace tagwatch::util\n"},
      {"src/core/polling.cpp",
       "namespace tagwatch::core {\n"
       "void Ctrl::step() { t_ = clock_->now_s(); }\n"
       "}  // namespace tagwatch::core\n"},
  });
  const std::vector<Finding> taint = findings_of(r, "determinism-taint");
  ASSERT_EQ(taint.size(), 1u);
  EXPECT_NE(taint[0].message.find("tagwatch::util::RealClock::now_s"),
            std::string::npos);
}

// ---------------------------------------------------------- lock-order

TEST(LintLockOrder, AbBaAcquisitionCycleIsFlagged) {
  const LintReport r = run_files({
      {"src/util/account.cpp",
       "namespace tagwatch::util {\n"
       "void Account::credit() {\n"
       "  std::lock_guard<std::mutex> a(a_);\n"
       "  std::lock_guard<std::mutex> b(b_);\n"
       "  apply();\n"
       "}\n"
       "void Account::debit() {\n"
       "  std::lock_guard<std::mutex> b(b_);\n"
       "  std::lock_guard<std::mutex> a(a_);\n"
       "  apply();\n"
       "}\n"
       "}  // namespace tagwatch::util\n"},
  });
  const std::vector<Finding> locks = findings_of(r, "lock-order");
  ASSERT_EQ(locks.size(), 1u);  // One finding per cycle, not per edge.
  EXPECT_NE(locks[0].message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(locks[0].message.find("'Account::a_'"), std::string::npos);
  EXPECT_NE(locks[0].message.find("'Account::b_'"), std::string::npos);
}

TEST(LintLockOrder, ConsistentAcquisitionOrderPasses) {
  const LintReport r = run_files({
      {"src/util/account.cpp",
       "namespace tagwatch::util {\n"
       "void Account::credit() {\n"
       "  std::lock_guard<std::mutex> a(a_);\n"
       "  std::lock_guard<std::mutex> b(b_);\n"
       "}\n"
       "void Account::debit() {\n"
       "  std::lock_guard<std::mutex> a(a_);\n"
       "  std::lock_guard<std::mutex> b(b_);\n"
       "}\n"
       "}  // namespace tagwatch::util\n"},
  });
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintLockOrder, ScopedLockGroupIsDeadlockFreeByConstruction) {
  // std::scoped_lock's own argument list locks atomically; opposite
  // orders across two functions must not read as a cycle.
  const LintReport r = run_files({
      {"src/util/swap.cpp",
       "namespace tagwatch::util {\n"
       "void Swap::fwd() { std::scoped_lock all(a_, b_); }\n"
       "void Swap::rev() { std::scoped_lock all(b_, a_); }\n"
       "}  // namespace tagwatch::util\n"},
  });
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintLockOrder, InterproceduralCycleThroughACalleeIsFlagged) {
  const LintReport r = run_files({
      {"src/util/cross.cpp",
       "namespace tagwatch::util {\n"
       "void Registry::publish() {\n"
       "  std::lock_guard<std::mutex> g(list_mutex_);\n"
       "  notify();\n"
       "}\n"
       "void Registry::notify() {\n"
       "  std::lock_guard<std::mutex> g(subs_mutex_);\n"
       "}\n"
       "void Registry::unsubscribe() {\n"
       "  std::lock_guard<std::mutex> g(subs_mutex_);\n"
       "  prune();\n"
       "}\n"
       "void Registry::prune() {\n"
       "  std::lock_guard<std::mutex> g(list_mutex_);\n"
       "}\n"
       "}  // namespace tagwatch::util\n"},
  });
  const std::vector<Finding> locks = findings_of(r, "lock-order");
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_NE(locks[0].message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(locks[0].message.find("'Registry::list_mutex_'"),
            std::string::npos);
  EXPECT_NE(locks[0].message.find("'Registry::subs_mutex_'"),
            std::string::npos);
}

TEST(LintLockOrder, SelfDeadlockThroughACalleeIsFlagged) {
  const LintReport r = run_files({
      {"src/util/cache.cpp",
       "namespace tagwatch::util {\n"
       "int Cache::get() {\n"
       "  std::lock_guard<std::mutex> g(mu_);\n"
       "  refill();\n"
       "  return hits_;\n"
       "}\n"
       "void Cache::refill() {\n"
       "  std::lock_guard<std::mutex> g(mu_);\n"
       "}\n"
       "}  // namespace tagwatch::util\n"},
  });
  const std::vector<Finding> locks = findings_of(r, "lock-order");
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_NE(locks[0].message.find("re-acquired while already held"),
            std::string::npos);
  EXPECT_NE(locks[0].message.find("'Cache::mu_'"), std::string::npos);
}

TEST(LintLockOrder, LockHeldAcrossExecuteIsFlagged) {
  const LintReport r = run_files({
      {"src/core/bad_ctrl.cpp",
       "namespace tagwatch::core {\n"
       "void Controller::run() {\n"
       "  std::lock_guard<std::mutex> guard(state_mutex_);\n"
       "  client_->execute(spec_);\n"
       "}\n"
       "}  // namespace tagwatch::core\n"},
  });
  const std::vector<Finding> locks = findings_of(r, "lock-order");
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_EQ(locks[0].line, 4u);
  EXPECT_NE(locks[0].message.find("'Controller::state_mutex_'"),
            std::string::npos);
  EXPECT_NE(locks[0].message.find("held across 'execute()'"),
            std::string::npos);
}

TEST(LintLockOrder, LockHeldAcrossDispatchTransitivelyIsFlagged) {
  const LintReport r = run_files({
      {"src/core/bad_ctrl.cpp",
       "namespace tagwatch::core {\n"
       "void Controller::step() {\n"
       "  std::lock_guard<std::mutex> g(m_);\n"
       "  refresh();\n"
       "}\n"
       "void Controller::refresh() {\n"
       "  client_->execute(spec_);\n"
       "}\n"
       "}  // namespace tagwatch::core\n"},
  });
  const std::vector<Finding> locks = findings_of(r, "lock-order");
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_NE(locks[0].message.find("tagwatch::core::Controller::refresh"),
            std::string::npos);
  EXPECT_NE(
      locks[0].message.find("reaches transport execute()/sink dispatch"),
      std::string::npos);
}

TEST(LintLockOrder, GuardReleasedBeforeDispatchPasses) {
  // The house idiom: take the snapshot under the lock in its own block,
  // dispatch after the guard has died.
  const LintReport r = run_files({
      {"src/core/ok_ctrl.cpp",
       "namespace tagwatch::core {\n"
       "void Controller::run() {\n"
       "  Spec spec;\n"
       "  {\n"
       "    std::lock_guard<std::mutex> guard(state_mutex_);\n"
       "    spec = pending_;\n"
       "  }\n"
       "  client_->execute(spec);\n"
       "}\n"
       "}  // namespace tagwatch::core\n"},
  });
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintLockOrder, DeferLockIsNotAnAcquisition) {
  const LintReport r = run_files({
      {"src/util/defer.cpp",
       "namespace tagwatch::util {\n"
       "void Pair::swap_halves() {\n"
       "  std::unique_lock<std::mutex> la(a_, std::defer_lock);\n"
       "  std::unique_lock<std::mutex> lb(b_, std::defer_lock);\n"
       "}\n"
       "void Pair::reverse() {\n"
       "  std::lock_guard<std::mutex> lb(b_);\n"
       "}\n"
       "}  // namespace tagwatch::util\n"},
  });
  EXPECT_TRUE(r.findings.empty());
}

// --------------------------------------------------------------- SARIF

TEST(LintSarif, EscapesJsonStringBodies) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(LintSarif, LogCarriesSchemaDriverRulesAndResults) {
  const LintReport r = run_files(laundering_fixture());
  ASSERT_EQ(r.findings.size(), 1u);
  const std::string sarif = to_sarif(r.findings);
  EXPECT_NE(sarif.find("\"$schema\": "
                       "\"https://json.schemastore.org/sarif-2.1.0.json\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"tagwatch_lint\""), std::string::npos);
  // Every rule appears in the driver block even on a one-finding log.
  for (const RuleInfo& rule : RuleEngine::rules()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + rule.name + "\""),
              std::string::npos);
  }
  EXPECT_NE(sarif.find("\"ruleId\": \"determinism-taint\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/core/rate_scheduler.cpp\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
}

TEST(LintSarif, EmptyRunStillListsTheRuleCatalog) {
  const std::string sarif = to_sarif({});
  EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"lock-order\""), std::string::npos);
}

}  // namespace
}  // namespace tagwatch::lint
