// Randomized end-to-end invariants over the full two-phase loop.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

namespace tagwatch::core {
namespace {

struct RandomScenario {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::optional<llrp::SimReaderClient> client;
  std::vector<util::Epc> movers;

  explicit RandomScenario(std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t n = 15 + rng.below(40);
    const std::size_t n_movers = 1 + rng.below(3);
    for (std::size_t i = 0; i < n; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::random(rng);
      if (i < n_movers) {
        t.motion = std::make_shared<sim::CircularTrack>(
            util::Vec3{0.5, 0.5, 0}, 0.15 + rng.uniform(0.0, 0.2),
            0.4 + rng.uniform(0.0, 0.6), rng.uniform(0.0, util::kTwoPi));
        movers.push_back(t.epc);
      } else {
        t.motion = std::make_shared<sim::StaticMotion>(
            util::Vec3{rng.uniform(-3, 3), rng.uniform(-3, 3), 0});
      }
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    client.emplace(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                   gen2::ReaderConfig{}, world, channel,
                   std::vector<rf::Antenna>{{1, {-5, -5, 0}, 8.0},
                                            {2, {5, 5, 0}, 8.0}},
                   seed + 1);
  }
};

class SystemInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SystemInvariants, HoldAcrossCycles) {
  RandomScenario scenario(GetParam());
  TagwatchConfig cfg;
  cfg.phase2_duration = util::sec(1);
  TagwatchController ctl(cfg, *scenario.client);

  util::SimTime last_ts{0};
  ctl.set_read_listener([&last_ts](const rf::TagReading& r) {
    // 1. Delivered readings are time-ordered (single reader, one stream).
    EXPECT_GE(r.timestamp, last_ts);
    last_ts = r.timestamp;
  });

  const auto reports = ctl.run_cycles(8);
  const InventoryCostModel model = InventoryCostModel::paper_fit();
  for (const auto& r : reports) {
    // 2. Targets are always part of the assessed scene.
    std::unordered_set<util::Epc> scene(r.scene.begin(), r.scene.end());
    for (const auto& t : r.targets) {
      EXPECT_TRUE(scene.contains(t)) << "target outside scene";
    }
    // 3. Selective cycles: every Phase II reading comes from a tag covered
    //    by some scheduled bitmask (Select really is exclusive).
    if (!r.read_all_fallback) {
      for (const auto& [epc, count] : r.phase2_counts) {
        (void)count;
        bool covered = false;
        for (const auto& sel : r.schedule.selections) {
          if (sel.bitmask.covers(epc)) covered = true;
        }
        EXPECT_TRUE(covered) << epc.to_hex() << " read but not covered";
      }
      // 4. The worst-case guard: never costlier than per-target rounds.
      EXPECT_LE(r.schedule.estimated_cost_s,
                static_cast<double>(r.targets.size()) *
                        model.cost_seconds(1) +
                    1e-9);
      // 5. The inter-phase gap exists and is positive.
      if (r.phase2_readings > 0) {
        ASSERT_TRUE(r.interphase_gap.has_value());
        EXPECT_GT(r.interphase_gap->count(), 0);
      }
    }
    // 6. Phase durations add up to the clock advance (no lost time):
    //    phase1 + gap-bearing compute + phase2 <= cycle wall (loose check).
    EXPECT_GT(r.phase1_duration.count(), 0);
    EXPECT_GT(r.phase2_duration.count(), 0);
  }

  // 7. After convergence, Phase II is spent on the targets (plus at most a
  //    handful of collaterally covered tags — Fig. 16's tags #9/#30 effect,
  //    which legitimately share the selected rounds' reads).
  const CycleReport& last = reports.back();
  if (!last.read_all_fallback) {
    std::size_t mover_reads = 0;
    for (const auto& [epc, count] : last.phase2_counts) {
      (void)count;
      for (const auto& m : scenario.movers) {
        if (m == epc) mover_reads += count;
      }
    }
    EXPECT_GT(mover_reads, 0u);
    EXPECT_LE(last.schedule.covered_union.count(),
              last.targets.size() + 6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemInvariants,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005,
                                           1006));

}  // namespace
}  // namespace tagwatch::core
