// Table-driven conformance checks against the EPC Gen2 specification:
// the full Select action matrix (Table 6.30), link-timing golden values,
// and session/flag semantics the rest of the system relies on.
#include <gtest/gtest.h>

#include "gen2/link_params.hpp"
#include "gen2/tag_runtime.hpp"
#include "util/stats.hpp"

namespace tagwatch::gen2 {
namespace {

// ---------------------------------------------------- Select action matrix

struct ActionCase {
  SelectAction action;
  bool matched;
  bool sl_before;
  bool sl_after;
};

class SelectActionMatrix : public ::testing::TestWithParam<ActionCase> {};

TEST_P(SelectActionMatrix, SlSemantics) {
  const ActionCase c = GetParam();
  SelectCommand cmd;
  cmd.target = SelectTarget::kSl;
  cmd.action = c.action;
  TagFlags flags;
  flags.sl = c.sl_before;
  apply_select_action(cmd, c.matched, flags);
  EXPECT_EQ(flags.sl, c.sl_after)
      << "action " << static_cast<int>(c.action) << " matched=" << c.matched
      << " before=" << c.sl_before;
}

// Gen2 Table 6.30, both flag polarities, matching and non-matching.
INSTANTIATE_TEST_SUITE_P(
    Table630, SelectActionMatrix,
    ::testing::Values(
        // Action 000: matching assert, else deassert.
        ActionCase{SelectAction::kAssertMatchedDeassertElse, true, false, true},
        ActionCase{SelectAction::kAssertMatchedDeassertElse, true, true, true},
        ActionCase{SelectAction::kAssertMatchedDeassertElse, false, true,
                   false},
        ActionCase{SelectAction::kAssertMatchedDeassertElse, false, false,
                   false},
        // Action 001: matching assert, else nothing.
        ActionCase{SelectAction::kAssertMatchedOnly, true, false, true},
        ActionCase{SelectAction::kAssertMatchedOnly, false, true, true},
        ActionCase{SelectAction::kAssertMatchedOnly, false, false, false},
        // Action 010: matching nothing, else deassert.
        ActionCase{SelectAction::kDeassertUnmatchedOnly, true, true, true},
        ActionCase{SelectAction::kDeassertUnmatchedOnly, false, true, false},
        // Action 011: matching negate, else nothing.
        ActionCase{SelectAction::kToggleMatched, true, false, true},
        ActionCase{SelectAction::kToggleMatched, true, true, false},
        ActionCase{SelectAction::kToggleMatched, false, false, false},
        // Action 100: matching deassert, else assert.
        ActionCase{SelectAction::kDeassertMatchedAssertElse, true, true, false},
        ActionCase{SelectAction::kDeassertMatchedAssertElse, false, false,
                   true},
        // Action 101: matching deassert, else nothing.
        ActionCase{SelectAction::kDeassertMatchedOnly, true, true, false},
        ActionCase{SelectAction::kDeassertMatchedOnly, false, true, true},
        // Action 110: matching nothing, else assert.
        ActionCase{SelectAction::kAssertUnmatchedOnly, true, false, false},
        ActionCase{SelectAction::kAssertUnmatchedOnly, false, false, true},
        // Action 111: matching negate, else nothing.
        ActionCase{SelectAction::kToggleMatchedOnly, true, true, false},
        ActionCase{SelectAction::kToggleMatchedOnly, false, true, true}));

struct SessionCase {
  SelectAction action;
  bool matched;
  InvFlag before;
  InvFlag after;
};

class SelectSessionMatrix : public ::testing::TestWithParam<SessionCase> {};

TEST_P(SelectSessionMatrix, InventoriedFlagSemantics) {
  const SessionCase c = GetParam();
  SelectCommand cmd;
  cmd.target = SelectTarget::kSessionS2;
  cmd.action = c.action;
  TagFlags flags;
  flags.session_flag(Session::kS2) = c.before;
  apply_select_action(cmd, c.matched, flags);
  EXPECT_EQ(flags.session_flag(Session::kS2), c.after);
  // The SL flag and other sessions must be untouched.
  EXPECT_FALSE(flags.sl);
  EXPECT_EQ(flags.session_flag(Session::kS1), InvFlag::kA);
}

// For session targets, "assert" reads as set-to-A, "deassert" as set-to-B.
INSTANTIATE_TEST_SUITE_P(
    SessionTargets, SelectSessionMatrix,
    ::testing::Values(
        SessionCase{SelectAction::kAssertMatchedDeassertElse, true, InvFlag::kB,
                    InvFlag::kA},
        SessionCase{SelectAction::kAssertMatchedDeassertElse, false,
                    InvFlag::kA, InvFlag::kB},
        SessionCase{SelectAction::kToggleMatched, true, InvFlag::kA,
                    InvFlag::kB},
        SessionCase{SelectAction::kToggleMatched, true, InvFlag::kB,
                    InvFlag::kA},
        SessionCase{SelectAction::kToggleMatched, false, InvFlag::kB,
                    InvFlag::kB},
        SessionCase{SelectAction::kDeassertMatchedOnly, true, InvFlag::kA,
                    InvFlag::kB},
        SessionCase{SelectAction::kAssertUnmatchedOnly, false, InvFlag::kB,
                    InvFlag::kA}));

// ------------------------------------------------------- timing goldens

TEST(LinkTimingGolden, MaxThroughputProfile) {
  // Tari 6.25 µs, BLF 640 kHz, FM0: spot-check derived durations against
  // hand-computed values (±1 µs for ceiling).
  const LinkTiming t{LinkParams::max_throughput()};
  // Frame-sync = delim 12.5 + Tari 6.25 + RTcal 18.75 = 37.5 µs;
  // QueryRep = frame-sync + 4 bits × 9.375 µs = 75 µs.
  EXPECT_NEAR(static_cast<double>(t.query_rep().count()), 75.0, 1.0);
  // ACK = frame-sync + 18 × 9.375 = 206.25 µs.
  EXPECT_NEAR(static_cast<double>(t.ack().count()), 206.25, 1.0);
  // RN16 = (6 preamble + 16 + 1) × 1.5625 µs ≈ 35.9 µs.
  EXPECT_NEAR(static_cast<double>(t.rn16().count()), 36.0, 1.5);
  // T1 = max(RTcal 18.75, 10·Tpri 15.625) × 1.1 ≈ 20.6 µs.
  EXPECT_NEAR(static_cast<double>(t.t1().count()), 21.0, 1.5);
  // 96-bit EPC reply = (6 + 16 + 96 + 16 + 1) × 1.5625 ≈ 211 µs.
  EXPECT_NEAR(static_cast<double>(t.epc_reply(96).count()), 211.0, 2.0);
}

TEST(LinkTimingGolden, PaperTestbedProfile) {
  // Tari 12.5 µs, BLF 320 kHz, Miller-2: tag bit = 6.25 µs.
  const LinkTiming t{LinkParams::paper_testbed()};
  // Frame-sync = 12.5 + 12.5 + 37.5 = 62.5; QueryRep = 62.5 + 4×18.75 = 137.5.
  EXPECT_NEAR(static_cast<double>(t.query_rep().count()), 137.5, 1.0);
  // RN16 = 23 bits × 6.25 = 143.75 µs.
  EXPECT_NEAR(static_cast<double>(t.rn16().count()), 144.0, 1.5);
  // Empty slot = QueryRep + T1 + T3 ≈ 137.5 + 41.3 + 37.5 ≈ 216 µs.
  EXPECT_NEAR(static_cast<double>(t.empty_slot().count()), 217.0, 3.0);
  // Success slot for a 96-bit EPC: 137.5 (QueryRep) + 42 (T1) + 143.75
  // (RN16) + 32 (T2) + 400 (ACK) + 42 (T1) + 843.75 (PC+EPC+CRC reply)
  // + 32 (T2) ≈ 1.674 ms.
  EXPECT_NEAR(util::to_millis(t.success_slot(96)), 1.674, 0.05);
}

TEST(LinkTimingGolden, QueryCarriesFullPreamble) {
  // Query includes TRcal (needed by tags to derive BLF); others don't.
  const LinkParams p = LinkParams::paper_testbed();
  const LinkTiming t{p};
  // TRcal = (64/3) / BLF[MHz] = 21.33/0.32 = 66.7 µs.
  const double trcal = 64.0 / 3.0 / (p.blf_khz / 1000.0);
  const double query_body = 22.0 * 1.5 * p.tari_us;
  const double query_rep_body = 4.0 * 1.5 * p.tari_us;
  const double expected_delta = trcal + (query_body - query_rep_body);
  EXPECT_NEAR(static_cast<double>((t.query() - t.query_rep()).count()),
              expected_delta, 2.0);
}

// --------------------------------------------------------- jain fairness

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(util::jain_fairness(std::vector<double>{1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(util::jain_fairness(std::vector<double>{1, 0, 0, 0}), 0.25);
  EXPECT_NEAR(util::jain_fairness(std::vector<double>{2, 1}), 0.9, 1e-9);
  EXPECT_THROW(util::jain_fairness(std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(util::jain_fairness(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tagwatch::gen2
