// FaultInjectingReaderClient: scripted and probabilistic fault schedules,
// per-reading mangling, determinism, and the journal's error (X) records.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "llrp/fault_injection.hpp"
#include "llrp/recording_reader_client.hpp"
#include "llrp/replay_reader_client.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

namespace tagwatch::llrp {
namespace {

struct FaultBed {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, 5, 0}, 8.0}};
  std::optional<SimReaderClient> sim;
  std::optional<FaultInjectingReaderClient> faulty;

  explicit FaultBed(FaultPlan plan, std::size_t n_tags = 10,
                    std::uint64_t seed = 33) {
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::random(rng);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    sim.emplace(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                gen2::ReaderConfig{}, world, channel, antennas, seed + 1);
    faulty.emplace(*sim, std::move(plan));
  }
};

ROSpec rounds_spec(std::size_t rounds = 2) {
  ROSpec spec;
  AISpec ai;
  ai.stop = AiSpecStopTrigger::after_rounds(rounds);
  spec.ai_specs.push_back(ai);
  return spec;
}

TEST(FaultInjection, CleanPlanPassesThroughUnchanged) {
  FaultBed bed(FaultPlan{});
  const ExecutionResult r = bed.faulty->execute(rounds_spec());
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.report.readings.size(), 0u);
  EXPECT_EQ(bed.faulty->stats().injected_faults_total(), 0u);
  EXPECT_EQ(bed.faulty->capabilities().model, "faulty(sim-gen2)");
  EXPECT_EQ(bed.faulty->capabilities().antenna_count, 2u);
}

TEST(FaultInjection, ScriptedTimeoutFiresAtItsIndexWithPartialSalvage) {
  FaultPlan plan;
  plan.scripted = {{1, ReaderErrorKind::kTimeout, 0}};
  plan.failure_keep_fraction = 0.5;
  FaultBed bed(plan);

  const ExecutionResult first = bed.faulty->execute(rounds_spec());
  EXPECT_TRUE(first.ok());

  const ExecutionResult second = bed.faulty->execute(rounds_spec());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error->kind, ReaderErrorKind::kTimeout);
  EXPECT_EQ(second.error->message, "injected timeout (execute #1)");
  // The inventory ran; about half the readings survive as the salvage.
  EXPECT_GT(second.report.readings.size(), 0u);
  EXPECT_LT(second.report.readings.size(), first.report.readings.size());
  EXPECT_EQ(bed.faulty->stats().injected_timeouts, 1u);

  EXPECT_TRUE(bed.faulty->execute(rounds_spec()).ok());
}

TEST(FaultInjection, DisconnectChargesReconnectLatencyAndRunsItsEpisode) {
  FaultPlan plan;
  plan.scripted = {{0, ReaderErrorKind::kDisconnected, 0}};
  plan.reconnect_latency = util::msec(80);
  plan.disconnect_episode_length = 2;
  FaultBed bed(plan);

  const util::SimTime before = bed.faulty->now();
  const ExecutionResult first = bed.faulty->execute(rounds_spec());
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error->kind, ReaderErrorKind::kDisconnected);
  // Nothing was read, but re-establishing the session cost reader time.
  EXPECT_TRUE(first.report.readings.empty());
  EXPECT_EQ(bed.faulty->now() - before, util::msec(80));

  // Episode length 2: the next execute is still down, the one after is not.
  EXPECT_FALSE(bed.faulty->execute(rounds_spec()).ok());
  EXPECT_TRUE(bed.faulty->execute(rounds_spec()).ok());
  EXPECT_EQ(bed.faulty->stats().injected_disconnects, 2u);
}

TEST(FaultInjection, LostAntennaPoisonsSpecsUntilAvoided) {
  FaultPlan plan;
  plan.scripted = {{0, ReaderErrorKind::kAntennaLost, 1}};
  FaultBed bed(plan);

  ROSpec all = rounds_spec();  // Empty antenna list = all, including port 1.
  const ExecutionResult killed = bed.faulty->execute(all);
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.error->kind, ReaderErrorKind::kAntennaLost);
  EXPECT_EQ(killed.error->antenna, 1u);
  EXPECT_TRUE(bed.faulty->lost_antennas().contains(1));

  // Still driving the dead port: fails fast, deterministically.
  const ExecutionResult again = bed.faulty->execute(all);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error->kind, ReaderErrorKind::kAntennaLost);

  // Naming only the healthy port works.
  ROSpec healthy = rounds_spec();
  healthy.ai_specs[0].antenna_indexes = {0};
  EXPECT_TRUE(bed.faulty->execute(healthy).ok());
}

TEST(FaultInjection, DropAndDuplicateRatesMangleTheReadingStream) {
  FaultPlan drop_all;
  drop_all.reading_drop_rate = 1.0;
  FaultBed dropper(drop_all);
  const ExecutionResult dropped = dropper.faulty->execute(rounds_spec());
  EXPECT_TRUE(dropped.ok());
  EXPECT_TRUE(dropped.report.readings.empty());
  EXPECT_GT(dropper.faulty->stats().dropped_readings, 0u);

  FaultPlan dup_all;
  dup_all.reading_duplicate_rate = 1.0;
  FaultBed duper(dup_all);
  FaultBed clean(FaultPlan{});
  const std::size_t clean_count =
      clean.faulty->execute(rounds_spec()).report.readings.size();
  const ExecutionResult doubled = duper.faulty->execute(rounds_spec());
  EXPECT_EQ(doubled.report.readings.size(), 2 * clean_count);
  EXPECT_EQ(duper.faulty->stats().duplicated_readings, clean_count);
}

TEST(FaultInjection, PhaseCorruptionKeepsPhasesInPrincipalRange) {
  FaultPlan plan;
  plan.phase_corruption_rate = 1.0;
  plan.phase_corruption_stddev_rad = 3.0;
  FaultBed bed(plan);
  const ExecutionResult r = bed.faulty->execute(rounds_spec());
  ASSERT_GT(r.report.readings.size(), 0u);
  for (const rf::TagReading& reading : r.report.readings) {
    EXPECT_GE(reading.phase_rad, 0.0);
    EXPECT_LT(reading.phase_rad, util::kTwoPi);
  }
  EXPECT_EQ(bed.faulty->stats().corrupted_readings, r.report.readings.size());
}

TEST(FaultInjection, SameSeedSamePlanIsDeterministic) {
  FaultPlan plan;
  plan.seed = 7;
  plan.execute_failure_probability = 0.4;
  plan.weight_disconnect = 1.0;
  plan.weight_partial_report = 1.0;
  plan.reading_drop_rate = 0.1;
  plan.phase_corruption_rate = 0.2;

  auto run = [&plan]() {
    FaultBed bed(plan);
    std::vector<std::pair<bool, std::size_t>> trace;
    for (int i = 0; i < 20; ++i) {
      const ExecutionResult r = bed.faulty->execute(rounds_spec());
      trace.emplace_back(r.ok(), r.report.readings.size());
    }
    return std::make_pair(trace, bed.faulty->stats());
  };
  const auto [trace_a, stats_a] = run();
  const auto [trace_b, stats_b] = run();
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(stats_a.injected_faults_total(), stats_b.injected_faults_total());
  EXPECT_EQ(stats_a.injected_timeouts, stats_b.injected_timeouts);
  EXPECT_EQ(stats_a.dropped_readings, stats_b.dropped_readings);
  EXPECT_EQ(stats_a.corrupted_readings, stats_b.corrupted_readings);
}

TEST(FaultInjection, ListenerSeesExactlyTheReportedReadings) {
  FaultPlan plan;
  plan.scripted = {{0, ReaderErrorKind::kPartialReport, 0}};
  plan.reading_duplicate_rate = 0.3;
  FaultBed bed(plan);
  std::size_t streamed = 0;
  bed.faulty->set_read_listener(
      [&streamed](const rf::TagReading&) { ++streamed; });
  const ExecutionResult r = bed.faulty->execute(rounds_spec());
  ASSERT_FALSE(r.ok());
  // Post-mangling, post-truncation: the stream and the report agree, which
  // is what makes a recorded faulty run replay bit-exactly.
  EXPECT_EQ(streamed, r.report.readings.size());
}

// ------------------------------------------------ journal error records

TEST(ReaderJournal, ErrorRecordsRoundTripThroughCsv) {
  FaultPlan plan;
  plan.scripted = {{0, ReaderErrorKind::kProtocolError, 0},
                   {1, ReaderErrorKind::kAntennaLost, 1}};
  FaultBed bed(plan);
  RecordingReaderClient recorder(*bed.faulty);
  recorder.execute(rounds_spec());
  recorder.execute(rounds_spec());
  ROSpec healthy = rounds_spec();
  healthy.ai_specs[0].antenna_indexes = {0};
  recorder.execute(healthy);

  const std::string csv = recorder.journal().to_csv();
  EXPECT_NE(csv.find("X,protocol-error,"), std::string::npos);
  EXPECT_NE(csv.find("X,antenna-lost,1,"), std::string::npos);

  const ReaderJournal parsed = ReaderJournal::from_csv(csv);
  EXPECT_EQ(parsed.to_csv(), csv);

  ReplayReaderClient replay(parsed);
  const ExecutionResult first = replay.execute(rounds_spec());
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error->kind, ReaderErrorKind::kProtocolError);
  const ExecutionResult second = replay.execute(rounds_spec());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error->kind, ReaderErrorKind::kAntennaLost);
  EXPECT_EQ(second.error->antenna, 1u);
  EXPECT_TRUE(replay.execute(healthy).ok());
}

TEST(ReaderJournal, ErrorMessagesWithDelimitersAreSanitized) {
  FaultBed bed(FaultPlan{});
  RecordingReaderClient recorder(*bed.faulty);
  // Inject by hand through the journal API surface: record an entry whose
  // message contains CSV delimiters via a faulty execute, then make sure
  // parsing still works.  (The injector's own messages are delimiter-free;
  // this guards the format against future messages that are not.)
  ReaderJournal journal = recorder.journal();
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kExecute;
  entry.error = ReaderError{ReaderErrorKind::kTimeout, 0,
                            "lost frame, retry\nlater"};
  journal.push(entry);
  const std::string csv = journal.to_csv();
  const ReaderJournal parsed = ReaderJournal::from_csv(csv);
  ASSERT_EQ(parsed.entries().size(), 1u);
  EXPECT_EQ(parsed.entries()[0].error->message, "lost frame; retry;later");
}

TEST(ReaderJournal, RejectsMalformedErrorRecords) {
  const std::string head = "# tagwatch-reader-journal v1\n";
  // X before any execute entry.
  EXPECT_THROW(ReaderJournal::from_csv(head + "X,timeout,0,boom\n"),
               std::invalid_argument);
  // Unknown kind name.
  EXPECT_THROW(
      ReaderJournal::from_csv(
          head + "E,0123456789abcdef,0,10,1,0,0,0,1,0,10,0\nX,melted,0,boom\n"),
      std::invalid_argument);
}

TEST(ReaderErrorKind, NameRoundTrip) {
  for (const ReaderErrorKind kind :
       {ReaderErrorKind::kTimeout, ReaderErrorKind::kDisconnected,
        ReaderErrorKind::kProtocolError, ReaderErrorKind::kPartialReport,
        ReaderErrorKind::kAntennaLost}) {
    EXPECT_EQ(reader_error_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(reader_error_kind_from_string("melted"), std::invalid_argument);
}

}  // namespace
}  // namespace tagwatch::llrp
