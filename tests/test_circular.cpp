#include "util/circular.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <vector>

#include "util/rng.hpp"

namespace tagwatch::util {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Circular, WrapTo2Pi) {
  EXPECT_DOUBLE_EQ(wrap_to_2pi(0.0), 0.0);
  EXPECT_NEAR(wrap_to_2pi(kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_to_2pi(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(wrap_to_2pi(5.0 * kTwoPi + 1.0), 1.0, 1e-9);
  EXPECT_NEAR(wrap_to_2pi(-3.0 * kTwoPi - 1.0), kTwoPi - 1.0, 1e-9);
}

TEST(Circular, SignedDiffShortestArc) {
  EXPECT_NEAR(circular_signed_diff(0.5, 0.2), 0.3, 1e-12);
  EXPECT_NEAR(circular_signed_diff(0.2, 0.5), -0.3, 1e-12);
  // Across the wrap boundary.
  EXPECT_NEAR(circular_signed_diff(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(circular_signed_diff(kTwoPi - 0.1, 0.1), -0.2, 1e-12);
}

TEST(Circular, DistancePaperExample) {
  // §4.3: measured 2π−0.01 vs expected 0.02 → distance 0.03, not 6.25.
  EXPECT_NEAR(circular_distance(kTwoPi - 0.01, 0.02), 0.03, 1e-12);
}

TEST(Circular, DistanceIsSymmetricAndBounded) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0.0, kTwoPi);
    const double b = rng.uniform(0.0, kTwoPi);
    const double d = circular_distance(a, b);
    EXPECT_NEAR(d, circular_distance(b, a), 1e-12);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, kPi + 1e-12);
  }
}

TEST(Circular, DistanceTriangleInequality) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0.0, kTwoPi);
    const double b = rng.uniform(0.0, kTwoPi);
    const double c = rng.uniform(0.0, kTwoPi);
    EXPECT_LE(circular_distance(a, c),
              circular_distance(a, b) + circular_distance(b, c) + 1e-12);
  }
}

TEST(Circular, LerpMovesAlongShortestArc) {
  // Halfway from 6.2 to 0.1 should cross 0, not go the long way.
  const double mid = circular_lerp(6.2, 0.1, 0.5);
  EXPECT_LT(circular_distance(mid, 0.0), 0.15);
  EXPECT_NEAR(circular_lerp(1.0, 2.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(circular_lerp(1.0, 2.0, 1.0), 2.0, 1e-12);
}

TEST(CircularStats, MeanOfClusteredSamples) {
  CircularStats stats;
  for (const double v : {0.10, 0.12, 0.08, 0.11, 0.09}) stats.add(v);
  EXPECT_NEAR(stats.mean(), 0.10, 1e-3);
  EXPECT_LT(stats.stddev(), 0.03);
  EXPECT_GT(stats.resultant_length(), 0.99);
}

TEST(CircularStats, MeanAcrossWrapBoundary) {
  CircularStats stats;
  // Cluster straddling 0: naive mean would be ~π, circular mean ~0.
  for (const double v : {kTwoPi - 0.05, 0.05, kTwoPi - 0.03, 0.03}) {
    stats.add(v);
  }
  EXPECT_LT(circular_distance(stats.mean(), 0.0), 0.02);
  EXPECT_LT(stats.stddev(), 0.1);
}

TEST(CircularStats, UniformSamplesHaveLowResultant) {
  CircularStats stats;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) stats.add(rng.uniform(0.0, kTwoPi));
  EXPECT_LT(stats.resultant_length(), 0.1);
}

TEST(CircularStats, MatchesGaussianNoiseStddev) {
  CircularStats stats;
  Rng rng(8);
  const double true_mean = 3.0;
  const double true_sd = 0.1;
  for (int i = 0; i < 5000; ++i) stats.add(rng.normal(true_mean, true_sd));
  EXPECT_NEAR(stats.mean(), true_mean, 0.01);
  EXPECT_NEAR(stats.stddev(), true_sd, 0.01);
}

TEST(CircularStats, EmptyAndSingle) {
  CircularStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  stats.add(1.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_NEAR(stats.mean(), 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

}  // namespace
}  // namespace tagwatch::util
