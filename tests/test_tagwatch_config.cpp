// Controller configuration edge cases and Phase II scheduling economics.
#include <gtest/gtest.h>

#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

namespace tagwatch::core {
namespace {

struct MiniBed {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, 5, 0}, 8.0}};
  std::optional<llrp::SimReaderClient> client;

  explicit MiniBed(std::size_t n_tags, std::uint64_t seed = 9) {
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::random(rng);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    client.emplace(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                   gen2::ReaderConfig{}, world, channel, antennas, seed + 1);
  }
};

TEST(TagwatchConfig, Phase1RoundsPerAntennaScalesPhase1) {
  MiniBed bed(10);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(200);
  cfg.phase1_rounds_per_antenna = 3;
  TagwatchController ctl(cfg, *bed.client);
  const CycleReport r = ctl.run_cycle();
  // 2 antennas × 3 rounds, each reading all 10 tags.
  EXPECT_EQ(r.phase1_readings, 60u);
}

TEST(TagwatchConfig, ChargeComputeTimeAdvancesClock) {
  // With charging disabled, the inter-phase sim-time gap excludes the
  // host compute; with it enabled the gap includes it.  Both must report
  // a non-negative compute duration.
  for (const bool charge : {false, true}) {
    MiniBed bed(20, charge ? 21 : 22);
    TagwatchConfig cfg;
    cfg.phase2_duration = util::msec(500);
    cfg.charge_compute_time = charge;
    cfg.pinned_targets = {bed.world.tags()[0].epc};
    cfg.mobile_fraction_threshold = 0.5;
    TagwatchController ctl(cfg, *bed.client);
    ctl.run_cycles(3);
    const CycleReport r = ctl.run_cycle();
    EXPECT_GE(r.schedule_compute_ms, 0.0);
    ASSERT_TRUE(r.interphase_gap.has_value());
    EXPECT_GT(r.interphase_gap->count(), 0);
  }
}

TEST(TagwatchConfig, NaiveFallbackGuardInsideGreedy) {
  // The greedy plan for a single pinned target among random EPCs should be
  // one short-mask round covering only that tag — never costlier than the
  // naive single full-EPC round.
  MiniBed bed(30, 31);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(300);
  cfg.pinned_targets = {bed.world.tags()[4].epc};
  TagwatchController ctl(cfg, *bed.client);
  ctl.run_cycles(6);  // enough cycles for every static tag's model to mature
  const CycleReport r = ctl.run_cycle();
  ASSERT_FALSE(r.read_all_fallback);
  ASSERT_EQ(r.schedule.selections.size(), 1u);
  const InventoryCostModel model = InventoryCostModel::paper_fit();
  EXPECT_LE(r.schedule.estimated_cost_s, model.cost_seconds(1) + 1e-12);
  // The selected mask is far shorter than the 96-bit EPC.
  EXPECT_LT(r.schedule.selections[0].bitmask.mask.size(), 32u);
}

TEST(TagwatchConfig, ThresholdZeroAlwaysReadsAll) {
  MiniBed bed(10, 41);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(300);
  cfg.mobile_fraction_threshold = 0.0;
  cfg.pinned_targets = {bed.world.tags()[0].epc};
  TagwatchController ctl(cfg, *bed.client);
  const auto reports = ctl.run_cycles(4);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.read_all_fallback);
  }
}

TEST(TagwatchConfig, HistoryAccumulatesAcrossCycles) {
  MiniBed bed(8, 51);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(300);
  TagwatchController ctl(cfg, *bed.client);
  ctl.run_cycles(3);
  EXPECT_EQ(ctl.history().tag_count(), 8u);
  for (const auto& tag : bed.world.tags()) {
    const TagHistory* h = ctl.history().find(tag.epc);
    ASSERT_NE(h, nullptr);
    EXPECT_GT(h->total_readings, 3u);
  }
}

TEST(TagwatchConfig, EmptyWorldCyclesSafely) {
  MiniBed bed(0);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(200);
  TagwatchController ctl(cfg, *bed.client);
  const CycleReport r = ctl.run_cycle();
  EXPECT_TRUE(r.read_all_fallback);
  EXPECT_EQ(r.phase1_readings, 0u);
  EXPECT_EQ(r.phase2_readings, 0u);
  EXPECT_TRUE(r.scene.empty());
  EXPECT_FALSE(r.interphase_gap.has_value());
}

TEST(TagwatchConfig, Phase2PolicyTooShortClampsToFloor) {
  // A policy demanding 1 ms must be clamped up to the 100 ms floor.
  MiniBed bed(8, 71);
  TagwatchConfig cfg;
  cfg.mode = ScheduleMode::kReadAll;
  cfg.phase2_duration = util::sec(5);  // would apply without the policy
  cfg.phase2_policy = [](std::size_t, std::size_t) { return util::msec(1); };
  TagwatchController ctl(cfg, *bed.client);
  const CycleReport r = ctl.run_cycle();
  EXPECT_GE(r.phase2_duration, util::msec(100));
  // Well below the configured 5 s — the floor, plus at most a round or two
  // of overshoot past t_end.
  EXPECT_LT(r.phase2_duration, util::msec(400));
}

TEST(TagwatchConfig, Phase2PolicyTooLongClampsToCeiling) {
  // A policy demanding 10 minutes must be clamped down to the 60 s ceiling.
  MiniBed bed(4, 72);
  TagwatchConfig cfg;
  cfg.mode = ScheduleMode::kReadAll;
  cfg.phase2_duration = util::msec(200);
  cfg.phase2_policy = [](std::size_t, std::size_t) { return util::sec(600); };
  TagwatchController ctl(cfg, *bed.client);
  const CycleReport r = ctl.run_cycle();
  EXPECT_GE(r.phase2_duration, util::sec(60));
  EXPECT_LT(r.phase2_duration, util::sec(61));
}

TEST(TagwatchConfig, Phase2PolicyInRangePassesThrough) {
  MiniBed bed(8, 73);
  TagwatchConfig cfg;
  cfg.mode = ScheduleMode::kReadAll;
  cfg.phase2_duration = util::sec(5);
  std::size_t seen_targets = 0, seen_scene = 0;
  cfg.phase2_policy = [&](std::size_t targets, std::size_t scene) {
    seen_targets = targets;
    seen_scene = scene;
    return util::msec(250);
  };
  TagwatchController ctl(cfg, *bed.client);
  const CycleReport r = ctl.run_cycle();
  EXPECT_GE(r.phase2_duration, util::msec(250));
  EXPECT_LT(r.phase2_duration, util::msec(600));
  EXPECT_EQ(seen_scene, 8u);      // the policy sees the assessed scene...
  EXPECT_EQ(seen_targets, 8u);    // ...and the (read-all) target count
}

TEST(TagwatchConfig, ReadAllCyclesReportConsistentPhase2Counts) {
  // kReadAll (and fallback) cycles must satisfy the same accounting
  // invariant as selective ones: the per-tag Phase II counts sum to the
  // reported phase2_readings.
  MiniBed bed(12, 74);
  TagwatchConfig cfg;
  cfg.mode = ScheduleMode::kReadAll;
  cfg.phase2_duration = util::msec(500);
  TagwatchController ctl(cfg, *bed.client);
  for (const auto& r : ctl.run_cycles(3)) {
    EXPECT_TRUE(r.read_all_fallback);
    std::size_t summed = 0;
    for (const auto& [epc, n] : r.phase2_counts) summed += n;
    EXPECT_EQ(summed, r.phase2_readings);
    EXPECT_GT(r.phase2_readings, 0u);
  }
}

TEST(TagwatchConfig, FallbackCyclesReportConsistentPhase2Counts) {
  // Cold-start greedy cycles fall back to read-all; their accounting must
  // also balance, as must the selective cycles that follow.
  MiniBed bed(10, 75);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(500);
  cfg.pinned_targets = {bed.world.tags()[0].epc};
  TagwatchController ctl(cfg, *bed.client);
  const auto reports = ctl.run_cycles(5);
  EXPECT_TRUE(reports.front().read_all_fallback);
  bool saw_selective = false;
  for (const auto& r : reports) {
    std::size_t summed = 0;
    for (const auto& [epc, n] : r.phase2_counts) summed += n;
    EXPECT_EQ(summed, r.phase2_readings);
    saw_selective |= !r.read_all_fallback;
  }
  EXPECT_TRUE(saw_selective);
}

TEST(TagwatchConfig, SessionConfigurationRespected) {
  MiniBed bed(6, 61);
  TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(300);
  cfg.session = gen2::Session::kS2;
  TagwatchController ctl(cfg, *bed.client);
  const CycleReport r = ctl.run_cycle();
  EXPECT_GT(r.phase1_readings, 0u);
  EXPECT_GT(r.phase2_readings, 0u);
}

}  // namespace
}  // namespace tagwatch::core
