// TagwatchController resilience: retry with backoff on the reader clock,
// partial-report salvage, antenna quarantine, the degraded read-all state
// machine, the per-cycle watchdog, and bit-exact replay of faulty runs.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "core/metrics.hpp"
#include "core/tagwatch.hpp"
#include "llrp/fault_injection.hpp"
#include "llrp/recording_reader_client.hpp"
#include "llrp/replay_reader_client.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

namespace tagwatch::core {
namespace {

/// Sim world + fault injector + (optional) recorder, ready for a controller.
struct ResilienceBed {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, 5, 0}, 8.0}};
  std::optional<llrp::SimReaderClient> sim;
  std::optional<llrp::FaultInjectingReaderClient> faulty;
  std::optional<llrp::RecordingReaderClient> recorder;

  explicit ResilienceBed(llrp::FaultPlan plan, std::size_t n_tags = 12,
                         std::size_t n_movers = 1, std::uint64_t seed = 33,
                         bool record = false) {
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::random(rng);
      if (i < n_movers) {
        t.motion = std::make_shared<sim::CircularTrack>(
            util::Vec3{0.5, 0.5, 0}, 0.2, 0.7, static_cast<double>(i));
      } else {
        t.motion = std::make_shared<sim::StaticMotion>(
            util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      }
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    sim.emplace(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                gen2::ReaderConfig{}, world, channel, antennas, seed + 1);
    faulty.emplace(*sim, std::move(plan));
    if (record) recorder.emplace(*faulty);
  }

  llrp::ReaderClient& client() {
    return recorder ? static_cast<llrp::ReaderClient&>(*recorder)
                    : static_cast<llrp::ReaderClient&>(*faulty);
  }
};

/// Short cycles, no jitter: backoff charges are exactly the policy values.
TagwatchConfig exact_config() {
  TagwatchConfig cfg;
  cfg.phase2_duration = util::sec(1);
  cfg.resilience.retry.jitter_fraction = 0.0;
  return cfg;
}

TEST(Resilience, RetriesRecoverFromTransientTimeouts) {
  // Execute #0 is Phase I; fail it once, succeed on the retry.
  llrp::FaultPlan plan;
  plan.scripted = {{0, llrp::ReaderErrorKind::kTimeout, 0}};
  ResilienceBed bed(plan);
  TagwatchController ctl(exact_config(), bed.client());

  const CycleReport r = ctl.run_cycle();
  EXPECT_EQ(r.execute_failures, 1u);
  EXPECT_EQ(r.retries, 1u);
  EXPECT_EQ(r.backoff_time, util::msec(20));  // initial_backoff, no jitter.
  // The retried Phase I still produced a scene.
  EXPECT_GT(r.scene.size(), 0u);
  EXPECT_EQ(ctl.health().timeouts, 1u);
  EXPECT_EQ(ctl.health().retries, 1u);
  EXPECT_EQ(ctl.health().giveups, 0u);
  EXPECT_EQ(ctl.health().backoff_total, util::msec(20));
  EXPECT_FALSE(ctl.degraded());
}

TEST(Resilience, BackoffGrowsExponentiallyAndIsChargedToTheReaderClock) {
  // Fail the first two attempts of Phase I: waits are 20 ms then 40 ms.
  llrp::FaultPlan plan;
  plan.scripted = {{0, llrp::ReaderErrorKind::kTimeout, 0},
                   {1, llrp::ReaderErrorKind::kProtocolError, 0}};
  ResilienceBed bed(plan, 12, 1, 33, /*record=*/true);
  TagwatchController ctl(exact_config(), bed.client());

  const CycleReport r = ctl.run_cycle();
  EXPECT_EQ(r.retries, 2u);
  EXPECT_EQ(r.backoff_time, util::msec(60));
  EXPECT_EQ(ctl.health().timeouts, 1u);
  EXPECT_EQ(ctl.health().protocol_errors, 1u);

  // The waits went through ReaderClient::advance(), so they are journaled:
  // that is what "charged to the reader clock" means, and what makes the
  // recording replayable.
  std::vector<util::SimDuration> advances;
  for (const llrp::JournalEntry& e : bed.recorder->journal().entries()) {
    if (e.kind == llrp::JournalEntry::Kind::kAdvance) {
      advances.push_back(e.advance);
    }
  }
  ASSERT_GE(advances.size(), 2u);
  EXPECT_EQ(advances[0], util::msec(20));
  EXPECT_EQ(advances[1], util::msec(40));
}

TEST(Resilience, BackoffIsCappedAtMaxBackoff) {
  llrp::FaultPlan plan;
  for (std::size_t i = 0; i < 5; ++i) {
    plan.scripted.push_back({i, llrp::ReaderErrorKind::kTimeout, 0});
  }
  ResilienceBed bed(plan);
  TagwatchConfig cfg = exact_config();
  cfg.resilience.retry.max_attempts = 6;
  cfg.resilience.retry.initial_backoff = util::msec(100);
  cfg.resilience.retry.max_backoff = util::msec(250);
  TagwatchController ctl(cfg, bed.client());

  const CycleReport r = ctl.run_cycle();
  // Waits: 100, 200, 250, 250, 250 (capped).
  EXPECT_EQ(r.retries, 5u);
  EXPECT_EQ(r.backoff_time, util::msec(1050));
}

TEST(Resilience, PartialReportSalvagesWithoutRetrying) {
  llrp::FaultPlan plan;
  plan.scripted = {{0, llrp::ReaderErrorKind::kPartialReport, 0}};
  plan.failure_keep_fraction = 0.5;
  ResilienceBed bed(plan);
  TagwatchController ctl(exact_config(), bed.client());

  const CycleReport r = ctl.run_cycle();
  // The partial's salvage became the Phase I scene — no retry, no giveup.
  EXPECT_EQ(r.retries, 0u);
  EXPECT_GT(r.salvaged_readings, 0u);
  EXPECT_GT(r.scene.size(), 0u);
  EXPECT_EQ(ctl.health().partial_reports, 1u);
  EXPECT_EQ(ctl.health().partial_salvages, 1u);
  EXPECT_EQ(ctl.health().salvaged_readings, r.salvaged_readings);
  EXPECT_EQ(ctl.health().giveups, 0u);
}

TEST(Resilience, LostAntennaIsQuarantinedOutOfRospecConstruction) {
  llrp::FaultPlan plan;
  plan.scripted = {{0, llrp::ReaderErrorKind::kAntennaLost, 1}};
  ResilienceBed bed(plan);
  TagwatchController ctl(exact_config(), bed.client());

  const CycleReport first = ctl.run_cycle();
  EXPECT_EQ(ctl.health().antenna_losses, 1u);
  EXPECT_TRUE(ctl.quarantined_antennas().contains(1));
  EXPECT_EQ(first.quarantined_antennas, (std::vector<std::size_t>{1}));
  EXPECT_EQ(ctl.health().quarantined_antennas, 1u);
  // The immediate re-issue on the surviving port recovered the cycle.
  EXPECT_GT(first.scene.size(), 0u);
  EXPECT_EQ(ctl.health().giveups, 0u);

  // Later cycles never drive the dead port again: no more antenna faults.
  ctl.run_cycles(2);
  EXPECT_EQ(ctl.health().antenna_losses, 1u);
  EXPECT_EQ(bed.faulty->stats().injected_antenna_losses, 1u);
}

TEST(Resilience, ConsecutivePhase2FailuresDegradeThenHealthyCyclesRestore) {
  // Everything fails, with nothing salvageable, until the plan runs dry.
  llrp::FaultPlan plan;
  plan.execute_failure_probability = 1.0;
  plan.failure_keep_fraction = 0.0;
  ResilienceBed bed(plan);
  TagwatchConfig cfg = exact_config();
  cfg.resilience.degrade_after_failures = 2;  // K
  cfg.resilience.restore_after_healthy = 3;   // M
  TagwatchController ctl(cfg, bed.client());

  // K = 2 failing cycles: not degraded after the first, degraded after the
  // second.
  const CycleReport f1 = ctl.run_cycle();
  EXPECT_FALSE(f1.degraded_mode);
  EXPECT_FALSE(ctl.degraded());
  const CycleReport f2 = ctl.run_cycle();
  EXPECT_FALSE(f2.degraded_mode);  // Degradation applies from the NEXT cycle.
  EXPECT_TRUE(ctl.degraded());
  EXPECT_EQ(ctl.health().degraded_entries, 1u);

  // Reader heals: M healthy degraded cycles, then adaptive mode resumes.
  bed.faulty.emplace(*bed.sim, llrp::FaultPlan{});  // No more faults.
  const CycleReport d1 = ctl.run_cycle();
  EXPECT_TRUE(d1.degraded_mode);
  EXPECT_TRUE(d1.read_all_fallback);
  const CycleReport d2 = ctl.run_cycle();
  EXPECT_TRUE(d2.degraded_mode);
  const CycleReport d3 = ctl.run_cycle();
  EXPECT_TRUE(d3.degraded_mode);
  EXPECT_FALSE(ctl.degraded());  // Restored at the end of the M-th cycle.
  EXPECT_EQ(ctl.health().degraded_exits, 1u);
  EXPECT_EQ(ctl.health().degraded_cycles, 3u);

  const CycleReport back = ctl.run_cycle();
  EXPECT_FALSE(back.degraded_mode);
}

TEST(Resilience, WatchdogBudgetCutsACycleShort) {
  ResilienceBed bed(llrp::FaultPlan{});
  TagwatchConfig cfg = exact_config();
  cfg.phase2_duration = util::sec(30);
  cfg.resilience.cycle_watchdog_budget = util::msec(500);
  TagwatchController ctl(cfg, bed.client());

  const util::SimTime start = ctl.now();
  const CycleReport r = ctl.run_cycle();
  EXPECT_TRUE(r.watchdog_tripped);
  EXPECT_EQ(ctl.health().watchdog_trips, 1u);
  // The cycle ended within the budget plus one in-flight operation.
  EXPECT_LT(ctl.now() - start, util::sec(2));
}

TEST(Resilience, HealthCountersMatchTheInjectedSchedule) {
  llrp::FaultPlan plan;
  plan.seed = 11;
  plan.execute_failure_probability = 0.15;
  plan.weight_timeout = 1.0;
  plan.weight_disconnect = 0.5;
  plan.weight_protocol_error = 0.5;
  plan.weight_partial_report = 0.5;
  ResilienceBed bed(plan);
  TagwatchController ctl(exact_config(), bed.client());
  ctl.run_cycles(4);

  const llrp::InjectionStats& injected = bed.faulty->stats();
  const HealthMetrics& seen = ctl.health();
  EXPECT_GT(injected.injected_faults_total(), 0u);
  // Every injected fault surfaced exactly once in the controller's counts.
  EXPECT_EQ(seen.timeouts, injected.injected_timeouts);
  EXPECT_EQ(seen.disconnects, injected.injected_disconnects);
  EXPECT_EQ(seen.protocol_errors, injected.injected_protocol_errors);
  EXPECT_EQ(seen.partial_reports, injected.injected_partial_reports);
  EXPECT_EQ(seen.faults_total(), injected.injected_faults_total());
}

TEST(Resilience, FaultyRunRecordsAndReplaysBitExactly) {
  llrp::FaultPlan plan;
  plan.seed = 5;
  plan.execute_failure_probability = 0.2;
  plan.weight_disconnect = 0.5;
  plan.weight_partial_report = 0.5;
  plan.reading_drop_rate = 0.05;
  plan.phase_corruption_rate = 0.1;
  TagwatchConfig cfg;  // Jitter ON: replay must reproduce the draws too.
  cfg.phase2_duration = util::sec(1);

  ResilienceBed bed(plan, 12, 1, 33, /*record=*/true);
  TagwatchController live(cfg, bed.client());
  const auto recorded = live.run_cycles(5);
  ASSERT_GT(live.health().faults_total(), 0u);

  const llrp::ReaderJournal journal =
      llrp::ReaderJournal::from_csv(bed.recorder->journal().to_csv());
  llrp::ReplayReaderClient replay(journal);
  TagwatchController ctl(cfg, replay);
  const auto replayed = ctl.run_cycles(5);

  ASSERT_EQ(replayed.size(), recorded.size());
  for (std::size_t c = 0; c < recorded.size(); ++c) {
    SCOPED_TRACE("cycle " + std::to_string(c));
    EXPECT_EQ(replayed[c].scene, recorded[c].scene);
    EXPECT_EQ(replayed[c].phase1_readings, recorded[c].phase1_readings);
    EXPECT_EQ(replayed[c].phase2_readings, recorded[c].phase2_readings);
    EXPECT_EQ(replayed[c].execute_failures, recorded[c].execute_failures);
    EXPECT_EQ(replayed[c].retries, recorded[c].retries);
    EXPECT_EQ(replayed[c].backoff_time, recorded[c].backoff_time);
    EXPECT_EQ(replayed[c].salvaged_readings, recorded[c].salvaged_readings);
    EXPECT_EQ(replayed[c].degraded_mode, recorded[c].degraded_mode);
    EXPECT_EQ(replayed[c].phase1_duration, recorded[c].phase1_duration);
    EXPECT_EQ(replayed[c].phase2_duration, recorded[c].phase2_duration);
  }
  // The cumulative health metrics agree counter for counter.
  const HealthMetrics& a = live.health();
  const HealthMetrics& b = ctl.health();
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.disconnects, b.disconnects);
  EXPECT_EQ(a.protocol_errors, b.protocol_errors);
  EXPECT_EQ(a.partial_reports, b.partial_reports);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.giveups, b.giveups);
  EXPECT_EQ(a.backoff_total, b.backoff_total);
  EXPECT_EQ(a.salvaged_readings, b.salvaged_readings);
  EXPECT_EQ(a.degraded_entries, b.degraded_entries);
  EXPECT_EQ(a.degraded_cycles, b.degraded_cycles);
}

TEST(Resilience, HealthMetricsFlowIntoPipelineMetrics) {
  llrp::FaultPlan plan;
  plan.scripted = {{0, llrp::ReaderErrorKind::kTimeout, 0}};
  ResilienceBed bed(plan);
  TagwatchController ctl(exact_config(), bed.client());
  const auto metrics = attach_metrics(ctl);
  ctl.run_cycles(2);

  const PipelineMetricsSnapshot snap = metrics->snapshot();
  EXPECT_EQ(snap.health.timeouts, 1u);
  EXPECT_EQ(snap.health.retries, 1u);
  EXPECT_EQ(snap.degraded_cycles, 0u);
  ASSERT_EQ(snap.cycles, 2u);
  EXPECT_EQ(snap.per_cycle[0].execute_failures, 1u);
  EXPECT_EQ(snap.per_cycle[0].retries, 1u);
  EXPECT_EQ(snap.per_cycle[1].execute_failures, 0u);
}

}  // namespace
}  // namespace tagwatch::core
