// Tests for motion models and the world container.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/motion.hpp"
#include "sim/world.hpp"
#include "util/circular.hpp"

namespace tagwatch::sim {
namespace {

using util::Vec3;
using util::msec;
using util::sec;
using util::SimTime;

TEST(StaticMotion, NeverMoves) {
  StaticMotion m({1.0, 2.0, 3.0});
  EXPECT_EQ(m.position(SimTime{0}), (Vec3{1.0, 2.0, 3.0}));
  EXPECT_EQ(m.position(SimTime{0} + sec(100)), (Vec3{1.0, 2.0, 3.0}));
  EXPECT_FALSE(m.is_mobile());
  EXPECT_FALSE(m.moved_between(SimTime{0}, SimTime{0} + sec(10)));
}

TEST(CircularTrack, PaperTrainParameters) {
  // §7.1: toy train, r = 20 cm, 0.7 m/s.
  CircularTrack train({0, 0, 0}, 0.2, 0.7);
  EXPECT_TRUE(train.is_mobile());
  // Always on the circle.
  for (int ms = 0; ms <= 5000; ms += 250) {
    const Vec3 p = train.position(SimTime{0} + msec(ms));
    EXPECT_NEAR(std::hypot(p.x, p.y), 0.2, 1e-9);
  }
  // Period = 2πr/v ≈ 1.795 s: position repeats.
  const double period_s = util::kTwoPi * 0.2 / 0.7;
  const Vec3 a = train.position(SimTime{0});
  const Vec3 b = train.position(util::from_seconds(period_s));
  EXPECT_NEAR(util::distance(a, b), 0.0, 1e-4);
}

TEST(CircularTrack, SpeedMatchesArcLength) {
  CircularTrack track({0, 0, 0}, 0.5, 1.0);
  const Vec3 p0 = track.position(SimTime{0});
  const Vec3 p1 = track.position(msec(10));
  EXPECT_NEAR(util::distance(p0, p1) / 0.01, 1.0, 0.01);  // ~1 m/s chord speed
}

TEST(CircularTrack, ZeroSpeedIsStationaryTurntable) {
  CircularTrack stopped({0, 0, 0}, 0.3, 0.0, 1.0);
  EXPECT_FALSE(stopped.is_mobile());
  EXPECT_EQ(stopped.position(SimTime{0}), stopped.position(sec(9)));
}

TEST(CircularTrack, RejectsBadRadius) {
  EXPECT_THROW(CircularTrack({0, 0, 0}, 0.0, 1.0), std::invalid_argument);
}

TEST(LinearConveyor, TransitsAndStops) {
  LinearConveyor belt({0, 0, 0}, {1.0, 0, 0}, sec(10), 4.0);
  EXPECT_EQ(belt.position(sec(5)), (Vec3{0, 0, 0}));       // before start
  EXPECT_EQ(belt.position(sec(12)), (Vec3{2.0, 0, 0}));    // mid-transit
  EXPECT_EQ(belt.position(sec(14)), (Vec3{4.0, 0, 0}));    // arrival
  EXPECT_EQ(belt.position(sec(100)), (Vec3{4.0, 0, 0}));   // parked after
  EXPECT_EQ(belt.end_time(), sec(14));
  EXPECT_TRUE(belt.is_mobile());
}

TEST(LinearConveyor, RejectsDegenerate) {
  EXPECT_THROW(LinearConveyor({0, 0, 0}, {0, 0, 0}, SimTime{0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(LinearConveyor({0, 0, 0}, {1, 0, 0}, SimTime{0}, 0.0),
               std::invalid_argument);
}

TEST(RandomWaypoint, StaysInBoxAndMoves) {
  util::Rng rng(21);
  RandomWaypoint walker({0, 0, 0}, {4, 3, 0}, 1.2, sec(60), rng);
  EXPECT_TRUE(walker.is_mobile());
  Vec3 prev = walker.position(SimTime{0});
  bool moved = false;
  for (int ms = 0; ms <= 60000; ms += 500) {
    const Vec3 p = walker.position(msec(ms));
    EXPECT_GE(p.x, -1e-9);
    EXPECT_LE(p.x, 4.0 + 1e-9);
    EXPECT_GE(p.y, -1e-9);
    EXPECT_LE(p.y, 3.0 + 1e-9);
    if (util::distance(p, prev) > 0.01) moved = true;
    prev = p;
  }
  EXPECT_TRUE(moved);
}

TEST(RandomWaypoint, DeterministicFunctionOfTime) {
  util::Rng rng(22);
  RandomWaypoint walker({0, 0, 0}, {4, 3, 0}, 1.0, sec(30), rng);
  const Vec3 a = walker.position(sec(7));
  const Vec3 b = walker.position(sec(20));
  // Re-querying earlier times gives identical answers (pure function).
  EXPECT_EQ(walker.position(sec(7)), a);
  EXPECT_EQ(walker.position(sec(20)), b);
}

TEST(RandomWaypoint, SpeedNeverExceedsConfigured) {
  util::Rng rng(23);
  const double speed = 1.5;
  RandomWaypoint walker({0, 0, 0}, {5, 5, 0}, speed, sec(30), rng);
  for (int ms = 0; ms < 30000; ms += 100) {
    const Vec3 a = walker.position(msec(ms));
    const Vec3 b = walker.position(msec(ms + 100));
    EXPECT_LE(util::distance(a, b), speed * 0.1 + 1e-6);
  }
}

TEST(StepDisplacement, JumpsOnceAtStepTime) {
  // §7.1 sensitivity experiment: displace by 1–5 cm at a known instant.
  StepDisplacement step({1, 1, 0}, {0.03, 0, 0}, sec(10));
  EXPECT_EQ(step.position(sec(9)), (Vec3{1, 1, 0}));
  EXPECT_EQ(step.position(sec(10)), (Vec3{1.03, 1, 0}));
  EXPECT_EQ(step.position(sec(99)), (Vec3{1.03, 1, 0}));
  EXPECT_TRUE(step.moved_between(sec(9), sec(11)));
  EXPECT_FALSE(step.moved_between(sec(11), sec(99)));
}

// ----------------------------------------------------------------- World

sim::SimTag make_tag(std::uint64_t serial, Vec3 pos) {
  sim::SimTag t;
  t.epc = util::Epc::from_serial(serial);
  t.motion = std::make_shared<StaticMotion>(pos);
  return t;
}

TEST(World, AddFindRemove) {
  World w;
  const auto idx = w.add_tag(make_tag(1, {0, 0, 0}));
  EXPECT_EQ(idx, 0u);
  w.add_tag(make_tag(2, {1, 0, 0}));
  EXPECT_EQ(w.tags().size(), 2u);
  EXPECT_EQ(w.find_tag(util::Epc::from_serial(2)), 1u);
  EXPECT_TRUE(w.remove_tag(util::Epc::from_serial(1)));
  EXPECT_FALSE(w.remove_tag(util::Epc::from_serial(1)));
  // Index is repaired after removal.
  EXPECT_EQ(w.find_tag(util::Epc::from_serial(2)), 0u);
}

TEST(World, MobilityEpochTracksMotionFlipsWithoutStructuralChange) {
  World w;
  w.add_tag(make_tag(1, {0, 0, 0}));
  w.add_tag(make_tag(2, {1, 0, 0}));
  const std::uint64_t structure_before = w.structure_epoch();
  EXPECT_EQ(w.mobility_epoch(), 0u);

  // A stationary tag starts moving: observable on mobility_epoch() alone —
  // the structure epoch must NOT move (tag indexes stay valid).
  EXPECT_TRUE(w.set_tag_motion(
      util::Epc::from_serial(1),
      std::make_shared<CircularTrack>(util::Vec3{0, 0, 0}, 0.2, 0.5, 0.0)));
  EXPECT_EQ(w.mobility_epoch(), 1u);
  EXPECT_EQ(w.structure_epoch(), structure_before);

  // The mover comes back to rest: another flip, another bump.
  EXPECT_TRUE(w.set_tag_motion(
      util::Epc::from_serial(1),
      std::make_shared<StaticMotion>(util::Vec3{0.1, 0, 0})));
  EXPECT_EQ(w.mobility_epoch(), 2u);
  EXPECT_EQ(w.structure_epoch(), structure_before);

  // Unknown tags and null motion leave the epoch alone.
  EXPECT_FALSE(w.set_tag_motion(
      util::Epc::from_serial(9),
      std::make_shared<StaticMotion>(util::Vec3{0, 0, 0})));
  EXPECT_THROW(w.set_tag_motion(util::Epc::from_serial(2), nullptr),
               std::invalid_argument);
  EXPECT_EQ(w.mobility_epoch(), 2u);

  // Structural churn (remove) bumps structure, not mobility.
  EXPECT_TRUE(w.remove_tag(util::Epc::from_serial(2)));
  EXPECT_GT(w.structure_epoch(), structure_before);
  EXPECT_EQ(w.mobility_epoch(), 2u);
}

TEST(World, RejectsDuplicatesAndNullMotion) {
  World w;
  w.add_tag(make_tag(1, {0, 0, 0}));
  EXPECT_THROW(w.add_tag(make_tag(1, {1, 0, 0})), std::invalid_argument);
  sim::SimTag bad;
  bad.epc = util::Epc::from_serial(9);
  EXPECT_THROW(w.add_tag(std::move(bad)), std::invalid_argument);
}

TEST(World, PresenceWindows) {
  World w;
  auto tag = make_tag(1, {0, 0, 0});
  tag.arrives = sec(10);
  tag.departs = sec(20);
  const auto idx = w.add_tag(std::move(tag));
  EXPECT_FALSE(w.tag_present(idx, sec(5)));
  EXPECT_TRUE(w.tag_present(idx, sec(10)));
  EXPECT_TRUE(w.tag_present(idx, sec(19)));
  EXPECT_FALSE(w.tag_present(idx, sec(20)));
}

TEST(World, ClockAdvances) {
  World w;
  EXPECT_EQ(w.now(), SimTime{0});
  w.advance(msec(5));
  EXPECT_EQ(w.now(), msec(5));
  w.advance_to(msec(3));  // no-op backwards
  EXPECT_EQ(w.now(), msec(5));
  w.advance_to(msec(9));
  EXPECT_EQ(w.now(), msec(9));
  EXPECT_THROW(w.advance(msec(-1)), std::invalid_argument);
}

TEST(World, ReflectorsTrackTheirMotion) {
  World w;
  w.add_reflector(
      {std::make_shared<LinearConveyor>(Vec3{0, 0, 0}, Vec3{1, 0, 0},
                                        SimTime{0}, 10.0),
       0.25});
  const auto at0 = w.reflectors_at(SimTime{0});
  const auto at2 = w.reflectors_at(sec(2));
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_EQ(at0[0].position, (Vec3{0, 0, 0}));
  EXPECT_EQ(at2[0].position, (Vec3{2, 0, 0}));
  EXPECT_DOUBLE_EQ(at2[0].reflection_coefficient, 0.25);
}

}  // namespace
}  // namespace tagwatch::sim
