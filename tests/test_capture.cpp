// Tests for the capture effect (strongest colliding tag decodes).
#include <gtest/gtest.h>

#include <map>

#include "gen2/reader.hpp"
#include "util/circular.hpp"

namespace tagwatch::gen2 {
namespace {

struct CaptureFixture {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::optional<Gen2Reader> reader;

  CaptureFixture(double capture_prob, std::uint64_t seed = 191) {
    util::Rng rng(seed);
    // One tag right under the antenna, the rest far away: under capture,
    // the near tag wins collisions disproportionately.
    for (std::size_t i = 0; i < 20; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(i + 1);
      const double d = (i == 0) ? 0.5 : 4.0 + 0.1 * static_cast<double>(i);
      t.motion = std::make_shared<sim::StaticMotion>(util::Vec3{d, 0, 1});
      world.add_tag(std::move(t));
    }
    ReaderConfig cfg;
    cfg.capture_probability = capture_prob;
    reader.emplace(LinkTiming(LinkParams::max_throughput()), cfg, world,
                   channel, std::vector<rf::Antenna>{{1, {0, 0, 1}, 8.0}},
                   util::Rng(seed + 1));
  }
};

TEST(CaptureEffect, StillReadsEveryone) {
  CaptureFixture fx(0.8);
  std::map<std::string, int> counts;
  const RoundStats stats = fx.reader->run_inventory_round(
      QueryCommand{},
      [&counts](const rf::TagReading& r) { ++counts[r.epc.to_hex()]; });
  EXPECT_EQ(stats.success_slots, 20u);
  EXPECT_EQ(counts.size(), 20u);
  for (const auto& [epc, n] : counts) EXPECT_EQ(n, 1) << epc;
}

TEST(CaptureEffect, SpeedsUpInventory) {
  // Captured collisions convert wasted slots into reads.
  CaptureFixture with(0.9), without(0.0);
  const RoundStats s_with =
      with.reader->run_inventory_round(QueryCommand{}, nullptr);
  const RoundStats s_without =
      without.reader->run_inventory_round(QueryCommand{}, nullptr);
  EXPECT_LT(s_with.collision_slots, s_without.collision_slots);
  EXPECT_LT(s_with.duration, s_without.duration);
}

TEST(CaptureEffect, NearTagWinsTheFirstCapturedSlot) {
  // With capture probability 1 and a Q=0 opening (everyone in slot 0),
  // the very first slot is captured by the nearest tag.
  CaptureFixture fx(1.0);
  QueryCommand q;
  q.q = 0;
  std::vector<std::string> order;
  fx.reader->run_inventory_round(q, [&order](const rf::TagReading& r) {
    order.push_back(r.epc.to_hex());
  });
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), util::Epc::from_serial(1).to_hex());
}

TEST(CaptureEffect, ZeroProbabilityMatchesPlainReader) {
  CaptureFixture a(0.0, 17), b(0.0, 17);
  const RoundStats sa = a.reader->run_inventory_round(QueryCommand{}, nullptr);
  const RoundStats sb = b.reader->run_inventory_round(QueryCommand{}, nullptr);
  EXPECT_EQ(sa.slots, sb.slots);
  EXPECT_EQ(sa.collision_slots, sb.collision_slots);
}

}  // namespace
}  // namespace tagwatch::gen2
