// util::TaskPool: the deterministic fork/join substrate under
// core::ParallelAssessor.  What matters is the contract parallel code
// leans on — every task runs exactly once, task i lands on executor
// i % thread_count, run() is a barrier, and exceptions cross it — not
// scheduling details.
#include "util/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace tagwatch::util {
namespace {

TEST(TaskPool, SingleThreadRunsInline) {
  TaskPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  // Inline execution is observable: tasks run in index order on the
  // caller, so a plain (unsynchronized) vector records 0..n-1.
  std::vector<std::size_t> order;
  pool.run(5, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(TaskPool, ZeroThreadsClampsToOne) {
  TaskPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::size_t ran = 0;
  pool.run(3, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 3u);
}

TEST(TaskPool, EveryTaskRunsExactlyOnce) {
  TaskPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::size_t kTasks = 97;  // Not a multiple of thread count.
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(TaskPool, RunIsABarrier) {
  TaskPool pool(3);
  std::atomic<std::size_t> done{0};
  for (int round = 0; round < 10; ++round) {
    pool.run(7, [&done](std::size_t) { ++done; });
    // If run() returned before the join barrier, a later check would
    // race; after it, the count is exact.
    EXPECT_EQ(done.load(), static_cast<std::size_t>(7 * (round + 1)));
  }
}

/// Identifies the executing thread without naming any thread type (this
/// test file is linted like the rest of the tree): a thread_local's
/// address is unique per live thread.
const void* executor_marker() {
  thread_local int marker = 0;
  return &marker;
}

TEST(TaskPool, TaskToExecutorMappingIsStatic) {
  // Task i must run on executor i % thread_count for any task count —
  // this is what makes sharded state safe to touch without locks.
  TaskPool pool(4);
  for (const std::size_t tasks : {std::size_t{1}, std::size_t{4},
                                  std::size_t{9}, std::size_t{64}}) {
    std::vector<const void*> seen(tasks);
    pool.run(tasks,
             [&seen](std::size_t i) { seen[i] = executor_marker(); });
    for (std::size_t i = 0; i < tasks; ++i) {
      for (std::size_t j = 0; j < tasks; ++j) {
        if (i % 4 == j % 4) {
          EXPECT_EQ(seen[i], seen[j]) << "tasks " << i << " and " << j;
        } else {
          EXPECT_NE(seen[i], seen[j]) << "tasks " << i << " and " << j;
        }
      }
    }
  }
}

TEST(TaskPool, CallerIsExecutorZero) {
  TaskPool pool(4);
  const void* caller = executor_marker();
  std::vector<const void*> seen(8);
  pool.run(8, [&seen](std::size_t i) { seen[i] = executor_marker(); });
  EXPECT_EQ(seen[0], caller);
  EXPECT_EQ(seen[4], caller);
  EXPECT_NE(seen[1], caller);
}

TEST(TaskPool, ExceptionCrossesTheBarrier) {
  TaskPool pool(2);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.run(10,
                        [&ran](std::size_t i) {
                          ++ran;
                          if (i == 3) {
                            throw std::runtime_error("task 3 failed");
                          }
                        }),
               std::runtime_error);
  // The remaining tasks still ran: a poisoned run never skips work.
  EXPECT_EQ(ran.load(), 10u);
  // The pool survives a throwing run.
  std::atomic<std::size_t> after{0};
  pool.run(4, [&after](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 4u);
}

TEST(TaskPool, ReusableAcrossManyGenerations) {
  TaskPool pool(4);
  std::vector<std::atomic<long>> sums(4);
  for (int round = 0; round < 200; ++round) {
    pool.run(16, [&sums](std::size_t i) {
      sums[i % 4] += static_cast<long>(i);
    });
  }
  const long total = std::accumulate(
      sums.begin(), sums.end(), 0L,
      [](long acc, const std::atomic<long>& s) { return acc + s.load(); });
  EXPECT_EQ(total, 200L * (15 * 16 / 2));
}

TEST(TaskPool, ZeroTasksIsANoOp) {
  TaskPool pool(3);
  bool ran = false;
  pool.run(0, [&ran](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace tagwatch::util
