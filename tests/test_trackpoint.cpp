// Tests for the TrackPoint trace generator (scaled-down scenarios).
#include <gtest/gtest.h>

#include "trace/trackpoint.hpp"

#include "util/stats.hpp"

namespace tagwatch::trace {
namespace {

TrackPointScenario small_scenario() {
  TrackPointScenario s;
  s.duration = util::sec(120);  // 2 minutes keeps tests fast
  s.conveyor_arrivals_per_min = 6.0;
  s.parked_slots = 6;
  s.parked_dwell_min = util::sec(30);
  s.parked_dwell_max = util::sec(90);
  return s;
}

TEST(TrackPoint, GeneratesPopulatedTrace) {
  const TraceResult result = generate_trackpoint_trace(small_scenario());
  EXPECT_GT(result.total_tags, 10u);
  EXPECT_GT(result.total_readings, 1000u);
  EXPECT_GE(result.peak_concurrent_movers, 1u);
  EXPECT_EQ(result.readings_per_minute.size(), 3u);
  // Total readings must equal the sum of per-tag counts.
  std::size_t sum = 0;
  for (const auto& t : result.per_tag) sum += t.readings;
  EXPECT_EQ(sum, result.total_readings);
}

TEST(TrackPoint, ParkedTagsDominateReadings) {
  // The paper's skew mechanism: parked tags hog the channel while conveyor
  // tags get only a handful of reads during their transit.
  const TraceResult result = generate_trackpoint_trace(small_scenario());
  ASSERT_FALSE(result.per_tag.empty());
  // per_tag is sorted descending: the top readers should be parked tags.
  std::size_t parked_in_top5 = 0;
  const std::size_t top5 = std::min<std::size_t>(5, result.per_tag.size());
  for (std::size_t i = 0; i < top5; ++i) {
    if (!result.per_tag[i].conveyor) ++parked_in_top5;
  }
  EXPECT_GE(parked_in_top5, 4u);

  // Median conveyor tag gets far fewer reads than median parked tag.
  std::vector<double> conveyor_counts, parked_counts;
  for (const auto& t : result.per_tag) {
    (t.conveyor ? conveyor_counts : parked_counts)
        .push_back(static_cast<double>(t.readings));
  }
  ASSERT_FALSE(conveyor_counts.empty());
  ASSERT_FALSE(parked_counts.empty());
  EXPECT_LT(util::median(conveyor_counts), util::median(parked_counts) / 5.0);
}

TEST(TrackPoint, FractionReadOverIsMonotone) {
  const TraceResult result = generate_trackpoint_trace(small_scenario());
  const double f10 = fraction_read_over(result, 10);
  const double f100 = fraction_read_over(result, 100);
  const double f1000 = fraction_read_over(result, 1000);
  EXPECT_GE(f10, f100);
  EXPECT_GE(f100, f1000);
  EXPECT_LE(f10, 1.0);
  EXPECT_GE(f1000, 0.0);
}

TEST(TrackPoint, DeterministicForFixedSeed) {
  TrackPointScenario s = small_scenario();
  s.duration = util::sec(30);
  const TraceResult a = generate_trackpoint_trace(s);
  const TraceResult b = generate_trackpoint_trace(s);
  EXPECT_EQ(a.total_readings, b.total_readings);
  EXPECT_EQ(a.total_tags, b.total_tags);
  s.seed = 43;
  const TraceResult c = generate_trackpoint_trace(s);
  EXPECT_NE(a.total_readings, c.total_readings);
}

}  // namespace
}  // namespace tagwatch::trace
