// Tests for the inventory-cost / IRR model (Eqn. 5–6) and its fitting.
#include <gtest/gtest.h>

#include <vector>

#include "core/rate_model.hpp"
#include "util/rng.hpp"

namespace tagwatch::core {
namespace {

TEST(InventoryCostModel, PaperFitValues) {
  const auto m = InventoryCostModel::paper_fit();
  EXPECT_DOUBLE_EQ(m.tau0_seconds(), 0.019);
  EXPECT_DOUBLE_EQ(m.taubar_seconds(), 0.00018);
  // C(1) = τ0 + τ̄.
  EXPECT_NEAR(m.cost_seconds(1), 0.01918, 1e-9);
}

TEST(InventoryCostModel, MatchesPaperEquation) {
  const auto m = InventoryCostModel::paper_fit();
  // C(n) = τ0 + n·e·τ̄·ln n.
  const double expected40 =
      0.019 + 40.0 * std::numbers::e * 0.00018 * std::log(40.0);
  EXPECT_NEAR(m.cost_seconds(40), expected40, 1e-12);
  // Paper's headline: IRR drops by ~84% from n=1 to n≈40.
  const double drop = 1.0 - m.irr_hz(40) / m.irr_hz(1);
  EXPECT_NEAR(drop, 0.76, 0.1);
}

TEST(InventoryCostModel, IrrMonotonicallyDecreases) {
  const auto m = InventoryCostModel::paper_fit();
  double prev = m.irr_hz(1);
  for (std::size_t n = 2; n <= 400; ++n) {
    const double irr = m.irr_hz(n);
    EXPECT_LT(irr, prev) << "n=" << n;
    prev = irr;
  }
}

TEST(InventoryCostModel, CostMonotonicallyIncreases) {
  const auto m = InventoryCostModel::paper_fit();
  double prev = m.cost_seconds(0);
  for (std::size_t n = 1; n <= 400; ++n) {
    EXPECT_GT(m.cost_seconds(n), prev);
    prev = m.cost_seconds(n);
  }
}

TEST(InventoryCostModel, RegressorSpecialCases) {
  EXPECT_DOUBLE_EQ(InventoryCostModel::regressor(0), 0.0);
  EXPECT_DOUBLE_EQ(InventoryCostModel::regressor(1), 1.0);
  EXPECT_NEAR(InventoryCostModel::regressor(2),
              2.0 * std::numbers::e * std::log(2.0), 1e-12);
}

TEST(InventoryCostModel, RejectsBadParameters) {
  EXPECT_THROW(InventoryCostModel(-0.1, 0.001), std::invalid_argument);
  EXPECT_THROW(InventoryCostModel(0.01, 0.0), std::invalid_argument);
}

TEST(InventoryCostModel, FitRecoversKnownParameters) {
  const InventoryCostModel truth(0.019, 0.00018);
  std::vector<std::size_t> ns;
  std::vector<util::SimDuration> durations;
  util::Rng rng(41);
  for (std::size_t n = 1; n <= 40; ++n) {
    for (int rep = 0; rep < 5; ++rep) {
      ns.push_back(n);
      const double noisy = truth.cost_seconds(n) * rng.uniform(0.97, 1.03);
      durations.push_back(util::from_seconds(noisy));
    }
  }
  const auto fitted = InventoryCostModel::fit(ns, durations);
  EXPECT_NEAR(fitted.tau0_seconds(), 0.019, 0.002);
  EXPECT_NEAR(fitted.taubar_seconds(), 0.00018, 0.00002);
  EXPECT_GT(fitted.fit_r_squared(), 0.95);
}

TEST(InventoryCostModel, FitRejectsTooFewSamples) {
  std::vector<std::size_t> ns{3};
  std::vector<util::SimDuration> ds{util::msec(25)};
  EXPECT_THROW(InventoryCostModel::fit(ns, ds), std::invalid_argument);
}

TEST(InventoryCostModel, CostDurationRoundTrip) {
  const auto m = InventoryCostModel::paper_fit();
  EXPECT_NEAR(util::to_seconds(m.cost(25)), m.cost_seconds(25), 1e-6);
}

}  // namespace
}  // namespace tagwatch::core
