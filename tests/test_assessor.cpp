// Tests for the Phase-I motion assessor.
#include <gtest/gtest.h>

#include "core/assessor.hpp"
#include "util/circular.hpp"
#include "util/rng.hpp"

namespace tagwatch::core {
namespace {

AssessorConfig fast_config() {
  AssessorConfig c;
  c.detector.phase_mog.trust_count = 5;
  return c;
}

rf::TagReading reading(std::uint64_t serial, double phase, util::SimTime t,
                       rf::AntennaId antenna = 1) {
  rf::TagReading r;
  r.epc = util::Epc::from_serial(serial);
  r.antenna = antenna;
  r.channel = 0;
  r.phase_rad = util::wrap_to_2pi(phase);
  r.rssi_dbm = -55.0;
  r.timestamp = t;
  return r;
}

TEST(MotionAssessor, NewTagsArePresumedMobile) {
  MotionAssessor a(fast_config());
  a.begin_window();
  a.ingest(reading(1, 1.0, util::msec(10)));
  const auto mobile = a.mobile_tags(util::msec(20));
  ASSERT_EQ(mobile.size(), 1u);
  EXPECT_EQ(mobile[0], util::Epc::from_serial(1));
}

TEST(MotionAssessor, StationaryTagConvergesToNotMobile) {
  MotionAssessor a(fast_config());
  util::Rng rng(81);
  util::SimTime t{0};
  // Train across several windows with stable phase.
  for (int w = 0; w < 10; ++w) {
    a.begin_window();
    for (int i = 0; i < 10; ++i) {
      t += util::msec(20);
      a.ingest(reading(1, rng.normal(2.0, 0.05), t));
    }
    a.assess(t);
  }
  a.begin_window();
  t += util::msec(20);
  a.ingest(reading(1, rng.normal(2.0, 0.05), t));
  EXPECT_TRUE(a.mobile_tags(t).empty());
}

TEST(MotionAssessor, MovedTagFlagsMobileAgain) {
  MotionAssessor a(fast_config());
  util::Rng rng(82);
  util::SimTime t{0};
  for (int w = 0; w < 10; ++w) {
    a.begin_window();
    for (int i = 0; i < 10; ++i) {
      t += util::msec(20);
      a.ingest(reading(1, rng.normal(2.0, 0.05), t));
    }
    a.assess(t);
  }
  // Tag displaced: phase jumps ~1 rad.
  a.begin_window();
  t += util::msec(20);
  a.ingest(reading(1, rng.normal(3.0, 0.05), t));
  const auto mobile = a.mobile_tags(t);
  ASSERT_EQ(mobile.size(), 1u);
}

TEST(MotionAssessor, OnlyWindowReadingsVote) {
  MotionAssessor a(fast_config());
  util::SimTime t{0};
  // Reading outside any window trains but does not vote.
  a.ingest(reading(1, 1.0, t));
  a.begin_window();
  const auto assessments = a.assess(t);
  EXPECT_TRUE(assessments.empty());  // tag had no window readings
  EXPECT_EQ(a.tracked_count(), 1u);  // but it is tracked
}

TEST(MotionAssessor, AssessmentCountsVotes) {
  MotionAssessor a(fast_config());
  util::Rng rng(83);
  util::SimTime t{0};
  for (int w = 0; w < 10; ++w) {
    a.begin_window();
    for (int i = 0; i < 10; ++i) {
      t += util::msec(20);
      a.ingest(reading(1, rng.normal(2.0, 0.05), t));
    }
    a.assess(t);
  }
  a.begin_window();
  t += util::msec(20);
  a.ingest(reading(1, rng.normal(2.0, 0.05), t));  // stationary vote
  t += util::msec(20);
  a.ingest(reading(1, 4.0, t));  // moving vote
  const auto assessments = a.assess(t);
  ASSERT_EQ(assessments.size(), 1u);
  EXPECT_EQ(assessments[0].window_readings, 2u);
  EXPECT_EQ(assessments[0].moving_votes, 1u);
  EXPECT_TRUE(assessments[0].mobile);  // threshold = 1 vote
}

TEST(MotionAssessor, ForgetsLongGoneTags) {
  AssessorConfig cfg = fast_config();
  cfg.forget_after = util::sec(5);
  MotionAssessor a(cfg);
  a.begin_window();
  a.ingest(reading(1, 1.0, util::msec(100)));
  a.ingest(reading(2, 1.0, util::msec(100)));
  a.assess(util::msec(200));
  EXPECT_EQ(a.tracked_count(), 2u);
  // Tag 2 keeps reporting; tag 1 disappears for > forget_after.
  a.begin_window();
  a.ingest(reading(2, 1.0, util::sec(8)));
  a.assess(util::sec(8));
  EXPECT_EQ(a.tracked_count(), 1u);
  EXPECT_EQ(a.detector_for(util::Epc::from_serial(1)), nullptr);
  EXPECT_NE(a.detector_for(util::Epc::from_serial(2)), nullptr);
}

TEST(MotionAssessor, MultipleTagsIndependent) {
  MotionAssessor a(fast_config());
  util::Rng rng(84);
  util::SimTime t{0};
  for (int w = 0; w < 10; ++w) {
    a.begin_window();
    for (int i = 0; i < 10; ++i) {
      t += util::msec(20);
      a.ingest(reading(1, rng.normal(2.0, 0.05), t));   // static tag
      a.ingest(reading(2, rng.uniform(0.0, 6.28), t));  // mover
    }
    a.assess(t);
  }
  a.begin_window();
  t += util::msec(20);
  a.ingest(reading(1, rng.normal(2.0, 0.05), t));
  a.ingest(reading(2, rng.uniform(0.0, 6.28), t));
  const auto mobile = a.mobile_tags(t);
  ASSERT_EQ(mobile.size(), 1u);
  EXPECT_EQ(mobile[0], util::Epc::from_serial(2));
}

TEST(MotionAssessor, AssessIsCachedAndIdempotentPerWindow) {
  // Regression: a second assess() (e.g. via mobile_tags()) after the
  // window closed used to re-apply forget_after eviction at the later
  // clock, dropping tags the window did assess and returning a different
  // (eventually empty) result.  The window result must be cached.
  AssessorConfig cfg = fast_config();
  cfg.forget_after = util::sec(5);
  MotionAssessor a(cfg);
  a.begin_window();
  a.ingest(reading(1, 1.0, util::msec(100)));
  const auto first = a.assess(util::msec(200));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_TRUE(first[0].mobile);  // new tag: presumed mobile

  // Re-query long past forget_after: same cached result, no re-eviction.
  const auto second = a.assess(util::sec(60));
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].epc, first[0].epc);
  EXPECT_EQ(second[0].window_readings, first[0].window_readings);
  EXPECT_EQ(second[0].moving_votes, first[0].moving_votes);
  EXPECT_EQ(second[0].mobile, first[0].mobile);
  EXPECT_EQ(a.mobile_tags(util::sec(60)).size(), 1u);
  EXPECT_EQ(a.tracked_count(), 1u);

  // The next window starts fresh: the cache is invalidated.
  a.begin_window();
  EXPECT_TRUE(a.assess(util::sec(60)).empty());
}

TEST(MotionAssessor, MobileTagsAfterAssessSeesTheSameWindow) {
  // assess() followed by mobile_tags() in the same window must agree.
  MotionAssessor a(fast_config());
  a.begin_window();
  a.ingest(reading(7, 1.0, util::msec(10)));
  const auto assessments = a.assess(util::msec(20));
  ASSERT_EQ(assessments.size(), 1u);
  const auto mobile = a.mobile_tags(util::msec(20));
  ASSERT_EQ(mobile.size(), 1u);
  EXPECT_EQ(mobile[0], util::Epc::from_serial(7));
}

TEST(MotionAssessor, VoteThresholdConfigurable) {
  AssessorConfig cfg = fast_config();
  cfg.mobile_vote_threshold = 3;
  MotionAssessor a(cfg);
  a.begin_window();
  util::SimTime t{0};
  // Two unexplained readings: below the 3-vote threshold.
  a.ingest(reading(1, 1.0, t));
  a.ingest(reading(1, 3.0, t + util::msec(1)));
  const auto assessments = a.assess(t + util::msec(2));
  ASSERT_EQ(assessments.size(), 1u);
  EXPECT_EQ(assessments[0].moving_votes, 2u);
  EXPECT_FALSE(assessments[0].mobile);
}

}  // namespace
}  // namespace tagwatch::core
