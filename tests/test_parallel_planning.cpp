// Differential tests for parallel Phase-II planning: candidate generation
// sharded across util::TaskPool and the SIMD kernel dispatch must both be
// invisible in the output.  Candidate tables, greedy-cover schedules and
// incremental-planner plans are compared for byte-identity against the
// serial scalar oracle at every thread count and every available ISA.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <vector>

#include "core/bitmask.hpp"
#include "core/incremental_planner.hpp"
#include "core/setcover.hpp"
#include "util/epc.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/task_pool.hpp"

namespace tagwatch::core {
namespace {

/// Restores the entry ISA when a test that repoints the kernel table
/// exits (pass or fail), so test order can never leak an ISA change —
/// including the forced-scalar pin of a TAGWATCH_TEST_FORCE_SCALAR run.
struct IsaGuard {
  util::simd::Isa saved = util::simd::active_isa();
  ~IsaGuard() { util::simd::set_active_isa(saved); }
};

std::vector<util::Epc> random_scene(std::size_t n, util::Rng& rng) {
  std::map<util::Epc, bool> uniq;
  while (uniq.size() < n) uniq.emplace(util::Epc::random(rng), false);
  std::vector<util::Epc> out;
  out.reserve(n);
  for (const auto& [epc, unused] : uniq) out.push_back(epc);
  return out;
}

util::IndicatorBitmap random_targets(std::size_t scene_size,
                                     std::size_t n_targets, util::Rng& rng) {
  util::IndicatorBitmap targets(scene_size);
  while (targets.count() < n_targets) {
    targets.set(rng.below(static_cast<std::uint32_t>(scene_size)));
  }
  return targets;
}

void expect_candidates_identical(const std::vector<BitmaskCandidate>& got,
                                 const std::vector<BitmaskCandidate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].bitmask, want[i].bitmask) << "row " << i;
    EXPECT_EQ(got[i].coverage, want[i].coverage) << "row " << i;
    EXPECT_EQ(got[i].targets_covered, want[i].targets_covered) << "row " << i;
  }
}

void expect_schedules_identical(const Schedule& got, const Schedule& want) {
  ASSERT_EQ(got.selections.size(), want.selections.size());
  for (std::size_t i = 0; i < got.selections.size(); ++i) {
    EXPECT_EQ(got.selections[i].bitmask, want.selections[i].bitmask)
        << "selection " << i;
    EXPECT_EQ(got.selections[i].covered_total,
              want.selections[i].covered_total)
        << "selection " << i;
    EXPECT_EQ(got.selections[i].covered_targets,
              want.selections[i].covered_targets)
        << "selection " << i;
  }
  EXPECT_EQ(got.estimated_cost_s, want.estimated_cost_s);
  EXPECT_EQ(got.used_naive_fallback, want.used_naive_fallback);
  EXPECT_EQ(got.covered_union, want.covered_union);
}

TEST(ParallelPlanning, CandidateTableIdenticalAtEveryThreadCount) {
  util::Rng rng(0xca41d);
  for (const std::size_t n : {32u, 256u, 1024u}) {
    const BitmaskIndex index(random_scene(n, rng));
    const util::IndicatorBitmap targets =
        random_targets(n, 2 + n / 32, rng);
    const std::vector<BitmaskCandidate> serial = index.candidates_for(targets);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE(testing::Message() << "scene " << n << " threads "
                                      << threads);
      util::TaskPool pool(threads);
      expect_candidates_identical(index.candidates_for(targets, &pool),
                                  serial);
    }
  }
}

TEST(ParallelPlanning, FewTargetsDegenerateToTheSerialSweep) {
  // Fewer targets than 2x executors: the pool overload must take the
  // serial path (and stay identical) instead of sharding empty chunks.
  util::Rng rng(0x5e71a1);
  const BitmaskIndex index(random_scene(128, rng));
  const util::IndicatorBitmap targets = random_targets(128, 3, rng);
  util::TaskPool pool(8);
  expect_candidates_identical(index.candidates_for(targets, &pool),
                              index.candidates_for(targets));
}

TEST(ParallelPlanning, NullAndSingleThreadPoolsAreTheSerialPath) {
  util::Rng rng(0x0901);
  const BitmaskIndex index(random_scene(96, rng));
  const util::IndicatorBitmap targets = random_targets(96, 9, rng);
  const std::vector<BitmaskCandidate> serial = index.candidates_for(targets);
  expect_candidates_identical(index.candidates_for(targets, nullptr), serial);
  util::TaskPool one(1);
  expect_candidates_identical(index.candidates_for(targets, &one), serial);
}

TEST(ParallelPlanning, ScheduleIdenticalAcrossIsaAndThreads) {
  IsaGuard guard;
  util::Rng rng(0x91a2);
  const BitmaskIndex index(random_scene(512, rng));
  const util::IndicatorBitmap targets = random_targets(512, 24, rng);
  const GreedyCoverScheduler scheduler(InventoryCostModel::paper_fit());

  // Oracle: scalar kernels, serial candidate generation.
  util::simd::set_active_isa(util::simd::Isa::kScalar);
  const Schedule oracle = scheduler.plan(index, targets);

  for (const util::simd::Isa isa :
       {util::simd::Isa::kScalar, util::simd::detected_isa()}) {
    util::simd::set_active_isa(isa);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE(testing::Message()
                   << util::simd::isa_name(isa) << " x " << threads);
      util::TaskPool pool(threads);
      expect_schedules_identical(scheduler.plan(index, targets, &pool),
                                 oracle);
    }
  }
}

TEST(ParallelPlanning, IncrementalRebuildIdenticalAcrossIsaAndThreads) {
  IsaGuard guard;
  util::Rng rng(0x9eb01d);
  const std::vector<util::Epc> scene = random_scene(768, rng);
  std::vector<util::Epc> targets;
  for (const util::Epc& epc : scene) {
    if (rng.below(24) == 0) targets.push_back(epc);
  }
  if (targets.empty()) targets.push_back(scene.front());

  // Oracle: scalar kernels, serial rebuild.
  util::simd::set_active_isa(util::simd::Isa::kScalar);
  IncrementalPlanner serial(InventoryCostModel::paper_fit());
  const Schedule oracle = serial.plan_cycle(scene, targets);

  for (const util::simd::Isa isa :
       {util::simd::Isa::kScalar, util::simd::detected_isa()}) {
    util::simd::set_active_isa(isa);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE(testing::Message()
                   << util::simd::isa_name(isa) << " x " << threads);
      util::TaskPool pool(threads);
      IncrementalPlanner planner(InventoryCostModel::paper_fit(), 0.15,
                                 &pool);
      expect_schedules_identical(planner.plan_cycle(scene, targets), oracle);
      EXPECT_EQ(planner.stats().full_rebuilds, 1u);
    }
  }
}

TEST(ParallelPlanning, DeltasAfterParallelRebuildStayEquivalent) {
  // The spliced arena must be structurally sound for later incremental
  // cycles: churn the scene and keep comparing a pooled planner against a
  // fresh from-scratch oracle every cycle.
  util::Rng rng(0xde17a5);
  std::map<util::Epc, bool> world;
  while (world.size() < 512) world.emplace(util::Epc::random(rng), false);
  auto snapshot = [&world] {
    std::pair<std::vector<util::Epc>, std::vector<util::Epc>> out;
    for (const auto& [epc, is_target] : world) {
      out.first.push_back(epc);
      if (is_target) out.second.push_back(epc);
    }
    return out;
  };
  auto mutate = [&world, &rng](std::size_t steps) {
    for (std::size_t i = 0; i < steps; ++i) {
      auto it = world.begin();
      std::advance(it, rng.below(static_cast<std::uint32_t>(world.size())));
      switch (rng.below(3)) {
        case 0:
          world.erase(it);
          break;
        case 1:
          world.emplace(util::Epc::random(rng), false);
          break;
        default:
          it->second = !it->second;
          break;
      }
    }
  };

  for (auto& [epc, is_target] : world) is_target = rng.below(24) == 0;
  util::TaskPool pool(4);
  IncrementalPlanner planner(InventoryCostModel::paper_fit(), 0.25, &pool);
  const GreedyCoverScheduler scheduler(InventoryCostModel::paper_fit());
  for (int cycle = 0; cycle < 16; ++cycle) {
    SCOPED_TRACE(cycle);
    auto [scene, targets] = snapshot();
    if (targets.empty()) {
      world.begin()->second = true;
      std::tie(scene, targets) = snapshot();
    }
    const BitmaskIndex index(scene);
    expect_schedules_identical(
        planner.plan_cycle(scene, targets),
        scheduler.plan(index, index.bitmap_of(targets)));
    mutate(16);
  }
  EXPECT_GE(planner.stats().incremental_cycles, 10u);
}

}  // namespace
}  // namespace tagwatch::core
