// Tests for the reading-history database.
#include <gtest/gtest.h>

#include "core/history.hpp"

namespace tagwatch::core {
namespace {

rf::TagReading reading(std::uint64_t serial, util::SimTime t) {
  rf::TagReading r;
  r.epc = util::Epc::from_serial(serial);
  r.timestamp = t;
  r.phase_rad = 1.0;
  r.rssi_dbm = -50.0;
  return r;
}

TEST(HistoryDatabase, RecordsAndCounts) {
  HistoryDatabase db;
  db.record(reading(1, util::msec(10)));
  db.record(reading(1, util::msec(20)));
  db.record(reading(2, util::msec(15)));
  EXPECT_EQ(db.tag_count(), 2u);
  EXPECT_EQ(db.total_readings(), 3u);
  const TagHistory* h = db.find(util::Epc::from_serial(1));
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_readings, 2u);
  EXPECT_EQ(h->first_seen, util::msec(10));
  EXPECT_EQ(h->last_seen, util::msec(20));
  EXPECT_EQ(db.find(util::Epc::from_serial(9)), nullptr);
}

TEST(HistoryDatabase, RetentionCapBoundsMemory) {
  HistoryDatabase db(4);
  for (int i = 0; i < 100; ++i) db.record(reading(1, util::msec(i)));
  const TagHistory* h = db.find(util::Epc::from_serial(1));
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->recent.size(), 4u);
  EXPECT_EQ(h->total_readings, 100u);  // total count survives the cap
  EXPECT_EQ(h->recent.front().timestamp, util::msec(96));
}

TEST(HistoryDatabase, SeenSinceSnapshotsScene) {
  HistoryDatabase db;
  db.record(reading(1, util::sec(1)));
  db.record(reading(2, util::sec(5)));
  db.record(reading(3, util::sec(9)));
  const auto scene = db.seen_since(util::sec(5));
  EXPECT_EQ(scene.size(), 2u);
}

TEST(HistoryDatabase, EvictionRemovesStaleTags) {
  HistoryDatabase db;
  db.record(reading(1, util::sec(1)));
  db.record(reading(2, util::sec(100)));
  EXPECT_EQ(db.evict_older_than(util::sec(50)), 1u);
  EXPECT_EQ(db.tag_count(), 1u);
  EXPECT_EQ(db.find(util::Epc::from_serial(1)), nullptr);
}

TEST(HistoryDatabase, ReadingsInWindow) {
  HistoryDatabase db;
  for (int i = 0; i < 10; ++i) db.record(reading(1, util::msec(i * 100)));
  const auto window =
      db.readings_in(util::Epc::from_serial(1), util::msec(250),
                     util::msec(650));
  ASSERT_EQ(window.size(), 4u);  // 300, 400, 500, 600 ms
  EXPECT_EQ(window.front().timestamp, util::msec(300));
  EXPECT_EQ(window.back().timestamp, util::msec(600));
  EXPECT_TRUE(db.readings_in(util::Epc::from_serial(7), util::msec(0),
                             util::sec(1))
                  .empty());
}

}  // namespace
}  // namespace tagwatch::core
