// Gen2 session semantics: S0–S3 persistence windows (Gen2 Table 6.20),
// A/B inventoried targets, lazy decay, power-loss behavior of departed
// tags, and the dense TagFlagField mirror validated against the EPC-keyed
// FlagStore oracle at 1/2/4 readers.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "gen2/flag_field.hpp"
#include "gen2/reader.hpp"
#include "gen2/tag_runtime.hpp"
#include "util/circular.hpp"

namespace tagwatch::gen2 {
namespace {

// ----------------------------------------------------------- SessionTiming

TEST(SessionTiming, S1WindowClampsToSpecBounds) {
  SessionTiming t;
  t.s1_persistence = util::msec(100);  // below the 500 ms floor
  EXPECT_EQ(t.s1_effective(), SessionTiming::kS1Min);
  t.s1_persistence = util::sec(60);  // above the 5 s ceiling
  EXPECT_EQ(t.s1_effective(), SessionTiming::kS1Max);
  t.s1_persistence = util::sec(2);  // in range: untouched
  EXPECT_EQ(t.s1_effective(), util::sec(2));
  t.s1_persistence = SessionTiming::kForever;  // disabled: stays disabled
  EXPECT_EQ(t.s1_effective(), SessionTiming::kForever);
}

TEST(SessionTiming, PresetsMatchTheSpecTable) {
  const SessionTiming legacy = SessionTiming::persistent();
  EXPECT_EQ(legacy.s0_persistence, SessionTiming::kForever);
  EXPECT_EQ(legacy.s1_persistence, SessionTiming::kForever);
  EXPECT_EQ(legacy.depowered_persistence, SessionTiming::kForever);

  const SessionTiming spec = SessionTiming::spec_default();
  EXPECT_EQ(spec.s0_persistence, util::SimDuration::zero());
  EXPECT_EQ(spec.s1_persistence, util::sec(2));
  EXPECT_EQ(spec.depowered_persistence, util::sec(2));
}

// ----------------------------------------------------------- TagFlags decay

TEST(TagFlags, S1BFlagDecaysBackToAAfterItsWindow) {
  const SessionTiming timing = SessionTiming::spec_default();  // S1: 2 s
  TagFlags f;
  const util::SimTime set_at = util::SimTime{util::sec(1).count()};
  f.set_session_flag(Session::kS1, InvFlag::kB, set_at, timing);

  // Inside the window the flag presents B; at/after the deadline it reads
  // A without any explicit reset (lazy decay).
  EXPECT_EQ(f.session_flag_at(Session::kS1, set_at), InvFlag::kB);
  EXPECT_EQ(f.session_flag_at(Session::kS1, set_at + util::msec(1999)),
            InvFlag::kB);
  EXPECT_EQ(f.session_flag_at(Session::kS1, set_at + util::sec(2)),
            InvFlag::kA);
  EXPECT_EQ(f.session_flag_at(Session::kS1, set_at + util::sec(60)),
            InvFlag::kA);
}

TEST(TagFlags, OnlyS1DecaysWhilePowered) {
  const SessionTiming timing = SessionTiming::spec_default();
  TagFlags f;
  const util::SimTime t0{0};
  for (const Session s :
       {Session::kS0, Session::kS2, Session::kS3}) {
    f.set_session_flag(s, InvFlag::kB, t0, timing);
    EXPECT_EQ(f.session_flag_at(s, t0 + util::sec(3600)), InvFlag::kB)
        << to_string(s);
  }
}

TEST(TagFlags, AWritesNeverCarryADecayDeadline) {
  const SessionTiming timing = SessionTiming::spec_default();
  TagFlags f;
  f.set_session_flag(Session::kS1, InvFlag::kB, util::SimTime{0}, timing);
  f.set_session_flag(Session::kS1, InvFlag::kA, util::SimTime{0}, timing);
  EXPECT_EQ(f.decay_at[1], TagFlags::kNever);
  EXPECT_EQ(f.session_flag_at(Session::kS1, util::SimTime{util::sec(9).count()}),
            InvFlag::kA);
}

TEST(TagFlags, ToggleActsOnTheDecayedValue) {
  const SessionTiming timing = SessionTiming::spec_default();
  TagFlags f;
  const util::SimTime t0{0};
  f.set_session_flag(Session::kS1, InvFlag::kB, t0, timing);

  // After the window the flag *presents* A, so an ACK toggle flips it to
  // B (with a fresh deadline), not back to A.
  const util::SimTime later = t0 + util::sec(3);
  f.toggle_session_flag(Session::kS1, later, timing);
  EXPECT_EQ(f.session_flag_at(Session::kS1, later), InvFlag::kB);
  EXPECT_EQ(f.session_flag_at(Session::kS1, later + util::sec(2)),
            InvFlag::kA);
}

TEST(TagFlags, PowerCycleAppliesThePersistenceTable) {
  const SessionTiming timing = SessionTiming::spec_default();
  TagFlags f;
  const util::SimTime t0{0};
  for (const Session s : {Session::kS0, Session::kS1, Session::kS2,
                          Session::kS3}) {
    f.set_session_flag(s, InvFlag::kB, t0, timing);
  }

  // Short outage (0.5 s < 2 s): S0 resets immediately (zero persistence),
  // S2/S3 survive, S1 keeps its own deadline.
  TagFlags short_gap = f;
  const util::SimTime departed = t0 + util::sec(1);
  short_gap.power_cycle(departed, departed + util::msec(500), timing);
  EXPECT_EQ(short_gap.session_flag(Session::kS0), InvFlag::kA);
  EXPECT_EQ(short_gap.session_flag(Session::kS2), InvFlag::kB);
  EXPECT_EQ(short_gap.session_flag(Session::kS3), InvFlag::kB);

  // Long outage (3 s > 2 s): S2/S3 reset too.
  TagFlags long_gap = f;
  long_gap.power_cycle(departed, departed + util::sec(3), timing);
  EXPECT_EQ(long_gap.session_flag(Session::kS2), InvFlag::kA);
  EXPECT_EQ(long_gap.session_flag(Session::kS3), InvFlag::kA);

  // Zero-length gap: a reindex stash that never de-energized the tag must
  // pass through unchanged, S0 included.
  TagFlags no_gap = f;
  no_gap.power_cycle(departed, departed, timing);
  EXPECT_EQ(no_gap.session_flag(Session::kS0), InvFlag::kB);
}

TEST(TagFlags, PersistentTimingIsImmortalThroughAPowerCycle) {
  const SessionTiming timing = SessionTiming::persistent();
  TagFlags f;
  for (const Session s : {Session::kS0, Session::kS1, Session::kS2,
                          Session::kS3}) {
    f.set_session_flag(s, InvFlag::kB, util::SimTime{0}, timing);
  }
  f.power_cycle(util::SimTime{0}, util::SimTime{util::sec(3600).count()},
                timing);
  for (const Session s : {Session::kS0, Session::kS1, Session::kS2,
                          Session::kS3}) {
    EXPECT_EQ(f.session_flag_at(s, util::SimTime{util::sec(7200).count()}),
              InvFlag::kB)
        << to_string(s);
  }
}

// -------------------------------------------------------- reader fixtures

struct SessionBed {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::china_920_926()};
  std::vector<rf::Antenna> antennas{{1, {0, 0, 2}, 8.0}};
  std::shared_ptr<TagFlagField> field;
  std::vector<std::unique_ptr<Gen2Reader>> readers;

  SessionBed(std::size_t n_tags, std::size_t n_readers,
             SessionTiming timing = SessionTiming::spec_default(),
             std::uint64_t seed = 33) {
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(i + 1);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    field = std::make_shared<TagFlagField>(timing);
    for (std::size_t r = 0; r < n_readers; ++r) {
      readers.push_back(std::make_unique<Gen2Reader>(
          LinkTiming(LinkParams::max_throughput()), ReaderConfig{}, world,
          channel, antennas, util::Rng(seed + 1 + r), field));
    }
  }

  std::size_t run_round(std::size_t reader, QueryCommand q) {
    std::size_t reads = 0;
    readers[reader]->run_inventory_round(
        q, [&reads](const rf::TagReading&) { ++reads; });
    return reads;
  }
};

TEST(Gen2Sessions, SharedFieldMakesReadersSeeEachOthersFlips) {
  SessionBed bed(12, 2);
  QueryCommand q;
  q.session = Session::kS2;
  q.target = InvFlag::kA;
  // Reader 0 flips everyone to B in S2; reader 1 queries the same session
  // a moment later and finds nobody left on A — the tags coordinated the
  // two readers.
  EXPECT_EQ(bed.run_round(0, q), 12u);
  EXPECT_EQ(bed.run_round(1, q), 0u);
  // The B population answers reader 1 when it targets B.
  q.target = InvFlag::kB;
  EXPECT_EQ(bed.run_round(1, q), 12u);
}

TEST(Gen2Sessions, PrivateFieldsKeepReadersIndependent) {
  // Two readers over one world but *separate* fields (the pre-fleet
  // construction): reader 1 re-reads everything reader 0 already flipped.
  SessionBed bed(10, 0);
  for (std::size_t r = 0; r < 2; ++r) {
    bed.readers.push_back(std::make_unique<Gen2Reader>(
        LinkTiming(LinkParams::max_throughput()), ReaderConfig{}, bed.world,
        bed.channel, bed.antennas, util::Rng(100 + r)));
  }
  QueryCommand q;
  q.session = Session::kS2;
  EXPECT_EQ(bed.run_round(0, q), 10u);
  EXPECT_EQ(bed.run_round(1, q), 10u);
}

TEST(Gen2Sessions, SelectFlipsABTargetsMidInventorySequence) {
  SessionBed bed(16, 1);
  QueryCommand q;
  q.session = Session::kS2;
  q.target = InvFlag::kA;
  EXPECT_EQ(bed.run_round(0, q), 16u);  // everyone now B

  // A Select on the S2 inventoried flag re-asserts A for the odd serials
  // (EPC bit 95 set) and confirms B for the rest — the A/B population is
  // repartitioned mid-sequence without touching SL.
  SelectCommand sel;
  sel.target = SelectTarget::kSessionS2;
  sel.action = SelectAction::kAssertMatchedDeassertElse;
  sel.pointer = 95;
  sel.mask = util::BitString::from_binary("1");
  bed.readers[0]->transmit_select(sel);

  EXPECT_EQ(bed.run_round(0, q), 8u);  // the odd half answers A again
  q.target = InvFlag::kB;
  EXPECT_EQ(bed.run_round(0, q), 16u);  // odd half toggled back + even half
}

TEST(Gen2Sessions, S1InventoryDecaysBackWithinTheSpecWindow) {
  SessionTiming timing;
  timing.s1_persistence = util::sec(1);  // inside [500 ms, 5 s]: used as-is
  SessionBed bed(8, 1, timing);
  QueryCommand q;
  q.session = Session::kS1;
  EXPECT_EQ(bed.run_round(0, q), 8u);
  // Immediately after the round the flags hold B...
  EXPECT_EQ(bed.run_round(0, q), 0u);
  // ...but once the S1 window elapses the whole population presents A
  // again, with no reader intervention.
  bed.world.advance(util::sec(2));
  EXPECT_EQ(bed.run_round(0, q), 8u);
}

TEST(Gen2Sessions, S1RequestBelowTheFloorStillHoldsHalfASecond) {
  SessionTiming timing;
  timing.s1_persistence = util::msec(50);  // clamped up to 500 ms
  SessionBed bed(6, 1, timing);
  QueryCommand q;
  q.session = Session::kS1;
  EXPECT_EQ(bed.run_round(0, q), 6u);
  bed.world.advance(util::msec(100));  // < 500 ms: still held
  EXPECT_EQ(bed.run_round(0, q), 0u);
  bed.world.advance(util::msec(600));  // past the floor: decayed
  EXPECT_EQ(bed.run_round(0, q), 6u);
}

// ------------------------------------------- departed-tag re-entry (stash)

TEST(Gen2Sessions, ReenteringTagKeepsS2S3ThroughAShortOutage) {
  SessionBed bed(5, 1);
  QueryCommand q;
  q.session = Session::kS2;
  EXPECT_EQ(bed.run_round(0, q), 5u);

  const util::Epc epc = util::Epc::from_serial(1);
  ASSERT_TRUE(bed.world.remove_tag(epc));
  bed.world.advance(util::msec(800));  // outage < 2 s depowered window

  sim::SimTag back;
  back.epc = epc;
  back.motion = std::make_shared<sim::StaticMotion>(util::Vec3{0.5, 0.5, 0});
  bed.world.add_tag(std::move(back));

  const TagFlags* flags = bed.readers[0]->find_flags(epc);
  ASSERT_NE(flags, nullptr);
  EXPECT_EQ(flags->session_flag_at(Session::kS2, bed.world.now()),
            InvFlag::kB);
}

TEST(Gen2Sessions, ReenteringTagLosesItsFlagsAfterALongOutage) {
  SessionBed bed(5, 1);
  QueryCommand q;
  q.session = Session::kS2;
  EXPECT_EQ(bed.run_round(0, q), 5u);

  const util::Epc epc = util::Epc::from_serial(2);
  ASSERT_TRUE(bed.world.remove_tag(epc));
  bed.world.advance(util::sec(3));  // outage > 2 s: S2 resets

  sim::SimTag back;
  back.epc = epc;
  back.motion = std::make_shared<sim::StaticMotion>(util::Vec3{0.5, 0.5, 0});
  bed.world.add_tag(std::move(back));

  const TagFlags* flags = bed.readers[0]->find_flags(epc);
  ASSERT_NE(flags, nullptr);
  EXPECT_EQ(flags->session_flag_at(Session::kS2, bed.world.now()),
            InvFlag::kA);
  // And the re-entered tag participates in the next A-targeted round.
  EXPECT_EQ(bed.run_round(0, q), 1u);
}

TEST(Gen2Sessions, ReindexStashWithoutDepartureIsLossless) {
  // Removing tag X reindexes tag Y's dense slot without ever de-energizing
  // Y: the stash/restore round trip must not reset Y's S0 flag even though
  // S0 has zero persistence.
  SessionBed bed(6, 1);
  QueryCommand q;
  q.session = Session::kS0;
  EXPECT_EQ(bed.run_round(0, q), 6u);

  ASSERT_TRUE(bed.world.remove_tag(util::Epc::from_serial(1)));
  bed.world.advance(util::sec(10));

  for (std::size_t serial = 2; serial <= 6; ++serial) {
    const TagFlags* flags =
        bed.readers[0]->find_flags(util::Epc::from_serial(serial));
    ASSERT_NE(flags, nullptr) << "serial " << serial;
    EXPECT_EQ(flags->session_flag_at(Session::kS0, bed.world.now()),
              InvFlag::kB)
        << "serial " << serial;
  }
}

// -------------------------------------- differential FlagStore oracle

/// Drives `n_readers` readers over one shared field with a deterministic
/// mix of Selects and inventory rounds, mirroring every flag-changing
/// event into the EPC-keyed FlagStore oracle, and compares the dense
/// mirror against the oracle after every operation.
void run_oracle_differential(std::size_t n_readers) {
  constexpr std::size_t kTags = 12;
  const SessionTiming timing = SessionTiming::spec_default();
  SessionBed bed(kTags, n_readers, timing, /*seed=*/71);

  std::vector<util::Epc> epcs;
  for (std::size_t i = 0; i < kTags; ++i) {
    epcs.push_back(util::Epc::from_serial(i + 1));
  }
  FlagStore oracle;

  const auto check = [&](const char* where) {
    const util::SimTime now = bed.world.now();
    for (const util::Epc& epc : epcs) {
      const TagFlags* mirror = bed.field->find(bed.world, epc);
      ASSERT_NE(mirror, nullptr) << where;
      const TagFlags& expect = oracle[epc];
      EXPECT_EQ(mirror->sl, expect.sl) << where << " " << epc.to_hex();
      for (const Session s : {Session::kS0, Session::kS1, Session::kS2,
                              Session::kS3}) {
        EXPECT_EQ(mirror->session_flag_at(s, now),
                  expect.session_flag_at(s, now))
            << where << " " << epc.to_hex() << " " << to_string(s);
      }
    }
  };

  // Every tag starts at the power-up state on both sides.
  check("initial");

  for (std::size_t cycle = 0; cycle < 4; ++cycle) {
    for (std::size_t r = 0; r < n_readers; ++r) {
      // A Select whose target/action vary deterministically with the
      // (cycle, reader) pair.
      SelectCommand sel;
      sel.target = static_cast<SelectTarget>((cycle + r) % 5);
      sel.action = (cycle % 2 == 0)
                       ? SelectAction::kAssertMatchedDeassertElse
                       : SelectAction::kToggleMatched;
      sel.pointer = 95;
      sel.mask = util::BitString::from_binary(r % 2 == 0 ? "1" : "0");
      bed.readers[r]->transmit_select(sel);
      // The Select lands on every in-field tag at the post-airtime clock.
      oracle.broadcast_select(sel, epcs, bed.world.now(), timing);
      check("after select");

      // An inventory round in this reader's session; every ACKed tag
      // toggles its flag at the reading's timestamp (the ACK instant).
      QueryCommand q;
      q.session = static_cast<Session>(r % 4);
      q.target = (cycle % 2 == 0) ? InvFlag::kA : InvFlag::kB;
      bed.readers[r]->run_inventory_round(
          q, [&](const rf::TagReading& reading) {
            oracle[reading.epc].toggle_session_flag(q.session,
                                                    reading.timestamp, timing);
          });
      check("after round");
    }
    bed.world.advance(util::msec(700));  // let some S1 deadlines pass
    check("after idle");
  }
}

TEST(Gen2Sessions, DenseMirrorMatchesFlagStoreOracleOneReader) {
  run_oracle_differential(1);
}

TEST(Gen2Sessions, DenseMirrorMatchesFlagStoreOracleTwoReaders) {
  run_oracle_differential(2);
}

TEST(Gen2Sessions, DenseMirrorMatchesFlagStoreOracleFourReaders) {
  run_oracle_differential(4);
}

}  // namespace
}  // namespace tagwatch::gen2
