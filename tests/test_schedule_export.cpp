// Tests for Schedule → ROSpec/XML export (paper Fig. 11).
#include <gtest/gtest.h>

#include "core/schedule_export.hpp"
#include "llrp/rospec_xml.hpp"
#include "util/rng.hpp"

namespace tagwatch::core {
namespace {

Schedule make_schedule() {
  util::Rng rng(131);
  std::vector<util::Epc> scene;
  for (int i = 0; i < 30; ++i) scene.push_back(util::Epc::random(rng));
  BitmaskIndex index(scene);
  const auto targets = index.bitmap_of({scene[2], scene[9], scene[17]});
  return GreedyCoverScheduler(InventoryCostModel::paper_fit())
      .plan(index, targets);
}

TEST(ScheduleExport, OneAiSpecPerBitmask) {
  const Schedule schedule = make_schedule();
  ASSERT_FALSE(schedule.selections.empty());
  const llrp::ROSpec spec = schedule_to_rospec(schedule);
  ASSERT_EQ(spec.ai_specs.size(), schedule.selections.size());
  for (std::size_t i = 0; i < spec.ai_specs.size(); ++i) {
    const llrp::AISpec& ai = spec.ai_specs[i];
    ASSERT_EQ(ai.filters.size(), 1u);
    EXPECT_EQ(ai.filters[0].pointer, schedule.selections[i].bitmask.pointer);
    EXPECT_EQ(ai.filters[0].mask, schedule.selections[i].bitmask.mask);
    EXPECT_EQ(ai.filters[0].bank, gen2::MemBank::kEpc);
    // Initial Q sized to the expected covered population: 2^Q >= covered.
    EXPECT_GE(std::size_t{1} << ai.initial_q,
              schedule.selections[i].covered_total);
  }
}

TEST(ScheduleExport, OptionsAreApplied) {
  const Schedule schedule = make_schedule();
  ScheduleExportOptions opts;
  opts.rospec_id = 42;
  opts.session = gen2::Session::kS2;
  opts.antenna_indexes = {1, 3};
  opts.rounds_per_bitmask = 4;
  opts.loops = 7;
  const llrp::ROSpec spec = schedule_to_rospec(schedule, opts);
  EXPECT_EQ(spec.id, 42u);
  EXPECT_EQ(spec.loops, 7u);
  for (const auto& ai : spec.ai_specs) {
    EXPECT_EQ(ai.session, gen2::Session::kS2);
    EXPECT_EQ(ai.antenna_indexes, (std::vector<std::size_t>{1, 3}));
    EXPECT_EQ(ai.stop.kind, llrp::AiSpecStopTrigger::Kind::kRounds);
    EXPECT_EQ(ai.stop.rounds, 4u);
  }
}

TEST(ScheduleExport, XmlRoundTripsThroughParser) {
  const Schedule schedule = make_schedule();
  const std::string xml = schedule_to_xml(schedule);
  const llrp::ROSpec parsed = llrp::rospec_from_xml(xml);
  EXPECT_EQ(parsed.ai_specs.size(), schedule.selections.size());
  for (std::size_t i = 0; i < parsed.ai_specs.size(); ++i) {
    EXPECT_EQ(parsed.ai_specs[i].filters[0].mask,
              schedule.selections[i].bitmask.mask);
  }
}

TEST(ScheduleExport, EmptyScheduleYieldsEmptyRospec) {
  Schedule empty;
  const llrp::ROSpec spec = schedule_to_rospec(empty);
  EXPECT_TRUE(spec.ai_specs.empty());
}

}  // namespace
}  // namespace tagwatch::core
