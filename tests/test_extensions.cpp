// Tests for post-paper extensions: Q persistence and the Phase II
// duration policy hook.
#include <gtest/gtest.h>

#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "gen2/reader.hpp"
#include "util/circular.hpp"

namespace tagwatch {
namespace {

TEST(PersistQ, SecondRoundSkipsReconvergence) {
  // With 60 tags and initial Q=2, the first round wastes collision slots
  // climbing to Q≈6.  With persist_q, the second round starts converged
  // and spends fewer slots.
  auto run = [](bool persist) {
    sim::World world;
    util::Rng rng(171);
    for (std::size_t i = 0; i < 60; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(i + 1);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      world.add_tag(std::move(t));
    }
    rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
    gen2::ReaderConfig cfg;
    cfg.persist_q = persist;
    // A conservative Q step makes the climb from a bad initial Q slow and
    // the persistence benefit visible (at the default 0.35 the Q algorithm
    // reconverges within a dozen slots and persistence matters little).
    cfg.q_step = 0.1;
    gen2::Gen2Reader reader(
        gen2::LinkTiming(gen2::LinkParams::max_throughput()), cfg, world,
        channel, {{1, {0, 0, 2}, 8.0}}, util::Rng(172));
    gen2::QueryCommand q;
    q.q = 2;
    q.target = gen2::InvFlag::kA;
    const auto first = reader.run_inventory_round(q, nullptr);
    q.target = gen2::InvFlag::kB;
    const auto second = reader.run_inventory_round(q, nullptr);
    EXPECT_EQ(first.success_slots, 60u);
    EXPECT_EQ(second.success_slots, 60u);
    return std::pair{first.collision_slots, second.collision_slots};
  };
  const auto [off_first, off_second] = run(false);
  const auto [on_first, on_second] = run(true);
  // Without persistence both rounds pay the slow climb from Q=2.
  EXPECT_GT(off_second, 40u);
  // With persistence the second round skips the climb entirely.
  EXPECT_LT(on_second, on_first * 2 / 3);
  EXPECT_LT(on_second, off_second * 2 / 3);
  (void)off_first;
}

TEST(Phase2Policy, OverridesDuration) {
  sim::World world;
  util::Rng rng(173);
  for (std::size_t i = 0; i < 10; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::random(rng);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
    t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(t));
  }
  rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
  llrp::SimReaderClient client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel,
      {{1, {-5, -5, 0}, 8.0}, {2, {5, 5, 0}, 8.0}}, 174);

  core::TagwatchConfig cfg;
  cfg.phase2_duration = util::sec(5);  // would be 5 s without the policy
  std::size_t calls = 0;
  cfg.phase2_policy = [&calls](std::size_t targets, std::size_t scene) {
    ++calls;
    EXPECT_LE(targets, scene);
    return util::msec(300);
  };
  core::TagwatchController ctl(cfg, client);
  const core::CycleReport r = ctl.run_cycle();
  EXPECT_GE(calls, 1u);
  // Phase II honored the 300 ms override (plus at most one round overshoot).
  EXPECT_LT(r.phase2_duration, util::msec(700));
  EXPECT_GE(r.phase2_duration, util::msec(300));
}

TEST(Phase2Policy, ClampedToSaneRange) {
  sim::World world;
  util::Rng rng(175);
  sim::SimTag t;
  t.epc = util::Epc::random(rng);
  t.motion = std::make_shared<sim::StaticMotion>(util::Vec3{1, 1, 0});
  world.add_tag(std::move(t));
  rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
  llrp::SimReaderClient client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel, {{1, {0, 0, 2}, 8.0}}, 176);

  core::TagwatchConfig cfg;
  cfg.phase2_policy = [](std::size_t, std::size_t) {
    return util::SimDuration::zero();  // absurd: clamped up to 100 ms
  };
  core::TagwatchController ctl(cfg, client);
  const core::CycleReport r = ctl.run_cycle();
  EXPECT_GE(r.phase2_duration, util::msec(100));
}

}  // namespace
}  // namespace tagwatch
