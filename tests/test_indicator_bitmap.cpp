#include "util/indicator_bitmap.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace tagwatch::util {
namespace {

TEST(IndicatorBitmap, StartsEmpty) {
  IndicatorBitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(IndicatorBitmap, SetTestClear) {
  IndicatorBitmap b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.set(63, false);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(IndicatorBitmap, BoundsChecked) {
  IndicatorBitmap b(8);
  EXPECT_THROW(b.test(8), std::out_of_range);
  EXPECT_THROW(b.set(8), std::out_of_range);
}

TEST(IndicatorBitmap, AndCountMatchesPaperGainTerm) {
  // Fig. 10: V = [0,1,1,1], V1 = [1,1,1,0] → |V1 & V| = 2.
  IndicatorBitmap v(4), v1(4);
  v.set(1);
  v.set(2);
  v.set(3);
  v1.set(0);
  v1.set(1);
  v1.set(2);
  EXPECT_EQ(v1.and_count(v), 2u);
  EXPECT_EQ(v.and_count(v1), 2u);
}

TEST(IndicatorBitmap, SubtractImplementsStep3Update) {
  // V ← V − (V & V3): Fig. 10's input-bitmap update.
  IndicatorBitmap v(4), v3(4);
  v.set(1);
  v.set(2);
  v.set(3);
  v3.set(1);
  v3.set(2);
  v.subtract(v3);
  EXPECT_FALSE(v.test(1));
  EXPECT_FALSE(v.test(2));
  EXPECT_TRUE(v.test(3));
  EXPECT_EQ(v.count(), 1u);
}

TEST(IndicatorBitmap, MergeIsUnion) {
  IndicatorBitmap a(10), b(10);
  a.set(1);
  b.set(1);
  b.set(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_TRUE(a.test(7));
}

TEST(IndicatorBitmap, SizeMismatchThrows) {
  IndicatorBitmap a(10), b(11);
  EXPECT_THROW(a.and_count(b), std::invalid_argument);
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(IndicatorBitmap, EqualityAndHashForDedup) {
  IndicatorBitmap a(200), b(200), c(200);
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const auto idx = static_cast<std::size_t>(rng.below(200));
    a.set(idx);
    b.set(idx);
    c.set((idx + 1) % 200);
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  std::unordered_set<IndicatorBitmap> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(IndicatorBitmap, ToStringRendersTagOrder) {
  IndicatorBitmap b(4);
  b.set(1);
  b.set(3);
  EXPECT_EQ(b.to_string(), "0101");
}

TEST(IndicatorBitmap, CountRandomizedAgainstReference) {
  Rng rng(13);
  IndicatorBitmap b(513);
  std::unordered_set<std::size_t> reference;
  for (int i = 0; i < 300; ++i) {
    const auto idx = static_cast<std::size_t>(rng.below(513));
    b.set(idx);
    reference.insert(idx);
  }
  EXPECT_EQ(b.count(), reference.size());
}

}  // namespace
}  // namespace tagwatch::util
