#include "util/indicator_bitmap.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace tagwatch::util {
namespace {

TEST(IndicatorBitmap, StartsEmpty) {
  IndicatorBitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(IndicatorBitmap, SetTestClear) {
  IndicatorBitmap b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.set(63, false);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(IndicatorBitmap, BoundsChecked) {
  IndicatorBitmap b(8);
  EXPECT_THROW(b.test(8), std::out_of_range);
  EXPECT_THROW(b.set(8), std::out_of_range);
}

TEST(IndicatorBitmap, AndCountMatchesPaperGainTerm) {
  // Fig. 10: V = [0,1,1,1], V1 = [1,1,1,0] → |V1 & V| = 2.
  IndicatorBitmap v(4), v1(4);
  v.set(1);
  v.set(2);
  v.set(3);
  v1.set(0);
  v1.set(1);
  v1.set(2);
  EXPECT_EQ(v1.and_count(v), 2u);
  EXPECT_EQ(v.and_count(v1), 2u);
}

TEST(IndicatorBitmap, SubtractImplementsStep3Update) {
  // V ← V − (V & V3): Fig. 10's input-bitmap update.
  IndicatorBitmap v(4), v3(4);
  v.set(1);
  v.set(2);
  v.set(3);
  v3.set(1);
  v3.set(2);
  v.subtract(v3);
  EXPECT_FALSE(v.test(1));
  EXPECT_FALSE(v.test(2));
  EXPECT_TRUE(v.test(3));
  EXPECT_EQ(v.count(), 1u);
}

TEST(IndicatorBitmap, MergeIsUnion) {
  IndicatorBitmap a(10), b(10);
  a.set(1);
  b.set(1);
  b.set(7);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_TRUE(a.test(7));
}

TEST(IndicatorBitmap, SizeMismatchThrows) {
  IndicatorBitmap a(10), b(11);
  EXPECT_THROW(a.and_count(b), std::invalid_argument);
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(IndicatorBitmap, EqualityAndHashForDedup) {
  IndicatorBitmap a(200), b(200), c(200);
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const auto idx = static_cast<std::size_t>(rng.below(200));
    a.set(idx);
    b.set(idx);
    c.set((idx + 1) % 200);
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  std::unordered_set<IndicatorBitmap> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(IndicatorBitmap, ToStringRendersTagOrder) {
  IndicatorBitmap b(4);
  b.set(1);
  b.set(3);
  EXPECT_EQ(b.to_string(), "0101");
}

TEST(IndicatorBitmap, FillSetsEveryBitAndMasksTheTail) {
  // 70 bits spans two words with a partial tail; fill() must not set the
  // 58 tail bits, or word-wise ==/hash/and_count would see garbage.
  IndicatorBitmap filled(70);
  filled.fill();
  EXPECT_EQ(filled.count(), 70u);
  IndicatorBitmap reference(70);
  for (std::size_t i = 0; i < 70; ++i) reference.set(i);
  EXPECT_EQ(filled, reference);
  EXPECT_EQ(filled.hash(), reference.hash());
  EXPECT_EQ(filled.and_count(reference), 70u);

  // Word-aligned size: no tail to mask.
  IndicatorBitmap aligned(128);
  aligned.fill();
  EXPECT_EQ(aligned.count(), 128u);
  EXPECT_TRUE(aligned.test(127));

  IndicatorBitmap empty(0);
  empty.fill();
  EXPECT_EQ(empty.count(), 0u);
}

TEST(IndicatorBitmap, AndWithIsInPlaceIntersection) {
  IndicatorBitmap a(130), b(130);
  a.set(0);
  a.set(64);
  a.set(129);
  b.set(64);
  b.set(129);
  b.set(100);
  a.and_with(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_FALSE(a.test(0));
  EXPECT_TRUE(a.test(64));
  EXPECT_TRUE(a.test(129));
  IndicatorBitmap c(131);
  EXPECT_THROW(a.and_with(c), std::invalid_argument);
}

TEST(IndicatorBitmap, CachedCountStaysExactThroughMutations) {
  // The O(1) cached popcount must agree with a per-bit reference across a
  // random mix of every mutator.
  Rng rng(14);
  const std::size_t n = 200;
  IndicatorBitmap b(n);
  std::vector<bool> reference(n, false);
  const auto reference_count = [&reference] {
    std::size_t c = 0;
    for (const bool bit : reference) c += bit ? 1u : 0u;
    return c;
  };
  for (int step = 0; step < 200; ++step) {
    const auto op = rng.below(5);
    if (op == 0) {
      const auto i = static_cast<std::size_t>(rng.below(n));
      const bool value = rng.chance(0.5);
      b.set(i, value);
      reference[i] = value;
    } else {
      IndicatorBitmap other(n);
      std::vector<bool> other_reference(n, false);
      for (int k = 0; k < 40; ++k) {
        const auto i = static_cast<std::size_t>(rng.below(n));
        other.set(i);
        other_reference[i] = true;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (op == 1) reference[i] = reference[i] && other_reference[i];
        if (op == 2) reference[i] = reference[i] && !other_reference[i];
        if (op == 3) reference[i] = reference[i] || other_reference[i];
        if (op == 4) reference[i] = true;
      }
      if (op == 1) b.and_with(other);
      if (op == 2) b.subtract(other);
      if (op == 3) b.merge(other);
      if (op == 4) b.fill();
    }
    ASSERT_EQ(b.count(), reference_count()) << "step " << step;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(b.test(i), reference[i]) << "step " << step << " bit " << i;
    }
  }
}

TEST(IndicatorBitmap, AliasedAssignWordsKeepsBitsAndCountExact) {
  // Self-assignment through word_data(): the candidate sweep re-anchors a
  // bitmap onto its own backing array (possibly shrinking the size).  The
  // aliased source must not be clobbered mid-copy and the cached popcount
  // must match a full recount afterwards.
  Rng rng(4096);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 65 + rng.below(700);
    IndicatorBitmap b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.4)) b.set(i);
    }
    const IndicatorBitmap before = b;

    // Same-size aliased assign: a pure no-op on bits and count.
    b.assign_words(n, b.word_data());
    EXPECT_EQ(b, before) << "trial " << trial;

    // Shrinking aliased assign: keeps the prefix, masks the new tail.
    const std::size_t m = 1 + rng.below(static_cast<std::uint32_t>(n));
    b.assign_words(m, b.word_data());
    std::size_t expected = 0;
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_EQ(b.test(i), before.test(i)) << "trial " << trial << " " << i;
      expected += before.test(i) ? 1u : 0u;
    }
    EXPECT_EQ(b.count(), expected) << "trial " << trial;
  }
}

TEST(IndicatorBitmap, AliasedSparseAssignMatchesFullRecount) {
  // assign_words_sparse aliased to its own words: only the listed words
  // survive, every unlisted word must be zeroed, and the trusted count
  // must equal a from-scratch popcount (the drift this guards against).
  Rng rng(8192);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 65 + rng.below(900);
    IndicatorBitmap b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.chance(0.3)) b.set(i);
    }
    const IndicatorBitmap before = b;

    // Keep a random subset of words (ascending, as the sweep guarantees —
    // every nonzero word it keeps is listed, others are dropped to zero).
    std::vector<std::size_t> kept;
    std::size_t count = 0;
    for (std::size_t w = 0; w < b.word_count(); ++w) {
      if (rng.chance(0.5)) {
        kept.push_back(w);
        count += static_cast<std::size_t>(std::popcount(b.word(w)));
      }
    }
    b.assign_words_sparse(n, b.word_data(), kept.data(), kept.size(), count);

    std::size_t recount = 0;
    std::size_t next = 0;
    for (std::size_t w = 0; w < b.word_count(); ++w) {
      const bool is_kept = next < kept.size() && kept[next] == w;
      if (is_kept) {
        ++next;
        EXPECT_EQ(b.word(w), before.word(w)) << "trial " << trial;
      } else {
        EXPECT_EQ(b.word(w), 0u) << "trial " << trial << " word " << w;
      }
      recount += static_cast<std::size_t>(std::popcount(b.word(w)));
    }
    EXPECT_EQ(b.count(), recount) << "trial " << trial;
    EXPECT_EQ(b.count(), count) << "trial " << trial;
  }
}

// The word array must stay 64-byte aligned through every way the backing
// vector can change hands — the SIMD kernels' 256-bit loads rely on it
// never splitting a cache line (util::AlignedAllocator contract).
TEST(IndicatorBitmap, WordStorageStays64ByteAligned) {
  const auto aligned = [](const IndicatorBitmap& b) {
    return b.word_count() == 0 ||
           reinterpret_cast<std::uintptr_t>(b.word_data()) % 64 == 0;
  };
  IndicatorBitmap b(1000);
  EXPECT_TRUE(aligned(b));

  IndicatorBitmap moved(std::move(b));
  EXPECT_TRUE(aligned(moved));

  IndicatorBitmap other(64);
  std::swap(moved, other);
  EXPECT_TRUE(aligned(moved));
  EXPECT_TRUE(aligned(other));

  // Growth through assign_words (the sweep's resize path).
  std::vector<std::uint64_t> words(400, ~std::uint64_t{0});
  other.assign_words(400 * 64, words.data());
  EXPECT_TRUE(aligned(other));

  IndicatorBitmap assigned;
  assigned = other;
  EXPECT_TRUE(aligned(assigned));
  assigned = IndicatorBitmap(77);
  EXPECT_TRUE(aligned(assigned));
}

TEST(IndicatorBitmap, CountRandomizedAgainstReference) {
  Rng rng(13);
  IndicatorBitmap b(513);
  std::unordered_set<std::size_t> reference;
  for (int i = 0; i < 300; ++i) {
    const auto idx = static_cast<std::size_t>(rng.below(513));
    b.set(idx);
    reference.insert(idx);
  }
  EXPECT_EQ(b.count(), reference.size());
}

}  // namespace
}  // namespace tagwatch::util
