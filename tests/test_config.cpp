#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace tagwatch::util {
namespace {

TEST(KeyValueConfig, ParsesBasics) {
  const auto cfg = KeyValueConfig::parse(
      "# Tagwatch targets\n"
      "phase2_seconds = 5\n"
      "xi=3.0\n"
      "  detector = phase-mog  \n"
      "\n"
      "verbose = true\n");
  EXPECT_EQ(cfg.size(), 4u);
  EXPECT_EQ(cfg.get_or("detector", ""), "phase-mog");
  EXPECT_DOUBLE_EQ(cfg.get_double_or("xi", 0.0), 3.0);
  EXPECT_EQ(cfg.get_int_or("phase2_seconds", 0), 5);
  EXPECT_TRUE(cfg.get_bool_or("verbose", false));
}

TEST(KeyValueConfig, MissingKeysFallBack) {
  const auto cfg = KeyValueConfig::parse("a = 1\n");
  EXPECT_FALSE(cfg.get("b").has_value());
  EXPECT_EQ(cfg.get_or("b", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cfg.get_double_or("b", 2.5), 2.5);
  EXPECT_FALSE(cfg.get_bool_or("b", false));
}

TEST(KeyValueConfig, MalformedLineThrows) {
  EXPECT_THROW(KeyValueConfig::parse("key_without_equals\n"),
               std::invalid_argument);
}

TEST(KeyValueConfig, BadBooleanThrows) {
  const auto cfg = KeyValueConfig::parse("flag = maybe\n");
  EXPECT_THROW(cfg.get_bool_or("flag", false), std::invalid_argument);
}

TEST(KeyValueConfig, ValueMayContainEquals) {
  const auto cfg = KeyValueConfig::parse("expr = a=b\n");
  EXPECT_EQ(cfg.get_or("expr", ""), "a=b");
}

TEST(KeyValueConfig, ListParsing) {
  const auto cfg = KeyValueConfig::parse("items = alpha, beta ,gamma,\n");
  const auto items = cfg.get_list("items");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], "alpha");
  EXPECT_EQ(items[1], "beta");
  EXPECT_EQ(items[2], "gamma");
  EXPECT_TRUE(cfg.get_list("absent").empty());
}

TEST(KeyValueConfig, EpcListIsThePinnedTargetFormat) {
  // §5: users pin "concerned" tags by EPC in a configuration file.
  const auto cfg = KeyValueConfig::parse(
      "pinned_targets = 300833B2DDD9014000000001, 300833B2DDD9014000000002\n");
  const auto epcs = cfg.get_epc_list("pinned_targets");
  ASSERT_EQ(epcs.size(), 2u);
  EXPECT_EQ(epcs[0].to_hex(), "300833B2DDD9014000000001");
  EXPECT_EQ(epcs[0].size(), 96u);
}

TEST(KeyValueConfig, LoadsFromFile) {
  const std::string path = testing::TempDir() + "/tagwatch_cfg_test.conf";
  {
    std::ofstream out(path);
    out << "alpha = 0.001\nk = 8\n";
  }
  const auto cfg = KeyValueConfig::load(path);
  EXPECT_DOUBLE_EQ(cfg.get_double_or("alpha", 0.0), 0.001);
  EXPECT_EQ(cfg.get_int_or("k", 0), 8);
  std::remove(path.c_str());
}

TEST(KeyValueConfig, LoadMissingFileThrows) {
  EXPECT_THROW(KeyValueConfig::load("/nonexistent/path/x.conf"),
               std::runtime_error);
}

}  // namespace
}  // namespace tagwatch::util
