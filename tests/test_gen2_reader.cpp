// Tests for the Gen2 reader inventory engine: completeness, timing scaling,
// anti-collision policies, Select filtering, and failure injection.
#include <gtest/gtest.h>

#include <set>

#include "gen2/reader.hpp"
#include "util/circular.hpp"

namespace tagwatch::gen2 {
namespace {

struct ReaderFixture {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::china_920_926()};
  std::vector<rf::Antenna> antennas{{1, {0, 0, 2}, 8.0}};

  explicit ReaderFixture(std::size_t n_tags, ReaderConfig cfg = {},
                         std::uint64_t seed = 33) {
    util::Rng rng(seed);
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(i + 1);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    reader.emplace(LinkTiming(LinkParams::max_throughput()), cfg, world,
                   channel, antennas, util::Rng(seed + 1));
  }

  std::optional<Gen2Reader> reader;

  std::vector<rf::TagReading> run_round(QueryCommand q = {}) {
    std::vector<rf::TagReading> reads;
    reader->run_inventory_round(
        q, [&reads](const rf::TagReading& r) { reads.push_back(r); });
    return reads;
  }
};

TEST(Gen2Reader, SingleRoundReadsEveryTagExactlyOnce) {
  ReaderFixture fx(25);
  const auto reads = fx.run_round();
  EXPECT_EQ(reads.size(), 25u);
  std::set<std::string> unique;
  for (const auto& r : reads) unique.insert(r.epc.to_hex());
  EXPECT_EQ(unique.size(), 25u);
}

TEST(Gen2Reader, EmptyFieldRoundTerminates) {
  ReaderFixture fx(0);
  const auto reads = fx.run_round();
  EXPECT_TRUE(reads.empty());
  EXPECT_GT(fx.world.now().count(), 0);  // still paid the start-up cost
}

TEST(Gen2Reader, RoundDurationGrowsWithPopulation) {
  // The inventory-cost mechanism behind Eqn. 5: more tags, more time.
  std::vector<double> durations;
  for (const std::size_t n : {1u, 10u, 40u}) {
    ReaderFixture fx(n);
    const auto t0 = fx.world.now();
    fx.run_round();
    durations.push_back(util::to_seconds(fx.world.now() - t0));
  }
  EXPECT_LT(durations[0], durations[1]);
  EXPECT_LT(durations[1], durations[2]);
  // Start-up cost dominates n=1: duration ≈ τ0 = 19 ms.
  EXPECT_GT(durations[0], 0.019);
  EXPECT_LT(durations[0], 0.030);
}

TEST(Gen2Reader, DualTargetAlternationReReadsAll) {
  ReaderFixture fx(10);
  QueryCommand q;
  q.target = InvFlag::kA;
  EXPECT_EQ(fx.run_round(q).size(), 10u);
  // Same target again: every tag flipped to B, so nobody answers.
  EXPECT_EQ(fx.run_round(q).size(), 0u);
  q.target = InvFlag::kB;
  EXPECT_EQ(fx.run_round(q).size(), 10u);
}

TEST(Gen2Reader, SessionsAreIndependent) {
  ReaderFixture fx(5);
  QueryCommand s1;
  s1.session = Session::kS1;
  EXPECT_EQ(fx.run_round(s1).size(), 5u);
  // S2 flags untouched by the S1 round.
  QueryCommand s2;
  s2.session = Session::kS2;
  EXPECT_EQ(fx.run_round(s2).size(), 5u);
}

TEST(Gen2Reader, SelectSlFiltersPopulation) {
  ReaderFixture fx(16);
  SelectCommand sel;
  sel.target = SelectTarget::kSl;
  sel.action = SelectAction::kAssertMatchedDeassertElse;
  // Tags 1..16 from_serial: low bits vary; pick the mask for serial bit 92
  // such that half the tags (odd serials) match the last bit = 1.
  sel.pointer = 95;
  sel.mask = util::BitString::from_binary("1");
  fx.reader->transmit_select(sel);
  QueryCommand q;
  q.sel = QuerySel::kSl;
  const auto reads = fx.run_round(q);
  EXPECT_EQ(reads.size(), 8u);  // odd serials only
  for (const auto& r : reads) {
    EXPECT_TRUE(r.epc.bits().bit(95));
  }
  // The complement answers ~SL.
  QueryCommand qn;
  qn.sel = QuerySel::kNotSl;
  EXPECT_EQ(fx.run_round(qn).size(), 8u);
}

TEST(Gen2Reader, SelectiveRoundIsFasterThanFullRound) {
  // The mechanism Tagwatch exploits: excluding tags cuts inventory time.
  ReaderFixture fx_all(40);
  const auto t0 = fx_all.world.now();
  fx_all.run_round();
  const auto full = fx_all.world.now() - t0;

  ReaderFixture fx_sel(40);
  SelectCommand sel;
  sel.pointer = 94;
  sel.mask = util::BitString::from_binary("01");  // serials ≡ 2,3 mod 4
  fx_sel.reader->transmit_select(sel);
  const auto t1 = fx_sel.world.now();
  QueryCommand q;
  q.sel = QuerySel::kSl;
  q.q = 3;
  fx_sel.run_round(q);
  const auto part = fx_sel.world.now() - t1;
  // Both rounds pay the same τ0; the slot phase shrinks with the population.
  EXPECT_LT(part, full * 3 / 4);
}

TEST(Gen2Reader, PolicyComparisonIdealDfsaIsBest) {
  // Ideal DFSA (oracle frame sizing) should not be slower than fixed-Q FSA
  // with a mismatched frame.
  const std::size_t n = 30;
  auto run_policy = [n](AntiCollisionPolicy policy, std::uint8_t q) {
    ReaderConfig cfg;
    cfg.policy = policy;
    ReaderFixture fx(n, cfg);
    QueryCommand query;
    query.q = q;
    const auto t0 = fx.world.now();
    const auto reads = fx.run_round(query);
    EXPECT_EQ(reads.size(), n);
    return util::to_seconds(fx.world.now() - t0);
  };
  const double ideal = run_policy(AntiCollisionPolicy::kIdealDfsa, 5);
  const double qadapt = run_policy(AntiCollisionPolicy::kQAdaptive, 5);
  // Q=3 (8-slot frames) against 30 tags: badly undersized but solvable.
  // (Q=1 would livelock realistically: nearly every slot collides.)
  const double fsa_bad = run_policy(AntiCollisionPolicy::kFixedQ, 3);
  EXPECT_LT(ideal, fsa_bad);
  // Q-adaptive approaches the optimum (within 2.5×, §2.3's finding that the
  // COTS algorithm leaves little room for improvement).
  EXPECT_LT(qadapt, ideal * 2.5);
}

TEST(Gen2Reader, QAdaptiveRecoversFromBadInitialQ) {
  // Start with Q=0 (1-slot frames) against 30 tags: pure collisions until
  // the Q algorithm climbs.  The round must still complete.
  ReaderConfig cfg;
  cfg.policy = AntiCollisionPolicy::kQAdaptive;
  ReaderFixture fx(30, cfg);
  QueryCommand q;
  q.q = 0;
  EXPECT_EQ(fx.run_round(q).size(), 30u);
}

TEST(Gen2Reader, AbsentTagsDoNotRespond) {
  ReaderFixture fx(5);
  // Tag leaves before the round.
  fx.world.tags()[0].departs = util::SimTime{0};
  // Tag arrives far in the future.
  fx.world.tags()[1].arrives = util::sec(9999);
  const auto reads = fx.run_round();
  EXPECT_EQ(reads.size(), 3u);
}

TEST(Gen2Reader, BlockedTagsMissRoundsProbabilistically) {
  ReaderFixture fx(10);
  fx.world.tags()[0].block_probability = 1.0;  // always blocked
  std::size_t seen_blocked = 0;
  InvFlag target = InvFlag::kA;
  for (int i = 0; i < 10; ++i) {
    QueryCommand q;
    q.target = target;
    target = target == InvFlag::kA ? InvFlag::kB : InvFlag::kA;
    for (const auto& r : fx.run_round(q)) {
      if (r.epc == fx.world.tags()[0].epc) ++seen_blocked;
    }
  }
  EXPECT_EQ(seen_blocked, 0u);
}

TEST(Gen2Reader, SlotErrorInjectionStillCompletes) {
  ReaderConfig cfg;
  cfg.slot_error_rate = 0.3;
  ReaderFixture fx(20, cfg);
  const auto reads = fx.run_round();
  // Lossy slots delay but never drop tags: the round retries until read.
  EXPECT_EQ(reads.size(), 20u);
}

TEST(Gen2Reader, RoundStatsAreConsistent) {
  ReaderFixture fx(15);
  RoundStats stats = fx.reader->run_inventory_round(QueryCommand{}, nullptr);
  EXPECT_EQ(stats.success_slots, 15u);
  EXPECT_EQ(stats.slots,
            stats.empty_slots + stats.collision_slots + stats.success_slots +
                stats.lost_slots);
  EXPECT_GT(stats.duration.count(), 0);
}

TEST(Gen2Reader, ReadingsCarryPhysicalMetadata) {
  ReaderFixture fx(3);
  const auto reads = fx.run_round();
  ASSERT_EQ(reads.size(), 3u);
  for (const auto& r : reads) {
    EXPECT_GE(r.phase_rad, 0.0);
    EXPECT_LT(r.phase_rad, util::kTwoPi);
    EXPECT_LT(r.rssi_dbm, 0.0);   // plausible dBm
    EXPECT_GT(r.rssi_dbm, -95.0);
    EXPECT_EQ(r.antenna, 1);
    EXPECT_LT(r.channel, 16u);
    EXPECT_GT(r.timestamp.count(), 0);
  }
}

TEST(Gen2Reader, FrequencyHopsRespectDwell) {
  ReaderConfig cfg;
  cfg.channel_dwell = util::msec(50);
  ReaderFixture fx(10, cfg);
  std::set<std::size_t> channels;
  InvFlag target = InvFlag::kA;
  for (int i = 0; i < 40; ++i) {
    QueryCommand q;
    q.target = target;
    target = target == InvFlag::kA ? InvFlag::kB : InvFlag::kA;
    for (const auto& r : fx.run_round(q)) channels.insert(r.channel);
  }
  // Over ~40 rounds × ~25 ms with 50 ms dwell, many channels are visited.
  EXPECT_GT(channels.size(), 4u);
}

TEST(Gen2Reader, AntennaSelectionIsReported) {
  ReaderFixture fx(2);
  fx.reader.emplace(LinkTiming(LinkParams::max_throughput()), ReaderConfig{},
                    fx.world, fx.channel,
                    std::vector<rf::Antenna>{{1, {0, 0, 2}, 8.0},
                                             {2, {1, 0, 2}, 8.0}},
                    util::Rng(5));
  fx.reader->set_active_antenna(1);
  const auto reads = fx.run_round();
  for (const auto& r : reads) EXPECT_EQ(r.antenna, 2);
  EXPECT_THROW(fx.reader->set_active_antenna(2), std::out_of_range);
}

// ------------------------------------------------------ dense flag mirror
// The reader keeps protocol flags in a dense per-tag-index vector instead
// of the EPC-keyed FlagStore.  These tests pin the mirror to the store's
// exact semantics: Select application, survival across world reindexing,
// resumption on re-entry, and power-up state for new tags.

TEST(Gen2ReaderFlags, SelectMirrorsFlagStoreSemantics) {
  ReaderFixture fx(12);
  // The same Select sequence applied through the old EPC-keyed FlagStore
  // is the oracle for the dense mirror.
  FlagStore oracle;
  std::vector<util::Epc> epcs;
  for (const auto& t : fx.world.tags()) epcs.push_back(t.epc);

  std::vector<SelectCommand> sequence(3);
  sequence[0].target = SelectTarget::kSl;
  sequence[0].mask = epcs[3].bits().substring(0, 20);
  sequence[1].target = SelectTarget::kSessionS1;
  sequence[1].action = SelectAction::kAssertMatchedOnly;
  sequence[1].mask = epcs[7].bits().substring(0, 12);
  sequence[2].target = SelectTarget::kSl;
  sequence[2].action = SelectAction::kToggleMatched;
  sequence[2].mask = epcs[3].bits().substring(0, 8);
  sequence[2].truncate = true;

  for (const SelectCommand& cmd : sequence) {
    fx.reader->transmit_select(cmd);
    oracle.broadcast_select(cmd, epcs);
  }
  for (const util::Epc& epc : epcs) {
    const TagFlags* mirror = fx.reader->find_flags(epc);
    const TagFlags* expected = oracle.find(epc);
    ASSERT_NE(mirror, nullptr) << epc.to_hex();
    ASSERT_NE(expected, nullptr) << epc.to_hex();
    EXPECT_EQ(mirror->sl, expected->sl) << epc.to_hex();
    EXPECT_EQ(mirror->inventoried, expected->inventoried) << epc.to_hex();
    EXPECT_EQ(mirror->truncate_from, expected->truncate_from)
        << epc.to_hex();
  }
}

TEST(Gen2ReaderFlags, FlagsSurviveRemovalAndResumeOnReAdd) {
  ReaderFixture fx(10);
  // One full round flips every tag's S0 flag A -> B.
  ASSERT_EQ(fx.run_round().size(), 10u);
  const util::Epc victim = util::Epc::from_serial(4);
  const TagFlags* before = fx.reader->find_flags(victim);
  ASSERT_NE(before, nullptr);
  ASSERT_EQ(before->session_flag(Session::kS0), InvFlag::kB);

  // Removing the tag reindexes the world; the other nine keep their
  // flags (nobody answers a kA-target round) and the departed tag's
  // state stays queryable.
  ASSERT_TRUE(fx.world.remove_tag(victim));
  EXPECT_TRUE(fx.run_round().empty());
  const TagFlags* departed = fx.reader->find_flags(victim);
  ASSERT_NE(departed, nullptr);
  EXPECT_EQ(departed->session_flag(Session::kS0), InvFlag::kB);

  // Re-entry resumes the stashed flags: still on B, so the returning tag
  // does not answer a kA round either — exactly what the EPC-keyed store
  // did.
  sim::SimTag back;
  back.epc = victim;
  back.motion = std::make_shared<sim::StaticMotion>(util::Vec3{0, 0, 0});
  fx.world.add_tag(std::move(back));
  EXPECT_TRUE(fx.run_round().empty());
  QueryCommand qb;
  qb.target = InvFlag::kB;
  EXPECT_EQ(fx.run_round(qb).size(), 10u);
}

TEST(Gen2ReaderFlags, NewWorldTagsGetPowerUpFlags) {
  ReaderFixture fx(6);
  ASSERT_EQ(fx.run_round().size(), 6u);  // Everyone flips to B.

  sim::SimTag fresh;
  fresh.epc = util::Epc::from_serial(1000);
  fresh.motion = std::make_shared<sim::StaticMotion>(util::Vec3{0, 0, 0});
  fx.world.add_tag(std::move(fresh));

  const TagFlags* flags = fx.reader->find_flags(util::Epc::from_serial(1000));
  ASSERT_NE(flags, nullptr);
  EXPECT_FALSE(flags->sl);
  EXPECT_EQ(flags->session_flag(Session::kS0), InvFlag::kA);
  EXPECT_EQ(flags->truncate_from, TagFlags::kNoTruncate);

  // Only the fresh tag participates in the next kA round.
  const auto reads = fx.run_round();
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].epc, util::Epc::from_serial(1000));
}

TEST(Gen2ReaderFlags, UnknownEpcHasNoFlags) {
  ReaderFixture fx(3);
  fx.run_round();
  EXPECT_EQ(fx.reader->find_flags(util::Epc::from_serial(777)), nullptr);
}

}  // namespace
}  // namespace tagwatch::gen2
