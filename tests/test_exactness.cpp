// Exactness and robustness checks:
//   * greedy set cover vs brute-force optimum on small instances
//   * XML parser robustness against malformed input (must throw, never
//     hang or crash)
//   * time helpers round-trip
#include <gtest/gtest.h>

#include <string>

#include "core/setcover.hpp"
#include "llrp/rospec_xml.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tagwatch {
namespace {

/// Brute-force optimal set cover over the candidate list (≤ 20 candidates:
/// enumerate all subsets).
double brute_force_cost(const std::vector<core::BitmaskCandidate>& candidates,
                        const util::IndicatorBitmap& targets,
                        const core::InventoryCostModel& model) {
  const std::size_t m = candidates.size();
  EXPECT_LE(m, 20u) << "instance too large for brute force";
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 1; mask < (1u << m); ++mask) {
    util::IndicatorBitmap remaining = targets;
    double cost = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1u) {
        remaining.subtract(candidates[i].coverage);
        cost += model.cost_seconds(candidates[i].coverage.count());
      }
    }
    if (remaining.none()) best = std::min(best, cost);
  }
  return best;
}

TEST(GreedyExactness, WithinLnNOfOptimumOnSmallInstances) {
  // Greedy weighted set cover carries an H(n') ≈ ln(n')+1 approximation
  // guarantee.  On tiny instances we can verify directly against brute
  // force — and in practice greedy lands on the optimum here.
  const core::InventoryCostModel model = core::InventoryCostModel::paper_fit();
  util::Rng rng(161);
  int instances = 0;
  for (int trial = 0; trial < 40 && instances < 10; ++trial) {
    // Short EPCs keep the candidate count brute-forceable.
    std::vector<util::Epc> scene;
    for (int i = 0; i < 6; ++i) {
      scene.push_back(util::Epc::random(rng, 8));
    }
    core::BitmaskIndex index(scene);
    if (index.scene_size() < 4) continue;  // collisions: skip
    std::vector<util::Epc> target_epcs{index.scene()[0], index.scene()[2]};
    const auto targets = index.bitmap_of(target_epcs);
    const auto candidates = index.candidates_for(targets);
    if (candidates.size() > 20) continue;
    ++instances;

    const core::Schedule plan =
        core::GreedyCoverScheduler(model).plan(index, targets);
    const double optimum = brute_force_cost(candidates, targets, model);
    const double bound =
        optimum * (std::log(static_cast<double>(targets.count())) + 1.0);
    EXPECT_LE(plan.estimated_cost_s, std::max(optimum, bound) + 1e-9)
        << "trial " << trial;
    // Not required by theory, but observed: greedy is optimal on these.
    EXPECT_NEAR(plan.estimated_cost_s, optimum, optimum * 0.5);
  }
  EXPECT_GE(instances, 5);
}

TEST(RospecXmlRobustness, MalformedInputsThrowQuickly) {
  const std::vector<std::string> bad = {
      "",
      "   ",
      "<",
      "<>",
      "<ROSpec",
      "<ROSpec id=>",
      "<ROSpec id=\"1\"",
      "<ROSpec id=\"1\">",
      "<ROSpec id=\"1\"><AISpec>",
      "<ROSpec id=\"1\"><AISpec></ROSpec>",
      "<ROSpec></ROSpec>trailing",
      "<ROSpec id=\"1\"><AISpec><C1G2Filter bank=\"1\"/></AISpec></ROSpec>",
      "<ROSpec id=\"1\"><AISpec><StopTrigger kind=\"weird\"/>"
      "</AISpec></ROSpec>",
      "plain text",
  };
  for (const auto& input : bad) {
    EXPECT_THROW((void)llrp::rospec_from_xml(input), std::invalid_argument)
        << "input: " << input;
  }
}

TEST(RospecXmlRobustness, RandomGarbageNeverHangs) {
  util::Rng rng(162);
  for (int trial = 0; trial < 200; ++trial) {
    std::string s;
    const std::size_t len = rng.below(60);
    for (std::size_t i = 0; i < len; ++i) {
      s += static_cast<char>("<>/\"= aZ09\nROSpec"[rng.below(17)]);
    }
    try {
      (void)llrp::rospec_from_xml(s);
    } catch (const std::exception&) {
      // Throwing is the expected outcome for garbage.
    }
  }
  SUCCEED();
}

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(util::msec(1500), util::from_seconds(1.5));
  EXPECT_DOUBLE_EQ(util::to_seconds(util::msec(2500)), 2.5);
  EXPECT_DOUBLE_EQ(util::to_millis(util::usec(1500)), 1.5);
  EXPECT_EQ(util::sec(2), util::msec(2000));
  // Round trip through fractional seconds keeps microsecond precision.
  const double s = 123.456789;
  EXPECT_NEAR(util::to_seconds(util::from_seconds(s)), s, 1e-6);
}

TEST(Rng, ForkProducesIndependentStreams) {
  util::Rng parent(163);
  util::Rng child = parent.fork();
  // The child stream differs from the parent's continuation.
  bool any_different = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.uniform_u64(0, 1'000'000) != child.uniform_u64(0, 1'000'000)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
  // And forking is deterministic given the parent's state.
  util::Rng p1(163), p2(163);
  util::Rng c1 = p1.fork(), c2 = p2.fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(c1.uniform_u64(0, 1'000'000), c2.uniform_u64(0, 1'000'000));
  }
}

}  // namespace
}  // namespace tagwatch
