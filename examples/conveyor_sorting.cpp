// Conveyor sorting gate (the paper's §2.4 motivation, made interactive).
//
// A TrackPoint-style gate reads parcels riding a conveyor while sorted
// parcels parked near the gate hog the channel.  The example runs the same
// workload twice — plain read-all vs Tagwatch — and reports how many
// readings each transiting parcel received while it was inside the read
// zone.  The paper's requirement is ≥10 reads per transit for reliable
// localization; read-all misses it once parked tags pile up.
//
// Run: ./examples/conveyor_sorting
#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"
#include "util/stats.hpp"

using namespace tagwatch;

namespace {

struct Scenario {
  sim::World world;
  std::vector<util::Epc> parcels;                    // conveyor transits
  std::vector<std::pair<util::SimTime, util::SimTime>> windows;  // presence
};

/// 25 parked parcels near the gate + a parcel entering every 4 s.
std::unique_ptr<Scenario> build_scenario(util::SimDuration duration) {
  auto s = std::make_unique<Scenario>();
  util::Rng rng(99);
  for (int i = 0; i < 25; ++i) {
    sim::SimTag tag;
    tag.epc = util::Epc::random(rng);
    tag.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-3, 3), rng.uniform(0.5, 2.5), 0.0});
    tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    s->world.add_tag(std::move(tag));
  }
  for (util::SimTime t = util::sec(20); t < util::SimTime{0} + duration;
       t += util::sec(4)) {
    sim::SimTag tag;
    tag.epc = util::Epc::random(rng);
    // 4 m read zone at 1 m/s: 4 s transit.
    tag.motion = std::make_shared<sim::LinearConveyor>(
        util::Vec3{-2.0, 0.0, 0.0}, util::Vec3{1.0, 0.0, 0.0}, t, 4.0);
    tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    tag.arrives = t;
    tag.departs = t + util::sec(4);
    s->parcels.push_back(tag.epc);
    s->windows.emplace_back(t, t + util::sec(4));
    s->world.add_tag(std::move(tag));
  }
  return s;
}

double run(core::ScheduleMode mode, util::SimDuration duration,
           std::vector<double>& reads_per_transit) {
  auto scenario = build_scenario(duration);
  rf::RfChannel channel(rf::ChannelPlan::single(922.875e6));
  std::vector<rf::Antenna> antennas{{1, {-1, 0, 2}, 8.0},
                                    {2, {0, 0, 2}, 8.0},
                                    {3, {1, 0, 2}, 8.0}};
  llrp::SimReaderClient client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, scenario->world, channel, antennas, 7);
  // Everything below sees only the transport interface.
  llrp::ReaderClient& reader = client;

  core::TagwatchConfig config;
  config.mode = mode;
  config.phase2_duration = util::sec(2);  // tighter cycles: transits are 4 s
  core::TagwatchController tagwatch(config, reader);

  std::unordered_map<util::Epc, std::size_t> counts;
  tagwatch.set_read_listener(
      [&counts](const rf::TagReading& r) { ++counts[r.epc]; });

  while (reader.now() < util::SimTime{0} + duration) tagwatch.run_cycle();

  reads_per_transit.clear();
  for (const auto& epc : scenario->parcels) {
    reads_per_transit.push_back(static_cast<double>(counts[epc]));
  }
  const double served =
      static_cast<double>(std::count_if(reads_per_transit.begin(),
                                        reads_per_transit.end(),
                                        [](double c) { return c >= 10.0; }));
  return reads_per_transit.empty()
             ? 0.0
             : served / static_cast<double>(reads_per_transit.size());
}

}  // namespace

int main() {
  const util::SimDuration duration = util::sec(180);
  std::printf("Conveyor gate: 25 parked parcels + one transit every 4 s\n");
  std::printf("requirement: >= 10 reads during each 4 s transit\n\n");
  std::printf("%-10s  %14s  %16s\n", "mode", "median reads", "transits served");

  for (const auto& [mode, name] :
       {std::pair{core::ScheduleMode::kReadAll, "read-all"},
        std::pair{core::ScheduleMode::kGreedyCover, "tagwatch"}}) {
    std::vector<double> reads;
    const double served = run(mode, duration, reads);
    std::printf("%-10s  %14.1f  %15.0f%%\n", name,
                reads.empty() ? 0.0 : util::median(reads), served * 100.0);
  }
  std::printf("\nTagwatch promotes each entering parcel to a Phase II target "
              "after one assessment,\nso transits are read intensively while "
              "the parked population is throttled.\n");
  return 0;
}
