// Quickstart: the smallest complete Tagwatch deployment.
//
// Builds a simulated scene (38 stationary tags + 2 tags on a toy train),
// connects a Tagwatch controller to the simulated reader, runs a few
// reading cycles, and prints the per-tag reading rates — demonstrating the
// paper's headline effect: mobile tags are read an order of magnitude more
// often once Tagwatch's two-phase loop has converged.
//
// Run: ./examples/quickstart
#include <cstdio>
#include <memory>

#include "core/metrics.hpp"
#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

int main() {
  // 1. A world: 2 mobile tags circling on a toy train track, 38 static.
  sim::World world;
  util::Rng rng(2017);
  std::vector<util::Epc> movers;
  for (int i = 0; i < 40; ++i) {
    sim::SimTag tag;
    tag.epc = util::Epc::random(rng);
    if (i < 2) {
      tag.motion = std::make_shared<sim::CircularTrack>(
          util::Vec3{0.5, 0.5, 0.0}, /*radius=*/0.2, /*speed=*/0.7,
          /*phase0=*/static_cast<double>(i) * 3.14);
      movers.push_back(tag.epc);
    } else {
      tag.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0.0});
    }
    tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(tag));
  }

  // 2. A reader: 4 antennas, Gen2 link, simulated RF channel.
  rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, -5, 0}, 8.0},
                                    {3, {-5, 5, 0}, 8.0},
                                    {4, {5, 5, 0}, 8.0}};
  llrp::SimReaderClient client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel, antennas, /*seed=*/1);
  // The abstract transport the controller drives.
  llrp::ReaderClient& reader = client;

  // 3. Tagwatch: defaults from the paper (5 s Phase II, ξ=3, K=8, α=0.001).
  //    A metrics sink joins the built-in assessor/history sinks in the
  //    controller's reading pipeline.
  core::TagwatchConfig config;
  core::TagwatchController tagwatch(config, reader);
  std::shared_ptr<core::PipelineMetrics> metrics =
      core::attach_metrics(tagwatch);

  // 4. Run 10 cycles; the first few fall back to read-all while the
  //    immobility models learn, then Phase II narrows to the movers.
  std::printf("cycle  mode        targets  phase1_reads  phase2_reads\n");
  std::vector<core::CycleReport> reports = tagwatch.run_cycles(10);
  for (const auto& r : reports) {
    std::printf("%5zu  %-10s  %7zu  %12zu  %12zu\n", r.cycle_index,
                r.read_all_fallback ? "read-all" : "selective",
                r.targets.size(), r.phase1_readings, r.phase2_readings);
  }

  // 5. Per-tag IRR over the last 5 cycles.
  double secs = 0.0;
  std::unordered_map<util::Epc, std::size_t> counts;
  for (std::size_t c = 5; c < reports.size(); ++c) {
    secs += util::to_seconds(reports[c].phase2_duration);
    for (const auto& [epc, n] : reports[c].phase2_counts) counts[epc] += n;
  }
  const auto is_mover = [&movers](const util::Epc& e) {
    return std::find(movers.begin(), movers.end(), e) != movers.end();
  };
  double mover_irr = 0.0, static_irr = 0.0;
  std::size_t static_tags = 0;
  for (const auto& tag : world.tags()) {
    const double irr =
        static_cast<double>(counts[tag.epc]) / std::max(secs, 1e-9);
    if (is_mover(tag.epc)) {
      mover_irr += irr / 2.0;
    } else {
      static_irr += irr;
      ++static_tags;
    }
  }
  static_irr /= static_cast<double>(static_tags);
  std::printf("\nPhase II IRR, averaged over the last 5 cycles:\n");
  std::printf("  mobile tags : %6.1f Hz each\n", mover_irr);
  std::printf("  static tags : %6.1f Hz each\n", static_irr);
  std::printf("  (the paper's Fig. 15 reports ~47 Hz vs ~13 Hz read-all for "
              "the 2-of-40 case)\n");

  // 6. What flowed through the delivery pipeline.
  const core::PipelineMetricsSnapshot snap = metrics->snapshot();
  std::printf("\npipeline: %llu readings across %zu sinks over %llu cycles\n",
              static_cast<unsigned long long>(snap.readings_total()),
              snap.sinks.size(), static_cast<unsigned long long>(snap.cycles));
  return 0;
}
