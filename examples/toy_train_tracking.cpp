// Toy-train tracking (the paper's Fig. 1 demo as a runnable program).
//
// A tag rides a toy train on a circular track (r = 20 cm, 0.7 m/s) while
// stationary tags compete for the channel.  The program recovers the
// train's trajectory with the hologram tracker under traditional reading
// and under Tagwatch's rate-adaptive reading, and prints the mean tracking
// error for 0, 2, and 4 stationary companions.
//
// Run: ./examples/toy_train_tracking
#include <cstdio>
#include <memory>

#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "track/hologram.hpp"
#include "util/stats.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

namespace {

struct Result {
  double irr_hz;
  track::TrackingAccuracy accuracy;
};

Result run_case(std::size_t stationary, bool rate_adaptive) {
  sim::World world;
  util::Rng rng(42);

  const auto train_motion =
      std::make_shared<sim::CircularTrack>(util::Vec3{0, 0, 0}, 0.2, 0.7);
  sim::SimTag train_tag;
  train_tag.epc = util::Epc::random(rng);
  train_tag.motion = train_motion;
  train_tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
  const util::Epc train_epc = train_tag.epc;
  world.add_tag(std::move(train_tag));

  for (std::size_t i = 0; i < stationary; ++i) {
    sim::SimTag tag;
    tag.epc = util::Epc::random(rng);
    // Companions placed right beside the track.
    tag.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{0.35 * std::cos(1.57 * static_cast<double>(i)),
                   0.35 * std::sin(1.57 * static_cast<double>(i)), 0.0});
    tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(tag));
  }

  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  rf::RfChannel channel(plan);
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, -5, 0}, 8.0},
                                    {3, {-5, 5, 0}, 8.0},
                                    {4, {5, 5, 0}, 8.0}};
  llrp::SimReaderClient client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel, antennas, 5);
  // Everything below sees only the transport interface.
  llrp::ReaderClient& reader = client;

  core::TagwatchConfig config;
  config.mode = rate_adaptive ? core::ScheduleMode::kGreedyCover
                              : core::ScheduleMode::kReadAll;
  core::TagwatchController tagwatch(config, reader);

  std::vector<rf::TagReading> train_readings;
  tagwatch.set_read_listener([&](const rf::TagReading& r) {
    if (r.epc == train_epc) train_readings.push_back(r);
  });

  // Warm-up cycles let the immobility models converge, then measure.
  // Each cycle is tracked as its own segment with a known starting fix,
  // exactly like the paper's application study.
  tagwatch.run_cycles(4);
  Result result;
  util::RunningStats errors;
  std::size_t reads = 0;
  double secs = 0.0;
  std::size_t estimates = 0;
  for (int segment = 0; segment < 4; ++segment) {
    train_readings.clear();
    const util::SimTime t0 = reader.now();
    tagwatch.run_cycles(1);
    secs += util::to_seconds(reader.now() - t0);
    reads += train_readings.size();
    if (train_readings.empty()) continue;

    track::TrackerConfig tcfg;
    tcfg.min_x = -0.5;
    tcfg.max_x = 0.5;
    tcfg.min_y = -0.5;
    tcfg.max_y = 0.5;
    tcfg.initial_hint =
        train_motion->position(train_readings.front().timestamp);
    track::HologramTracker tracker(tcfg, antennas, plan);
    for (const auto& est : tracker.track(train_readings)) {
      errors.add(
          util::distance(est.position, train_motion->position(est.time)));
      ++estimates;
    }
  }
  result.irr_hz = static_cast<double>(reads) / secs;
  result.accuracy.mean_error_m = errors.mean();
  result.accuracy.stddev_error_m = errors.stddev();
  result.accuracy.estimates = estimates;
  return result;
}

}  // namespace

int main() {
  std::printf("Tracking a tagged toy train (r = 20 cm, 0.7 m/s)\n");
  std::printf("%-22s  %10s  %18s\n", "case", "IRR (Hz)", "mean error (cm)");
  for (const std::size_t stationary : {0u, 2u, 4u}) {
    const Result plain = run_case(stationary, /*rate_adaptive=*/false);
    std::printf("(1+%zu) traditional     %10.1f  %12.1f +- %.1f\n", stationary,
                plain.irr_hz, plain.accuracy.mean_error_m * 100.0,
                plain.accuracy.stddev_error_m * 100.0);
  }
  const Result adaptive = run_case(4, /*rate_adaptive=*/true);
  std::printf("(1+4) rate-adaptive   %10.1f  %12.1f +- %.1f\n",
              adaptive.irr_hz, adaptive.accuracy.mean_error_m * 100.0,
              adaptive.accuracy.stddev_error_m * 100.0);
  std::printf("\nPaper Fig. 1: 1.8 cm (1+0) -> 10.6 cm (1+4) traditional; "
              "3.34 cm with rate-adaptive reading.\n");
  return 0;
}
