// Warehouse monitor: a long-running deployment with a dynamic population,
// state transitions, and user-pinned tags from a configuration file.
//
// Demonstrates the operational side of Tagwatch:
//   * tags entering and leaving the field (§4.3 "reading exceptions")
//   * a stationary pallet that suddenly starts moving (state transition)
//   * "concerned" tags pinned via the configuration file (§5) that are
//     always scheduled regardless of motion state
//   * the upper-application event stream (motion alerts).
//
// Run: ./examples/warehouse_monitor
#include <cstdio>
#include <memory>
#include <set>

#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"
#include "util/config.hpp"

using namespace tagwatch;

int main() {
  sim::World world;
  util::Rng rng(7);

  // 60 pallets sitting in the warehouse.
  std::vector<util::Epc> pallets;
  for (int i = 0; i < 60; ++i) {
    sim::SimTag tag;
    tag.epc = util::Epc::random(rng);
    tag.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-8, 8), rng.uniform(-8, 8), 0.0});
    tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    pallets.push_back(tag.epc);
    world.add_tag(std::move(tag));
  }
  // Pallet #13 gets picked up by a forklift at t = 60 s.
  const util::Epc forklifted = pallets[13];
  {
    const auto idx = world.find_tag(forklifted);
    world.tags()[*idx].motion = std::make_shared<sim::LinearConveyor>(
        util::Vec3{2.0, 2.0, 0.0}, util::Vec3{0.8, 0.3, 0.0}, util::sec(60),
        6.0);
  }
  // A new delivery arrives at t = 90 s and departs at t = 150 s.
  sim::SimTag delivery;
  delivery.epc = util::Epc::random(rng);
  delivery.motion = std::make_shared<sim::StaticMotion>(util::Vec3{0, -4, 0});
  delivery.arrives = util::sec(90);
  delivery.departs = util::sec(150);
  delivery.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
  const util::Epc delivery_epc = delivery.epc;
  world.add_tag(std::move(delivery));

  // The user pins one high-value pallet in the configuration file: it is
  // always a Phase II target, moving or not.
  const auto config_text =
      "# warehouse monitor configuration\n"
      "phase2_seconds = 5\n"
      "pinned_targets = " + pallets[7].to_hex() + "\n";
  const auto file_config = util::KeyValueConfig::parse(config_text);

  rf::RfChannel channel(rf::ChannelPlan::single(921.0e6));
  std::vector<rf::Antenna> antennas{{1, {-9, -9, 3}, 8.0},
                                    {2, {9, -9, 3}, 8.0},
                                    {3, {-9, 9, 3}, 8.0},
                                    {4, {9, 9, 3}, 8.0}};
  llrp::SimReaderClient client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel, antennas, 3);
  // Everything below sees only the transport interface.
  llrp::ReaderClient& reader = client;

  core::TagwatchConfig config;
  config.phase2_duration =
      util::sec(file_config.get_int_or("phase2_seconds", 5));
  config.pinned_targets = file_config.get_epc_list("pinned_targets");
  core::TagwatchController tagwatch(config, reader);

  std::printf("monitoring 60 pallets; pinned = %s...\n\n",
              pallets[7].to_hex().substr(0, 8).c_str());
  std::printf("%6s  %-10s  %7s  %s\n", "t (s)", "mode", "targets",
              "events");

  std::set<util::Epc> previously_mobile;
  while (reader.now() < util::sec(200)) {
    const core::CycleReport r = tagwatch.run_cycle();
    std::string events;
    // Motion alerts: newly mobile tags.
    std::set<util::Epc> now_mobile(r.mobile.begin(), r.mobile.end());
    for (const auto& epc : now_mobile) {
      if (!previously_mobile.contains(epc) && r.cycle_index > 2) {
        events += "MOTION " + epc.to_hex().substr(0, 8) + "... ";
      }
    }
    previously_mobile = std::move(now_mobile);
    const bool delivery_seen =
        std::find(r.scene.begin(), r.scene.end(), delivery_epc) !=
        r.scene.end();
    if (delivery_seen) events += "(delivery in range) ";
    std::printf("%6.0f  %-10s  %7zu  %s\n", util::to_seconds(reader.now()),
                r.read_all_fallback ? "read-all" : "selective",
                r.targets.size(), events.c_str());
  }

  const core::TagHistory* h = tagwatch.history().find(forklifted);
  std::printf("\nforklifted pallet readings: %zu (boosted while moving)\n",
              h ? h->total_readings : 0);
  return 0;
}
