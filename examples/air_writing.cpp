// Air writing (the paper's §1 human–machine interface motivation [27]):
// a tag on a fingertip traces a letter in the air; the hologram tracker
// recovers the stroke from backscatter phase.  With a crowd of stationary
// tags sharing the channel, traditional reading undersamples the stroke;
// Tagwatch restores the sampling rate and the letter becomes legible.
//
// The recovered strokes are rendered as ASCII rasters for quick eyeballing.
//
// Run: ./examples/air_writing
#include <array>
#include <cstdio>
#include <memory>

#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "track/hologram.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

namespace {

/// The fingertip trajectory: letter "C" drawn as a 3/4 circle arc,
/// 15 cm radius, one stroke in ~2 s, repeated.
class LetterC final : public sim::MotionModel {
 public:
  util::Vec3 position(util::SimTime t) const override {
    const double stroke_s = 2.0;
    const double phase = std::fmod(util::to_seconds(t), stroke_s) / stroke_s;
    // Sweep from 45° to 315° (the C opening faces +x).
    const double angle = (0.25 + 1.5 * phase) * std::numbers::pi;
    return {0.15 * std::cos(angle), 0.15 * std::sin(angle), 0.0};
  }
  bool is_mobile() const override { return true; }
};

/// 21×21 ASCII raster of estimates within ±0.25 m.
void render(const std::vector<track::TrackEstimate>& estimates) {
  std::array<std::array<char, 21>, 21> grid;
  for (auto& row : grid) row.fill('.');
  for (const auto& est : estimates) {
    const int col = static_cast<int>((est.position.x + 0.25) / 0.5 * 20.0);
    const int row = static_cast<int>((0.25 - est.position.y) / 0.5 * 20.0);
    if (col >= 0 && col < 21 && row >= 0 && row < 21) {
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = '#';
    }
  }
  for (const auto& row : grid) {
    std::printf("  %.*s\n", 21, row.data());
  }
}

std::vector<track::TrackEstimate> run(bool rate_adaptive,
                                      std::size_t bystander_tags,
                                      double& irr_out) {
  sim::World world;
  util::Rng rng(27);

  const auto finger = std::make_shared<LetterC>();
  sim::SimTag tag;
  tag.epc = util::Epc::random(rng);
  tag.motion = finger;
  tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
  const util::Epc finger_epc = tag.epc;
  world.add_tag(std::move(tag));
  for (std::size_t i = 0; i < bystander_tags; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::random(rng);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0.0});
    t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(t));
  }

  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  rf::RfChannel channel(plan);
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, -5, 0}, 8.0},
                                    {3, {-5, 5, 0}, 8.0},
                                    {4, {5, 5, 0}, 8.0}};
  llrp::SimReaderClient client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel, antennas, 28);
  // Everything below sees only the transport interface.
  llrp::ReaderClient& reader = client;

  core::TagwatchConfig cfg;
  cfg.mode = rate_adaptive ? core::ScheduleMode::kGreedyCover
                           : core::ScheduleMode::kReadAll;
  cfg.phase2_duration = util::sec(2);  // one stroke per Phase II
  core::TagwatchController ctl(cfg, reader);

  std::vector<rf::TagReading> finger_readings;
  ctl.set_read_listener([&](const rf::TagReading& r) {
    if (r.epc == finger_epc) finger_readings.push_back(r);
  });

  ctl.run_cycles(4);  // warm-up
  finger_readings.clear();
  const util::SimTime t0 = reader.now();
  ctl.run_cycles(3);
  irr_out = static_cast<double>(finger_readings.size()) /
            util::to_seconds(reader.now() - t0);

  // Track stroke by stroke: at each 2 s boundary the fingertip teleports
  // from the stroke end back to the start, which would otherwise defeat
  // the tracker's continuity assumption.
  std::vector<track::TrackEstimate> estimates;
  std::vector<rf::TagReading> stroke;
  const auto flush = [&] {
    if (stroke.size() < 4) {
      stroke.clear();
      return;
    }
    track::TrackerConfig tcfg;
    tcfg.min_x = -0.3;
    tcfg.max_x = 0.3;
    tcfg.min_y = -0.3;
    tcfg.max_y = 0.3;
    tcfg.initial_hint = finger->position(stroke.front().timestamp);
    track::HologramTracker tracker(tcfg, antennas, plan);
    for (const auto& est : tracker.track(stroke)) estimates.push_back(est);
    stroke.clear();
  };
  std::int64_t current_stroke = -1;
  for (const auto& r : finger_readings) {
    const auto stroke_index =
        static_cast<std::int64_t>(util::to_seconds(r.timestamp) / 2.0);
    if (stroke_index != current_stroke) {
      flush();
      current_stroke = stroke_index;
    }
    stroke.push_back(r);
  }
  flush();
  return estimates;
}

}  // namespace

int main() {
  std::printf("Air writing: a fingertip tag draws the letter 'C' "
              "(15 cm arc, 2 s per stroke)\namong 30 stationary tags.\n");
  for (const bool adaptive : {false, true}) {
    double irr = 0.0;
    const auto estimates = run(adaptive, 30, irr);
    std::printf("\n--- %s: %.0f Hz on the fingertip, %zu stroke samples ---\n",
                adaptive ? "tagwatch" : "read-all", irr, estimates.size());
    render(estimates);
  }
  std::printf("\n(the paper's §1 cites RF-IDraw [27]: writing in the air "
              "needs exactly this sampling rate)\n");
  return 0;
}
