// E8 — Fig. 17: scheduling cost — the extra latency Tagwatch inserts
// between the last Phase I reading and the first Phase II reading
// (motion assessment + bitmask selection + Select delivery).
//
// The harness runs many cycles, slices the inter-phase gap per cycle, and
// prints its CDF plus the wall-clock compute time of assessment+set-cover.
//
// Paper shape targets: ≤4 ms extra in 50% of cycles, ≤6 ms in 90% —
// negligible against the 5 s cycle.  (Our gap additionally includes the
// Select air time and the round start-up, which the paper's reader hides
// inside its own Phase II start; the compute-only column is the direct
// comparison.)
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace tagwatch;
using bench::Testbed;

int main() {
  // Population: 60 tags, 3 movers.  Enough cycles for a stable CDF; the
  // paper slices 50,000 cycles, we use 400 (the distribution stabilizes
  // after a few dozen).
  constexpr std::size_t kCycles = 400;
  Testbed bed(60, 3, 801);
  core::TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(500);  // short cycles: more samples
  core::TagwatchController ctl(cfg, bed.reader());

  std::vector<double> gap_ms;
  std::vector<double> compute_ms;
  for (std::size_t c = 0; c < kCycles; ++c) {
    const core::CycleReport r = ctl.run_cycle();
    if (c < 10 || r.read_all_fallback) continue;  // warm-up / fallback
    if (r.interphase_gap) {
      gap_ms.push_back(util::to_millis(*r.interphase_gap));
    }
    compute_ms.push_back(r.schedule_compute_ms);
  }

  std::printf("E8 / Fig. 17 — scheduling cost over %zu selective cycles\n\n",
              gap_ms.size());
  std::printf("assessment + set-cover compute (wall clock):\n");
  std::printf("  P50 = %.3f ms   P90 = %.3f ms   P99 = %.3f ms\n\n",
              util::percentile(compute_ms, 0.5),
              util::percentile(compute_ms, 0.9),
              util::percentile(compute_ms, 0.99));

  std::printf("inter-phase gap (last Phase I read -> first Phase II read),\n"
              "including Select air time and round start-up:\n");
  std::printf("%10s  %s\n", "gap (ms)", "CDF");
  for (const auto& point : util::empirical_cdf(gap_ms, 12)) {
    std::printf("%10.2f  %.2f\n", point.value, point.cumulative_fraction);
  }
  std::printf("\n  P50 = %.2f ms   P90 = %.2f ms\n",
              util::percentile(gap_ms, 0.5), util::percentile(gap_ms, 0.9));
  std::printf("\npaper: <= 4 ms at P50, <= 6 ms at P90 for the "
              "compute-induced slice of the gap.\n");

  bench::BenchReport report("schedule_cost", /*seed=*/801);
  report.add("compute_p50", util::percentile(compute_ms, 0.5), "ms");
  report.add("compute_p90", util::percentile(compute_ms, 0.9), "ms");
  report.add("compute_p99", util::percentile(compute_ms, 0.99), "ms");
  report.add("gap_p50", util::percentile(gap_ms, 0.5), "ms");
  report.add("gap_p90", util::percentile(gap_ms, 0.9), "ms");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
