// E8 — Fig. 17: scheduling cost — the extra latency Tagwatch inserts
// between the last Phase I reading and the first Phase II reading
// (motion assessment + bitmask selection + Select delivery).
//
// The harness runs many cycles, slices the inter-phase gap per cycle, and
// prints its CDF plus the wall-clock compute time of assessment+set-cover.
//
// Paper shape targets: ≤4 ms extra in 50% of cycles, ≤6 ms in 90% —
// negligible against the 5 s cycle.  (Our gap additionally includes the
// Select air time and the round start-up, which the paper's reader hides
// inside its own Phase II start; the compute-only column is the direct
// comparison.)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/wall_clock.hpp"

using namespace tagwatch;
using bench::Testbed;

namespace {

/// Wall-clock milliseconds of one full plan() (candidate table + greedy
/// cover), minimum over `repeats` runs.
double plan_ms(const core::GreedyCoverScheduler& sched,
               const core::BitmaskIndex& index,
               const util::IndicatorBitmap& targets, int repeats) {
  util::WallClock& wall = util::WallClock::system();
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = wall.now_seconds();
    const core::Schedule plan = sched.plan(index, targets);
    const double elapsed_ms = (wall.now_seconds() - t0) * 1e3;
    if (plan.selections.empty()) std::abort();  // keep the work observable
    if (r == 0 || elapsed_ms < best) best = elapsed_ms;
  }
  return best;
}

/// Large-scene planning sweep (§5.3 fast path): plan() wall time across
/// scene sizes, plus the dense-reference comparison at 4,096 tags.
void planning_sweep(bench::BenchReport& report) {
  std::printf("\nlarge-scene planning sweep (lazy fast path):\n");
  std::printf("%10s  %10s  %12s\n", "tags", "targets", "plan (ms)");
  util::Rng rng(802);
  const core::GreedyCoverScheduler lazy(core::InventoryCostModel::paper_fit(),
                                        core::GreedyEvaluation::kLazy);
  const core::GreedyCoverScheduler dense(core::InventoryCostModel::paper_fit(),
                                         core::GreedyEvaluation::kDense);
  for (const std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    std::vector<util::Epc> scene;
    scene.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      scene.push_back(util::Epc::random(rng));
    }
    const core::BitmaskIndex index(scene);
    // 1/4 of the scene, clamped: the high-mobility regime, dense enough
    // that the greedy cover runs many rounds (what the lazy evaluation is
    // for), capped so the largest scene stays within the bench time budget.
    const std::size_t n_targets = std::clamp<std::size_t>(n / 4, 4, 1024);
    const std::vector<util::Epc> targets(
        index.scene().begin(),
        index.scene().begin() + static_cast<std::ptrdiff_t>(n_targets));
    const auto bitmap = index.bitmap_of(targets);

    const double lazy_ms = plan_ms(lazy, index, bitmap, 3);
    std::printf("%10zu  %10zu  %12.3f\n", n, n_targets, lazy_ms);
    report.add("plan_ms_at_" + std::to_string(n), lazy_ms, "ms");
    if (n == 4096) {
      const double dense_ms = plan_ms(dense, index, bitmap, 2);
      report.add("plan_dense_ms_at_4096", dense_ms, "ms");
      report.add("plan_speedup_at_4096", dense_ms / lazy_ms, "ratio");
      std::printf("%10s  %10s  %12.3f  (dense reference; %.1fx)\n", "", "",
                  dense_ms, dense_ms / lazy_ms);
    }
  }
}

}  // namespace

int main() {
  // Population: 60 tags, 3 movers.  Enough cycles for a stable CDF; the
  // paper slices 50,000 cycles, we use 400 (the distribution stabilizes
  // after a few dozen).
  constexpr std::size_t kCycles = 400;
  Testbed bed(60, 3, 801);
  core::TagwatchConfig cfg;
  cfg.phase2_duration = util::msec(500);  // short cycles: more samples
  core::TagwatchController ctl(cfg, bed.reader());

  std::vector<double> gap_ms;
  std::vector<double> compute_ms;
  for (std::size_t c = 0; c < kCycles; ++c) {
    const core::CycleReport r = ctl.run_cycle();
    if (c < 10 || r.read_all_fallback) continue;  // warm-up / fallback
    if (r.interphase_gap) {
      gap_ms.push_back(util::to_millis(*r.interphase_gap));
    }
    compute_ms.push_back(r.schedule_compute_ms);
  }

  std::printf("E8 / Fig. 17 — scheduling cost over %zu selective cycles\n\n",
              gap_ms.size());
  std::printf("assessment + set-cover compute (wall clock):\n");
  std::printf("  P50 = %.3f ms   P90 = %.3f ms   P99 = %.3f ms\n\n",
              util::percentile(compute_ms, 0.5),
              util::percentile(compute_ms, 0.9),
              util::percentile(compute_ms, 0.99));

  std::printf("inter-phase gap (last Phase I read -> first Phase II read),\n"
              "including Select air time and round start-up:\n");
  std::printf("%10s  %s\n", "gap (ms)", "CDF");
  for (const auto& point : util::empirical_cdf(gap_ms, 12)) {
    std::printf("%10.2f  %.2f\n", point.value, point.cumulative_fraction);
  }
  std::printf("\n  P50 = %.2f ms   P90 = %.2f ms\n",
              util::percentile(gap_ms, 0.5), util::percentile(gap_ms, 0.9));
  std::printf("\npaper: <= 4 ms at P50, <= 6 ms at P90 for the "
              "compute-induced slice of the gap.\n");

  bench::BenchReport report("schedule_cost", /*seed=*/801);
  report.add("compute_p50", util::percentile(compute_ms, 0.5), "ms");
  report.add("compute_p90", util::percentile(compute_ms, 0.9), "ms");
  report.add("compute_p99", util::percentile(compute_ms, 0.99), "ms");
  report.add("gap_p50", util::percentile(gap_ms, 0.5), "ms");
  report.add("gap_p90", util::percentile(gap_ms, 0.9), "ms");
  planning_sweep(report);
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
