// E2 — Fig. 2: empirical IRR vs population size, against the theoretical
// model C(n) = τ0 + n·e·τ̄·ln n (Eqn. 5–6).
//
// Sweeps n = 1..40 tags over several initial-Q settings with frequency
// hopping across the 16-channel 920–926 MHz plan, measures the mean IRR
// per setting, least-squares fits (τ0, τ̄), and prints the measured and
// model curves side by side.
//
// Paper shape targets: IRR is purely decreasing, dropping ~84% from n=1 to
// n≈40 (63 Hz → 12 Hz on their hardware); the model tracks the measurement
// trend; Q-adaptive is insensitive to the initial Q.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_report.hpp"
#include "core/rate_model.hpp"
#include "gen2/reader.hpp"
#include "util/circular.hpp"
#include "util/stats.hpp"

using namespace tagwatch;

namespace {

/// Measures the mean inventory-round duration for n tags (dual-target,
/// `rounds` rounds after one warm-up round).
util::SimDuration mean_round_duration(
    std::size_t n, std::uint8_t initial_q, std::size_t rounds,
    std::uint64_t seed,
    gen2::AntiCollisionPolicy policy = gen2::AntiCollisionPolicy::kQAdaptive) {
  sim::World world;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::random(rng);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-3, 3), rng.uniform(-3, 3), 0.0});
    t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(t));
  }
  rf::RfChannel channel(rf::ChannelPlan::china_920_926());
  gen2::ReaderConfig rcfg;
  rcfg.policy = policy;
  gen2::Gen2Reader reader(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                          rcfg, world, channel, {{1, {0, 0, 2}, 8.0}},
                          util::Rng(seed + 1));
  gen2::InvFlag target = gen2::InvFlag::kA;
  util::SimDuration total{0};
  for (std::size_t r = 0; r < rounds + 1; ++r) {
    gen2::QueryCommand q;
    q.q = initial_q;
    q.target = target;
    target = target == gen2::InvFlag::kA ? gen2::InvFlag::kB
                                         : gen2::InvFlag::kA;
    const auto stats = reader.run_inventory_round(q, nullptr);
    if (r > 0) total += stats.duration;  // skip warm-up round
  }
  return total / rounds;
}

}  // namespace

int main() {
  constexpr std::size_t kRepeatRounds = 50;  // paper: 50 repetitions
  const std::vector<std::uint8_t> initial_qs{1, 2, 4, 6};
  const std::vector<std::size_t> ns{1,  2,  4,  6,  8,  10, 12, 15,
                                    18, 21, 24, 27, 30, 33, 36, 40};

  std::printf("E2 / Fig. 2 — IRR vs number of tags (ImpinJ-style Q-adaptive "
              "reader, 16 channels 920-926 MHz)\n\n");

  // Measure per (n, Q); also gather the fit samples.
  std::vector<std::size_t> fit_ns;
  std::vector<util::SimDuration> fit_durations;
  std::vector<std::vector<double>> irr(initial_qs.size());
  for (std::size_t qi = 0; qi < initial_qs.size(); ++qi) {
    for (const std::size_t n : ns) {
      const util::SimDuration d = mean_round_duration(
          n, initial_qs[qi], kRepeatRounds, 1000 + 31 * n + qi);
      irr[qi].push_back(1.0 / util::to_seconds(d));
      fit_ns.push_back(n);
      fit_durations.push_back(d);
    }
  }

  const auto fitted = core::InventoryCostModel::fit(fit_ns, fit_durations);
  std::printf("least-squares fit:  tau0 = %.2f ms   taubar = %.3f ms   "
              "(R^2 = %.3f)\n",
              fitted.tau0_seconds() * 1e3, fitted.taubar_seconds() * 1e3,
              fitted.fit_r_squared());
  std::printf("paper's hardware fit: tau0 = 19 ms, taubar = 0.18 ms\n\n");

  std::printf("%4s  %8s  %8s  %8s  %8s  %8s  %10s\n", "n", "Q0=1", "Q0=2",
              "Q0=4", "Q0=6", "tree", "model(Hz)");
  for (std::size_t i = 0; i < ns.size(); ++i) {
    std::printf("%4zu", ns[i]);
    for (std::size_t qi = 0; qi < initial_qs.size(); ++qi) {
      std::printf("  %8.2f", irr[qi][i]);
    }
    // Extra baseline: binary tree splitting (the TDMA family of §8) —
    // same order as Q-adaptive, confirming the paper's point that better
    // anti-collision buys little.
    const util::SimDuration tree = mean_round_duration(
        ns[i], 4, kRepeatRounds, 77000 + ns[i],
        gen2::AntiCollisionPolicy::kBinaryTree);
    std::printf("  %8.2f", 1.0 / util::to_seconds(tree));
    std::printf("  %10.2f\n", fitted.irr_hz(ns[i]));
  }

  const double drop = 1.0 - irr[2].back() / irr[2].front();
  std::printf("\nIRR drop from n=1 to n=40 (Q0=4): %.0f%%   (paper: ~84%%)\n",
              drop * 100.0);

  bench::BenchReport report("irr_model", /*seed=*/1000);
  report.add("fit_tau0", fitted.tau0_seconds() * 1e3, "ms");
  report.add("fit_taubar", fitted.taubar_seconds() * 1e3, "ms");
  report.add("fit_r_squared", fitted.fit_r_squared(), "ratio");
  report.add("irr_n1_q4", irr[2].front(), "hz");
  report.add("irr_n40_q4", irr[2].back(), "hz");
  report.add("irr_drop_n1_to_n40", drop, "ratio");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
