// End-to-end cycle throughput of the Phase-II planning engine: full
// plan_cycle() passes (Phase-I scene-snapshot diff + incremental candidate
// maintenance + greedy cover) per second on a churning population, across
// scene scales — the headline number the SIMD kernel dispatch and the
// parallel candidate generation exist to move.
//
// Also recorded:
//   * simd_speedup — the fused AND+popcount microkernel, best detected ISA
//     over the portable scalar kernels.  When AVX2 was detected the run
//     FAILS (exit 1) below 1.5x: dispatch overhead swallowing the win is a
//     regression, not a shrug.
//   * planning_threads_speedup — parallel candidate generation over the
//     serial sweep (report-only: CI boxes may have a single core).
//   * plans_identical — in-bench oracle: the {scalar ISA, serial} plan must
//     be byte-identical to the {best ISA, 4-thread} plan at every scale;
//     any divergence FAILS the run (exit 2).
//
// Scales default to 4k/16k/64k/256k tags; TAGWATCH_BENCH_CYCLE_N caps the
// largest scale so smoke jobs stay fast.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "core/incremental_planner.hpp"
#include "core/setcover.hpp"
#include "util/epc.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/task_pool.hpp"

using namespace tagwatch;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sorted unique scene with a target flag per tag.
struct World {
  std::vector<util::Epc> scene;
  std::vector<std::uint8_t> is_target;

  std::vector<util::Epc> targets() const {
    std::vector<util::Epc> out;
    for (std::size_t i = 0; i < scene.size(); ++i) {
      if (is_target[i]) out.push_back(scene[i]);
    }
    return out;
  }
};

World make_world(std::size_t n, std::size_t n_targets, util::Rng& rng) {
  World w;
  w.scene.reserve(n + n / 16);
  while (w.scene.size() < n) {
    for (std::size_t i = w.scene.size(); i < n; ++i) {
      w.scene.push_back(util::Epc::random(rng));
    }
    std::sort(w.scene.begin(), w.scene.end());
    w.scene.erase(std::unique(w.scene.begin(), w.scene.end()),
                  w.scene.end());
  }
  w.is_target.assign(w.scene.size(), 0);
  std::size_t set = 0;
  while (set < n_targets) {
    std::uint8_t& flag =
        w.is_target[rng.below(static_cast<std::uint32_t>(w.scene.size()))];
    set += flag == 0;
    flag = 1;
  }
  return w;
}

/// One cycle of population churn: `moves` tags swap out for fresh EPCs and
/// a similar number of target flags flip — the paper's mobility regime,
/// small against the scene so cycles stay on the incremental path.
void churn(World& w, std::size_t moves, util::Rng& rng) {
  for (std::size_t i = 0; i < moves; ++i) {
    const std::size_t at =
        rng.below(static_cast<std::uint32_t>(w.scene.size()));
    w.scene.erase(w.scene.begin() + static_cast<std::ptrdiff_t>(at));
    w.is_target.erase(w.is_target.begin() + static_cast<std::ptrdiff_t>(at));
    const util::Epc epc = util::Epc::random(rng);
    const auto it = std::lower_bound(w.scene.begin(), w.scene.end(), epc);
    if (it != w.scene.end() && *it == epc) continue;  // Collision: skip.
    const auto pos = static_cast<std::size_t>(it - w.scene.begin());
    w.scene.insert(it, epc);
    w.is_target.insert(w.is_target.begin() + static_cast<std::ptrdiff_t>(pos),
                       rng.below(8) == 0 ? 1 : 0);
  }
  for (std::size_t i = 0; i < moves; ++i) {
    std::uint8_t& flag =
        w.is_target[rng.below(static_cast<std::uint32_t>(w.scene.size()))];
    flag = flag == 0 ? 1 : 0;
  }
  // At least one target must remain.
  for (const std::uint8_t f : w.is_target) {
    if (f != 0) return;
  }
  w.is_target.front() = 1;
}

bool schedules_equal(const core::Schedule& a, const core::Schedule& b) {
  if (a.selections.size() != b.selections.size() ||
      a.estimated_cost_s != b.estimated_cost_s ||
      a.used_naive_fallback != b.used_naive_fallback ||
      !(a.covered_union == b.covered_union)) {
    return false;
  }
  for (std::size_t i = 0; i < a.selections.size(); ++i) {
    if (!(a.selections[i].bitmask == b.selections[i].bitmask) ||
        a.selections[i].covered_total != b.selections[i].covered_total ||
        a.selections[i].covered_targets != b.selections[i].covered_targets) {
      return false;
    }
  }
  return true;
}

/// Runs `cycles` churn+plan_cycle passes and returns the best cycles/sec
/// over `reps` repetitions (fresh planner state each rep, same churn tape
/// via the seed).
double measure_cycle_rate(std::size_t n, std::size_t cycles, std::size_t reps,
                          util::TaskPool* pool,
                          core::Schedule* last_schedule) {
  double best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    util::Rng rng(0xc1c1e000 + n);
    World w = make_world(n, std::max<std::size_t>(n / 64, 8), rng);
    core::IncrementalPlanner planner(core::InventoryCostModel::paper_fit(),
                                     0.15, pool);
    // Untimed warm-up cycle: the initial full rebuild is a one-off.
    planner.plan_cycle(w.scene, w.targets());
    const double t0 = now_seconds();
    for (std::size_t c = 0; c < cycles; ++c) {
      churn(w, std::max<std::size_t>(n / 512, 2), rng);
      core::Schedule s = planner.plan_cycle(w.scene, w.targets());
      if (last_schedule != nullptr && c + 1 == cycles) {
        *last_schedule = std::move(s);
      }
    }
    const double dt = now_seconds() - t0;
    best = std::max(best, static_cast<double>(cycles) / dt);
  }
  return best;
}

/// Best-of-reps seconds for `fn()` run once.
template <typename Fn>
double best_seconds(std::size_t reps, Fn&& fn) {
  double best = 1e100;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

}  // namespace

int main() {
  bench::BenchReport report("cycle_throughput", 0xc1c1e);
  const util::simd::Isa best_isa = util::simd::detected_isa();
  std::printf("cycle throughput bench (detected ISA: %s)\n",
              util::simd::isa_name(best_isa));

  // ------------------------------------------------- SIMD microkernel A/B
  // Fused AND+popcount over 1 MiB of bitmap per call — the inner loop of
  // candidate generation and trie materialization.
  {
    const std::size_t words = 128 * 1024;
    util::Rng rng(0x51d0);
    std::vector<std::uint64_t> a(words), b(words);
    for (std::uint64_t& w : a) w = rng.uniform_u64(0, ~std::uint64_t{0});
    for (std::uint64_t& w : b) w = rng.uniform_u64(0, ~std::uint64_t{0});
    const util::simd::KernelTable& scalar = util::simd::scalar_kernels();
    const util::simd::KernelTable& native = util::simd::kernels_for(best_isa);
    volatile std::size_t sink = 0;
    const auto run = [&](const util::simd::KernelTable& k) {
      std::size_t total = 0;
      for (int pass = 0; pass < 64; ++pass) {
        total += k.and_popcount(a.data(), b.data(), words);
      }
      sink = total;
    };
    const double t_scalar = best_seconds(5, [&] { run(scalar); });
    const double t_native = best_seconds(5, [&] { run(native); });
    const double speedup = t_scalar / t_native;
    std::printf("  and_popcount: scalar %.3f ms, %s %.3f ms -> %.2fx\n",
                t_scalar * 1e3, util::simd::isa_name(native.isa),
                t_native * 1e3, speedup);
    report.add("simd_speedup", speedup, "ratio");
    if (native.isa == util::simd::Isa::kAvx2 && speedup < 1.5) {
      std::fprintf(stderr,
                   "FAIL: AVX2 and_popcount speedup %.2fx < 1.5x floor\n",
                   speedup);
      return 1;
    }
  }

  // ----------------------------------------------- cycle-rate scale sweep
  std::size_t max_n = 262144;
  if (const char* cap = std::getenv("TAGWATCH_BENCH_CYCLE_N")) {
    max_n = std::min<std::size_t>(max_n, std::strtoull(cap, nullptr, 10));
  }
  util::TaskPool pool(4);
  for (const std::size_t n : {std::size_t{4096}, std::size_t{16384},
                              std::size_t{65536}, std::size_t{262144}}) {
    if (n > max_n) {
      std::printf("  %zu tags: skipped (TAGWATCH_BENCH_CYCLE_N)\n", n);
      continue;
    }
    const std::size_t cycles =
        std::clamp<std::size_t>((std::size_t{1} << 22) / n, 4, 64);
    const std::size_t reps = n <= 16384 ? 3 : 2;

    // In-bench oracle: scalar/serial vs best-ISA/4-thread, same churn tape.
    core::Schedule oracle, fast;
    util::simd::set_active_isa(util::simd::Isa::kScalar);
    measure_cycle_rate(n, 4, 1, nullptr, &oracle);
    util::simd::set_active_isa(best_isa);
    measure_cycle_rate(n, 4, 1, &pool, &fast);
    if (!schedules_equal(oracle, fast)) {
      std::fprintf(stderr,
                   "FAIL: plan divergence at %zu tags between "
                   "{scalar, serial} and {%s, 4 threads}\n",
                   n, util::simd::isa_name(best_isa));
      return 2;
    }

    const double rate = measure_cycle_rate(n, cycles, reps, &pool, nullptr);
    std::printf("  %zu tags: %.1f cycles/s (plans oracle-identical)\n", n,
                rate);
    report.add("cycles_per_sec_at_" + std::to_string(n), rate, "hz");
  }
  report.add("plans_identical", 1.0, "bool");

  // ------------------------------------- parallel candidate-gen A/B
  // Report-only: a single-core box legitimately reports ~1.0x here.
  {
    const std::size_t n = std::min<std::size_t>(max_n, 65536);
    util::Rng rng(0x7a5c);
    World w = make_world(n, std::max<std::size_t>(n / 64, 8), rng);
    const core::BitmaskIndex index(w.scene);
    const util::IndicatorBitmap targets = index.bitmap_of(w.targets());
    const double t_serial =
        best_seconds(3, [&] { index.candidates_for(targets); });
    const double t_pool =
        best_seconds(3, [&] { index.candidates_for(targets, &pool); });
    const double speedup = t_serial / t_pool;
    std::printf("  candidates_for at %zu tags: serial %.1f ms, "
                "4 threads %.1f ms -> %.2fx\n",
                n, t_serial * 1e3, t_pool * 1e3, speedup);
    report.add("planning_threads_speedup", speedup, "ratio");
  }

  const std::string path = report.write();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
