// E6 — Fig. 14: the self-learning curve.
//
// A stationary tag is observed while a person walks around.  The immobility
// model is trained on the first T of trace (T swept from 0.1 s to 10 s) and
// tested on the subsequent readings: accuracy = fraction of test readings
// correctly classified as stationary.
//
// Paper shape targets: ~70% accuracy after ~1.5 s (≈67 readings), ~90%
// after ~2.9 s (≈130 readings) — one 5 s cycle suffices to stabilize a
// newly emerging Gaussian component ("quick start").
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_report.hpp"
#include "core/detectors.hpp"
#include "gen2/reader.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

namespace {

std::vector<rf::TagReading> collect_trace(std::uint64_t seed,
                                          util::SimDuration duration) {
  sim::World world;
  util::Rng rng(seed);
  sim::SimTag tag;
  tag.epc = util::Epc::from_serial(1);
  tag.motion = std::make_shared<sim::StaticMotion>(util::Vec3{1.5, 0.5, 0.0});
  tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
  world.add_tag(std::move(tag));
  util::Rng walk_rng = rng.fork();
  world.add_reflector({std::make_shared<sim::RandomWaypoint>(
                           util::Vec3{-3, -3, 0}, util::Vec3{3, 3, 0}, 1.0,
                           duration, walk_rng, util::sec(2)),
                       0.3});

  rf::RfChannel channel(rf::ChannelPlan::china_920_926());
  // Alone in the field the tag is read at ~45 Hz, matching the paper's
  // ~45 readings/s trace density (67 readings ≈ 1.5 s).  Fast frequency
  // hopping spreads those readings over per-channel immobility models, so
  // stable detection needs every channel's model to mature — the gradual
  // ramp of Fig. 14.
  gen2::ReaderConfig rcfg;
  rcfg.channel_dwell = util::msec(80);
  gen2::Gen2Reader reader(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                          rcfg, world, channel, {{1, {0, 0, 2}, 8.0}},
                          util::Rng(seed + 1));
  std::vector<rf::TagReading> trace;
  gen2::InvFlag target = gen2::InvFlag::kA;
  while (world.now() < util::SimTime{0} + duration) {
    gen2::QueryCommand q;
    q.target = target;
    target = target == gen2::InvFlag::kA ? gen2::InvFlag::kB
                                         : gen2::InvFlag::kA;
    reader.run_inventory_round(
        q, [&trace](const rf::TagReading& r) { trace.push_back(r); });
  }
  return trace;
}

/// Trains on trace[0, train_end_s) and tests on the next 0.8 s of trace
/// (long enough to span several hop channels, as a Phase I pass would).
double accuracy_after(const std::vector<rf::TagReading>& trace,
                      double train_end_s) {
  core::DetectorConfig cfg;
  cfg.phase_mog.trust_count = 5;
  const auto detector = core::make_detector(core::DetectorKind::kPhaseMog, cfg);
  std::size_t correct = 0, tested = 0;
  for (const auto& r : trace) {
    const double t = util::to_seconds(r.timestamp);
    if (t < train_end_s) {
      detector->update(r);
    } else if (t < train_end_s + 0.8) {
      if (detector->classify(r) == core::MotionVerdict::kStationary) ++correct;
      ++tested;
    }
  }
  return tested ? static_cast<double>(correct) / static_cast<double>(tested)
                : 0.0;
}

}  // namespace

int main() {
  std::printf("E6 / Fig. 14 — learning curve: accuracy vs training time\n");
  std::printf("(stationary tag, person walking around; test = next 0.8 s)\n\n");
  std::printf("%-10s  %-10s  %s\n", "train (s)", "readings", "accuracy");

  constexpr int kRuns = 10;
  std::vector<std::vector<rf::TagReading>> traces;
  for (int run = 0; run < kRuns; ++run) {
    traces.push_back(collect_trace(3000 + static_cast<std::uint64_t>(run),
                                   util::sec(12)));
  }

  double at_1_5 = 0.0, at_3 = 0.0;
  for (const double train_s : {0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.9,
                               4.0, 5.0, 7.5, 10.0}) {
    double acc = 0.0;
    double readings = 0.0;
    for (const auto& trace : traces) {
      acc += accuracy_after(trace, train_s);
      for (const auto& r : trace) {
        if (util::to_seconds(r.timestamp) < train_s) readings += 1.0;
      }
    }
    acc /= kRuns;
    readings /= kRuns;
    std::printf("%-10.2f  %-10.0f  %5.1f%%\n", train_s, readings, acc * 100.0);
    if (train_s == 1.5) at_1_5 = acc;
    if (train_s == 2.9) at_3 = acc;
  }
  std::printf("\npaper: ~70%% at 1.49 s (67 readings), ~90%% at 2.9 s "
              "(130 readings)\n");
  std::printf("measured: %.0f%% at 1.5 s, %.0f%% at 2.9 s\n", at_1_5 * 100.0,
              at_3 * 100.0);

  bench::BenchReport report("learning_curve", /*seed=*/3000);
  report.add("accuracy_at_1_5s", at_1_5, "ratio");
  report.add("accuracy_at_2_9s", at_3, "ratio");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
