// Microbenchmarks (google-benchmark) for the scheduling hot path:
// indexed-table construction and the greedy set-cover search, across scene
// sizes and target counts.  This is the compute that must fit inside the
// Fig.-17 budget (a few ms per cycle).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_report.hpp"
#include "core/setcover.hpp"
#include "util/rng.hpp"
#include "util/wall_clock.hpp"

using namespace tagwatch;

namespace {

std::vector<util::Epc> random_scene(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<util::Epc> scene;
  scene.reserve(n);
  for (std::size_t i = 0; i < n; ++i) scene.push_back(util::Epc::random(rng));
  return scene;
}

/// Target count for the scene-size sweeps: 1/4 of the scene, clamped to
/// [4, 1024] — the paper's high-mobility regime, where a sizeable slice
/// of the inventory moved and needs a Phase-II re-read.  Dense enough
/// that the greedy cover needs many rounds (33 selections at 4,096 tags);
/// a sparse target set finishes in 2-3 rounds and barely exercises the
/// per-round rescan the lazy evaluation removes.  Capped so the largest
/// scenes stay within bench time budgets.
std::size_t sweep_target_count(std::size_t n) {
  return std::clamp<std::size_t>(n / 4, 4, 1024);
}

void BM_BitmaskIndexBuild(benchmark::State& state) {
  const auto scene = random_scene(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    core::BitmaskIndex index(scene);
    benchmark::DoNotOptimize(index.scene_size());
  }
}
BENCHMARK(BM_BitmaskIndexBuild)->Arg(40)->Arg(100)->Arg(400);

void BM_CandidateEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto n_targets = static_cast<std::size_t>(state.range(1));
  const auto scene = random_scene(n, 11);
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> targets(index.scene().begin(),
                                 index.scene().begin() +
                                     static_cast<std::ptrdiff_t>(n_targets));
  const auto bitmap = index.bitmap_of(targets);
  for (auto _ : state) {
    auto candidates = index.candidates_for(bitmap);
    benchmark::DoNotOptimize(candidates.size());
  }
}
BENCHMARK(BM_CandidateEnumeration)
    ->Args({40, 2})
    ->Args({40, 8})
    ->Args({100, 5})
    ->Args({400, 20});

void BM_GreedyCoverPlan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto n_targets = static_cast<std::size_t>(state.range(1));
  const auto scene = random_scene(n, 13);
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> targets(index.scene().begin(),
                                 index.scene().begin() +
                                     static_cast<std::ptrdiff_t>(n_targets));
  const auto bitmap = index.bitmap_of(targets);
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit());
  for (auto _ : state) {
    auto plan = sched.plan(index, bitmap);
    benchmark::DoNotOptimize(plan.selections.size());
  }
}
BENCHMARK(BM_GreedyCoverPlan)
    ->Args({40, 2})
    ->Args({40, 8})
    ->Args({100, 5})
    ->Args({200, 10})
    ->Args({400, 20});

void BM_EndToEndSchedule(benchmark::State& state) {
  // The full per-cycle compute: build the index, map targets, plan.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto n_targets = static_cast<std::size_t>(state.range(1));
  const auto scene = random_scene(n, 17);
  std::vector<util::Epc> targets(scene.begin(),
                                 scene.begin() +
                                     static_cast<std::ptrdiff_t>(n_targets));
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit());
  for (auto _ : state) {
    core::BitmaskIndex index(scene);
    auto plan = sched.plan(index, index.bitmap_of(targets));
    benchmark::DoNotOptimize(plan.estimated_cost_s);
  }
}
BENCHMARK(BM_EndToEndSchedule)->Args({60, 3})->Args({400, 20});

/// Scene-size sweep of the full Phase-II planning step (candidate table +
/// greedy cover) on the word-parallel lazy fast path.  This is the
/// headline large-scene number: planning must stay cheap relative to the
/// air protocol as scenes grow to warehouse size.
void BM_PlanningSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto scene = random_scene(n, 23);
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> targets(
      index.scene().begin(),
      index.scene().begin() +
          static_cast<std::ptrdiff_t>(sweep_target_count(n)));
  const auto bitmap = index.bitmap_of(targets);
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit(),
                                   core::GreedyEvaluation::kLazy);
  for (auto _ : state) {
    auto plan = sched.plan(index, bitmap);
    benchmark::DoNotOptimize(plan.estimated_cost_s);
  }
}
BENCHMARK(BM_PlanningSweep)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

/// The same sweep through the pre-fast-path reference pipeline
/// (bit-by-bit candidate rebuild + dense full-rescan greedy).  Capped at
/// 4,096 tags — the acceptance point for the speedup ratio — because the
/// reference is quadratic-ish in scene size.
void BM_PlanningSweepReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto scene = random_scene(n, 23);
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> targets(
      index.scene().begin(),
      index.scene().begin() +
          static_cast<std::ptrdiff_t>(sweep_target_count(n)));
  const auto bitmap = index.bitmap_of(targets);
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit(),
                                   core::GreedyEvaluation::kDense);
  for (auto _ : state) {
    auto plan = sched.plan(index, bitmap);
    benchmark::DoNotOptimize(plan.estimated_cost_s);
  }
}
BENCHMARK(BM_PlanningSweepReference)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// Console output as usual, plus every run teed into a BenchReport so the
/// microbench emits the same BENCH_<name>.json as the scenario harnesses.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(bench::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_.add(run.benchmark_name() + "/real_time",
                  run.GetAdjustedRealTime(),
                  benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report("scheduler_micro", /*seed=*/7);
  JsonTeeReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // Headline ratio: lazy fast path vs the pre-fast-path reference at the
  // 4,096-tag acceptance point (skipped when a --benchmark_filter excluded
  // either sweep).  Measured as a dedicated paired run — alternating
  // reference/fast repetitions on the same inputs, taking the minimum of
  // each side — instead of a quotient of the two sweep means above: on a
  // shared runner, scheduler noise inflates the two independent sweeps
  // unevenly and the mean quotient swings by 2x run to run, while
  // min-of-paired-reps rejects the noise and tracks the actual compute.
  const double fast = report.value_of("BM_PlanningSweep/4096/real_time");
  const double reference =
      report.value_of("BM_PlanningSweepReference/4096/real_time");
  if (std::isfinite(fast) && std::isfinite(reference)) {
    const auto scene = random_scene(4096, 23);
    core::BitmaskIndex index(scene);
    std::vector<util::Epc> targets(
        index.scene().begin(),
        index.scene().begin() +
            static_cast<std::ptrdiff_t>(sweep_target_count(4096)));
    const auto bitmap = index.bitmap_of(targets);
    const core::GreedyCoverScheduler lazy(
        core::InventoryCostModel::paper_fit(), core::GreedyEvaluation::kLazy);
    const core::GreedyCoverScheduler dense(
        core::InventoryCostModel::paper_fit(), core::GreedyEvaluation::kDense);
    util::WallClock& wall = util::WallClock::system();
    double ref_ms = 0.0;
    double fast_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const double t0 = wall.now_seconds();
      const auto ref_plan = dense.plan(index, bitmap);
      const double t1 = wall.now_seconds();
      const auto fast_plan = lazy.plan(index, bitmap);
      const double t2 = wall.now_seconds();
      if (ref_plan.selections.size() != fast_plan.selections.size()) {
        std::fprintf(stderr, "planning speedup: plan mismatch\n");
        return 1;
      }
      const double ref_rep = (t1 - t0) * 1e3;
      const double fast_rep = (t2 - t1) * 1e3;
      if (rep == 0 || ref_rep < ref_ms) ref_ms = ref_rep;
      if (rep == 0 || fast_rep < fast_ms) fast_ms = fast_rep;
    }
    report.add("planning_reference_ms_at_4096", ref_ms, "ms");
    report.add("planning_fast_ms_at_4096", fast_ms, "ms");
    report.add("planning_speedup_at_4096", ref_ms / fast_ms, "ratio");
    std::printf("planning speedup at 4096 tags: %.1fx (%.1f ms -> %.1f ms)\n",
                ref_ms / fast_ms, ref_ms, fast_ms);
  }
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
