// Microbenchmarks (google-benchmark) for the scheduling hot path:
// indexed-table construction and the greedy set-cover search, across scene
// sizes and target counts.  This is the compute that must fit inside the
// Fig.-17 budget (a few ms per cycle).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "bench_report.hpp"
#include "core/incremental_planner.hpp"
#include "core/setcover.hpp"
#include "util/rng.hpp"
#include "util/wall_clock.hpp"

using namespace tagwatch;

namespace {

std::vector<util::Epc> random_scene(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<util::Epc> scene;
  scene.reserve(n);
  for (std::size_t i = 0; i < n; ++i) scene.push_back(util::Epc::random(rng));
  return scene;
}

/// Target count for the scene-size sweeps: 1/4 of the scene, clamped to
/// [4, 1024] — the paper's high-mobility regime, where a sizeable slice
/// of the inventory moved and needs a Phase-II re-read.  Dense enough
/// that the greedy cover needs many rounds (33 selections at 4,096 tags);
/// a sparse target set finishes in 2-3 rounds and barely exercises the
/// per-round rescan the lazy evaluation removes.  Capped so the largest
/// scenes stay within bench time budgets.
std::size_t sweep_target_count(std::size_t n) {
  return std::clamp<std::size_t>(n / 4, 4, 1024);
}

void BM_BitmaskIndexBuild(benchmark::State& state) {
  const auto scene = random_scene(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    core::BitmaskIndex index(scene);
    benchmark::DoNotOptimize(index.scene_size());
  }
}
BENCHMARK(BM_BitmaskIndexBuild)->Arg(40)->Arg(100)->Arg(400);

void BM_CandidateEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto n_targets = static_cast<std::size_t>(state.range(1));
  const auto scene = random_scene(n, 11);
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> targets(index.scene().begin(),
                                 index.scene().begin() +
                                     static_cast<std::ptrdiff_t>(n_targets));
  const auto bitmap = index.bitmap_of(targets);
  for (auto _ : state) {
    auto candidates = index.candidates_for(bitmap);
    benchmark::DoNotOptimize(candidates.size());
  }
}
BENCHMARK(BM_CandidateEnumeration)
    ->Args({40, 2})
    ->Args({40, 8})
    ->Args({100, 5})
    ->Args({400, 20});

void BM_GreedyCoverPlan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto n_targets = static_cast<std::size_t>(state.range(1));
  const auto scene = random_scene(n, 13);
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> targets(index.scene().begin(),
                                 index.scene().begin() +
                                     static_cast<std::ptrdiff_t>(n_targets));
  const auto bitmap = index.bitmap_of(targets);
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit());
  for (auto _ : state) {
    auto plan = sched.plan(index, bitmap);
    benchmark::DoNotOptimize(plan.selections.size());
  }
}
BENCHMARK(BM_GreedyCoverPlan)
    ->Args({40, 2})
    ->Args({40, 8})
    ->Args({100, 5})
    ->Args({200, 10})
    ->Args({400, 20});

void BM_EndToEndSchedule(benchmark::State& state) {
  // The full per-cycle compute: build the index, map targets, plan.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto n_targets = static_cast<std::size_t>(state.range(1));
  const auto scene = random_scene(n, 17);
  std::vector<util::Epc> targets(scene.begin(),
                                 scene.begin() +
                                     static_cast<std::ptrdiff_t>(n_targets));
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit());
  for (auto _ : state) {
    core::BitmaskIndex index(scene);
    auto plan = sched.plan(index, index.bitmap_of(targets));
    benchmark::DoNotOptimize(plan.estimated_cost_s);
  }
}
BENCHMARK(BM_EndToEndSchedule)->Args({60, 3})->Args({400, 20});

/// Scene-size sweep of the full Phase-II planning step (candidate table +
/// greedy cover) on the word-parallel lazy fast path.  This is the
/// headline large-scene number: planning must stay cheap relative to the
/// air protocol as scenes grow to warehouse size.
void BM_PlanningSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto scene = random_scene(n, 23);
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> targets(
      index.scene().begin(),
      index.scene().begin() +
          static_cast<std::ptrdiff_t>(sweep_target_count(n)));
  const auto bitmap = index.bitmap_of(targets);
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit(),
                                   core::GreedyEvaluation::kLazy);
  for (auto _ : state) {
    auto plan = sched.plan(index, bitmap);
    benchmark::DoNotOptimize(plan.estimated_cost_s);
  }
}
BENCHMARK(BM_PlanningSweep)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

/// The same sweep through the pre-fast-path reference pipeline
/// (bit-by-bit candidate rebuild + dense full-rescan greedy).  Capped at
/// 4,096 tags — the acceptance point for the speedup ratio — because the
/// reference is quadratic-ish in scene size.
void BM_PlanningSweepReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto scene = random_scene(n, 23);
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> targets(
      index.scene().begin(),
      index.scene().begin() +
          static_cast<std::ptrdiff_t>(sweep_target_count(n)));
  const auto bitmap = index.bitmap_of(targets);
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit(),
                                   core::GreedyEvaluation::kDense);
  for (auto _ : state) {
    auto plan = sched.plan(index, bitmap);
    benchmark::DoNotOptimize(plan.estimated_cost_s);
  }
}
BENCHMARK(BM_PlanningSweepReference)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// A scene under synthetic per-cycle churn: random arrivals/departures
/// plus mover-set flips, with the target count held roughly constant.
/// Random picks go through lower_bound on a random EPC so mutation stays
/// O(log n) even at a million tags.
class ChurnWorld {
 public:
  ChurnWorld(std::size_t n, std::size_t n_targets, std::uint64_t seed)
      : rng_(seed), target_count_(n_targets) {
    while (scene_.size() < n) scene_.insert(util::Epc::random(rng_));
    top_up_targets();
  }

  /// Applies ~`events` scene/target deltas: half departures, half
  /// arrivals, plus events/8 pure mover flips among staying tags.
  void churn(std::size_t events) {
    for (std::size_t i = 0; i < events / 2 && scene_.size() > 1; ++i) {
      const util::Epc victim = random_scene_epc();
      targets_.erase(victim);
      scene_.erase(victim);
    }
    for (std::size_t i = 0; i < events / 2; ++i) {
      scene_.insert(util::Epc::random(rng_));
    }
    for (std::size_t i = 0; i < events / 8 && !targets_.empty(); ++i) {
      targets_.erase(targets_.begin());
    }
    top_up_targets();
  }

  std::vector<util::Epc> scene() const {
    return {scene_.begin(), scene_.end()};
  }
  std::vector<util::Epc> targets() const {
    return {targets_.begin(), targets_.end()};
  }

 private:
  util::Epc random_scene_epc() {
    auto it = scene_.lower_bound(util::Epc::random(rng_));
    if (it == scene_.end()) it = scene_.begin();
    return *it;
  }

  void top_up_targets() {
    while (targets_.size() < target_count_ && targets_.size() < scene_.size()) {
      targets_.insert(random_scene_epc());
    }
  }

  std::set<util::Epc> scene_;
  std::set<util::Epc> targets_;
  util::Rng rng_;
  std::size_t target_count_;
};

/// Extended churn sweep: per-cycle planning cost of the persistent
/// incremental planner at warehouse scales (131k–1M tags).  Incremental
/// only — a from-scratch candidate table at these sizes needs hours and
/// tens-to-hundreds of GB, which is exactly the point of the persistent
/// index.  The initial full build runs once outside the timed loop; each
/// iteration churns ~0.4% of the scene and replans.
void BM_IncrementalChurnSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ChurnWorld world(n, sweep_target_count(n), 31);
  core::IncrementalPlanner planner(core::InventoryCostModel::paper_fit(),
                                   0.2);
  planner.plan_cycle(world.scene(), world.targets());
  const std::size_t events = n / 256;
  for (auto _ : state) {
    state.PauseTiming();
    world.churn(events);
    const auto scene = world.scene();
    const auto targets = world.targets();
    state.ResumeTiming();
    auto plan = planner.plan_cycle(scene, targets);
    benchmark::DoNotOptimize(plan.estimated_cost_s);
  }
  state.counters["live_rows"] =
      static_cast<double>(planner.stats().live_rows);
  state.counters["rebuilds"] =
      static_cast<double>(planner.stats().full_rebuilds);
}
BENCHMARK(BM_IncrementalChurnSweep)
    ->Arg(131072)
    ->Arg(262144)
    ->Arg(1048576)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(6);

bool plans_equal(const core::Schedule& a, const core::Schedule& b) {
  if (a.selections.size() != b.selections.size()) return false;
  for (std::size_t i = 0; i < a.selections.size(); ++i) {
    if (!(a.selections[i].bitmask == b.selections[i].bitmask)) return false;
    if (a.selections[i].covered_total != b.selections[i].covered_total ||
        a.selections[i].covered_targets != b.selections[i].covered_targets) {
      return false;
    }
  }
  return a.estimated_cost_s == b.estimated_cost_s &&
         a.used_naive_fallback == b.used_naive_fallback &&
         a.covered_union == b.covered_union;
}

/// Console output as usual, plus every run teed into a BenchReport so the
/// microbench emits the same BENCH_<name>.json as the scenario harnesses.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(bench::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_.add(run.benchmark_name() + "/real_time",
                  run.GetAdjustedRealTime(),
                  benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report("scheduler_micro", /*seed=*/7);
  JsonTeeReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  // Headline ratio: lazy fast path vs the pre-fast-path reference at the
  // 4,096-tag acceptance point (skipped when a --benchmark_filter excluded
  // either sweep).  Measured as a dedicated paired run — alternating
  // reference/fast repetitions on the same inputs, taking the minimum of
  // each side — instead of a quotient of the two sweep means above: on a
  // shared runner, scheduler noise inflates the two independent sweeps
  // unevenly and the mean quotient swings by 2x run to run, while
  // min-of-paired-reps rejects the noise and tracks the actual compute.
  const double fast = report.value_of("BM_PlanningSweep/4096/real_time");
  const double reference =
      report.value_of("BM_PlanningSweepReference/4096/real_time");
  if (std::isfinite(fast) && std::isfinite(reference)) {
    const auto scene = random_scene(4096, 23);
    core::BitmaskIndex index(scene);
    std::vector<util::Epc> targets(
        index.scene().begin(),
        index.scene().begin() +
            static_cast<std::ptrdiff_t>(sweep_target_count(4096)));
    const auto bitmap = index.bitmap_of(targets);
    const core::GreedyCoverScheduler lazy(
        core::InventoryCostModel::paper_fit(), core::GreedyEvaluation::kLazy);
    const core::GreedyCoverScheduler dense(
        core::InventoryCostModel::paper_fit(), core::GreedyEvaluation::kDense);
    util::WallClock& wall = util::WallClock::system();
    double ref_ms = 0.0;
    double fast_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const double t0 = wall.now_seconds();
      const auto ref_plan = dense.plan(index, bitmap);
      const double t1 = wall.now_seconds();
      const auto fast_plan = lazy.plan(index, bitmap);
      const double t2 = wall.now_seconds();
      if (ref_plan.selections.size() != fast_plan.selections.size()) {
        std::fprintf(stderr, "planning speedup: plan mismatch\n");
        return 1;
      }
      const double ref_rep = (t1 - t0) * 1e3;
      const double fast_rep = (t2 - t1) * 1e3;
      if (rep == 0 || ref_rep < ref_ms) ref_ms = ref_rep;
      if (rep == 0 || fast_rep < fast_ms) fast_ms = fast_rep;
    }
    report.add("planning_reference_ms_at_4096", ref_ms, "ms");
    report.add("planning_fast_ms_at_4096", fast_ms, "ms");
    report.add("planning_speedup_at_4096", ref_ms / fast_ms, "ratio");
    std::printf("planning speedup at 4096 tags: %.1fx (%.1f ms -> %.1f ms)\n",
                ref_ms / fast_ms, ref_ms, fast_ms);
  }
  // Headline: amortized per-cycle planning cost of the persistent
  // incremental planner vs the from-scratch pipeline on the same churn
  // trace.  Acceptance point: 65,536 tags with ≤ 20% movers (the sweep's
  // 1,024 targets are 1.6%); TAGWATCH_BENCH_INCREMENTAL_N shrinks the
  // scene for CI smoke runs.  From-scratch is min-of-reps to reject
  // shared-runner noise; incremental is the total over a full rebuild
  // cycle plus every churn cycle, divided by the cycle count — the
  // rebuild amortizes instead of being cherry-picked away.  Exits
  // non-zero unless both cycles checked are plan-equal to the oracle.
  {
    std::size_t n = 65536;
    if (const char* env = std::getenv("TAGWATCH_BENCH_INCREMENTAL_N")) {
      const long long v = std::atoll(env);
      if (v >= 64) n = static_cast<std::size_t>(v);
    }
    const std::size_t n_targets = sweep_target_count(n);
    constexpr int kCycles = 6;  // After the initial full-rebuild cycle.
    ChurnWorld world(n, n_targets, 37);
    std::vector<std::vector<util::Epc>> scenes;
    std::vector<std::vector<util::Epc>> target_sets;
    scenes.push_back(world.scene());
    target_sets.push_back(world.targets());
    for (int c = 0; c < kCycles; ++c) {
      world.churn(n / 256);
      scenes.push_back(world.scene());
      target_sets.push_back(world.targets());
    }

    util::WallClock& wall = util::WallClock::system();
    const core::GreedyCoverScheduler lazy(
        core::InventoryCostModel::paper_fit(), core::GreedyEvaluation::kLazy);

    // From-scratch per-cycle cost, min over reps of the full pipeline
    // (index build + candidate mapping + greedy) on a mid-trace cycle.
    double scratch_ms = 0.0;
    core::Schedule oracle_mid;
    for (int rep = 0; rep < 2; ++rep) {
      const double t0 = wall.now_seconds();
      core::BitmaskIndex index(scenes[1]);
      oracle_mid = lazy.plan(index, index.bitmap_of(target_sets[1]));
      const double ms = (wall.now_seconds() - t0) * 1e3;
      if (rep == 0 || ms < scratch_ms) scratch_ms = ms;
    }

    // Incremental planner over the whole trace, rebuild cycle included.
    core::IncrementalPlanner planner(core::InventoryCostModel::paper_fit(),
                                     0.2);
    double inc_total_ms = 0.0;
    core::Schedule inc_mid;
    core::Schedule inc_last;
    for (std::size_t c = 0; c < scenes.size(); ++c) {
      const double t0 = wall.now_seconds();
      core::Schedule plan = planner.plan_cycle(scenes[c], target_sets[c]);
      inc_total_ms += (wall.now_seconds() - t0) * 1e3;
      if (c == 1) inc_mid = plan;
      if (c + 1 == scenes.size()) inc_last = std::move(plan);
    }
    const double inc_ms =
        inc_total_ms / static_cast<double>(scenes.size());

    // Differential check: the mid-trace cycle against the oracle plan the
    // timing reps already produced, and the final cycle against a fresh
    // from-scratch plan (proving equivalence survives accumulated churn).
    if (!plans_equal(inc_mid, oracle_mid)) {
      std::fprintf(stderr, "incremental speedup: plan mismatch (mid)\n");
      return 1;
    }
    core::BitmaskIndex last_index(scenes.back());
    const core::Schedule oracle_last =
        lazy.plan(last_index, last_index.bitmap_of(target_sets.back()));
    if (!plans_equal(inc_last, oracle_last)) {
      std::fprintf(stderr, "incremental speedup: plan mismatch (last)\n");
      return 1;
    }

    report.add("incremental_scene_tags", static_cast<double>(n), "count");
    report.add("planning_scratch_ms", scratch_ms, "ms");
    report.add("planning_incremental_amortized_ms", inc_ms, "ms");
    report.add("incremental_speedup", scratch_ms / inc_ms, "ratio");
    std::printf(
        "incremental planning speedup at %zu tags: %.1fx "
        "(%.1f ms -> %.1f ms amortized over %zu cycles)\n",
        n, scratch_ms / inc_ms, scratch_ms, inc_ms, scenes.size());
  }
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
