// Microbenchmarks (google-benchmark) for the scheduling hot path:
// indexed-table construction and the greedy set-cover search, across scene
// sizes and target counts.  This is the compute that must fit inside the
// Fig.-17 budget (a few ms per cycle).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_report.hpp"
#include "core/setcover.hpp"
#include "util/rng.hpp"

using namespace tagwatch;

namespace {

std::vector<util::Epc> random_scene(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<util::Epc> scene;
  scene.reserve(n);
  for (std::size_t i = 0; i < n; ++i) scene.push_back(util::Epc::random(rng));
  return scene;
}

void BM_BitmaskIndexBuild(benchmark::State& state) {
  const auto scene = random_scene(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    core::BitmaskIndex index(scene);
    benchmark::DoNotOptimize(index.scene_size());
  }
}
BENCHMARK(BM_BitmaskIndexBuild)->Arg(40)->Arg(100)->Arg(400);

void BM_CandidateEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto n_targets = static_cast<std::size_t>(state.range(1));
  const auto scene = random_scene(n, 11);
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> targets(index.scene().begin(),
                                 index.scene().begin() +
                                     static_cast<std::ptrdiff_t>(n_targets));
  const auto bitmap = index.bitmap_of(targets);
  for (auto _ : state) {
    auto candidates = index.candidates_for(bitmap);
    benchmark::DoNotOptimize(candidates.size());
  }
}
BENCHMARK(BM_CandidateEnumeration)
    ->Args({40, 2})
    ->Args({40, 8})
    ->Args({100, 5})
    ->Args({400, 20});

void BM_GreedyCoverPlan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto n_targets = static_cast<std::size_t>(state.range(1));
  const auto scene = random_scene(n, 13);
  core::BitmaskIndex index(scene);
  std::vector<util::Epc> targets(index.scene().begin(),
                                 index.scene().begin() +
                                     static_cast<std::ptrdiff_t>(n_targets));
  const auto bitmap = index.bitmap_of(targets);
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit());
  for (auto _ : state) {
    auto plan = sched.plan(index, bitmap);
    benchmark::DoNotOptimize(plan.selections.size());
  }
}
BENCHMARK(BM_GreedyCoverPlan)
    ->Args({40, 2})
    ->Args({40, 8})
    ->Args({100, 5})
    ->Args({200, 10})
    ->Args({400, 20});

void BM_EndToEndSchedule(benchmark::State& state) {
  // The full per-cycle compute: build the index, map targets, plan.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto n_targets = static_cast<std::size_t>(state.range(1));
  const auto scene = random_scene(n, 17);
  std::vector<util::Epc> targets(scene.begin(),
                                 scene.begin() +
                                     static_cast<std::ptrdiff_t>(n_targets));
  core::GreedyCoverScheduler sched(core::InventoryCostModel::paper_fit());
  for (auto _ : state) {
    core::BitmaskIndex index(scene);
    auto plan = sched.plan(index, index.bitmap_of(targets));
    benchmark::DoNotOptimize(plan.estimated_cost_s);
  }
}
BENCHMARK(BM_EndToEndSchedule)->Args({60, 3})->Args({400, 20});

/// Console output as usual, plus every run teed into a BenchReport so the
/// microbench emits the same BENCH_<name>.json as the scenario harnesses.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(bench::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_.add(run.benchmark_name() + "/real_time",
                  run.GetAdjustedRealTime(),
                  benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report("scheduler_micro", /*seed=*/7);
  JsonTeeReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
