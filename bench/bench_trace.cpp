// E3 — Fig. 3/4: the TrackPoint reading trace and its skew.
//
// Generates a synthetic conveyor-gate workload with the paper's mechanism
// (fast transits + lingering parked packages), runs it through the Gen2
// simulator, and prints: the per-minute reading series (Fig. 3), the
// reading-count distribution with the paper's headline fractions (Fig. 4),
// and the contrast between parked and conveyor tags.
//
// Paper shape targets: a handful of parked tags absorb most readings (tag
// #271: 90,000 of 367,536); 20% of tags read >205 times and 10% >655,
// while real movers get <5 reads per transit.  Absolute totals differ (our
// simulated reader profile and duration are configurable), the skew holds.
#include <cstdio>

#include "bench_report.hpp"
#include "trace/trackpoint.hpp"
#include "util/stats.hpp"

using namespace tagwatch;

int main() {
  trace::TrackPointScenario scenario;
  // One simulated hour keeps the bench quick; pass the 4-hour profile by
  // editing here — the skew statistics are duration-invariant.
  scenario.duration = util::sec(3600);
  scenario.conveyor_arrivals_per_min = 4.0;
  scenario.parked_slots = 14;

  std::printf("E3 / Fig. 3-4 — TrackPoint-style trace (%.0f min, %.0f "
              "transits/min, %zu parked slots)\n\n",
              util::to_seconds(scenario.duration) / 60.0,
              scenario.conveyor_arrivals_per_min, scenario.parked_slots);

  const trace::TraceResult result = trace::generate_trackpoint_trace(scenario);

  std::printf("total readings: %zu from %zu tags; peak concurrent movers: "
              "%zu\n\n",
              result.total_readings, result.total_tags,
              result.peak_concurrent_movers);

  // Fig. 3: readings per minute (coarse series, every 5th minute).
  std::printf("readings per minute (every 5th minute):\n  ");
  for (std::size_t m = 0; m < result.readings_per_minute.size(); m += 5) {
    std::printf("%zu ", result.readings_per_minute[m]);
  }
  std::printf("\n\n");

  // Fig. 4: distribution of per-tag reading counts.
  std::printf("reading-count distribution:\n");
  std::printf("  top tag: %zu readings (%.1f%% of all) — the 'tag #271' "
              "effect\n",
              result.per_tag.front().readings,
              100.0 * static_cast<double>(result.per_tag.front().readings) /
                  static_cast<double>(result.total_readings));
  for (const std::size_t threshold : {5u, 50u, 205u, 655u, 5000u}) {
    std::printf("  read > %4zu times: %5.1f%% of tags\n", threshold,
                100.0 * trace::fraction_read_over(result, threshold));
  }

  std::vector<double> conveyor_counts, parked_counts;
  for (const auto& t : result.per_tag) {
    (t.conveyor ? conveyor_counts : parked_counts)
        .push_back(static_cast<double>(t.readings));
  }
  const double conveyor_median =
      conveyor_counts.empty() ? 0.0 : util::median(conveyor_counts);
  const double parked_median =
      parked_counts.empty() ? 0.0 : util::median(parked_counts);
  std::printf("\nper-tag reads — conveyor median: %.0f, parked median: %.0f\n",
              conveyor_median, parked_median);
  std::printf("paper: movers read <5 times per transit while parked tags "
              "collect hundreds to tens of thousands.\n");

  bench::BenchReport report("trace");
  report.add("total_readings", static_cast<double>(result.total_readings),
             "count");
  report.add("top_tag_share",
             static_cast<double>(result.per_tag.front().readings) /
                 static_cast<double>(result.total_readings),
             "ratio");
  report.add("fraction_read_over_205", trace::fraction_read_over(result, 205),
             "ratio");
  report.add("fraction_read_over_655", trace::fraction_read_over(result, 655),
             "ratio");
  report.add("conveyor_median_reads", conveyor_median, "count");
  report.add("parked_median_reads", parked_median, "count");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
