// E5 — Fig. 13: detection sensitivity vs displacement (1–5 cm).
//
// A trained stationary tag is displaced by d ∈ {1..5} cm in a random
// direction; a detection is successful if any post-displacement reading in
// a short window is flagged as motion.  20 trials per displacement, for
// the phase-based and the RSS-based detector.
//
// Paper shape targets: phase detects ~80% at 1 cm, 87% at 2 cm, 99% at
// 3 cm; RSS detects ~9% at 1 cm and only reaches ~76% at 5 cm.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_report.hpp"
#include "core/detectors.hpp"
#include "gen2/reader.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

namespace {

/// One trial: train on a static tag, displace it, and test whether the
/// detector notices within the next 12 readings.
bool trial(core::DetectorKind kind, double displacement_m, std::uint64_t seed) {
  util::Rng rng(seed);
  sim::World world;
  const util::Vec3 origin{rng.uniform(0.8, 2.5), rng.uniform(-1.5, 1.5), 0.0};
  const double direction = rng.uniform(0.0, util::kTwoPi);
  const util::Vec3 offset{displacement_m * std::cos(direction),
                          displacement_m * std::sin(direction), 0.0};
  sim::SimTag tag;
  tag.epc = util::Epc::from_serial(1);
  tag.motion = std::make_shared<sim::StepDisplacement>(origin, offset,
                                                       util::sec(30));
  tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
  world.add_tag(std::move(tag));
  // Static clutter (shelving, walls): creates standing-wave fading so RSS
  // varies with position at all — without it RSS sees only the sub-dB
  // path-loss change of a few-cm move, which quantization erases.
  world.add_reflector({std::make_shared<sim::StaticMotion>(
                           util::Vec3{rng.uniform(0.5, 2.0), 1.2, 0.0}),
                       0.5});
  world.add_reflector({std::make_shared<sim::StaticMotion>(
                           util::Vec3{1.8, rng.uniform(-1.5, 0.5), 0.5}),
                       0.5});

  rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
  // Multiple antennas give angular diversity: a displacement tangential to
  // one antenna's line of sight is radial to another's, so some antenna
  // always sees a large phase change (the paper's testbed has four).
  const std::vector<rf::Antenna> antennas{
      {1, {0, 0, 2}, 8.0}, {2, {3, 0, 1}, 8.0}, {3, {0, 3, 1}, 8.0}};
  gen2::Gen2Reader reader(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                          gen2::ReaderConfig{}, world, channel, antennas,
                          util::Rng(seed + 7));

  const auto detector = core::make_detector(kind);
  bool detected = false;
  std::size_t post_readings = 0;
  std::size_t round = 0;
  gen2::InvFlag target = gen2::InvFlag::kA;
  while (world.now() < util::sec(32) && post_readings < 12) {
    reader.set_active_antenna(round++ % antennas.size());
    gen2::QueryCommand q;
    q.target = target;
    target = target == gen2::InvFlag::kA ? gen2::InvFlag::kB
                                         : gen2::InvFlag::kA;
    reader.run_inventory_round(q, [&](const rf::TagReading& r) {
      const bool moving =
          detector->update(r) == core::MotionVerdict::kMoving;
      if (r.timestamp >= util::sec(30)) {
        ++post_readings;
        if (moving) detected = true;
      }
    });
  }
  return detected;
}

}  // namespace

int main() {
  constexpr int kTrials = 20;  // paper: 20 repetitions per displacement
  std::printf("E5 / Fig. 13 — detection sensitivity vs displacement "
              "(%d trials each)\n\n", kTrials);
  std::printf("%-12s  %10s  %10s\n", "displacement", "Phase-MoG", "RSS-MoG");
  bench::BenchReport report("sensitivity", /*seed=*/1000);
  for (int cm = 1; cm <= 5; ++cm) {
    int phase_hits = 0, rss_hits = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto seed = static_cast<std::uint64_t>(cm * 1000 + t);
      if (trial(core::DetectorKind::kPhaseMog, cm / 100.0, seed)) ++phase_hits;
      if (trial(core::DetectorKind::kRssMog, cm / 100.0, seed)) ++rss_hits;
    }
    std::printf("%9d cm  %9.0f%%  %9.0f%%\n", cm,
                100.0 * phase_hits / kTrials, 100.0 * rss_hits / kTrials);
    const std::string at = "_at_" + std::to_string(cm) + "cm";
    report.add("phase_mog_detection" + at,
               static_cast<double>(phase_hits) / kTrials, "ratio");
    report.add("rss_mog_detection" + at,
               static_cast<double>(rss_hits) / kTrials, "ratio");
  }
  std::printf("\npaper: phase 87%%@2cm, 99%%@3cm; RSS 9%%@1cm ... 76%%@5cm.\n");
  std::printf("(a 1 cm displacement doubles to 2 cm of round-trip path — the "
              "phase's natural amplifier)\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
