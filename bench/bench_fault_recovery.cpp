// Robustness harness: mover IRR and recovery behaviour vs reader fault rate.
//
// Sweeps the per-execute failure probability of a FaultInjectingReaderClient
// wrapped around the standard testbed and reports, per rate: the mobile
// tags' Phase II IRR, retries and giveups, the fraction of cycles spent in
// the degraded read-all state, and the time-to-recover — cycles from the
// first degraded cycle back to adaptive mode once the fault burst ends.
//
// Expected shape: IRR degrades gracefully up to ~20% fault rate (retries
// absorb most faults); heavy rates push the controller into degraded mode,
// and recovery after the burst takes restore_after_healthy cycles.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "llrp/fault_injection.hpp"

using namespace tagwatch;
using bench::Testbed;

namespace {

struct SweepPoint {
  double fault_rate = 0.0;
  double mover_irr = 0.0;
  std::uint64_t faults = 0;
  std::uint64_t retries = 0;
  std::uint64_t giveups = 0;
  double degraded_fraction = 0.0;
  double backoff_ms = 0.0;
};

SweepPoint run_rate(double rate, std::uint64_t seed, std::size_t cycles) {
  Testbed bed(60, 3, seed);
  llrp::FaultPlan plan;
  plan.seed = seed + 17;
  plan.execute_failure_probability = rate;
  plan.weight_disconnect = 0.3;
  plan.weight_partial_report = 0.3;
  llrp::FaultInjectingReaderClient faulty(bed.reader(), plan);

  core::TagwatchConfig cfg;
  cfg.phase2_duration = util::sec(2);
  core::TagwatchController ctl(cfg, faulty);
  const auto reports = ctl.run_cycles(cycles);

  SweepPoint p;
  p.fault_rate = rate;
  p.mover_irr = bench::mover_irr_hz(reports, bed, /*warmup=*/cycles / 2);
  const core::HealthMetrics& h = ctl.health();
  p.faults = h.faults_total();
  p.retries = h.retries;
  p.giveups = h.giveups;
  p.degraded_fraction =
      static_cast<double>(h.degraded_cycles) / static_cast<double>(cycles);
  p.backoff_ms = util::to_millis(h.backoff_total);
  return p;
}

/// Breaks the reader completely for a burst of cycles, then heals it, and
/// counts the cycles from the burst's end until adaptive mode resumes.
std::size_t time_to_recover(std::uint64_t seed) {
  Testbed bed(40, 2, seed);
  llrp::FaultPlan broken;
  broken.seed = seed + 17;
  broken.execute_failure_probability = 1.0;
  broken.failure_keep_fraction = 0.0;
  std::optional<llrp::FaultInjectingReaderClient> faulty;
  faulty.emplace(bed.reader(), broken);

  core::TagwatchConfig cfg;
  cfg.phase2_duration = util::sec(1);
  core::TagwatchController ctl(cfg, *faulty);
  // Drive until degraded (entry takes degrade_after_failures cycles).
  std::size_t burst = 0;
  while (!ctl.degraded() && burst < 20) {
    ctl.run_cycle();
    ++burst;
  }
  // Heal the transport in place (same address, the controller's reference
  // stays valid) and count cycles until adaptive mode resumes.
  faulty.emplace(bed.reader(), llrp::FaultPlan{});
  std::size_t recovery = 0;
  while (ctl.degraded() && recovery < 20) {
    ctl.run_cycle();
    ++recovery;
  }
  return recovery;
}

}  // namespace

int main() {
  const std::vector<double> rates{0.0, 0.05, 0.1, 0.2, 0.4};
  constexpr std::size_t kCycles = 12;
  constexpr std::uint64_t kSeed = 4242;

  std::printf("fault recovery — mover IRR and controller health vs "
              "execute-failure rate\n(60 tags, 3 movers, %zu cycles, "
              "default retry/degradation policy)\n\n",
              kCycles);
  std::printf("%10s  %9s  %7s  %8s  %8s  %10s  %11s\n", "fault rate",
              "IRR (Hz)", "faults", "retries", "giveups", "degraded %",
              "backoff ms");
  bench::BenchReport report("fault_recovery", kSeed);
  for (const double rate : rates) {
    const SweepPoint p = run_rate(rate, kSeed, kCycles);
    std::printf("%9.0f%%  %9.2f  %7llu  %8llu  %8llu  %9.0f%%  %11.1f\n",
                rate * 100.0, p.mover_irr,
                static_cast<unsigned long long>(p.faults),
                static_cast<unsigned long long>(p.retries),
                static_cast<unsigned long long>(p.giveups),
                p.degraded_fraction * 100.0, p.backoff_ms);
    const std::string at =
        "_at_" + std::to_string(static_cast<int>(rate * 100.0)) + "pct";
    report.add("mover_irr" + at, p.mover_irr, "hz");
    report.add("degraded_fraction" + at, p.degraded_fraction, "ratio");
  }

  std::printf("\ntime-to-recover after a total outage (dead reader until "
              "degraded, then healed):\n");
  double recovery_sum = 0.0;
  for (const std::uint64_t seed : {kSeed, kSeed + 1, kSeed + 2}) {
    const std::size_t cycles_to_recover = time_to_recover(seed);
    recovery_sum += static_cast<double>(cycles_to_recover);
    std::printf("  seed %llu: %zu cycles back to adaptive mode\n",
                static_cast<unsigned long long>(seed), cycles_to_recover);
  }
  report.add("mean_recovery_cycles", recovery_sum / 3.0, "count");
  std::printf("\nexpected: graceful IRR loss to ~20%% (retries absorb "
              "faults); recovery = restore_after_healthy cycles.\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
