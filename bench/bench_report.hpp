// BenchReport: machine-readable results for the bench harnesses.
//
// Every harness prints a human-oriented table on stdout and, at the end of
// main(), writes a JSON twin — BENCH_<name>.json — so CI and notebooks can
// track headline numbers across commits without scraping stdout.  The
// schema is documented in docs/API.md ("Bench result JSON").
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

// Stamped by bench/CMakeLists.txt from `git describe --always --dirty`.
#ifndef TAGWATCH_GIT_DESCRIBE
#define TAGWATCH_GIT_DESCRIBE "unknown"
#endif

namespace tagwatch::bench {

/// Escapes a string for embedding in a JSON string literal.  Metric names
/// are ASCII identifiers in practice; this covers the general case anyway.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Collects named scalar metrics from one harness run and writes them as
/// BENCH_<name>.json (into $TAGWATCH_BENCH_DIR if set, else the working
/// directory).
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name, std::uint64_t seed = 0)
      : bench_name_(std::move(bench_name)), seed_(seed) {}

  /// Records one metric.  `unit` is free-form but should be stable across
  /// runs ("hz", "ms", "ratio", "count", ...).
  void add(std::string name, double value, std::string unit) {
    metrics_.push_back({std::move(name), value, std::move(unit)});
  }

  std::size_t size() const noexcept { return metrics_.size(); }

  /// Value of the first recorded metric named `name`, or NaN when absent —
  /// lets a harness derive ratio metrics (e.g. a speedup) from runs it
  /// already recorded.
  double value_of(const std::string& name) const {
    for (const Metric& m : metrics_) {
      if (m.name == name) return m.value;
    }
    return std::numeric_limits<double>::quiet_NaN();
  }

  /// Renders the report as JSON.  Non-finite values become null so the
  /// output always parses.
  std::string to_json() const {
    std::string out = "{\n";
    out += "  \"bench\": \"" + json_escape(bench_name_) + "\",\n";
    out += "  \"seed\": " + std::to_string(seed_) + ",\n";
    out += "  \"git\": \"" + json_escape(TAGWATCH_GIT_DESCRIBE) + "\",\n";
    out += "  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      char value[64];
      if (std::isfinite(m.value)) {
        // %.17g round-trips every IEEE-754 double exactly.
        std::snprintf(value, sizeof(value), "%.17g", m.value);
      } else {
        std::snprintf(value, sizeof(value), "null");
      }
      out += "    {\"name\": \"" + json_escape(m.name) + "\", \"value\": " +
             value + ", \"unit\": \"" + json_escape(m.unit) + "\"}";
      out += (i + 1 < metrics_.size()) ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Writes BENCH_<bench_name>.json and returns the path written.
  /// Call once at the end of main(); throws std::runtime_error on I/O
  /// failure so a broken CI artifact step fails loudly.
  std::string write() const {
    const char* dir = std::getenv("TAGWATCH_BENCH_DIR");
    std::string path = (dir != nullptr) ? std::string(dir) + "/" : "";
    path += "BENCH_" + bench_name_ + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("BenchReport: cannot open " + path);
    out << to_json();
    if (!out) throw std::runtime_error("BenchReport: write failed: " + path);
    return path;
  }

 private:
  struct Metric {
    std::string name;
    double value = 0.0;
    std::string unit;
  };

  std::string bench_name_;
  std::uint64_t seed_ = 0;
  std::vector<Metric> metrics_;
};

}  // namespace tagwatch::bench
