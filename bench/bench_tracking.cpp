// E1 — Fig. 1 + §7.3 application study: tracking accuracy vs companions.
//
// A tagged toy train (r = 20 cm, 0.7 m/s) is tracked by the differential
// hologram localizer with {0, 2, 4} stationary tags beside the track,
// under traditional read-all and under Tagwatch rate-adaptive reading.
//
// Paper shape targets: traditional degrades 1.8 cm → 6 cm → 10.6 cm as
// companions are added (IRR 68 → 30 → 21 Hz); rate-adaptive with 4
// companions stays ≈3.3 cm, nearly matching the companion-free case.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_report.hpp"
#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "track/hologram.hpp"
#include "util/stats.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

namespace {

struct CaseResult {
  double irr_hz = 0.0;
  track::TrackingAccuracy accuracy;
};

CaseResult run_case(std::size_t stationary, bool rate_adaptive,
                    std::uint64_t seed) {
  sim::World world;
  util::Rng rng(seed);

  const auto train_motion =
      std::make_shared<sim::CircularTrack>(util::Vec3{0, 0, 0}, 0.2, 0.7);
  sim::SimTag train;
  train.epc = util::Epc::random(rng);
  train.motion = train_motion;
  train.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
  const util::Epc train_epc = train.epc;
  world.add_tag(std::move(train));

  for (std::size_t i = 0; i < stationary; ++i) {
    sim::SimTag tag;
    tag.epc = util::Epc::random(rng);
    tag.motion = std::make_shared<sim::StaticMotion>(util::Vec3{
        0.4 * std::cos(1.57 * static_cast<double>(i) + 0.6),
        0.4 * std::sin(1.57 * static_cast<double>(i) + 0.6), 0.0});
    tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(tag));
  }

  const rf::ChannelPlan plan = rf::ChannelPlan::single(920.625e6);
  rf::RfChannel channel(plan);
  std::vector<rf::Antenna> antennas{{1, {-5, -5, 0}, 8.0},
                                    {2, {5, -5, 0}, 8.0},
                                    {3, {-5, 5, 0}, 8.0},
                                    {4, {5, 5, 0}, 8.0}};
  llrp::SimReaderClient client(
      gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
      gen2::ReaderConfig{}, world, channel, antennas, seed + 1);
  // Everything below sees only the transport interface.
  llrp::ReaderClient& reader = client;

  core::TagwatchConfig cfg;
  cfg.mode = rate_adaptive ? core::ScheduleMode::kGreedyCover
                           : core::ScheduleMode::kReadAll;
  core::TagwatchController ctl(cfg, reader);

  std::vector<rf::TagReading> train_readings;
  ctl.set_read_listener([&](const rf::TagReading& r) {
    if (r.epc == train_epc) train_readings.push_back(r);
  });

  ctl.run_cycles(4);  // warm-up: immobility models converge

  // Measurement: like the paper's application study ("we fix the initial
  // position at a known point to improve comparison"), each lap/cycle is
  // tracked as its own segment anchored at a known starting fix; the
  // reading rate then determines whether lock survives the segment.
  CaseResult result;
  util::RunningStats errors;
  std::size_t reads = 0;
  double secs = 0.0;
  std::size_t estimates = 0;
  for (int segment = 0; segment < 6; ++segment) {
    train_readings.clear();
    const util::SimTime t0 = reader.now();
    ctl.run_cycles(1);
    secs += util::to_seconds(reader.now() - t0);
    reads += train_readings.size();
    if (train_readings.empty()) continue;

    track::TrackerConfig tcfg;
    tcfg.min_x = -0.45;
    tcfg.max_x = 0.45;
    tcfg.min_y = -0.45;
    tcfg.max_y = 0.45;
    tcfg.initial_hint =
        train_motion->position(train_readings.front().timestamp);
    track::HologramTracker tracker(tcfg, antennas, plan);
    for (const auto& est : tracker.track(train_readings)) {
      errors.add(
          util::distance(est.position, train_motion->position(est.time)));
      ++estimates;
    }
  }
  result.irr_hz = static_cast<double>(reads) / secs;
  result.accuracy.mean_error_m = errors.mean();
  result.accuracy.stddev_error_m = errors.stddev();
  result.accuracy.estimates = estimates;
  return result;
}

}  // namespace

int main() {
  std::printf("E1 / Fig. 1 — tracking a toy train with stationary "
              "companions\n\n");
  std::printf("%-26s  %9s  %10s  %16s\n", "case", "IRR (Hz)", "estimates",
              "mean error (cm)");
  const std::uint64_t seed = 424242;
  bench::BenchReport report("tracking", seed);
  for (const std::size_t companions : {0u, 2u, 4u}) {
    const CaseResult r = run_case(companions, false, seed);
    std::printf("(1+%zu) traditional         %9.1f  %10zu  %9.2f +- %.2f\n",
                companions, r.irr_hz, r.accuracy.estimates,
                r.accuracy.mean_error_m * 100.0,
                r.accuracy.stddev_error_m * 100.0);
    const std::string label =
        "traditional_" + std::to_string(companions) + "_companions";
    report.add(label + "_irr", r.irr_hz, "hz");
    report.add(label + "_mean_error", r.accuracy.mean_error_m * 100.0, "cm");
  }
  const CaseResult ra = run_case(4, true, seed);
  std::printf("(1+4) rate-adaptive        %9.1f  %10zu  %9.2f +- %.2f\n",
              ra.irr_hz, ra.accuracy.estimates,
              ra.accuracy.mean_error_m * 100.0,
              ra.accuracy.stddev_error_m * 100.0);
  report.add("rate_adaptive_4_companions_irr", ra.irr_hz, "hz");
  report.add("rate_adaptive_4_companions_mean_error",
             ra.accuracy.mean_error_m * 100.0, "cm");
  std::printf("\npaper: 1.8 / 6.0 / 10.6 cm traditional (68/30/21 Hz); "
              "3.34 cm rate-adaptive with 4 companions.\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
