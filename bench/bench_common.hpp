// Shared scenario builders for the benchmark harnesses.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "bench_report.hpp"
#include "core/tagwatch.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

namespace tagwatch::bench {

/// A standard testbed: `n_tags` tags with the first `n_movers` on a
/// spinning turntable / toy-train track, the rest static; 4 antennas at
/// (±5 m, ±5 m) as in §7.3.
struct Testbed {
  sim::World world;
  rf::ChannelPlan plan;
  rf::RfChannel channel;
  std::vector<rf::Antenna> antennas;
  std::vector<util::Epc> mover_epcs;
  std::optional<llrp::SimReaderClient> client;

  Testbed(std::size_t n_tags, std::size_t n_movers, std::uint64_t seed,
          rf::ChannelPlan channel_plan = rf::ChannelPlan::single(920.625e6),
          gen2::LinkParams link = gen2::LinkParams::paper_testbed())
      : plan(channel_plan), channel(plan) {
    util::Rng rng(seed);
    antennas = {{1, {-5, -5, 0}, 8.0},
                {2, {5, -5, 0}, 8.0},
                {3, {-5, 5, 0}, 8.0},
                {4, {5, 5, 0}, 8.0}};
    for (std::size_t i = 0; i < n_tags; ++i) {
      sim::SimTag tag;
      tag.epc = util::Epc::random(rng);
      if (i < n_movers) {
        // Turntable: 20 cm radius, ~0.7 m/s tangential speed.
        tag.motion = std::make_shared<sim::CircularTrack>(
            util::Vec3{0.5, 0.5, 0.0}, 0.2, 0.7,
            rng.uniform(0.0, util::kTwoPi));
        mover_epcs.push_back(tag.epc);
      } else {
        tag.motion = std::make_shared<sim::StaticMotion>(
            util::Vec3{rng.uniform(-3, 3), rng.uniform(-3, 3), 0.0});
      }
      tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(tag));
    }
    client.emplace(gen2::LinkTiming(link), gen2::ReaderConfig{}, world,
                   channel, antennas, seed + 1);
  }

  /// The reader as the abstract transport — what controllers consume.
  llrp::ReaderClient& reader() noexcept { return *client; }

  bool is_mover(const util::Epc& epc) const {
    for (const auto& m : mover_epcs) {
      if (m == epc) return true;
    }
    return false;
  }
};

/// Phase II IRR per mover, averaged over cycles [warmup, reports.size()).
inline double mover_irr_hz(const std::vector<core::CycleReport>& reports,
                           const Testbed& bed, std::size_t warmup) {
  double reads = 0.0;
  double secs = 0.0;
  for (std::size_t c = warmup; c < reports.size(); ++c) {
    secs += util::to_seconds(reports[c].phase2_duration);
    for (const auto& [epc, count] : reports[c].phase2_counts) {
      if (bed.is_mover(epc)) reads += static_cast<double>(count);
    }
  }
  if (bed.mover_epcs.empty() || secs <= 0.0) return 0.0;
  return reads / static_cast<double>(bed.mover_epcs.size()) / secs;
}

}  // namespace tagwatch::bench
