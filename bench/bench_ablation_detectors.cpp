// Ablation — detector design choices beyond Fig. 12's four methods:
//
//  (a) MoG model keying: per-(antenna, channel) (the physically correct
//      default) vs pooled models, evaluated on a hopping reader.  Pooled
//      models mix incomparable phases, inflating false positives.
//  (b) Hybrid fusion (AND / OR of phase-MoG and RSS-MoG) vs the plain
//      detectors: AND trades sensitivity for fewer multipath false alarms,
//      OR the reverse.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_report.hpp"
#include "core/detectors.hpp"
#include "gen2/reader.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

namespace {

struct Rates {
  double fpr = 0.0;
  double tpr = 0.0;
};

/// One office scene: static tags + people (FPR source) + a train tag (TPR
/// source), on a hopping reader.
Rates evaluate(core::DetectorKind kind, const core::DetectorConfig& config,
               std::uint64_t seed) {
  sim::World world;
  util::Rng rng(seed);

  sim::SimTag train;
  train.epc = util::Epc::from_serial(999);
  train.motion =
      std::make_shared<sim::CircularTrack>(util::Vec3{1.0, 1.0, 0.0}, 0.2, 0.7);
  train.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
  const util::Epc train_epc = train.epc;
  world.add_tag(std::move(train));

  for (int i = 0; i < 30; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::from_serial(static_cast<std::uint64_t>(i) + 1);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-4, 4), rng.uniform(-4, 4), 0.0});
    t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(t));
  }
  util::Rng walk_rng = rng.fork();
  for (int p = 0; p < 5; ++p) {
    world.add_reflector({std::make_shared<sim::RandomWaypoint>(
                             util::Vec3{-5, -5, 0}, util::Vec3{5, 5, 0}, 1.0,
                             util::sec(300), walk_rng, util::sec(2)),
                         0.3});
  }

  rf::RfChannel channel(rf::ChannelPlan::china_920_926());
  gen2::ReaderConfig rcfg;
  rcfg.channel_dwell = util::msec(200);
  gen2::Gen2Reader reader(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                          rcfg, world, channel, {{1, {0, 0, 2}, 8.0}},
                          util::Rng(seed + 1));

  std::unordered_map<util::Epc, std::unique_ptr<core::MotionDetector>> dets;
  std::size_t tp = 0, fn = 0, fp = 0, tn = 0;
  gen2::InvFlag target = gen2::InvFlag::kA;
  while (world.now() < util::sec(300)) {
    gen2::QueryCommand q;
    q.q = 5;
    q.target = target;
    target = target == gen2::InvFlag::kA ? gen2::InvFlag::kB
                                         : gen2::InvFlag::kA;
    reader.run_inventory_round(q, [&](const rf::TagReading& r) {
      auto& det = dets[r.epc];
      if (!det) det = core::make_detector(kind, config);
      const bool flagged = det->update(r) == core::MotionVerdict::kMoving;
      if (r.timestamp < util::sec(120)) return;  // warm-up
      if (r.epc == train_epc) {
        flagged ? ++tp : ++fn;
      } else {
        flagged ? ++fp : ++tn;
      }
    });
  }
  return {fp + tn ? static_cast<double>(fp) / static_cast<double>(fp + tn)
                  : 0.0,
          tp + fn ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                  : 0.0};
}

}  // namespace

int main() {
  std::printf("Ablation — detector design choices (30 static tags + 5 "
              "people + 1 train tag, 16-channel hopping)\n\n");

  bench::BenchReport report("ablation_detectors", /*seed=*/501);
  std::printf("(a) MoG model keying\n");
  std::printf("%-24s  %8s  %8s\n", "keying", "FPR", "TPR");
  {
    core::DetectorConfig per_channel;
    const Rates r1 = evaluate(core::DetectorKind::kPhaseMog, per_channel, 501);
    std::printf("%-24s  %7.2f%%  %7.1f%%\n", "per (antenna, channel)",
                100.0 * r1.fpr, 100.0 * r1.tpr);
    report.add("per_channel_fpr", r1.fpr, "ratio");
    report.add("per_channel_tpr", r1.tpr, "ratio");

    core::DetectorConfig pooled = per_channel;
    pooled.keying.per_channel = false;
    const Rates r2 = evaluate(core::DetectorKind::kPhaseMog, pooled, 501);
    std::printf("%-24s  %7.2f%%  %7.1f%%\n", "pooled across channels",
                100.0 * r2.fpr, 100.0 * r2.tpr);
    report.add("pooled_fpr", r2.fpr, "ratio");
    report.add("pooled_tpr", r2.tpr, "ratio");
  }
  std::printf("(pooling mixes incomparable per-channel phases: the mixture "
              "either balloons or misfires)\n\n");

  std::printf("(b) hybrid fusion\n");
  std::printf("%-24s  %8s  %8s\n", "detector", "FPR", "TPR");
  for (const auto& [kind, name] :
       std::vector<std::pair<core::DetectorKind, const char*>>{
           {core::DetectorKind::kPhaseMog, "Phase-MoG"},
           {core::DetectorKind::kRssMog, "RSS-MoG"},
           {core::DetectorKind::kHybridAnd, "Hybrid-AND"},
           {core::DetectorKind::kHybridOr, "Hybrid-OR"}}) {
    const Rates r = evaluate(kind, core::DetectorConfig{}, 502);
    std::printf("%-24s  %7.2f%%  %7.1f%%\n", name, 100.0 * r.fpr,
                100.0 * r.tpr);
    report.add(std::string(name) + "_fpr", r.fpr, "ratio");
    report.add(std::string(name) + "_tpr", r.tpr, "ratio");
  }
  std::printf("(AND suppresses multipath false alarms at some sensitivity "
              "cost; OR maximizes sensitivity)\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
