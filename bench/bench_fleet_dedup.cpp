// Fleet dedup harness: cross-reader duplicate suppression on a warehouse
// strip of four overlapping reader zones.
//
// Four readers tile the strip at 4 m pitch with 3 m radii, so adjacent
// zones share a 2 m seam; statics sit at zone centers and on every seam,
// and movers orbit across several zones.  Each fleet cycle every reader
// re-inventories its zone (independent policy), so every seam tag is
// sighted by two readers per cycle — the raw stream double-counts it, and
// the dedup window decides how much of that the application sees.
//
// Expected shape: cross_reader_dup_ratio is 0 with the window off, rises
// with the window until it covers a whole fleet cycle, then saturates at
// the seam population's share of the raw stream.  Handoffs appear once
// suppression stops pinning seam tags to their first owner.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "core/fleet.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

namespace {

constexpr std::size_t kReaders = 4;
constexpr std::size_t kTagsPerZone = 12;
constexpr std::size_t kSeamTags = 4;  // per seam (3 seams)
constexpr std::size_t kMovers = 3;
constexpr std::size_t kCycles = 6;

struct Strip {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::shared_ptr<gen2::TagFlagField> field;
  std::vector<std::unique_ptr<llrp::SimReaderClient>> clients;
  std::vector<core::FleetReaderSpec> specs;

  explicit Strip(std::uint64_t seed) {
    util::Rng rng(seed);
    field = std::make_shared<gen2::TagFlagField>(
        gen2::SessionTiming::spec_default());
    std::size_t serial = 1;
    for (std::size_t r = 0; r < kReaders; ++r) {
      const double cx = static_cast<double>(r) * 4.0;
      sim::Zone zone{"zone-" + std::to_string(r), {cx, 0, 0}, 3.0};
      for (std::size_t i = 0; i < kTagsPerZone; ++i) {
        add_static(serial++, {cx + rng.uniform(-0.5, 0.5),
                              rng.uniform(-0.5, 0.5), 0});
      }
      if (r + 1 < kReaders) {
        for (std::size_t i = 0; i < kSeamTags; ++i) {
          add_static(serial++, {cx + 2.0, rng.uniform(-0.3, 0.3), 0});
        }
      }
      gen2::ReaderConfig rc;
      rc.coverage = zone;
      clients.push_back(std::make_unique<llrp::SimReaderClient>(
          gen2::LinkTiming(gen2::LinkParams::max_throughput()), rc, world,
          channel, std::vector<rf::Antenna>{{1, {cx, 0, 2}, 8.0}},
          seed + 10 + r, field));
      specs.push_back({clients.back().get(), zone});
    }
    for (std::size_t i = 0; i < kMovers; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(serial++);
      t.motion = std::make_shared<sim::CircularTrack>(
          util::Vec3{6, 0, 0}, 2.5, 1.2, static_cast<double>(i) * 2.0);
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
  }

  void add_static(std::size_t serial, util::Vec3 pos) {
    sim::SimTag t;
    t.epc = util::Epc::from_serial(serial);
    t.motion = std::make_shared<sim::StaticMotion>(pos);
    t.tag_phase_rad = 0.1 * static_cast<double>(serial);
    world.add_tag(std::move(t));
  }
};

struct Point {
  double window_ms = 0.0;
  double dup_ratio = 0.0;
  std::size_t readings = 0;
  std::size_t delivered = 0;
  std::size_t handoffs = 0;
};

Point run_window(util::SimDuration window, std::uint64_t seed) {
  Strip strip(seed);
  core::FleetConfig cfg;
  cfg.controller.phase2_duration = util::msec(200);
  // Host compute time must not leak onto the simulated timeline: every
  // sweep point then sees the identical raw reading stream, and only the
  // window moves the delivered/duplicate split.
  cfg.controller.charge_compute_time = false;
  cfg.policy = core::SessionPolicy::kIndependent;
  cfg.dedup_window = window;
  core::FleetController fleet(cfg, strip.specs, &strip.world);

  Point p;
  p.window_ms = util::to_millis(window);
  for (const core::FleetCycleReport& r : fleet.run_cycles(kCycles)) {
    p.readings += r.readings_total;
    p.delivered += r.delivered_total;
    p.handoffs += r.handoffs.size();
  }
  p.dup_ratio = p.readings == 0
                    ? 0.0
                    : static_cast<double>(p.readings - p.delivered) /
                          static_cast<double>(p.readings);
  return p;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 7117;
  const std::vector<util::SimDuration> windows{
      util::SimDuration::zero(), util::msec(100), util::msec(500),
      util::sec(2), util::sec(10)};

  std::printf("fleet dedup — cross-reader duplicate suppression vs window\n"
              "(%zu readers at 4 m pitch / 3 m radius, %zu statics per zone, "
              "%zu per seam, %zu movers, %zu cycles)\n\n",
              kReaders, kTagsPerZone, kSeamTags, kMovers, kCycles);
  std::printf("%10s  %9s  %10s  %10s  %9s\n", "window ms", "dup %",
              "readings", "delivered", "handoffs");

  bench::BenchReport report("fleet_dedup", kSeed);
  std::vector<Point> points;
  for (const util::SimDuration w : windows) {
    const Point p = run_window(w, kSeed);
    points.push_back(p);
    std::printf("%10.0f  %8.2f%%  %10zu  %10zu  %9zu\n", p.window_ms,
                p.dup_ratio * 100.0, p.readings, p.delivered, p.handoffs);
    const std::string at = "_at_" + std::to_string(static_cast<long long>(
                               p.window_ms)) + "ms";
    report.add("cross_reader_dup_ratio" + at, p.dup_ratio, "ratio");
    report.add("handoffs" + at, static_cast<double>(p.handoffs), "count");
  }

  // Headline: the default 500 ms window's suppression ratio, plus the
  // monotone sanity that a wider window never suppresses less.
  report.add("cross_reader_dup_ratio", points[2].dup_ratio, "ratio");
  bool monotone = true;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].dup_ratio + 1e-12 < points[i - 1].dup_ratio) {
      monotone = false;
    }
  }
  report.add("dup_ratio_monotone_in_window", monotone ? 1.0 : 0.0, "bool");

  std::printf("\nexpected: 0%% with the window off, saturating near the seam "
              "share as the window covers a fleet cycle; handoffs collapse "
              "once suppression pins seam owners.\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
