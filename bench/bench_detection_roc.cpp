// E4 — Fig. 12: ROC curves of the four motion detectors.
//
// FPR source: 100 stationary tags in an office with walking people
// (multipath).  TPR source: one tag on a toy train (oval track, 0.7 m/s).
// Sweeping the detection threshold ξ produces (FPR, TPR) pairs per method.
//
// Paper shape targets: Phase-MoG dominates; at FPR 0.2, Phase-MoG and
// Phase-diff reach TPR ≥ 0.99 while RSS-MoG ≈ 0.53 and RSS-diff ≈ 0.12;
// an operating point with TPR ≥ 0.95 at FPR ≤ 0.1 exists for Phase-MoG.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_report.hpp"
#include "core/detectors.hpp"
#include "gen2/reader.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

namespace {

struct Sample {
  rf::TagReading reading;
  bool moving_truth;
};

/// Generates labeled readings: 100 static office tags with people walking
/// (label: not moving), plus one train tag (label: moving).
std::vector<Sample> generate_samples(std::uint64_t seed) {
  sim::World world;
  util::Rng rng(seed);

  const auto train_motion =
      std::make_shared<sim::CircularTrack>(util::Vec3{1.0, 1.0, 0.0}, 0.2, 0.7);
  sim::SimTag train;
  train.epc = util::Epc::from_serial(9999);
  train.motion = train_motion;
  train.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
  const util::Epc train_epc = train.epc;
  world.add_tag(std::move(train));

  for (int i = 0; i < 100; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::from_serial(static_cast<std::uint64_t>(i) + 1);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-4, 4), rng.uniform(-4, 4), 0.0});
    t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(t));
  }
  // ~10 people working in the room (§7.1).
  util::Rng walk_rng = rng.fork();
  for (int p = 0; p < 10; ++p) {
    world.add_reflector(
        {std::make_shared<sim::RandomWaypoint>(
             util::Vec3{-5, -5, 0}, util::Vec3{5, 5, 0}, 1.0,
             util::sec(600), walk_rng, util::sec(3)),
         0.3});
  }

  rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
  gen2::Gen2Reader reader(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                          gen2::ReaderConfig{}, world, channel,
                          {{1, {0, 0, 2}, 8.0}}, util::Rng(seed + 1));

  std::vector<Sample> samples;
  gen2::InvFlag target = gen2::InvFlag::kA;
  while (world.now() < util::sec(600) && samples.size() < 120'000) {
    gen2::QueryCommand q;
    q.q = 6;
    q.target = target;
    target = target == gen2::InvFlag::kA ? gen2::InvFlag::kB
                                         : gen2::InvFlag::kA;
    reader.run_inventory_round(q, [&](const rf::TagReading& r) {
      samples.push_back({r, r.epc == train_epc});
    });
  }
  return samples;
}

struct RocPoint {
  double fpr;
  double tpr;
};

/// Replays the labeled stream through a detector built with threshold `xi`
/// and counts false/true positives.  MoG detectors use ξ as the match
/// threshold; differencing detectors use a proportional threshold.
RocPoint evaluate(core::DetectorKind kind, double xi,
                  const std::vector<Sample>& samples) {
  core::DetectorConfig cfg;
  cfg.phase_mog.match_threshold = xi;
  cfg.rss_mog.match_threshold = xi;
  cfg.phase_diff_threshold_rad = 0.1 * xi;
  cfg.rss_diff_threshold_db = 0.67 * xi;
  // One detector per tag.
  std::unordered_map<util::Epc, std::unique_ptr<core::MotionDetector>> dets;
  std::size_t tp = 0, fn = 0, fp = 0, tn = 0;
  std::size_t warmup_skipped = 0;
  for (const auto& s : samples) {
    auto& det = dets[s.reading.epc];
    if (!det) det = core::make_detector(kind, cfg);
    const bool flagged =
        det->update(s.reading) == core::MotionVerdict::kMoving;
    // Skip the first minute as model warm-up (the paper trains on a long
    // trace before testing FPR).
    if (s.reading.timestamp < util::sec(60)) {
      ++warmup_skipped;
      continue;
    }
    if (s.moving_truth) {
      flagged ? ++tp : ++fn;
    } else {
      flagged ? ++fp : ++tn;
    }
  }
  (void)warmup_skipped;
  return {fp + tn ? static_cast<double>(fp) / static_cast<double>(fp + tn)
                  : 0.0,
          tp + fn ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                  : 0.0};
}

}  // namespace

int main() {
  std::printf("E4 / Fig. 12 — detection ROC (100 static office tags + "
              "walking people vs toy-train tag)\n\n");
  const auto samples = generate_samples(2024);
  std::size_t movers = 0;
  for (const auto& s : samples) movers += s.moving_truth ? 1 : 0;
  std::printf("labeled readings: %zu total, %zu from the mobile tag\n\n",
              samples.size(), movers);

  const std::vector<std::pair<core::DetectorKind, const char*>> methods{
      {core::DetectorKind::kPhaseMog, "Phase-MoG"},
      {core::DetectorKind::kPhaseDiff, "Phase-diff"},
      {core::DetectorKind::kRssMog, "RSS-MoG"},
      {core::DetectorKind::kRssDiff, "RSS-diff"},
  };
  const std::vector<double> xis{0.5, 1.0, 1.5, 2.0, 3.0, 4.5, 6.0, 9.0, 15.0};

  bench::BenchReport report("detection_roc", /*seed=*/2024);
  for (const auto& [kind, name] : methods) {
    std::printf("%-10s  %s\n", name, "(xi: FPR -> TPR)");
    double best_tpr_at_01 = 0.0;
    for (const double xi : xis) {
      const RocPoint p = evaluate(kind, xi, samples);
      std::printf("   xi=%-5.1f  FPR=%.3f  TPR=%.3f\n", xi, p.fpr, p.tpr);
      if (p.fpr <= 0.10) best_tpr_at_01 = std::max(best_tpr_at_01, p.tpr);
    }
    std::printf("   best TPR at FPR<=0.10: %.3f\n\n", best_tpr_at_01);
    report.add(std::string(name) + "_best_tpr_at_fpr_010", best_tpr_at_01,
               "ratio");
  }
  std::printf("paper: Phase-MoG achieves TPR >= 0.95 at FPR <= 0.1; "
              "RSS methods trail badly.\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
