// Ablation — the capture effect's impact on reading fairness and rate.
//
// Real UHF receivers often decode the strongest tag of a collided slot
// ("capture").  Capture raises aggregate throughput but biases readings
// toward near tags, hurting exactly the far/mobile tags surveillance cares
// about.  This harness sweeps the capture probability and reports the
// aggregate read rate, Jain's fairness index over per-tag read counts, and
// the near/far read ratio.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "gen2/reader.hpp"
#include "util/circular.hpp"
#include "util/stats.hpp"

using namespace tagwatch;

int main() {
  std::printf("Ablation — capture effect vs fairness (40 tags, half near "
              "the antenna, half far)\n\n");
  std::printf("%10s  %12s  %9s  %10s\n", "capture p", "reads/s", "Jain",
              "ord(far-near)");

  bench::BenchReport report("ablation_capture", /*seed=*/314);
  for (const double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sim::World world;
    util::Rng rng(314);
    for (std::size_t i = 0; i < 40; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(i + 1);
      const double d = (i < 20) ? rng.uniform(0.5, 1.5) : rng.uniform(4.0, 6.0);
      const double angle = rng.uniform(0.0, util::kTwoPi);
      t.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{d * std::cos(angle), d * std::sin(angle), 0.0});
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
    rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
    gen2::ReaderConfig cfg;
    cfg.capture_probability = p;
    gen2::Gen2Reader reader(
        gen2::LinkTiming(gen2::LinkParams::paper_testbed()), cfg, world,
        channel, {{1, {0, 0, 1}, 8.0}}, util::Rng(315));

    std::vector<double> counts(40, 0.0);
    std::size_t total = 0;
    // Capture reads near tags *earlier* within each round, which decides
    // who gets read at all when presence windows are short (a gate).
    util::RunningStats near_order, far_order;
    std::size_t order_in_round = 0;
    gen2::InvFlag target = gen2::InvFlag::kA;
    const util::SimTime t_end = util::sec(30);
    while (world.now() < t_end) {
      gen2::QueryCommand q;
      q.target = target;
      target = target == gen2::InvFlag::kA ? gen2::InvFlag::kB
                                           : gen2::InvFlag::kA;
      order_in_round = 0;
      reader.run_inventory_round(q, [&](const rf::TagReading& r) {
        // from_serial puts the serial in the low 64 bits of the 96-bit EPC.
        const std::uint64_t serial = r.epc.bits().substring(32, 64).to_uint64();
        counts[serial - 1] += 1.0;
        ++total;
        (serial <= 20 ? near_order : far_order)
            .add(static_cast<double>(order_in_round++));
      });
    }
    std::printf("%10.2f  %12.1f  %9.3f  %10.2f\n", p,
                static_cast<double>(total) / util::to_seconds(t_end),
                util::jain_fairness(counts),
                far_order.mean() - near_order.mean());
    const std::string at =
        "_at_p" + std::to_string(static_cast<int>(p * 100.0));
    report.add("reads_per_second" + at,
               static_cast<double>(total) / util::to_seconds(t_end), "hz");
    report.add("jain_fairness" + at, util::jain_fairness(counts), "ratio");
    report.add("order_gap" + at, far_order.mean() - near_order.mean(),
               "slots");
  }
  std::printf("\n(dual-target rounds re-read every tag once per round, so "
              "long-run fairness stays 1;\ncapture instead buys throughput "
              "and pulls near tags to the FRONT of each round,\npushing far "
              "tags later — the column is the mean read-order gap)\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
