// E9 — Fig. 18: IRR gain vs percentage of mobile tags.
//
// For mobile fractions {5%, 10%, 20%} and populations {50, 100, 200, 300,
// 400}, the harness measures the ratio of each mover's Phase II IRR under
// rate-adaptive reading (Tagwatch, and the naive EPC-bitmask solution) to
// its IRR under read-all, and reports the distribution (P10/median/P90).
//
// Paper shape targets: median gain ≈3.2× at 5% (4× at P90), ≈1.9× at 10%,
// →~1× at 20%; naive is consistently below Tagwatch and sinks below 1× at
// 20% (Select broadcast cost eats the gain).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace tagwatch;
using bench::Testbed;

namespace {

double measure_irr(std::size_t n, std::size_t movers, core::ScheduleMode mode,
                   std::uint64_t seed, std::size_t cycles) {
  Testbed bed(n, movers, seed);
  core::TagwatchConfig cfg;
  cfg.mode = mode;
  cfg.phase2_duration = util::sec(2);
  // Allow scheduling up to (and slightly beyond) the 20% study point.
  cfg.mobile_fraction_threshold = 0.25;
  core::TagwatchController ctl(cfg, bed.reader());
  const auto reports = ctl.run_cycles(cycles);
  return bench::mover_irr_hz(reports, bed, /*warmup=*/cycles / 2);
}

}  // namespace

int main() {
  // The paper runs 1000 cycles per setting; our per-setting distributions
  // stabilize across seeds much sooner.  Population sweep per the paper.
  const std::vector<std::size_t> populations{50, 100, 200, 300, 400};
  const std::vector<double> fractions{0.05, 0.10, 0.20};
  constexpr std::size_t kCycles = 10;
  constexpr int kSeeds = 3;

  std::printf("E9 / Fig. 18 — IRR gain of rate-adaptive reading vs mobile "
              "fraction\n(populations 50..400, movers on a turntable)\n\n");
  std::printf("%-8s  %-22s  %-22s\n", "", "tagwatch gain", "naive gain");
  std::printf("%-8s  %6s %6s %6s  %6s %6s %6s\n", "movers", "P10", "median",
              "P90", "P10", "median", "P90");

  bench::BenchReport report("irr_gain", /*seed=*/9000);
  for (const double fraction : fractions) {
    std::vector<double> tw_gains, nv_gains;
    for (const std::size_t n : populations) {
      const auto movers =
          std::max<std::size_t>(1, static_cast<std::size_t>(
                                       static_cast<double>(n) * fraction));
      for (int s = 0; s < kSeeds; ++s) {
        const auto seed = static_cast<std::uint64_t>(
            9000 + n * 10 + static_cast<std::size_t>(fraction * 100) +
            static_cast<std::size_t>(s));
        const double base = measure_irr(n, movers,
                                        core::ScheduleMode::kReadAll, seed,
                                        kCycles);
        if (base <= 0.0) continue;
        tw_gains.push_back(measure_irr(n, movers,
                                       core::ScheduleMode::kGreedyCover, seed,
                                       kCycles) /
                           base);
        nv_gains.push_back(measure_irr(n, movers,
                                       core::ScheduleMode::kNaiveEpcMasks,
                                       seed, kCycles) /
                           base);
      }
    }
    std::printf("%6.0f%%  %6.2f %6.2f %6.2f  %6.2f %6.2f %6.2f\n",
                fraction * 100.0, util::percentile(tw_gains, 0.1),
                util::median(tw_gains), util::percentile(tw_gains, 0.9),
                util::percentile(nv_gains, 0.1), util::median(nv_gains),
                util::percentile(nv_gains, 0.9));
    const auto pct = static_cast<int>(fraction * 100.0);
    const std::string at = "_at_" + std::to_string(pct) + "pct";
    report.add("tagwatch_median_gain" + at, util::median(tw_gains), "ratio");
    report.add("tagwatch_p90_gain" + at, util::percentile(tw_gains, 0.9),
               "ratio");
    report.add("naive_median_gain" + at, util::median(nv_gains), "ratio");
  }
  std::printf("\npaper: 5%% -> 3.2x median (4x P90); 10%% -> 1.9x; "
              "20%% -> ~1x with naive <1x.\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
