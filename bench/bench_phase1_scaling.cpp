// Phase-I ingestion scaling — serial MotionAssessor vs the sharded
// ParallelAssessor engine.
//
// Measures the full Phase-I ingestion path as the controller drives it:
// readings flow through a ReadingPipeline into an assessor sink, a window
// opens, every reading is ingested, the window is assessed.  The serial
// baseline is per-reading dispatch() into AssessorSink (one wall-clock
// pair per reading, node-based detector state); the engine is
// dispatch_batch() into ParallelAssessorSink (one clock pair per batch,
// dense sharded slots).  Output equality is asserted in-bench: any
// divergence from the serial oracle aborts the run, so a speedup can
// never be bought with a wrong answer.
//
// Headline metric: ingest_speedup_at_4_threads on the 4,096-tag scene.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "core/assessor.hpp"
#include "core/parallel_assessor.hpp"
#include "core/pipeline.hpp"
#include "rf/measurement.hpp"
#include "util/epc.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

using namespace tagwatch;

namespace {

constexpr std::size_t kWindows = 2;
constexpr std::size_t kReadingsPerTag = 16;  // Per window, over 4 ant × 16 ch.
constexpr int kReps = 3;

/// One window's synthetic inventory: kReadingsPerTag reads per tag in a
/// shuffled tag order, spread over 4 antennas and 16 channels.
std::vector<std::vector<rf::TagReading>> make_windows(std::size_t n_tags,
                                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<util::Epc> epcs;
  epcs.reserve(n_tags);
  for (std::size_t i = 0; i < n_tags; ++i) {
    epcs.push_back(util::Epc::from_serial(i + 1));
  }
  std::vector<std::vector<rf::TagReading>> windows(kWindows);
  util::SimTime t = util::msec(1);
  for (auto& window : windows) {
    window.reserve(n_tags * kReadingsPerTag);
    for (std::size_t pass = 0; pass < kReadingsPerTag; ++pass) {
      for (std::size_t i = 0; i < n_tags; ++i) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.uniform_u64(0, n_tags - 1));
        t += util::usec(3);
        rf::TagReading r;
        r.epc = epcs[pick];
        r.antenna = static_cast<rf::AntennaId>(1 + (pass % 4));
        r.channel = (pick + pass) % 16;
        r.phase_rad = rng.uniform(0.0, 6.283185307179586);
        r.rssi_dbm = rng.uniform(-70.0, -40.0);
        r.timestamp = t;
        window.push_back(r);
      }
    }
  }
  return windows;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void require_equal(const std::vector<core::TagAssessment>& oracle,
                   const std::vector<core::TagAssessment>& got) {
  if (got.size() != oracle.size()) {
    std::fprintf(stderr, "FATAL: assessment count diverged (%zu vs %zu)\n",
                 got.size(), oracle.size());
    std::abort();
  }
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    if (!(got[i].epc == oracle[i].epc) ||
        got[i].window_readings != oracle[i].window_readings ||
        got[i].moving_votes != oracle[i].moving_votes ||
        got[i].mobile != oracle[i].mobile) {
      std::fprintf(stderr, "FATAL: assessment %zu diverged for %s\n", i,
                   oracle[i].epc.to_hex().c_str());
      std::abort();
    }
  }
}

/// Runs the serial path once; returns elapsed seconds and (optionally)
/// captures the per-window assessments as the oracle.
double run_serial(const std::vector<std::vector<rf::TagReading>>& windows,
                  std::vector<std::vector<core::TagAssessment>>* oracle) {
  core::MotionAssessor assessor;
  core::ReadingPipeline pipeline;
  pipeline.add_sink(std::make_shared<core::AssessorSink>(assessor));
  const double t0 = now_seconds();
  for (const auto& window : windows) {
    assessor.begin_window();
    for (const rf::TagReading& r : window) {
      pipeline.dispatch(r, {0, core::ReadPhase::kPhase1});
    }
    const auto& result = assessor.assess(window.back().timestamp);
    if (oracle) oracle->push_back(result);
  }
  return now_seconds() - t0;
}

double run_engine(const std::vector<std::vector<rf::TagReading>>& windows,
                  std::size_t threads,
                  const std::vector<std::vector<core::TagAssessment>>& oracle) {
  core::ParallelAssessor assessor({}, threads);
  core::ReadingPipeline pipeline;
  pipeline.add_sink(std::make_shared<core::ParallelAssessorSink>(assessor));
  const double t0 = now_seconds();
  for (std::size_t w = 0; w < windows.size(); ++w) {
    assessor.begin_window();
    pipeline.dispatch_batch(windows[w], {0, core::ReadPhase::kPhase1});
    require_equal(oracle[w], assessor.assess(windows[w].back().timestamp));
  }
  return now_seconds() - t0;
}

}  // namespace

int main() {
  std::printf("Phase-I ingestion scaling — serial dispatch+MotionAssessor "
              "vs batched ParallelAssessor\n");
  std::printf("(%zu windows, %zu readings/tag/window; min of %d reps; "
              "output equality asserted)\n\n",
              kWindows, kReadingsPerTag, kReps);
  std::printf("%8s  %10s  %12s  %12s  %8s\n", "tags", "threads",
              "serial ms", "engine ms", "speedup");

  bench::BenchReport report("phase1_scaling", /*seed=*/4096);
  for (const std::size_t n_tags : {std::size_t{256}, std::size_t{1024},
                                   std::size_t{4096}}) {
    const auto windows = make_windows(n_tags, 4096 + n_tags);
    std::vector<std::vector<core::TagAssessment>> oracle;
    double serial_best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      std::vector<std::vector<core::TagAssessment>> captured;
      const double s = run_serial(windows, rep == 0 ? &oracle : &captured);
      serial_best = std::min(serial_best, s);
    }
    report.add("serial_ms_" + std::to_string(n_tags), serial_best * 1e3,
               "ms");
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
      double engine_best = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        engine_best = std::min(engine_best,
                               run_engine(windows, threads, oracle));
      }
      const double speedup = serial_best / engine_best;
      std::printf("%8zu  %10zu  %12.2f  %12.2f  %7.2fx\n", n_tags, threads,
                  serial_best * 1e3, engine_best * 1e3, speedup);
      report.add("engine_ms_" + std::to_string(n_tags) + "_t" +
                     std::to_string(threads),
                 engine_best * 1e3, "ms");
      report.add("speedup_" + std::to_string(n_tags) + "_t" +
                     std::to_string(threads),
                 speedup, "ratio");
    }
  }

  // The acceptance headline: engine at 4 threads vs the serial oracle on
  // the 4,096-tag scene.
  report.add("ingest_speedup_at_4_threads",
             report.value_of("speedup_4096_t4"), "ratio");
  std::printf("\ningest_speedup_at_4_threads (4096 tags): %.2fx\n",
              report.value_of("ingest_speedup_at_4_threads"));
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
