// Ablation — design choices called out in DESIGN.md:
//
//  (a) K (mixture size): single Gaussian (K=1) vs the paper's K=8 in a
//      multipath-rich office.  Fig. 7's argument: one Gaussian cannot
//      absorb the alternating multipath states, so K=1 floods Phase II
//      with false positives.
//  (b) cost model in the greedy gain: scheduling with the start-up cost
//      τ0 zeroed out (the "never considered before" factor §2.2 stresses)
//      picks many tiny bitmasks and pays τ0 per round on air.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "gen2/reader.hpp"

using namespace tagwatch;

namespace {

// ------------------------------------------------------- (a) K ablation
double false_positive_rate_with_k(std::size_t k, std::uint64_t seed) {
  sim::World world;
  util::Rng rng(seed);
  for (int i = 0; i < 30; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::from_serial(static_cast<std::uint64_t>(i) + 1);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-4, 4), rng.uniform(-4, 4), 0.0});
    t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    world.add_tag(std::move(t));
  }
  util::Rng walk_rng = rng.fork();
  for (int p = 0; p < 6; ++p) {
    world.add_reflector({std::make_shared<sim::RandomWaypoint>(
                             util::Vec3{-5, -5, 0}, util::Vec3{5, 5, 0}, 1.0,
                             util::sec(240), walk_rng, util::sec(2)),
                         0.3});
  }
  rf::RfChannel channel(rf::ChannelPlan::single(920.625e6));
  gen2::Gen2Reader reader(gen2::LinkTiming(gen2::LinkParams::paper_testbed()),
                          gen2::ReaderConfig{}, world, channel,
                          {{1, {0, 0, 2}, 8.0}}, util::Rng(seed + 1));

  core::DetectorConfig cfg;
  cfg.phase_mog.max_components = k;
  std::unordered_map<util::Epc, std::unique_ptr<core::MotionDetector>> dets;
  std::size_t fp = 0, total = 0;
  gen2::InvFlag target = gen2::InvFlag::kA;
  while (world.now() < util::sec(240)) {
    gen2::QueryCommand q;
    q.q = 5;
    q.target = target;
    target = target == gen2::InvFlag::kA ? gen2::InvFlag::kB
                                         : gen2::InvFlag::kA;
    reader.run_inventory_round(q, [&](const rf::TagReading& r) {
      auto& det = dets[r.epc];
      if (!det) det = core::make_detector(core::DetectorKind::kPhaseMog, cfg);
      const bool flagged = det->update(r) == core::MotionVerdict::kMoving;
      if (r.timestamp >= util::sec(60)) {  // post warm-up
        ++total;
        if (flagged) ++fp;
      }
    });
  }
  return total ? static_cast<double>(fp) / static_cast<double>(total) : 0.0;
}

// ------------------------------------------ (b) cost-model ablation
double mover_irr_with_cost_model(const core::InventoryCostModel& model,
                                 std::uint64_t seed) {
  bench::Testbed bed(60, 3, seed);
  core::TagwatchConfig cfg;
  cfg.cost_model = model;
  cfg.phase2_duration = util::sec(2);
  core::TagwatchController ctl(cfg, bed.reader());
  const auto reports = ctl.run_cycles(10);
  return bench::mover_irr_hz(reports, bed, 5);
}

}  // namespace

int main() {
  std::printf("Ablation A — mixture size K vs false-positive rate\n");
  std::printf("(30 static office tags, 6 people walking; FPR after 60 s "
              "warm-up)\n\n");
  std::printf("%4s  %8s\n", "K", "FPR");
  bench::BenchReport report("ablation_gmm", /*seed=*/6100);
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    const double fpr = false_positive_rate_with_k(k, 6100 + k);
    std::printf("%4zu  %7.2f%%\n", k, 100.0 * fpr);
    report.add("fpr_at_k" + std::to_string(k), fpr, "ratio");
  }
  std::printf("\n(the paper's default K=8 exists to absorb multipath states; "
              "K=1 reverts to the naive single-Gaussian model)\n\n");

  std::printf("Ablation B — start-up cost in the scheduler's gain "
              "function\n\n");
  const double with_tau0 = mover_irr_with_cost_model(
      core::InventoryCostModel::paper_fit(), 6200);
  // τ0 ≈ 0: the gain function sees only slot costs, so merging bitmasks
  // looks pointless and the plan degenerates toward per-target rounds.
  const double without_tau0 =
      mover_irr_with_cost_model(core::InventoryCostModel(1e-6, 0.00018), 6200);
  std::printf("mover Phase II IRR with tau0 in the model : %6.2f Hz\n",
              with_tau0);
  std::printf("mover Phase II IRR with tau0 zeroed       : %6.2f Hz\n",
              without_tau0);
  std::printf("\n(modeling the per-round start-up cost is what §2.2 claims "
              "as a first: ignoring it costs real rate)\n");
  report.add("mover_irr_with_tau0", with_tau0, "hz");
  report.add("mover_irr_without_tau0", without_tau0, "hz");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
