// E7 — Fig. 15/16: schedule feasibility — per-tag IRR with 2/40 and 5/40
// targets pinned via the configuration file (isolating Phase II from the
// assessment, exactly as §7.2 does).
//
// For each case the harness prints the per-tag Phase II IRR under three
// modes: read-all, Tagwatch (greedy set-cover bitmasks), and the naive
// rate-adaptive solution (target EPCs as bitmasks).
//
// Paper shape targets (Fig. 15, 2/40): read-all ≈ 13 Hz; Tagwatch lifts the
// targets ~3.6× (to ≈47 Hz) while the rest fall ~0; naive gives ~1.8×.
// Fig. 16 (5/40): Tagwatch still ~2.2×, a couple of non-targets are
// collaterally covered, and naive drops below read-all.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace tagwatch;
using bench::Testbed;

namespace {

struct CaseResult {
  std::map<std::size_t, double> irr_by_tag;  // tag index -> Hz
};

CaseResult run_case(std::size_t n_targets, core::ScheduleMode mode,
                    std::uint64_t seed) {
  Testbed bed(40, 0, seed);  // nothing actually moves: targets are pinned
  core::TagwatchConfig cfg;
  cfg.mode = mode;
  // Pin the first n_targets tags (by world order) as "concerned" targets.
  for (std::size_t i = 0; i < n_targets; ++i) {
    cfg.pinned_targets.push_back(bed.world.tags()[i].epc);
  }
  // Raise the fallback threshold so pinning 5/40 still schedules.
  cfg.mobile_fraction_threshold = 0.5;
  core::TagwatchController ctl(cfg, bed.reader());

  const auto reports = ctl.run_cycles(10);
  CaseResult result;
  double secs = 0.0;
  std::map<util::Epc, double> reads;
  for (std::size_t c = 4; c < reports.size(); ++c) {
    secs += util::to_seconds(reports[c].phase2_duration);
    for (const auto& [epc, count] : reports[c].phase2_counts) {
      reads[epc] += static_cast<double>(count);
    }
  }
  for (std::size_t i = 0; i < bed.world.tags().size(); ++i) {
    result.irr_by_tag[i] = reads[bed.world.tags()[i].epc] / secs;
  }
  return result;
}

void print_case(std::size_t n_targets, std::uint64_t seed,
                bench::BenchReport& report) {
  std::printf("---- %zu targets out of 40 tags ----\n", n_targets);
  const CaseResult all =
      run_case(n_targets, core::ScheduleMode::kReadAll, seed);
  const CaseResult tw =
      run_case(n_targets, core::ScheduleMode::kGreedyCover, seed);
  const CaseResult nv =
      run_case(n_targets, core::ScheduleMode::kNaiveEpcMasks, seed);

  std::printf("%5s  %9s  %9s  %9s   %s\n", "tag", "read-all", "tagwatch",
              "naive", "role");
  double sum_all = 0.0, sum_tw = 0.0, sum_nv = 0.0;
  std::size_t collateral = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const bool target = i < n_targets;
    const bool interesting = target || tw.irr_by_tag.at(i) > 0.5;
    if (target) {
      sum_all += all.irr_by_tag.at(i);
      sum_tw += tw.irr_by_tag.at(i);
      sum_nv += nv.irr_by_tag.at(i);
    } else if (tw.irr_by_tag.at(i) > 0.5) {
      ++collateral;
    }
    if (interesting) {
      std::printf("%5zu  %9.2f  %9.2f  %9.2f   %s\n", i + 1,
                  all.irr_by_tag.at(i), tw.irr_by_tag.at(i),
                  nv.irr_by_tag.at(i),
                  target ? "target" : "collateral (covered by a bitmask)");
    }
  }
  const double n = static_cast<double>(n_targets);
  std::printf("target means: read-all %.2f Hz, tagwatch %.2f Hz (%+.0f%%), "
              "naive %.2f Hz (%+.0f%%)\n",
              sum_all / n, sum_tw / n,
              (sum_tw / sum_all - 1.0) * 100.0, sum_nv / n,
              (sum_nv / sum_all - 1.0) * 100.0);
  std::printf("collaterally covered non-targets: %zu\n\n", collateral);

  const std::string label =
      "_" + std::to_string(n_targets) + "_of_40";
  report.add("readall_target_mean" + label, sum_all / n, "hz");
  report.add("tagwatch_target_mean" + label, sum_tw / n, "hz");
  report.add("naive_target_mean" + label, sum_nv / n, "hz");
  report.add("collateral_nontargets" + label,
             static_cast<double>(collateral), "count");
}

}  // namespace

int main() {
  std::printf("E7 / Fig. 15-16 — schedule feasibility (targets pinned via "
              "config; Phase II IRR only)\n\n");
  bench::BenchReport report("schedule_feasibility", /*seed=*/501);
  print_case(2, 501, report);  // Fig. 15
  print_case(5, 502, report);  // Fig. 16
  std::printf("paper: 2/40 -> +261%% (13->47 Hz) for Tagwatch, +83%% naive;\n"
              "       5/40 -> +120%% for Tagwatch, naive below read-all.\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
