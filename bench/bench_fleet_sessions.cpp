// k-session redundancy harness: missed-read probability vs session count.
//
// Reproduces the redundant-reader reliability curve of arXiv 0904.2441: a
// tag that is temporarily blocked (detuned/occluded, §4.3 "reading
// exceptions") misses one inventory pass with probability p, but k passes
// run in k *distinct* Gen2 sessions are independent Bernoulli trials — the
// tag escapes all of them with probability p^k.  The fleet substrate makes
// this concrete: k readers share one TagFlagField over one scene, reader r
// inventories session S(r) without re-arming, and a tag is "read" when any
// reader ACKs it.
//
// Expected shape: missed_ratio(k) falls geometrically, ~p^k — the monotone
// reliability gain the per-reader session policy buys.
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "gen2/flag_field.hpp"
#include "gen2/reader.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

namespace {

constexpr std::size_t kTags = 200;
constexpr double kBlockProbability = 0.3;

/// One trial: k readers over a fresh blocked population, one inventory
/// pass per reader in its own session.  Returns the missed fraction.
double run_trial(std::size_t k_sessions, std::uint64_t seed) {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  const std::vector<rf::Antenna> antennas{{1, {0, 0, 2}, 8.0}};
  util::Rng rng(seed);
  for (std::size_t i = 0; i < kTags; ++i) {
    sim::SimTag t;
    t.epc = util::Epc::from_serial(i + 1);
    t.motion = std::make_shared<sim::StaticMotion>(
        util::Vec3{rng.uniform(-2, 2), rng.uniform(-2, 2), 0});
    t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    t.block_probability = kBlockProbability;
    world.add_tag(std::move(t));
  }

  // One shared flag field: the k passes touch disjoint sessions, so no
  // pass disturbs another — the fleet's kPerReader discipline.
  auto field =
      std::make_shared<gen2::TagFlagField>(gen2::SessionTiming::spec_default());
  std::set<std::string> read;
  for (std::size_t r = 0; r < k_sessions; ++r) {
    gen2::Gen2Reader reader(gen2::LinkTiming(gen2::LinkParams::max_throughput()),
                            gen2::ReaderConfig{}, world, channel, antennas,
                            util::Rng(seed + 100 + r), field);
    gen2::QueryCommand q;
    q.session = static_cast<gen2::Session>(r % 4);
    q.target = gen2::InvFlag::kA;
    reader.run_inventory_round(
        q, [&read](const rf::TagReading& r) { read.insert(r.epc.to_hex()); });
  }
  return 1.0 - static_cast<double>(read.size()) / static_cast<double>(kTags);
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 20441;
  constexpr std::size_t kTrials = 8;

  std::printf("k-session redundancy — missed-read ratio vs session count\n"
              "(%zu tags, block probability %.0f%%, %zu trials per point; "
              "predicted: p^k)\n\n",
              kTags, kBlockProbability * 100.0, kTrials);
  std::printf("%2s  %12s  %12s\n", "k", "missed", "predicted");

  bench::BenchReport report("fleet_sessions", kSeed);
  std::vector<double> missed;
  for (std::size_t k = 1; k <= 4; ++k) {
    double sum = 0.0;
    for (std::size_t t = 0; t < kTrials; ++t) {
      sum += run_trial(k, kSeed + 1000 * t + k);
    }
    const double ratio = sum / static_cast<double>(kTrials);
    missed.push_back(ratio);
    const double predicted = std::pow(kBlockProbability, static_cast<double>(k));
    std::printf("%2zu  %11.2f%%  %11.2f%%\n", k, ratio * 100.0,
                predicted * 100.0);
    report.add("missed_ratio_k" + std::to_string(k), ratio, "ratio");
  }

  // The headline: adding sessions must never make reliability worse.
  bool monotone = true;
  for (std::size_t i = 1; i < missed.size(); ++i) {
    if (missed[i] > missed[i - 1]) monotone = false;
  }
  report.add("monotone_reliability_gain", monotone ? 1.0 : 0.0, "bool");
  report.add("reliability_gain_k4",
             missed[3] > 0.0 ? missed[0] / missed[3]
                             : missed[0] / (0.5 / (kTags * kTrials)),
             "ratio");

  std::printf("\nexpected: geometric decay, missed(k) ~ %.1f^k; monotone "
              "non-increasing (headline: monotone_reliability_gain).\n",
              kBlockProbability);
  std::printf("wrote %s\n", report.write().c_str());
  return monotone ? 0 : 1;
}
