// Fleet failover harness: coverage gap and missed movers vs takeover
// policy when a reader dies mid-run.
//
// Four readers tile a strip at 4 m pitch with 2.5 m radii; statics cluster
// at the zone centers and movers orbit the seam between zones 0 and 1.  A
// scripted outage kills reader 0 permanently a few cycles in.  The fleet
// health state machine declares it Down after down_after consecutive
// blackout cycles, and then the takeover policy decides what happens to
// zone 0's tags:
//   none     — nobody expands; zone-0 statics go dark until the run ends.
//   static   — the nearest survivors widen by a fixed margin: partial
//              re-cover (the far half of zone 0 stays dark).
//   adaptive — survivors widen exactly far enough to reach the orphaned
//              zone (budget-capped) and the re-cover queue pins the
//              orphans as Phase II targets: full re-cover.
//
// Metrics: per-orphan coverage gap (reader death -> next delivered
// reading, capped at run end) and the fraction of post-death cycles in
// which a mover was missed.  Headline: adaptive takeover must beat the
// no-takeover baseline by at least 2x on coverage gap — the harness exits
// nonzero otherwise, so CI bench-smoke gates on it.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "core/fleet.hpp"
#include "llrp/fault_injection.hpp"
#include "llrp/sim_reader_client.hpp"
#include "util/circular.hpp"

using namespace tagwatch;

namespace {

constexpr std::size_t kReaders = 4;
constexpr std::size_t kTagsPerZone = 6;
constexpr std::size_t kMovers = 2;
constexpr double kPitch = 4.0;
constexpr double kRadius = 2.5;
constexpr std::size_t kDeathCycle = 3;  // Outage starts entering this cycle.
constexpr std::size_t kCycles = 10;
constexpr std::uint64_t kMoverSerialBase = 100;

struct Strip {
  sim::World world;
  rf::RfChannel channel{rf::ChannelPlan::single(920.625e6)};
  std::shared_ptr<gen2::TagFlagField> field;
  std::vector<std::unique_ptr<llrp::SimReaderClient>> sims;
  std::vector<std::unique_ptr<llrp::FaultInjectingReaderClient>> injectors;
  std::vector<core::FleetReaderSpec> specs;

  /// `death_at` zero builds a fault-free strip (the probe run that
  /// measures when kDeathCycle starts on the sim clock).
  Strip(std::uint64_t seed, util::SimTime death_at) {
    util::Rng rng(seed);
    field = std::make_shared<gen2::TagFlagField>(
        gen2::SessionTiming::spec_default());
    std::size_t serial = 1;
    for (std::size_t r = 0; r < kReaders; ++r) {
      const double cx = static_cast<double>(r) * kPitch;
      sim::Zone zone{"zone-" + std::to_string(r), {cx, 0, 0}, kRadius};
      for (std::size_t i = 0; i < kTagsPerZone; ++i) {
        sim::SimTag t;
        t.epc = util::Epc::from_serial(serial++);
        t.motion = std::make_shared<sim::StaticMotion>(util::Vec3{
            cx + rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5), 0});
        t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
        world.add_tag(std::move(t));
      }
      gen2::ReaderConfig rc;
      rc.coverage = zone;
      sims.push_back(std::make_unique<llrp::SimReaderClient>(
          gen2::LinkTiming(gen2::LinkParams::max_throughput()), rc, world,
          channel, std::vector<rf::Antenna>{{1, {cx, 0, 2}, 8.0}},
          seed + 10 + r, field));
      llrp::FaultPlan plan;
      plan.seed = seed + 90 + r;
      if (r == 0 && death_at > util::SimTime{0}) {
        plan.outages.push_back({death_at, std::nullopt});
      }
      injectors.push_back(std::make_unique<llrp::FaultInjectingReaderClient>(
          *sims.back(), plan));
      specs.push_back({injectors.back().get(), zone});
    }
    for (std::size_t i = 0; i < kMovers; ++i) {
      sim::SimTag t;
      t.epc = util::Epc::from_serial(kMoverSerialBase + i);
      t.motion = std::make_shared<sim::CircularTrack>(
          util::Vec3{kPitch / 2.0, 0, 0}, 1.8, 0.8,
          static_cast<double>(i) * 2.5);
      t.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      world.add_tag(std::move(t));
    }
  }
};

/// Records every fleet-pipeline delivery: per EPC, the delivery times and
/// which reader/cycle produced them.
class GapSink final : public core::ReadingSink {
 public:
  struct Delivery {
    util::SimTime at{0};
    std::size_t source = 0;
    std::size_t cycle = 0;
  };

  std::string_view name() const override { return "gap-probe"; }
  bool on_reading(const rf::TagReading& reading,
                  const core::ReadingContext& context) override {
    deliveries[reading.epc].push_back(
        {reading.timestamp, context.source_id, context.cycle_index});
    return true;
  }

  std::map<util::Epc, std::vector<Delivery>> deliveries;
};

struct Outcome {
  double coverage_gap_s = 0.0;      ///< Mean per-orphan re-cover latency.
  double missed_mover_ratio = 0.0;  ///< Mover-cycles missed post-death.
  std::size_t orphans = 0;
  std::size_t takeovers = 0;
  std::uint64_t recovered = 0;  ///< Orphans retired from the queue.
};

core::FleetConfig fleet_config(core::TakeoverPolicy takeover) {
  core::FleetConfig cfg;
  cfg.controller.phase2_duration = util::msec(500);
  // Keep host compute off the simulated timeline so every policy sees the
  // identical fault-free prefix and the same death time.
  cfg.controller.charge_compute_time = false;
  // Independent sessions: every reader re-inventories its zone each cycle,
  // so the coverage gap is purely geometric — who can energize the
  // orphaned tags — not confounded by shared-flag decay.
  cfg.policy = core::SessionPolicy::kIndependent;
  cfg.takeover = takeover;
  cfg.resilience.suspect_after_failures = 1;
  cfg.resilience.down_after_failures = 2;
  return cfg;
}

/// Fault-free probe: the sim time at which cycle kDeathCycle begins — the
/// instant the outage is anchored to in the measured runs.
util::SimTime probe_death_time(std::uint64_t seed) {
  Strip strip(seed, util::SimTime{0});
  core::FleetController fleet(fleet_config(core::TakeoverPolicy::kNone),
                              strip.specs, &strip.world);
  fleet.run_cycles(kDeathCycle);
  // 1 ms *before* the cycle boundary: reader 0 runs first in the TDM
  // rotation, so the outage covers its entire next slice (anchoring just
  // after the boundary would let its Phase I — whose fault check happens
  // at execute start — slip through and re-sight every orphan).
  return strip.injectors[0]->now() - util::msec(1);
}

Outcome run_policy(core::TakeoverPolicy takeover, util::SimTime death_at,
                   std::uint64_t seed) {
  Strip strip(seed, death_at);
  core::FleetController fleet(fleet_config(takeover), strip.specs,
                              &strip.world);
  auto sink = std::make_shared<GapSink>();
  fleet.pipeline().add_sink(sink);

  Outcome out;
  std::size_t last_cycle = 0;
  for (const core::FleetCycleReport& r : fleet.run_cycles(kCycles)) {
    out.takeovers += r.takeovers.size();
    last_cycle = r.cycle_index;
  }
  const util::SimTime run_end = strip.injectors[0]->now();
  out.recovered = fleet.recover_stats().recovered;

  // Orphans: every EPC whose last pre-death delivery came from reader 0.
  // Gap = death -> first post-death delivery (run end when never again).
  double gap_total = 0.0;
  for (const auto& [epc, deliveries] : sink->deliveries) {
    bool owned_by_dead = false;
    util::SimTime first_after{0};
    bool seen_after = false;
    for (const GapSink::Delivery& d : deliveries) {
      if (d.at < death_at) {
        owned_by_dead = d.source == 0;
      } else if (!seen_after) {
        first_after = d.at;
        seen_after = true;
      }
    }
    if (!owned_by_dead) continue;
    ++out.orphans;
    gap_total +=
        util::to_seconds((seen_after ? first_after : run_end) - death_at);
  }
  if (out.orphans > 0) {
    gap_total /= static_cast<double>(out.orphans);
  }
  out.coverage_gap_s = gap_total;

  // Movers: fraction of post-death fleet cycles with no delivery at all.
  std::size_t death_cycle = kCycles;
  for (const auto& [epc, deliveries] : sink->deliveries) {
    for (const GapSink::Delivery& d : deliveries) {
      if (d.at >= death_at) death_cycle = std::min(death_cycle, d.cycle);
    }
  }
  const std::size_t post_cycles = last_cycle + 1 - death_cycle;
  if (post_cycles > 0) {
    std::size_t missed = 0;
    for (std::size_t i = 0; i < kMovers; ++i) {
      std::vector<char> seen(post_cycles, 0);
      const auto it =
          sink->deliveries.find(util::Epc::from_serial(kMoverSerialBase + i));
      if (it != sink->deliveries.end()) {
        for (const GapSink::Delivery& d : it->second) {
          if (d.cycle >= death_cycle) seen[d.cycle - death_cycle] = 1;
        }
      }
      missed += static_cast<std::size_t>(
          std::count(seen.begin(), seen.end(), 0));
    }
    out.missed_mover_ratio = static_cast<double>(missed) /
                             static_cast<double>(post_cycles * kMovers);
  }
  return out;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 6301;
  const util::SimTime death_at = probe_death_time(kSeed);
  std::printf("fleet failover — coverage gap vs takeover policy\n"
              "(%zu readers at %.0f m pitch / %.1f m radius, %zu statics "
              "per zone, %zu movers; reader 0 dies at %.2f s, %zu cycles)\n\n",
              kReaders, kPitch, kRadius, kTagsPerZone, kMovers,
              util::to_seconds(death_at), kCycles);

  const struct {
    core::TakeoverPolicy policy;
    const char* label;
  } kPolicies[] = {{core::TakeoverPolicy::kNone, "none"},
                   {core::TakeoverPolicy::kStaticNeighbor, "static"},
                   {core::TakeoverPolicy::kAdaptive, "adaptive"}};

  bench::BenchReport report("fleet_failover", kSeed);
  std::printf("%-9s  %12s  %13s  %8s  %10s  %10s\n", "policy", "gap (s)",
              "missed mover", "orphans", "takeovers", "recovered");
  std::vector<Outcome> outcomes;
  for (const auto& p : kPolicies) {
    const Outcome o = run_policy(p.policy, death_at, kSeed);
    outcomes.push_back(o);
    std::printf("%-9s  %12.2f  %12.1f%%  %8zu  %10zu  %10llu\n", p.label,
                o.coverage_gap_s, o.missed_mover_ratio * 100.0, o.orphans,
                o.takeovers, static_cast<unsigned long long>(o.recovered));
    const std::string suffix = std::string("_") + p.label;
    report.add("coverage_gap_s" + suffix, o.coverage_gap_s, "s");
    report.add("missed_mover_ratio" + suffix, o.missed_mover_ratio, "ratio");
    report.add("recovered" + suffix, static_cast<double>(o.recovered),
               "count");
  }

  const double gap_none = outcomes[0].coverage_gap_s;
  const double gap_adaptive = outcomes[2].coverage_gap_s;
  const double reduction =
      gap_adaptive > 0.0 ? gap_none / gap_adaptive : 0.0;
  report.add("coverage_gap_reduction", reduction, "ratio");
  std::printf("\ncoverage_gap_reduction (none / adaptive): %.2fx\n",
              reduction);
  std::printf("wrote %s\n", report.write().c_str());

  // CI gate: takeover must actually help.  Adaptive re-cover strictly
  // below the no-takeover baseline, and by at least 2x.
  if (!(gap_adaptive < gap_none) || reduction < 2.0) {
    std::fprintf(stderr,
                 "FAIL: adaptive takeover gap %.2f s not 2x below "
                 "no-takeover %.2f s\n",
                 gap_adaptive, gap_none);
    return 1;
  }
  return 0;
}
