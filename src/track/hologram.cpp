#include "track/hologram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/circular.hpp"
#include "util/stats.hpp"

namespace tagwatch::track {

HologramTracker::HologramTracker(TrackerConfig config,
                                 std::vector<rf::Antenna> antennas,
                                 rf::ChannelPlan plan)
    : config_(config), antennas_(std::move(antennas)), plan_(std::move(plan)) {
  if (antennas_.size() < 2) {
    throw std::invalid_argument("HologramTracker: need >= 2 antennas");
  }
  if (config_.coarse_step_m <= 0.0) {
    throw std::invalid_argument("HologramTracker: bad grid step");
  }
}

const rf::Antenna& HologramTracker::antenna_by_id(rf::AntennaId id) const {
  for (const auto& a : antennas_) {
    if (a.id == id) return a;
  }
  throw std::invalid_argument("HologramTracker: unknown antenna id");
}

std::vector<HologramTracker::Pair> HologramTracker::make_pairs(
    const std::vector<const rf::TagReading*>& window) const {
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < window.size(); ++i) {
    for (std::size_t j = i + 1; j < window.size(); ++j) {
      const rf::TagReading* a = window[i];
      const rf::TagReading* b = window[j];
      if (a->antenna == b->antenna) continue;      // need spatial diversity
      if (a->channel != b->channel) continue;      // phases only compare per λ
      const auto dt = (a->timestamp > b->timestamp)
                          ? a->timestamp - b->timestamp
                          : b->timestamp - a->timestamp;
      if (dt > config_.pair_max_dt) continue;
      pairs.push_back({a, b, plan_.wavelength_m(a->channel)});
    }
  }
  return pairs;
}

double HologramTracker::score(const std::vector<Pair>& pairs, util::Vec3 p,
                              util::Vec3 velocity, util::SimTime t_ref) const {
  double sum_sq = 0.0;
  for (const auto& pair : pairs) {
    const util::Vec3 pa =
        p + velocity * util::to_seconds(pair.a->timestamp - t_ref);
    const util::Vec3 pb =
        p + velocity * util::to_seconds(pair.b->timestamp - t_ref);
    const double da =
        util::distance(antenna_by_id(pair.a->antenna).position, pa);
    const double db =
        util::distance(antenna_by_id(pair.b->antenna).position, pb);
    // Physical convention: the received backscatter phase is −4πd/λ (+ tag
    // offset), so the differential is −4π(da−db)/λ.  Getting the sign wrong
    // tracks the mirror image of the trajectory.
    const double predicted =
        util::wrap_to_2pi(-4.0 * std::numbers::pi * (da - db) /
                          pair.wavelength_m);
    const double measured =
        util::wrap_to_2pi(pair.a->phase_rad - pair.b->phase_rad);
    const double r = util::circular_distance(measured, predicted);
    sum_sq += r * r;
  }
  return sum_sq;
}

std::optional<TrackEstimate> HologramTracker::locate(
    std::vector<const rf::TagReading*> window,
    std::optional<util::Vec3> around, std::optional<double> radius_m,
    util::Vec3 velocity) const {
  const std::vector<Pair> pairs = make_pairs(window);
  if (pairs.size() < config_.min_pairs) return std::nullopt;

  util::SimTime t_min = window.front()->timestamp;
  util::SimTime t_max = window.front()->timestamp;
  for (const auto* r : window) {
    t_min = std::min(t_min, r->timestamp);
    t_max = std::max(t_max, r->timestamp);
  }
  const util::SimTime t_ref = t_min + (t_max - t_min) / 2;

  // Multi-resolution grid search, optionally confined near `around`.
  // Clamp the coarse step below a quarter fringe so no lobe is skipped.
  double lo_x = config_.min_x, hi_x = config_.max_x;
  double lo_y = config_.min_y, hi_y = config_.max_y;
  double step = std::min(config_.coarse_step_m, 0.012);
  if (around) {
    const double radius = radius_m.value_or(config_.continuity_radius_m);
    lo_x = std::max(lo_x, around->x - radius);
    hi_x = std::min(hi_x, around->x + radius);
    lo_y = std::max(lo_y, around->y - radius);
    hi_y = std::min(hi_y, around->y + radius);
    step = std::min(step, std::max(radius / 6.0, 1e-3));
  }

  // Velocity hypotheses: the caller's estimate plus, when enabled, a polar
  // sweep of headings × speeds (DAH-style motion augmentation).
  std::vector<util::Vec3> velocities{velocity};
  if (config_.search_velocity && config_.max_speed_mps > 0.0) {
    velocities.push_back({0.0, 0.0, 0.0});
    for (int dir = 0; dir < 8; ++dir) {
      const double heading = static_cast<double>(dir) * util::kTwoPi / 8.0;
      for (const double frac : {0.35, 0.7, 1.0}) {
        const double speed = frac * config_.max_speed_mps;
        velocities.push_back(
            {speed * std::cos(heading), speed * std::sin(heading), 0.0});
      }
    }
  }

  // Coarse scan per hypothesis, keeping the best few spatially distinct
  // cells.  The score surface has side lobes whose coarse-sampled score can
  // undercut the coarse-sampled true peak (a grid cell lands millimeters
  // off the true minimum and pays a fringe-scale residual), so refining
  // only the single best cell locks onto lobes; refining the top seeds and
  // keeping the best *refined* score is robust.
  struct Seed {
    util::Vec3 p;
    double s;
  };
  // Joint (position, velocity) hypotheses are underdetermined from a short
  // window alone (a heading error masquerades as a position shift with
  // near-zero phase residual), so a continuity prior anchored on `around`
  // breaks the tie: deviating by the full search radius costs as much as a
  // 0.3 rad residual on every pair.
  const double prior_radius =
      around ? radius_m.value_or(config_.continuity_radius_m) : 0.0;
  const auto penalized = [&](util::Vec3 p, util::Vec3 vel) {
    double s = score(pairs, p, vel, t_ref);
    if (around && prior_radius > 0.0) {
      const double d = util::distance(p, *around) / prior_radius;
      s += static_cast<double>(pairs.size()) *
           config_.continuity_prior_weight * d * d;
    }
    return s;
  };

  util::Vec3 best{0.0, 0.0, config_.plane_z};
  util::Vec3 best_vel{};
  double best_score = std::numeric_limits<double>::infinity();
  for (const util::Vec3 vel : velocities) {
    std::vector<Seed> cells;
    for (double x = lo_x; x <= hi_x + 1e-9; x += step) {
      for (double y = lo_y; y <= hi_y + 1e-9; y += step) {
        const util::Vec3 p{x, y, config_.plane_z};
        cells.push_back({p, penalized(p, vel)});
      }
    }
    std::sort(cells.begin(), cells.end(),
              [](const Seed& a, const Seed& b) { return a.s < b.s; });
    std::vector<Seed> seeds;
    for (const auto& cell : cells) {
      if (seeds.size() >= 8) break;
      const bool near_existing =
          std::any_of(seeds.begin(), seeds.end(), [&](const Seed& s) {
            return util::distance(s.p, cell.p) < 2.0 * step;
          });
      if (!near_existing) seeds.push_back(cell);
    }

    for (const auto& seed : seeds) {
      util::Vec3 local_best = seed.p;
      double local_score = seed.s;
      double zoom = step;
      for (std::size_t level = 0; level < config_.refine_levels + 1; ++level) {
        for (double x = local_best.x - zoom; x <= local_best.x + zoom + 1e-9;
             x += zoom / 4.0) {
          for (double y = local_best.y - zoom; y <= local_best.y + zoom + 1e-9;
               y += zoom / 4.0) {
            const util::Vec3 p{x, y, config_.plane_z};
            const double s = penalized(p, vel);
            if (s < local_score) {
              local_score = s;
              local_best = p;
            }
          }
        }
        zoom /= 4.0;
      }
      if (local_score < best_score) {
        best_score = local_score;
        best = local_best;
        best_vel = vel;
      }
    }
  }

  TrackEstimate est;
  est.time = t_ref;
  est.position = best;
  // Report the raw (prior-free) RMS residual of the chosen solution.
  est.residual_rad = std::sqrt(score(pairs, best, best_vel, t_ref) /
                               static_cast<double>(pairs.size()));
  est.pair_count = pairs.size();
  return est;
}

std::vector<TrackEstimate> HologramTracker::track(
    const std::vector<rf::TagReading>& readings) const {
  std::vector<TrackEstimate> out;
  if (readings.empty()) return out;

  std::vector<const rf::TagReading*> sorted;
  sorted.reserve(readings.size());
  for (const auto& r : readings) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const rf::TagReading* a, const rf::TagReading* b) {
              return a->timestamp < b->timestamp;
            });

  const util::SimTime t_begin = sorted.front()->timestamp;
  const util::SimTime t_end = sorted.back()->timestamp;
  std::size_t lo = 0;
  std::optional<util::Vec3> previous = config_.initial_hint;
  util::SimTime previous_time = t_begin;
  util::Vec3 velocity{};  // estimated from consecutive fixes
  for (util::SimTime t = t_begin; t + config_.window <= t_end + config_.stride;
       t += config_.stride) {
    while (lo < sorted.size() && sorted[lo]->timestamp < t) ++lo;
    std::vector<const rf::TagReading*> window;
    for (std::size_t i = lo;
         i < sorted.size() && sorted[i]->timestamp < t + config_.window; ++i) {
      window.push_back(sorted[i]);
    }
    if (window.size() < 2) continue;
    // The search box grows with the time since the last fix: a low reading
    // rate widens the box and lets grating lobes back in — the mechanism
    // by which accuracy decays when the IRR drops (Fig. 1).
    const double elapsed_s =
        util::to_seconds((t + config_.window / 2) - previous_time);
    const double radius = std::max(config_.continuity_radius_m,
                                   config_.max_speed_mps * elapsed_s);
    // Anchor the prior on the motion-predicted position, not the stale fix:
    // a trailing anchor biases the prior toward grating lobes behind the tag.
    std::optional<util::Vec3> anchor = previous;
    if (anchor) *anchor = *anchor + velocity * elapsed_s;
    if (auto est = locate(std::move(window), anchor, radius, velocity)) {
      // Kinematic outlier rejection: a fix implying super-max speed is a
      // grating-lobe jump, not motion.  Drop it and let the search radius
      // grow until the track reacquires.
      if (previous && est->time > previous_time) {
        const double implied_speed =
            util::distance(est->position, *previous) /
            std::max(util::to_seconds(est->time - previous_time), 1e-3);
        if (implied_speed > 1.3 * config_.max_speed_mps) continue;
      }
      if (previous && est->time > previous_time) {
        // Velocity from consecutive fixes, exponentially smoothed (single
        // differences of overlapping windows are noisy) and clamped to the
        // speed bound, for motion compensation of the next estimate.
        const double dt = util::to_seconds(est->time - previous_time);
        util::Vec3 v = (est->position - *previous) * (1.0 / dt);
        const double speed = v.norm();
        if (speed > config_.max_speed_mps) {
          v = v * (config_.max_speed_mps / speed);
        }
        velocity = v;
      }
      out.push_back(*est);
      previous = est->position;  // motion continuity anchors the next window
      previous_time = est->time;
    }
  }
  return out;
}

TrackingAccuracy tracking_accuracy(const std::vector<TrackEstimate>& estimates,
                                   const sim::MotionModel& truth) {
  util::RunningStats stats;
  for (const auto& est : estimates) {
    stats.add(util::distance(est.position, truth.position(est.time)));
  }
  return {stats.mean(), stats.stddev(), stats.count()};
}

}  // namespace tagwatch::track
