// Phase-hologram tag localization (application substrate for Fig. 1/§7.3).
//
// Stands in for the paper's Differential Augmented Hologram tracker [30]:
// within a sliding time window, readings of one tag from different antennas
// on the same frequency channel are paired; each pair contributes a
// differential phase  Δθ = θ_a − θ_b ≡ 4π(d_a − d_b)/λ (mod 2π), which is
// independent of the tag's unknown backscatter phase offset.  A
// multi-resolution grid search finds the position whose predicted
// differentials best match the measurements.  The estimator's accuracy
// degrades as the reading rate falls — the dependence Fig. 1 demonstrates.
#pragma once

#include <optional>
#include <vector>

#include "rf/channel_plan.hpp"
#include "rf/channel.hpp"
#include "rf/measurement.hpp"
#include "sim/motion.hpp"
#include "util/geometry.hpp"

namespace tagwatch::track {

/// Tracker tuning.
struct TrackerConfig {
  /// Search region (axis-aligned, in the z = `plane_z` plane).
  double min_x = -1.0;
  double max_x = 1.0;
  double min_y = -1.0;
  double max_y = 1.0;
  double plane_z = 0.0;
  /// Coarse grid step in meters; two refinement passes shrink it 5× each.
  /// Internally clamped to a quarter fringe (~1.2 cm at UHF): the score
  /// surface oscillates on the fringe scale, so coarser sampling can land
  /// in a side lobe and refine into it.
  double coarse_step_m = 0.012;
  std::size_t refine_levels = 2;
  /// Window of readings fused into one position estimate.  Point fusion is
  /// only phase-coherent while the tag moves ≪ λ/4 within the window, so
  /// windows must be short — which is precisely why tracking quality hinges
  /// on a high reading rate (Fig. 1).
  util::SimDuration window = util::msec(100);
  /// Stride between successive estimates.
  util::SimDuration stride = util::msec(50);
  /// Maximum time separation of a cross-antenna reading pair; bounds the
  /// motion-induced model error of a pair.
  util::SimDuration pair_max_dt = util::msec(60);
  /// Minimum number of differential pairs required to emit an estimate.
  std::size_t min_pairs = 2;
  /// Known starting position.  Narrowband differential phase has grating
  /// lobes (positions ~λ/2 of path difference apart score identically), so
  /// like the paper's §7.3 ("we fix the initial position at a known point")
  /// the tracker anchors the search and then exploits motion continuity.
  std::optional<util::Vec3> initial_hint;
  /// Minimum half-width of the local search box around the previous
  /// estimate; grows with elapsed time × max_speed when windows are
  /// skipped (low reading rate), which is how tracking degrades gracefully
  /// instead of snapping to a grating lobe.
  double continuity_radius_m = 0.15;
  /// Upper bound on how fast the tracked object can move.
  double max_speed_mps = 1.0;
  /// Strength of the continuity prior: deviating from the anchored
  /// position by the full search radius costs `weight` rad² of residual on
  /// every pair.  Assumes continuity-grade anchors (within a few cm, as
  /// track() maintains); weaken it for coarse one-shot anchors.
  double continuity_prior_weight = 0.25;
  /// Jointly hypothesize the within-window velocity (8 headings × 3 speeds
  /// up to max_speed_mps) in addition to the caller-supplied estimate —
  /// the "augmented" dimension of the DAH tracker.  Without it, the
  /// motion-induced phase error of the first windows (no velocity estimate
  /// yet) routinely exceeds a fringe and tracking never locks.
  bool search_velocity = true;
};

/// One position estimate.
struct TrackEstimate {
  util::SimTime time{0};        ///< Window center.
  util::Vec3 position;          ///< Estimated tag position.
  double residual_rad = 0.0;    ///< RMS differential-phase residual.
  std::size_t pair_count = 0;   ///< Differential pairs supporting it.
};

/// Sliding-window differential-phase grid localizer.
class HologramTracker {
 public:
  HologramTracker(TrackerConfig config, std::vector<rf::Antenna> antennas,
                  rf::ChannelPlan plan);

  /// Estimates the trajectory of one tag from its time-ordered readings.
  /// Windows with too few cross-antenna pairs produce no estimate.
  std::vector<TrackEstimate> track(
      const std::vector<rf::TagReading>& readings) const;

  /// Single-window estimate.  If `around` is given, the search is confined
  /// to a box of half-width `radius_m` (default: continuity_radius_m)
  /// about it (alias suppression); otherwise the full region is scanned.
  /// `velocity` augments the hologram: each reading is evaluated at
  /// p + velocity·(t − t_mid), compensating intra-window motion (the
  /// "augmented" idea of the paper's DAH tracker [30]).
  std::optional<TrackEstimate> locate(
      std::vector<const rf::TagReading*> window,
      std::optional<util::Vec3> around = std::nullopt,
      std::optional<double> radius_m = std::nullopt,
      util::Vec3 velocity = {}) const;

 private:
  struct Pair {
    const rf::TagReading* a;
    const rf::TagReading* b;
    double wavelength_m;
  };
  std::vector<Pair> make_pairs(
      const std::vector<const rf::TagReading*>& window) const;
  double score(const std::vector<Pair>& pairs, util::Vec3 p,
               util::Vec3 velocity, util::SimTime t_ref) const;
  const rf::Antenna& antenna_by_id(rf::AntennaId id) const;

  TrackerConfig config_;
  std::vector<rf::Antenna> antennas_;
  rf::ChannelPlan plan_;
};

/// Mean/stddev Euclidean error of estimates against ground truth.
struct TrackingAccuracy {
  double mean_error_m = 0.0;
  double stddev_error_m = 0.0;
  std::size_t estimates = 0;
};
TrackingAccuracy tracking_accuracy(const std::vector<TrackEstimate>& estimates,
                                   const sim::MotionModel& truth);

}  // namespace tagwatch::track
