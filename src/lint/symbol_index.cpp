#include "lint/symbol_index.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <string_view>

namespace tagwatch::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

const std::set<std::string_view>& keywords() {
  static const std::set<std::string_view> kw = {
      "alignas",      "alignof",       "and",        "and_eq",
      "asm",          "auto",          "bitand",     "bitor",
      "bool",         "break",         "case",       "catch",
      "char",         "char16_t",      "char32_t",   "char8_t",
      "class",        "co_await",      "co_return",  "co_yield",
      "compl",        "concept",       "const",      "const_cast",
      "consteval",    "constexpr",     "constinit",  "continue",
      "decltype",     "default",       "delete",     "do",
      "double",       "dynamic_cast",  "else",       "enum",
      "explicit",     "export",        "extern",     "false",
      "final",        "float",         "for",        "friend",
      "goto",         "if",            "inline",     "int",
      "long",         "mutable",       "namespace",  "new",
      "noexcept",     "not",           "not_eq",     "nullptr",
      "operator",     "or",            "or_eq",      "override",
      "private",      "protected",     "public",     "register",
      "reinterpret_cast", "requires",  "return",     "short",
      "signed",       "sizeof",        "static",     "static_assert",
      "static_cast",  "struct",        "switch",     "template",
      "this",         "thread_local",  "throw",      "true",
      "try",          "typedef",       "typeid",     "typename",
      "union",        "unsigned",      "using",      "virtual",
      "void",         "volatile",      "wchar_t",    "while",
      "xor",          "xor_eq"};
  return kw;
}

bool is_keyword(std::string_view s) { return keywords().count(s) > 0; }

struct Token {
  std::size_t pos = 0;
  std::string text;
  bool ident = false;
};

/// Tokenizes scrubbed source.  Preprocessor lines are dropped entirely
/// (macro bodies would otherwise masquerade as definitions); the only
/// multi-character punctuators kept whole are `::` and `->`, the two the
/// scanner keys off.
std::vector<Token> lex(const std::string& s) {
  std::vector<Token> tokens;
  bool line_start = true;
  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (c == '\n') line_start = true;
      ++i;
      continue;
    }
    if (c == '#' && line_start) {
      // Skip the directive, honoring backslash continuations.
      while (i < s.size() && s[i] != '\n') {
        if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == '\n') ++i;
        ++i;
      }
      continue;
    }
    line_start = false;
    if (is_ident_start(c)) {
      std::size_t end = i;
      while (end < s.size() && is_ident_char(s[end])) ++end;
      tokens.push_back({i, s.substr(i, end - i), true});
      i = end;
      continue;
    }
    if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
      tokens.push_back({i, "::", false});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
      tokens.push_back({i, "->", false});
      i += 2;
      continue;
    }
    tokens.push_back({i, std::string(1, c), false});
    ++i;
  }
  return tokens;
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Token index just *of* the close matching the open at `at`; kNpos when
/// unbalanced.
std::size_t match_tokens(const std::vector<Token>& t, std::size_t at,
                         std::string_view open, std::string_view close) {
  std::size_t depth = 0;
  for (std::size_t i = at; i < t.size(); ++i) {
    if (t[i].text == open) {
      ++depth;
    } else if (t[i].text == close) {
      if (--depth == 0) return i;
    }
  }
  return kNpos;
}

/// Skips a balanced template-argument block starting at a `<` token;
/// returns the index after the matching `>`, or kNpos if it does not
/// look like one (statement punctuation before closure).
std::size_t skip_angles(const std::vector<Token>& t, std::size_t at) {
  std::size_t depth = 0;
  for (std::size_t i = at; i < t.size(); ++i) {
    const std::string& x = t[i].text;
    if (x == "<") {
      ++depth;
    } else if (x == ">") {
      if (--depth == 0) return i + 1;
    } else if (x == ";" || x == "{" || x == "}") {
      return kNpos;
    }
  }
  return kNpos;
}

/// Starting just past a parameter list's `)`, decides whether a function
/// *definition* follows: skips cv/ref/noexcept qualifiers, a trailing
/// return type, and a constructor initializer list, and returns the index
/// of the body's `{` — or kNpos when this is a declaration/expression.
std::size_t find_body_brace(const std::vector<Token>& t, std::size_t m) {
  while (m < t.size()) {
    const std::string& x = t[m].text;
    if (x == "const" || x == "override" || x == "final" || x == "mutable" ||
        x == "try" || x == "&" || x == "&&") {
      ++m;
      continue;
    }
    if (x == "noexcept" || x == "throw") {
      ++m;
      if (m < t.size() && t[m].text == "(") {
        const std::size_t close = match_tokens(t, m, "(", ")");
        if (close == kNpos) return kNpos;
        m = close + 1;
      }
      continue;
    }
    if (x == "->") {
      // Trailing return type: scan up to the body/terminator.
      ++m;
      while (m < t.size() && t[m].text != "{" && t[m].text != ";" &&
             t[m].text != ":") {
        ++m;
      }
      continue;
    }
    if (x == ":") {
      // Constructor initializer list: `name(args)` or `name{args}` items
      // separated by commas, then the body.
      ++m;
      for (;;) {
        if (m >= t.size() || !t[m].ident) return kNpos;
        ++m;
        while (m + 1 < t.size() && t[m].text == "::" && t[m + 1].ident) {
          m += 2;
        }
        if (m < t.size() && t[m].text == "<") {
          m = skip_angles(t, m);
          if (m == kNpos) return kNpos;
        }
        if (m >= t.size()) return kNpos;
        if (t[m].text == "(") {
          const std::size_t close = match_tokens(t, m, "(", ")");
          if (close == kNpos) return kNpos;
          m = close + 1;
        } else if (t[m].text == "{") {
          const std::size_t close = match_tokens(t, m, "{", "}");
          if (close == kNpos) return kNpos;
          m = close + 1;
        } else {
          return kNpos;
        }
        while (m < t.size() && t[m].text == ".") ++m;  // Pack expansion.
        if (m < t.size() && t[m].text == ",") {
          ++m;
          continue;
        }
        break;
      }
      if (m < t.size() && t[m].text == "{") return m;
      return kNpos;
    }
    if (x == "{") return m;
    return kNpos;
  }
  return kNpos;
}

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind;
  std::string name;           ///< Namespace/class name ("" if anonymous).
  std::size_t def_index = 0;  ///< Valid for kFunction.
};

/// Definitions are only recognized at namespace/class/global scope; a
/// `name(args) {` inside a function body is a declaration-with-ctor or a
/// control construct, never a definition we want.
bool at_decl_scope(const std::vector<Scope>& stack) {
  if (stack.empty()) return true;
  const Scope::Kind kind = stack.back().kind;
  return kind == Scope::Kind::kNamespace || kind == Scope::Kind::kClass;
}

std::string scope_prefix(const std::vector<Scope>& stack) {
  std::string prefix;
  for (const Scope& s : stack) {
    if (s.kind != Scope::Kind::kNamespace && s.kind != Scope::Kind::kClass) {
      continue;
    }
    if (s.name.empty()) continue;
    if (!prefix.empty()) prefix += "::";
    prefix += s.name;
  }
  return prefix;
}

std::size_t line_at(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(
                                               std::min(pos, text.size())),
                            '\n'));
}

/// One file's pass: definitions plus the token stream (returned so the
/// call-site pass does not re-lex).
void index_file(const SourceFile& file, std::size_t file_index,
                const std::string& scrubbed, SymbolIndex& out,
                std::set<std::size_t>& def_name_positions) {
  const std::vector<Token> tokens = lex(scrubbed);
  std::vector<Scope> stack;
  std::size_t i = 0;
  while (i < tokens.size()) {
    const Token& t = tokens[i];
    if (t.ident) {
      if (t.text == "namespace") {
        std::size_t j = i + 1;
        std::string name;
        if (j < tokens.size() && tokens[j].ident &&
            !is_keyword(tokens[j].text)) {
          name = tokens[j].text;
          ++j;
          while (j + 1 < tokens.size() && tokens[j].text == "::" &&
                 tokens[j + 1].ident) {
            name += "::" + tokens[j + 1].text;
            j += 2;
          }
        }
        if (j < tokens.size() && tokens[j].text == "{") {
          stack.push_back({Scope::Kind::kNamespace, name, 0});
          i = j + 1;
        } else {
          i = j;  // Alias or using-directive; no scope.
        }
        continue;
      }
      if (t.text == "class" || t.text == "struct") {
        std::size_t j = i + 1;
        if (j >= tokens.size() || !tokens[j].ident ||
            is_keyword(tokens[j].text)) {
          ++i;  // Anonymous struct: its `{` becomes a plain block.
          continue;
        }
        const std::string name = tokens[j].text;
        ++j;
        // Scan past specialization args / base clause to `{` or `;`.
        while (j < tokens.size() && tokens[j].text != "{" &&
               tokens[j].text != ";") {
          ++j;
        }
        if (j < tokens.size() && tokens[j].text == "{") {
          stack.push_back({Scope::Kind::kClass, name, 0});
        }
        i = j + 1;
        continue;
      }
      if (t.text == "enum") {
        std::size_t j = i + 1;
        while (j < tokens.size() && tokens[j].text != "{" &&
               tokens[j].text != ";") {
          ++j;
        }
        if (j < tokens.size() && tokens[j].text == "{") {
          const std::size_t close = match_tokens(tokens, j, "{", "}");
          i = close == kNpos ? tokens.size() : close + 1;
        } else {
          i = j + 1;
        }
        continue;
      }
      if (!is_keyword(t.text)) {
        // Qualified-id chain: A::B::name.
        std::vector<std::string> parts = {t.text};
        std::size_t name_tok = i;
        std::size_t j = i + 1;
        while (j + 1 < tokens.size() && tokens[j].text == "::" &&
               tokens[j + 1].ident && !is_keyword(tokens[j + 1].text)) {
          parts.push_back(tokens[j + 1].text);
          name_tok = j + 1;
          j += 2;
        }
        if (j < tokens.size() && tokens[j].text == "(" &&
            at_decl_scope(stack)) {
          const std::size_t close = match_tokens(tokens, j, "(", ")");
          if (close != kNpos) {
            const std::size_t body = find_body_brace(tokens, close + 1);
            if (body != kNpos) {
              FunctionDef def;
              def.name = parts.back();
              std::string written;
              for (const std::string& p : parts) {
                if (!written.empty()) written += "::";
                written += p;
              }
              const std::string prefix = scope_prefix(stack);
              def.qualified =
                  prefix.empty() ? written : prefix + "::" + written;
              if (parts.size() >= 2) {
                def.owner = parts[parts.size() - 2];
              } else {
                for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                  if (it->kind == Scope::Kind::kClass) {
                    def.owner = it->name;
                    break;
                  }
                  if (it->kind == Scope::Kind::kFunction) break;
                }
              }
              def.file = file.path;
              def.file_index = file_index;
              def.line = line_at(scrubbed, tokens[name_tok].pos);
              def.body_begin = tokens[body].pos;
              def.body_end = scrubbed.size();  // Fixed up on `}`.
              def_name_positions.insert(tokens[name_tok].pos);
              stack.push_back(
                  {Scope::Kind::kFunction, "", out.functions.size()});
              out.functions.push_back(std::move(def));
              i = body + 1;
              continue;
            }
          }
          i = j;  // Expression/declaration; resume at '('.
          continue;
        }
        i = j;
        continue;
      }
      ++i;
      continue;
    }
    if (t.text == "{") {
      stack.push_back({Scope::Kind::kBlock, "", 0});
      ++i;
      continue;
    }
    if (t.text == "}") {
      if (!stack.empty()) {
        if (stack.back().kind == Scope::Kind::kFunction) {
          out.functions[stack.back().def_index].body_end = t.pos + 1;
        }
        stack.pop_back();
      }
      ++i;
      continue;
    }
    ++i;
  }
  // Call sites: rescan the token stream, attributing each `ident(` inside
  // a body to the innermost enclosing definition.
  out.calls_by_function.resize(out.functions.size());
  std::vector<std::size_t> defs_here;
  for (std::size_t f = 0; f < out.functions.size(); ++f) {
    if (out.functions[f].file_index == file_index) defs_here.push_back(f);
  }
  auto innermost = [&](std::size_t pos) -> std::size_t {
    std::size_t best = kNpos;
    for (const std::size_t f : defs_here) {
      const FunctionDef& d = out.functions[f];
      if (d.body_begin < pos && pos < d.body_end &&
          (best == kNpos ||
           d.body_begin > out.functions[best].body_begin)) {
        best = f;
      }
    }
    return best;
  };
  for (std::size_t k = 0; k < tokens.size(); ++k) {
    if (!tokens[k].ident || is_keyword(tokens[k].text)) continue;
    std::vector<std::string> parts = {tokens[k].text};
    std::size_t j = k + 1;
    while (j + 1 < tokens.size() && tokens[j].text == "::" &&
           tokens[j + 1].ident && !is_keyword(tokens[j + 1].text)) {
      parts.push_back(tokens[j + 1].text);
      j += 2;
    }
    const std::size_t chain_end = j - 1;  // Last token of the chain.
    if (j >= tokens.size() || tokens[j].text != "(") {
      k = chain_end;
      continue;
    }
    if (def_name_positions.count(tokens[chain_end].pos) > 0) {
      k = chain_end;
      continue;  // This is a definition header, not a call.
    }
    const std::size_t caller = innermost(tokens[k].pos);
    if (caller == kNpos) {
      k = chain_end;
      continue;
    }
    CallSite call;
    call.caller = caller;
    for (const std::string& p : parts) {
      if (!call.callee_text.empty()) call.callee_text += "::";
      call.callee_text += p;
    }
    call.callee_name = parts.back();
    call.member_access =
        k > 0 && (tokens[k - 1].text == "." || tokens[k - 1].text == "->");
    call.pos = tokens[k].pos;
    call.line = line_at(scrubbed, tokens[k].pos);
    out.calls_by_function[caller].push_back(out.calls.size());
    out.calls.push_back(std::move(call));
    k = chain_end;
  }
}

}  // namespace

SymbolIndex build_symbol_index(const std::vector<SourceFile>& files) {
  SymbolIndex index;
  index.scrubbed.reserve(files.size());
  for (const SourceFile& file : files) {
    index.scrubbed.push_back(scrub_comments_and_strings(file.content));
  }
  for (std::size_t f = 0; f < files.size(); ++f) {
    std::set<std::size_t> def_name_positions;
    index_file(files[f], f, index.scrubbed[f], index, def_name_positions);
  }
  index.calls_by_function.resize(index.functions.size());
  return index;
}

}  // namespace tagwatch::lint
