#include "lint/sarif.hpp"

#include <cstdio>

namespace tagwatch::lint {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"tagwatch_lint\",\n"
      "          \"informationUri\": "
      "\"docs/STATIC_ANALYSIS.md\",\n"
      "          \"rules\": [\n";
  const std::vector<RuleInfo>& rules = RuleEngine::rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + json_escape(rules[i].name) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(rules[i].summary) + "\"}}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const std::size_t line = f.line == 0 ? 1 : f.line;
    out += "        {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.file) + "\"}, \"region\": {\"startLine\": " +
           std::to_string(line) + "}}}]}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace tagwatch::lint
