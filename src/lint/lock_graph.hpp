// Lock-acquisition-order analysis over the call graph.
//
// The threading-discipline rule already forces every mutex acquisition
// through a RAII guard (std::lock_guard / std::scoped_lock /
// std::unique_lock), which makes acquisitions statically visible: this
// analysis records, per function, which mutexes its guards hold and
// what runs inside each guard's scope, then builds a mutex-order graph
//
//   A → B  ⇔  somewhere, B is acquired (directly or through a callee)
//             while A is held
//
// and reports two hazard classes under rule `lock-order`:
//
//   1. acquisition-order cycles (AB/BA and longer) — potential deadlock
//      the moment two threads interleave;
//   2. a lock held across `execute()` or pipeline sink dispatch
//      (`dispatch`/`dispatch_batch`/`end_cycle`/`on_reading`/
//      `on_cycle_end`) — the transport and sinks run arbitrary code and
//      re-enter accounting, so holding a mutex across them invites both
//      deadlock and priority inversion on the hot path.
//
// Mutex identity is the guard argument's token text, qualified by the
// enclosing class for bare member names (`FleetController::mutex_`), so
// two classes' `mutex_` members stay distinct.  `std::scoped_lock`'s
// own argument list is deadlock-free by construction and contributes no
// intra-set edges.  Guards constructed with `std::defer_lock` are not
// acquisitions.
#pragma once

#include <vector>

#include "lint/call_graph.hpp"
#include "lint/lint.hpp"
#include "lint/symbol_index.hpp"

namespace tagwatch::lint {

/// Appends `lock-order` findings over the indexed tree.
void check_lock_graph(const SymbolIndex& index, const CallGraph& graph,
                      std::vector<Finding>& out);

}  // namespace tagwatch::lint
