// Whole-tree C++ symbol index — the substrate for cross-file analyses.
//
// A heuristic, token-level parse (std-only, same zero-dependency
// constraint as the rest of src/lint): it discovers function and method
// *definitions* by scanning for `name(params) ... {` at namespace/class
// scope with a scope stack supplying qualification, and records every
// `identifier(` *call site* inside each body.  It is deliberately not a
// compiler:
//
//   - overloads share a name and are merged conservatively downstream;
//   - virtual calls resolve by method name to every same-named method
//     (an over-approximation — safe for taint, noisy only if names
//     collide);
//   - calls through function pointers / std::function are invisible
//     (an under-approximation, documented in docs/STATIC_ANALYSIS.md
//     and pinned by a limitations test);
//   - operator overloads and lambdas are not indexed as definitions
//     (calls inside a lambda body are attributed to the enclosing
//     function, which is the conservative choice for taint).
//
// That trade keeps the indexer a few hundred lines, fast enough to run
// on every file of the tree inside the CI lint budget (< 10 s), and
// wrong only in directions the downstream rules tolerate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace tagwatch::lint {

/// One function or method definition.
struct FunctionDef {
  std::string name;       ///< Simple name ("dispatch").
  /// Best-effort fully qualified name from the enclosing namespace/class
  /// scopes plus any written qualifiers
  /// ("tagwatch::core::ReadingPipeline::dispatch").
  std::string qualified;
  /// Enclosing class (written `Class::` prefix or the class scope the
  /// inline definition sits in); empty for free functions.  Used by the
  /// lock analysis to qualify member mutexes.
  std::string owner;
  std::string file;            ///< Repo-relative path.
  std::size_t file_index = 0;  ///< Into the files vector handed to build.
  std::size_t line = 0;        ///< 1-based, of the name token.
  std::size_t body_begin = 0;  ///< Offset of '{' in the scrubbed text.
  std::size_t body_end = 0;    ///< One past the matching '}'.
};

/// One call site inside a function body.
struct CallSite {
  std::size_t caller = 0;    ///< Index into SymbolIndex::functions.
  std::string callee_text;   ///< As written, qualifiers kept ("util::f").
  std::string callee_name;   ///< Last component ("f").
  bool member_access = false;  ///< obj.f(...) / ptr->f(...).
  std::size_t pos = 0;       ///< Offset in the scrubbed file.
  std::size_t line = 0;      ///< 1-based.
};

/// The index: definitions, call sites, and the scrubbed text each was
/// found in (comments and string/char literals blanked, offsets stable).
struct SymbolIndex {
  std::vector<FunctionDef> functions;
  std::vector<CallSite> calls;
  /// calls_by_function[f] = indices into `calls`, in body order.
  std::vector<std::vector<std::size_t>> calls_by_function;
  /// scrubbed[file_index] mirrors the input files vector.
  std::vector<std::string> scrubbed;
};

/// Builds the index over `files`.  Deterministic: output order follows
/// input order, then position.
SymbolIndex build_symbol_index(const std::vector<SourceFile>& files);

}  // namespace tagwatch::lint
