// The nondeterminism vocabulary, shared by two rules.
//
// Rule `determinism` (lint.cpp) flags these tokens when they appear
// *directly* in a journaled directory; rule `determinism-taint`
// (taint.cpp) marks any function body containing one as a taint *source*
// and chases it through the call graph, so a `src/util` wrapper can no
// longer launder a wall-clock read into `src/core`.  One table feeds
// both so the two rules can never drift apart on what "nondeterministic"
// means.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tagwatch::lint {

/// One use of a wall-clock / entropy / environment primitive.
struct NondetUse {
  std::size_t pos = 0;  ///< Byte offset into the scanned text.
  /// Human-readable description, e.g. "non-deterministic identifier
  /// 'system_clock'" or "call to 'getenv()'".  Rules append their own
  /// context ("in journaled path", the taint chain, ...).
  std::string message;
};

/// Scans `scrubbed` (comments and strings already blanked) for every
/// forbidden clock/entropy/environment use: the chrono clock and
/// random_device identifiers anywhere, the C library calls (`time(`,
/// `rand(`, `getenv(`, ...) in call position, and unseeded
/// std::mt19937/mt19937_64 declarations.  Results are ordered by
/// position.
std::vector<NondetUse> scan_nondeterminism(const std::string& scrubbed);

/// True when `path` (repo-relative, forward slashes) lies in a journaled
/// directory — the record→replay surface the determinism rules protect.
bool in_journaled_dir(std::string_view path);

/// True for the sanctioned wall-clock seam (src/util/wall_clock.*): the
/// one place allowed to read a host clock, reachable from journaled code
/// only through the injectable util::WallClock interface.
bool is_sanctioned_clock_seam(std::string_view path);

}  // namespace tagwatch::lint
