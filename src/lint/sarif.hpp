// SARIF 2.1.0 emission.
//
// CI uploads the linter's findings to GitHub code scanning
// (github/codeql-action/upload-sarif), which annotates them inline on
// the PR diff.  The writer is a few dozen lines of hand-rolled JSON —
// SARIF's required surface for a single-tool, single-run log is small
// and std-only beats a JSON dependency for a tool whose whole point is
// building in seconds on a bare runner.
#pragma once

#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace tagwatch::lint {

/// Serializes `findings` as a SARIF 2.1.0 log.  The driver block lists
/// every rule of `RuleEngine::rules()` (so code scanning can show rule
/// help even for clean runs); each result carries ruleId, level
/// "error", the message, and a repo-relative artifact location.
std::string to_sarif(const std::vector<Finding>& findings);

/// JSON string-body escaping (exposed for tests).
std::string json_escape(const std::string& text);

}  // namespace tagwatch::lint
