#include "lint/taint.hpp"

#include <cstddef>
#include <deque>
#include <set>
#include <string>
#include <utility>

#include "lint/nondet.hpp"

namespace tagwatch::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

}  // namespace

void check_determinism_taint(const SymbolIndex& index, const CallGraph& graph,
                             std::vector<Finding>& out) {
  const std::size_t n = index.functions.size();
  std::vector<bool> sanctioned(n, false);
  std::vector<bool> source(n, false);
  std::vector<std::string> source_reason(n);

  for (std::size_t f = 0; f < n; ++f) {
    const FunctionDef& def = index.functions[f];
    if (is_sanctioned_clock_seam(def.file)) {
      sanctioned[f] = true;
      continue;
    }
    const std::string& text = index.scrubbed[def.file_index];
    const std::string body =
        text.substr(def.body_begin, def.body_end - def.body_begin);
    const std::vector<NondetUse> uses = scan_nondeterminism(body);
    if (!uses.empty()) {
      source[f] = true;
      source_reason[f] =
          uses[0].message + " at " + def.file + ":" +
          std::to_string(line_of(text, def.body_begin + uses[0].pos));
    }
  }

  // Multi-source BFS, callee→caller: dist 0 at every source, each caller
  // records the callee it reaches taint through (shortest chain).
  std::vector<std::size_t> dist(n, kNpos);
  std::vector<std::size_t> next_hop(n, kNpos);
  std::deque<std::size_t> queue;
  for (std::size_t f = 0; f < n; ++f) {
    if (source[f]) {
      dist[f] = 0;
      queue.push_back(f);
    }
  }
  while (!queue.empty()) {
    const std::size_t f = queue.front();
    queue.pop_front();
    for (const CallEdge& in : graph.reverse[f]) {
      const std::size_t caller = in.callee;  // reverse: field holds caller.
      if (sanctioned[caller] || dist[caller] != kNpos) continue;
      dist[caller] = dist[f] + 1;
      next_hop[caller] = f;
      queue.push_back(caller);
    }
  }

  // A finding per call site where a journaled-directory function hands
  // control to a tainted function outside the journaled set — the
  // laundering edge.  Direct in-directory reads are rule `determinism`'s
  // findings, not ours.
  std::set<std::pair<std::size_t, std::size_t>> reported;  // (caller, pos)
  for (std::size_t f = 0; f < n; ++f) {
    const FunctionDef& def = index.functions[f];
    if (!in_journaled_dir(def.file) || source[f] || sanctioned[f]) continue;
    for (const CallEdge& edge : graph.edges[f]) {
      const std::size_t g = edge.callee;
      if (sanctioned[g] || (!source[g] && dist[g] == kNpos)) continue;
      if (in_journaled_dir(index.functions[g].file)) continue;
      const CallSite& call = index.calls[edge.call];
      if (!reported.insert({f, call.pos}).second) continue;
      std::string chain = def.qualified;
      std::size_t terminal = g;
      for (std::size_t cur = g; cur != kNpos; cur = next_hop[cur]) {
        chain += " -> " + index.functions[cur].qualified;
        terminal = cur;
        if (source[cur]) break;
      }
      out.push_back(
          {def.file, call.line, "determinism-taint",
           "journaled-path function '" + def.qualified +
               "' reaches a non-deterministic source via '" +
               index.functions[g].qualified + "': " + chain + " (" +
               source_reason[terminal] + ")"});
    }
  }
}

}  // namespace tagwatch::lint
