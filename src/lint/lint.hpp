// tagwatch_lint: project-invariant static analysis.
//
// clang-tidy and cppcheck see one translation unit at a time and speak
// generic C++; the invariants that make Tagwatch's record→replay guarantee
// hold are *project* rules — "no wall clock in a journaled path", "every
// journal record tag round-trips", "sinks never re-enter the transport" —
// that neither tool can express.  This engine checks them at the file/token
// level so they gate CI next to the industry checkers.
//
// Rules (see docs/STATIC_ANALYSIS.md for the catalog and rationale):
//
//   determinism            (D) no wall-clock/entropy/environment reads in
//                              journaled directories (src/core, src/sim,
//                              src/llrp, src/gen2, src/rf)
//   header-pragma-once     (H) every header starts with #pragma once
//   header-using-namespace (H) no `using namespace` in headers
//   include-order          (H) own header first, then <system>, then
//                              "project" includes
//   pipeline-reentrancy    (P) ReadingSink implementations never call
//                              execute() from on_reading/on_cycle_end
//   journal-discipline     (J) ReaderErrorKind enumerators and journal
//                              record tags are handled in serializer,
//                              parser, and health digest alike
//   threading-discipline   (T) raw std::thread/std::jthread/std::async and
//                              detach() only inside util::TaskPool's own
//                              files; mutexes held via RAII guards, never
//                              explicit lock()/unlock()
//   determinism-taint      (G) whole-tree call-graph rule: a journaled
//                              function must not *reach* a wall-clock/
//                              entropy read through any chain of calls
//                              (src/util wrappers can no longer launder
//                              nondeterminism in); the WallClock seam is
//                              the one sanctioned boundary
//   lock-order             (G) whole-tree call-graph rule: RAII mutex
//                              acquisitions must be cycle-free in
//                              acquisition order, and no lock may be
//                              held across execute()/sink dispatch
//
// The (G) rules run on a heuristic symbol index + call graph built over
// the full file set (symbol_index.hpp / call_graph.hpp); their model and
// blind spots are documented in docs/STATIC_ANALYSIS.md.
//
// Escape hatch: a finding on line N is suppressed when line N or N-1
// carries `// tagwatch-lint: allow(<rule>)` — meant to be rare, justified
// in an adjacent comment, and budgeted *per rule* (the self-check test
// pins an exact budget table; unlisted rules get zero).
//
// The engine is deliberately dependency-free (std only) so the lint tool
// builds in seconds on a bare CI runner, and it operates on in-memory
// SourceFile records so every rule is unit-testable on fixture strings.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace tagwatch::lint {

/// One file handed to the engine.  `path` is repo-relative with forward
/// slashes ("src/core/pipeline.cpp") — rules key off it.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation.
struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based.
  std::string rule;
  std::string message;
};

/// Everything one engine run produced.
struct LintReport {
  std::vector<Finding> findings;  ///< Unsuppressed violations.
  /// Findings silenced by a matching allow() annotation.
  std::size_t suppressions_used = 0;
  /// allow() annotations present in the scanned files (used or not) —
  /// the budget the self-check test enforces.
  std::size_t allow_annotations = 0;
  /// The same count broken down by rule name — the self-check test
  /// enforces a per-rule budget table, so adding a new rule can never
  /// silently dilute an existing rule's budget.
  std::map<std::string, std::size_t> allow_annotations_by_rule;
};

/// One rule's identity and one-line summary (shown by --list-rules and
/// embedded in the SARIF driver block).
struct RuleInfo {
  std::string name;
  std::string summary;
};

/// The rule engine.  Stateless between runs.
class RuleEngine {
 public:
  /// Runs every rule over `files` (per-file rules on each, cross-file
  /// and call-graph rules on the set).  Findings are ordered by
  /// (file, line, rule).
  LintReport run(const std::vector<SourceFile>& files) const;

  /// Stable rule-name list (what allow() accepts).
  static const std::vector<std::string>& rule_names();

  /// Rule catalog with one-line summaries, same order as rule_names().
  static const std::vector<RuleInfo>& rules();
};

// ------------------------------------------------------------ utilities
// Exposed for the engine's own tests; not a public API promise.

/// Blanks comment bodies (preserving newlines) so token rules do not fire
/// on prose.  String literals survive.
std::string scrub_comments(const std::string& text);

/// Blanks comments *and* string/char literal contents.
std::string scrub_comments_and_strings(const std::string& text);

/// 1-based line number of byte offset `pos` in `text`.
std::size_t line_of(const std::string& text, std::size_t pos);

}  // namespace tagwatch::lint
