// tagwatch_lint: project-invariant static analysis.
//
// clang-tidy and cppcheck see one translation unit at a time and speak
// generic C++; the invariants that make Tagwatch's record→replay guarantee
// hold are *project* rules — "no wall clock in a journaled path", "every
// journal record tag round-trips", "sinks never re-enter the transport" —
// that neither tool can express.  This engine checks them at the file/token
// level so they gate CI next to the industry checkers.
//
// Rules (see docs/STATIC_ANALYSIS.md for the catalog and rationale):
//
//   determinism            (D) no wall-clock/entropy/environment reads in
//                              journaled directories (src/core, src/sim,
//                              src/llrp, src/gen2, src/rf)
//   header-pragma-once     (H) every header starts with #pragma once
//   header-using-namespace (H) no `using namespace` in headers
//   include-order          (H) own header first, then <system>, then
//                              "project" includes
//   pipeline-reentrancy    (P) ReadingSink implementations never call
//                              execute() from on_reading/on_cycle_end
//   journal-discipline     (J) ReaderErrorKind enumerators and journal
//                              record tags are handled in serializer,
//                              parser, and health digest alike
//   threading-discipline   (T) raw std::thread/std::jthread/std::async and
//                              detach() only inside util::TaskPool's own
//                              files; mutexes held via RAII guards, never
//                              explicit lock()/unlock()
//
// Escape hatch: a finding on line N is suppressed when line N or N-1
// carries `// tagwatch-lint: allow(<rule>)` — meant to be rare, justified
// in an adjacent comment, and budgeted (the self-check test caps the tree
// at 3 annotations).
//
// The engine is deliberately dependency-free (std only) so the lint tool
// builds in seconds on a bare CI runner, and it operates on in-memory
// SourceFile records so every rule is unit-testable on fixture strings.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tagwatch::lint {

/// One file handed to the engine.  `path` is repo-relative with forward
/// slashes ("src/core/pipeline.cpp") — rules key off it.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation.
struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based.
  std::string rule;
  std::string message;
};

/// Everything one engine run produced.
struct LintReport {
  std::vector<Finding> findings;  ///< Unsuppressed violations.
  /// Findings silenced by a matching allow() annotation.
  std::size_t suppressions_used = 0;
  /// allow() annotations present in the scanned files (used or not) —
  /// the budget the self-check test enforces.
  std::size_t allow_annotations = 0;
};

/// The rule engine.  Stateless between runs.
class RuleEngine {
 public:
  /// Runs every rule over `files` (per-file rules on each, cross-file
  /// rules on the set).  Findings are ordered by (file, line, rule).
  LintReport run(const std::vector<SourceFile>& files) const;

  /// Stable rule-name list (what allow() accepts).
  static const std::vector<std::string>& rule_names();
};

// ------------------------------------------------------------ utilities
// Exposed for the engine's own tests; not a public API promise.

/// Blanks comment bodies (preserving newlines) so token rules do not fire
/// on prose.  String literals survive.
std::string scrub_comments(const std::string& text);

/// Blanks comments *and* string/char literal contents.
std::string scrub_comments_and_strings(const std::string& text);

/// 1-based line number of byte offset `pos` in `text`.
std::size_t line_of(const std::string& text, std::size_t pos);

}  // namespace tagwatch::lint
