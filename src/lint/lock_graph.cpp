#include "lint/lock_graph.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <string_view>

namespace tagwatch::lint {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_identifier(const std::string& text, std::string_view name,
                            std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// One RAII guard acquisition.
struct Acquisition {
  std::string mutex;          ///< Normalized identity.
  std::size_t pos = 0;        ///< Offset in the scrubbed file.
  std::size_t scope_end = 0;  ///< Offset of the enclosing block's '}'.
  std::size_t line = 0;
  std::size_t group = 0;  ///< Acquisitions of one scoped_lock share it.
};

/// Offset of the '}' closing the innermost block containing `pos`
/// within [begin, end) of `text`; `end` when unbalanced.
std::size_t scope_close(const std::string& text, std::size_t begin,
                        std::size_t end, std::size_t pos) {
  std::vector<std::size_t> stack;
  std::size_t target = kNpos;
  bool target_set = false;
  for (std::size_t i = begin; i < end; ++i) {
    if (!target_set && i >= pos) {
      target = stack.empty() ? kNpos : stack.back();
      target_set = true;
      if (target == kNpos) return end;
    }
    if (text[i] == '{') {
      stack.push_back(i);
    } else if (text[i] == '}') {
      if (!stack.empty()) {
        const std::size_t open = stack.back();
        stack.pop_back();
        if (target_set && open == target) return i;
      }
    }
  }
  return end;
}

/// Splits `args` ("a_, b_, std::adopt_lock") at top-level commas.
std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> parts;
  std::size_t depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if (c == '(' || c == '{' || c == '<' || c == '[') ++depth;
    if ((c == ')' || c == '}' || c == '>' || c == ']') && depth > 0) --depth;
    if (c == ',' && depth == 0) {
      parts.push_back(args.substr(start, i - start));
      start = i + 1;
    }
  }
  parts.push_back(args.substr(start));
  return parts;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

bool is_simple_identifier(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!is_ident_char(c)) return false;
  }
  return std::isdigit(static_cast<unsigned char>(s[0])) == 0;
}

/// Normalized mutex identity for a guard argument: whitespace stripped,
/// leading address-of removed, bare member identifiers qualified with
/// the enclosing class so `A::mutex_` and `B::mutex_` stay distinct.
std::string mutex_identity(const std::string& raw_arg,
                           const std::string& owner) {
  std::string arg;
  for (const char c : trim(raw_arg)) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) arg += c;
  }
  while (!arg.empty() && (arg[0] == '&' || arg[0] == '*')) arg.erase(0, 1);
  if (arg.rfind("this->", 0) == 0) arg.erase(0, 6);
  if (!owner.empty() && is_simple_identifier(arg)) {
    return owner + "::" + arg;
  }
  return arg;
}

constexpr std::string_view kGuardTypes[] = {"lock_guard", "scoped_lock",
                                            "unique_lock"};

/// Pipeline / transport entry points that must never run under a lock.
bool is_dispatch_name(const std::string& name) {
  return name == "execute" || name == "dispatch" ||
         name == "dispatch_batch" || name == "end_cycle" ||
         name == "on_reading" || name == "on_cycle_end";
}

/// Guard acquisitions in `f`'s body, positions absolute in the scrubbed
/// file.
std::vector<Acquisition> acquisitions_of(const SymbolIndex& index,
                                         std::size_t f) {
  const FunctionDef& def = index.functions[f];
  const std::string& text = index.scrubbed[def.file_index];
  std::vector<Acquisition> acquisitions;
  std::size_t group = 0;
  for (const std::string_view guard : kGuardTypes) {
    std::size_t pos = def.body_begin;
    while ((pos = find_identifier(text, guard, pos)) != std::string::npos &&
           pos < def.body_end) {
      const std::size_t at = pos;
      pos += guard.size();
      std::size_t cur = skip_ws(text, pos);
      if (cur < text.size() && text[cur] == '<') {
        // Template argument list; skip to the matching '>'.
        std::size_t depth = 0;
        while (cur < text.size() && cur < def.body_end) {
          if (text[cur] == '<') ++depth;
          if (text[cur] == '>' && --depth == 0) {
            ++cur;
            break;
          }
          if (text[cur] == ';' || text[cur] == '{') break;
          ++cur;
        }
        cur = skip_ws(text, cur);
      }
      // Variable name.
      if (cur >= text.size() || !is_ident_char(text[cur])) continue;
      while (cur < text.size() && is_ident_char(text[cur])) ++cur;
      cur = skip_ws(text, cur);
      if (cur >= text.size() || (text[cur] != '(' && text[cur] != '{')) {
        continue;
      }
      const char open = text[cur];
      const char close = open == '(' ? ')' : '}';
      std::size_t depth = 0;
      std::size_t arg_end = cur;
      while (arg_end < text.size()) {
        if (text[arg_end] == open) ++depth;
        if (text[arg_end] == close && --depth == 0) break;
        ++arg_end;
      }
      if (arg_end >= text.size()) continue;
      const std::string args = text.substr(cur + 1, arg_end - cur - 1);
      if (args.find("defer_lock") != std::string::npos) continue;
      ++group;
      for (const std::string& raw : split_args(args)) {
        const std::string a = trim(raw);
        if (a.empty() || a.find("adopt_lock") != std::string::npos ||
            a.find("try_to_lock") != std::string::npos) {
          continue;
        }
        Acquisition acq;
        acq.mutex = mutex_identity(a, def.owner);
        if (acq.mutex.empty()) continue;
        acq.pos = at;
        acq.scope_end =
            scope_close(text, def.body_begin, def.body_end, at);
        acq.line = line_of(text, at);
        acq.group = group;
        acquisitions.push_back(std::move(acq));
      }
    }
  }
  std::sort(acquisitions.begin(), acquisitions.end(),
            [](const Acquisition& a, const Acquisition& b) {
              return a.pos != b.pos ? a.pos < b.pos : a.mutex < b.mutex;
            });
  return acquisitions;
}

struct Witness {
  std::string file;
  std::size_t line = 0;
  std::string note;
};

}  // namespace

void check_lock_graph(const SymbolIndex& index, const CallGraph& graph,
                      std::vector<Finding>& out) {
  const std::size_t n = index.functions.size();
  std::vector<std::vector<Acquisition>> acquisitions(n);
  bool any = false;
  for (std::size_t f = 0; f < n; ++f) {
    acquisitions[f] = acquisitions_of(index, f);
    any = any || !acquisitions[f].empty();
  }
  if (!any) return;

  // Transitive mutex sets: every mutex a call into `f` may acquire.
  std::vector<std::set<std::string>> trans(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (const Acquisition& a : acquisitions[f]) trans[f].insert(a.mutex);
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t f = 0; f < n; ++f) {
      for (const CallEdge& e : graph.edges[f]) {
        for (const std::string& m : trans[e.callee]) {
          if (trans[f].insert(m).second) changed = true;
        }
      }
    }
  }

  // Does a call into `f` reach transport execute() / sink dispatch?
  std::vector<bool> dispatches(n, false);
  for (std::size_t f = 0; f < n; ++f) {
    for (const std::size_t c : index.calls_by_function[f]) {
      if (is_dispatch_name(index.calls[c].callee_name)) {
        dispatches[f] = true;
        break;
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (dispatches[f]) continue;
      for (const CallEdge& e : graph.edges[f]) {
        if (dispatches[e.callee]) {
          dispatches[f] = true;
          changed = true;
          break;
        }
      }
    }
  }

  // Build the mutex-order graph and flag locks held across dispatch.
  std::map<std::string, std::map<std::string, Witness>> order;
  auto add_edge = [&order](const std::string& from, const std::string& to,
                           Witness witness) {
    order[from].try_emplace(to, std::move(witness));
    order.try_emplace(to);  // Ensure every node exists.
  };
  for (std::size_t f = 0; f < n; ++f) {
    const FunctionDef& def = index.functions[f];
    for (const Acquisition& held : acquisitions[f]) {
      // Later direct acquisitions inside the guard's scope.
      for (const Acquisition& next : acquisitions[f]) {
        if (next.group == held.group) continue;
        if (next.pos <= held.pos || next.pos >= held.scope_end) continue;
        add_edge(held.mutex, next.mutex,
                 {def.file, next.line,
                  "'" + next.mutex + "' acquired while holding '" +
                      held.mutex + "' in '" + def.qualified + "'"});
      }
      // Calls inside the guard's scope.
      for (const std::size_t c : index.calls_by_function[f]) {
        const CallSite& call = index.calls[c];
        if (call.pos <= held.pos || call.pos >= held.scope_end) continue;
        if (is_dispatch_name(call.callee_name)) {
          out.push_back(
              {def.file, call.line, "lock-order",
               "mutex '" + held.mutex + "' held across '" +
                   call.callee_name + "()' in '" + def.qualified +
                   "'; transport execute() and sink dispatch must run "
                   "unlocked"});
        }
      }
      for (const CallEdge& e : graph.edges[f]) {
        const CallSite& call = index.calls[e.call];
        if (call.pos <= held.pos || call.pos >= held.scope_end) continue;
        const FunctionDef& callee = index.functions[e.callee];
        if (!is_dispatch_name(call.callee_name) && dispatches[e.callee]) {
          out.push_back(
              {def.file, call.line, "lock-order",
               "mutex '" + held.mutex + "' held across call to '" +
                   callee.qualified +
                   "', which reaches transport execute()/sink dispatch"});
        }
        for (const std::string& m : trans[e.callee]) {
          add_edge(held.mutex, m,
                   {def.file, call.line,
                    "call to '" + callee.qualified + "' while holding '" +
                        held.mutex + "' in '" + def.qualified +
                        "' acquires '" + m + "'"});
        }
      }
    }
  }

  // Self-loops: the same mutex re-acquired while held — immediate
  // deadlock for non-recursive std mutexes.
  for (const auto& [from, targets] : order) {
    const auto self = targets.find(from);
    if (self != targets.end()) {
      out.push_back({self->second.file, self->second.line, "lock-order",
                     "mutex '" + from +
                         "' re-acquired while already held (self-deadlock): " +
                         self->second.note});
    }
  }

  // Cycles between distinct mutexes: strongly connected components of
  // the order graph.  One finding per component, anchored at the
  // smallest-named member's outgoing witness, listing a concrete cycle.
  std::vector<std::string> nodes;
  nodes.reserve(order.size());
  for (const auto& [name, _] : order) nodes.push_back(name);
  std::map<std::string, std::size_t> node_id;
  for (std::size_t i = 0; i < nodes.size(); ++i) node_id[nodes[i]] = i;

  // Iterative Tarjan SCC.
  const std::size_t nn = nodes.size();
  std::vector<std::size_t> idx(nn, kNpos);
  std::vector<std::size_t> low(nn, 0);
  std::vector<bool> on_stack(nn, false);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  std::size_t counter = 0;
  struct Frame {
    std::size_t v;
    std::size_t child = 0;
  };
  for (std::size_t start = 0; start < nn; ++start) {
    if (idx[start] != kNpos) continue;
    std::vector<Frame> frames = {{start, 0}};
    idx[start] = low[start] = counter++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const auto& targets = order[nodes[fr.v]];
      if (fr.child < targets.size()) {
        auto it = targets.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(fr.child));
        ++fr.child;
        const std::size_t w = node_id[it->first];
        if (idx[w] == kNpos) {
          idx[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[fr.v] = std::min(low[fr.v], idx[w]);
        }
      } else {
        if (low[fr.v] == idx[fr.v]) {
          std::vector<std::size_t> scc;
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.push_back(w);
            if (w == fr.v) break;
          }
          if (scc.size() > 1) sccs.push_back(std::move(scc));
        }
        const std::size_t v = fr.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }

  for (std::vector<std::size_t>& scc : sccs) {
    std::sort(scc.begin(), scc.end(), [&nodes](std::size_t a, std::size_t b) {
      return nodes[a] < nodes[b];
    });
    const std::set<std::size_t> members(scc.begin(), scc.end());
    // Walk a concrete cycle from the smallest node, always stepping to
    // the smallest in-component successor not yet visited (falling back
    // to the start node to close the loop).
    const std::size_t start_node = scc[0];
    std::vector<std::size_t> path = {start_node};
    std::set<std::size_t> visited = {start_node};
    std::string detail;
    std::size_t cur = start_node;
    for (;;) {
      const auto& targets = order[nodes[cur]];
      std::size_t next = kNpos;
      for (const auto& [to, w] : targets) {
        const std::size_t t = node_id[to];
        if (members.count(t) == 0) continue;
        if (t == start_node && path.size() > 1) {
          next = t;
          break;
        }
        if (visited.count(t) == 0 && (next == kNpos || to < nodes[next])) {
          next = t;
        }
      }
      if (next == kNpos) break;  // Defensive; an SCC always has a cycle.
      const Witness& w = order[nodes[cur]].at(nodes[next]);
      if (!detail.empty()) detail += "; ";
      detail += w.note + " (" + w.file + ":" + std::to_string(w.line) + ")";
      path.push_back(next);
      if (next == start_node) break;
      visited.insert(next);
      cur = next;
    }
    if (path.size() < 2) continue;  // Defensive; cannot happen in an SCC.
    std::string cycle;
    for (const std::size_t v : path) {
      if (!cycle.empty()) cycle += " -> ";
      cycle += "'" + nodes[v] + "'";
    }
    const Witness& anchor = order[nodes[path[0]]].at(nodes[path[1]]);
    out.push_back({anchor.file, anchor.line, "lock-order",
                   "lock-order cycle " + cycle +
                       " (potential deadlock): " + detail});
  }
}

}  // namespace tagwatch::lint
