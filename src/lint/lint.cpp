#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string_view>

#include "lint/call_graph.hpp"
#include "lint/lock_graph.hpp"
#include "lint/nondet.hpp"
#include "lint/symbol_index.hpp"
#include "lint/taint.hpp"

namespace tagwatch::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// File stem: "src/core/pipeline.cpp" -> "pipeline".
std::string stem_of(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  std::string_view name =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string_view::npos) name = name.substr(0, dot);
  return std::string(name);
}

/// Position of the first occurrence of identifier `name` at or after
/// `from`, with identifier boundaries on both sides; npos if none.
std::size_t find_identifier(const std::string& text, std::string_view name,
                            std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Given `pos` at an opening bracket, returns the position just past its
/// matching close, or npos when unbalanced.
std::size_t match_bracket(const std::string& text, std::size_t pos,
                          char open, char close) {
  std::size_t depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == open) {
      ++depth;
    } else if (text[i] == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

// ------------------------------------------------------- allow() hatch

constexpr std::string_view kAllowMarker = "tagwatch-lint: allow(";

/// Lines (1-based) of the raw file that carry an allow() annotation for
/// `rule`, mapped over both the annotated line and the one below it.
struct AllowIndex {
  // line -> set of rule names allowed on that line.
  std::map<std::size_t, std::set<std::string>> by_line;
  std::size_t annotations = 0;

  // rule -> how many annotations name it (feeds the per-rule budget).
  std::map<std::string, std::size_t> annotations_by_rule;

  explicit AllowIndex(const std::string& raw) {
    std::size_t pos = 0;
    while ((pos = raw.find(kAllowMarker, pos)) != std::string::npos) {
      const std::size_t open = pos + kAllowMarker.size();
      const std::size_t close = raw.find(')', open);
      if (close != std::string::npos) {
        const std::string rule = raw.substr(open, close - open);
        // Only a real rule name is an annotation — this keeps prose like
        // "allow(<rule>)" in documentation from eating the budget.
        const auto& names = RuleEngine::rule_names();
        if (std::find(names.begin(), names.end(), rule) != names.end()) {
          ++annotations;
          ++annotations_by_rule[rule];
          const std::size_t line = line_of(raw, pos);
          by_line[line].insert(rule);
          by_line[line + 1].insert(rule);  // Annotation-above style.
        }
      }
      pos = open;
    }
  }

  bool allows(std::size_t line, const std::string& rule) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) > 0;
  }
};

// ------------------------------------------------------------- rule D

void check_determinism(const SourceFile& file, const std::string& scrubbed,
                       std::vector<Finding>& out) {
  if (!in_journaled_dir(file.path)) return;
  for (const NondetUse& use : scan_nondeterminism(scrubbed)) {
    out.push_back({file.path, line_of(scrubbed, use.pos), "determinism",
                   use.message + " in journaled path"});
  }
}

// ------------------------------------------------------------- rule H

void check_pragma_once(const SourceFile& file, const std::string& scrubbed,
                       std::vector<Finding>& out) {
  if (!ends_with(file.path, ".hpp")) return;
  const std::size_t first = skip_ws(scrubbed, 0);
  if (first >= scrubbed.size() ||
      scrubbed.compare(first, 12, "#pragma once") != 0) {
    out.push_back({file.path, first >= scrubbed.size()
                                  ? std::size_t{1}
                                  : line_of(scrubbed, first),
                   "header-pragma-once",
                   "header must open with #pragma once (before any code)"});
  }
}

void check_using_namespace(const SourceFile& file,
                           const std::string& scrubbed,
                           std::vector<Finding>& out) {
  if (!ends_with(file.path, ".hpp")) return;
  std::size_t pos = 0;
  while ((pos = find_identifier(scrubbed, "using", pos)) !=
         std::string::npos) {
    const std::size_t next = skip_ws(scrubbed, pos + 5);
    if (find_identifier(scrubbed, "namespace", next) == next) {
      out.push_back({file.path, line_of(scrubbed, pos),
                     "header-using-namespace",
                     "'using namespace' leaks into every includer; "
                     "qualify names instead"});
    }
    pos += 5;
  }
}

struct IncludeDirective {
  std::size_t line;
  bool quoted;
  std::string target;
};

std::vector<IncludeDirective> collect_includes(const std::string& scrubbed) {
  std::vector<IncludeDirective> includes;
  std::size_t pos = 0;
  while ((pos = scrubbed.find("#include", pos)) != std::string::npos) {
    // Must be the first token on its line.
    std::size_t bol = scrubbed.rfind('\n', pos);
    bol = bol == std::string::npos ? 0 : bol + 1;
    if (skip_ws(scrubbed, bol) != pos) {
      pos += 8;
      continue;
    }
    const std::size_t open = skip_ws(scrubbed, pos + 8);
    if (open < scrubbed.size() &&
        (scrubbed[open] == '"' || scrubbed[open] == '<')) {
      const char close = scrubbed[open] == '"' ? '"' : '>';
      const std::size_t end = scrubbed.find(close, open + 1);
      if (end != std::string::npos) {
        includes.push_back({line_of(scrubbed, pos), scrubbed[open] == '"',
                            scrubbed.substr(open + 1, end - open - 1)});
      }
    }
    pos += 8;
  }
  return includes;
}

void check_include_order(const SourceFile& file, const std::string& raw,
                         std::vector<Finding>& out) {
  // Scrub only comments: include targets are quoted strings and must
  // survive.  House order (matching .clang-format's Preserve blocks):
  // the .cpp's own header first, then every <system> include, then
  // "project" includes.
  const std::string scrubbed = scrub_comments(raw);
  std::vector<IncludeDirective> includes = collect_includes(scrubbed);
  if (includes.empty()) return;
  std::size_t start = 0;
  if (ends_with(file.path, ".cpp") && includes[0].quoted) {
    // Own header leads (foo.cpp -> "…/foo.hpp"); test files lead with the
    // header under test (test_foo.cpp -> "…/foo.hpp").  Both are exempt
    // from the system-first order.
    const std::string file_stem = stem_of(file.path);
    const std::string inc_stem = stem_of(includes[0].target);
    if (file_stem == inc_stem || file_stem == "test_" + inc_stem) {
      start = 1;
    }
  }
  bool seen_project = false;
  for (std::size_t i = start; i < includes.size(); ++i) {
    if (includes[i].quoted) {
      seen_project = true;
    } else if (seen_project) {
      out.push_back({file.path, includes[i].line, "include-order",
                     "<" + includes[i].target +
                         "> after a \"project\" include; order is: own "
                         "header, <system>, \"project\""});
    }
  }
}

// ------------------------------------------------------------- rule T

/// The one sanctioned home for raw threads (util::TaskPool's own files);
/// everywhere else concurrency must route through the pool so fork/join
/// structure — and with it, determinism — is preserved by construction.
bool is_task_pool_file(std::string_view path) {
  return path.find("src/util/task_pool.") != std::string_view::npos;
}

void check_threading(const SourceFile& file, const std::string& scrubbed,
                     std::vector<Finding>& out) {
  if (is_task_pool_file(file.path)) return;
  // (a) Raw thread primitives.  Only the std::-qualified spelling is
  // flagged: plain `thread` is a common variable name.
  for (const std::string_view prim :
       {std::string_view("thread"), std::string_view("jthread"),
        std::string_view("async")}) {
    std::size_t pos = 0;
    while ((pos = find_identifier(scrubbed, prim, pos)) !=
           std::string::npos) {
      if (pos >= 5 && scrubbed.compare(pos - 5, 5, "std::") == 0) {
        out.push_back({file.path, line_of(scrubbed, pos),
                       "threading-discipline",
                       "raw std::" + std::string(prim) +
                           "; route concurrency through util::TaskPool"});
      }
      pos += prim.size();
    }
  }
  // (b) detach() orphans a thread past its owner's lifetime; (c) explicit
  // lock()/unlock() member calls — mutexes are held via RAII guards
  // (std::lock_guard / std::scoped_lock / std::unique_lock) only, so no
  // early return or exception can leave one held.
  for (const std::string_view member :
       {std::string_view("detach"), std::string_view("lock"),
        std::string_view("unlock")}) {
    std::size_t pos = 0;
    while ((pos = find_identifier(scrubbed, member, pos)) !=
           std::string::npos) {
      const bool via_dot = pos >= 1 && scrubbed[pos - 1] == '.';
      const bool via_arrow = pos >= 2 && scrubbed[pos - 2] == '-' &&
                             scrubbed[pos - 1] == '>';
      const std::size_t after = skip_ws(scrubbed, pos + member.size());
      const bool is_call = after < scrubbed.size() && scrubbed[after] == '(';
      if ((via_dot || via_arrow) && is_call) {
        const std::string message =
            member == "detach"
                ? "detach() orphans the thread; join via util::TaskPool"
                : "explicit " + std::string(member) +
                      "() call; hold mutexes with RAII guards "
                      "(std::lock_guard/std::scoped_lock)";
        out.push_back({file.path, line_of(scrubbed, pos),
                       "threading-discipline", message});
      }
      pos += member.size();
    }
  }
}

// ------------------------------------------------------------- rule V

/// The one sanctioned home for raw vector intrinsics: the util::simd
/// kernel module.  Everywhere else SIMD routes through the dispatched
/// util::simd entry points, so the scalar/AVX2 differential tests cover
/// every instruction sequence that can actually run.
bool is_simd_kernel_file(std::string_view path) {
  return path.find("src/util/simd") != std::string_view::npos;
}

void check_simd_discipline(const SourceFile& file, const std::string& scrubbed,
                           std::vector<Finding>& out) {
  if (is_simd_kernel_file(file.path)) return;
  // (a) Raw intrinsic calls and vector register types.
  for (const std::string_view prefix :
       {std::string_view("_mm"), std::string_view("__m128"),
        std::string_view("__m256"), std::string_view("__m512"),
        std::string_view("__builtin_ia32")}) {
    std::size_t pos = 0;
    while ((pos = scrubbed.find(prefix, pos)) != std::string::npos) {
      if (pos == 0 || !is_ident_char(scrubbed[pos - 1])) {
        out.push_back({file.path, line_of(scrubbed, pos), "simd-discipline",
                       "raw vector intrinsic; implement kernels in the "
                       "util::simd module and call its dispatched entry "
                       "points"});
        // One finding per line is enough: jump to the next line.
        pos = scrubbed.find('\n', pos);
        if (pos == std::string::npos) break;
        continue;
      }
      pos += prefix.size();
    }
  }
  // (b) The intrinsics headers themselves (<immintrin.h> and friends).
  std::size_t pos = 0;
  while ((pos = scrubbed.find("intrin.h>", pos)) != std::string::npos) {
    const std::size_t line_start = scrubbed.rfind('\n', pos) + 1;
    const std::size_t inc = scrubbed.find("#include", line_start);
    if (inc != std::string::npos && inc < pos) {
      out.push_back({file.path, line_of(scrubbed, pos), "simd-discipline",
                     "intrinsics header outside the util::simd module"});
    }
    pos += 9;
  }
  // (c) Repointing the process-wide kernel table is the config seam's
  // job: in src/ only TagwatchController's constructor (driven by
  // TagwatchConfig::force_scalar_simd) may call set_active_isa, so every
  // journaled run records its ISA choice in its config.  Tests, tools
  // and benches flip it freely for A/B runs.
  if (file.path.rfind("src/", 0) == 0 &&
      file.path != "src/core/tagwatch.cpp") {
    std::size_t at = 0;
    while ((at = find_identifier(scrubbed, "set_active_isa", at)) !=
           std::string::npos) {
      const std::size_t after = skip_ws(scrubbed, at + 14);
      if (after < scrubbed.size() && scrubbed[after] == '(') {
        out.push_back({file.path, line_of(scrubbed, at), "simd-discipline",
                       "set_active_isa outside the config seam; pin the ISA "
                       "via TagwatchConfig::force_scalar_simd"});
      }
      at += 14;
    }
  }
}

// ------------------------------------------------------------- rule P

void check_pipeline_reentrancy(const SourceFile& file,
                               const std::string& scrubbed,
                               std::vector<Finding>& out) {
  for (const std::string_view hook : {std::string_view("on_reading"),
                                      std::string_view("on_cycle_end")}) {
    std::size_t pos = 0;
    while ((pos = find_identifier(scrubbed, hook, pos)) !=
           std::string::npos) {
      std::size_t cur = skip_ws(scrubbed, pos + hook.size());
      pos += hook.size();
      if (cur >= scrubbed.size() || scrubbed[cur] != '(') continue;
      const std::size_t params_end = match_bracket(scrubbed, cur, '(', ')');
      if (params_end == std::string::npos) continue;
      // Skip qualifiers between ')' and the body; stop on ';' (a mere
      // declaration) or '=' (pure virtual / defaulted).
      cur = params_end;
      while (cur < scrubbed.size() && scrubbed[cur] != '{' &&
             scrubbed[cur] != ';' && scrubbed[cur] != '=') {
        ++cur;
      }
      if (cur >= scrubbed.size() || scrubbed[cur] != '{') continue;
      const std::size_t body_end = match_bracket(scrubbed, cur, '{', '}');
      if (body_end == std::string::npos) continue;
      // The hazard: a sink hook driving the transport re-enters the
      // controller mid-cycle (found by inspection of core/pipeline.cpp —
      // dispatch() runs inside the controller's execute loop).
      std::size_t call = cur;
      while ((call = find_identifier(scrubbed, "execute", call)) !=
                 std::string::npos &&
             call < body_end) {
        const std::size_t after = skip_ws(scrubbed, call + 7);
        if (after < scrubbed.size() && scrubbed[after] == '(') {
          out.push_back({file.path, line_of(scrubbed, call),
                         "pipeline-reentrancy",
                         "execute() called from a ReadingSink hook "
                         "(re-enters the transport mid-cycle)"});
        }
        call += 7;
      }
    }
  }
}

// ------------------------------------------------------------- rule J

/// Enumerators of `enum class <name> { ... }` in `scrubbed`, or empty.
std::vector<std::string> parse_enumerators(const std::string& scrubbed,
                                           std::string_view enum_name) {
  const std::size_t decl = find_identifier(scrubbed, enum_name, 0);
  if (decl == std::string::npos) return {};
  const std::size_t open = scrubbed.find('{', decl);
  if (open == std::string::npos) return {};
  const std::size_t end = match_bracket(scrubbed, open, '{', '}');
  if (end == std::string::npos) return {};
  std::vector<std::string> names;
  std::size_t cur = open + 1;
  while (cur < end - 1) {
    cur = skip_ws(scrubbed, cur);
    if (cur >= end - 1) break;
    if (!is_ident_char(scrubbed[cur])) {
      ++cur;
      continue;
    }
    std::size_t ident_end = cur;
    while (ident_end < end - 1 && is_ident_char(scrubbed[ident_end])) {
      ++ident_end;
    }
    names.emplace_back(scrubbed, cur, ident_end - cur);
    // Skip to the next comma at enum level (past any = expression).
    cur = scrubbed.find(',', ident_end);
    if (cur == std::string::npos || cur > end) break;
    ++cur;
  }
  return names;
}

/// Journal record tags appearing as `<< "T,"` (serializer) in `scrubbed`.
std::set<std::string> serializer_tags(const std::string& scrubbed) {
  std::set<std::string> tags;
  std::size_t pos = 0;
  while ((pos = scrubbed.find("<<", pos)) != std::string::npos) {
    const std::size_t quote = skip_ws(scrubbed, pos + 2);
    // A record tag is a one-letter literal "T," opening a CSV line.
    if (quote + 3 < scrubbed.size() && scrubbed[quote] == '"' &&
        std::isupper(static_cast<unsigned char>(scrubbed[quote + 1])) != 0 &&
        scrubbed[quote + 2] == ',' && scrubbed[quote + 3] == '"') {
      tags.insert(std::string(1, scrubbed[quote + 1]));
    }
    pos += 2;
  }
  return tags;
}

/// Journal record tags the parser handles: `f[0] == "T"`.
std::set<std::string> parser_tags(const std::string& scrubbed) {
  std::set<std::string> tags;
  std::size_t pos = 0;
  while ((pos = scrubbed.find("==", pos)) != std::string::npos) {
    const std::size_t quote = skip_ws(scrubbed, pos + 2);
    if (quote + 2 < scrubbed.size() && scrubbed[quote] == '"' &&
        std::isupper(static_cast<unsigned char>(scrubbed[quote + 1])) != 0 &&
        scrubbed[quote + 2] == '"') {
      tags.insert(std::string(1, scrubbed[quote + 1]));
    }
    pos += 2;
  }
  return tags;
}

const SourceFile* find_file(const std::vector<SourceFile>& files,
                            std::string_view suffix) {
  for (const SourceFile& f : files) {
    if (ends_with(f.path, suffix)) return &f;
  }
  return nullptr;
}

/// Cross-file consistency: adding a ReaderErrorKind enumerator or a journal
/// record tag in one place must not silently skip the other tables.
void check_journal_discipline(const std::vector<SourceFile>& files,
                              std::vector<Finding>& out) {
  const SourceFile* enum_hdr = find_file(files, "llrp/reader_client.hpp");
  const SourceFile* name_src = find_file(files, "llrp/reader_client.cpp");
  const SourceFile* health_hdr = find_file(files, "core/resilience.hpp");
  const SourceFile* inject_src = find_file(files, "llrp/fault_injection.cpp");
  if (enum_hdr != nullptr) {
    const std::string hdr = scrub_comments_and_strings(enum_hdr->content);
    const std::vector<std::string> kinds =
        parse_enumerators(hdr, "ReaderErrorKind");
    const std::size_t enum_line =
        line_of(hdr, find_identifier(hdr, "ReaderErrorKind", 0));
    if (kinds.empty()) {
      out.push_back({enum_hdr->path, 1, "journal-discipline",
                     "cannot parse enum class ReaderErrorKind"});
    }
    for (const std::string& kind : kinds) {
      if (name_src != nullptr) {
        const std::string src = scrub_comments(name_src->content);
        if (src.find("case ReaderErrorKind::" + kind) == std::string::npos) {
          out.push_back({enum_hdr->path, enum_line, "journal-discipline",
                         "ReaderErrorKind::" + kind +
                             " missing from to_string() in " +
                             name_src->path});
        }
        if (src.find("return ReaderErrorKind::" + kind) ==
            std::string::npos) {
          out.push_back(
              {enum_hdr->path, enum_line, "journal-discipline",
               "ReaderErrorKind::" + kind +
                   " missing from reader_error_kind_from_string() in " +
                   name_src->path});
        }
      }
      if (health_hdr != nullptr &&
          health_hdr->content.find("ReaderErrorKind::" + kind) ==
              std::string::npos) {
        out.push_back({enum_hdr->path, enum_line, "journal-discipline",
                       "ReaderErrorKind::" + kind +
                           " not counted by HealthMetrics::count_fault in " +
                           health_hdr->path});
      }
      // The fault injector must be able to produce every error kind, or
      // the chaos harness silently stops covering it (and a journaled X
      // record of that kind could never have come from a drill).
      if (inject_src != nullptr &&
          scrub_comments(inject_src->content)
                  .find("ReaderErrorKind::" + kind) == std::string::npos) {
        out.push_back({enum_hdr->path, enum_line, "journal-discipline",
                       "ReaderErrorKind::" + kind +
                           " never injected by FaultInjectingReaderClient "
                           "in " +
                           inject_src->path});
      }
    }
  }
  // Every CSV journal implementation must keep its serializer and parser
  // record-tag tables symmetric — one-sided tags silently truncate replay.
  for (const char* journal_file :
       {"llrp/reader_journal.cpp", "llrp/fleet_journal.cpp"}) {
    const SourceFile* journal = find_file(files, journal_file);
    if (journal == nullptr) continue;
    const std::string src = scrub_comments(journal->content);
    const std::set<std::string> written = serializer_tags(src);
    const std::set<std::string> parsed = parser_tags(src);
    for (const std::string& tag : written) {
      if (parsed.count(tag) == 0) {
        out.push_back({journal->path, 1, "journal-discipline",
                       "record tag '" + tag +
                           "' is serialized but never parsed"});
      }
    }
    for (const std::string& tag : parsed) {
      if (written.count(tag) == 0) {
        out.push_back({journal->path, 1, "journal-discipline",
                       "record tag '" + tag +
                           "' is parsed but never serialized"});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- scrub

std::string scrub_comments(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar } state =
      State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::string scrub_comments_and_strings(const std::string& text) {
  std::string out = scrub_comments(text);
  enum class State { kCode, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    switch (state) {
      case State::kCode:
        if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < out.size()) {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < out.size()) {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  if (pos > text.size()) pos = text.size();
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(pos),
                            '\n'));
}

// --------------------------------------------------------------- engine

const std::vector<RuleInfo>& RuleEngine::rules() {
  static const std::vector<RuleInfo> catalog = {
      {"determinism",
       "no wall-clock/entropy/environment reads directly in journaled "
       "directories (src/core, src/sim, src/llrp, src/gen2, src/rf)"},
      {"header-pragma-once", "every header opens with #pragma once"},
      {"header-using-namespace", "no 'using namespace' in headers"},
      {"include-order",
       "own header first, then <system>, then \"project\" includes"},
      {"pipeline-reentrancy",
       "ReadingSink hooks never call execute() (re-enters the transport "
       "mid-cycle)"},
      {"journal-discipline",
       "ReaderErrorKind enumerators and journal record tags stay in sync "
       "across serializer, parser, health digest, and fault injector"},
      {"threading-discipline",
       "raw threads only inside util::TaskPool; mutexes held via RAII "
       "guards, never explicit lock()/unlock()"},
      {"simd-discipline",
       "raw vector intrinsics and intrinsics headers only inside the "
       "util::simd module; in src/ the kernel table is repointed only "
       "through the TagwatchConfig::force_scalar_simd seam"},
      {"determinism-taint",
       "no journaled function reaches a wall-clock/entropy read through "
       "any call chain (interprocedural; util::WallClock is the sanctioned "
       "seam)"},
      {"lock-order",
       "mutex acquisition order is cycle-free and no lock is held across "
       "execute() or pipeline sink dispatch (interprocedural)"},
  };
  return catalog;
}

const std::vector<std::string>& RuleEngine::rule_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const RuleInfo& rule : rules()) out.push_back(rule.name);
    return out;
  }();
  return names;
}

LintReport RuleEngine::run(const std::vector<SourceFile>& files) const {
  LintReport report;
  std::vector<Finding> raw_findings;
  for (const SourceFile& file : files) {
    const std::string scrubbed = scrub_comments_and_strings(file.content);
    check_determinism(file, scrubbed, raw_findings);
    check_pragma_once(file, scrubbed, raw_findings);
    check_using_namespace(file, scrubbed, raw_findings);
    check_include_order(file, file.content, raw_findings);
    check_pipeline_reentrancy(file, scrubbed, raw_findings);
    check_threading(file, scrubbed, raw_findings);
    check_simd_discipline(file, scrubbed, raw_findings);
  }
  check_journal_discipline(files, raw_findings);

  // Whole-tree call-graph rules: index once, share between analyses.
  const SymbolIndex index = build_symbol_index(files);
  const CallGraph graph = build_call_graph(index);
  check_determinism_taint(index, graph, raw_findings);
  check_lock_graph(index, graph, raw_findings);

  // Apply allow() suppressions and count annotations per file.
  std::map<std::string, AllowIndex> allows;
  for (const SourceFile& file : files) {
    const auto [it, inserted] =
        allows.try_emplace(file.path, AllowIndex(file.content));
    if (inserted) {
      report.allow_annotations += it->second.annotations;
      for (const auto& [rule, count] : it->second.annotations_by_rule) {
        report.allow_annotations_by_rule[rule] += count;
      }
    }
  }
  for (Finding& f : raw_findings) {
    const auto it = allows.find(f.file);
    if (it != allows.end() && it->second.allows(f.line, f.rule)) {
      ++report.suppressions_used;
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return report;
}

}  // namespace tagwatch::lint
