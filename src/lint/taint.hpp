// Interprocedural determinism taint.
//
// Rule `determinism` (lint.cpp) only sees *direct* clock/entropy reads
// inside journaled directories; a one-line wrapper in src/util launders
// the read straight past it.  This analysis closes that hole: every
// function whose body touches a nondeterminism primitive (scan_
// nondeterminism, anywhere in the tree) is a taint *source*; taint
// propagates callee→caller through the call graph; and a finding is
// raised at the call site where a journaled-directory function hands
// control to a tainted function *outside* the journaled set — the exact
// point where nondeterminism is being laundered in.  The full shortest
// call chain down to the primitive read is printed in the message.
//
// The injectable util::WallClock seam (src/util/wall_clock.*) is the one
// sanctioned boundary: its functions are neither sources nor
// propagators, which is precisely what makes it the only legal way for
// journaled code to observe host time.
#pragma once

#include <vector>

#include "lint/call_graph.hpp"
#include "lint/lint.hpp"
#include "lint/symbol_index.hpp"

namespace tagwatch::lint {

/// Appends `determinism-taint` findings over the indexed tree.
void check_determinism_taint(const SymbolIndex& index, const CallGraph& graph,
                             std::vector<Finding>& out);

}  // namespace tagwatch::lint
