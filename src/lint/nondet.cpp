#include "lint/nondet.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace tagwatch::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Position of the first occurrence of identifier `name` at or after
/// `from`, with identifier boundaries on both sides; npos if none.
std::size_t find_identifier(const std::string& text, std::string_view name,
                            std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + name.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Given `pos` at an opening bracket, returns the position just past its
/// matching close, or npos when unbalanced.
std::size_t match_bracket(const std::string& text, std::size_t pos, char open,
                          char close) {
  std::size_t depth = 0;
  for (std::size_t i = pos; i < text.size(); ++i) {
    if (text[i] == open) {
      ++depth;
    } else if (text[i] == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

constexpr std::array<std::string_view, 5> kJournaledDirs = {
    "src/core/", "src/sim/", "src/llrp/", "src/gen2/", "src/rf/"};

/// Wall-clock / entropy / environment identifiers that must never appear
/// in a journaled path.  Split into "any use" and "only as a call".
constexpr std::array<std::string_view, 4> kForbiddenIdentifiers = {
    "random_device", "system_clock", "steady_clock",
    "high_resolution_clock"};
constexpr std::array<std::string_view, 8> kForbiddenCalls = {
    "rand", "srand", "time", "clock", "getenv", "gettimeofday", "localtime",
    "gmtime"};

}  // namespace

bool in_journaled_dir(std::string_view path) {
  for (const std::string_view dir : kJournaledDirs) {
    if (starts_with(path, dir)) return true;
  }
  return false;
}

bool is_sanctioned_clock_seam(std::string_view path) {
  return path.find("src/util/wall_clock.") != std::string_view::npos;
}

std::vector<NondetUse> scan_nondeterminism(const std::string& scrubbed) {
  std::vector<NondetUse> uses;
  for (const std::string_view ident : kForbiddenIdentifiers) {
    std::size_t pos = 0;
    while ((pos = find_identifier(scrubbed, ident, pos)) !=
           std::string::npos) {
      uses.push_back({pos, "non-deterministic identifier '" +
                               std::string(ident) + "'"});
      pos += ident.size();
    }
  }
  for (const std::string_view call : kForbiddenCalls) {
    std::size_t pos = 0;
    while ((pos = find_identifier(scrubbed, call, pos)) !=
           std::string::npos) {
      const std::size_t after = skip_ws(scrubbed, pos + call.size());
      if (after < scrubbed.size() && scrubbed[after] == '(') {
        uses.push_back({pos, "call to '" + std::string(call) + "()'"});
      }
      pos += call.size();
    }
  }
  // Unseeded std::mt19937 / std::mt19937_64: a declaration with no
  // initializer (or an empty one) seeds from the default constant, which
  // hides the seed from the journal.
  for (const std::string_view engine : {std::string_view("mt19937"),
                                        std::string_view("mt19937_64")}) {
    std::size_t pos = 0;
    while ((pos = find_identifier(scrubbed, engine, pos)) !=
           std::string::npos) {
      const std::size_t report_at = pos;
      std::size_t cur = skip_ws(scrubbed, pos + engine.size());
      pos += engine.size();
      // Expect a declared variable name next; anything else (template
      // argument, reference parameter, qualified use) is not a decl.
      if (cur >= scrubbed.size() || !is_ident_char(scrubbed[cur]) ||
          std::isdigit(static_cast<unsigned char>(scrubbed[cur])) != 0) {
        continue;
      }
      while (cur < scrubbed.size() && is_ident_char(scrubbed[cur])) ++cur;
      cur = skip_ws(scrubbed, cur);
      bool unseeded = false;
      if (cur < scrubbed.size() && scrubbed[cur] == ';') {
        unseeded = true;
      } else if (cur < scrubbed.size() &&
                 (scrubbed[cur] == '(' || scrubbed[cur] == '{')) {
        const char close = scrubbed[cur] == '(' ? ')' : '}';
        const std::size_t end =
            match_bracket(scrubbed, cur, scrubbed[cur], close);
        if (end != std::string::npos &&
            skip_ws(scrubbed, cur + 1) == end - 1) {
          unseeded = true;  // Empty initializer: default seed.
        }
      }
      if (unseeded) {
        uses.push_back({report_at, "unseeded std::" + std::string(engine) +
                                       " (pass an explicit seed)"});
      }
    }
  }
  std::sort(uses.begin(), uses.end(),
            [](const NondetUse& a, const NondetUse& b) {
              return a.pos != b.pos ? a.pos < b.pos : a.message < b.message;
            });
  return uses;
}

}  // namespace tagwatch::lint
