// Cross-file call graph over the symbol index.
//
// Resolution is by name, deliberately over-approximate:
//
//   - an unqualified or member call `f(...)` resolves to *every*
//     definition named `f` — overloads merge, and virtual dispatch
//     resolves to every same-named override (safe for taint, which only
//     needs may-reach);
//   - a qualified call `util::f(...)` keeps only candidates whose
//     qualified name ends with the written components, falling back to
//     the name-only set when nothing matches (alias namespaces);
//   - a caller inside `src/` never resolves into `tests/`, `tools/`,
//     `bench/`, or `examples/` — the library does not link against
//     them, so such an edge cannot exist at runtime and would only
//     manufacture false taint chains.
#pragma once

#include <cstddef>
#include <vector>

#include "lint/symbol_index.hpp"

namespace tagwatch::lint {

/// One resolved caller→callee edge.
struct CallEdge {
  std::size_t callee = 0;  ///< Index into SymbolIndex::functions.
  std::size_t call = 0;    ///< Index into SymbolIndex::calls (the site).
};

struct CallGraph {
  /// edges[f] = resolved outgoing edges of function f, in body order
  /// (then candidate order, which follows definition order).
  std::vector<std::vector<CallEdge>> edges;
  /// reverse[f] = incoming edges of f, as (caller, call-site) pairs.
  std::vector<std::vector<CallEdge>> reverse;  ///< callee field = caller.
};

CallGraph build_call_graph(const SymbolIndex& index);

}  // namespace tagwatch::lint
