#include "lint/call_graph.hpp"

#include <map>
#include <string>
#include <string_view>

namespace tagwatch::lint {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> split_components(const std::string& qualified) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t sep = qualified.find("::", start);
    if (sep == std::string::npos) {
      parts.push_back(qualified.substr(start));
      return parts;
    }
    parts.push_back(qualified.substr(start, sep - start));
    start = sep + 2;
  }
}

/// True when `qualified`'s component list ends with `written`'s.
bool suffix_matches(const std::vector<std::string>& qualified,
                    const std::vector<std::string>& written) {
  if (written.size() > qualified.size()) return false;
  const std::size_t offset = qualified.size() - written.size();
  for (std::size_t i = 0; i < written.size(); ++i) {
    if (qualified[offset + i] != written[i]) return false;
  }
  return true;
}

}  // namespace

CallGraph build_call_graph(const SymbolIndex& index) {
  CallGraph graph;
  graph.edges.resize(index.functions.size());
  graph.reverse.resize(index.functions.size());

  // Name -> candidate definition indices, in definition order.
  std::map<std::string, std::vector<std::size_t>> by_name;
  std::vector<std::vector<std::string>> qualified_parts;
  qualified_parts.reserve(index.functions.size());
  for (std::size_t f = 0; f < index.functions.size(); ++f) {
    by_name[index.functions[f].name].push_back(f);
    qualified_parts.push_back(
        split_components(index.functions[f].qualified));
  }

  for (std::size_t c = 0; c < index.calls.size(); ++c) {
    const CallSite& call = index.calls[c];
    const auto it = by_name.find(call.callee_name);
    if (it == by_name.end()) continue;
    const std::vector<std::string> written =
        split_components(call.callee_text);
    const bool caller_in_src =
        starts_with(index.functions[call.caller].file, "src/");

    std::vector<std::size_t> candidates;
    if (written.size() > 1) {
      for (const std::size_t f : it->second) {
        if (suffix_matches(qualified_parts[f], written)) {
          candidates.push_back(f);
        }
      }
    }
    if (candidates.empty()) candidates = it->second;

    for (const std::size_t f : candidates) {
      if (caller_in_src && !starts_with(index.functions[f].file, "src/")) {
        continue;  // The library never links test/tool/bench code.
      }
      graph.edges[call.caller].push_back({f, c});
      graph.reverse[f].push_back({call.caller, c});
    }
  }
  return graph;
}

}  // namespace tagwatch::lint
