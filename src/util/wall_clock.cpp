#include "util/wall_clock.hpp"

#include <chrono>

namespace tagwatch::util {

namespace {

/// The one place in the library that reads a raw std::chrono clock; it
/// lives outside the journaled directories on purpose (see
/// docs/STATIC_ANALYSIS.md, rule `determinism`).
class SystemWallClock final : public WallClock {
 public:
  double now_seconds() override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

WallClock& WallClock::system() {
  static SystemWallClock clock;
  return clock;
}

}  // namespace tagwatch::util
