// Small linear least-squares solvers for model fitting.
//
// The paper fits the two unknown parameters of the inventory-cost model
// C(n) = τ0 + n·e·ln(n)·τ̄ to measured data by least squares (§2.3, §6).
// Because C is linear in (τ0, τ̄), a 2-parameter linear solve suffices.
#pragma once

#include <span>
#include <utility>

namespace tagwatch::util {

/// Result of a straight-line fit y ≈ intercept + slope · x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1]; 1 means a perfect fit.
  double r_squared = 0.0;
};

/// Ordinary least squares for y = intercept + slope · x.
/// Precondition: xs.size() == ys.size() >= 2 and xs not all equal.
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

}  // namespace tagwatch::util
