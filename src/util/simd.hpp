// Runtime-dispatched SIMD kernels for the Phase-II planning hot loops.
//
// Every kernel has two implementations — a portable scalar loop and an
// AVX2 version — behind one function-pointer table selected at startup
// from a CPUID probe.  The two implementations are *bit-identical* by
// construction: the word kernels are pure integer AND/OR/ANDNOT/popcount,
// and the two floating-point kernels restrict themselves to elementwise
// single-operation IEEE math (multiply; compare against max/mul products),
// which vectorizes without reassociation.  Differential fuzz tests
// (test_simd.cpp) enforce the equivalence at adversarial widths, and the
// plan-equivalence suite enforces it end to end: plans and journals are
// byte-identical across ISAs.
//
// Dispatch is process-global and set once: active_isa() defaults to
// detected_isa() and can only be lowered (e.g. forced to scalar for
// differential measurement) via set_active_isa(), which clamps to the
// detected level so an AVX2 kernel can never run on a machine without
// AVX2.  Journaled code must not make the decision ad hoc: the
// simd-discipline lint rule pins set_active_isa() calls to this module
// and the TagwatchConfig seam (TagwatchConfig::force_scalar_simd), and
// pins raw intrinsics to src/util/simd_avx2.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tagwatch::util::simd {

/// Instruction-set level of a kernel table.
enum class Isa {
  kScalar = 0,  ///< Portable C++ loops; always available.
  kAvx2 = 1,    ///< 256-bit integer/double kernels (x86-64 with AVX2).
};

/// Highest ISA level this CPU supports (probed once, then cached).
Isa detected_isa() noexcept;

/// The ISA level the kernels below currently dispatch to.  Defaults to
/// detected_isa() on first use.
Isa active_isa() noexcept;

/// Selects the dispatch level, clamped to detected_isa() — requesting
/// kAvx2 on a non-AVX2 machine leaves the scalar table active.  Returns
/// the level actually activated.  Not thread-safe against concurrent
/// kernel calls; call it at startup (the TagwatchConfig seam) or between
/// measurement phases, never from inside a TaskPool region.
Isa set_active_isa(Isa isa) noexcept;

/// Human-readable name ("scalar" / "avx2") for logs and BENCH metadata.
const char* isa_name(Isa isa) noexcept;

// ---------------------------------------------------------- word kernels
// All pointers are to 64-bit word arrays of length `n` (zero-length is
// valid).  `dst` may alias `src`/`head` exactly (same pointer) or not at
// all; partial overlap is undefined.  No alignment is required, but
// 64-byte-aligned arrays (util::AlignedAllocator) take the fast unaligned
// load path without cache-line splits.

/// Σ popcount(w[i]).
std::size_t popcount_words(const std::uint64_t* w, std::size_t n) noexcept;

/// Σ popcount(a[i] & b[i]) without storing — the |V_i ∩ V| gain term.
std::size_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) noexcept;

/// dst[i] &= src[i]; returns the popcount of the result — the candidate
/// sweep's mask-extension step.
std::size_t and_inplace_popcount(std::uint64_t* dst, const std::uint64_t* src,
                                 std::size_t n) noexcept;

/// Returns Σ popcount(dst[i] & src[i]), then dst[i] &= ~src[i] — the
/// remaining-targets subtraction (V ← V − (V ∩ S)).
std::size_t andnot_inplace_removed(std::uint64_t* dst,
                                   const std::uint64_t* src,
                                   std::size_t n) noexcept;

/// Returns Σ popcount(~dst[i] & src[i]), then dst[i] |= src[i] — the
/// covered-union merge.
std::size_t or_inplace_added(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n) noexcept;

/// dst[i] = head[i] & cols[0][i] & … & cols[n_cols-1][i]; returns the
/// popcount of dst.  The fused multi-column AND of the candidate sweep's
/// skip region and the incremental planner's coverage materialization.
/// Columns are ANDed in order with an early-zero cut (results identical
/// either way — AND is monotone).  `dst` may alias `head`, never a column.
std::size_t fused_and_columns(std::uint64_t* dst, const std::uint64_t* head,
                              const std::uint64_t* const* cols,
                              std::size_t n_cols, std::size_t n_words) noexcept;

/// Σ popcount(a[idx[k]] & b[idx[k]]) over the `n_idx` word indices at
/// `idx` — the sparse gather form of and_popcount for coverages whose
/// nonzero words are already known.
std::size_t gather_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                const std::size_t* idx,
                                std::size_t n_idx) noexcept;

/// Writes the indices of the nonzero words of w[0..n) to `out` (ascending)
/// and returns how many there are.  `out` must hold n entries.
std::size_t nonzero_indices(const std::uint64_t* w, std::size_t n,
                            std::size_t* out) noexcept;

/// nonzero_indices with 32-bit output indices (n must fit; the
/// incremental planner's active lists are uint32_t).
std::size_t nonzero_indices_u32(const std::uint64_t* w, std::size_t n,
                                std::uint32_t* out) noexcept;

/// Sparse scatter-copy: zero-fills dst[0..n_words), then copies
/// dst[idx[k]] = src[idx[k]] for the n_idx listed indices — the sparse
/// coverage materialization.  dst must not alias src.
void scatter_words(std::uint64_t* dst, const std::uint64_t* src,
                   const std::size_t* idx, std::size_t n_idx,
                   std::size_t n_words) noexcept;

// --------------------------------------------------------- MoG kernels
// Strided kernels over the Gaussian-component banks (doubles at a fixed
// stride through an array-of-structs).  Both restrict themselves to
// elementwise single-operation IEEE arithmetic, so scalar and AVX2
// results are bit-identical — the property the Phase-I bit-identity
// guarantee rests on.

/// w[i*stride] *= factor for every i in [0, n) except i == skip (pass
/// n or larger to decay all) — the unmatched-component weight decay
/// w ← (1-α)w of the MoG update, one IEEE multiply per element.
void strided_weight_decay(double* w, std::size_t stride, std::size_t n,
                          double factor, std::size_t skip) noexcept;

/// First i in [0, n) with |value - means[i*stride]| <
/// band_scale * max(stddevs[i*stride], min_stddev), else SIZE_MAX — the
/// linear-metric mog_find_match scan (sub/abs/max/mul/compare only).
std::size_t strided_match_first(const double* means, const double* stddevs,
                                std::size_t stride, std::size_t n,
                                double value, double band_scale,
                                double min_stddev) noexcept;

// ------------------------------------------------------------- internals
// The dispatch table.  Exposed so the differential tests and the
// cycle-throughput bench can call a *specific* implementation regardless
// of the active level; production code uses the free functions above.
struct KernelTable {
  Isa isa = Isa::kScalar;
  std::size_t (*popcount_words)(const std::uint64_t*, std::size_t) noexcept;
  std::size_t (*and_popcount)(const std::uint64_t*, const std::uint64_t*,
                              std::size_t) noexcept;
  std::size_t (*and_inplace_popcount)(std::uint64_t*, const std::uint64_t*,
                                      std::size_t) noexcept;
  std::size_t (*andnot_inplace_removed)(std::uint64_t*, const std::uint64_t*,
                                        std::size_t) noexcept;
  std::size_t (*or_inplace_added)(std::uint64_t*, const std::uint64_t*,
                                  std::size_t) noexcept;
  std::size_t (*fused_and_columns)(std::uint64_t*, const std::uint64_t*,
                                   const std::uint64_t* const*, std::size_t,
                                   std::size_t) noexcept;
  std::size_t (*gather_and_popcount)(const std::uint64_t*,
                                     const std::uint64_t*, const std::size_t*,
                                     std::size_t) noexcept;
  std::size_t (*nonzero_indices)(const std::uint64_t*, std::size_t,
                                 std::size_t*) noexcept;
  std::size_t (*nonzero_indices_u32)(const std::uint64_t*, std::size_t,
                                     std::uint32_t*) noexcept;
  void (*scatter_words)(std::uint64_t*, const std::uint64_t*,
                        const std::size_t*, std::size_t,
                        std::size_t) noexcept;
  void (*strided_weight_decay)(double*, std::size_t, std::size_t, double,
                               std::size_t) noexcept;
  std::size_t (*strided_match_first)(const double*, const double*,
                                     std::size_t, std::size_t, double, double,
                                     double) noexcept;
};

/// The scalar table (always valid).
const KernelTable& scalar_kernels() noexcept;

/// The AVX2 table, or nullptr when this build/CPU cannot run it.
const KernelTable* avx2_kernels() noexcept;

/// Table for `isa`, clamped to detected_isa().
const KernelTable& kernels_for(Isa isa) noexcept;

}  // namespace tagwatch::util::simd
