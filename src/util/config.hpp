// Minimal key=value configuration parsing.
//
// Tagwatch allows users to pin "concerned" tags in a configuration file
// (§5): those EPCs are always scheduled in Phase II regardless of motion
// state.  The same parser also backs example/bench parameterization.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/epc.hpp"

namespace tagwatch::util {

/// Parsed `key = value` configuration.  Lines starting with '#' and blank
/// lines are ignored; whitespace around keys and values is trimmed.
class KeyValueConfig {
 public:
  /// Parses configuration text.  Throws std::invalid_argument on a
  /// malformed (non-comment, non-blank, no '=') line.
  static KeyValueConfig parse(std::string_view text);

  /// Loads and parses a file. Throws std::runtime_error if unreadable.
  static KeyValueConfig load(const std::string& path);

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  /// Splits a comma-separated value into trimmed items.
  std::vector<std::string> get_list(const std::string& key) const;

  /// Parses a comma-separated list of hex EPCs (the "concerned tags" list).
  std::vector<Epc> get_epc_list(const std::string& key) const;

  bool contains(const std::string& key) const { return values_.contains(key); }
  std::size_t size() const noexcept { return values_.size(); }

  /// Every key present, sorted — lets callers reject unknown keys with a
  /// helpful message instead of silently ignoring typos.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tagwatch::util
