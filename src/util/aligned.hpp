// Cache-line-aligned allocator for SIMD-swept word arrays.
//
// AVX2 loads are fastest (and never split a cache line) when the backing
// storage starts on a 64-byte boundary.  AlignedAllocator is a stateless
// std::allocator drop-in that over-aligns every allocation; because it is
// stateless and always-equal, vector move/swap transfer the (aligned)
// buffer pointer itself, so alignment survives move construction, swap,
// and growth reallocations alike — the property the IndicatorBitmap
// regression tests pin down.
#pragma once

#include <cstddef>
#include <new>

namespace tagwatch::util {

/// Minimal aligned allocator: every allocate() returns memory aligned to
/// `Alignment` bytes (a power of two, at least alignof(T)).
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

}  // namespace tagwatch::util
