// Circular (mod 2π) arithmetic and statistics for RF phase values.
//
// Gen2 readers report phase in [0, 2π).  Because phase lives on a circle,
// naive differences produce false "jumps" near the 0/2π boundary (§4.3 of the
// paper, "How to deal with phase jumps?").  Every phase comparison in the
// system goes through the minimum-distance helpers here.
#pragma once

#include <cmath>
#include <cstddef>
#include <numbers>

namespace tagwatch::util {

inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Wraps any angle into [0, 2π).
double wrap_to_2pi(double angle) noexcept;

/// Signed shortest angular difference a - b, in (-π, π].
double circular_signed_diff(double a, double b) noexcept;

/// Minimum circular distance |a - b| on the circle, in [0, π].
/// E.g. circular_distance(2π - 0.01, 0.02) == 0.03.
double circular_distance(double a, double b) noexcept;

/// Moves `from` a fraction `t` of the way toward `to` along the shortest arc
/// and rewraps — the circular analogue of linear interpolation, used by the
/// GMM mean update μ ← (1-ρ)μ + ρθ.
double circular_lerp(double from, double to, double t) noexcept;

/// Streaming circular mean/deviation estimator.
///
/// The mean is the argument of the resultant vector (Σe^{jθ}); the standard
/// deviation reported is the linear deviation of minimum-distance residuals
/// about that mean, which is what the paper's Gaussian immobility model
/// (Eqn. 8) computes for wrapped data.
class CircularStats {
 public:
  /// Incorporates one phase sample (radians, any range).
  void add(double angle) noexcept;

  std::size_t count() const noexcept { return n_; }

  /// Circular mean in [0, 2π). Undefined (returns 0) before any sample.
  double mean() const noexcept;

  /// Root-mean-square minimum-distance residual about the circular mean.
  double stddev() const noexcept;

  /// Mean resultant length R in [0, 1]; R→1 means tightly clustered samples.
  double resultant_length() const noexcept;

 private:
  std::size_t n_ = 0;
  double sum_cos_ = 0.0;
  double sum_sin_ = 0.0;
  double sum_sq_ = 0.0;  // running Σθ'² of unwrapped residuals via Welford pass
  // For an exact two-pass-free deviation we keep all pairwise info via the
  // resultant; stddev() uses the circular-variance identity as a fallback
  // when residual tracking is impossible, but we additionally track residuals
  // against the running mean for a closer match to Eqn. 8:
  double running_mean_ = 0.0;
  double m2_ = 0.0;  // Welford's M2 over minimum-distance residual deltas
};

}  // namespace tagwatch::util
