// Simulated-time types.
//
// The whole system runs on a discrete-event clock with microsecond
// resolution; nothing touches the wall clock, so experiments are
// deterministic and a "4-hour" trace takes milliseconds to generate.
#pragma once

#include <chrono>
#include <cstdint>

namespace tagwatch::util {

/// A point on the simulation clock (microseconds since experiment start).
using SimTime = std::chrono::microseconds;

/// A span of simulated time.
using SimDuration = std::chrono::microseconds;

constexpr SimDuration usec(std::int64_t n) { return SimDuration(n); }
constexpr SimDuration msec(std::int64_t n) { return SimDuration(n * 1000); }
constexpr SimDuration sec(std::int64_t n) { return SimDuration(n * 1'000'000); }

/// Converts a duration to fractional seconds (for rate computations).
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d.count()) / 1e6;
}

/// Converts a duration to fractional milliseconds (for table output).
constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d.count()) / 1e3;
}

/// Converts fractional seconds to a SimDuration (rounds to microseconds).
constexpr SimDuration from_seconds(double s) {
  return SimDuration(static_cast<std::int64_t>(s * 1e6));
}

}  // namespace tagwatch::util
