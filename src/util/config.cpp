#include "util/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tagwatch::util {

namespace {

std::string trim(std::string_view s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string_view::npos) return {};
  const auto end = s.find_last_not_of(" \t\r\n");
  return std::string(s.substr(begin, end - begin + 1));
}

}  // namespace

KeyValueConfig KeyValueConfig::parse(std::string_view text) {
  KeyValueConfig cfg;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("KeyValueConfig: missing '=' on line " +
                                  std::to_string(line_no));
    }
    cfg.values_[trim(trimmed.substr(0, eq))] = trim(trimmed.substr(eq + 1));
  }
  return cfg;
}

KeyValueConfig KeyValueConfig::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("KeyValueConfig: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::optional<std::string> KeyValueConfig::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string KeyValueConfig::get_or(const std::string& key,
                                   std::string fallback) const {
  return get(key).value_or(std::move(fallback));
}

double KeyValueConfig::get_double_or(const std::string& key,
                                     double fallback) const {
  const auto v = get(key);
  return v ? std::stod(*v) : fallback;
}

std::int64_t KeyValueConfig::get_int_or(const std::string& key,
                                        std::int64_t fallback) const {
  const auto v = get(key);
  return v ? std::stoll(*v) : fallback;
}

bool KeyValueConfig::get_bool_or(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("KeyValueConfig: bad boolean for " + key);
}

std::vector<std::string> KeyValueConfig::get_list(
    const std::string& key) const {
  std::vector<std::string> out;
  const auto v = get(key);
  if (!v) return out;
  std::size_t pos = 0;
  while (pos <= v->size()) {
    const auto comma = v->find(',', pos);
    const auto piece =
        v->substr(pos, comma == std::string::npos ? v->size() - pos
                                                  : comma - pos);
    const std::string item = trim(piece);
    if (!item.empty()) out.push_back(item);
    pos = comma == std::string::npos ? v->size() + 1 : comma + 1;
  }
  return out;
}

std::vector<std::string> KeyValueConfig::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) {
    (void)value;
    out.push_back(key);
  }
  return out;
}

std::vector<Epc> KeyValueConfig::get_epc_list(const std::string& key) const {
  std::vector<Epc> out;
  for (const auto& hex : get_list(key)) {
    out.push_back(Epc::from_hex(hex));
  }
  return out;
}

}  // namespace tagwatch::util
