// Arbitrary-length bit strings with Gen2-style MSB-first bit addressing.
//
// EPC Gen2 addresses tag memory by bit: `Pointer` is the index of the first
// bit (0 = most significant bit of the bank) and `Length` counts bits.  Both
// tag EPCs and Select masks are therefore modeled as BitString values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tagwatch::util {

/// A fixed-length sequence of bits with MSB-first addressing (bit 0 is the
/// most significant bit), mirroring EPC Gen2 memory-bank addressing.
///
/// BitString is a regular value type: copyable, comparable, hashable.
class BitString {
 public:
  /// Creates an empty (zero-length) bit string.
  BitString() = default;

  /// Creates a bit string of `length` bits, all zero.
  explicit BitString(std::size_t length);

  /// Creates a bit string from the low `length` bits of `value`,
  /// most-significant-first (so BitString(0b101, 3) == "101").
  BitString(std::uint64_t value, std::size_t length);

  /// Parses a string of '0'/'1' characters, e.g. "001110".
  /// Throws std::invalid_argument on any other character.
  static BitString from_binary(std::string_view bits);

  /// Parses a hexadecimal string (no prefix), 4 bits per digit,
  /// e.g. "3000AB" -> 24 bits. Throws std::invalid_argument on bad digits.
  static BitString from_hex(std::string_view hex);

  /// Number of bits.
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Returns bit `i` (0 = MSB). Precondition: i < size().
  bool bit(std::size_t i) const;

  /// Sets bit `i` (0 = MSB). Precondition: i < size().
  void set_bit(std::size_t i, bool value);

  /// Extracts `length` bits starting at bit `pointer` as a new BitString.
  /// Precondition: pointer + length <= size().
  BitString substring(std::size_t pointer, std::size_t length) const;

  /// True iff the `mask.size()` bits of `*this` starting at `pointer`
  /// exist and equal `mask` — the Gen2 Select match rule.
  bool matches(std::size_t pointer, const BitString& mask) const;

  /// Interprets the whole string as an unsigned big-endian integer.
  /// Precondition: size() <= 64.
  std::uint64_t to_uint64() const;

  /// Renders as '0'/'1' characters, MSB first.
  std::string to_binary_string() const;

  /// Renders as uppercase hex; size() must be a multiple of 4.
  std::string to_hex_string() const;

  friend bool operator==(const BitString&, const BitString&) = default;

  /// Lexicographic comparison (shorter strings compare by prefix then size).
  std::strong_ordering operator<=>(const BitString& other) const;

  /// FNV-1a style hash over length and payload bits.
  std::size_t hash() const noexcept;

 private:
  static std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }

  std::size_t size_ = 0;
  // Bit i lives in words_[i / 64], at bit position (63 - i % 64): word 0 holds
  // the most significant 64 bits, left-aligned.
  std::vector<std::uint64_t> words_;
};

}  // namespace tagwatch::util

template <>
struct std::hash<tagwatch::util::BitString> {
  std::size_t operator()(const tagwatch::util::BitString& b) const noexcept {
    return b.hash();
  }
};
