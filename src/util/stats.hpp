// Summary statistics used by the benchmark harnesses and evaluation code.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace tagwatch::util {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n), matching Eqn. 8 in the paper.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Pools another accumulator's samples into this one.
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) of `samples` by linear interpolation
/// between order statistics.  Copies and sorts; fine for bench-sized data.
double percentile(std::vector<double> samples, double q);

/// Median shorthand.
inline double median(std::vector<double> samples) {
  return percentile(std::move(samples), 0.5);
}

/// One (x, F(x)) point of an empirical CDF.
struct CdfPoint {
  double value;
  double cumulative_fraction;
};

/// Builds an empirical CDF with at most `max_points` evenly spaced points
/// (all points if the sample is small).
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t max_points = 100);

/// Fixed-width bin histogram over [lo, hi).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds a sample; values outside [lo, hi) clamp into the edge bins.
  void add(double x) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  /// Center value of a bin.
  double bin_center(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Formats `value` with `decimals` fractional digits (bench table output).
std::string format_fixed(double value, int decimals);

/// Jain's fairness index (Σx)²/(n·Σx²) over non-negative allocations:
/// 1 = perfectly equal, 1/n = one party takes everything.
/// Precondition: at least one value > 0.
double jain_fairness(std::span<const double> values);

}  // namespace tagwatch::util
