// Injectable host-clock hook.
//
// Everything on the *simulation* timeline runs on util::SimTime and is
// deterministic by construction.  A few places legitimately measure *host*
// wall time — per-sink dispatch latency in the reading pipeline, the
// scheduler's compute budget (Fig. 17) — and those reads must not leak raw
// std::chrono clocks into journaled code paths (tagwatch_lint rule
// `determinism`).  WallClock is the seam: production code uses the
// steady_clock-backed system() singleton, tests inject a FakeWallClock and
// assert latency accounting exactly.
#pragma once

namespace tagwatch::util {

/// Monotonic host-time source, in fractional seconds from an arbitrary
/// epoch.  Implementations must be monotonic but need not be steady in
/// rate (fakes advance manually).
class WallClock {
 public:
  WallClock() = default;
  WallClock(const WallClock&) = delete;
  WallClock& operator=(const WallClock&) = delete;
  virtual ~WallClock() = default;

  /// Current host time in seconds.
  virtual double now_seconds() = 0;

  /// The process-wide default clock (std::chrono::steady_clock).
  static WallClock& system();
};

/// Manually-driven clock for tests.  Each now_seconds() call returns the
/// current time, then advances it by `auto_step` — so a code path that
/// brackets a region with two reads observes exactly `auto_step` seconds
/// per region, making latency accounting assertable to the last digit.
class FakeWallClock final : public WallClock {
 public:
  explicit FakeWallClock(double auto_step = 0.0) : auto_step_(auto_step) {}

  double now_seconds() override {
    const double t = now_;
    now_ += auto_step_;
    return t;
  }

  /// Moves the clock forward without a read.
  void advance(double seconds) { now_ += seconds; }

  /// The time the next now_seconds() call will return.
  double peek() const { return now_; }

 private:
  double now_ = 0.0;
  double auto_step_ = 0.0;
};

}  // namespace tagwatch::util
