// 3-D points/vectors for antenna and tag placement.
#pragma once

#include <cmath>

namespace tagwatch::util {

/// A 3-D point or displacement in meters.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  friend constexpr Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr Vec3 operator*(Vec3 a, double s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a * s; }
  friend constexpr bool operator==(Vec3, Vec3) = default;

  double norm() const { return std::sqrt(x * x + y * y + z * z); }
};

/// Euclidean distance in meters.
inline double distance(Vec3 a, Vec3 b) { return (a - b).norm(); }

}  // namespace tagwatch::util
