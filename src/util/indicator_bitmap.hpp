// Indicator bitmaps for the bitmask-selection index table (§5.3, Fig. 10).
//
// One bit per tag in the scene; bit i is set when the associated bitmask
// covers tag i.  The greedy set-cover search needs fast AND-popcount and
// subtraction, so the bitmap packs bits into 64-bit words and every
// mutating operation runs word-parallel.  The population count is cached
// incrementally: each mutator folds the popcount delta of the words it
// touches into the cache, making count() O(1) — the candidate sweep and
// the lazy-greedy heap both query it on every step.  The word array lives
// in 64-byte-aligned storage so the SIMD kernels' 256-bit loads never
// split a cache line; the bulk operations dispatch through util::simd.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/aligned.hpp"

namespace tagwatch::util {

/// Fixed-size bitset over the tags currently in the scene.
class IndicatorBitmap {
 public:
  IndicatorBitmap() = default;

  /// Creates an all-zero bitmap over `size` tags.
  explicit IndicatorBitmap(std::size_t size);

  std::size_t size() const noexcept { return size_; }

  bool test(std::size_t i) const;
  void set(std::size_t i, bool value = true);

  /// Number of 64-bit words backing the bitmap.
  std::size_t word_count() const noexcept { return words_.size(); }

  /// Word `i` of the backing array (tag 64·i is its lowest bit).
  /// Precondition: i < word_count().
  std::uint64_t word(std::size_t i) const noexcept { return words_[i]; }

  /// The backing word array (word_count() words) for bulk readers — lets
  /// hot loops hoist the pointer instead of re-resolving it per word.
  /// Always 64-byte aligned (AlignedAllocator), including after move,
  /// swap, and resize.
  const std::uint64_t* word_data() const noexcept { return words_.data(); }

  /// Mutable overload for bulk writers that maintain the count invariant
  /// themselves (the trusted assign_words overloads document the
  /// contract); prefer the const overload everywhere else.
  std::uint64_t* word_data() noexcept { return words_.data(); }

  /// Replaces word `i` wholesale, keeping the cached popcount exact.  Bits
  /// past size_ in the tail word are masked off so word-wise hash/==/
  /// and_count never see garbage.  Throws std::out_of_range on a bad index.
  void set_word(std::size_t i, std::uint64_t value);

  /// Rebuilds the bitmap as `size` bits copied from the ⌈size/64⌉ words at
  /// `words` (tail bits masked, popcount recomputed) — the bulk
  /// materialization step of the candidate sweep.  `words` may alias the
  /// bitmap's own backing array (all three assign overloads detect
  /// self-assignment and keep the cached popcount exact instead of
  /// copying through a vector::assign whose source they are clobbering).
  void assign_words(std::size_t size, const std::uint64_t* words);

  /// assign_words with a caller-supplied popcount of the source words.
  /// Precondition: `count` is exact and bits past `size` are already zero
  /// (the candidate sweep maintains both invariants); violating either
  /// corrupts the count()/== cache.
  void assign_words(std::size_t size, const std::uint64_t* words,
                    std::size_t count);

  /// Sparse assign_words: zero-fills, then copies only `words[idx]` for the
  /// `n_idx` indices at `idx` — the materialization step for coverages with
  /// few nonzero words.  Preconditions as for the trusted assign_words,
  /// plus: `idx` lists (at least) every nonzero word index, ascending.
  void assign_words_sparse(std::size_t size, const std::uint64_t* words,
                           const std::size_t* idx, std::size_t n_idx,
                           std::size_t count);

  /// Clears every bit.
  void clear();

  /// Number of set bits.  O(1): maintained incrementally by every mutator.
  std::size_t count() const noexcept { return count_; }
  bool any() const noexcept { return count_ > 0; }
  bool none() const noexcept { return count_ == 0; }

  /// Sets every bit (the candidate sweep's "start from all tags" state).
  void fill();

  /// Popcount of (*this & other) — the |V_i & V| term of the relative gain
  /// (Eqn. 13).  Precondition: same size.
  std::size_t and_count(const IndicatorBitmap& other) const;

  /// In-place intersection: one pass that ANDs word-by-word and refreshes
  /// the cached popcount — the candidate sweep's mask-extension step.
  /// Precondition: same size.
  void and_with(const IndicatorBitmap& other);

  /// Clears every bit that is set in `other`: V ← V − (V & other), the
  /// input-bitmap update of the greedy search (Step 3).
  void subtract(const IndicatorBitmap& other);

  /// In-place union.  Precondition: same size.
  void merge(const IndicatorBitmap& other);

  friend bool operator==(const IndicatorBitmap&,
                         const IndicatorBitmap&) = default;

  /// Renders as '0'/'1' characters, tag 0 first (diagnostics).
  std::string to_string() const;

  /// FNV-1a over the word array (and the size), for coverage dedup.
  std::size_t hash() const noexcept;

 private:
  void check_same_size(const IndicatorBitmap& other) const;

  std::size_t size_ = 0;
  /// Cached popcount of words_.  Invariant: always exact, so the defaulted
  /// operator== (which compares it alongside words_) stays consistent.
  std::size_t count_ = 0;
  std::vector<std::uint64_t, AlignedAllocator<std::uint64_t>> words_;
};

}  // namespace tagwatch::util

template <>
struct std::hash<tagwatch::util::IndicatorBitmap> {
  std::size_t operator()(
      const tagwatch::util::IndicatorBitmap& b) const noexcept {
    return b.hash();
  }
};
