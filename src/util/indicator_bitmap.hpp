// Indicator bitmaps for the bitmask-selection index table (§5.3, Fig. 10).
//
// One bit per tag in the scene; bit i is set when the associated bitmask
// covers tag i.  The greedy set-cover search needs fast AND-popcount and
// subtraction, so the bitmap packs bits into 64-bit words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tagwatch::util {

/// Fixed-size bitset over the tags currently in the scene.
class IndicatorBitmap {
 public:
  IndicatorBitmap() = default;

  /// Creates an all-zero bitmap over `size` tags.
  explicit IndicatorBitmap(std::size_t size);

  std::size_t size() const noexcept { return size_; }

  bool test(std::size_t i) const;
  void set(std::size_t i, bool value = true);

  /// Number of set bits.
  std::size_t count() const noexcept;
  bool any() const noexcept { return count() > 0; }
  bool none() const noexcept { return !any(); }

  /// Popcount of (*this & other) — the |V_i & V| term of the relative gain
  /// (Eqn. 13).  Precondition: same size.
  std::size_t and_count(const IndicatorBitmap& other) const;

  /// Clears every bit that is set in `other`: V ← V − (V & other), the
  /// input-bitmap update of the greedy search (Step 3).
  void subtract(const IndicatorBitmap& other);

  /// In-place union.  Precondition: same size.
  void merge(const IndicatorBitmap& other);

  friend bool operator==(const IndicatorBitmap&,
                         const IndicatorBitmap&) = default;

  /// Renders as '0'/'1' characters, tag 0 first (diagnostics).
  std::string to_string() const;

  std::size_t hash() const noexcept;

 private:
  void check_same_size(const IndicatorBitmap& other) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tagwatch::util

template <>
struct std::hash<tagwatch::util::IndicatorBitmap> {
  std::size_t operator()(
      const tagwatch::util::IndicatorBitmap& b) const noexcept {
    return b.hash();
  }
};
