#include "util/indicator_bitmap.hpp"

#include <bit>
#include <stdexcept>

#include "util/simd.hpp"

namespace tagwatch::util {

IndicatorBitmap::IndicatorBitmap(std::size_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

bool IndicatorBitmap::test(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("IndicatorBitmap::test");
  return ((words_[i / 64] >> (i % 64)) & 1u) != 0;
}

void IndicatorBitmap::set(std::size_t i, bool value) {
  if (i >= size_) throw std::out_of_range("IndicatorBitmap::set");
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  const bool was_set = (words_[i / 64] & mask) != 0;
  if (value) {
    words_[i / 64] |= mask;
    if (!was_set) ++count_;
  } else {
    words_[i / 64] &= ~mask;
    if (was_set) --count_;
  }
}

void IndicatorBitmap::set_word(std::size_t i, std::uint64_t value) {
  if (i >= words_.size()) throw std::out_of_range("IndicatorBitmap::set_word");
  const std::size_t tail = size_ % 64;
  if (tail != 0 && i + 1 == words_.size()) {
    value &= (std::uint64_t{1} << tail) - 1;
  }
  count_ += static_cast<std::size_t>(std::popcount(value));
  count_ -= static_cast<std::size_t>(std::popcount(words_[i]));
  words_[i] = value;
}

void IndicatorBitmap::assign_words(std::size_t size,
                                   const std::uint64_t* words) {
  const std::size_t n_words = (size + 63) / 64;
  if (words == words_.data()) {
    // Self-assign: the source range overlaps the destination, and
    // vector::assign from internal iterators is UB once it reallocates.
    // The bits are already in place — only the size/tail/count change.
    words_.resize(n_words);
  } else {
    words_.assign(words, words + n_words);
  }
  size_ = size;
  const std::size_t tail = size_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
  count_ = simd::popcount_words(words_.data(), words_.size());
}

void IndicatorBitmap::assign_words(std::size_t size,
                                   const std::uint64_t* words,
                                   std::size_t count) {
  if (words == words_.data()) {
    words_.resize((size + 63) / 64);
  } else {
    words_.assign(words, words + (size + 63) / 64);
  }
  size_ = size;
  count_ = count;
}

void IndicatorBitmap::assign_words_sparse(std::size_t size,
                                          const std::uint64_t* words,
                                          const std::size_t* idx,
                                          std::size_t n_idx,
                                          std::size_t count) {
  const std::size_t n_words = (size + 63) / 64;
  if (words == words_.data()) {
    // Self-assign: zero-filling first would destroy the source words the
    // idx list still has to read (the cached popcount then silently
    // drifts from the actual bits).  Keep the listed words, zero the rest.
    words_.resize(n_words, 0);
    std::size_t k = 0;
    for (std::size_t i = 0; i < n_words; ++i) {
      if (k < n_idx && idx[k] == i) {
        ++k;
      } else {
        words_[i] = 0;
      }
    }
  } else {
    words_.resize(n_words);
    simd::scatter_words(words_.data(), words, idx, n_idx, n_words);
  }
  size_ = size;
  count_ = count;
}

void IndicatorBitmap::clear() {
  for (auto& w : words_) w = 0;
  count_ = 0;
}

void IndicatorBitmap::fill() {
  if (words_.empty()) return;
  for (auto& w : words_) w = ~std::uint64_t{0};
  // Keep the bits past size_ clear so word-wise hash/==/and_count never
  // see tail garbage.
  const std::size_t tail = size_ % 64;
  if (tail != 0) {
    words_.back() = (std::uint64_t{1} << tail) - 1;
  }
  count_ = size_;
}

std::size_t IndicatorBitmap::and_count(const IndicatorBitmap& other) const {
  check_same_size(other);
  return simd::and_popcount(words_.data(), other.words_.data(),
                            words_.size());
}

void IndicatorBitmap::and_with(const IndicatorBitmap& other) {
  check_same_size(other);
  count_ = simd::and_inplace_popcount(words_.data(), other.words_.data(),
                                      words_.size());
}

void IndicatorBitmap::subtract(const IndicatorBitmap& other) {
  check_same_size(other);
  count_ -= simd::andnot_inplace_removed(words_.data(), other.words_.data(),
                                         words_.size());
}

void IndicatorBitmap::merge(const IndicatorBitmap& other) {
  check_same_size(other);
  count_ += simd::or_inplace_added(words_.data(), other.words_.data(),
                                   words_.size());
}

std::string IndicatorBitmap::to_string() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (test(i)) out[i] = '1';
  }
  return out;
}

std::size_t IndicatorBitmap::hash() const noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(size_);
  for (const auto w : words_) mix(w);
  return static_cast<std::size_t>(h);
}

void IndicatorBitmap::check_same_size(const IndicatorBitmap& other) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("IndicatorBitmap: size mismatch");
  }
}

}  // namespace tagwatch::util
