#include "util/indicator_bitmap.hpp"

#include <bit>
#include <stdexcept>

namespace tagwatch::util {

IndicatorBitmap::IndicatorBitmap(std::size_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

bool IndicatorBitmap::test(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("IndicatorBitmap::test");
  return ((words_[i / 64] >> (i % 64)) & 1u) != 0;
}

void IndicatorBitmap::set(std::size_t i, bool value) {
  if (i >= size_) throw std::out_of_range("IndicatorBitmap::set");
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  if (value) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

std::size_t IndicatorBitmap::count() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

std::size_t IndicatorBitmap::and_count(const IndicatorBitmap& other) const {
  check_same_size(other);
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total +=
        static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return total;
}

void IndicatorBitmap::subtract(const IndicatorBitmap& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
}

void IndicatorBitmap::merge(const IndicatorBitmap& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

std::string IndicatorBitmap::to_string() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (test(i)) out[i] = '1';
  }
  return out;
}

std::size_t IndicatorBitmap::hash() const noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(size_);
  for (const auto w : words_) mix(w);
  return static_cast<std::size_t>(h);
}

void IndicatorBitmap::check_same_size(const IndicatorBitmap& other) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("IndicatorBitmap: size mismatch");
  }
}

}  // namespace tagwatch::util
