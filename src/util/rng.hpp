// Deterministic pseudo-random source shared by simulator components.
#pragma once

#include <cstdint>
#include <random>

namespace tagwatch::util {

/// Seedable random number generator wrapping std::mt19937_64 with the
/// distributions the simulator needs.  Every stochastic component takes an
/// Rng& so whole experiments replay bit-identically from one seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n) — e.g. a Gen2 slot counter draw for frame
  /// length n.
  std::uint32_t below(std::uint32_t n) {
    return n <= 1 ? 0u
                  : std::uniform_int_distribution<std::uint32_t>(
                        0, n - 1)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Exponential inter-arrival time with the given rate (events per unit).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Derives an independent child generator; use to give subsystems their
  /// own streams so adding draws in one does not perturb another.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tagwatch::util
