#include "util/task_pool.hpp"

#include <algorithm>

namespace tagwatch::util {

TaskPool::TaskPool(std::size_t threads)
    : thread_count_(std::max<std::size_t>(threads, 1)) {
  workers_.reserve(thread_count_ - 1);
  for (std::size_t w = 1; w < thread_count_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void TaskPool::run_slice(std::size_t executor) {
  for (std::size_t i = executor; i < tasks_; i += thread_count_) {
    try {
      (*fn_)(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void TaskPool::worker_main(std::size_t executor) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_slice(executor);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++workers_done_;
    }
    done_cv_.notify_one();
  }
}

void TaskPool::run(std::size_t tasks,
                   const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (thread_count_ == 1) {
    // Inline degenerate mode: no handoff, exceptions propagate directly.
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_ = tasks;
    fn_ = &fn;
    workers_done_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_slice(0);  // The caller is executor 0.
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return workers_done_ == thread_count_ - 1; });
    fn_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace tagwatch::util
