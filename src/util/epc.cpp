#include "util/epc.hpp"

#include "util/rng.hpp"

namespace tagwatch::util {

Epc Epc::from_serial(std::uint64_t serial, std::size_t length) {
  BitString bits(length);
  const std::size_t low = std::min<std::size_t>(length, 64);
  for (std::size_t i = 0; i < low; ++i) {
    bits.set_bit(length - 1 - i, ((serial >> i) & 1u) != 0);
  }
  return Epc(bits);
}

Epc Epc::random(Rng& rng, std::size_t length) {
  BitString bits(length);
  for (std::size_t i = 0; i < length; ++i) {
    bits.set_bit(i, rng.chance(0.5));
  }
  return Epc(bits);
}

}  // namespace tagwatch::util
