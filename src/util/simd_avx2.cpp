// AVX2 kernel table (see simd.hpp for the dispatch contract).
//
// The one file in the tree allowed to touch raw vector intrinsics (the
// simd-discipline lint rule pins them here).  Every kernel is compiled
// with a per-function target("avx2") attribute instead of a file-level
// -mavx2 flag, so this TU links into any build and the CPUID probe in
// avx2_kernels() decides at runtime whether the table is usable.
//
// Bit-identity with the scalar kernels is by construction: the word
// kernels are integer AND/OR/ANDNOT plus a nibble-LUT popcount (exact),
// and the two double kernels evaluate the same elementwise IEEE
// expressions lane-parallel with no reassociation.  test_simd.cpp fuzzes
// every kernel against its scalar twin at adversarial widths.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include <algorithm>
#include <bit>

#include "util/simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

namespace tagwatch::util::simd {

namespace {

#define TAGWATCH_AVX2 __attribute__((target("avx2")))

/// Per-64-bit-lane popcount of v: nibble-LUT shuffle (vpshufb) for the
/// per-byte counts, then vpsadbw folds each 8-byte group into its lane.
TAGWATCH_AVX2 inline __m256i popcount_epi64(__m256i v) noexcept {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

/// Horizontal sum of the four 64-bit lanes.
TAGWATCH_AVX2 inline std::uint64_t hsum_epi64(__m256i v) noexcept {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

TAGWATCH_AVX2 std::size_t avx2_popcount_words(const std::uint64_t* w,
                                              std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(v));
  }
  std::size_t total = static_cast<std::size_t>(hsum_epi64(acc));
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return total;
}

TAGWATCH_AVX2 std::size_t avx2_and_popcount(const std::uint64_t* a,
                                            const std::uint64_t* b,
                                            std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(acc, popcount_epi64(v));
  }
  std::size_t total = static_cast<std::size_t>(hsum_epi64(acc));
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

TAGWATCH_AVX2 std::size_t avx2_and_inplace_popcount(std::uint64_t* dst,
                                                    const std::uint64_t* src,
                                                    std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    acc = _mm256_add_epi64(acc, popcount_epi64(v));
  }
  std::size_t total = static_cast<std::size_t>(hsum_epi64(acc));
  for (; i < n; ++i) {
    const std::uint64_t v = dst[i] & src[i];
    dst[i] = v;
    total += static_cast<std::size_t>(std::popcount(v));
  }
  return total;
}

TAGWATCH_AVX2 std::size_t avx2_andnot_inplace_removed(std::uint64_t* dst,
                                                      const std::uint64_t* src,
                                                      std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_and_si256(d, s)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  std::size_t removed = static_cast<std::size_t>(hsum_epi64(acc));
  for (; i < n; ++i) {
    removed += static_cast<std::size_t>(std::popcount(dst[i] & src[i]));
    dst[i] &= ~src[i];
  }
  return removed;
}

TAGWATCH_AVX2 std::size_t avx2_or_inplace_added(std::uint64_t* dst,
                                                const std::uint64_t* src,
                                                std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_andnot_si256(d, s)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  std::size_t added = static_cast<std::size_t>(hsum_epi64(acc));
  for (; i < n; ++i) {
    added += static_cast<std::size_t>(std::popcount(~dst[i] & src[i]));
    dst[i] |= src[i];
  }
  return added;
}

TAGWATCH_AVX2 std::size_t avx2_fused_and_columns(
    std::uint64_t* dst, const std::uint64_t* head,
    const std::uint64_t* const* cols, std::size_t n_cols,
    std::size_t n_words) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n_words; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(head + i));
    // Once the whole block is zero no later column can revive it.
    for (std::size_t c = 0; c < n_cols; ++c) {
      if (_mm256_testz_si256(v, v) != 0) break;
      v = _mm256_and_si256(
          v, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(cols[c] + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    acc = _mm256_add_epi64(acc, popcount_epi64(v));
  }
  std::size_t total = static_cast<std::size_t>(hsum_epi64(acc));
  for (; i < n_words; ++i) {
    std::uint64_t v = head[i];
    for (std::size_t c = 0; c < n_cols && v != 0; ++c) v &= cols[c][i];
    dst[i] = v;
    total += static_cast<std::size_t>(std::popcount(v));
  }
  return total;
}

TAGWATCH_AVX2 std::size_t avx2_gather_and_popcount(const std::uint64_t* a,
                                                   const std::uint64_t* b,
                                                   const std::size_t* idx,
                                                   std::size_t n_idx) noexcept {
  static_assert(sizeof(std::size_t) == sizeof(std::int64_t));
  __m256i acc = _mm256_setzero_si256();
  std::size_t k = 0;
  for (; k + 4 <= n_idx; k += 4) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
    const __m256i va = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(a), vi, 8);
    const __m256i vb = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(b), vi, 8);
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_and_si256(va, vb)));
  }
  std::size_t total = static_cast<std::size_t>(hsum_epi64(acc));
  for (; k < n_idx; ++k) {
    total += static_cast<std::size_t>(std::popcount(a[idx[k]] & b[idx[k]]));
  }
  return total;
}

TAGWATCH_AVX2 std::size_t avx2_nonzero_indices(const std::uint64_t* w,
                                               std::size_t n,
                                               std::size_t* out) noexcept {
  std::size_t m = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    // All-zero blocks — the common case in narrowed coverages — skip in
    // one test; mixed blocks fall back to a per-word scan.
    if (_mm256_testz_si256(v, v) != 0) continue;
    for (std::size_t j = i; j < i + 4; ++j) {
      if (w[j] != 0) out[m++] = j;
    }
  }
  for (; i < n; ++i) {
    if (w[i] != 0) out[m++] = i;
  }
  return m;
}

TAGWATCH_AVX2 std::size_t avx2_nonzero_indices_u32(const std::uint64_t* w,
                                                   std::size_t n,
                                                   std::uint32_t* out) noexcept {
  std::size_t m = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    if (_mm256_testz_si256(v, v) != 0) continue;
    for (std::size_t j = i; j < i + 4; ++j) {
      if (w[j] != 0) out[m++] = static_cast<std::uint32_t>(j);
    }
  }
  for (; i < n; ++i) {
    if (w[i] != 0) out[m++] = static_cast<std::uint32_t>(i);
  }
  return m;
}

TAGWATCH_AVX2 void avx2_scatter_words(std::uint64_t* dst,
                                      const std::uint64_t* src,
                                      const std::size_t* idx,
                                      std::size_t n_idx,
                                      std::size_t n_words) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n_words; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), zero);
  }
  for (; i < n_words; ++i) dst[i] = 0;
  // AVX2 has no scatter instruction; the listed copies stay scalar.
  for (std::size_t k = 0; k < n_idx; ++k) dst[idx[k]] = src[idx[k]];
}

TAGWATCH_AVX2 void avx2_strided_weight_decay(double* w, std::size_t stride,
                                             std::size_t n, double factor,
                                             std::size_t skip) noexcept {
  if (stride < 4) {
    // The vector path loads a full 4-double group per element; a narrower
    // stride has no such group, so decay stays scalar (identical math).
    for (std::size_t i = 0; i < n; ++i) {
      if (i == skip) continue;
      w[i * stride] = factor * w[i * stride];
    }
    return;
  }
  const __m256d vfactor = _mm256_set1_pd(factor);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == skip) continue;
    double* p = w + i * stride;
    // One component group per vector: multiply lane 0 (the weight) and
    // blend lanes 1..3 back bit-exact — a multiply must never touch the
    // neighboring fields (lane 3 can be a size_t bit pattern).
    const __m256d v = _mm256_loadu_pd(p);
    _mm256_storeu_pd(p, _mm256_blend_pd(v, _mm256_mul_pd(v, vfactor), 0x1));
  }
}

TAGWATCH_AVX2 std::size_t avx2_strided_match_first(
    const double* means, const double* stddevs, std::size_t stride,
    std::size_t n, double value, double band_scale,
    double min_stddev) noexcept {
  const __m256d vvalue = _mm256_set1_pd(value);
  const __m256d vscale = _mm256_set1_pd(band_scale);
  const __m256d vmin = _mm256_set1_pd(min_stddev);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const std::int64_t s = static_cast<std::int64_t>(stride);
  const __m256i vstride = _mm256_setr_epi64x(0, s, 2 * s, 3 * s);
  const __m256i lane_id = _mm256_setr_epi64x(0, 1, 2, 3);
  for (std::size_t base = 0; base < n; base += 4) {
    const std::size_t lanes = std::min<std::size_t>(4, n - base);
    // Lane-valid mask keeps tail gathers in bounds and tail lanes out of
    // the match mask.
    const __m256i valid = _mm256_cmpgt_epi64(
        _mm256_set1_epi64x(static_cast<std::int64_t>(lanes)), lane_id);
    const __m256d vmask = _mm256_castsi256_pd(valid);
    const __m256d mean = _mm256_mask_i64gather_pd(
        _mm256_setzero_pd(), means + base * stride, vstride, vmask, 8);
    const __m256d sd = _mm256_mask_i64gather_pd(
        _mm256_setzero_pd(), stddevs + base * stride, vstride, vmask, 8);
    // Same elementwise expression as the scalar kernel:
    // |value - mean| < band_scale * max(stddev, min_stddev).
    const __m256d sigma = _mm256_max_pd(sd, vmin);
    const __m256d band = _mm256_mul_pd(vscale, sigma);
    const __m256d diff =
        _mm256_andnot_pd(sign_mask, _mm256_sub_pd(vvalue, mean));
    const __m256d lt = _mm256_cmp_pd(diff, band, _CMP_LT_OQ);
    const unsigned hits = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_and_pd(lt, vmask)));
    if (hits != 0) {
      return base + static_cast<std::size_t>(std::countr_zero(hits));
    }
  }
  return static_cast<std::size_t>(-1);
}

#undef TAGWATCH_AVX2

constexpr KernelTable kAvx2Table = {
    Isa::kAvx2,
    &avx2_popcount_words,
    &avx2_and_popcount,
    &avx2_and_inplace_popcount,
    &avx2_andnot_inplace_removed,
    &avx2_or_inplace_added,
    &avx2_fused_and_columns,
    &avx2_gather_and_popcount,
    &avx2_nonzero_indices,
    &avx2_nonzero_indices_u32,
    &avx2_scatter_words,
    &avx2_strided_weight_decay,
    &avx2_strided_match_first,
};

}  // namespace

const KernelTable* avx2_kernels() noexcept {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported ? &kAvx2Table : nullptr;
}

}  // namespace tagwatch::util::simd

#else  // non-x86 or non-GNU toolchain: no AVX2 table.

namespace tagwatch::util::simd {

const KernelTable* avx2_kernels() noexcept { return nullptr; }

}  // namespace tagwatch::util::simd

#endif
