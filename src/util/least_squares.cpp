#include "util/least_squares.hpp"

#include <cmath>
#include <stdexcept>

namespace tagwatch::util {

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_line: need matching samples, n >= 2");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    throw std::invalid_argument("fit_line: degenerate x values");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double mean_y = sy / n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.intercept + fit.slope * xs[i];
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace tagwatch::util
