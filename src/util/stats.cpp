#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tagwatch::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile: q out of range");
  }
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t max_points) {
  std::vector<CdfPoint> out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const std::size_t points = std::min(max_points, n);
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Evenly spaced indices that always include the final order statistic.
    const std::size_t idx =
        (points == 1) ? n - 1 : (i * (n - 1)) / (points - 1);
    out.push_back({samples[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin =
      static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

double jain_fairness(std::span<const double> values) {
  double sum = 0.0, sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (values.empty() || sum_sq <= 0.0) {
    throw std::invalid_argument("jain_fairness: need a positive value");
  }
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace tagwatch::util
