#include "util/bitstring.hpp"

#include <cctype>
#include <stdexcept>

namespace tagwatch::util {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

BitString::BitString(std::size_t length)
    : size_(length), words_(word_count(length), 0) {}

BitString::BitString(std::uint64_t value, std::size_t length)
    : BitString(length) {
  if (length > 64) throw std::invalid_argument("BitString(value): length > 64");
  for (std::size_t i = 0; i < length; ++i) {
    set_bit(i, ((value >> (length - 1 - i)) & 1u) != 0);
  }
}

BitString BitString::from_binary(std::string_view bits) {
  BitString out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      out.set_bit(i, true);
    } else if (bits[i] != '0') {
      throw std::invalid_argument("BitString::from_binary: bad character");
    }
  }
  return out;
}

BitString BitString::from_hex(std::string_view hex) {
  BitString out(hex.size() * 4);
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const int d = hex_digit(hex[i]);
    if (d < 0) throw std::invalid_argument("BitString::from_hex: bad digit");
    for (std::size_t b = 0; b < 4; ++b) {
      out.set_bit(i * 4 + b, ((d >> (3 - b)) & 1) != 0);
    }
  }
  return out;
}

bool BitString::bit(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitString::bit");
  return ((words_[i / 64] >> (63 - i % 64)) & 1u) != 0;
}

void BitString::set_bit(std::size_t i, bool value) {
  if (i >= size_) throw std::out_of_range("BitString::set_bit");
  const std::uint64_t mask = std::uint64_t{1} << (63 - i % 64);
  if (value) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

BitString BitString::substring(std::size_t pointer, std::size_t length) const {
  if (pointer + length > size_) throw std::out_of_range("BitString::substring");
  BitString out(length);
  // Word-parallel extraction: output word j is input bits
  // [pointer + 64j, pointer + 64j + 64), i.e. two left-aligned source words
  // stitched at a shift that is constant across j.
  const std::size_t shift = pointer % 64;
  for (std::size_t j = 0; j < out.words_.size(); ++j) {
    const std::size_t q = pointer / 64 + j;
    std::uint64_t word = words_[q] << shift;
    if (shift != 0 && q + 1 < words_.size()) {
      word |= words_[q + 1] >> (64 - shift);
    }
    out.words_[j] = word;
  }
  // Clear the low bits of the tail word past `length` so the defaulted
  // ==/hash over words_ never see stray source bits.
  const std::size_t tail = length % 64;
  if (tail != 0) {
    out.words_.back() &= ~std::uint64_t{0} << (64 - tail);
  }
  return out;
}

bool BitString::matches(std::size_t pointer, const BitString& mask) const {
  if (pointer + mask.size() > size_) return false;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (bit(pointer + i) != mask.bit(i)) return false;
  }
  return true;
}

std::uint64_t BitString::to_uint64() const {
  if (size_ > 64) throw std::logic_error("BitString::to_uint64: size > 64");
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out = (out << 1) | (bit(i) ? 1u : 0u);
  }
  return out;
}

std::string BitString::to_binary_string() const {
  std::string out(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (bit(i)) out[i] = '1';
  }
  return out;
}

std::string BitString::to_hex_string() const {
  if (size_ % 4 != 0) {
    throw std::logic_error("BitString::to_hex_string: size not multiple of 4");
  }
  static constexpr char kDigits[] = "0123456789ABCDEF";
  std::string out(size_ / 4, '0');
  for (std::size_t i = 0; i < out.size(); ++i) {
    int v = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      v = (v << 1) | (bit(i * 4 + b) ? 1 : 0);
    }
    out[i] = kDigits[v];
  }
  return out;
}

std::strong_ordering BitString::operator<=>(const BitString& other) const {
  const std::size_t common = std::min(size_, other.size_);
  for (std::size_t i = 0; i < common; ++i) {
    const bool a = bit(i);
    const bool b = other.bit(i);
    if (a != b) {
      return a ? std::strong_ordering::greater : std::strong_ordering::less;
    }
  }
  return size_ <=> other.size_;
}

std::size_t BitString::hash() const noexcept {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(size_);
  for (const auto w : words_) mix(w);
  return static_cast<std::size_t>(h);
}

}  // namespace tagwatch::util
