// Electronic Product Code identifiers (EPC Gen2 EPC-bank contents).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "util/bitstring.hpp"

namespace tagwatch::util {

class Rng;

/// An EPC identifier: the bit contents of a tag's EPC memory bank (typically
/// 96 or 128 bits).  Thin strong type over BitString with EPC conveniences.
class Epc {
 public:
  /// Standard EPC lengths used throughout the paper's evaluation.
  static constexpr std::size_t kBits96 = 96;
  static constexpr std::size_t kBits128 = 128;

  /// All-zero EPC of `length` bits (default 96).
  explicit Epc(std::size_t length = kBits96) : bits_(length) {}

  /// Wraps an existing bit string as an EPC.
  explicit Epc(BitString bits) : bits_(std::move(bits)) {}

  /// Builds a 96-bit EPC whose low bits encode `serial` — handy for tests
  /// and benches that need distinct, human-readable identifiers.
  static Epc from_serial(std::uint64_t serial, std::size_t length = kBits96);

  /// Parses a hex EPC string, e.g. "300833B2DDD9014000000001".
  static Epc from_hex(std::string_view hex) {
    return Epc(BitString::from_hex(hex));
  }

  /// Draws a uniformly random EPC of `length` bits.
  static Epc random(Rng& rng, std::size_t length = kBits96);

  /// Underlying bits (Gen2 MSB-first addressing).
  const BitString& bits() const noexcept { return bits_; }
  std::size_t size() const noexcept { return bits_.size(); }

  /// Gen2 Select match: do the bits at [pointer, pointer+mask.size()) equal
  /// `mask`?
  bool matches(std::size_t pointer, const BitString& mask) const {
    return bits_.matches(pointer, mask);
  }

  std::string to_hex() const { return bits_.to_hex_string(); }
  std::string to_binary() const { return bits_.to_binary_string(); }

  friend bool operator==(const Epc&, const Epc&) = default;
  std::strong_ordering operator<=>(const Epc& other) const {
    return bits_ <=> other.bits_;
  }

  std::size_t hash() const noexcept { return bits_.hash(); }

 private:
  BitString bits_;
};

}  // namespace tagwatch::util

template <>
struct std::hash<tagwatch::util::Epc> {
  std::size_t operator()(const tagwatch::util::Epc& e) const noexcept {
    return e.hash();
  }
};
