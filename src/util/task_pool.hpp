// Deterministic fork/join worker pool.
//
// The one sanctioned home for raw threads in the tree (the
// threading-discipline lint rule blocks std::thread/std::async everywhere
// else): parallel code in journaled paths must express itself as TaskPool
// fork/join regions so that *what* runs is a pure function of the input,
// never of scheduling luck.  run(n, fn) executes fn(0..n-1) with task i
// statically assigned to executor (i % thread_count) — the caller is
// executor 0, the workers 1..T-1 — and returns only after every task
// finished, rethrowing the first captured exception.  The pool reads no
// clock and no entropy source, so it is safe to call from
// replay-deterministic code (core::ParallelAssessor is the first user).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tagwatch::util {

/// Fixed-size fork/join pool with deterministic task-to-executor mapping.
class TaskPool {
 public:
  /// Creates max(threads, 1) executors: the calling thread plus
  /// threads - 1 background workers.  threads == 1 spawns nothing and
  /// run() degenerates to an inline loop.
  explicit TaskPool(std::size_t threads = 1);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Executors participating in run(): workers + the caller.
  std::size_t thread_count() const noexcept { return thread_count_; }

  /// Runs fn(i) for every i in [0, tasks) and blocks until all finished
  /// (the join barrier).  Task i always runs on executor i % thread_count,
  /// so the partition of work onto threads depends only on (tasks,
  /// thread_count).  The first exception thrown by any task is rethrown
  /// here after the barrier; the remaining tasks still run.  Not
  /// reentrant: fn must not call run() on the same pool.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_main(std::size_t executor);
  /// Executes this executor's statically assigned slice of [0, tasks_).
  void run_slice(std::size_t executor);

  std::size_t thread_count_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  /// Bumped per run(); workers wake when it moves past what they have seen.
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::size_t tasks_ = 0;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t workers_done_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace tagwatch::util
