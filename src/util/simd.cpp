#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cmath>

namespace tagwatch::util::simd {

namespace {

// ------------------------------------------------------- scalar kernels
// The reference implementations.  Every AVX2 kernel in simd_avx2.cpp is
// differentially fuzzed against these (test_simd.cpp), and the candidate
// sweep/planner oracles run on top of them when scalar is forced.

std::size_t scalar_popcount_words(const std::uint64_t* w,
                                  std::size_t n) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return total;
}

std::size_t scalar_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

std::size_t scalar_and_inplace_popcount(std::uint64_t* dst,
                                        const std::uint64_t* src,
                                        std::size_t n) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = dst[i] & src[i];
    dst[i] = v;
    total += static_cast<std::size_t>(std::popcount(v));
  }
  return total;
}

std::size_t scalar_andnot_inplace_removed(std::uint64_t* dst,
                                          const std::uint64_t* src,
                                          std::size_t n) noexcept {
  std::size_t removed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    removed += static_cast<std::size_t>(std::popcount(dst[i] & src[i]));
    dst[i] &= ~src[i];
  }
  return removed;
}

std::size_t scalar_or_inplace_added(std::uint64_t* dst,
                                    const std::uint64_t* src,
                                    std::size_t n) noexcept {
  std::size_t added = 0;
  for (std::size_t i = 0; i < n; ++i) {
    added += static_cast<std::size_t>(std::popcount(~dst[i] & src[i]));
    dst[i] |= src[i];
  }
  return added;
}

std::size_t scalar_fused_and_columns(std::uint64_t* dst,
                                     const std::uint64_t* head,
                                     const std::uint64_t* const* cols,
                                     std::size_t n_cols,
                                     std::size_t n_words) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n_words; ++i) {
    std::uint64_t v = head[i];
    // Most words die within a few columns; once v hits zero the remaining
    // ANDs cannot revive it, so stop early.
    for (std::size_t c = 0; c < n_cols && v != 0; ++c) v &= cols[c][i];
    dst[i] = v;
    total += static_cast<std::size_t>(std::popcount(v));
  }
  return total;
}

std::size_t scalar_gather_and_popcount(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       const std::size_t* idx,
                                       std::size_t n_idx) noexcept {
  std::size_t total = 0;
  for (std::size_t k = 0; k < n_idx; ++k) {
    total += static_cast<std::size_t>(std::popcount(a[idx[k]] & b[idx[k]]));
  }
  return total;
}

std::size_t scalar_nonzero_indices(const std::uint64_t* w, std::size_t n,
                                   std::size_t* out) noexcept {
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i] != 0) out[m++] = i;
  }
  return m;
}

std::size_t scalar_nonzero_indices_u32(const std::uint64_t* w, std::size_t n,
                                       std::uint32_t* out) noexcept {
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i] != 0) out[m++] = static_cast<std::uint32_t>(i);
  }
  return m;
}

void scalar_scatter_words(std::uint64_t* dst, const std::uint64_t* src,
                          const std::size_t* idx, std::size_t n_idx,
                          std::size_t n_words) noexcept {
  for (std::size_t i = 0; i < n_words; ++i) dst[i] = 0;
  for (std::size_t k = 0; k < n_idx; ++k) dst[idx[k]] = src[idx[k]];
}

void scalar_strided_weight_decay(double* w, std::size_t stride, std::size_t n,
                                 double factor, std::size_t skip) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (i == skip) continue;
    w[i * stride] = factor * w[i * stride];
  }
}

std::size_t scalar_strided_match_first(const double* means,
                                       const double* stddevs,
                                       std::size_t stride, std::size_t n,
                                       double value, double band_scale,
                                       double min_stddev) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const double sigma = std::max(stddevs[i * stride], min_stddev);
    if (std::abs(value - means[i * stride]) < band_scale * sigma) return i;
  }
  return static_cast<std::size_t>(-1);
}

constexpr KernelTable kScalarTable = {
    Isa::kScalar,
    &scalar_popcount_words,
    &scalar_and_popcount,
    &scalar_and_inplace_popcount,
    &scalar_andnot_inplace_removed,
    &scalar_or_inplace_added,
    &scalar_fused_and_columns,
    &scalar_gather_and_popcount,
    &scalar_nonzero_indices,
    &scalar_nonzero_indices_u32,
    &scalar_scatter_words,
    &scalar_strided_weight_decay,
    &scalar_strided_match_first,
};

// --------------------------------------------------------------- dispatch

/// The live table; initialized on first use from the CPUID probe.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* resolve_active() noexcept {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // First call: default to the best detected level.  Concurrent first
    // calls race benignly — both resolve the same table.
    t = &kernels_for(detected_isa());
    g_active.store(t, std::memory_order_release);
  }
  return t;
}

}  // namespace

const KernelTable& scalar_kernels() noexcept { return kScalarTable; }

const KernelTable& kernels_for(Isa isa) noexcept {
  if (isa == Isa::kAvx2) {
    const KernelTable* avx2 = avx2_kernels();
    if (avx2 != nullptr) return *avx2;
  }
  return kScalarTable;
}

Isa detected_isa() noexcept {
  return avx2_kernels() != nullptr ? Isa::kAvx2 : Isa::kScalar;
}

Isa active_isa() noexcept { return resolve_active()->isa; }

Isa set_active_isa(Isa isa) noexcept {
  const KernelTable& table = kernels_for(isa);
  g_active.store(&table, std::memory_order_release);
  return table.isa;
}

const char* isa_name(Isa isa) noexcept {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

std::size_t popcount_words(const std::uint64_t* w, std::size_t n) noexcept {
  return resolve_active()->popcount_words(w, n);
}

std::size_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) noexcept {
  return resolve_active()->and_popcount(a, b, n);
}

std::size_t and_inplace_popcount(std::uint64_t* dst, const std::uint64_t* src,
                                 std::size_t n) noexcept {
  return resolve_active()->and_inplace_popcount(dst, src, n);
}

std::size_t andnot_inplace_removed(std::uint64_t* dst,
                                   const std::uint64_t* src,
                                   std::size_t n) noexcept {
  return resolve_active()->andnot_inplace_removed(dst, src, n);
}

std::size_t or_inplace_added(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n) noexcept {
  return resolve_active()->or_inplace_added(dst, src, n);
}

std::size_t fused_and_columns(std::uint64_t* dst, const std::uint64_t* head,
                              const std::uint64_t* const* cols,
                              std::size_t n_cols,
                              std::size_t n_words) noexcept {
  return resolve_active()->fused_and_columns(dst, head, cols, n_cols,
                                             n_words);
}

std::size_t gather_and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                                const std::size_t* idx,
                                std::size_t n_idx) noexcept {
  return resolve_active()->gather_and_popcount(a, b, idx, n_idx);
}

std::size_t nonzero_indices(const std::uint64_t* w, std::size_t n,
                            std::size_t* out) noexcept {
  return resolve_active()->nonzero_indices(w, n, out);
}

std::size_t nonzero_indices_u32(const std::uint64_t* w, std::size_t n,
                                std::uint32_t* out) noexcept {
  return resolve_active()->nonzero_indices_u32(w, n, out);
}

void scatter_words(std::uint64_t* dst, const std::uint64_t* src,
                   const std::size_t* idx, std::size_t n_idx,
                   std::size_t n_words) noexcept {
  resolve_active()->scatter_words(dst, src, idx, n_idx, n_words);
}

void strided_weight_decay(double* w, std::size_t stride, std::size_t n,
                          double factor, std::size_t skip) noexcept {
  resolve_active()->strided_weight_decay(w, stride, n, factor, skip);
}

std::size_t strided_match_first(const double* means, const double* stddevs,
                                std::size_t stride, std::size_t n,
                                double value, double band_scale,
                                double min_stddev) noexcept {
  return resolve_active()->strided_match_first(means, stddevs, stride, n,
                                               value, band_scale, min_stddev);
}

}  // namespace tagwatch::util::simd
