#include "util/circular.hpp"

namespace tagwatch::util {

double wrap_to_2pi(double angle) noexcept {
  double wrapped = std::fmod(angle, kTwoPi);
  if (wrapped < 0.0) wrapped += kTwoPi;
  return wrapped;
}

double circular_signed_diff(double a, double b) noexcept {
  double d = wrap_to_2pi(a) - wrap_to_2pi(b);
  if (d > std::numbers::pi) d -= kTwoPi;
  if (d <= -std::numbers::pi) d += kTwoPi;
  return d;
}

double circular_distance(double a, double b) noexcept {
  return std::abs(circular_signed_diff(a, b));
}

double circular_lerp(double from, double to, double t) noexcept {
  return wrap_to_2pi(from + t * circular_signed_diff(to, from));
}

void CircularStats::add(double angle) noexcept {
  const double wrapped = wrap_to_2pi(angle);
  sum_cos_ += std::cos(wrapped);
  sum_sin_ += std::sin(wrapped);
  ++n_;
  if (n_ == 1) {
    running_mean_ = wrapped;
    m2_ = 0.0;
  } else {
    // Welford's algorithm on the circle: deltas are minimum-distance
    // residuals, and the running mean moves along the shortest arc.
    const double delta = circular_signed_diff(wrapped, running_mean_);
    running_mean_ =
        wrap_to_2pi(running_mean_ + delta / static_cast<double>(n_));
    const double delta2 = circular_signed_diff(wrapped, running_mean_);
    m2_ += delta * delta2;
  }
}

double CircularStats::mean() const noexcept {
  if (n_ == 0) return 0.0;
  return wrap_to_2pi(std::atan2(sum_sin_, sum_cos_));
}

double CircularStats::stddev() const noexcept {
  if (n_ < 2) return 0.0;
  const double var = m2_ / static_cast<double>(n_);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double CircularStats::resultant_length() const noexcept {
  if (n_ == 0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(sum_cos_ * sum_cos_ + sum_sin_ * sum_sin_) / n;
}

}  // namespace tagwatch::util
