#include "trace/trackpoint.hpp"

#include <algorithm>

#include "rf/channel.hpp"
#include "sim/world.hpp"
#include "util/circular.hpp"
#include "util/rng.hpp"

namespace tagwatch::trace {

namespace {

struct ScheduledTag {
  sim::SimTag tag;
  bool conveyor;
};

/// Pre-generates the full population schedule: every conveyor transit and
/// every parked-slot occupancy for the whole trace duration.
std::vector<ScheduledTag> build_population(const TrackPointScenario& s,
                                           util::Rng& rng) {
  std::vector<ScheduledTag> out;
  std::uint64_t serial = 1;
  const util::SimTime t_end = util::SimTime{0} + s.duration;

  // Conveyor stream.
  const double rate_per_s = s.conveyor_arrivals_per_min / 60.0;
  util::SimTime t{0};
  while (true) {
    t += util::from_seconds(rng.exponential(rate_per_s));
    if (t >= t_end) break;
    const double transit_s = s.read_zone_m / s.conveyor_speed_mps;
    sim::SimTag tag;
    tag.epc = util::Epc::random(rng);
    tag.motion = std::make_shared<sim::LinearConveyor>(
        util::Vec3{-s.read_zone_m / 2.0, 0.0, 0.0},
        util::Vec3{s.conveyor_speed_mps, 0.0, 0.0}, t, s.read_zone_m);
    tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
    tag.arrives = t;
    tag.departs = t + util::from_seconds(transit_s);
    out.push_back({std::move(tag), true});
    ++serial;
  }

  // Parked slots: back-to-back dwellers near the gate.
  for (std::size_t slot = 0; slot < s.parked_slots; ++slot) {
    util::SimTime cursor{0};
    while (cursor < t_end) {
      const auto dwell = util::from_seconds(
          rng.uniform(util::to_seconds(s.parked_dwell_min),
                      util::to_seconds(s.parked_dwell_max)));
      sim::SimTag tag;
      tag.epc = util::Epc::random(rng);
      tag.motion = std::make_shared<sim::StaticMotion>(
          util::Vec3{rng.uniform(-3.0, 3.0), rng.uniform(0.5, 2.5), 0.0});
      tag.tag_phase_rad = rng.uniform(0.0, util::kTwoPi);
      tag.arrives = cursor;
      tag.departs = cursor + dwell;
      out.push_back({std::move(tag), false});
      cursor += dwell;
      ++serial;
    }
  }
  (void)serial;
  return out;
}

std::size_t peak_concurrency(const std::vector<ScheduledTag>& population,
                             util::SimDuration duration) {
  // Sweep-line over conveyor presence windows at 1 s resolution.
  std::vector<int> delta(
      static_cast<std::size_t>(util::to_seconds(duration)) + 2, 0);
  for (const auto& st : population) {
    if (!st.conveyor) continue;
    const auto from = static_cast<std::size_t>(
        util::to_seconds(st.tag.arrives - util::SimTime{0}));
    const auto to = st.tag.departs
                        ? static_cast<std::size_t>(util::to_seconds(
                              *st.tag.departs - util::SimTime{0}))
                        : delta.size() - 2;
    if (from + 1 < delta.size()) ++delta[from];
    if (to + 1 < delta.size()) --delta[to + 1];
  }
  std::size_t peak = 0;
  long running = 0;
  for (const int d : delta) {
    running += d;
    peak = std::max(peak, static_cast<std::size_t>(std::max(running, 0L)));
  }
  return peak;
}

}  // namespace

TraceResult generate_trackpoint_trace(const TrackPointScenario& scenario) {
  util::Rng rng(scenario.seed);
  auto population = build_population(scenario, rng);

  sim::World world;
  std::unordered_map<util::Epc, bool> is_conveyor;
  for (auto& st : population) {
    is_conveyor.emplace(st.tag.epc, st.conveyor);
    world.add_tag(std::move(st.tag));
  }

  // TrackPoint gate: three antennas mounted above the conveyor.
  const std::vector<rf::Antenna> antennas = {
      {1, {-1.0, 0.0, 2.0}, 8.0},
      {2, {0.0, 0.0, 2.0}, 8.0},
      {3, {1.0, 0.0, 2.0}, 8.0},
  };
  const rf::RfChannel channel(rf::ChannelPlan::china_920_926());
  gen2::Gen2Reader reader(gen2::LinkTiming(scenario.link), scenario.reader,
                          world, channel, antennas, rng.fork());

  // Continuous read-all inventory with dual-target alternation, streaming
  // counts (a 4-hour trace yields millions of readings; do not store them).
  std::unordered_map<util::Epc, std::size_t> counts;
  const std::size_t minutes =
      static_cast<std::size_t>(util::to_seconds(scenario.duration) / 60.0) + 1;
  std::vector<std::size_t> per_minute(minutes, 0);
  std::size_t total = 0;

  const auto on_read = [&](const rf::TagReading& r) {
    ++counts[r.epc];
    ++total;
    const auto minute =
        static_cast<std::size_t>(util::to_seconds(r.timestamp) / 60.0);
    if (minute < per_minute.size()) ++per_minute[minute];
  };

  const util::SimTime t_end = util::SimTime{0} + scenario.duration;
  gen2::InvFlag target = gen2::InvFlag::kA;
  std::size_t antenna_cursor = 0;
  while (world.now() < t_end) {
    reader.set_active_antenna(antenna_cursor);
    antenna_cursor = (antenna_cursor + 1) % antennas.size();
    gen2::QueryCommand query;
    query.sel = gen2::QuerySel::kAll;
    query.session = gen2::Session::kS1;
    query.target = target;
    target = (target == gen2::InvFlag::kA) ? gen2::InvFlag::kB
                                           : gen2::InvFlag::kA;
    query.q = 4;
    reader.run_inventory_round(query, on_read);
  }

  TraceResult result;
  result.total_readings = total;
  result.total_tags = counts.size();
  result.peak_concurrent_movers =
      peak_concurrency(population, scenario.duration);
  result.readings_per_minute = std::move(per_minute);
  result.per_tag.reserve(counts.size());
  for (const auto& [epc, n] : counts) {
    result.per_tag.push_back({epc, n, is_conveyor.at(epc)});
  }
  std::sort(result.per_tag.begin(), result.per_tag.end(),
            [](const TraceTagRecord& a, const TraceTagRecord& b) {
              return a.readings > b.readings;
            });
  return result;
}

double fraction_read_over(const TraceResult& result, std::size_t threshold) {
  if (result.per_tag.empty()) return 0.0;
  const auto over = static_cast<double>(std::count_if(
      result.per_tag.begin(), result.per_tag.end(),
      [threshold](const TraceTagRecord& t) { return t.readings > threshold; }));
  return over / static_cast<double>(result.per_tag.size());
}

}  // namespace tagwatch::trace
