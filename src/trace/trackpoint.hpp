// TrackPoint-style warehouse workload (paper §2.4, Fig. 3–4).
//
// The paper motivates rate-adaptive reading with a 4-hour trace from a
// conveyor gate: 527 tags, 367,536 readings, where parked packages near the
// gate hog the channel (tag #271 was read 90,000 times while moving tags
// got fewer than 5 reads each).  This generator reproduces the *mechanism*:
// a Poisson stream of conveyor tags transiting the read zone quickly, plus
// a rotating population of parked tags that linger for many minutes.
#pragma once

#include <unordered_map>
#include <vector>

#include "gen2/reader.hpp"
#include "util/epc.hpp"

namespace tagwatch::trace {

/// Scenario knobs (defaults approximate the paper's gate).
struct TrackPointScenario {
  util::SimDuration duration = util::sec(4 * 3600);  ///< 4 hours.
  /// Conveyor arrivals per minute (Poisson); ~2/min gives ≈480 transits/4 h.
  double conveyor_arrivals_per_min = 2.0;
  /// Conveyor speed and read-zone length: transit time = length / speed.
  double conveyor_speed_mps = 1.0;
  double read_zone_m = 4.0;
  /// Parked tags present at any moment, each dwelling uniformly in
  /// [min, max] before being replaced by a new one.
  std::size_t parked_slots = 12;
  util::SimDuration parked_dwell_min = util::sec(300);
  util::SimDuration parked_dwell_max = util::sec(2400);
  /// Reader profile.
  gen2::LinkParams link = gen2::LinkParams::max_throughput();
  gen2::ReaderConfig reader = {};
  std::uint64_t seed = 42;
};

/// Per-tag summary of the generated trace.
struct TraceTagRecord {
  util::Epc epc;
  std::size_t readings = 0;
  bool conveyor = false;  ///< true: transited on the conveyor; false: parked.
};

/// Whole-trace summary.
struct TraceResult {
  std::size_t total_readings = 0;
  std::size_t total_tags = 0;
  std::vector<TraceTagRecord> per_tag;  ///< Sorted by readings desc.
  std::vector<std::size_t> readings_per_minute;     ///< Fig. 3's time series.
  /// Max tags simultaneously on the conveyor in any one second.
  std::size_t peak_concurrent_movers = 0;
};

/// Runs the scenario through the Gen2 simulator and summarizes the trace.
TraceResult generate_trackpoint_trace(const TrackPointScenario& scenario);

/// Fraction of tags read more than `threshold` times (Fig. 4's statistic).
double fraction_read_over(const TraceResult& result, std::size_t threshold);

}  // namespace tagwatch::trace
