#include "rf/channel.hpp"

#include <cmath>
#include <complex>

#include "util/circular.hpp"

namespace tagwatch::rf {

namespace {

double quantize(double value, double quantum) {
  if (quantum <= 0.0) return value;
  return std::round(value / quantum) * quantum;
}

}  // namespace

RfObservation RfChannel::observe(const Antenna& antenna, util::Vec3 tag_pos,
                                 double tag_phase_rad,
                                 const std::vector<Reflector>& reflectors,
                                 std::size_t channel, util::Rng& rng) const {
  const double wavelength = plan_.wavelength_m(channel);
  const PathSet paths = compute_paths(antenna.position, tag_pos, reflectors);
  const std::complex<double> h =
      backscatter_channel(paths, wavelength, tag_phase_rad);

  RfObservation obs;
  const double raw_phase =
      std::arg(h) + rng.normal(0.0, noise_.phase_noise_stddev_rad);
  obs.phase_rad = util::wrap_to_2pi(quantize(util::wrap_to_2pi(raw_phase),
                                             noise_.phase_quantum_rad));

  // RSSI: free-space two-way level for the LOS distance, shifted by the
  // multipath gain |h|/|h_los| so constructive/destructive interference
  // shows up in the report, plus receiver noise and coarse quantization.
  const std::complex<double> h_los =
      backscatter_channel(PathSet{paths.los_m, {}, {}}, wavelength,
                          tag_phase_rad);
  const double multipath_gain_db =
      20.0 *
      std::log10(std::max(std::abs(h) / std::max(std::abs(h_los), 1e-12),
                          1e-6));
  const double raw_rssi =
      backscatter_rssi_dbm(paths.los_m, wavelength,
                           /*tx_power_dbm=*/32.5,
                           /*system_gain_db=*/antenna.gain_dbi - 18.0) +
      multipath_gain_db + rng.normal(0.0, noise_.rssi_noise_stddev_db);
  obs.rssi_dbm = quantize(raw_rssi, noise_.rssi_quantum_db);
  return obs;
}

}  // namespace tagwatch::rf
