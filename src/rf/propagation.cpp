#include "rf/propagation.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/circular.hpp"

namespace tagwatch::rf {

PathSet compute_paths(util::Vec3 reader, util::Vec3 tag,
                      const std::vector<Reflector>& reflectors) {
  PathSet paths;
  paths.los_m = util::distance(reader, tag);
  paths.reflected_m.reserve(reflectors.size());
  paths.coefficients.reserve(reflectors.size());
  for (const auto& r : reflectors) {
    paths.reflected_m.push_back(util::distance(reader, r.position) +
                                util::distance(r.position, tag));
    paths.coefficients.push_back(r.reflection_coefficient);
  }
  return paths;
}

std::complex<double> backscatter_channel(const PathSet& paths,
                                         double wavelength_m,
                                         double tag_phase_rad) {
  if (wavelength_m <= 0.0) {
    throw std::invalid_argument("backscatter_channel: bad wavelength");
  }
  const auto path_term = [&](double one_way_m, double extra_gain) {
    // Round trip traverses the path twice: phase 2π·(2d)/λ, amplitude ∝ 1/d²
    // (two one-way spreading losses).  Normalize amplitude to 1 at 1 m.
    const double d = std::max(one_way_m, 0.05);
    const double amplitude = extra_gain / (d * d);
    const double phase = -util::kTwoPi * (2.0 * one_way_m) / wavelength_m;
    return std::polar(amplitude, phase);
  };

  std::complex<double> h = path_term(paths.los_m, 1.0);
  for (std::size_t i = 0; i < paths.reflected_m.size(); ++i) {
    h += path_term(paths.reflected_m[i], paths.coefficients[i]);
  }
  return h * std::polar(1.0, tag_phase_rad);
}

int fresnel_zone(util::Vec3 reader, util::Vec3 tag, util::Vec3 q,
                 double wavelength_m) {
  if (wavelength_m <= 0.0) {
    throw std::invalid_argument("fresnel_zone: bad wavelength");
  }
  const double detour = util::distance(reader, q) + util::distance(q, tag) -
                        util::distance(reader, tag);
  return std::max(
      1, static_cast<int>(std::ceil(detour / (wavelength_m / 2.0))));
}

double backscatter_rssi_dbm(double d_m, double wavelength_m,
                            double tx_power_dbm, double system_gain_db) {
  const double d = std::max(d_m, 0.05);
  // Radar-style two-way free-space loss: 40·log10(4πd/λ).
  const double one_way_db =
      20.0 * std::log10(4.0 * std::numbers::pi * d / wavelength_m);
  return tx_power_dbm + system_gain_db - 2.0 * one_way_db;
}

}  // namespace tagwatch::rf
