#include "rf/channel_plan.hpp"

#include <stdexcept>

namespace tagwatch::rf {

ChannelPlan ChannelPlan::china_920_926() {
  std::vector<double> freqs;
  freqs.reserve(16);
  for (int k = 0; k < 16; ++k) {
    freqs.push_back(920.25e6 + static_cast<double>(k) * 0.375e6);
  }
  return ChannelPlan(std::move(freqs));
}

ChannelPlan ChannelPlan::single(double frequency_hz) {
  return ChannelPlan({frequency_hz});
}

ChannelPlan::ChannelPlan(std::vector<double> frequencies_hz)
    : frequencies_hz_(std::move(frequencies_hz)) {
  if (frequencies_hz_.empty()) {
    throw std::invalid_argument("ChannelPlan: need at least one frequency");
  }
  for (const double f : frequencies_hz_) {
    if (f <= 0.0) throw std::invalid_argument("ChannelPlan: bad frequency");
  }
}

double ChannelPlan::frequency_hz(std::size_t channel) const {
  return frequencies_hz_.at(channel);
}

double ChannelPlan::wavelength_m(std::size_t channel) const {
  return kSpeedOfLight / frequency_hz(channel);
}

std::size_t ChannelPlan::hop_channel(std::size_t hop_index) const noexcept {
  // Stride 7 is coprime with 16 (and with most small channel counts); fall
  // back to stride 1 when it is not.
  const std::size_t n = frequencies_hz_.size();
  const std::size_t stride = (n % 7 != 0) ? 7 : 1;
  return (hop_index * stride) % n;
}

}  // namespace tagwatch::rf
