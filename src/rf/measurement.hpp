// Observation types produced by the reader for upper layers.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/epc.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::rf {

/// Identifies one reader antenna port (1-based, as LLRP reports them).
using AntennaId = std::uint8_t;

/// One successful tag read with its physical-layer metadata — the tuple a
/// COTS reader (e.g. ImpinJ R420) reports per EPC: RF phase, RSSI, antenna,
/// channel, and timestamp.  This is the only information Tagwatch consumes.
struct TagReading {
  util::Epc epc;
  AntennaId antenna = 1;
  std::size_t channel = 0;       ///< Index into the reader's ChannelPlan.
  double phase_rad = 0.0;        ///< Backscatter phase in [0, 2π).
  double rssi_dbm = 0.0;         ///< Received signal strength.
  util::SimTime timestamp{0};    ///< Simulation time of the read.
};

}  // namespace tagwatch::rf
