// Backscatter propagation: phase, path loss, multipath, Fresnel zones.
//
// Physical grounding (paper §4):
//   * round-trip phase  θ = (4πd/λ + θ_tag) mod 2π        — §4.3
//   * each nearby object adds a reflected propagation s_k whose extra path
//     length relative to the line of sight determines its Fresnel zone and
//     the constructive/destructive character of the superposition — Fig. 7
//   * the receiver observes the argument/magnitude of the complex sum of
//     all propagation paths.
#pragma once

#include <complex>
#include <vector>

#include "util/geometry.hpp"

namespace tagwatch::rf {

/// One scattering object in the environment (e.g. a walking person).
struct Reflector {
  util::Vec3 position;
  /// Fraction of incident field re-radiated along the reflected path
  /// (dimensionless, 0..1); people measure around 0.1–0.4 at UHF.
  double reflection_coefficient = 0.2;
};

/// One-way line-of-sight path length plus reflected path lengths.
struct PathSet {
  double los_m = 0.0;
  std::vector<double> reflected_m;        ///< |Rq| + |qT| per reflector.
  std::vector<double> coefficients;       ///< matching reflection coefficients
};

/// Computes the LOS and per-reflector one-way path lengths between a reader
/// antenna at `reader` and a tag at `tag`.
PathSet compute_paths(util::Vec3 reader, util::Vec3 tag,
                      const std::vector<Reflector>& reflectors);

/// Complex baseband channel for the round trip (reader→tag→reader): the sum
/// over paths of a_i · e^{-j·2π·(2·d_i)/λ}, where the LOS amplitude follows
/// free-space two-way loss and each reflected path is further scaled by its
/// reflection coefficient.  `tag_phase_rad` adds the tag's own backscatter
/// phase offset θ_tag.
std::complex<double> backscatter_channel(const PathSet& paths,
                                         double wavelength_m,
                                         double tag_phase_rad);

/// Fresnel-zone index of point `q` for the reader/tag pair: the smallest k
/// with |Rq| + |qT| − |RT| ≤ k·λ/2 (k ≥ 1).  Objects in low zones dominate
/// multipath; the paper cites zones 3–8 as significant.
int fresnel_zone(util::Vec3 reader, util::Vec3 tag, util::Vec3 q,
                 double wavelength_m);

/// Free-space two-way (radar-equation-style) received power in dBm for a
/// backscatter link of one-way length `d_m`, given transmit power and
/// combined antenna/backscatter gains.
double backscatter_rssi_dbm(double d_m, double wavelength_m,
                            double tx_power_dbm = 32.5,
                            double system_gain_db = -10.0);

}  // namespace tagwatch::rf
