// The end-to-end RF observation model.
//
// Combines the propagation model with receiver impairments to produce the
// (phase, RSSI) pair a COTS reader would report for one tag read:
//
//   * thermal phase noise — zero-mean Gaussian (§4.1 "challenges")
//   * phase quantization  — ImpinJ readers report phase in 4096 steps/2π
//   * RSSI noise + coarse 0.5 dB quantization — the reason RSS-based motion
//     detection underperforms phase-based detection (§7.1)
#pragma once

#include <vector>

#include "rf/channel_plan.hpp"
#include "rf/propagation.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace tagwatch::rf {

/// One reader antenna port.
struct Antenna {
  std::uint8_t id = 1;          ///< LLRP antenna id (1-based).
  util::Vec3 position;          ///< Placement in meters.
  double gain_dbi = 8.0;        ///< Paper uses 8 dBi circular antennas.
};

/// Receiver impairment parameters.
struct ChannelNoise {
  double phase_noise_stddev_rad = 0.05;  ///< Thermal phase jitter (COTS readers
                                         ///  report milli-degree resolution;
                                         ///  ~0.05 rad reflects thermal noise
                                         ///  at moderate SNR).
  double phase_quantum_rad = kTwoPiOver4096;
  double rssi_noise_stddev_db = 0.8;     ///< RSSI estimate jitter.
  double rssi_quantum_db = 0.5;          ///< COTS RSSI report granularity.

  static constexpr double kTwoPiOver4096 = 6.283185307179586 / 4096.0;
};

/// A physical observation before protocol metadata is attached.
struct RfObservation {
  double phase_rad = 0.0;
  double rssi_dbm = 0.0;
};

/// Simulated RF front end: maps world geometry to reported (phase, RSSI).
class RfChannel {
 public:
  RfChannel(ChannelPlan plan, ChannelNoise noise = {})
      : plan_(std::move(plan)), noise_(noise) {}

  const ChannelPlan& plan() const noexcept { return plan_; }
  const ChannelNoise& noise() const noexcept { return noise_; }

  /// Produces the reported phase/RSSI for a tag at `tag_pos` with intrinsic
  /// backscatter phase `tag_phase_rad`, read through `antenna` on frequency
  /// channel `channel`, with the given environmental reflectors present.
  RfObservation observe(const Antenna& antenna, util::Vec3 tag_pos,
                        double tag_phase_rad,
                        const std::vector<Reflector>& reflectors,
                        std::size_t channel, util::Rng& rng) const;

 private:
  ChannelPlan plan_;
  ChannelNoise noise_;
};

}  // namespace tagwatch::rf
