// UHF RFID frequency-channel plan and hopping.
//
// The paper's testbed operates on 16 channels in 920–926 MHz (the Chinese
// UHF band used by the ImpinJ R420).  Phase reports are not comparable
// across channels — the wavelength changes — so the channel index is part
// of every observation.
#pragma once

#include <cstddef>
#include <vector>

namespace tagwatch::rf {

/// Speed of light (m/s).
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// A fixed set of carrier frequencies plus a deterministic hop sequence.
class ChannelPlan {
 public:
  /// The 16-channel 920–926 MHz plan from the paper's testbed:
  /// 920.25 MHz + k * 0.375 MHz for k = 0..15.
  static ChannelPlan china_920_926();

  /// A single-frequency plan (disables hopping); useful in unit tests.
  static ChannelPlan single(double frequency_hz);

  explicit ChannelPlan(std::vector<double> frequencies_hz);

  std::size_t channel_count() const noexcept { return frequencies_hz_.size(); }
  double frequency_hz(std::size_t channel) const;
  double wavelength_m(std::size_t channel) const;

  /// Deterministic frequency-hopping sequence: hop index -> channel index.
  /// Uses a fixed permutation stride that is coprime with the channel count
  /// so every channel is visited once per 16 hops (FCC/ETSI-style hopping).
  std::size_t hop_channel(std::size_t hop_index) const noexcept;

 private:
  std::vector<double> frequencies_hz_;
};

}  // namespace tagwatch::rf
