#include "llrp/reader_journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "llrp/rospec_xml.hpp"

namespace tagwatch::llrp {

namespace {

constexpr const char* kHeader = "# tagwatch-reader-journal v1";

std::string format_double(double v) {
  char buf[64];
  // %.17g round-trips every IEEE-754 double exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Splits one CSV line into fields (no quoting: fields never contain ',').
std::vector<std::string> split_fields(std::string_view line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string_view::npos) {
      fields.emplace_back(line.substr(pos));
      break;
    }
    fields.emplace_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return fields;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("ReaderJournal: line " +
                              std::to_string(line_no) + ": " + what);
}

std::int64_t parse_int(const std::string& s, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(s, &used);
    if (used != s.size()) fail(line_no, "trailing garbage in '" + s + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line_no, "expected integer, got '" + s + "'");
  } catch (const std::out_of_range&) {
    fail(line_no, "integer out of range: '" + s + "'");
  }
}

std::uint64_t parse_hex64(const std::string& s, std::size_t line_no) {
  if (s.empty()) fail(line_no, "empty digest");
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 16);
  if (end != s.c_str() + s.size()) fail(line_no, "bad digest '" + s + "'");
  return v;
}

double parse_double(const std::string& s, std::size_t line_no) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size()) {
    fail(line_no, "expected number, got '" + s + "'");
  }
  return v;
}

}  // namespace

namespace {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit offset basis.
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint64_t rospec_digest(const ROSpec& spec) { return fnv1a(to_xml(spec)); }

std::uint64_t journal_digest(const ReaderJournal& journal) {
  return fnv1a(journal.to_csv());
}

namespace {

/// CSV fields never contain ',' or '\n'; free-form text is flattened.
std::string sanitize_field(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  }
  return s;
}

}  // namespace

std::string ReaderJournal::to_csv() const {
  std::ostringstream out;
  out << kHeader << '\n';
  const std::string model = sanitize_field(capabilities.model);
  out << "C," << model << ',' << capabilities.antenna_count << ','
      << capabilities.channel_count << ','
      << (capabilities.supports_truncation ? 1 : 0) << ','
      << (capabilities.live ? 1 : 0) << '\n';
  for (const JournalEntry& e : entries_) {
    if (e.kind == JournalEntry::Kind::kAdvance) {
      out << "A," << e.advance.count() << '\n';
      continue;
    }
    char digest[17];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(e.digest));
    const gen2::RoundStats& st = e.report.slot_totals;
    out << "E," << digest << ',' << e.start.count() << ','
        << e.report.duration.count() << ',' << e.report.rounds << ','
        << st.slots << ',' << st.empty_slots << ',' << st.collision_slots
        << ',' << st.success_slots << ',' << st.lost_slots << ','
        << st.duration.count() << ',' << e.report.readings.size() << '\n';
    if (e.error) {
      // Error record, attached to the execute above it.
      out << "X," << to_string(e.error->kind) << ',' << e.error->antenna
          << ',' << sanitize_field(e.error->message) << '\n';
    }
    for (const rf::TagReading& r : e.report.readings) {
      out << "R," << r.epc.to_binary() << ','
          << static_cast<unsigned>(r.antenna) << ',' << r.channel << ','
          << format_double(r.phase_rad) << ',' << format_double(r.rssi_dbm)
          << ',' << r.timestamp.count() << '\n';
    }
  }
  return out.str();
}

ReaderJournal ReaderJournal::from_csv(std::string_view csv) {
  ReaderJournal journal;
  std::istringstream in{std::string(csv)};
  std::string line;
  std::size_t line_no = 0;
  std::size_t pending_readings = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1) {
      if (line != kHeader) fail(line_no, "missing journal header");
      continue;
    }
    const std::vector<std::string> f = split_fields(line);
    if (f[0] == "C") {
      if (f.size() != 6) fail(line_no, "capabilities line needs 6 fields");
      journal.capabilities.model = f[1];
      journal.capabilities.antenna_count =
          static_cast<std::size_t>(parse_int(f[2], line_no));
      journal.capabilities.channel_count =
          static_cast<std::size_t>(parse_int(f[3], line_no));
      journal.capabilities.supports_truncation = parse_int(f[4], line_no) != 0;
      journal.capabilities.live = parse_int(f[5], line_no) != 0;
    } else if (f[0] == "A") {
      if (pending_readings != 0) fail(line_no, "readings still pending");
      if (f.size() != 2) fail(line_no, "advance line needs 2 fields");
      JournalEntry e;
      e.kind = JournalEntry::Kind::kAdvance;
      e.advance = util::SimDuration(parse_int(f[1], line_no));
      journal.push(std::move(e));
    } else if (f[0] == "E") {
      if (pending_readings != 0) fail(line_no, "readings still pending");
      if (f.size() != 12) fail(line_no, "execute line needs 12 fields");
      JournalEntry e;
      e.kind = JournalEntry::Kind::kExecute;
      e.digest = parse_hex64(f[1], line_no);
      e.start = util::SimTime(parse_int(f[2], line_no));
      e.report.duration = util::SimDuration(parse_int(f[3], line_no));
      e.report.rounds = static_cast<std::size_t>(parse_int(f[4], line_no));
      gen2::RoundStats& st = e.report.slot_totals;
      st.slots = static_cast<std::size_t>(parse_int(f[5], line_no));
      st.empty_slots = static_cast<std::size_t>(parse_int(f[6], line_no));
      st.collision_slots = static_cast<std::size_t>(parse_int(f[7], line_no));
      st.success_slots = static_cast<std::size_t>(parse_int(f[8], line_no));
      st.lost_slots = static_cast<std::size_t>(parse_int(f[9], line_no));
      st.duration = util::SimDuration(parse_int(f[10], line_no));
      pending_readings = static_cast<std::size_t>(parse_int(f[11], line_no));
      e.report.readings.reserve(pending_readings);
      journal.push(std::move(e));
    } else if (f[0] == "X") {
      if (journal.entries_.empty() ||
          journal.entries_.back().kind != JournalEntry::Kind::kExecute) {
        fail(line_no, "error record without a preceding execute");
      }
      if (journal.entries_.back().error) {
        fail(line_no, "duplicate error record for one execute");
      }
      if (f.size() != 4) fail(line_no, "error line needs 4 fields");
      ReaderError err;
      try {
        err.kind = reader_error_kind_from_string(f[1]);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      err.antenna = static_cast<std::size_t>(parse_int(f[2], line_no));
      err.message = f[3];
      journal.entries_.back().error = std::move(err);
    } else if (f[0] == "R") {
      if (pending_readings == 0) fail(line_no, "unexpected reading line");
      if (f.size() != 7) fail(line_no, "reading line needs 7 fields");
      rf::TagReading r;
      try {
        r.epc = util::Epc(util::BitString::from_binary(f[1]));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      r.antenna = static_cast<rf::AntennaId>(parse_int(f[2], line_no));
      r.channel = static_cast<std::size_t>(parse_int(f[3], line_no));
      r.phase_rad = parse_double(f[4], line_no);
      r.rssi_dbm = parse_double(f[5], line_no);
      r.timestamp = util::SimTime(parse_int(f[6], line_no));
      journal.entries_.back().report.readings.push_back(std::move(r));
      --pending_readings;
    } else {
      fail(line_no, "unknown record kind '" + f[0] + "'");
    }
  }
  if (pending_readings != 0) {
    fail(line_no, "journal truncated mid-entry");
  }
  return journal;
}

void ReaderJournal::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("ReaderJournal: cannot open " + path);
  out << to_csv();
  if (!out) throw std::runtime_error("ReaderJournal: write failed: " + path);
}

ReaderJournal ReaderJournal::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ReaderJournal: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_csv(buf.str());
}

}  // namespace tagwatch::llrp
