#include "llrp/sim_reader_client.hpp"

namespace tagwatch::llrp {

SimReaderClient::SimReaderClient(gen2::LinkTiming timing,
                                 gen2::ReaderConfig config, sim::World& world,
                                 const rf::RfChannel& channel,
                                 std::vector<rf::Antenna> antennas,
                                 std::uint64_t seed,
                                 std::shared_ptr<gen2::TagFlagField> flags)
    : reader_(std::move(timing), config, world, channel, std::move(antennas),
              util::Rng(seed), std::move(flags)) {}

void SimReaderClient::apply_filters(const std::vector<C1G2Filter>& filters,
                                    gen2::Session session) {
  if (filters.empty()) {
    // Unfiltered inventory: re-arm the whole population with a Select whose
    // zero-length mask matches every tag (matched → A).  This keeps every
    // round reading everything even when a prior *selective* phase parked
    // non-targets at B — without it, a plain A/B dual-target Phase I wastes
    // its first round after Phase II (on hardware, S1 flag persistence
    // decay eventually papers over this; the Select makes it deterministic).
    gen2::SelectCommand cmd;
    cmd.target = static_cast<gen2::SelectTarget>(session);
    cmd.action = gen2::SelectAction::kAssertMatchedDeassertElse;
    cmd.bank = gen2::MemBank::kEpc;
    cmd.pointer = 0;
    cmd.mask = util::BitString();  // Length 0: matches all tags
    reader_.transmit_select(cmd);
    return;
  }
  for (std::size_t i = 0; i < filters.size(); ++i) {
    gen2::SelectCommand cmd;
    // Target the session's inventoried flag: matching tags are reset to A,
    // non-matching tags are parked at B.  Re-arming the flag with every
    // Select lets the same subpopulation answer round after round — the
    // standard COTS pattern for repeated selective reading (a pure SL-based
    // selection would strand tags whose A/B flag toggled on a prior read).
    cmd.target = static_cast<gen2::SelectTarget>(session);
    // First Select partitions the population (matched → A, rest → B);
    // later Selects intersect by parking tags that fail them at B.
    cmd.action = (i == 0) ? gen2::SelectAction::kAssertMatchedDeassertElse
                          : gen2::SelectAction::kDeassertUnmatchedOnly;
    cmd.bank = filters[i].bank;
    cmd.pointer = filters[i].pointer;
    cmd.mask = filters[i].mask;
    // Truncation is only honored on the final Select of the sequence.
    cmd.truncate = filters[i].truncate && i + 1 == filters.size();
    reader_.transmit_select(cmd);
  }
}

void SimReaderClient::run_aispec(const AISpec& spec, ExecutionReport& report) {
  const util::SimTime start = reader_.now();
  std::vector<std::size_t> antennas = spec.antenna_indexes;
  if (antennas.empty()) {
    antennas.resize(reader_.antenna_count());
    for (std::size_t i = 0; i < antennas.size(); ++i) antennas[i] = i;
  }

  const auto on_read = [this, &report](const rf::TagReading& reading) {
    report.readings.push_back(reading);
    if (listener_) listener_(reading);
  };

  std::size_t rounds_done = 0;
  std::size_t antenna_cursor = 0;
  for (;;) {
    // Stop-trigger check before each round.
    if (spec.stop.kind == AiSpecStopTrigger::Kind::kRounds) {
      if (rounds_done >= spec.stop.rounds) break;
    } else {
      if (reader_.now() - start >= spec.stop.duration) break;
    }

    reader_.set_active_antenna(antennas[antenna_cursor]);
    antenna_cursor = (antenna_cursor + 1) % antennas.size();

    // Selects precede every inventory round, re-establishing session flags
    // for the selected subpopulation (including tags that entered the field
    // since the previous round).  Session-coordinated specs
    // (rearm_session=false) skip the match-all re-arm so flag state carries
    // across rounds — and across the other readers sharing the field —
    // but filtered specs still need their Selects to define the
    // subpopulation at all.
    if (spec.rearm_session || !spec.filters.empty()) {
      apply_filters(spec.filters, spec.session);
    }

    gen2::QueryCommand query;
    query.sel = gen2::QuerySel::kAll;
    query.session = spec.session;
    // Re-armed rounds target A (the preceding Select just reset the
    // participants there); coordinated rounds target the spec's flag.
    query.target = (spec.rearm_session || !spec.filters.empty())
                       ? gen2::InvFlag::kA
                       : spec.target;
    query.q = spec.initial_q;

    const gen2::RoundStats stats = reader_.run_inventory_round(query, on_read);
    report.slot_totals += stats;
    ++rounds_done;
    ++report.rounds;
  }
}

ReaderCapabilities SimReaderClient::capabilities() const {
  ReaderCapabilities caps;
  caps.model = "sim-gen2";
  caps.antenna_count = reader_.antenna_count();
  caps.channel_count = reader_.channel().plan().channel_count();
  caps.supports_truncation = true;
  caps.live = true;
  return caps;
}

ExecutionResult SimReaderClient::execute(const ROSpec& spec) {
  ExecutionResult result;
  const util::SimTime start = reader_.now();
  for (std::size_t loop = 0; loop < spec.loops; ++loop) {
    for (const auto& ai : spec.ai_specs) {
      run_aispec(ai, result.report);
    }
  }
  result.report.duration = reader_.now() - start;
  return result;
}

}  // namespace tagwatch::llrp
