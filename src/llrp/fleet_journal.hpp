// FleetJournal: a persistent trace of a FleetController run.
//
// The per-reader ReaderJournals (llrp/reader_journal.hpp) already capture
// every reader operation bit-exactly; what they cannot express is the
// fleet-level story — which reader owned which zone, how readings were
// attributed and deduplicated across readers, and when a tag was handed
// off between zones.  FleetJournal records exactly that, in the same
// line-oriented CSV discipline (integral microseconds, round-trip floats
// never needed, one-letter record tags), so a fleet record→replay run can
// be compared by a single digest.
//
// Record tags:
//   S — setup: reader count, session policy, shared session, dedup window.
//   F — one reader's cycle: counts before and after cross-reader dedup.
//   H — one tag handoff: EPC, source and destination reader, sim time.
//   D — a reader declared Down by the fleet health state machine.
//   T — a zone takeover: a survivor's coverage expanded over a Down zone.
//   R — a Down reader recovered (probation served) and zones restored.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen2/commands.hpp"
#include "util/epc.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::llrp {

/// Fleet-level configuration the journal preserves (enough for a replay
/// harness to rebuild an equivalent controller).
struct FleetSetup {
  std::size_t readers = 0;
  std::string policy;  ///< Session-policy name (core::to_string form).
  gen2::Session session = gen2::Session::kS1;
  util::SimDuration dedup_window{0};
};

/// One reader's slice of one fleet cycle.
struct FleetCycleRecord {
  std::size_t cycle = 0;
  std::size_t reader = 0;
  std::string zone;
  std::size_t phase1_readings = 0;
  std::size_t phase2_readings = 0;
  /// Readings dispatched to the fleet pipeline after cross-reader dedup.
  std::size_t delivered = 0;
  /// Readings suppressed as cross-reader duplicates.
  std::size_t duplicates = 0;
};

/// A tag observed leaving one reader's zone for another's.
struct FleetHandoffRecord {
  util::Epc epc;
  std::size_t from_reader = 0;
  std::size_t to_reader = 0;
  util::SimTime at{0};
};

/// A reader the fleet health state machine declared Down.
struct FleetDownRecord {
  std::size_t cycle = 0;
  std::size_t reader = 0;
  std::string zone;
  /// Consecutive failed cycles at the moment of the transition.
  std::size_t consecutive_failures = 0;
};

/// A survivor's coverage zone expanded over a Down reader's orphaned zone.
struct FleetTakeoverRecord {
  std::size_t cycle = 0;
  std::size_t from_reader = 0;  ///< The Down reader being covered.
  std::size_t to_reader = 0;    ///< The survivor whose zone expanded.
  /// The survivor's expanded coverage radius, integral millimeters (CSV
  /// discipline: no round-trip floats in journals).
  std::int64_t radius_mm = 0;
};

/// A Down reader served probation and returned to Healthy.
struct FleetRecoverRecord {
  std::size_t cycle = 0;
  std::size_t reader = 0;
  /// Fleet cycles the reader spent not Healthy (Down + Probation).
  std::size_t down_for_cycles = 0;
};

/// One journaled fleet event, in emission order.
struct FleetJournalEntry {
  enum class Kind { kCycle, kHandoff, kDown, kTakeover, kRecover };
  Kind kind = Kind::kCycle;
  FleetCycleRecord cycle;        ///< kCycle
  FleetHandoffRecord handoff;    ///< kHandoff
  FleetDownRecord down;          ///< kDown
  FleetTakeoverRecord takeover;  ///< kTakeover
  FleetRecoverRecord recover;    ///< kRecover
};

class FleetJournal;

/// Stable 64-bit digest of a fleet journal (FNV-1a over its canonical CSV
/// form) — the quantity a fleet record→replay round trip must preserve.
std::uint64_t fleet_journal_digest(const FleetJournal& journal);

/// In-memory fleet journal with CSV persistence (lossless round trip).
class FleetJournal {
 public:
  FleetSetup setup;

  void push_cycle(FleetCycleRecord record) {
    FleetJournalEntry e;
    e.kind = FleetJournalEntry::Kind::kCycle;
    e.cycle = std::move(record);
    entries_.push_back(std::move(e));
  }

  void push_handoff(FleetHandoffRecord record) {
    FleetJournalEntry e;
    e.kind = FleetJournalEntry::Kind::kHandoff;
    e.handoff = std::move(record);
    entries_.push_back(std::move(e));
  }

  void push_down(FleetDownRecord record) {
    FleetJournalEntry e;
    e.kind = FleetJournalEntry::Kind::kDown;
    e.down = std::move(record);
    entries_.push_back(std::move(e));
  }

  void push_takeover(FleetTakeoverRecord record) {
    FleetJournalEntry e;
    e.kind = FleetJournalEntry::Kind::kTakeover;
    e.takeover = record;
    entries_.push_back(std::move(e));
  }

  void push_recover(FleetRecoverRecord record) {
    FleetJournalEntry e;
    e.kind = FleetJournalEntry::Kind::kRecover;
    e.recover = record;
    entries_.push_back(std::move(e));
  }

  const std::vector<FleetJournalEntry>& entries() const noexcept {
    return entries_;
  }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Renders the journal as CSV (stable formatting, round-trips exactly
  /// with from_csv).
  std::string to_csv() const;

  /// Parses CSV produced by to_csv.  Throws std::invalid_argument with a
  /// line-context message on malformed input.
  static FleetJournal from_csv(std::string_view csv);

  /// File convenience wrappers.  Throw std::runtime_error on I/O failure.
  void save(const std::string& path) const;
  static FleetJournal load(const std::string& path);

 private:
  std::vector<FleetJournalEntry> entries_;
};

}  // namespace tagwatch::llrp
