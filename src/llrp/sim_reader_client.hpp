// SimReaderClient: executes ROSpecs against the simulated Gen2 reader.
//
// Stands in for the LLRP Tool Kit + physical ImpinJ reader: the client
// accepts the same control surface Tagwatch uses on hardware (ROSpecs whose
// AISpecs carry C1G2 filters) and turns it into Gen2 Select + inventory
// rounds on the simulator, streaming TagReportData-equivalent readings back.
#pragma once

#include <memory>
#include <vector>

#include "gen2/reader.hpp"
#include "llrp/reader_client.hpp"
#include "llrp/rospec.hpp"

namespace tagwatch::llrp {

/// Executes ROSpecs on a simulated reader.
///
/// Every inventory round is preceded by Select commands that re-arm the
/// participating subpopulation's session flag to A (a match-all Select for
/// unfiltered rounds, the configured filters otherwise), so each round
/// re-inventories its full population — the repeated-reading discipline
/// the paper's measurements assume.
class SimReaderClient final : public ReaderClient {
 public:
  /// `world` and `channel` must outlive the client.  `flags` is the
  /// session-flag field the simulated reader energizes: fleet deployments
  /// pass one shared field to every client over the same world so readers
  /// observe each other's inventoried-flag flips; nullptr gives the reader
  /// a private field (the classic single-reader setup).
  SimReaderClient(gen2::LinkTiming timing, gen2::ReaderConfig config,
                  sim::World& world, const rf::RfChannel& channel,
                  std::vector<rf::Antenna> antennas, std::uint64_t seed,
                  std::shared_ptr<gen2::TagFlagField> flags = nullptr);

  void set_read_listener(gen2::ReadCallback listener) override {
    listener_ = std::move(listener);
  }

  /// The simulated reader never fails: the result's error is always empty.
  /// Wrap with FaultInjectingReaderClient to exercise failure paths.
  ExecutionResult execute(const ROSpec& spec) override;

  ReaderCapabilities capabilities() const override;

  /// Advances the simulated world clock (idle reader time).
  void advance(util::SimDuration d) override { reader_.world().advance(d); }

  /// Applies a new coverage footprint to the simulated reader (zone
  /// takeover).  Always succeeds.
  bool set_coverage_zone(const sim::Zone& zone) override {
    reader_.set_coverage(zone);
    return true;
  }

  /// The underlying simulated reader (for tests and advanced callers).
  gen2::Gen2Reader& reader() noexcept { return reader_; }
  util::SimTime now() const noexcept override { return reader_.now(); }

 private:
  void run_aispec(const AISpec& spec, ExecutionReport& report);
  void apply_filters(const std::vector<C1G2Filter>& filters,
                     gen2::Session session);

  gen2::Gen2Reader reader_;
  gen2::ReadCallback listener_;
};

}  // namespace tagwatch::llrp
