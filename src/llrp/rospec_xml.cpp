#include "llrp/rospec_xml.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

namespace tagwatch::llrp {

namespace {

// ---------------------------------------------------------------- writing

void write_filter(std::ostringstream& out, const C1G2Filter& f) {
  out << "    <C1G2Filter bank=\"" << static_cast<int>(f.bank)
      << "\" pointer=\"" << f.pointer << "\"";
  if (f.truncate) out << " truncate=\"1\"";
  out << ">\n"
      << "      <Mask>" << f.mask.to_binary_string() << "</Mask>\n"
      << "    </C1G2Filter>\n";
}

void write_aispec(std::ostringstream& out, const AISpec& spec) {
  out << "  <AISpec session=\"" << static_cast<int>(spec.session)
      << "\" initialQ=\"" << static_cast<int>(spec.initial_q) << "\"";
  // Fleet extensions: emitted only when non-default so the canonical XML
  // (and therefore every stored rospec/journal digest) of classic specs is
  // byte-identical to what pre-fleet builds produced.
  if (spec.target != gen2::InvFlag::kA) {
    out << " target=\"" << gen2::to_string(spec.target) << "\"";
  }
  if (!spec.rearm_session) out << " rearm=\"0\"";
  out << ">\n";
  out << "    <Antennas>";
  for (std::size_t i = 0; i < spec.antenna_indexes.size(); ++i) {
    if (i) out << ',';
    out << spec.antenna_indexes[i];
  }
  out << "</Antennas>\n";
  for (const auto& f : spec.filters) write_filter(out, f);
  if (spec.stop.kind == AiSpecStopTrigger::Kind::kDuration) {
    out << "    <StopTrigger kind=\"duration\" ms=\""
        << util::to_millis(spec.stop.duration) << "\"/>\n";
  } else {
    out << "    <StopTrigger kind=\"rounds\" rounds=\"" << spec.stop.rounds
        << "\"/>\n";
  }
  out << "  </AISpec>\n";
}

// ----------------------------------------------------------------- parsing

/// Minimal XML node for the ROSpec dialect: no namespaces, no CDATA.
struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attrs;
  std::vector<XmlNode> children;
  std::string text;
};

class XmlParser {
 public:
  explicit XmlParser(std::string_view src) : src_(src) {}

  XmlNode parse_document() {
    skip_ws();
    XmlNode root = parse_element();
    skip_ws();
    if (pos_ != src_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("ROSpec XML: " + what + " (at offset " +
                                std::to_string(pos_) + ")");
  }

  char peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  char take() {
    if (pos_ >= src_.size()) fail("unexpected end of input");
    return src_[pos_++];
  }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }
  std::string parse_name() {
    std::string name;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_')) {
      name += take();
    }
    if (name.empty()) fail("expected a name");
    return name;
  }

  XmlNode parse_element() {
    expect('<');
    XmlNode node;
    node.name = parse_name();
    // Attributes.
    for (;;) {
      skip_ws();
      if (peek() == '/' || peek() == '>') break;
      const std::string key = parse_name();
      skip_ws();
      expect('=');
      skip_ws();
      expect('"');
      std::string value;
      while (peek() != '"') value += take();
      expect('"');
      node.attrs.emplace(key, value);
    }
    if (peek() == '/') {  // self-closing
      take();
      expect('>');
      return node;
    }
    expect('>');
    // Content: child elements and/or text.
    for (;;) {
      skip_ws();
      if (pos_ >= src_.size()) fail("unterminated element " + node.name);
      if (peek() == '<') {
        if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
          take();  // '<'
          take();  // '/'
          const std::string closing = parse_name();
          if (closing != node.name) fail("mismatched closing tag " + closing);
          skip_ws();
          expect('>');
          return node;
        }
        node.children.push_back(parse_element());
      } else {
        while (peek() != '<' && pos_ < src_.size()) node.text += take();
        // Trim trailing whitespace from text content.
        while (!node.text.empty() &&
               std::isspace(static_cast<unsigned char>(node.text.back()))) {
          node.text.pop_back();
        }
      }
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

const XmlNode* find_child(const XmlNode& node, std::string_view name) {
  for (const auto& c : node.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string attr_or(const XmlNode& node, const std::string& key,
                    std::string fallback) {
  const auto it = node.attrs.find(key);
  return it == node.attrs.end() ? std::move(fallback) : it->second;
}

C1G2Filter parse_filter(const XmlNode& node) {
  C1G2Filter f;
  f.bank = static_cast<gen2::MemBank>(std::stoi(attr_or(node, "bank", "1")));
  f.pointer =
      static_cast<std::uint32_t>(std::stoul(attr_or(node, "pointer", "0")));
  f.truncate = attr_or(node, "truncate", "0") == "1";
  const XmlNode* mask = find_child(node, "Mask");
  if (!mask) {
    throw std::invalid_argument("ROSpec XML: C1G2Filter missing <Mask>");
  }
  f.mask = util::BitString::from_binary(mask->text);
  return f;
}

AISpec parse_aispec(const XmlNode& node) {
  AISpec spec;
  spec.session =
      static_cast<gen2::Session>(std::stoi(attr_or(node, "session", "1")));
  spec.initial_q =
      static_cast<std::uint8_t>(std::stoi(attr_or(node, "initialQ", "4")));
  spec.target = gen2::inv_flag_from_string(attr_or(node, "target", "A"));
  spec.rearm_session = attr_or(node, "rearm", "1") != "0";
  if (const XmlNode* ants = find_child(node, "Antennas");
      ants && !ants->text.empty()) {
    std::stringstream ss(ants->text);
    std::string item;
    while (std::getline(ss, item, ',')) {
      spec.antenna_indexes.push_back(std::stoul(item));
    }
  }
  for (const auto& child : node.children) {
    if (child.name == "C1G2Filter") spec.filters.push_back(parse_filter(child));
  }
  if (const XmlNode* stop = find_child(node, "StopTrigger")) {
    const std::string kind = attr_or(*stop, "kind", "rounds");
    if (kind == "duration") {
      spec.stop = AiSpecStopTrigger::after_duration(
          util::from_seconds(std::stod(attr_or(*stop, "ms", "0")) / 1000.0));
    } else if (kind == "rounds") {
      spec.stop = AiSpecStopTrigger::after_rounds(
          std::stoul(attr_or(*stop, "rounds", "1")));
    } else {
      throw std::invalid_argument("ROSpec XML: unknown StopTrigger kind " +
                                  kind);
    }
  }
  return spec;
}

}  // namespace

std::string to_xml(const ROSpec& spec) {
  std::ostringstream out;
  out << "<ROSpec id=\"" << spec.id << "\" priority=\""
      << static_cast<int>(spec.priority) << "\" loops=\"" << spec.loops
      << "\">\n";
  for (const auto& ai : spec.ai_specs) write_aispec(out, ai);
  out << "</ROSpec>\n";
  return out.str();
}

ROSpec rospec_from_xml(std::string_view xml) {
  XmlParser parser(xml);
  const XmlNode root = parser.parse_document();
  if (root.name != "ROSpec") {
    throw std::invalid_argument("ROSpec XML: root element must be <ROSpec>");
  }
  ROSpec spec;
  spec.id = static_cast<std::uint32_t>(std::stoul(attr_or(root, "id", "1")));
  spec.priority =
      static_cast<std::uint8_t>(std::stoi(attr_or(root, "priority", "0")));
  spec.loops = std::stoul(attr_or(root, "loops", "1"));
  for (const auto& child : root.children) {
    if (child.name == "AISpec") spec.ai_specs.push_back(parse_aispec(child));
  }
  return spec;
}

}  // namespace tagwatch::llrp
