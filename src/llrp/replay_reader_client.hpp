// ReplayReaderClient: replays a ReaderJournal deterministically.
//
// No simulator, no hardware: each execute() call pops the next recorded
// operation, verifies the issued ROSpec matches the recorded one (strict
// mode), streams the recorded readings to the listener, and moves the clock
// to the recorded end time.  advance() likewise consumes the recorded
// charge, *ignoring* the caller-supplied amount — host compute time varies
// run to run, and pinning the clock to the journal is what makes a replayed
// controller reproduce the recorded run bit-for-bit.
#pragma once

#include "llrp/reader_client.hpp"
#include "llrp/reader_journal.hpp"

namespace tagwatch::llrp {

/// Replays a recorded reader session.
class ReplayReaderClient final : public ReaderClient {
 public:
  /// `strict`: throw std::runtime_error when the controller under replay
  /// issues an operation that diverges from the journal (different ROSpec
  /// digest, execute where an advance was recorded, or running past the
  /// end).  Non-strict replay skips the checks it can and keeps going.
  explicit ReplayReaderClient(ReaderJournal journal, bool strict = true);

  /// Returns the recorded result — recorded transport errors replay too,
  /// so a controller's retry/degradation decisions reproduce exactly.
  ExecutionResult execute(const ROSpec& spec) override;
  util::SimTime now() const override { return now_; }
  void set_read_listener(gen2::ReadCallback listener) override {
    listener_ = std::move(listener);
  }
  ReaderCapabilities capabilities() const override;

  /// Consumes the recorded advance (the argument is intentionally unused —
  /// see file comment).  Strict replay requires the next recorded
  /// operation to be an advance.
  void advance(util::SimDuration d) override;

  /// Journal entries not yet replayed.
  std::size_t remaining() const noexcept {
    return journal_.size() - cursor_;
  }

 private:
  const JournalEntry& take(JournalEntry::Kind expected);

  ReaderJournal journal_;
  std::size_t cursor_ = 0;
  std::size_t execute_count_ = 0;  ///< ROSpec index for divergence messages.
  util::SimTime now_{0};
  bool strict_;
  gen2::ReadCallback listener_;
};

}  // namespace tagwatch::llrp
