// XML serialization of ROSpecs.
//
// LLRP tooling (the LTK the paper uses) configures readers with ROSpec XML
// documents (paper Fig. 11).  This supports saving/loading schedules and
// inspecting what Tagwatch sends to the reader.  The dialect is a compact
// element-per-field subset, e.g.:
//
//   <ROSpec id="1" priority="0" loops="1">
//     <AISpec session="1" initialQ="4">
//       <Antennas>0,1</Antennas>
//       <C1G2Filter bank="1" pointer="3">
//         <Mask>11</Mask>
//       </C1G2Filter>
//       <StopTrigger kind="duration" ms="5000"/>
//     </AISpec>
//   </ROSpec>
#pragma once

#include <string>

#include "llrp/rospec.hpp"

namespace tagwatch::llrp {

/// Renders a ROSpec as XML (stable formatting, round-trips with parse).
std::string to_xml(const ROSpec& spec);

/// Parses XML produced by to_xml (or hand-written in the same dialect).
/// Throws std::invalid_argument with a line-context message on bad input.
ROSpec rospec_from_xml(std::string_view xml);

}  // namespace tagwatch::llrp
