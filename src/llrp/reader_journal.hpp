// ReaderJournal: a persistent trace of every operation a ReaderClient ran.
//
// RecordingReaderClient appends one entry per execute()/advance() call;
// ReplayReaderClient consumes the entries in order to reproduce a captured
// run without the simulator (or hardware) behind it.  The CSV form is
// line-oriented and exact: timestamps are integral microseconds and floats
// are printed with round-trip precision, so a save/load cycle is lossless
// and replayed runs are bit-for-bit identical to the recording.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "llrp/reader_client.hpp"

namespace tagwatch::llrp {

/// Stable 64-bit digest of a ROSpec (FNV-1a over its canonical XML form).
/// Replay uses it to verify the controller under test is issuing the same
/// reader operations the recorded controller did.
std::uint64_t rospec_digest(const ROSpec& spec);

class ReaderJournal;

/// Stable 64-bit digest of a whole journal (FNV-1a over its canonical CSV
/// form) — the quantity a record→replay round trip must preserve exactly.
/// tagwatch_sim prints it next to every recording so two runs can be
/// compared without diffing the traces.
std::uint64_t journal_digest(const ReaderJournal& journal);

/// One journaled client operation.
struct JournalEntry {
  enum class Kind {
    kExecute,  ///< One execute(ROSpec) call and everything it returned.
    kAdvance,  ///< One advance(d) call (charged host compute time).
  };
  Kind kind = Kind::kExecute;

  // kExecute fields.
  std::uint64_t digest = 0;    ///< rospec_digest of the executed spec.
  util::SimTime start{0};      ///< Reader clock when the call began.
  ExecutionReport report;      ///< Everything the call returned.
  /// Transport failure the call reported, if any (faulty runs journal
  /// their errors so replay reproduces them bit-exactly).
  std::optional<ReaderError> error;

  // kAdvance field.
  util::SimDuration advance{0};

  /// The execute()'s report + error reassembled as the client returned it.
  ExecutionResult result() const { return ExecutionResult{report, error}; }
};

/// In-memory journal of one reader-client run, with CSV persistence.
class ReaderJournal {
 public:
  void push(JournalEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<JournalEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Capabilities of the backend that produced the journal; replay reports
  /// these so the controller builds identical ROSpecs (antenna cycling!).
  ReaderCapabilities capabilities;

  /// Renders the journal as CSV (stable formatting, round-trips exactly
  /// with from_csv).
  std::string to_csv() const;

  /// Parses CSV produced by to_csv.  Throws std::invalid_argument with a
  /// line-context message on malformed input.
  static ReaderJournal from_csv(std::string_view csv);

  /// File convenience wrappers.  Throw std::runtime_error on I/O failure.
  void save(const std::string& path) const;
  static ReaderJournal load(const std::string& path);

 private:
  std::vector<JournalEntry> entries_;
};

}  // namespace tagwatch::llrp
