#include "llrp/replay_reader_client.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace tagwatch::llrp {

namespace {

[[noreturn]] void diverged(std::size_t index, const std::string& what) {
  throw std::runtime_error("ReplayReaderClient: entry " +
                           std::to_string(index) + ": " + what);
}

}  // namespace

ReplayReaderClient::ReplayReaderClient(ReaderJournal journal, bool strict)
    : journal_(std::move(journal)), strict_(strict) {
  // Start the clock where the recording did (first execute's start time).
  for (const JournalEntry& e : journal_.entries()) {
    if (e.kind == JournalEntry::Kind::kExecute) {
      now_ = e.start;
      break;
    }
  }
}

const JournalEntry& ReplayReaderClient::take(JournalEntry::Kind expected) {
  if (cursor_ >= journal_.size()) {
    diverged(cursor_, "journal exhausted (recorded run was shorter)");
  }
  const JournalEntry& entry = journal_.entries()[cursor_];
  if (entry.kind != expected) {
    diverged(cursor_, expected == JournalEntry::Kind::kExecute
                          ? "execute() issued where an advance was recorded"
                          : "advance() issued where an execute was recorded");
  }
  ++cursor_;
  return entry;
}

ExecutionResult ReplayReaderClient::execute(const ROSpec& spec) {
  // Non-strict replay tolerates interleaved advances it didn't expect by
  // skipping to the next recorded execute.
  if (!strict_) {
    while (cursor_ < journal_.size() &&
           journal_.entries()[cursor_].kind == JournalEntry::Kind::kAdvance) {
      now_ += journal_.entries()[cursor_].advance;
      ++cursor_;
    }
  }
  const std::size_t rospec_index = execute_count_++;
  const JournalEntry& entry = take(JournalEntry::Kind::kExecute);
  if (strict_) {
    const std::uint64_t digest = rospec_digest(spec);
    if (digest != entry.digest) {
      char digests[64];
      std::snprintf(digests, sizeof(digests),
                    "issued %016llx, recorded %016llx",
                    static_cast<unsigned long long>(digest),
                    static_cast<unsigned long long>(entry.digest));
      diverged(cursor_ - 1,
               "ROSpec #" + std::to_string(rospec_index) +
                   " diverges from the recorded operation (" + digests +
                   ") — the controller under replay is making different "
                   "scheduling decisions than the recorded one");
    }
  }
  now_ = entry.start + entry.report.duration;
  if (listener_) {
    for (const rf::TagReading& r : entry.report.readings) listener_(r);
  }
  return entry.result();
}

ReaderCapabilities ReplayReaderClient::capabilities() const {
  ReaderCapabilities caps = journal_.capabilities;
  caps.model = "replay(" + caps.model + ")";
  caps.live = false;
  return caps;
}

void ReplayReaderClient::advance(util::SimDuration d) {
  if (cursor_ < journal_.size() &&
      journal_.entries()[cursor_].kind == JournalEntry::Kind::kAdvance) {
    now_ += journal_.entries()[cursor_].advance;
    ++cursor_;
    return;
  }
  if (strict_) take(JournalEntry::Kind::kAdvance);  // Throws with context.
  // Non-strict with no recorded advance: stay on the journal's timeline.
  (void)d;
}

}  // namespace tagwatch::llrp
