// ReaderClient: the abstract transport between Tagwatch and a reader.
//
// The paper positions Tagwatch as middleware between any LLRP-speaking Gen2
// reader and upper applications (Fig. 5).  This interface is that seam: the
// controller (and every tool/bench/example) drives a reader exclusively
// through ROSpecs and reads the results back, never naming a concrete
// backend.  Implementations:
//
//   SimReaderClient        — executes ROSpecs on the simulated Gen2 reader.
//   RecordingReaderClient  — decorator journaling every operation to a
//                            CSV trace (reader_journal.hpp).
//   ReplayReaderClient     — replays a journal deterministically, with no
//                            simulator behind it.
//
// A future LTK-backed client for physical readers slots in the same way.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gen2/reader.hpp"
#include "llrp/rospec.hpp"

namespace tagwatch::llrp {

/// Aggregate result of executing one ROSpec.
struct ExecutionReport {
  std::vector<rf::TagReading> readings;
  std::size_t rounds = 0;
  util::SimDuration duration{0};
  gen2::RoundStats slot_totals;  ///< Summed over all rounds.
};

/// How an execute() can fail — the failure modes a COTS LLRP reader
/// actually exhibits (and that FaultInjectingReaderClient reproduces).
enum class ReaderErrorKind {
  kTimeout,        ///< The reader stopped responding; time elapsed anyway.
  kDisconnected,   ///< TCP session dropped mid-operation; needs reconnect.
  kProtocolError,  ///< Malformed/unexpected LLRP message from the reader.
  kPartialReport,  ///< Some TagReportData batches were lost in transit.
  kAntennaLost,    ///< An antenna port stopped driving (cable/port fault).
};

/// Stable lower-case name ("timeout", "disconnected", ...) for logs and
/// journal persistence.
const char* to_string(ReaderErrorKind kind);

/// Parses a name produced by to_string.  Throws std::invalid_argument on
/// anything else.
ReaderErrorKind reader_error_kind_from_string(std::string_view name);

/// One transport failure, attached to the execute() that suffered it.
struct ReaderError {
  ReaderErrorKind kind = ReaderErrorKind::kTimeout;
  /// kAntennaLost: index (into the reader's antenna list) of the dead port.
  std::size_t antenna = 0;
  /// Human-readable detail for logs.
  std::string message;
};

/// What one execute() produced: the report, plus the error that cut it
/// short (if any).  On error the report still carries everything salvaged
/// before the failure — partial readings, rounds run, time elapsed — so
/// callers can use what arrived and charge the time that passed.
struct ExecutionResult {
  ExecutionReport report;
  std::optional<ReaderError> error;

  bool ok() const noexcept { return !error.has_value(); }
};

/// What a reader backend can do — the LLRP GET_READER_CAPABILITIES subset
/// the controller consults when building ROSpecs.
struct ReaderCapabilities {
  /// Human-readable backend identifier ("sim-gen2", "replay", ...).
  std::string model;
  /// Antenna ports the backend can drive (Phase I cycles one round per
  /// antenna; Phase II round-robins selective rounds across them).
  std::size_t antenna_count = 1;
  /// Channels in the backend's hop plan.
  std::size_t channel_count = 1;
  /// Whether C1G2 Truncate on the final Select is honored.
  bool supports_truncation = true;
  /// False for pre-recorded backends (ReplayReaderClient): time comes from
  /// the journal, not from executing anything.
  bool live = true;
};

/// Abstract reader transport.  All implementations are single-threaded and
/// advance a simulated (or journaled) clock as a side effect of execute().
class ReaderClient {
 public:
  ReaderClient() = default;
  ReaderClient(const ReaderClient&) = delete;
  ReaderClient& operator=(const ReaderClient&) = delete;
  virtual ~ReaderClient() = default;

  /// Runs the ROSpec and returns everything it read.  A failing transport
  /// reports the error in the result (never by throwing) together with any
  /// partial readings and the time that elapsed before the failure.
  virtual ExecutionResult execute(const ROSpec& spec) = 0;

  /// Current reader-clock time.
  virtual util::SimTime now() const = 0;

  /// Streams every read to `listener` (in addition to execute()'s report),
  /// in slot order, as it happens.  Pass nullptr to detach.
  virtual void set_read_listener(gen2::ReadCallback listener) = 0;

  /// Static capability query (LLRP GET_READER_CAPABILITIES).
  virtual ReaderCapabilities capabilities() const = 0;

  /// Advances the reader clock by `d` without reading — how the controller
  /// charges out-of-band host time (e.g. scheduling compute) onto the
  /// timeline so inter-phase gaps reflect it (Fig. 17).
  virtual void advance(util::SimDuration d) = 0;

  /// Reshapes the reader's RF coverage footprint (on hardware: transmit
  /// power control) — zone takeover widens a fleet survivor's field over a
  /// failed neighbor's zone.  Returns false when the backend cannot apply
  /// it: replay clients, whose journals already embed whatever coverage
  /// was in effect when the run was recorded.
  virtual bool set_coverage_zone(const sim::Zone& zone) {
    (void)zone;
    return false;
  }
};

}  // namespace tagwatch::llrp
