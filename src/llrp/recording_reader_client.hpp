// RecordingReaderClient: a ReaderClient decorator that journals every
// operation it forwards.
//
// Wrap any backend (typically SimReaderClient) and run a deployment through
// it: the recorder captures each execute()'s ROSpec digest, start time, and
// full ExecutionReport, plus every advance() charge, into a ReaderJournal.
// Save the journal and a ReplayReaderClient can re-run the exact session —
// the regression-testing loop for scheduler decisions against captured
// traces.
#pragma once

#include "llrp/reader_client.hpp"
#include "llrp/reader_journal.hpp"

namespace tagwatch::llrp {

/// Journals every ROSpec execution + reading while forwarding to `inner`.
class RecordingReaderClient final : public ReaderClient {
 public:
  /// `inner` must outlive the recorder.  Readings stream through to the
  /// recorder's listener in slot order, exactly as `inner` produces them.
  explicit RecordingReaderClient(ReaderClient& inner);

  /// Journals the full result — including any transport error — so a
  /// faulty run replays bit-exactly, failures and all.
  ExecutionResult execute(const ROSpec& spec) override;
  util::SimTime now() const override { return inner_->now(); }
  void set_read_listener(gen2::ReadCallback listener) override {
    listener_ = std::move(listener);
  }
  ReaderCapabilities capabilities() const override;
  void advance(util::SimDuration d) override;

  /// Coverage changes pass through un-journaled: the fleet re-derives them
  /// deterministically from journaled cycle outcomes during replay, and
  /// the recorded readings already reflect the footprint in effect.
  bool set_coverage_zone(const sim::Zone& zone) override {
    return inner_->set_coverage_zone(zone);
  }

  /// The journal accumulated so far.
  const ReaderJournal& journal() const noexcept { return journal_; }

  /// Moves the journal out (the recorder starts a fresh one).
  ReaderJournal take_journal();

 private:
  ReaderClient* inner_;
  gen2::ReadCallback listener_;
  ReaderJournal journal_;
};

}  // namespace tagwatch::llrp
