// LLRP reader-operation specifications (the subset Tagwatch uses).
//
// LLRP (EPCglobal Low Level Reader Protocol) is how a client delivers Gen2
// parameters to a COTS reader.  Tagwatch configures selective reading by
// sending a ROSpec whose AISpecs carry C1G2 filters — each filter maps to a
// Gen2 Select bitmask (paper §6, Fig. 11).  The structures here mirror the
// LLRP information model; SimReaderClient executes them against the
// simulated reader.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gen2/commands.hpp"
#include "util/bitstring.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::llrp {

/// A C1G2 inventory filter == one Gen2 Select bitmask S(mask, pointer, len).
struct C1G2Filter {
  gen2::MemBank bank = gen2::MemBank::kEpc;
  std::uint32_t pointer = 0;
  util::BitString mask;  ///< Length field == mask.size().
  /// Gen2 Truncate: matching tags backscatter only the EPC bits after the
  /// mask, shortening selective-read replies (the reader reconstructs the
  /// masked prefix).  Only meaningful on the last Select before a Query.
  bool truncate = false;
};

/// When an AISpec stops running.
struct AiSpecStopTrigger {
  enum class Kind {
    kRounds,    ///< Stop after `rounds` inventory rounds.
    kDuration,  ///< Stop once `duration` of reader time has elapsed
                ///< (the current round is always completed first).
  };
  Kind kind = Kind::kRounds;
  std::size_t rounds = 1;
  util::SimDuration duration{0};

  static AiSpecStopTrigger after_rounds(std::size_t n) {
    return {Kind::kRounds, n, util::SimDuration{0}};
  }
  static AiSpecStopTrigger after_duration(util::SimDuration d) {
    return {Kind::kDuration, 0, d};
  }
};

/// Antenna-inventory spec: which antennas to drive, which tag subpopulation
/// (via filters) to inventory, and for how long.
struct AISpec {
  /// Antenna indexes (into the reader's antenna list) this spec cycles
  /// through, one round per antenna in turn.  Empty means "all antennas".
  std::vector<std::size_t> antenna_indexes;
  /// Conjunctive filters: a tag must match all to participate (Gen2 chains
  /// Selects with deassert-unmatched actions).  Empty means "no selection":
  /// every tag participates.
  std::vector<C1G2Filter> filters;
  gen2::Session session = gen2::Session::kS1;
  /// Inventoried-flag value the Query targets.  Only meaningful with
  /// rearm_session=false; re-armed rounds always query A (the Select just
  /// reset the participants there).
  gen2::InvFlag target = gen2::InvFlag::kA;
  /// Precede every round with Selects that reset the participating
  /// population's session flag (the classic single-reader repeated-reading
  /// discipline).  Fleet deployments coordinating through shared session
  /// state set this false: rounds then consume the A population and rely
  /// on flag persistence/decay — or another reader — to replenish it.
  bool rearm_session = true;
  std::uint8_t initial_q = 4;
  AiSpecStopTrigger stop = AiSpecStopTrigger::after_rounds(1);
};

/// A reader operation: an ordered list of AISpecs, optionally looped.
struct ROSpec {
  std::uint32_t id = 1;
  std::uint8_t priority = 0;
  std::vector<AISpec> ai_specs;
  std::size_t loops = 1;  ///< How many times to run the AISpec list.
};

}  // namespace tagwatch::llrp
