#include "llrp/reader_client.hpp"

#include <stdexcept>

namespace tagwatch::llrp {

const char* to_string(ReaderErrorKind kind) {
  switch (kind) {
    case ReaderErrorKind::kTimeout:
      return "timeout";
    case ReaderErrorKind::kDisconnected:
      return "disconnected";
    case ReaderErrorKind::kProtocolError:
      return "protocol-error";
    case ReaderErrorKind::kPartialReport:
      return "partial-report";
    case ReaderErrorKind::kAntennaLost:
      return "antenna-lost";
  }
  return "unknown";
}

ReaderErrorKind reader_error_kind_from_string(std::string_view name) {
  if (name == "timeout") return ReaderErrorKind::kTimeout;
  if (name == "disconnected") return ReaderErrorKind::kDisconnected;
  if (name == "protocol-error") return ReaderErrorKind::kProtocolError;
  if (name == "partial-report") return ReaderErrorKind::kPartialReport;
  if (name == "antenna-lost") return ReaderErrorKind::kAntennaLost;
  throw std::invalid_argument("unknown ReaderErrorKind name: " +
                              std::string(name));
}

}  // namespace tagwatch::llrp
