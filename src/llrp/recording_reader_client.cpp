#include "llrp/recording_reader_client.hpp"

namespace tagwatch::llrp {

RecordingReaderClient::RecordingReaderClient(ReaderClient& inner)
    : inner_(&inner) {
  // Tap the inner client's stream so our listener sees readings live (in
  // slot order, mid-execute) rather than batched when execute() returns.
  inner_->set_read_listener([this](const rf::TagReading& reading) {
    if (listener_) listener_(reading);
  });
  journal_.capabilities = inner_->capabilities();
}

ExecutionResult RecordingReaderClient::execute(const ROSpec& spec) {
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kExecute;
  entry.digest = rospec_digest(spec);
  entry.start = inner_->now();
  ExecutionResult result = inner_->execute(spec);
  entry.report = result.report;
  entry.error = result.error;
  journal_.push(std::move(entry));
  return result;
}

ReaderCapabilities RecordingReaderClient::capabilities() const {
  ReaderCapabilities caps = inner_->capabilities();
  caps.model = "recording(" + caps.model + ")";
  return caps;
}

void RecordingReaderClient::advance(util::SimDuration d) {
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kAdvance;
  entry.advance = d;
  journal_.push(std::move(entry));
  inner_->advance(d);
}

ReaderJournal RecordingReaderClient::take_journal() {
  ReaderJournal out = std::move(journal_);
  journal_ = ReaderJournal{};
  journal_.capabilities = inner_->capabilities();
  return out;
}

}  // namespace tagwatch::llrp
