#include "llrp/fault_injection.hpp"

#include <cmath>
#include <string>

#include "util/circular.hpp"

namespace tagwatch::llrp {

FaultInjectingReaderClient::FaultInjectingReaderClient(ReaderClient& inner,
                                                       FaultPlan plan)
    : inner_(&inner), plan_(std::move(plan)), rng_(plan_.seed) {}

ReaderCapabilities FaultInjectingReaderClient::capabilities() const {
  ReaderCapabilities caps = inner_->capabilities();
  caps.model = "faulty(" + caps.model + ")";
  return caps;
}

bool FaultInjectingReaderClient::targets_lost_antenna(
    const ROSpec& spec) const {
  if (lost_antennas_.empty()) return false;
  for (const AISpec& ai : spec.ai_specs) {
    // An empty antenna list means "all antennas", which includes the dead
    // ones — the operation fails until the caller names healthy ports.
    if (ai.antenna_indexes.empty()) return true;
    for (const std::size_t a : ai.antenna_indexes) {
      if (lost_antennas_.contains(a)) return true;
    }
  }
  return false;
}

std::optional<ScriptedFault> FaultInjectingReaderClient::fault_for(
    std::size_t index, const ROSpec& spec) {
  // A fresh disconnect (scripted or probabilistic) opens an episode of
  // episode_length consecutive failures; the continuation branch below
  // consumes it without re-arming, so the episode actually ends.
  const auto arm_episode = [this] {
    if (plan_.disconnect_episode_length > 1) {
      disconnect_remaining_ = plan_.disconnect_episode_length - 1;
    }
  };
  for (const ScriptedFault& f : plan_.scripted) {
    if (f.execute_index == index) {
      if (f.kind == ReaderErrorKind::kDisconnected) arm_episode();
      return f;
    }
  }
  const util::SimTime now = inner_->now();
  for (const OutageWindow& o : plan_.outages) {
    if (now >= o.from && (!o.until.has_value() || now < *o.until)) {
      ScriptedFault f;
      f.execute_index = index;
      f.kind = ReaderErrorKind::kDisconnected;
      return f;
    }
  }
  if (disconnect_remaining_ > 0) {
    --disconnect_remaining_;
    ScriptedFault f;
    f.execute_index = index;
    f.kind = ReaderErrorKind::kDisconnected;
    return f;
  }
  if (targets_lost_antenna(spec)) {
    ScriptedFault f;
    f.execute_index = index;
    f.kind = ReaderErrorKind::kAntennaLost;
    f.antenna = *lost_antennas_.begin();
    // Find the first lost antenna the spec actually drives, for the error.
    for (const AISpec& ai : spec.ai_specs) {
      for (const std::size_t a : ai.antenna_indexes) {
        if (lost_antennas_.contains(a)) {
          f.antenna = a;
          return f;
        }
      }
    }
    return f;
  }
  if (plan_.execute_failure_probability > 0.0 &&
      rng_.chance(plan_.execute_failure_probability)) {
    const double total = plan_.weight_timeout + plan_.weight_disconnect +
                         plan_.weight_protocol_error +
                         plan_.weight_partial_report;
    ScriptedFault f;
    f.execute_index = index;
    f.kind = ReaderErrorKind::kTimeout;
    if (total > 0.0) {
      double draw = rng_.uniform(0.0, total);
      if ((draw -= plan_.weight_timeout) < 0.0) {
        f.kind = ReaderErrorKind::kTimeout;
      } else if ((draw -= plan_.weight_disconnect) < 0.0) {
        f.kind = ReaderErrorKind::kDisconnected;
      } else if ((draw -= plan_.weight_protocol_error) < 0.0) {
        f.kind = ReaderErrorKind::kProtocolError;
      } else {
        f.kind = ReaderErrorKind::kPartialReport;
      }
    }
    if (f.kind == ReaderErrorKind::kDisconnected) arm_episode();
    return f;
  }
  return std::nullopt;
}

ExecutionResult FaultInjectingReaderClient::run_inner_mangled(
    const ROSpec& spec) {
  ExecutionResult result = inner_->execute(spec);
  if (plan_.reading_drop_rate <= 0.0 && plan_.reading_duplicate_rate <= 0.0 &&
      plan_.phase_corruption_rate <= 0.0) {
    return result;
  }
  std::vector<rf::TagReading> mangled;
  mangled.reserve(result.report.readings.size());
  for (rf::TagReading r : result.report.readings) {
    if (plan_.reading_drop_rate > 0.0 && rng_.chance(plan_.reading_drop_rate)) {
      ++stats_.dropped_readings;
      continue;
    }
    if (plan_.phase_corruption_rate > 0.0 &&
        rng_.chance(plan_.phase_corruption_rate)) {
      double phase =
          r.phase_rad + rng_.normal(0.0, plan_.phase_corruption_stddev_rad);
      phase = std::fmod(phase, util::kTwoPi);
      if (phase < 0.0) phase += util::kTwoPi;
      r.phase_rad = phase;
      ++stats_.corrupted_readings;
    }
    mangled.push_back(r);
    if (plan_.reading_duplicate_rate > 0.0 &&
        rng_.chance(plan_.reading_duplicate_rate)) {
      mangled.push_back(r);
      ++stats_.duplicated_readings;
    }
  }
  result.report.readings = std::move(mangled);
  return result;
}

ExecutionResult FaultInjectingReaderClient::execute(const ROSpec& spec) {
  const std::size_t index = stats_.executes++;
  const std::optional<ScriptedFault> fault = fault_for(index, spec);

  ExecutionResult result;
  if (!fault) {
    result = run_inner_mangled(spec);
  } else {
    switch (fault->kind) {
      case ReaderErrorKind::kDisconnected: {
        // The session dropped before the operation ran: nothing was read,
        // and re-establishing the connection costs reader time.
        ++stats_.injected_disconnects;
        inner_->advance(plan_.reconnect_latency);
        result.report.duration = plan_.reconnect_latency;
        result.error = ReaderError{
            ReaderErrorKind::kDisconnected, 0,
            "injected disconnect (execute #" + std::to_string(index) + ")"};
        break;
      }
      case ReaderErrorKind::kAntennaLost: {
        // The port is dead from this execute on; the operation fails fast
        // until the caller stops driving the lost antenna.
        ++stats_.injected_antenna_losses;
        lost_antennas_.insert(fault->antenna);
        result.error = ReaderError{
            ReaderErrorKind::kAntennaLost, fault->antenna,
            "injected antenna loss: port index " +
                std::to_string(fault->antenna) + " (execute #" +
                std::to_string(index) + ")"};
        break;
      }
      case ReaderErrorKind::kTimeout:
      case ReaderErrorKind::kProtocolError:
      case ReaderErrorKind::kPartialReport: {
        // The inventory ran (time passed, slots were spent) but reporting
        // broke down; a fraction of the readings survives as the partial.
        if (fault->kind == ReaderErrorKind::kTimeout) {
          ++stats_.injected_timeouts;
        } else if (fault->kind == ReaderErrorKind::kProtocolError) {
          ++stats_.injected_protocol_errors;
        } else {
          ++stats_.injected_partial_reports;
        }
        result = run_inner_mangled(spec);
        const std::size_t keep = static_cast<std::size_t>(
            static_cast<double>(result.report.readings.size()) *
            plan_.failure_keep_fraction);
        result.report.readings.resize(keep);
        result.error =
            ReaderError{fault->kind, 0,
                        std::string("injected ") + to_string(fault->kind) +
                            " (execute #" + std::to_string(index) + ")"};
        break;
      }
    }
  }

  if (listener_) {
    for (const rf::TagReading& r : result.report.readings) listener_(r);
  }
  return result;
}

}  // namespace tagwatch::llrp
