#include "llrp/fleet_journal.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/bitstring.hpp"

namespace tagwatch::llrp {

namespace {

constexpr const char* kHeader = "# tagwatch-fleet-journal v1";

/// Splits one CSV line into fields (no quoting: fields never contain ',').
std::vector<std::string> split_fields(std::string_view line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string_view::npos) {
      fields.emplace_back(line.substr(pos));
      break;
    }
    fields.emplace_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return fields;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("FleetJournal: line " + std::to_string(line_no) +
                              ": " + what);
}

std::int64_t parse_int(const std::string& s, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(s, &used);
    if (used != s.size()) fail(line_no, "trailing garbage in '" + s + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line_no, "expected integer, got '" + s + "'");
  } catch (const std::out_of_range&) {
    fail(line_no, "integer out of range: '" + s + "'");
  }
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit offset basis.
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// CSV fields never contain ',' or '\n'; free-form text is flattened.
std::string sanitize_field(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  }
  return s;
}

}  // namespace

std::uint64_t fleet_journal_digest(const FleetJournal& journal) {
  return fnv1a(journal.to_csv());
}

std::string FleetJournal::to_csv() const {
  std::ostringstream out;
  out << kHeader << '\n';
  out << "S," << setup.readers << ',' << sanitize_field(setup.policy) << ','
      << gen2::to_string(setup.session) << ',' << setup.dedup_window.count()
      << '\n';
  for (const FleetJournalEntry& e : entries_) {
    switch (e.kind) {
      case FleetJournalEntry::Kind::kHandoff:
        out << "H," << e.handoff.epc.to_binary() << ','
            << e.handoff.from_reader << ',' << e.handoff.to_reader << ','
            << e.handoff.at.count() << '\n';
        break;
      case FleetJournalEntry::Kind::kDown:
        out << "D," << e.down.cycle << ',' << e.down.reader << ','
            << sanitize_field(e.down.zone) << ','
            << e.down.consecutive_failures << '\n';
        break;
      case FleetJournalEntry::Kind::kTakeover:
        out << "T," << e.takeover.cycle << ',' << e.takeover.from_reader
            << ',' << e.takeover.to_reader << ',' << e.takeover.radius_mm
            << '\n';
        break;
      case FleetJournalEntry::Kind::kRecover:
        out << "R," << e.recover.cycle << ',' << e.recover.reader << ','
            << e.recover.down_for_cycles << '\n';
        break;
      case FleetJournalEntry::Kind::kCycle: {
        const FleetCycleRecord& c = e.cycle;
        out << "F," << c.cycle << ',' << c.reader << ','
            << sanitize_field(c.zone) << ',' << c.phase1_readings << ','
            << c.phase2_readings << ',' << c.delivered << ',' << c.duplicates
            << '\n';
        break;
      }
    }
  }
  return out.str();
}

FleetJournal FleetJournal::from_csv(std::string_view csv) {
  FleetJournal journal;
  std::istringstream in{std::string(csv)};
  std::string line;
  std::size_t line_no = 0;
  bool saw_setup = false;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1) {
      if (line != kHeader) fail(line_no, "missing journal header");
      continue;
    }
    const std::vector<std::string> f = split_fields(line);
    if (f[0] == "S") {
      if (f.size() != 5) fail(line_no, "setup line needs 5 fields");
      if (saw_setup) fail(line_no, "duplicate setup line");
      journal.setup.readers =
          static_cast<std::size_t>(parse_int(f[1], line_no));
      journal.setup.policy = f[2];
      try {
        journal.setup.session = gen2::session_from_string(f[3]);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      journal.setup.dedup_window = util::SimDuration(parse_int(f[4], line_no));
      saw_setup = true;
    } else if (f[0] == "F") {
      if (f.size() != 8) fail(line_no, "cycle line needs 8 fields");
      FleetCycleRecord c;
      c.cycle = static_cast<std::size_t>(parse_int(f[1], line_no));
      c.reader = static_cast<std::size_t>(parse_int(f[2], line_no));
      c.zone = f[3];
      c.phase1_readings = static_cast<std::size_t>(parse_int(f[4], line_no));
      c.phase2_readings = static_cast<std::size_t>(parse_int(f[5], line_no));
      c.delivered = static_cast<std::size_t>(parse_int(f[6], line_no));
      c.duplicates = static_cast<std::size_t>(parse_int(f[7], line_no));
      journal.push_cycle(std::move(c));
    } else if (f[0] == "H") {
      if (f.size() != 5) fail(line_no, "handoff line needs 5 fields");
      FleetHandoffRecord h;
      try {
        h.epc = util::Epc(util::BitString::from_binary(f[1]));
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
      h.from_reader = static_cast<std::size_t>(parse_int(f[2], line_no));
      h.to_reader = static_cast<std::size_t>(parse_int(f[3], line_no));
      h.at = util::SimTime(parse_int(f[4], line_no));
      journal.push_handoff(std::move(h));
    } else if (f[0] == "D") {
      if (f.size() != 5) fail(line_no, "down line needs 5 fields");
      FleetDownRecord d;
      d.cycle = static_cast<std::size_t>(parse_int(f[1], line_no));
      d.reader = static_cast<std::size_t>(parse_int(f[2], line_no));
      d.zone = f[3];
      d.consecutive_failures =
          static_cast<std::size_t>(parse_int(f[4], line_no));
      journal.push_down(std::move(d));
    } else if (f[0] == "T") {
      if (f.size() != 5) fail(line_no, "takeover line needs 5 fields");
      FleetTakeoverRecord t;
      t.cycle = static_cast<std::size_t>(parse_int(f[1], line_no));
      t.from_reader = static_cast<std::size_t>(parse_int(f[2], line_no));
      t.to_reader = static_cast<std::size_t>(parse_int(f[3], line_no));
      t.radius_mm = parse_int(f[4], line_no);
      journal.push_takeover(t);
    } else if (f[0] == "R") {
      if (f.size() != 4) fail(line_no, "recover line needs 4 fields");
      FleetRecoverRecord r;
      r.cycle = static_cast<std::size_t>(parse_int(f[1], line_no));
      r.reader = static_cast<std::size_t>(parse_int(f[2], line_no));
      r.down_for_cycles = static_cast<std::size_t>(parse_int(f[3], line_no));
      journal.push_recover(r);
    } else {
      fail(line_no, "unknown record kind '" + f[0] + "'");
    }
  }
  if (!saw_setup && !journal.entries_.empty()) {
    fail(line_no, "journal has records but no setup line");
  }
  return journal;
}

void FleetJournal::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("FleetJournal: cannot open " + path);
  out << to_csv();
  if (!out) throw std::runtime_error("FleetJournal: write failed: " + path);
}

FleetJournal FleetJournal::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("FleetJournal: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_csv(buf.str());
}

}  // namespace tagwatch::llrp
