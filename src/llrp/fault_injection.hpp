// FaultInjectingReaderClient: a ReaderClient decorator that injects the
// failure modes real LLRP readers exhibit — timeouts, disconnects with
// reconnect latency, protocol errors, lost report batches, dead antenna
// ports — plus per-reading corruption (drops, duplicates, phase noise).
//
// Every decision comes from one seeded RNG plus an explicit scripted
// schedule, so a faulty run is deterministic: wrap the injector with a
// RecordingReaderClient and the journal (errors included) replays the run
// bit-exactly.  This is the test harness for TagwatchController's retry,
// degraded-mode, and antenna-quarantine machinery.
#pragma once

#include <set>
#include <vector>

#include "llrp/reader_client.hpp"
#include "util/rng.hpp"

namespace tagwatch::llrp {

/// One pre-scheduled fault: "fail execute #k with this error".  Scripted
/// faults take precedence over the probabilistic ones and make assertions
/// about exact HealthMetrics counts possible.
struct ScriptedFault {
  std::size_t execute_index = 0;  ///< 0-based index of the execute() call.
  ReaderErrorKind kind = ReaderErrorKind::kTimeout;
  std::size_t antenna = 0;  ///< kAntennaLost: which antenna port dies.
};

/// A scripted availability window on the sim clock: every execute()
/// starting inside [from, until) fails as kDisconnected.  Unlike
/// ScriptedFault (indexed by execute count, which retries make hard to
/// predict across a whole fleet cycle), outages are anchored to sim time —
/// the "reader death" / flap primitive behind tagwatch_sim's
/// fleet.fault.down_s / fleet.fault.up_s keys.
struct OutageWindow {
  util::SimTime from{0};
  /// nullopt: the outage never ends (permanent reader death).
  std::optional<util::SimTime> until;
};

/// Seeded, config-driven fault schedule.
struct FaultPlan {
  std::uint64_t seed = 0xfa171;

  // ------------------------------------------------ execute-level faults
  /// Probability that any given execute() fails (scripted faults fire
  /// regardless).
  double execute_failure_probability = 0.0;
  /// Relative weights for picking the kind of a probabilistic failure.
  double weight_timeout = 1.0;
  double weight_disconnect = 0.0;
  double weight_protocol_error = 0.0;
  double weight_partial_report = 0.0;
  /// Deterministic "fail spec #k" triggers.
  std::vector<ScriptedFault> scripted;
  /// Sim-time windows in which every execute fails with kDisconnected
  /// (each failure still charges reconnect_latency, so the clock — and
  /// therefore the window — always makes progress).
  std::vector<OutageWindow> outages;
  /// Fraction of the inner readings surviving a Timeout / ProtocolError /
  /// PartialReport failure (the salvageable partial report).
  double failure_keep_fraction = 0.5;
  /// Reader time charged (via the inner advance()) to re-establish the
  /// session after a Disconnected failure.
  util::SimDuration reconnect_latency = util::msec(50);
  /// Consecutive executes that fail once a disconnect episode starts (the
  /// first one included) — models an outage longer than one operation.
  std::size_t disconnect_episode_length = 1;

  // ------------------------------------------------ per-reading mangling
  double reading_drop_rate = 0.0;       ///< Reading silently lost.
  double reading_duplicate_rate = 0.0;  ///< Reading delivered twice.
  double phase_corruption_rate = 0.0;   ///< Reading's phase gets noise.
  double phase_corruption_stddev_rad = 0.5;
};

/// What the injector actually did — the ground truth tests compare
/// HealthMetrics against.
struct InjectionStats {
  std::uint64_t executes = 0;  ///< Total execute() calls seen.
  std::uint64_t injected_timeouts = 0;
  std::uint64_t injected_disconnects = 0;
  std::uint64_t injected_protocol_errors = 0;
  std::uint64_t injected_partial_reports = 0;
  std::uint64_t injected_antenna_losses = 0;
  std::uint64_t dropped_readings = 0;
  std::uint64_t duplicated_readings = 0;
  std::uint64_t corrupted_readings = 0;

  std::uint64_t injected_faults_total() const {
    return injected_timeouts + injected_disconnects +
           injected_protocol_errors + injected_partial_reports +
           injected_antenna_losses;
  }
};

/// Decorator injecting transport faults between a controller and any
/// inner backend (typically SimReaderClient).
class FaultInjectingReaderClient final : public ReaderClient {
 public:
  /// `inner` must outlive the injector.
  FaultInjectingReaderClient(ReaderClient& inner, FaultPlan plan);

  ExecutionResult execute(const ROSpec& spec) override;
  util::SimTime now() const override { return inner_->now(); }
  void set_read_listener(gen2::ReadCallback listener) override {
    listener_ = std::move(listener);
  }
  /// Capabilities pass through unmodified: the controller discovers lost
  /// antennas from kAntennaLost errors, not from the capability query —
  /// exactly as on hardware, where GET_READER_CAPABILITIES still lists a
  /// port whose cable was pulled.
  ReaderCapabilities capabilities() const override;
  void advance(util::SimDuration d) override { inner_->advance(d); }
  bool set_coverage_zone(const sim::Zone& zone) override {
    return inner_->set_coverage_zone(zone);
  }

  const FaultPlan& plan() const noexcept { return plan_; }
  const InjectionStats& stats() const noexcept { return stats_; }
  /// Antenna indexes killed by kAntennaLost faults so far.
  const std::set<std::size_t>& lost_antennas() const noexcept {
    return lost_antennas_;
  }

 private:
  /// The fault (if any) governing the execute with this index.
  std::optional<ScriptedFault> fault_for(std::size_t index,
                                         const ROSpec& spec);
  /// Runs the inner execute, buffering its stream, and applies per-reading
  /// drop/duplicate/phase-corruption.  Does NOT stream to the listener.
  ExecutionResult run_inner_mangled(const ROSpec& spec);
  /// Whether the spec drives any antenna that has been lost (an empty
  /// antenna list means "all antennas", so any loss poisons it).
  bool targets_lost_antenna(const ROSpec& spec) const;

  ReaderClient* inner_;
  FaultPlan plan_;
  util::Rng rng_;
  gen2::ReadCallback listener_;
  InjectionStats stats_;
  std::size_t disconnect_remaining_ = 0;
  std::set<std::size_t> lost_antennas_;
};

}  // namespace tagwatch::llrp
