#include "sim/world.hpp"

#include <stdexcept>

namespace tagwatch::sim {

std::size_t World::add_tag(SimTag tag) {
  if (!tag.motion) throw std::invalid_argument("World::add_tag: null motion");
  if (index_.contains(tag.epc)) {
    throw std::invalid_argument("World::add_tag: duplicate EPC " +
                                tag.epc.to_hex());
  }
  const std::size_t idx = tags_.size();
  index_.emplace(tag.epc, idx);
  tags_.push_back(std::move(tag));
  return idx;
}

void World::add_reflector(SimReflector reflector) {
  if (!reflector.motion) {
    throw std::invalid_argument("World::add_reflector: null motion");
  }
  reflectors_.push_back(std::move(reflector));
}

std::size_t World::add_zone(Zone zone) {
  if (zone.radius_m <= 0.0) {
    throw std::invalid_argument("World::add_zone: non-positive radius");
  }
  for (const Zone& z : zones_) {
    if (z.name == zone.name) {
      throw std::invalid_argument("World::add_zone: duplicate zone " +
                                  zone.name);
    }
  }
  zones_.push_back(std::move(zone));
  return zones_.size() - 1;
}

const Zone* World::find_zone(std::string_view name) const {
  for (const Zone& z : zones_) {
    if (z.name == name) return &z;
  }
  return nullptr;
}

bool World::remove_tag(const util::Epc& epc) {
  const auto it = index_.find(epc);
  if (it == index_.end()) return false;
  const std::size_t idx = it->second;
  index_.erase(it);
  departures_.push_back({epc, now_});
  tags_.erase(tags_.begin() + static_cast<std::ptrdiff_t>(idx));
  // Reindex the tail.
  for (std::size_t i = idx; i < tags_.size(); ++i) {
    index_[tags_[i].epc] = i;
  }
  ++structure_epoch_;  // Every index past idx just shifted.
  return true;
}

bool World::set_tag_motion(const util::Epc& epc,
                           std::shared_ptr<const MotionModel> motion) {
  if (!motion) {
    throw std::invalid_argument("World::set_tag_motion: null motion");
  }
  const auto it = index_.find(epc);
  if (it == index_.end()) return false;
  tags_[it->second].motion = std::move(motion);
  ++mobility_epoch_;  // Indexes are untouched; only the mover set moved.
  return true;
}

std::optional<std::size_t> World::find_tag(const util::Epc& epc) const {
  const auto it = index_.find(epc);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool World::tag_present(std::size_t i, util::SimTime t) const {
  return is_present(tags_.at(i), t);
}

std::vector<rf::Reflector> World::reflectors_at(util::SimTime t) const {
  std::vector<rf::Reflector> out;
  out.reserve(reflectors_.size());
  for (const auto& r : reflectors_) {
    out.push_back({r.motion->position(t), r.reflection_coefficient});
  }
  return out;
}

void World::advance(util::SimDuration dt) {
  if (dt < util::SimDuration::zero()) {
    throw std::invalid_argument("World::advance: negative dt");
  }
  now_ += dt;
}

void World::advance_to(util::SimTime t) {
  if (t > now_) now_ = t;
}

}  // namespace tagwatch::sim
