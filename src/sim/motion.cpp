#include "sim/motion.hpp"

#include <cmath>
#include <stdexcept>

namespace tagwatch::sim {

CircularTrack::CircularTrack(util::Vec3 center, double radius_m,
                             double speed_mps, double phase0_rad)
    : center_(center), radius_m_(radius_m), speed_mps_(speed_mps),
      phase0_rad_(phase0_rad) {
  if (radius_m <= 0.0) {
    throw std::invalid_argument("CircularTrack: radius <= 0");
  }
}

util::Vec3 CircularTrack::position(util::SimTime t) const {
  const double angle =
      phase0_rad_ + speed_mps_ / radius_m_ * util::to_seconds(t);
  return center_ + util::Vec3{radius_m_ * std::cos(angle),
                              radius_m_ * std::sin(angle), 0.0};
}

LinearConveyor::LinearConveyor(util::Vec3 origin, util::Vec3 velocity_mps,
                               util::SimTime start_time, double travel_m)
    : origin_(origin), velocity_(velocity_mps), start_(start_time),
      travel_m_(travel_m) {
  if (velocity_.norm() <= 0.0) {
    throw std::invalid_argument("LinearConveyor: zero velocity");
  }
  if (travel_m <= 0.0) {
    throw std::invalid_argument("LinearConveyor: travel <= 0");
  }
}

util::SimTime LinearConveyor::end_time() const noexcept {
  return start_ + util::from_seconds(travel_m_ / velocity_.norm());
}

util::Vec3 LinearConveyor::position(util::SimTime t) const {
  if (t <= start_) return origin_;
  const double elapsed = util::to_seconds(t - start_);
  const double max_elapsed = travel_m_ / velocity_.norm();
  return origin_ + velocity_ * std::min(elapsed, max_elapsed);
}

RandomWaypoint::RandomWaypoint(util::Vec3 box_min, util::Vec3 box_max,
                               double speed_mps, util::SimDuration horizon,
                               util::Rng& rng, util::SimDuration pause) {
  if (speed_mps <= 0.0) {
    throw std::invalid_argument("RandomWaypoint: speed <= 0");
  }
  const auto draw = [&rng, box_min, box_max] {
    return util::Vec3{rng.uniform(box_min.x, box_max.x),
                      rng.uniform(box_min.y, box_max.y),
                      rng.uniform(box_min.z, box_max.z)};
  };
  util::SimTime now{0};
  util::Vec3 here = draw();
  while (now < util::SimTime{0} + horizon) {
    const util::Vec3 next = draw();
    const double leg_m = util::distance(here, next);
    const auto travel = util::from_seconds(leg_m / speed_mps);
    segments_.push_back({now, now + travel, here, next});
    now += travel + pause;
    here = next;
  }
  if (segments_.empty()) {
    segments_.push_back({util::SimTime{0}, util::SimTime{0}, here, here});
  }
}

util::Vec3 RandomWaypoint::position(util::SimTime t) const {
  // Before the first segment: hold the start point.
  if (t <= segments_.front().start) return segments_.front().from;
  for (const auto& seg : segments_) {
    if (t <= seg.start) continue;
    if (t <= seg.end) {
      const double total = util::to_seconds(seg.end - seg.start);
      const double frac =
          total > 0.0 ? util::to_seconds(t - seg.start) / total : 1.0;
      return seg.from + (seg.to - seg.from) * frac;
    }
  }
  // During a pause between segments or after the horizon: last arrival.
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (t > it->end) return it->to;
  }
  return segments_.back().to;
}

}  // namespace tagwatch::sim
