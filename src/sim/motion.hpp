// Kinematic motion models for tags and environmental objects.
//
// Each testbed scenario in the paper maps to a model here:
//   * toy train on a circular/oval track (Fig. 1, §7.1, §7.3) — CircularTrack
//   * spinning turntable carrying mobile tags (§7.3)          — CircularTrack
//   * conveyor transporting baggage through TrackPoint (§2.4) — LinearConveyor
//   * people walking around the office (§7.1)                 — RandomWaypoint
//   * "move a tag away by 1–5 cm" test (§7.1)  — StepDisplacement
#pragma once

#include <memory>

#include "util/geometry.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::sim {

/// A trajectory: position as a function of simulation time.
///
/// Models are immutable after construction (position is a pure function of
/// time), which keeps the discrete-event simulation replayable.
class MotionModel {
 public:
  virtual ~MotionModel() = default;

  /// Position at simulation time `t`.
  virtual util::Vec3 position(util::SimTime t) const = 0;

  /// True if the object can move at all (used as ground truth for the
  /// motion-detection benches).  A model may be instantaneously still and
  /// yet mobile (e.g. a conveyor item before its start time).
  virtual bool is_mobile() const = 0;

  /// Ground-truth "was displaced more than eps between t0 and t1".
  bool moved_between(util::SimTime t0, util::SimTime t1,
                     double eps_m = 1e-4) const {
    return util::distance(position(t0), position(t1)) > eps_m;
  }
};

/// Never moves.
class StaticMotion final : public MotionModel {
 public:
  explicit StaticMotion(util::Vec3 pos) : pos_(pos) {}
  util::Vec3 position(util::SimTime) const override { return pos_; }
  bool is_mobile() const override { return false; }

 private:
  util::Vec3 pos_;
};

/// Uniform circular motion: the toy train on its track, or a tag on a
/// spinning turntable.
class CircularTrack final : public MotionModel {
 public:
  /// `radius_m` track radius, `speed_mps` tangential speed,
  /// `center` track center, `phase0_rad` starting angle.
  CircularTrack(util::Vec3 center, double radius_m, double speed_mps,
                double phase0_rad = 0.0);

  util::Vec3 position(util::SimTime t) const override;
  bool is_mobile() const override { return speed_mps_ != 0.0; }

  double radius_m() const noexcept { return radius_m_; }
  double speed_mps() const noexcept { return speed_mps_; }

 private:
  util::Vec3 center_;
  double radius_m_;
  double speed_mps_;
  double phase0_rad_;
};

/// Straight-line constant-velocity motion that starts at `start_time` and
/// stops (object leaves or halts) after traveling `travel_m`.  Models a
/// parcel riding a conveyor past the TrackPoint gate.
class LinearConveyor final : public MotionModel {
 public:
  LinearConveyor(util::Vec3 origin, util::Vec3 velocity_mps,
                 util::SimTime start_time, double travel_m);

  util::Vec3 position(util::SimTime t) const override;
  bool is_mobile() const override { return true; }

  util::SimTime start_time() const noexcept { return start_; }
  util::SimTime end_time() const noexcept;

 private:
  util::Vec3 origin_;
  util::Vec3 velocity_;
  util::SimTime start_;
  double travel_m_;
};

/// Piecewise-linear walk between random waypoints inside an axis-aligned
/// box — office workers moving around (multipath generators).
/// The waypoint sequence is drawn once at construction from `rng`, so the
/// trajectory is a deterministic function of time afterwards.
class RandomWaypoint final : public MotionModel {
 public:
  RandomWaypoint(util::Vec3 box_min, util::Vec3 box_max, double speed_mps,
                 util::SimDuration horizon, util::Rng& rng,
                 util::SimDuration pause = util::sec(1));

  util::Vec3 position(util::SimTime t) const override;
  bool is_mobile() const override { return true; }

 private:
  struct Segment {
    util::SimTime start;
    util::SimTime end;   // arrival at `to`; position holds at `to` until next
    util::Vec3 from;
    util::Vec3 to;
  };
  std::vector<Segment> segments_;
};

/// Stationary until `step_time`, then instantly displaced by `offset` and
/// stationary again — the §7.1 sensitivity experiment (1–5 cm moves).
class StepDisplacement final : public MotionModel {
 public:
  StepDisplacement(util::Vec3 origin, util::Vec3 offset,
                   util::SimTime step_time)
      : origin_(origin), offset_(offset), step_(step_time) {}

  util::Vec3 position(util::SimTime t) const override {
    return t < step_ ? origin_ : origin_ + offset_;
  }
  bool is_mobile() const override { return true; }

 private:
  util::Vec3 origin_;
  util::Vec3 offset_;
  util::SimTime step_;
};

}  // namespace tagwatch::sim
