// The simulated scene: tags, environmental reflectors, and the clock.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rf/propagation.hpp"
#include "sim/motion.hpp"
#include "util/epc.hpp"
#include "util/geometry.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::sim {

/// A physical tag in the scene.
struct SimTag {
  util::Epc epc;
  std::shared_ptr<const MotionModel> motion;
  /// Intrinsic backscatter phase offset θ_tag of this tag's IC/antenna —
  /// constant per tag, random across tags.
  double tag_phase_rad = 0.0;
  /// Time window during which the tag is in reader range.  Tags outside
  /// their window do not respond (§4.3 "reading exceptions": tags may come
  /// in, go out, or be temporarily blocked).
  util::SimTime arrives{0};
  std::optional<util::SimTime> departs;
  /// Temporarily blocked (detuned/occluded) intervals are modeled with a
  /// per-read blocking probability.
  double block_probability = 0.0;
};

/// A moving scatterer (person, forklift) generating multipath.
struct SimReflector {
  std::shared_ptr<const MotionModel> motion;
  double reflection_coefficient = 0.2;
};

/// A reader's nominal coverage region: a named disc (cylinder — z ignored)
/// on the warehouse floor.  Fleet deployments register one zone per reader;
/// zones may overlap, which is exactly the case cross-reader dedup and
/// session coordination exist for.
struct Zone {
  std::string name;
  util::Vec3 center;
  double radius_m = 0.0;

  /// True when `p` lies inside the zone footprint (boundary inclusive; the
  /// z coordinate is ignored — antennas mount overhead).
  bool contains(util::Vec3 p) const noexcept {
    const double dx = p.x - center.x;
    const double dy = p.y - center.y;
    return dx * dx + dy * dy <= radius_m * radius_m;
  }
};

/// A tag leaving the scene via World::remove_tag(), with the clock reading
/// at removal.  Flag mirrors consume this to apply Gen2 power-loss
/// persistence (a removed tag is de-energized from that instant).
struct TagDeparture {
  util::Epc epc;
  util::SimTime at{0};
};

/// Scene container plus the simulation clock.
///
/// The Gen2 reader advances the clock as it executes protocol operations;
/// everything else (positions, reflections) is evaluated lazily at the
/// current time.
class World {
 public:
  /// Adds a tag; returns its dense index (used by benches for bookkeeping).
  std::size_t add_tag(SimTag tag);

  /// Adds an environmental reflector.
  void add_reflector(SimReflector reflector);

  /// Removes a tag by EPC; returns true if it existed.
  bool remove_tag(const util::Epc& epc);

  /// Replaces a tag's motion model (a stationary tag starts moving, a
  /// mover comes to rest); returns true if the tag existed.  Bumps
  /// mobility_epoch() — mutating tags() in place would be invisible to
  /// epoch-synced consumers, so this is the sanctioned way to flip a
  /// tag's mobility state mid-simulation.
  bool set_tag_motion(const util::Epc& epc,
                      std::shared_ptr<const MotionModel> motion);

  const std::vector<SimTag>& tags() const noexcept { return tags_; }
  std::vector<SimTag>& tags() noexcept { return tags_; }

  /// Looks up a tag by EPC (index into tags()), or nullopt.
  std::optional<std::size_t> find_tag(const util::Epc& epc) const;

  /// True if the tag indexed by `i` is in range at time `t`.
  bool tag_present(std::size_t i, util::SimTime t) const;

  /// tag_present() without the index lookup, for callers already iterating
  /// tags() (the Gen2 hot loops).
  static bool is_present(const SimTag& tag, util::SimTime t) noexcept {
    if (t < tag.arrives) return false;
    if (tag.departs && t >= *tag.departs) return false;
    return true;
  }

  /// Bumped whenever tag indexes are invalidated (remove_tag() reindexes
  /// the tail).  Index-keyed caches (the reader's dense flag mirror)
  /// compare this to detect that they must remap; pure growth via
  /// add_tag() keeps old indexes valid and does NOT bump it.
  std::uint64_t structure_epoch() const noexcept { return structure_epoch_; }

  /// Bumped whenever a tag's motion model is replaced via
  /// set_tag_motion().  structure_epoch() deliberately does NOT move on a
  /// mobility flip (indexes stay valid), so consumers that track the
  /// mover set — the incremental Phase-II planner, mobility-keyed caches —
  /// watch this epoch instead; the pair (structure, mobility) changes iff
  /// anything the planner depends on changed.
  std::uint64_t mobility_epoch() const noexcept { return mobility_epoch_; }

  /// Registers a named coverage zone (fleet deployments: one per reader).
  /// Returns its index into zones().  Duplicate names throw.
  std::size_t add_zone(Zone zone);

  const std::vector<Zone>& zones() const noexcept { return zones_; }

  /// Looks up a zone by name, or nullptr.
  const Zone* find_zone(std::string_view name) const;

  /// Append-only log of remove_tag() events, oldest first.  Flag mirrors
  /// keep a cursor into this to learn *when* a tag was de-energized (the
  /// epoch bump alone says only that indexes shifted, not at what time).
  const std::vector<TagDeparture>& departures() const noexcept {
    return departures_;
  }

  /// Snapshot of all reflector positions at time `t` for the RF channel.
  std::vector<rf::Reflector> reflectors_at(util::SimTime t) const;

  util::SimTime now() const noexcept { return now_; }

  /// Advances the clock; `dt` must be non-negative.
  void advance(util::SimDuration dt);

  /// Jumps the clock forward to `t` (no-op if t is in the past).
  void advance_to(util::SimTime t);

 private:
  std::vector<SimTag> tags_;
  std::vector<SimReflector> reflectors_;
  std::vector<Zone> zones_;
  std::vector<TagDeparture> departures_;
  std::unordered_map<util::Epc, std::size_t> index_;
  util::SimTime now_{0};
  std::uint64_t structure_epoch_ = 0;
  std::uint64_t mobility_epoch_ = 0;
};

}  // namespace tagwatch::sim
