// History database of tag readings (paper Fig. 5: all readings from both
// phases are delivered upward and contribute to the history).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "rf/measurement.hpp"
#include "util/epc.hpp"
#include "util/sim_time.hpp"

namespace tagwatch::core {

/// Per-tag reading history.
struct TagHistory {
  std::size_t total_readings = 0;
  util::SimTime first_seen{0};
  util::SimTime last_seen{0};
  /// Most recent readings, capped at the database's retention limit.
  std::deque<rf::TagReading> recent;
};

/// Bounded-memory store of recent readings for every tag seen.
class HistoryDatabase {
 public:
  /// Keeps at most `retain_per_tag` recent readings per tag.
  explicit HistoryDatabase(std::size_t retain_per_tag = 256)
      : retain_per_tag_(retain_per_tag) {}

  void record(const rf::TagReading& reading);

  const TagHistory* find(const util::Epc& epc) const;
  std::size_t tag_count() const noexcept { return tags_.size(); }
  std::size_t total_readings() const noexcept { return total_; }

  /// EPCs seen at or after `since` — the "current scene" snapshot.
  std::vector<util::Epc> seen_since(util::SimTime since) const;

  /// Drops tags last seen before `before` (memory reclamation, §4.3).
  std::size_t evict_older_than(util::SimTime before);

  /// Readings of one tag within [from, to), oldest first (empty if the
  /// window has already been evicted from the ring).
  std::vector<rf::TagReading> readings_in(const util::Epc& epc,
                                          util::SimTime from,
                                          util::SimTime to) const;

 private:
  std::size_t retain_per_tag_;
  std::size_t total_ = 0;
  std::unordered_map<util::Epc, TagHistory> tags_;
};

}  // namespace tagwatch::core
