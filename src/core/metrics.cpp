#include "core/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/tagwatch.hpp"

namespace tagwatch::core {

IrrMonitor::IrrMonitor(util::SimDuration window) : window_(window) {
  if (window <= util::SimDuration::zero()) {
    throw std::invalid_argument("IrrMonitor: window must be positive");
  }
}

void IrrMonitor::record(const rf::TagReading& reading) {
  auto& times = readings_[reading.epc];
  times.push_back(reading.timestamp);
  trim(times, reading.timestamp);
}

void IrrMonitor::trim(std::deque<util::SimTime>& times,
                      util::SimTime now) const {
  const util::SimTime cutoff =
      now >= util::SimTime{0} + window_ ? now - window_ : util::SimTime{0};
  while (!times.empty() && times.front() < cutoff) times.pop_front();
}

std::size_t IrrMonitor::count_in_window(const util::Epc& epc,
                                        util::SimTime now) const {
  const auto it = readings_.find(epc);
  if (it == readings_.end()) return 0;
  const util::SimTime cutoff =
      now >= util::SimTime{0} + window_ ? now - window_ : util::SimTime{0};
  return static_cast<std::size_t>(std::count_if(
      it->second.begin(), it->second.end(),
      [cutoff, now](util::SimTime t) { return t >= cutoff && t <= now; }));
}

double IrrMonitor::irr_hz(const util::Epc& epc, util::SimTime now) const {
  return static_cast<double>(count_in_window(epc, now)) /
         util::to_seconds(window_);
}

std::vector<std::pair<util::Epc, double>> IrrMonitor::snapshot(
    util::SimTime now) const {
  std::vector<std::pair<util::Epc, double>> out;
  out.reserve(readings_.size());
  for (const auto& [epc, times] : readings_) {
    (void)times;
    const double rate = irr_hz(epc, now);
    if (rate > 0.0) out.emplace_back(epc, rate);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

std::size_t IrrMonitor::active_tags(util::SimTime now) const {
  std::size_t active = 0;
  for (const auto& [epc, times] : readings_) {
    (void)times;
    if (count_in_window(epc, now) > 0) ++active;
  }
  return active;
}

std::size_t IrrMonitor::prune(util::SimTime now) {
  const util::SimTime cutoff =
      now >= util::SimTime{0} + window_ ? now - window_ : util::SimTime{0};
  std::size_t pruned = 0;
  for (auto it = readings_.begin(); it != readings_.end();) {
    if (it->second.empty() || it->second.back() < cutoff) {
      it = readings_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  return pruned;
}

bool PipelineMetrics::on_reading(const rf::TagReading& reading,
                                 const ReadingContext& context) {
  (void)reading;
  if (context.phase == ReadPhase::kPhase2) {
    ++phase2_readings_;
    ++current_.phase2_readings;
  } else {
    ++phase1_readings_;
    ++current_.phase1_readings;
  }
  return true;
}

void PipelineMetrics::on_cycle_end(const CycleReport& report) {
  current_.cycle_index = report.cycle_index;
  current_.scene = report.scene.size();
  current_.targets = report.targets.size();
  current_.read_all_fallback = report.read_all_fallback;
  current_.degraded_mode = report.degraded_mode;
  current_.execute_failures = report.execute_failures;
  current_.retries = report.retries;
  if (report.read_all_fallback) ++read_all_cycles_;
  if (report.degraded_mode) ++degraded_cycles_;
  health_ = report.health;
  slot_totals_ += report.slot_totals;
  scene_sum_ += static_cast<double>(report.scene.size());
  target_sum_ += static_cast<double>(report.targets.size());
  if (report.interphase_gap) {
    gap_ms_sum_ += util::to_millis(*report.interphase_gap);
    ++gap_cycles_;
  }
  per_cycle_.push_back(current_);
  current_ = CycleMetrics{};
}

PipelineMetricsSnapshot PipelineMetrics::snapshot() const {
  PipelineMetricsSnapshot snap;
  snap.cycles = per_cycle_.size();
  snap.read_all_cycles = read_all_cycles_;
  snap.degraded_cycles = degraded_cycles_;
  snap.health = health_;
  snap.phase1_readings = phase1_readings_;
  snap.phase2_readings = phase2_readings_;
  snap.slot_totals = slot_totals_;
  if (!per_cycle_.empty()) {
    const double n = static_cast<double>(per_cycle_.size());
    snap.mean_scene = scene_sum_ / n;
    snap.mean_targets = target_sum_ / n;
  }
  if (gap_cycles_ > 0) {
    snap.mean_interphase_gap_ms =
        gap_ms_sum_ / static_cast<double>(gap_cycles_);
  }
  snap.per_cycle = per_cycle_;
  if (pipeline_ != nullptr) snap.sinks = pipeline_->stats();
  return snap;
}

}  // namespace tagwatch::core
