#include "core/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace tagwatch::core {

IrrMonitor::IrrMonitor(util::SimDuration window) : window_(window) {
  if (window <= util::SimDuration::zero()) {
    throw std::invalid_argument("IrrMonitor: window must be positive");
  }
}

void IrrMonitor::record(const rf::TagReading& reading) {
  auto& times = readings_[reading.epc];
  times.push_back(reading.timestamp);
  trim(times, reading.timestamp);
}

void IrrMonitor::trim(std::deque<util::SimTime>& times,
                      util::SimTime now) const {
  const util::SimTime cutoff =
      now >= util::SimTime{0} + window_ ? now - window_ : util::SimTime{0};
  while (!times.empty() && times.front() < cutoff) times.pop_front();
}

std::size_t IrrMonitor::count_in_window(const util::Epc& epc,
                                        util::SimTime now) const {
  const auto it = readings_.find(epc);
  if (it == readings_.end()) return 0;
  const util::SimTime cutoff =
      now >= util::SimTime{0} + window_ ? now - window_ : util::SimTime{0};
  return static_cast<std::size_t>(std::count_if(
      it->second.begin(), it->second.end(),
      [cutoff, now](util::SimTime t) { return t >= cutoff && t <= now; }));
}

double IrrMonitor::irr_hz(const util::Epc& epc, util::SimTime now) const {
  return static_cast<double>(count_in_window(epc, now)) /
         util::to_seconds(window_);
}

std::vector<std::pair<util::Epc, double>> IrrMonitor::snapshot(
    util::SimTime now) const {
  std::vector<std::pair<util::Epc, double>> out;
  out.reserve(readings_.size());
  for (const auto& [epc, times] : readings_) {
    (void)times;
    const double rate = irr_hz(epc, now);
    if (rate > 0.0) out.emplace_back(epc, rate);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

std::size_t IrrMonitor::active_tags(util::SimTime now) const {
  std::size_t active = 0;
  for (const auto& [epc, times] : readings_) {
    (void)times;
    if (count_in_window(epc, now) > 0) ++active;
  }
  return active;
}

std::size_t IrrMonitor::prune(util::SimTime now) {
  const util::SimTime cutoff =
      now >= util::SimTime{0} + window_ ? now - window_ : util::SimTime{0};
  std::size_t pruned = 0;
  for (auto it = readings_.begin(); it != readings_.end();) {
    if (it->second.empty() || it->second.back() < cutoff) {
      it = readings_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  return pruned;
}

}  // namespace tagwatch::core
