#include "core/immobility.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/circular.hpp"

namespace tagwatch::core {

ImmobilityModel::ImmobilityModel(ImmobilityConfig config, Metric metric)
    : config_(config), metric_(metric) {
  if (config_.learning_rate <= 0.0 || config_.learning_rate >= 1.0) {
    throw std::invalid_argument("ImmobilityModel: alpha must be in (0, 1)");
  }
  if (config_.max_components == 0) {
    throw std::invalid_argument("ImmobilityModel: K must be >= 1");
  }
  if (config_.match_threshold <= 0.0) {
    throw std::invalid_argument("ImmobilityModel: xi must be positive");
  }
}

double ImmobilityModel::distance(double a, double b) const {
  return metric_ == Metric::kCircular ? util::circular_distance(a, b)
                                      : std::abs(a - b);
}

double ImmobilityModel::blend(double mean, double value, double rho) const {
  return metric_ == Metric::kCircular
             ? util::circular_lerp(mean, value, rho)
             : mean + rho * (value - mean);
}

bool ImmobilityModel::matches(const GaussianComponent& c, double value) const {
  const double band = config_.match_threshold *
                      std::max(c.stddev, config_.min_match_stddev);
  return distance(value, c.mean) < band;
}

bool ImmobilityModel::trusted(const GaussianComponent& c) const noexcept {
  return c.count >= config_.trust_count && c.weight >= config_.trust_weight &&
         c.stddev <= config_.trust_stddev;
}

std::size_t ImmobilityModel::find_match(double value) const {
  // components_ is kept sorted by priority, so the first hit is the best.
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (matches(components_[i], value)) return i;
  }
  return npos;
}

bool ImmobilityModel::has_trusted_component() const noexcept {
  return std::any_of(components_.begin(), components_.end(),
                     [this](const GaussianComponent& c) { return trusted(c); });
}

MotionVerdict ImmobilityModel::classify(double value) const {
  const std::size_t match = find_match(value);
  if (match == npos) return MotionVerdict::kMoving;
  return trusted(components_[match]) ? MotionVerdict::kStationary
                                     : MotionVerdict::kMoving;
}

MotionVerdict ImmobilityModel::observe(double value) {
  const std::size_t match = find_match(value);
  const double alpha = config_.learning_rate;

  if (match == npos) {
    // Case 2: no component explains the observation — the tag (or the
    // environment) changed state.  Seed a new low-confidence component.
    GaussianComponent fresh{config_.initial_weight, value,
                            config_.initial_stddev, 1};
    if (components_.size() < config_.max_components) {
      components_.push_back(fresh);
    } else {
      // Replace the lowest-priority component (components_ sorted desc).
      components_.back() = fresh;
    }
    sort_by_priority();
    return MotionVerdict::kMoving;
  }

  const MotionVerdict verdict = trusted(components_[match])
                                    ? MotionVerdict::kStationary
                                    : MotionVerdict::kMoving;

  // Case 1: matched — reinforce it, decay the rest (Eqn. 11).
  for (std::size_t i = 0; i < components_.size(); ++i) {
    GaussianComponent& c = components_[i];
    if (i == match) {
      c.weight = (1.0 - alpha) * c.weight + alpha;
      ++c.count;
      double rho;
      if (c.count <= config_.warmup_count) {
        // Warm-up: converge to the sample statistics of absorbed values.
        rho = 1.0 / static_cast<double>(c.count + 1);
      } else {
        // Steady state: ρ = α·η̂ with a unit-peak kernel so that samples in
        // the component core adapt at rate α and fringe samples slower.
        const double sigma = std::max(c.stddev, config_.min_match_stddev);
        const double z = distance(value, c.mean) / sigma;
        rho = alpha * std::exp(-0.5 * z * z);
      }
      c.mean = blend(c.mean, value, rho);
      const double residual = distance(value, c.mean);
      c.stddev = std::min(std::sqrt((1.0 - rho) * c.stddev * c.stddev +
                                    rho * residual * residual),
                          config_.initial_stddev);
    } else {
      c.weight = (1.0 - alpha) * c.weight;
    }
  }
  sort_by_priority();
  return verdict;
}

void ImmobilityModel::sort_by_priority() {
  std::stable_sort(components_.begin(), components_.end(),
                   [](const GaussianComponent& a, const GaussianComponent& b) {
                     return a.priority() > b.priority();
                   });
}

}  // namespace tagwatch::core
