#include "core/immobility.hpp"

#include <stdexcept>

namespace tagwatch::core {

ImmobilityModel::ImmobilityModel(ImmobilityConfig config, Metric metric)
    : config_(config), metric_(metric) {
  if (config_.learning_rate <= 0.0 || config_.learning_rate >= 1.0) {
    throw std::invalid_argument("ImmobilityModel: alpha must be in (0, 1)");
  }
  if (config_.max_components == 0) {
    throw std::invalid_argument("ImmobilityModel: K must be >= 1");
  }
  if (config_.match_threshold <= 0.0) {
    throw std::invalid_argument("ImmobilityModel: xi must be positive");
  }
}

bool ImmobilityModel::has_trusted_component() const noexcept {
  return std::any_of(
      components_.begin(), components_.end(),
      [this](const GaussianComponent& c) { return mog_trusted(config_, c); });
}

MotionVerdict ImmobilityModel::classify(double value) const {
  return mog_classify(components_.data(), components_.size(), config_,
                      metric_, value);
}

MotionVerdict ImmobilityModel::observe(double value) {
  // Give the shared kernel room for a possible push (it writes comps[n]
  // in place), then shrink back to the live count.  The extra elements are
  // default GaussianComponents the kernel never reads.
  std::size_t n = components_.size();
  components_.resize(config_.max_components);
  const MotionVerdict verdict =
      mog_observe(components_.data(), n, config_, metric_, value);
  components_.resize(n);
  return verdict;
}

}  // namespace tagwatch::core
