#include "core/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace tagwatch::core {

const char* to_string(SessionPolicy policy) {
  switch (policy) {
    case SessionPolicy::kIndependent: return "independent";
    case SessionPolicy::kShared: return "shared";
    case SessionPolicy::kPerReader: return "per-reader";
  }
  return "unknown";
}

SessionPolicy session_policy_from_string(std::string_view name) {
  if (name == "independent") return SessionPolicy::kIndependent;
  if (name == "shared") return SessionPolicy::kShared;
  if (name == "per-reader") return SessionPolicy::kPerReader;
  throw std::invalid_argument("unknown session policy '" + std::string(name) +
                              "' (expected independent|shared|per-reader)");
}

const char* to_string(TakeoverPolicy policy) {
  switch (policy) {
    case TakeoverPolicy::kNone: return "none";
    case TakeoverPolicy::kStaticNeighbor: return "static";
    case TakeoverPolicy::kAdaptive: return "adaptive";
  }
  return "unknown";
}

TakeoverPolicy takeover_policy_from_string(std::string_view name) {
  if (name == "none") return TakeoverPolicy::kNone;
  if (name == "static") return TakeoverPolicy::kStaticNeighbor;
  if (name == "adaptive") return TakeoverPolicy::kAdaptive;
  throw std::invalid_argument("unknown takeover policy '" + std::string(name) +
                              "' (expected none|static|adaptive)");
}

// --------------------------------------------------------------- ZoneLedger

void ZoneLedger::sync() {
  const std::vector<sim::SimTag>& tags = world_->tags();
  if (world_->structure_epoch() != epoch_) {
    // remove_tag() shifted indexes: stash ownership by EPC (a removed tag
    // that re-enters keeps its owner, so its first re-sighting by another
    // reader is still a handoff), then rebuild densely.
    for (std::size_t i = 0; i < owner_.size(); ++i) {
      if (owner_[i] != kUnowned) {
        departed_.insert_or_assign(epcs_[i], owner_[i]);
      }
    }
    owner_.clear();
    epcs_.clear();
    epoch_ = world_->structure_epoch();
  }
  for (std::size_t i = owner_.size(); i < tags.size(); ++i) {
    const util::Epc& epc = tags[i].epc;
    const auto it = departed_.find(epc);
    if (it != departed_.end()) {
      owner_.push_back(it->second);
      departed_.erase(it);
    } else {
      owner_.push_back(kUnowned);
    }
    epcs_.push_back(epc);
  }
}

std::size_t ZoneLedger::assign(const util::Epc& epc, std::size_t reader) {
  if (world_ == nullptr) {
    const auto it = by_epc_.find(epc);
    const std::size_t prev = it == by_epc_.end() ? kUnowned : it->second;
    by_epc_[epc] = reader;
    return prev;
  }
  sync();
  if (const auto idx = world_->find_tag(epc)) {
    const std::size_t prev = owner_[*idx];
    owner_[*idx] = reader;
    return prev;
  }
  // Reading for a tag no longer in the world (removed since it was read):
  // track it through the departed stash.
  const auto it = departed_.find(epc);
  const std::size_t prev = it == departed_.end() ? kUnowned : it->second;
  departed_[epc] = reader;
  return prev;
}

std::vector<util::Epc> ZoneLedger::owned_by(std::size_t reader) const {
  std::vector<util::Epc> out;
  if (world_ == nullptr) {
    for (const auto& [epc, owner] : by_epc_) {
      if (owner == reader) out.push_back(epc);
    }
  } else {
    for (std::size_t i = 0; i < owner_.size(); ++i) {
      if (owner_[i] == reader) out.push_back(epcs_[i]);
    }
    for (const auto& [epc, owner] : departed_) {
      if (owner == reader) out.push_back(epc);
    }
  }
  // The maps iterate in hash order; sorting keeps the orphan queue (and
  // everything downstream of it) identical across record and replay.
  std::sort(out.begin(), out.end());
  return out;
}

// --------------------------------------------------------------- FleetHealth

FleetHealth::FleetHealth(std::size_t readers, FleetResilienceConfig config)
    : config_(config), entries_(readers) {
  config_.probe_period = std::max<std::size_t>(config_.probe_period, 1);
  config_.error_window = std::max<std::size_t>(config_.error_window, 1);
  for (Entry& e : entries_) {
    e.window.assign(config_.error_window, 0);
  }
}

bool FleetHealth::rate_high(const Entry& e) const {
  if (e.window_filled < config_.error_window) return false;
  return static_cast<double>(e.window_errors) >=
         config_.error_rate_threshold *
             static_cast<double>(config_.error_window);
}

void FleetHealth::push_window(Entry& e, bool errored) {
  if (e.window_filled == e.window.size()) {
    if (e.window[e.window_pos] != 0) --e.window_errors;
  } else {
    ++e.window_filled;
  }
  e.window[e.window_pos] = errored ? 1 : 0;
  if (errored) ++e.window_errors;
  e.window_pos = (e.window_pos + 1) % e.window.size();
}

bool FleetHealth::should_run(std::size_t reader) const {
  const Entry& e = entries_.at(reader);
  if (e.state != ReaderState::kDown) return true;
  return e.skip_count + 1 >= config_.probe_period;
}

void FleetHealth::observe_skip(std::size_t reader) {
  Entry& e = entries_.at(reader);
  ++e.skip_count;
  if (e.state == ReaderState::kDown || e.state == ReaderState::kProbation) {
    ++e.down_cycles;
  }
}

std::size_t FleetHealth::down_count() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.state == ReaderState::kDown || e.state == ReaderState::kProbation) {
      ++n;
    }
  }
  return n;
}

FleetHealth::Transition FleetHealth::observe(std::size_t reader, bool failed,
                                             bool errored) {
  Entry& e = entries_.at(reader);
  e.skip_count = 0;
  if (e.state == ReaderState::kDown || e.state == ReaderState::kProbation) {
    ++e.down_cycles;
  }
  push_window(e, errored);

  switch (e.state) {
    case ReaderState::kHealthy:
    case ReaderState::kSuspect: {
      if (failed) {
        ++e.consecutive_failures;
        if (e.consecutive_failures >= config_.down_after_failures) {
          e.state = ReaderState::kDown;
          e.down_cycles = 0;
          e.healthy_streak = 0;
          return Transition::kWentDown;
        }
        if (e.state == ReaderState::kHealthy &&
            e.consecutive_failures >= config_.suspect_after_failures) {
          e.state = ReaderState::kSuspect;
          return Transition::kWentSuspect;
        }
        return Transition::kNone;
      }
      e.consecutive_failures = 0;
      if (e.state == ReaderState::kHealthy && rate_high(e)) {
        e.state = ReaderState::kSuspect;
        return Transition::kWentSuspect;
      }
      if (e.state == ReaderState::kSuspect && !rate_high(e)) {
        e.state = ReaderState::kHealthy;
      }
      return Transition::kNone;
    }
    case ReaderState::kDown: {
      if (failed) return Transition::kNone;  // Probe failed: stay Down.
      e.state = ReaderState::kProbation;
      e.healthy_streak = 1;
      break;
    }
    case ReaderState::kProbation: {
      if (failed) {
        // Relapse: probation revoked, back to probe cadence.
        e.state = ReaderState::kDown;
        e.healthy_streak = 0;
        return Transition::kNone;
      }
      ++e.healthy_streak;
      break;
    }
  }
  if (e.healthy_streak >= config_.probation_cycles) {
    e.state = ReaderState::kHealthy;
    e.consecutive_failures = 0;
    e.healthy_streak = 0;
    return Transition::kRecovered;
  }
  return Transition::kNone;
}

// ------------------------------------------------------------ TapSink

/// Copies every reading a per-reader controller dispatches (both phases)
/// into a buffer the fleet drains after the reader's cycle.  Registered
/// last in the per-reader pipeline, so the reader's own sinks (assessor,
/// history) saw the reading first.
class FleetController::TapSink final : public ReadingSink {
 public:
  struct Tapped {
    rf::TagReading reading;
    ReadPhase phase = ReadPhase::kPhase1;
  };

  std::string_view name() const override { return "fleet-tap"; }

  bool on_reading(const rf::TagReading& reading,
                  const ReadingContext& context) override {
    buffer_.push_back({reading, context.phase});
    return true;
  }

  std::vector<Tapped> drain() { return std::exchange(buffer_, {}); }

 private:
  std::vector<Tapped> buffer_;
};

// ------------------------------------------------------- FleetController

FleetController::FleetController(FleetConfig config,
                                 std::vector<FleetReaderSpec> readers,
                                 const sim::World* world)
    : config_(std::move(config)), ledger_(world),
      health_(readers.size(), config_.resilience) {
  if (readers.empty()) {
    throw std::invalid_argument("FleetController: need at least one reader");
  }
  readers_.reserve(readers.size());
  for (std::size_t k = 0; k < readers.size(); ++k) {
    if (readers[k].client == nullptr) {
      throw std::invalid_argument("FleetController: null reader client");
    }
    TagwatchConfig cfg = config_.controller;
    cfg.source_id = k;
    cfg.session = reader_session(k);
    cfg.rearm_session = config_.policy == SessionPolicy::kIndependent;
    if (config_.resilience.reader_cycle_budget > util::SimDuration::zero() &&
        cfg.resilience.cycle_watchdog_budget == util::SimDuration::zero()) {
      // The fleet watchdog doubles as each reader's cycle budget unless the
      // caller set a tighter one — a wedged reader cannot stall the TDM
      // rotation past it.
      cfg.resilience.cycle_watchdog_budget =
          config_.resilience.reader_cycle_budget;
    }
    ReaderSlot slot;
    slot.spec = std::move(readers[k]);
    slot.original_zone = slot.spec.zone;
    slot.controller =
        std::make_unique<TagwatchController>(cfg, *slot.spec.client);
    slot.tap = std::make_shared<TapSink>();
    slot.controller->pipeline().add_sink(slot.tap);
    readers_.push_back(std::move(slot));
  }
  if (config_.controller.wall_clock != nullptr) {
    pipeline_.set_wall_clock(*config_.controller.wall_clock);
  }
  journal_.setup.readers = readers_.size();
  journal_.setup.policy = to_string(config_.policy);
  journal_.setup.session = reader_session(0);
  journal_.setup.dedup_window = config_.dedup_window;
}

gen2::Session FleetController::reader_session(std::size_t reader) const {
  switch (config_.policy) {
    case SessionPolicy::kIndependent: return config_.controller.session;
    case SessionPolicy::kShared: return config_.shared_session;
    case SessionPolicy::kPerReader:
      return static_cast<gen2::Session>(reader % 4);
  }
  return config_.controller.session;
}

TagwatchController& FleetController::controller(std::size_t reader) {
  return *readers_.at(reader).controller;
}

FleetCycleReport FleetController::run_cycle() {
  FleetCycleReport fleet;
  fleet.cycle_index = cycle_counter_++;

  // Orphans enqueued by earlier cycles become Phase II pins before anyone
  // runs, so the first post-takeover cycle already hunts for them.
  refresh_extra_targets();

  for (std::size_t k = 0; k < readers_.size(); ++k) {
    ReaderSlot& slot = readers_[k];

    FleetReaderCycle row;
    row.reader = k;
    row.zone = slot.spec.zone.name;
    row.state = health_.state(k);

    if (!health_.should_run(k)) {
      // Down and not due for a probe: the reader sits this cycle out.  A
      // zero-count F record keeps the journal's per-cycle grouping (and
      // the digest) aligned between record and replay.
      health_.observe_skip(k);
      row.skipped = true;
      row.health = slot.controller->health();
      llrp::FleetCycleRecord record;
      record.cycle = fleet.cycle_index;
      record.reader = k;
      record.zone = row.zone;
      journal_.push_cycle(std::move(record));
      fleet.readers.push_back(std::move(row));
      continue;
    }
    row.probe = health_.state(k) == ReaderState::kDown;

    const util::SimTime run_start = slot.spec.client->now();
    row.report = slot.controller->run_cycle();
    const util::SimDuration budget = config_.resilience.reader_cycle_budget;
    row.over_budget = budget > util::SimDuration::zero() &&
                      slot.spec.client->now() - run_start > budget;

    // Drain the tap and dedup across readers: a sighting of an EPC whose
    // last *delivered* reading came from a different reader within the
    // dedup window is suppressed.  Same-reader repeats always pass (the
    // rate-adaptive product is repeated reading), and suppressed readings
    // do not refresh last-seen — a tag camped on a zone seam keeps one
    // owner instead of flapping.
    // Recovered orphans ride in their own batches so fault-free runs keep
    // their exact batch structure (empty batches are no-ops).
    std::vector<rf::TagReading> phase1, phase2, recovered1, recovered2;
    for (TapSink::Tapped& t : slot.tap->drain()) {
      ++fleet.readings_total;
      const auto seen = last_seen_.find(t.reading.epc);
      const bool duplicate = seen != last_seen_.end() &&
                             seen->second.reader != k &&
                             t.reading.timestamp - seen->second.at <=
                                 config_.dedup_window;
      if (duplicate) {
        ++row.duplicates;
        continue;
      }
      last_seen_[t.reading.epc] = {k, t.reading.timestamp};
      const std::size_t prev = ledger_.assign(t.reading.epc, k);
      if (prev != ZoneLedger::kUnowned && prev != k) {
        fleet.handoffs.push_back(
            {t.reading.epc, prev, k, t.reading.timestamp});
      }
      ++row.delivered;
      const bool was_orphan = recover_set_.erase(t.reading.epc) > 0;
      if (was_orphan) ++recover_stats_.recovered;
      const bool p2 = t.phase == ReadPhase::kPhase2;
      (was_orphan ? (p2 ? recovered2 : recovered1) : (p2 ? phase2 : phase1))
          .push_back(std::move(t.reading));
    }

    pipeline_.dispatch_batch(
        phase1, ReadingContext{fleet.cycle_index, ReadPhase::kPhase1, k});
    pipeline_.dispatch_batch(
        recovered1,
        ReadingContext{fleet.cycle_index, ReadPhase::kPhase1, k, true});
    pipeline_.dispatch_batch(
        phase2, ReadingContext{fleet.cycle_index, ReadPhase::kPhase2, k});
    pipeline_.dispatch_batch(
        recovered2,
        ReadingContext{fleet.cycle_index, ReadPhase::kPhase2, k, true});

    fleet.delivered_total += row.delivered;
    fleet.duplicates_total += row.duplicates;

    llrp::FleetCycleRecord record;
    record.cycle = fleet.cycle_index;
    record.reader = k;
    record.zone = row.zone;
    record.phase1_readings = row.report.phase1_readings;
    record.phase2_readings = row.report.phase2_readings;
    record.delivered = row.delivered;
    record.duplicates = row.duplicates;
    journal_.push_cycle(std::move(record));

    // Feed the state machine: a *blackout* (errored executes, zero
    // readings) or a watchdog overrun counts as a failed cycle; errored
    // executes that still produced readings only feed the rate window.
    const bool errored = row.report.execute_failures > 0;
    const bool failed =
        (errored &&
         row.report.phase1_readings + row.report.phase2_readings == 0) ||
        row.over_budget;
    const FleetHealth::Transition transition =
        health_.observe(k, failed, errored);
    row.state = health_.state(k);
    row.health = slot.controller->health();
    fleet.readers.push_back(std::move(row));

    if (transition == FleetHealth::Transition::kWentDown) {
      on_reader_down(k, fleet);
    } else if (transition == FleetHealth::Transition::kRecovered) {
      on_reader_recovered(k, fleet);
    }
  }

  // Handoffs are journaled after the cycle's F records, in detection
  // order, so the journal stays grouped per cycle; fault-tolerance events
  // (D/T/R) follow in the same per-cycle group.
  for (const llrp::FleetHandoffRecord& h : fleet.handoffs) {
    journal_.push_handoff(h);
  }
  for (const llrp::FleetDownRecord& d : fleet.downs) journal_.push_down(d);
  for (const llrp::FleetTakeoverRecord& t : fleet.takeovers) {
    journal_.push_takeover(t);
  }
  for (const llrp::FleetRecoverRecord& r : fleet.recoveries) {
    journal_.push_recover(r);
  }
  fleet.recover = recover_stats();

  return fleet;
}

void FleetController::on_reader_down(std::size_t reader,
                                     FleetCycleReport& fleet) {
  ReaderSlot& down = readers_[reader];
  fleet.downs.push_back({fleet.cycle_index, reader, down.original_zone.name,
                         health_.consecutive_failures(reader)});

  // Everything the dead reader owned becomes an orphan awaiting re-cover.
  // The queue is bounded: over capacity, drop (and count) rather than grow.
  for (util::Epc& epc : ledger_.owned_by(reader)) {
    if (recover_set_.contains(epc)) continue;
    if (recover_set_.size() >= config_.resilience.recover_queue_capacity) {
      ++recover_stats_.dropped;
      continue;
    }
    recover_set_.insert(epc);
    recover_queue_.push_back(std::move(epc));
    ++recover_stats_.enqueued;
  }

  if (config_.takeover == TakeoverPolicy::kNone) return;

  for (std::size_t n : takeover_neighbors(reader)) {
    ReaderSlot& survivor = readers_[n];
    const double dx =
        survivor.original_zone.center.x - down.original_zone.center.x;
    const double dy =
        survivor.original_zone.center.y - down.original_zone.center.y;
    // sqrt over hypot: hypot is not required to be correctly rounded, and
    // this distance feeds journaled takeover radii.
    const double dist = std::sqrt(dx * dx + dy * dy);
    const double target =
        config_.takeover == TakeoverPolicy::kStaticNeighbor
            ? survivor.original_zone.radius_m +
                  config_.resilience.static_expand_m
            : dist + down.original_zone.radius_m;
    const double budget = config_.resilience.takeover_radius_budget_m > 0.0
                              ? config_.resilience.takeover_radius_budget_m
                              : 2.0 * survivor.original_zone.radius_m;
    const double granted = std::min(target, budget);
    if (granted <= survivor.spec.zone.radius_m) continue;  // Nothing gained.
    grants_.push_back({reader, n, granted});
    refresh_coverage(n);
    // Session-aware re-inventory: under S2/S3 the orphans may still hold B
    // flags set by the dead reader, invisible to the survivor's target-A
    // queries until the flag decays.  One re-armed round flips the whole
    // expanded zone back to A so takeover coverage is immediate.
    survivor.controller->arm_session_rearm_once();
    fleet.takeovers.push_back(
        {fleet.cycle_index, reader, n,
         static_cast<std::int64_t>(std::lround(granted * 1000.0))});
  }
}

void FleetController::on_reader_recovered(std::size_t reader,
                                          FleetCycleReport& fleet) {
  fleet.recoveries.push_back(
      {fleet.cycle_index, reader, health_.down_cycles(reader)});

  std::vector<std::size_t> touched;
  std::erase_if(grants_, [&](const TakeoverGrant& g) {
    if (g.from != reader) return false;
    touched.push_back(g.to);
    return true;
  });
  for (std::size_t n : touched) {
    refresh_coverage(n);
    bool still_granted = false;
    for (const TakeoverGrant& g : grants_) still_granted |= g.to == n;
    if (!still_granted) readers_[n].controller->set_extra_targets({});
  }
}

void FleetController::refresh_coverage(std::size_t reader) {
  ReaderSlot& slot = readers_[reader];
  sim::Zone zone = slot.original_zone;
  for (const TakeoverGrant& g : grants_) {
    if (g.to == reader) zone.radius_m = std::max(zone.radius_m, g.radius_m);
  }
  slot.spec.zone = zone;
  // Replay clients refuse (return false): the journal already embeds what
  // the expanded coverage read, so replays re-derive the same readings.
  slot.spec.client->set_coverage_zone(zone);
}

void FleetController::refresh_extra_targets() {
  if (config_.takeover != TakeoverPolicy::kAdaptive || grants_.empty()) {
    return;
  }
  // Compact the FIFO against the membership set (delivered orphans were
  // retired from the set only) and pin what is left as Phase II targets on
  // every surviving expander.
  std::size_t w = 0;
  for (std::size_t r = 0; r < recover_queue_.size(); ++r) {
    if (recover_set_.contains(recover_queue_[r])) {
      recover_queue_[w++] = recover_queue_[r];
    }
  }
  recover_queue_.resize(w);
  std::vector<util::Epc> targets(recover_queue_.begin(), recover_queue_.end());
  for (const TakeoverGrant& g : grants_) {
    readers_[g.to].controller->set_extra_targets(targets);
  }
}

std::vector<std::size_t> FleetController::takeover_neighbors(
    std::size_t down) const {
  std::vector<std::size_t> candidates;
  for (std::size_t j = 0; j < readers_.size(); ++j) {
    if (j == down) continue;
    const ReaderState s = health_.state(j);
    if (s == ReaderState::kDown) continue;  // The dead can't cover the dead.
    candidates.push_back(j);
  }
  const util::Vec3& c = readers_[down].original_zone.center;
  const auto dist2 = [&](std::size_t j) {
    const util::Vec3& p = readers_[j].original_zone.center;
    const double dx = p.x - c.x;
    const double dy = p.y - c.y;
    return dx * dx + dy * dy;
  };
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) {
              const double da = dist2(a);
              const double db = dist2(b);
              if (da != db) return da < db;
              return a < b;  // Deterministic tie-break.
            });
  if (candidates.size() > 2) candidates.resize(2);
  return candidates;
}

RecoverStats FleetController::recover_stats() const {
  RecoverStats out = recover_stats_;
  out.pending = recover_set_.size();
  return out;
}

std::vector<FleetCycleReport> FleetController::run_cycles(std::size_t n) {
  std::vector<FleetCycleReport> reports;
  reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) reports.push_back(run_cycle());
  return reports;
}

}  // namespace tagwatch::core
