#include "core/fleet.hpp"

#include <stdexcept>
#include <utility>

namespace tagwatch::core {

const char* to_string(SessionPolicy policy) {
  switch (policy) {
    case SessionPolicy::kIndependent: return "independent";
    case SessionPolicy::kShared: return "shared";
    case SessionPolicy::kPerReader: return "per-reader";
  }
  return "unknown";
}

SessionPolicy session_policy_from_string(std::string_view name) {
  if (name == "independent") return SessionPolicy::kIndependent;
  if (name == "shared") return SessionPolicy::kShared;
  if (name == "per-reader") return SessionPolicy::kPerReader;
  throw std::invalid_argument("unknown session policy '" + std::string(name) +
                              "' (expected independent|shared|per-reader)");
}

// --------------------------------------------------------------- ZoneLedger

void ZoneLedger::sync() {
  const std::vector<sim::SimTag>& tags = world_->tags();
  if (world_->structure_epoch() != epoch_) {
    // remove_tag() shifted indexes: stash ownership by EPC (a removed tag
    // that re-enters keeps its owner, so its first re-sighting by another
    // reader is still a handoff), then rebuild densely.
    for (std::size_t i = 0; i < owner_.size(); ++i) {
      if (owner_[i] != kUnowned) departed_.insert_or_assign(epcs_[i], owner_[i]);
    }
    owner_.clear();
    epcs_.clear();
    epoch_ = world_->structure_epoch();
  }
  for (std::size_t i = owner_.size(); i < tags.size(); ++i) {
    const util::Epc& epc = tags[i].epc;
    const auto it = departed_.find(epc);
    if (it != departed_.end()) {
      owner_.push_back(it->second);
      departed_.erase(it);
    } else {
      owner_.push_back(kUnowned);
    }
    epcs_.push_back(epc);
  }
}

std::size_t ZoneLedger::assign(const util::Epc& epc, std::size_t reader) {
  if (world_ == nullptr) {
    const auto it = by_epc_.find(epc);
    const std::size_t prev = it == by_epc_.end() ? kUnowned : it->second;
    by_epc_[epc] = reader;
    return prev;
  }
  sync();
  if (const auto idx = world_->find_tag(epc)) {
    const std::size_t prev = owner_[*idx];
    owner_[*idx] = reader;
    return prev;
  }
  // Reading for a tag no longer in the world (removed since it was read):
  // track it through the departed stash.
  const auto it = departed_.find(epc);
  const std::size_t prev = it == departed_.end() ? kUnowned : it->second;
  departed_[epc] = reader;
  return prev;
}

// ------------------------------------------------------------ TapSink

/// Copies every reading a per-reader controller dispatches (both phases)
/// into a buffer the fleet drains after the reader's cycle.  Registered
/// last in the per-reader pipeline, so the reader's own sinks (assessor,
/// history) saw the reading first.
class FleetController::TapSink final : public ReadingSink {
 public:
  struct Tapped {
    rf::TagReading reading;
    ReadPhase phase = ReadPhase::kPhase1;
  };

  std::string_view name() const override { return "fleet-tap"; }

  bool on_reading(const rf::TagReading& reading,
                  const ReadingContext& context) override {
    buffer_.push_back({reading, context.phase});
    return true;
  }

  std::vector<Tapped> drain() { return std::exchange(buffer_, {}); }

 private:
  std::vector<Tapped> buffer_;
};

// ------------------------------------------------------- FleetController

FleetController::FleetController(FleetConfig config,
                                 std::vector<FleetReaderSpec> readers,
                                 const sim::World* world)
    : config_(std::move(config)), ledger_(world) {
  if (readers.empty()) {
    throw std::invalid_argument("FleetController: need at least one reader");
  }
  readers_.reserve(readers.size());
  for (std::size_t k = 0; k < readers.size(); ++k) {
    if (readers[k].client == nullptr) {
      throw std::invalid_argument("FleetController: null reader client");
    }
    TagwatchConfig cfg = config_.controller;
    cfg.source_id = k;
    cfg.session = reader_session(k);
    cfg.rearm_session = config_.policy == SessionPolicy::kIndependent;
    ReaderSlot slot;
    slot.spec = std::move(readers[k]);
    slot.controller =
        std::make_unique<TagwatchController>(cfg, *slot.spec.client);
    slot.tap = std::make_shared<TapSink>();
    slot.controller->pipeline().add_sink(slot.tap);
    readers_.push_back(std::move(slot));
  }
  if (config_.controller.wall_clock != nullptr) {
    pipeline_.set_wall_clock(*config_.controller.wall_clock);
  }
  journal_.setup.readers = readers_.size();
  journal_.setup.policy = to_string(config_.policy);
  journal_.setup.session = reader_session(0);
  journal_.setup.dedup_window = config_.dedup_window;
}

gen2::Session FleetController::reader_session(std::size_t reader) const {
  switch (config_.policy) {
    case SessionPolicy::kIndependent: return config_.controller.session;
    case SessionPolicy::kShared: return config_.shared_session;
    case SessionPolicy::kPerReader:
      return static_cast<gen2::Session>(reader % 4);
  }
  return config_.controller.session;
}

TagwatchController& FleetController::controller(std::size_t reader) {
  return *readers_.at(reader).controller;
}

FleetCycleReport FleetController::run_cycle() {
  FleetCycleReport fleet;
  fleet.cycle_index = cycle_counter_++;

  for (std::size_t k = 0; k < readers_.size(); ++k) {
    ReaderSlot& slot = readers_[k];

    FleetReaderCycle row;
    row.reader = k;
    row.zone = slot.spec.zone.name;
    row.report = slot.controller->run_cycle();

    // Drain the tap and dedup across readers: a sighting of an EPC whose
    // last *delivered* reading came from a different reader within the
    // dedup window is suppressed.  Same-reader repeats always pass (the
    // rate-adaptive product is repeated reading), and suppressed readings
    // do not refresh last-seen — a tag camped on a zone seam keeps one
    // owner instead of flapping.
    std::vector<rf::TagReading> phase1, phase2;
    for (TapSink::Tapped& t : slot.tap->drain()) {
      ++fleet.readings_total;
      const auto seen = last_seen_.find(t.reading.epc);
      const bool duplicate = seen != last_seen_.end() &&
                             seen->second.reader != k &&
                             t.reading.timestamp - seen->second.at <=
                                 config_.dedup_window;
      if (duplicate) {
        ++row.duplicates;
        continue;
      }
      last_seen_[t.reading.epc] = {k, t.reading.timestamp};
      const std::size_t prev = ledger_.assign(t.reading.epc, k);
      if (prev != ZoneLedger::kUnowned && prev != k) {
        fleet.handoffs.push_back(
            {t.reading.epc, prev, k, t.reading.timestamp});
      }
      ++row.delivered;
      (t.phase == ReadPhase::kPhase2 ? phase2 : phase1)
          .push_back(std::move(t.reading));
    }

    pipeline_.dispatch_batch(
        phase1, ReadingContext{fleet.cycle_index, ReadPhase::kPhase1, k});
    pipeline_.dispatch_batch(
        phase2, ReadingContext{fleet.cycle_index, ReadPhase::kPhase2, k});

    fleet.delivered_total += row.delivered;
    fleet.duplicates_total += row.duplicates;

    llrp::FleetCycleRecord record;
    record.cycle = fleet.cycle_index;
    record.reader = k;
    record.zone = row.zone;
    record.phase1_readings = row.report.phase1_readings;
    record.phase2_readings = row.report.phase2_readings;
    record.delivered = row.delivered;
    record.duplicates = row.duplicates;
    journal_.push_cycle(std::move(record));

    fleet.readers.push_back(std::move(row));
  }

  // Handoffs are journaled after the cycle's F records, in detection
  // order, so the journal stays grouped per cycle.
  for (const llrp::FleetHandoffRecord& h : fleet.handoffs) {
    journal_.push_handoff(h);
  }

  return fleet;
}

std::vector<FleetCycleReport> FleetController::run_cycles(std::size_t n) {
  std::vector<FleetCycleReport> reports;
  reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) reports.push_back(run_cycle());
  return reports;
}

}  // namespace tagwatch::core
