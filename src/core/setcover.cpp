#include "core/setcover.hpp"

#include <stdexcept>

namespace tagwatch::core {

Schedule GreedyCoverScheduler::naive_plan(
    const BitmaskIndex& index, const util::IndicatorBitmap& targets) const {
  Schedule plan;
  plan.used_naive_fallback = true;
  plan.covered_union = util::IndicatorBitmap(index.scene_size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!targets.test(i)) continue;
    const util::Epc& epc = index.scene()[i];
    ScheduledBitmask sel;
    sel.bitmask.pointer = 0;
    sel.bitmask.mask = epc.bits();
    sel.covered_total = 1;
    sel.covered_targets = 1;
    plan.selections.push_back(std::move(sel));
    plan.covered_union.set(i);
    plan.estimated_cost_s += cost_model_.cost_seconds(1);
  }
  return plan;
}

Schedule GreedyCoverScheduler::plan(
    const BitmaskIndex& index, const util::IndicatorBitmap& targets) const {
  if (targets.none()) {
    throw std::invalid_argument("GreedyCoverScheduler::plan: no targets");
  }
  const std::vector<BitmaskCandidate> candidates =
      index.candidates_for(targets);

  Schedule plan;
  plan.covered_union = util::IndicatorBitmap(index.scene_size());
  util::IndicatorBitmap remaining = targets;

  while (remaining.any()) {
    double best_gain = -1.0;
    std::size_t best = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::size_t covered_targets =
          candidates[i].coverage.and_count(remaining);
      if (covered_targets == 0) continue;
      const double cost =
          cost_model_.cost_seconds(candidates[i].coverage.count());
      const double gain = static_cast<double>(covered_targets) / cost;
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == candidates.size()) {
      // Unreachable in practice: every target's own full EPC is a candidate.
      throw std::logic_error("GreedyCoverScheduler: uncoverable target");
    }
    const BitmaskCandidate& chosen = candidates[best];
    ScheduledBitmask sel;
    sel.bitmask = chosen.bitmask;
    sel.covered_total = chosen.coverage.count();
    sel.covered_targets = chosen.coverage.and_count(remaining);
    plan.selections.push_back(std::move(sel));
    plan.estimated_cost_s += cost_model_.cost_seconds(chosen.coverage.count());
    plan.covered_union.merge(chosen.coverage);
    remaining.subtract(chosen.coverage);
  }

  // Worst-case guard: if the "optimal" selection costs more than reading
  // each target individually, take the naive plan (§5.2).
  Schedule naive = naive_plan(index, targets);
  if (naive.estimated_cost_s < plan.estimated_cost_s) {
    return naive;
  }
  return plan;
}

}  // namespace tagwatch::core
