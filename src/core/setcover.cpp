#include "core/setcover.hpp"

#include <bit>
#include <queue>
#include <stdexcept>

namespace tagwatch::core {

namespace {

/// One lazy-greedy heap entry: a candidate with the gain it had when last
/// evaluated and the round that evaluation happened in.
struct HeapEntry {
  double gain = 0.0;
  std::size_t index = 0;
  std::size_t round = 0;
};

/// Max-heap order: highest gain first; equal gains pop the lowest
/// candidate index first — the pinned greedy tie-break.
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.index > b.index;
  }
};

}  // namespace

Schedule GreedyCoverScheduler::naive_plan(
    const BitmaskIndex& index, const util::IndicatorBitmap& targets) const {
  Schedule plan;
  plan.used_naive_fallback = true;
  plan.covered_union = util::IndicatorBitmap(index.scene_size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!targets.test(i)) continue;
    const util::Epc& epc = index.scene()[i];
    ScheduledBitmask sel;
    sel.bitmask.pointer = 0;
    sel.bitmask.mask = epc.bits();
    sel.covered_total = 1;
    sel.covered_targets = 1;
    plan.selections.push_back(std::move(sel));
    plan.covered_union.set(i);
    plan.estimated_cost_s += cost_model_.cost_seconds(1);
  }
  return plan;
}

void GreedyCoverScheduler::select(const BitmaskCandidate& chosen,
                                  Schedule& plan,
                                  util::IndicatorBitmap& remaining) const {
  ScheduledBitmask sel;
  sel.bitmask = chosen.bitmask;
  sel.covered_total = chosen.coverage.count();
  sel.covered_targets = chosen.coverage.and_count(remaining);
  plan.selections.push_back(std::move(sel));
  plan.estimated_cost_s += cost_model_.cost_seconds(chosen.coverage.count());
  plan.covered_union.merge(chosen.coverage);
  remaining.subtract(chosen.coverage);
}

Schedule GreedyCoverScheduler::greedy_dense(
    const BitmaskIndex& index, const std::vector<BitmaskCandidate>& candidates,
    const util::IndicatorBitmap& targets) const {
  Schedule plan;
  plan.covered_union = util::IndicatorBitmap(index.scene_size());
  util::IndicatorBitmap remaining = targets;

  while (remaining.any()) {
    double best_gain = -1.0;
    std::size_t best = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::size_t covered_targets =
          candidates[i].coverage.and_count(remaining);
      if (covered_targets == 0) continue;
      const double cost =
          cost_model_.cost_seconds(candidates[i].coverage.count());
      const double gain = static_cast<double>(covered_targets) / cost;
      // Strict '>' pins the tie-break: equal gains keep the lowest index.
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == candidates.size()) {
      // Unreachable in practice: every target's own full EPC is a candidate.
      throw std::logic_error("GreedyCoverScheduler: uncoverable target");
    }
    select(candidates[best], plan, remaining);
  }
  return plan;
}

Schedule GreedyCoverScheduler::greedy_lazy(
    const BitmaskIndex& index, const std::vector<BitmaskCandidate>& candidates,
    const util::IndicatorBitmap& targets) const {
  Schedule plan;
  plan.covered_union = util::IndicatorBitmap(index.scene_size());
  util::IndicatorBitmap remaining = targets;

  // Candidates share few distinct coverage sizes, so memoize the cost
  // model per size: cost_seconds() is deterministic, so the memo returns
  // bit-identical doubles to direct evaluation.
  std::vector<double> cost_memo(index.scene_size() + 1, -1.0);
  const auto cost_of = [&](std::size_t n) {
    double& c = cost_memo[n];
    if (c < 0.0) c = cost_model_.cost_seconds(n);
    return c;
  };

  // Gains only depend on |coverage ∩ remaining| with remaining ⊆ targets,
  // so a re-evaluation only has to look at the scene words where targets
  // live — everywhere else `remaining` is zero.  The target set is tiny
  // next to the scene, so this turns each heap re-evaluation into a
  // handful of word ANDs instead of a full scene-bitmap scan.
  std::vector<std::size_t> target_word_idx;
  for (std::size_t i = 0; i < targets.word_count(); ++i) {
    if (targets.word(i) != 0) target_word_idx.push_back(i);
  }
  const auto covered_in_remaining = [&](std::size_t c) noexcept {
    const std::uint64_t* const cov = candidates[c].coverage.word_data();
    const std::uint64_t* const rem = remaining.word_data();
    std::size_t covered = 0;
    for (const std::size_t i : target_word_idx) {
      covered += static_cast<std::size_t>(std::popcount(cov[i] & rem[i]));
    }
    return covered;
  };

  // Seed the heap with gains against the full target set; those are fresh
  // for round 1.  The numerator |V_i ∩ targets| was precomputed during
  // candidate enumeration (BitmaskCandidate::targets_covered), so seeding
  // is O(1) per candidate plus one bulk heapify.  Zero-gain candidates can
  // never gain later (submodular), so they are dropped here and on every
  // re-evaluation.
  std::vector<HeapEntry> seed;
  seed.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::size_t covered = candidates[i].targets_covered;
    if (covered == 0) continue;
    const double cost = cost_of(candidates[i].coverage.count());
    seed.push_back({static_cast<double>(covered) / cost, i, 1});
  }
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap(
      HeapLess{}, std::move(seed));

  std::size_t round = 1;
  while (remaining.any()) {
    std::size_t chosen = candidates.size();
    while (chosen == candidates.size()) {
      if (heap.empty()) {
        throw std::logic_error("GreedyCoverScheduler: uncoverable target");
      }
      const HeapEntry top = heap.top();
      heap.pop();
      if (top.round == round) {
        // Every other entry's (possibly stale) gain is an upper bound that
        // is no higher than this fresh one: it is the true argmax, and the
        // heap order already broke gain ties toward the lowest index.
        chosen = top.index;
        break;
      }
      const std::size_t covered = covered_in_remaining(top.index);
      if (covered == 0) continue;
      const double cost = cost_of(candidates[top.index].coverage.count());
      heap.push({static_cast<double>(covered) / cost, top.index, round});
    }
    select(candidates[chosen], plan, remaining);
    ++round;
  }
  return plan;
}

Schedule GreedyCoverScheduler::plan(
    const BitmaskIndex& index, const util::IndicatorBitmap& targets) const {
  return plan(index, targets, nullptr);
}

Schedule GreedyCoverScheduler::plan(const BitmaskIndex& index,
                                    const util::IndicatorBitmap& targets,
                                    util::TaskPool* pool) const {
  if (targets.none()) {
    throw std::invalid_argument("GreedyCoverScheduler::plan: no targets");
  }
  // kDense runs the pre-fast-path pipeline end to end (bit-by-bit candidate
  // rebuild + full rescan); kLazy the word-parallel incremental one.  Both
  // produce the same candidates and the same plan.  The pool only
  // parallelizes candidate generation, which is deterministic at any
  // thread count, so the plan is pool-independent too.
  Schedule plan;
  if (evaluation_ == GreedyEvaluation::kDense) {
    plan = greedy_dense(index, index.candidates_for_reference(targets),
                        targets);
  } else {
    plan = greedy_lazy(index, index.candidates_for(targets, pool), targets);
  }

  // Worst-case guard: if the "optimal" selection costs more than reading
  // each target individually, take the naive plan (§5.2).
  Schedule naive = naive_plan(index, targets);
  if (naive.estimated_cost_s < plan.estimated_cost_s) {
    return naive;
  }
  return plan;
}

}  // namespace tagwatch::core
