// Greedy weighted set cover for bitmask selection (paper §5.2–5.3).
//
// Minimize Σ C(|S_i|) over selected bitmasks subject to covering every
// target tag (Eqn. 12).  Each greedy iteration selects the candidate with
// the highest relative gain R(S_i) = |V_i & V| / C(|V_i|) (Eqn. 13); ties
// break to the lowest candidate index, so plans are deterministic and
// byte-identical across evaluation strategies.  The result is compared
// against the naive plan (one full-EPC bitmask per target); if the naive
// plan is cheaper, it is used instead — the paper's worst-case guard.
//
// Two evaluation strategies produce the same plan:
//
//  * kLazy (default) — lazy-greedy over a max-heap of possibly-stale
//    gains.  Because the gain |V_i & V| / C(|V_i|) is submodular in the
//    uncovered set V (the numerator only shrinks as V shrinks; the cost is
//    fixed per candidate), a stale heap entry is an upper bound, so the
//    first entry whose gain was re-evaluated in the current round is the
//    true argmax.  Each round touches a handful of candidates instead of
//    all m: O(k·(n/64 + log m)) per round for k re-evaluations.
//  * kDense — the reference full rescan: every round recomputes every
//    candidate's gain, O(m·n/64) per round.  Kept as the differential-test
//    oracle and for pathological inputs where heap churn is not worth it.
#pragma once

#include <vector>

#include "core/bitmask.hpp"
#include "core/rate_model.hpp"

namespace tagwatch::core {

/// How GreedyCoverScheduler::plan evaluates candidate gains per round.
enum class GreedyEvaluation {
  kLazy,   ///< Lazy-greedy max-heap with re-evaluate-on-pop (fast path).
  kDense,  ///< Full rescan of all candidates per round (reference).
};

/// One selected bitmask of a schedule.
struct ScheduledBitmask {
  Bitmask bitmask;
  std::size_t covered_total = 0;    ///< |S_i|: all scene tags covered.
  std::size_t covered_targets = 0;  ///< Targets newly covered at selection.
};

/// A Phase II reading plan.
struct Schedule {
  std::vector<ScheduledBitmask> selections;
  double estimated_cost_s = 0.0;  ///< Σ C(|S_i|) under the cost model.
  bool used_naive_fallback = false;
  /// Scene tags covered by the union of selections (targets + collateral).
  util::IndicatorBitmap covered_union;
};

/// Greedy set-cover planner.
class GreedyCoverScheduler {
 public:
  explicit GreedyCoverScheduler(
      InventoryCostModel cost_model,
      GreedyEvaluation evaluation = GreedyEvaluation::kLazy)
      : cost_model_(cost_model), evaluation_(evaluation) {}

  /// Plans bitmasks covering all of `targets` over `index`'s scene.
  /// `targets` must be non-empty.  The plan is independent of the
  /// configured evaluation strategy.
  Schedule plan(const BitmaskIndex& index,
                const util::IndicatorBitmap& targets) const;

  /// plan() with candidate generation sharded across `pool` (see
  /// BitmaskIndex::candidates_for).  The plan is byte-identical to the
  /// serial overload at any thread count; a null pool is the serial path.
  Schedule plan(const BitmaskIndex& index, const util::IndicatorBitmap& targets,
                util::TaskPool* pool) const;

  /// The naive plan: one full-EPC bitmask per target (§5.2's worst case).
  Schedule naive_plan(const BitmaskIndex& index,
                      const util::IndicatorBitmap& targets) const;

  const InventoryCostModel& cost_model() const noexcept { return cost_model_; }
  GreedyEvaluation evaluation() const noexcept { return evaluation_; }

 private:
  /// The greedy selection loop over a prepared candidate table.
  Schedule greedy_lazy(const BitmaskIndex& index,
                       const std::vector<BitmaskCandidate>& candidates,
                       const util::IndicatorBitmap& targets) const;
  Schedule greedy_dense(const BitmaskIndex& index,
                        const std::vector<BitmaskCandidate>& candidates,
                        const util::IndicatorBitmap& targets) const;
  /// Appends `chosen` to `plan` and updates cost/union/remaining.
  void select(const BitmaskCandidate& chosen, Schedule& plan,
              util::IndicatorBitmap& remaining) const;

  InventoryCostModel cost_model_;
  GreedyEvaluation evaluation_;
};

}  // namespace tagwatch::core
