// Greedy weighted set cover for bitmask selection (paper §5.2–5.3).
//
// Minimize Σ C(|S_i|) over selected bitmasks subject to covering every
// target tag (Eqn. 12).  Each greedy iteration selects the candidate with
// the highest relative gain R(S_i) = |V_i & V| / C(|V_i|) (Eqn. 13).  The
// result is compared against the naive plan (one full-EPC bitmask per
// target); if the naive plan is cheaper, it is used instead — the paper's
// worst-case guard.
#pragma once

#include <vector>

#include "core/bitmask.hpp"
#include "core/rate_model.hpp"

namespace tagwatch::core {

/// One selected bitmask of a schedule.
struct ScheduledBitmask {
  Bitmask bitmask;
  std::size_t covered_total = 0;    ///< |S_i|: all scene tags covered.
  std::size_t covered_targets = 0;  ///< Targets newly covered at selection.
};

/// A Phase II reading plan.
struct Schedule {
  std::vector<ScheduledBitmask> selections;
  double estimated_cost_s = 0.0;  ///< Σ C(|S_i|) under the cost model.
  bool used_naive_fallback = false;
  /// Scene tags covered by the union of selections (targets + collateral).
  util::IndicatorBitmap covered_union;
};

/// Greedy set-cover planner.
class GreedyCoverScheduler {
 public:
  explicit GreedyCoverScheduler(InventoryCostModel cost_model)
      : cost_model_(cost_model) {}

  /// Plans bitmasks covering all of `targets` over `index`'s scene.
  /// `targets` must be non-empty.
  Schedule plan(const BitmaskIndex& index,
                const util::IndicatorBitmap& targets) const;

  /// The naive plan: one full-EPC bitmask per target (§5.2's worst case).
  Schedule naive_plan(const BitmaskIndex& index,
                      const util::IndicatorBitmap& targets) const;

  const InventoryCostModel& cost_model() const noexcept { return cost_model_; }

 private:
  InventoryCostModel cost_model_;
};

}  // namespace tagwatch::core
